package spectre_test

import (
	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/queries"
)

// Builders for the paper's evaluation queries, shared by the root-level
// benchmarks and tests.

func buildQ1(reg *spectre.Registry, q, ws, leaders int) (*spectre.Query, error) {
	return queries.Q1(reg, queries.Q1Config{Q: q, WindowSize: ws, Leaders: leaders})
}

func buildQ2(reg *spectre.Registry, ws, slide int, lower, upper float64) (*spectre.Query, error) {
	return queries.Q2(reg, queries.Q2Config{WindowSize: ws, Slide: slide, LowerLimit: lower, UpperLimit: upper})
}

func buildQ3(reg *spectre.Registry, setSize, ws, slide int) (*spectre.Query, error) {
	return queries.Q3(reg, queries.Q3Config{SetSize: setSize, WindowSize: ws, Slide: slide})
}
