package spectre_test

import (
	"context"
	"testing"

	spectre "github.com/spectrecep/spectre"
)

// durableQuerySrc is a named, single-shard query: durability keys the
// WAL by query name, and a single shard gives the resume position a
// direct meaning as a stream offset.
const durableQuerySrc = `
	QUERY rise
	PATTERN (X Y)
	DEFINE X AS X.close > X.open, Y AS Y.close > X.close
	WITHIN 40 EVENTS FROM X
	CONSUME ALL
`

// TestDurableRestartRoundTrip is the public-API crash-recovery walk: a
// durable runtime ingests a prefix, parks (spectre-server does this when
// a connection breaks), a second runtime against the same state
// directory recovers, resumes from Handle.Recovered and finishes the
// stream — and the concatenated output is byte-identical to an
// uninterrupted sequential run.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 16, Leaders: 3, Minutes: 60, Seed: 11,
	})

	qRef, err := spectre.ParseQuery(durableQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := spectre.RunSequential(qRef, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference run produced no matches; test is vacuous")
	}
	var want []string
	for i := range ref {
		want = append(want, ref[i].Key())
	}

	var got []string
	sink := spectre.SinkFunc(func(ce spectre.ComplexEvent) { got = append(got, ce.Key()) })

	// Life 1: ingest roughly half, then park — the restart-survivable
	// detach. In-flight windows stay in the WAL.
	q1, err := spectre.ParseQuery(durableQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	rt1, err := spectre.NewRuntime(reg, spectre.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := rt1.Submit(ctx, q1, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt1.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if pos := h1.Recovered(); len(pos) != 1 || pos[0] != 0 {
		t.Fatalf("fresh durable query Recovered() = %v, want [0]", pos)
	}
	if err := h1.FeedBatch(ctx, events[:len(events)/2]); err != nil {
		t.Fatal(err)
	}
	h1.Park()
	if err := rt1.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: a fresh runtime over the same directory recovers, tells us
	// where to resume, and finishes the stream.
	q2, err := spectre.ParseQuery(durableQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := spectre.NewRuntime(reg, spectre.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt2.Submit(ctx, q2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	pos := h2.Recovered()
	if len(pos) != 1 {
		t.Fatalf("Recovered() = %v, want one shard", pos)
	}
	if pos[0] > uint64(len(events)/2) {
		t.Fatalf("resume position %d beyond the %d events ever fed", pos[0], len(events)/2)
	}
	if err := h2.FeedBatch(ctx, events[pos[0]:]); err != nil {
		t.Fatal(err)
	}
	h2.Drain()
	if err := rt2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("restart run delivered %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %s, want %s (restart must be invisible)", i, got[i], want[i])
		}
	}
}

// TestDurabilityOptionValidation: empty directories and non-durable
// handles are rejected/inert, not silently wrong.
func TestDurabilityOptionValidation(t *testing.T) {
	reg := spectre.NewRegistry()
	if _, err := spectre.NewRuntime(reg, spectre.WithDurability("")); err == nil {
		t.Fatal("WithDurability(\"\") must fail")
	}

	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	q, err := spectre.ParseQuery(durableQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Submit(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pos := h.Recovered(); pos != nil {
		t.Fatalf("non-durable Recovered() = %v, want nil", pos)
	}
	h.Park() // degrades to Drain on a non-durable handle
}
