package spectre

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/core"
)

// Sentinel errors. Compare with errors.Is: structured errors in this
// package (QueryError, OverloadError) wrap or match them, so callers can
// branch on the condition without depending on the concrete type.
var (
	// ErrAlreadyRan is returned when Engine.Run is called twice.
	ErrAlreadyRan = core.ErrAlreadyRan
	// ErrRuntimeClosed is returned by Submit/Run after Runtime.Close or
	// Runtime.Shutdown.
	ErrRuntimeClosed = core.ErrRuntimeClosed
	// ErrHandleClosed is returned by Handle.Feed/TryFeed/FeedBatch after
	// Handle.Close (or after the handle's submission context was
	// cancelled).
	ErrHandleClosed = core.ErrHandleClosed
	// ErrOverloaded is matched (errors.Is) by the *OverloadError that
	// Handle.TryFeed returns when the target shard's queue is full.
	ErrOverloaded = core.ErrOverloaded
	// ErrShuttingDown is returned by Submit when it loses the race with a
	// concurrent Runtime.Close/Shutdown: the query was compiled but never
	// attached, and no resources leak. It matches ErrRuntimeClosed with
	// errors.Is.
	ErrShuttingDown = core.ErrShuttingDown
)

// OverloadError is TryFeed's admission rejection: the target shard's
// intake queue was at capacity. It matches ErrOverloaded with errors.Is
// and carries the query name, the shard index and the queue occupancy
// at rejection time — the inputs a load-shedding policy needs. Queries
// submitted with WithShedding shed at the intake instead and return
// nil, so they only produce this error on the rare closed-handle race.
type OverloadError = core.OverloadError

// QueryError wraps a per-query failure — compilation, validation or
// submission — with the query's name. It unwraps to the underlying cause,
// so errors.Is against sentinels and parser errors keeps working.
type QueryError struct {
	// Query is the query's name ("" when the query never compiled far
	// enough to have one).
	Query string
	// Err is the underlying cause.
	Err error
}

func (e *QueryError) Error() string {
	if e.Query == "" {
		return fmt.Sprintf("spectre: query: %v", e.Err)
	}
	return fmt.Sprintf("spectre: query %q: %v", e.Query, e.Err)
}

// Unwrap returns the underlying cause for errors.Is / errors.As.
func (e *QueryError) Unwrap() error { return e.Err }

// queryErr wraps err into a *QueryError carrying the query's name.
func queryErr(q *Query, err error) error {
	if err == nil {
		return nil
	}
	name := ""
	if q != nil {
		name = q.Name
	}
	return &QueryError{Query: name, Err: err}
}
