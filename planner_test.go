package spectre_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/query"
)

// collectEngine runs q over events on a standalone engine and returns the
// output keys in delivery order.
func collectEngine(t *testing.T, q *spectre.Query, events []spectre.Event, opts ...spectre.Option) []string {
	t.Helper()
	eng, err := spectre.NewEngine(q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	err = eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		keys = append(keys, ce.Key())
	}))
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// collectRuntime runs q over events through a Runtime submission and
// returns the output keys in delivery order.
func collectRuntime(t *testing.T, reg *spectre.Registry, q *spectre.Query, events []spectre.Event, opts ...spectre.Option) []string {
	t.Helper()
	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var keys []string
	h, err := rt.Submit(context.Background(), q, spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		keys = append(keys, ce.Key())
	}), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FeedBatch(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	return keys
}

func diffKeys(t *testing.T, label string, planned, unplanned []string) {
	t.Helper()
	if len(planned) != len(unplanned) {
		t.Fatalf("%s: planned %d matches, unplanned %d", label, len(planned), len(unplanned))
	}
	for i := range planned {
		if planned[i] != unplanned[i] {
			t.Fatalf("%s: output %d differs: planned %s, unplanned %s", label, i, planned[i], unplanned[i])
		}
	}
}

// checkPlannerEquivalence asserts byte-identical output with and without
// the planner, on both the standalone engine and a runtime submission.
func checkPlannerEquivalence(t *testing.T, reg *spectre.Registry, q *spectre.Query, events []spectre.Event, opts ...spectre.Option) {
	t.Helper()
	planned := collectEngine(t, q, events, append([]spectre.Option{spectre.WithPlanner()}, opts...)...)
	unplanned := collectEngine(t, q, events, append([]spectre.Option{spectre.WithoutPlanner()}, opts...)...)
	diffKeys(t, "engine", planned, unplanned)

	rtPlanned := collectRuntime(t, reg, q, events, append([]spectre.Option{spectre.WithPlanner()}, opts...)...)
	rtUnplanned := collectRuntime(t, reg, q, events, append([]spectre.Option{spectre.WithoutPlanner()}, opts...)...)
	diffKeys(t, "runtime", rtPlanned, rtUnplanned)
	diffKeys(t, "engine-vs-runtime", planned, rtPlanned)
}

func TestPlannerEquivalenceQE(t *testing.T) {
	for _, cp := range []queries.QEConsumption{queries.QEConsumeNone, queries.QEConsumeSelectedB} {
		reg := spectre.NewRegistry()
		q, err := queries.QE(reg, cp)
		if err != nil {
			t.Fatal(err)
		}
		// Mixed-type stream: A/B are 2 of 10 types, so the intake filter
		// has real work.
		rng := rand.New(rand.NewSource(11))
		typeNames := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J"}
		var events []spectre.Event
		for i := 0; i < 5000; i++ {
			events = append(events, spectre.Event{
				TS:   int64(i) * 1_500_000_000, // 1.5s apart
				Type: reg.TypeID(typeNames[rng.Intn(len(typeNames))]),
			})
		}
		checkPlannerEquivalence(t, reg, q, events, spectre.WithInstances(3), spectre.WithBatchSize(64))

		// QE is fully typed with FROM A: the planner must turn both
		// filters on.
		eng, err := spectre.NewEngine(q)
		if err != nil {
			t.Fatal(err)
		}
		p := eng.Plan()
		if p == nil || !p.IntakeActive() || !p.MatcherFilterActive() {
			t.Fatalf("QE plan: %+v", p.Info())
		}
	}
}

func TestPlannerEquivalenceQ1(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 60, Seed: 7})
	q, err := buildQ1(reg, 5, 250, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Q1's rising steps are untyped (no binding-free guard), so intake
	// filtering must stay off — the equivalence here exercises the
	// predicate-reordering path alone.
	checkPlannerEquivalence(t, reg, q, events, spectre.WithInstances(4))
}

func TestPlannerEquivalenceQ2(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{Symbols: 30, Leaders: 4, Minutes: 40, Seed: 9})
	q, err := buildQ2(reg, 600, 150, 96, 104)
	if err != nil {
		t.Fatal(err)
	}
	// FROM EVERY: intake filtering is illegal and must stay off.
	checkPlannerEquivalence(t, reg, q, events, spectre.WithInstances(4))
}

func TestPlannerEquivalenceQ3(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateRand(reg, spectre.RandConfig{Symbols: 25, Events: 6000, Seed: 13})
	q, err := buildQ3(reg, 3, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	checkPlannerEquivalence(t, reg, q, events, spectre.WithInstances(4))
}

// TestPlannerEquivalencePartitioned compares a partitioned runtime
// submission planned vs unplanned. Cross-shard interleaving is
// arrival-order, so the comparison is on sorted key sets.
func TestPlannerEquivalencePartitioned(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateRand(reg, spectre.RandConfig{Symbols: 12, Events: 8000, Seed: 17})
	b := query.New(reg).Name("perSymbol")
	closeF := b.Float("close")
	q, err := b.
		Pattern(
			query.Step("X").Types(spectre.Symbol(0), spectre.Symbol(1), spectre.Symbol(2), spectre.Symbol(3)).
				WhereEvent(func(ev *query.Event) bool { return closeF.Of(ev) > 0 }),
			query.Step("Y").Types(spectre.Symbol(0), spectre.Symbol(1), spectre.Symbol(2), spectre.Symbol(3)),
		).
		Within(query.Events(300)).From("X").
		ConsumeAll().
		PartitionByType().Shards(4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	planned := collectRuntime(t, reg, q, events, spectre.WithPlanner())
	unplanned := collectRuntime(t, reg, q, events, spectre.WithoutPlanner())
	sort.Strings(planned)
	sort.Strings(unplanned)
	diffKeys(t, "partitioned", planned, unplanned)
	if len(planned) == 0 {
		t.Fatal("vacuous workload")
	}
}

// TestPlannerEquivalenceRandomQueries fuzzes the planner against the
// unplanned engine with randomized typed queries over mixed-type streams.
func TestPlannerEquivalenceRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 6; iter++ {
		reg := spectre.NewRegistry()
		typeNames := make([]string, 10)
		for i := range typeNames {
			typeNames[i] = fmt.Sprintf("T%d", i)
			reg.TypeID(typeNames[i])
		}
		b := query.New(reg).Name(fmt.Sprintf("rand%d", iter))
		val := b.Float("v")
		steps := 2 + rng.Intn(3)
		var firstName string
		for s := 0; s < steps; s++ {
			name := fmt.Sprintf("S%d", s)
			if s == 0 {
				firstName = name
			}
			sb := query.Step(name).Types(typeNames[rng.Intn(4)], typeNames[rng.Intn(4)])
			switch rng.Intn(3) {
			case 0:
				cut := rng.Float64()
				sb.WhereEvent(func(ev *query.Event) bool { return val.Of(ev) > cut })
			case 1:
				lo, hi := rng.Float64()*0.4, 0.6+rng.Float64()*0.4
				sb.WhereEvent(func(ev *query.Event) bool { return val.Of(ev) > lo }).
					WhereEvent(func(ev *query.Event) bool { return val.Of(ev) < hi })
			}
			b.Pattern(sb)
		}
		b.Within(query.Events(50 + rng.Intn(150))).From(firstName)
		if rng.Intn(2) == 0 {
			b.ConsumeAll()
		} else {
			b.ConsumeNone()
		}
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		events := make([]spectre.Event, 4000)
		for i := range events {
			events[i] = spectre.Event{
				TS:     int64(i) * 1_000_000_000,
				Type:   reg.TypeID(typeNames[rng.Intn(len(typeNames))]),
				Fields: []float64{rng.Float64()},
			}
		}
		checkPlannerEquivalence(t, reg, q, events,
			spectre.WithInstances(1+rng.Intn(4)), spectre.WithBatchSize(32+rng.Intn(200)))
	}
}

// TestFilteredEventsMetric pins the accounting contract of the intake
// prefilter: fed = ingested + filtered, and the filter count surfaces in
// Metrics and the plan.
func TestFilteredEventsMetric(t *testing.T) {
	reg := spectre.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeSelectedB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	typeNames := []string{"A", "B", "C", "D", "E"}
	events := make([]spectre.Event, 3000)
	for i := range events {
		events[i] = spectre.Event{
			TS:   int64(i) * 1_000_000_000,
			Type: reg.TypeID(typeNames[rng.Intn(len(typeNames))]),
		}
	}

	eng, err := spectre.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), spectre.FromSlice(events), nil); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.FilteredEvents == 0 {
		t.Fatal("intake filter dropped nothing on a 3/5-irrelevant stream")
	}
	if m.EventsIngested+m.FilteredEvents != uint64(len(events)) {
		t.Fatalf("ingested %d + filtered %d != fed %d", m.EventsIngested, m.FilteredEvents, len(events))
	}
	if got := eng.Plan().Filtered(); got != m.FilteredEvents {
		t.Fatalf("plan filtered %d, metrics %d", got, m.FilteredEvents)
	}

	// Same contract through a runtime handle.
	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	h, err := rt.Submit(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FeedBatch(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	hm := h.Metrics()
	if hm.FilteredEvents != m.FilteredEvents || hm.EventsIngested != m.EventsIngested {
		t.Fatalf("runtime ingested/filtered %d/%d, engine %d/%d",
			hm.EventsIngested, hm.FilteredEvents, m.EventsIngested, m.FilteredEvents)
	}
}
