// Command spectre-server runs a shared SPECTRE runtime fed over TCP. It
// accepts any number of client connections; each client submits its own
// query (a leading query control frame, see spectre-client -query) and
// streams events for it. All queries run concurrently on one key-
// partitioned runtime multiplexed over a shared worker pool.
//
// Usage:
//
//	spectre-server -addr :7071 -workers 16
//	spectre-server -addr :7071 -query query.mrq            # legacy clients
//	spectre-server -addr :7071 -max-conns 1 -query q.mrq   # one-shot
//
// Clients that send no query frame fall back to the -query file (the
// legacy single-query deployment of the paper's evaluation setup). The
// server prints each detected complex event and a per-connection metrics
// summary; -max-conns N exits after N connections drain.
//
// On SIGINT/SIGTERM the server stops accepting, unwedges every connection
// stream, and drains the admitted backlog through Runtime.Shutdown with a
// -drain-timeout deadline; queries that miss it are aborted instead of
// dying mid-write.
//
// -pprof serves net/http/pprof (live CPU/heap/goroutine profiles of the
// running runtime) on a separate address, e.g. -pprof localhost:6060,
// plus /debug/spectre/metrics — a JSON snapshot of every live query's
// runtime counters, including the scheduling control plane's signals
// (current slot count, slot utilization, policy resizes, speculation
// budget).
//
// -sched selects the scheduling policy for every hosted query: "topk"
// (the paper's fixed top-k, default), "fixed=<p>" (the Fig. 11
// constant-probability baseline) or "adaptive" (slot pool and
// speculation budget track observed load). -adaptive-instances and
// -adaptive-speculation bound the adaptation as "min:max" pairs.
//
// -shed enables utility-driven load shedding at every hosted query's
// intake queues (bounded latency instead of blocked producers under
// overload); -weight and -latency-target enroll the queries in the
// cross-query admission arbiter, which splits the worker pool among
// co-located queries by weight and boosts queries missing their
// latency SLO.
//
// -state-dir makes every hosted query durable (DESIGN.md §11): matcher
// checkpoints, the ingest journal and emission watermarks persist to
// per-shard WALs under the directory. A restarted server recovers each
// query's state when its client reconnects and re-submits (same query
// name, spectre-client -reconnect), answers the client's resume
// handshake with the journalled position, and suppresses matches that
// were already delivered before the crash. Broken connections park their
// queries (in-flight windows stay in the WAL) instead of ending them.
//
// Distributed execution (DESIGN.md §12) spans multiple processes:
//
//	spectre-server -cluster-listen :7072 -cluster-min-workers 2   # coordinator
//	spectre-server -worker -join host:7072                        # one per worker box
//
// -worker turns the process into a cluster shard worker: it joins the
// coordinator at -join (retrying with jittered backoff), executes the
// shard assignments shipped to it, and hands shard state back when the
// coordinator rebalances. -cluster-listen makes the server a
// coordinator: client queries submitted on -addr run distributed across
// the joined workers, with output merged back into the exact
// single-process order. Node-local flags (-sched, -shed, -state-dir,
// ...) do not apply to distributed queries.
//
// The coordinator minimizes link traffic by default (DESIGN.md §13):
// plan pushdown drops events the query provably cannot use before they
// are framed, the v2 wire encodes frames compactly (delta/varint,
// plan-driven field projection) on workers that negotiate it, and the
// per-link batch size adapts between -cluster-batch-min and
// -cluster-batch-max. -cluster-no-pushdown ships every routed event in
// full; -cluster-static-batch pins the batch size. Per-link transport
// counters (bytes, frames, events deduplicated) are printed in each
// connection summary and exported under "clusterLinks" in the -pprof
// /debug/spectre/metrics JSON object.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-server:", err)
		os.Exit(1)
	}
}

type serverOpts struct {
	instances int
	shards    int
	quiet     bool
	fallback  string // query text for clients that send no query frame
	schedOpts []spectre.Option
	shed      bool          // -shed: utility-driven load shedding
	weight    float64       // -weight: admission-arbiter share (0 = unarbitrated)
	latency   time.Duration // -latency-target: root-emission SLO (0 = none)
	durable   bool          // -state-dir: WAL-backed query state + resume handshakes
}

// parseSchedFlags converts the -sched / -adaptive-* flags into engine
// options. schedExplicit reports whether -sched was given on the
// command line: the -adaptive-* bounds imply the adaptive policy, so
// combining them with an explicitly different -sched is a
// contradiction rejected at startup.
func parseSchedFlags(sched string, schedExplicit bool, instances, speculation string) ([]spectre.Option, error) {
	if schedExplicit && sched != "adaptive" && (instances != "" || speculation != "") {
		return nil, fmt.Errorf("-sched %q contradicts -adaptive-instances/-adaptive-speculation (they imply -sched adaptive)", sched)
	}
	var opts []spectre.Option
	switch {
	case sched == "" || sched == "topk":
		opts = append(opts, spectre.WithScheduler(spectre.TopKScheduler()))
	case sched == "adaptive":
		opts = append(opts, spectre.WithScheduler(spectre.AdaptiveScheduler()))
	case strings.HasPrefix(sched, "fixed="):
		p, err := strconv.ParseFloat(strings.TrimPrefix(sched, "fixed="), 64)
		if err != nil {
			return nil, fmt.Errorf("-sched %q: %w", sched, err)
		}
		if !(p >= 0 && p <= 1) { // rejects NaN too
			return nil, fmt.Errorf("-sched %q: probability must be in [0, 1]", sched)
		}
		opts = append(opts, spectre.WithScheduler(spectre.FixedProbScheduler(p)))
	default:
		return nil, fmt.Errorf("-sched %q: want topk, fixed=<p> or adaptive", sched)
	}
	bounds := func(flag, v string, opt func(min, max int) spectre.Option) error {
		if v == "" {
			return nil
		}
		lo, hi, ok := strings.Cut(v, ":")
		min, err1 := strconv.Atoi(lo)
		max, err2 := strconv.Atoi(hi)
		if !ok || err1 != nil || err2 != nil {
			return fmt.Errorf("%s %q: want min:max", flag, v)
		}
		// Reject invalid bounds at startup, not per connection at
		// Submit time.
		if min <= 0 || max < min {
			return fmt.Errorf("%s %q: bounds must satisfy 1 <= min <= max", flag, v)
		}
		opts = append(opts, opt(min, max))
		return nil
	}
	if err := bounds("-adaptive-instances", instances, spectre.WithAdaptiveInstances); err != nil {
		return nil, err
	}
	if err := bounds("-adaptive-speculation", speculation, spectre.WithAdaptiveSpeculation); err != nil {
		return nil, err
	}
	return opts, nil
}

// liveQueries tracks the connections' handles for the metrics endpoint.
type liveQueries struct {
	mu sync.Mutex
	m  map[int]*liveQuery
	// links, set in coordinator mode, snapshots the cluster worker
	// links' transport counters for the metrics JSON.
	links func() []spectre.ClusterLinkStats
}

func (l *liveQueries) setLinks(f func() []spectre.ClusterLinkStats) {
	l.mu.Lock()
	l.links = f
	l.mu.Unlock()
}

type liveQuery struct {
	Conn  int    `json:"conn"`
	Query string `json:"query"`
	h     *spectre.Handle
}

func newLiveQueries() *liveQueries { return &liveQueries{m: make(map[int]*liveQuery)} }

func (l *liveQueries) add(id int, name string, h *spectre.Handle) {
	l.mu.Lock()
	l.m[id] = &liveQuery{Conn: id, Query: name, h: h}
	l.mu.Unlock()
}

func (l *liveQueries) remove(id int) {
	l.mu.Lock()
	delete(l.m, id)
	l.mu.Unlock()
}

// queryMetrics is the JSON shape of one live query's counters: the full
// Metrics struct plus the derived utilization, shard count and the
// planner's evaluation plan (type filter, predicate order, deployment).
type queryMetrics struct {
	Conn            int     `json:"conn"`
	Query           string  `json:"query"`
	Shards          int     `json:"shards"`
	SlotUtilization float64 `json:"slotUtilization"`
	// Root-emission latency gauges in milliseconds (the raw Metrics
	// fields are seconds; milliseconds read better on dashboards).
	EmitLagP50Millis float64           `json:"emitLagP50Millis"`
	EmitLagP99Millis float64           `json:"emitLagP99Millis"`
	Plan             *spectre.PlanInfo `json:"plan,omitempty"`
	spectre.Metrics
}

// metricsSnapshot is the /debug/spectre/metrics JSON document: the live
// queries plus, in coordinator mode, the cluster worker links' transport
// counters (proto version, adaptive batch, bytes/frames each way, page
// dedup savings).
type metricsSnapshot struct {
	Queries      []queryMetrics             `json:"queries"`
	ClusterLinks []spectre.ClusterLinkStats `json:"clusterLinks,omitempty"`
}

// serveMetrics writes the JSON snapshot of every live query. Registered
// on the DefaultServeMux, which -pprof serves.
func (l *liveQueries) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	live := make([]*liveQuery, 0, len(l.m))
	for _, q := range l.m {
		live = append(live, q)
	}
	links := l.links
	l.mu.Unlock()
	out := make([]queryMetrics, 0, len(live))
	for _, q := range live {
		m := q.h.Metrics()
		var pi *spectre.PlanInfo
		if p := q.h.Plan(); p != nil {
			info := p.Info()
			pi = &info
		}
		out = append(out, queryMetrics{
			Conn:             q.Conn,
			Query:            q.Query,
			Shards:           q.h.Shards(),
			SlotUtilization:  m.SlotUtilization(),
			EmitLagP50Millis: m.EmitLagP50 * 1000,
			EmitLagP99Millis: m.EmitLagP99 * 1000,
			Plan:             pi,
			Metrics:          m,
		})
	}
	snap := metricsSnapshot{Queries: out}
	if links != nil {
		snap.ClusterLinks = links()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

func run() error {
	var (
		addr         = flag.String("addr", ":7071", "listen address")
		queryFile    = flag.String("query", "", "fallback query file for clients that send no query frame")
		instances    = flag.Int("instances", 4, "operator-instance slots per shard")
		shards       = flag.Int("shards", 0, "override shard count for partitioned queries (0 = query's SHARDS, then GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "shared worker-pool size (0 = GOMAXPROCS)")
		maxConns     = flag.Int("max-conns", 0, "exit after this many connections (0 = serve forever)")
		quiet        = flag.Bool("quiet", false, "suppress per-event output (throughput measurements)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline after SIGINT/SIGTERM")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and /debug/spectre/metrics on this address (e.g. localhost:6060); empty disables")
		schedFlag    = flag.String("sched", "topk", "scheduling policy: topk, fixed=<p> or adaptive")
		adaptInst    = flag.String("adaptive-instances", "", "adaptive slot-pool bounds as min:max (implies -sched adaptive)")
		adaptSpec    = flag.String("adaptive-speculation", "", "adaptive speculation-budget bounds as min:max (implies -sched adaptive)")
		shedFlag     = flag.Bool("shed", false, "shed lowest-utility events when a shard queue crosses its watermark instead of blocking")
		stateDir     = flag.String("state-dir", "", "durable query state: per-shard WALs under this directory; restarted servers recover submitted queries and answer client resume handshakes")
		weightFlag   = flag.Float64("weight", 0, "admission-arbiter weight for every hosted query (0 = unarbitrated)")
		latencyFlag  = flag.Duration("latency-target", 0, "root-emission p99 latency SLO per query (0 = none; implies arbitration)")
		workerMode   = flag.Bool("worker", false, "run as a cluster shard worker (requires -join; most other flags do not apply)")
		joinAddr     = flag.String("join", "", "coordinator address to join in -worker mode")
		capacityFlag = flag.Int("capacity", 0, "shard capacity advertised in -worker mode (0 = default)")
		clusterAddr  = flag.String("cluster-listen", "", "accept cluster workers on this address and run every client query distributed across them")
		clusterMin   = flag.Int("cluster-min-workers", 1, "block distributed submissions until this many workers have joined")
		clusterBMin  = flag.Int("cluster-batch-min", 0, "adaptive per-link batch floor in events (0 = default 64)")
		clusterBMax  = flag.Int("cluster-batch-max", 0, "adaptive per-link batch ceiling in events (0 = default 4096)")
		clusterBFix  = flag.Bool("cluster-static-batch", false, "disable the adaptive batch controller: links keep the initial batch size")
		clusterNoPD  = flag.Bool("cluster-no-pushdown", false, "disable coordinator-side plan pushdown: ship every routed event to its worker")
	)
	flag.Parse()

	// ctx ends on the first SIGINT/SIGTERM; a second signal kills the
	// process the default way (stop() restores default handling).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *workerMode {
		if *joinAddr == "" {
			return fmt.Errorf("-worker requires -join <coordinator address>")
		}
		return runWorker(ctx, *joinAddr, *capacityFlag)
	}
	if *joinAddr != "" {
		return fmt.Errorf("-join only applies in -worker mode")
	}

	schedExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sched" {
			schedExplicit = true
		}
	})
	schedOpts, err := parseSchedFlags(*schedFlag, schedExplicit, *adaptInst, *adaptSpec)
	if err != nil {
		return err
	}
	live := newLiveQueries()
	http.HandleFunc("/debug/spectre/metrics", live.serveMetrics)

	if *pprofAddr != "" {
		// DefaultServeMux carries the /debug/pprof handlers via the
		// net/http/pprof import; live profiles of a serving runtime:
		//   go tool pprof http://localhost:6060/debug/pprof/profile
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(os.Stderr, "spectre-server: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "spectre-server: pprof:", err)
			}
		}()
	}

	opts := serverOpts{
		instances: *instances, shards: *shards, quiet: *quiet, schedOpts: schedOpts,
		shed: *shedFlag, weight: *weightFlag, latency: *latencyFlag,
		durable: *stateDir != "",
	}
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		opts.fallback = string(src)
	}

	// The runtime's own registry only backs programmatic partition options;
	// every connection parses its query into a private registry so that
	// type interning stays single-writer per stream.
	var rtOpts []spectre.RuntimeOption
	if *workers > 0 {
		rtOpts = append(rtOpts, spectre.WithWorkers(*workers))
	}
	if *stateDir != "" {
		rtOpts = append(rtOpts, spectre.WithDurability(*stateDir))
	}
	rt, err := spectre.NewRuntime(spectre.NewRegistry(), rtOpts...)
	if err != nil {
		return err
	}

	// Coordinator mode: accept cluster workers on their own listener and
	// run every client query distributed across them. The worker links
	// and the connections share one registry (interning is concurrent-
	// safe) so the event ids clients send are the ids workers decode.
	var cluster *clusterFrontend
	if *clusterAddr != "" {
		creg := spectre.NewRegistry()
		cl, err := spectre.ListenCluster(*clusterAddr, creg, spectre.ClusterOptions{
			MinWorkers:      *clusterMin,
			BatchMin:        *clusterBMin,
			BatchMax:        *clusterBMax,
			StaticBatch:     *clusterBFix,
			DisablePushdown: *clusterNoPD,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "spectre-server: "+format+"\n", args...)
			},
		})
		if err != nil {
			rt.Close()
			return err
		}
		defer cl.Close()
		cluster = &clusterFrontend{cl: cl, reg: creg}
		live.setLinks(cl.LinkStats)
		fmt.Fprintf(os.Stderr, "spectre-server: cluster coordinator on %s (min %d workers)\n",
			cl.Addr(), *clusterMin)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "spectre-server: listening on %s (multi-query runtime, %d-slot shards)\n",
		*addr, *instances)

	// Shutdown path: the listener closes the moment the signal lands —
	// strictly before the drain below — so in-flight connections (worker
	// streams included) drain without racing freshly accepted ones.
	stopAccept := context.AfterFunc(ctx, func() { ln.Close() })
	defer stopAccept()

	var wg sync.WaitGroup
	served := 0
	var acceptErr error
	for (*maxConns <= 0 || served < *maxConns) && ctx.Err() == nil {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		if ctx.Err() != nil {
			// The signal landed while this accept was in flight: the
			// listener is closing; don't start a stream the drain below
			// would have to abort.
			conn.Close()
			break
		}
		served++
		id := served
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			if cluster != nil {
				err = serveClusterConn(ctx, cluster, conn, id, opts)
			} else {
				err = serveConn(ctx, rt, conn, id, opts, live)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "spectre-server: conn %d: %v\n", id, err)
			}
		}()
	}
	ln.Close()
	wg.Wait()

	// Drain whatever the connections admitted, bounded by -drain-timeout.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := rt.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "spectre-server: drain timeout after %v: aborted remaining queries\n", *drainTimeout)
	} else if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "spectre-server: drained cleanly after signal")
	}
	return acceptErr
}

// runWorker is -worker mode: join the coordinator, execute shard
// assignments until the link drops or a signal lands, then detach.
func runWorker(ctx context.Context, join string, capacity int) error {
	name, _ := os.Hostname()
	w, err := spectre.JoinCluster(ctx, spectre.NewRegistry(), join, spectre.ClusterWorkerOptions{
		Name:     name,
		Capacity: capacity,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "spectre-server: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spectre-server: worker %d joined %s\n", w.ID(), join)
	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	report := func() {
		ws := w.Stats()
		fmt.Fprintf(os.Stderr,
			"spectre-server: worker %d link proto v%d: %d B out / %d B in, %d frames out / %d in, %d events deduped\n",
			w.ID(), ws.Proto, ws.BytesSent, ws.BytesRecv, ws.FramesSent, ws.FramesRecv, ws.EventsDeduped)
	}
	select {
	case <-ctx.Done():
		// Detach on signal: the coordinator sees the link drop and
		// reassigns our shards from its retained buffers.
		w.Close()
		<-done
		report()
		fmt.Fprintln(os.Stderr, "spectre-server: worker detached after signal")
		return nil
	case err := <-done:
		report()
		return err
	}
}

// clusterFrontend is the coordinator-mode submission path: the cluster
// plus the registry shared by its worker links and every client
// connection.
type clusterFrontend struct {
	cl  *spectre.Cluster
	reg *spectre.Registry
}

// serveClusterConn handles one client in coordinator mode: its query
// runs distributed across the joined workers instead of on the local
// runtime. Resume handshakes are refused — the coordinator keeps no
// per-client journal; durability lives in the worker WALs and covers
// worker failure, not client reconnects.
func serveClusterConn(ctx context.Context, cluster *clusterFrontend, conn net.Conn, id int, opts serverOpts) error {
	defer conn.Close()
	stopWatch := transport.AbortReadsOnDone(ctx, conn)
	defer stopWatch()

	r := transport.NewReader(conn, cluster.reg)
	queryText, wantResume, ok, err := r.ReadQuery()
	if err != nil {
		if transport.IsClosedOrCanceled(err) && ctx.Err() != nil {
			return nil
		}
		return err
	}
	if !ok || queryText == "" {
		if opts.fallback == "" {
			return fmt.Errorf("client sent no query frame and no -query fallback is configured")
		}
		queryText = opts.fallback
	}
	if wantResume {
		return fmt.Errorf("resume handshake: distributed queries do not support client resume")
	}

	var subOpts []spectre.Option
	if opts.shards > 0 {
		subOpts = append(subOpts, spectre.WithShards(opts.shards))
	}
	matches := 0
	var mu sync.Mutex
	h, err := cluster.cl.Submit(ctx, queryText, spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		mu.Lock()
		matches++
		mu.Unlock()
		if !opts.quiet {
			fmt.Printf("[conn %d] %s\n", id, ce.String())
		}
	}), subOpts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spectre-server: conn %d: query %s distributed on %d shard(s)\n",
		id, h.Name(), h.Shards())

	src, srcErr := transport.SourceFromReader(r)
	start := time.Now()
	sent := 0
	feedErr := func() error {
		for {
			ev, more := src.Next()
			if !more {
				return nil
			}
			if err := h.Feed(ctx, ev); err != nil {
				return err
			}
			sent++
		}
	}()
	drainErr := h.Drain(ctx)
	elapsed := time.Since(start)
	if feedErr != nil && !errors.Is(feedErr, context.Canceled) {
		return fmt.Errorf("feed error: %w", feedErr)
	}
	if err := srcErr(); err != nil && !(transport.IsClosedOrCanceled(err) && ctx.Err() != nil) {
		return fmt.Errorf("stream error: %w", err)
	}
	if drainErr != nil && ctx.Err() == nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	mu.Lock()
	n := matches
	mu.Unlock()
	fmt.Fprintf(os.Stderr, "spectre-server: conn %d: %d events, %d matches in %v (%.0f events/sec, distributed)\n",
		id, sent, n, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	for _, ls := range cluster.cl.LinkStats() {
		fmt.Fprintf(os.Stderr,
			"spectre-server: conn %d: link w%d (%s) proto v%d batch %d: %d B out / %d B in, %d frames out / %d in, %d events sent, %d deduped\n",
			id, ls.WorkerID, ls.Name, ls.Proto, ls.Batch,
			ls.BytesSent, ls.BytesRecv, ls.FramesSent, ls.FramesRecv,
			ls.EventsSent, ls.EventsDeduped)
	}
	return nil
}

// serveConn handles one client: read its query, submit it to the shared
// runtime, feed its event stream, drain and report. A done ctx unwedges
// the connection read and drains what was admitted instead of dying
// mid-stream.
func serveConn(ctx context.Context, rt *spectre.Runtime, conn net.Conn, id int, opts serverOpts, live *liveQueries) error {
	defer conn.Close()
	stopWatch := transport.AbortReadsOnDone(ctx, conn)
	defer stopWatch()

	reg := spectre.NewRegistry()
	r := transport.NewReader(conn, reg)

	queryText, wantResume, ok, err := r.ReadQuery()
	if err != nil {
		if transport.IsClosedOrCanceled(err) && ctx.Err() != nil {
			return nil
		}
		return err
	}
	if !ok || queryText == "" {
		if opts.fallback == "" {
			return fmt.Errorf("client sent no query frame and no -query fallback is configured")
		}
		queryText = opts.fallback
	}
	query, err := spectre.ParseQuery(queryText, reg)
	if err != nil {
		return err
	}

	subOpts := []spectre.Option{spectre.WithInstances(opts.instances)}
	if opts.durable {
		// The WAL's name tables must be this connection's private
		// registry — the one the query was parsed against and events
		// intern into — not the runtime's.
		subOpts = append(subOpts, spectre.WithRegistry(reg))
	}
	subOpts = append(subOpts, opts.schedOpts...)
	if opts.shards > 0 && query.Partition != nil {
		subOpts = append(subOpts, spectre.WithShards(opts.shards))
	}
	if opts.shed {
		subOpts = append(subOpts, spectre.WithShedding())
	}
	if opts.weight > 0 {
		subOpts = append(subOpts, spectre.WithWeight(opts.weight))
	}
	if opts.latency > 0 {
		subOpts = append(subOpts, spectre.WithLatencyTarget(opts.latency))
	}
	matches := 0
	h, err := rt.Submit(context.Background(), query, spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		matches++
		if !opts.quiet {
			fmt.Printf("[conn %d] %s\n", id, ce.String())
		}
	}), subOpts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spectre-server: conn %d: query %s on %d shard(s)\n",
		id, h.Name(), h.Shards())
	live.add(id, h.Name(), h)
	defer live.remove(id)

	if opts.durable {
		// Block until the query's WAL replay caught up, so the resume
		// offset below reflects everything already journalled.
		if err := rt.Recover(ctx); err != nil && ctx.Err() == nil {
			h.Park()
			return err
		}
	}
	if wantResume {
		pos := uint64(0)
		if rec := h.Recovered(); len(rec) == 1 {
			pos = rec[0]
		} else if len(rec) > 1 {
			// Shard-local offsets cannot be folded into one stream
			// position; a partitioned durable query has no single resume
			// point for a global producer.
			h.Park()
			return fmt.Errorf("resume handshake: query %s runs on %d shards; resume needs a single shard", h.Name(), len(rec))
		}
		rw := transport.NewWriter(conn, reg)
		if err := rw.WriteResume(pos); err == nil {
			err = rw.Flush()
		}
		if err != nil {
			h.Park()
			return fmt.Errorf("resume handshake: %w", err)
		}
	}

	src, srcErr := transport.SourceFromReader(r)
	start := time.Now()
	feedErr := func() error {
		for {
			ev, more := src.Next()
			if !more {
				return nil
			}
			if err := h.Feed(ctx, ev); err != nil {
				return err
			}
		}
	}()
	if opts.durable && (feedErr != nil || srcErr() != nil || ctx.Err() != nil) {
		// The stream broke (client died, server shutting down) rather
		// than ended: park the durable query so its in-flight windows
		// stay in the WAL and a reconnect resumes them. A clean client
		// EOF is a genuine end of stream and drains below.
		h.Park()
	} else {
		h.Drain()
	}
	elapsed := time.Since(start)
	if feedErr != nil && !errors.Is(feedErr, context.Canceled) {
		return fmt.Errorf("feed error: %w", feedErr)
	}
	if err := srcErr(); err != nil && !(transport.IsClosedOrCanceled(err) && ctx.Err() != nil) {
		return fmt.Errorf("stream error: %w", err)
	}
	m := h.Metrics()
	fmt.Fprintf(os.Stderr,
		"spectre-server: conn %d: %d events, %d matches in %v (%.0f events/sec)\n"+
			"  shards=%d windows=%d versions=%d dropped=%d rollbacks=%d gate-reprocessed=%d max-tree=%d shed=%d emit-lag-p99=%.1fms\n",
		id, m.EventsIngested, matches, elapsed.Round(time.Millisecond),
		float64(m.EventsIngested)/elapsed.Seconds(), h.Shards(),
		m.WindowsOpened, m.VersionsCreated, m.VersionsDropped,
		m.Rollbacks, m.GateReprocessed, m.MaxTreeSize,
		m.ShedEvents, m.EmitLagP99*1000)
	return nil
}
