// Command spectre-server runs a SPECTRE operator fed over TCP (the
// deployment of the paper's evaluation setup: a client streams events from
// a file to the engine over a TCP connection).
//
// Usage:
//
//	spectre-server -addr :7071 -query query.mrq -instances 8
//
// The server accepts one connection, processes the stream, prints each
// detected complex event, and exits with a metrics summary.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":7071", "listen address")
		queryFile = flag.String("query", "", "file with the query (extended MATCH-RECOGNIZE notation)")
		instances = flag.Int("instances", 4, "operator instances k")
		quiet     = flag.Bool("quiet", false, "suppress per-event output (throughput measurements)")
	)
	flag.Parse()
	if *queryFile == "" {
		return fmt.Errorf("-query is required")
	}
	src, err := os.ReadFile(*queryFile)
	if err != nil {
		return err
	}
	reg := spectre.NewRegistry()
	query, err := spectre.ParseQuery(string(src), reg)
	if err != nil {
		return err
	}
	eng, err := spectre.NewEngine(query, spectre.WithInstances(*instances))
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "spectre-server: listening on %s (query %s, k=%d)\n", *addr, query.Name, *instances)

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	events, srcErr := transport.SourceFromConn(conn, reg)
	matches := 0
	start := time.Now()
	err = eng.Run(events, func(ce spectre.ComplexEvent) {
		matches++
		if !*quiet {
			fmt.Println(ce.String())
		}
	})
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if err := srcErr(); err != nil {
		return fmt.Errorf("stream error: %w", err)
	}
	m := eng.Metrics()
	fmt.Fprintf(os.Stderr,
		"spectre-server: %d events, %d matches in %v (%.0f events/sec)\n"+
			"  windows=%d versions=%d dropped=%d rollbacks=%d gate-reprocessed=%d max-tree=%d\n",
		m.EventsIngested, matches, elapsed.Round(time.Millisecond),
		float64(m.EventsIngested)/elapsed.Seconds(),
		m.WindowsOpened, m.VersionsCreated, m.VersionsDropped,
		m.Rollbacks, m.GateReprocessed, m.MaxTreeSize)
	return nil
}
