// Command spectre-server runs a shared SPECTRE runtime fed over TCP. It
// accepts any number of client connections; each client submits its own
// query (a leading query control frame, see spectre-client -query) and
// streams events for it. All queries run concurrently on one key-
// partitioned runtime multiplexed over a shared worker pool.
//
// Usage:
//
//	spectre-server -addr :7071 -workers 16
//	spectre-server -addr :7071 -query query.mrq            # legacy clients
//	spectre-server -addr :7071 -max-conns 1 -query q.mrq   # one-shot
//
// Clients that send no query frame fall back to the -query file (the
// legacy single-query deployment of the paper's evaluation setup). The
// server prints each detected complex event and a per-connection metrics
// summary; -max-conns N exits after N connections drain.
//
// On SIGINT/SIGTERM the server stops accepting, unwedges every connection
// stream, and drains the admitted backlog through Runtime.Shutdown with a
// -drain-timeout deadline; queries that miss it are aborted instead of
// dying mid-write.
//
// -pprof serves net/http/pprof (live CPU/heap/goroutine profiles of the
// running runtime) on a separate address, e.g. -pprof localhost:6060.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-server:", err)
		os.Exit(1)
	}
}

type serverOpts struct {
	instances int
	shards    int
	quiet     bool
	fallback  string // query text for clients that send no query frame
}

func run() error {
	var (
		addr         = flag.String("addr", ":7071", "listen address")
		queryFile    = flag.String("query", "", "fallback query file for clients that send no query frame")
		instances    = flag.Int("instances", 4, "operator-instance slots per shard")
		shards       = flag.Int("shards", 0, "override shard count for partitioned queries (0 = query's SHARDS, then GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "shared worker-pool size (0 = GOMAXPROCS)")
		maxConns     = flag.Int("max-conns", 0, "exit after this many connections (0 = serve forever)")
		quiet        = flag.Bool("quiet", false, "suppress per-event output (throughput measurements)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline after SIGINT/SIGTERM")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// DefaultServeMux carries the /debug/pprof handlers via the
		// net/http/pprof import; live profiles of a serving runtime:
		//   go tool pprof http://localhost:6060/debug/pprof/profile
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(os.Stderr, "spectre-server: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "spectre-server: pprof:", err)
			}
		}()
	}

	opts := serverOpts{instances: *instances, shards: *shards, quiet: *quiet}
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		opts.fallback = string(src)
	}

	// ctx ends on the first SIGINT/SIGTERM; a second signal kills the
	// process the default way (stop() restores default handling).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The runtime's own registry only backs programmatic partition options;
	// every connection parses its query into a private registry so that
	// type interning stays single-writer per stream.
	var rtOpts []spectre.RuntimeOption
	if *workers > 0 {
		rtOpts = append(rtOpts, spectre.WithWorkers(*workers))
	}
	rt, err := spectre.NewRuntime(spectre.NewRegistry(), rtOpts...)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "spectre-server: listening on %s (multi-query runtime, %d-slot shards)\n",
		*addr, *instances)

	// Shutdown path: stop accepting as soon as the signal lands; the
	// per-connection watchers (AbortReadsOnDone) unwedge the streams.
	go func() {
		<-ctx.Done()
		ln.Close()
	}()

	var wg sync.WaitGroup
	served := 0
	var acceptErr error
	for (*maxConns <= 0 || served < *maxConns) && ctx.Err() == nil {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		served++
		id := served
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := serveConn(ctx, rt, conn, id, opts); err != nil {
				fmt.Fprintf(os.Stderr, "spectre-server: conn %d: %v\n", id, err)
			}
		}()
	}
	ln.Close()
	wg.Wait()

	// Drain whatever the connections admitted, bounded by -drain-timeout.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := rt.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "spectre-server: drain timeout after %v: aborted remaining queries\n", *drainTimeout)
	} else if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "spectre-server: drained cleanly after signal")
	}
	return acceptErr
}

// serveConn handles one client: read its query, submit it to the shared
// runtime, feed its event stream, drain and report. A done ctx unwedges
// the connection read and drains what was admitted instead of dying
// mid-stream.
func serveConn(ctx context.Context, rt *spectre.Runtime, conn net.Conn, id int, opts serverOpts) error {
	defer conn.Close()
	stopWatch := transport.AbortReadsOnDone(ctx, conn)
	defer stopWatch()

	reg := spectre.NewRegistry()
	r := transport.NewReader(conn, reg)

	queryText, ok, err := r.ReadQuery()
	if err != nil {
		if transport.IsClosedOrCanceled(err) && ctx.Err() != nil {
			return nil
		}
		return err
	}
	if !ok {
		if opts.fallback == "" {
			return fmt.Errorf("client sent no query frame and no -query fallback is configured")
		}
		queryText = opts.fallback
	}
	query, err := spectre.ParseQuery(queryText, reg)
	if err != nil {
		return err
	}

	subOpts := []spectre.Option{spectre.WithInstances(opts.instances)}
	if opts.shards > 0 && query.Partition != nil {
		subOpts = append(subOpts, spectre.WithShards(opts.shards))
	}
	matches := 0
	h, err := rt.Submit(context.Background(), query, spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		matches++
		if !opts.quiet {
			fmt.Printf("[conn %d] %s\n", id, ce.String())
		}
	}), subOpts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spectre-server: conn %d: query %s on %d shard(s)\n",
		id, h.Name(), h.Shards())

	src, srcErr := transport.SourceFromReader(r)
	start := time.Now()
	feedErr := func() error {
		for {
			ev, more := src.Next()
			if !more {
				return nil
			}
			if err := h.Feed(ctx, ev); err != nil {
				return err
			}
		}
	}()
	h.Drain()
	elapsed := time.Since(start)
	if feedErr != nil && !errors.Is(feedErr, context.Canceled) {
		return fmt.Errorf("feed error: %w", feedErr)
	}
	if err := srcErr(); err != nil && !(transport.IsClosedOrCanceled(err) && ctx.Err() != nil) {
		return fmt.Errorf("stream error: %w", err)
	}
	m := h.Metrics()
	fmt.Fprintf(os.Stderr,
		"spectre-server: conn %d: %d events, %d matches in %v (%.0f events/sec)\n"+
			"  shards=%d windows=%d versions=%d dropped=%d rollbacks=%d gate-reprocessed=%d max-tree=%d\n",
		id, m.EventsIngested, matches, elapsed.Round(time.Millisecond),
		float64(m.EventsIngested)/elapsed.Seconds(), h.Shards(),
		m.WindowsOpened, m.VersionsCreated, m.VersionsDropped,
		m.Rollbacks, m.GateReprocessed, m.MaxTreeSize)
	return nil
}
