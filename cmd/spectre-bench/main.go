// Command spectre-bench regenerates the paper's evaluation figures
// (Figure 10(a)–(f), Figure 11(a)/(b), and the §4.2.3 T-REX comparison)
// on the local machine and prints one table per figure.
//
// Usage:
//
//	spectre-bench -exp all
//	spectre-bench -exp fig10a,fig10d -instances 1,2,4 -repeats 5
//	spectre-bench -exp speculation -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Measured medians go to stdout; record them in EXPERIMENTS.md alongside
// the paper's reference shapes. -cpuprofile/-memprofile write pprof
// profiles covering the selected experiments. -json-dir additionally
// writes one machine-readable BENCH_<experiment>.json per experiment
// (rows with ev/s and allocs/op, the full configuration, the git SHA),
// for diffing runs across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/spectrecep/spectre/internal/bench"
)

// report is the schema of BENCH_<experiment>.json.
type report struct {
	Experiment string        `json:"experiment"`
	GitSHA     string        `json:"git_sha"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Config     bench.Options `json:"config"`
	Rows       []reportRow   `json:"rows"`
}

type reportRow struct {
	Figure      string  `json:"figure"`
	Label       string  `json:"label"`
	K           int     `json:"k,omitempty"`
	Value       float64 `json:"value"`
	Metric      string  `json:"metric"`
	Min         float64 `json:"min"`
	Median      float64 `json:"median"`
	Max         float64 `json:"max"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	GroundTruth float64 `json:"ground_truth,omitempty"`
}

// gitSHA resolves HEAD for provenance; bench results are meaningless
// without the code revision that produced them.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func writeJSON(dir, id string, opt *bench.Options, rows []bench.Row) error {
	rep := report{
		Experiment: id,
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     *opt,
	}
	rep.Config.Out = nil // not serializable, not configuration
	for _, r := range rows {
		rep.Rows = append(rep.Rows, reportRow{
			Figure: r.Figure, Label: r.Label, K: r.K,
			Value: r.Value, Metric: r.Metric,
			Min: r.Candles.Min, Median: r.Candles.Median, Max: r.Candles.Max,
			AllocsPerOp: r.AllocsPerOp, GroundTruth: r.GroundTruth,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "spectre-bench: wrote", path)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(bench.ExperimentOrder, ", ")+") or 'all'")
		repeats   = flag.Int("repeats", 3, "repetitions per configuration (paper: 10)")
		instances = flag.String("instances", "1,2,4,8", "comma-separated operator-instance counts")
		window    = flag.Int("window", 2000, "window size ws in events for Q1/Q2 (paper: 8000)")
		slide     = flag.Int("slide", 0, "window slide s for Q2 (default ws/8; paper: 1000)")
		symbols   = flag.Int("symbols", 500, "NYSE dataset symbols (paper: ~3000)")
		minutes   = flag.Int("minutes", 200, "NYSE dataset minutes")
		randEv    = flag.Int("rand-events", 100000, "RAND dataset events (paper: 3M)")
		seed      = flag.Int64("seed", 42, "dataset seed")
		shards    = flag.String("shards", "1,2,4,8", "comma-separated shard counts for the partition experiment")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
		jsonDir   = flag.String("json-dir", "", "write machine-readable BENCH_<experiment>.json files to this directory")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spectre-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "spectre-bench: memprofile:", err)
			}
		}()
	}

	ks, err := parseInts(*instances)
	if err != nil {
		return fmt.Errorf("bad -instances: %w", err)
	}
	ns, err := parseInts(*shards)
	if err != nil {
		return fmt.Errorf("bad -shards: %w", err)
	}
	opt := &bench.Options{
		Repeats:     *repeats,
		Instances:   ks,
		WindowSize:  *window,
		Slide:       *slide,
		NYSESymbols: *symbols,
		NYSEMinutes: *minutes,
		RandEvents:  *randEv,
		Seed:        *seed,
		Shards:      ns,
		Out:         os.Stdout,
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = bench.ExperimentOrder
	}
	exps := opt.Experiments()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := exps[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(bench.ExperimentOrder, ", "))
		}
		rows, err := runner()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, id, opt, rows); err != nil {
				return fmt.Errorf("%s: json: %w", id, err)
			}
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no instance counts")
	}
	return out, nil
}
