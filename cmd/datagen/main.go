// Command datagen generates the evaluation datasets (the synthetic NYSE
// quote stream and the RAND uniform-symbol stream, paper §4.1) in the
// repository's text format, for use with spectre-client / spectre-server.
//
// Usage:
//
//	datagen -dataset nyse -symbols 500 -minutes 200 -out nyse.events
//	datagen -dataset rand -events 100000 -out rand.events
package main

import (
	"flag"
	"fmt"
	"os"

	spectre "github.com/spectrecep/spectre"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ds      = flag.String("dataset", "nyse", "dataset to generate: nyse or rand")
		out     = flag.String("out", "", "output file (default stdout)")
		symbols = flag.Int("symbols", 500, "number of stock symbols")
		leaders = flag.Int("leaders", 16, "number of blue-chip leader symbols (nyse)")
		minutes = flag.Int("minutes", 200, "stream length in minutes (nyse)")
		events  = flag.Int("events", 100000, "stream length in events (rand)")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	reg := spectre.NewRegistry()
	var evs []spectre.Event
	switch *ds {
	case "nyse":
		evs = spectre.GenerateNYSE(reg, spectre.NYSEConfig{
			Symbols: *symbols, Leaders: *leaders, Minutes: *minutes, Seed: *seed,
		})
	case "rand":
		evs = spectre.GenerateRand(reg, spectre.RandConfig{
			Symbols: *symbols, Events: *events, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown dataset %q (want nyse or rand)", *ds)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := spectre.WriteEvents(w, reg, evs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d events\n", len(evs))
	return nil
}
