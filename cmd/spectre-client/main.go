// Command spectre-client reads events from a dataset file and streams
// them to a spectre-server over TCP, as fast as possible (the throughput
// measurement mode of the paper's evaluation) or rate-limited. With
// -query it first submits its own query to the server's shared runtime
// (the multi-query deployment); without it the server's fallback query
// applies.
//
// Usage:
//
//	spectre-client -addr localhost:7071 -file nyse.events
//	spectre-client -addr localhost:7071 -file nyse.events -query q.mrq
//	spectre-client -addr localhost:7071 -file nyse.events -rate 10000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:7071", "server address")
		file      = flag.String("file", "", "dataset file (datagen text format)")
		queryFile = flag.String("query", "", "query file to submit before streaming (multi-query server)")
		rate      = flag.Int("rate", 0, "events per second (0 = unthrottled)")
	)
	flag.Parse()
	if *file == "" {
		return fmt.Errorf("-file is required")
	}
	// SIGINT/SIGTERM stops the send mid-stream but still closes the write
	// side cleanly, so the server drains what was sent instead of seeing
	// a torn frame.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	reg := spectre.NewRegistry()
	events, err := spectre.ReadEvents(f, reg)
	if err != nil {
		return err
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	if *queryFile != "" {
		text, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		qw := transport.NewWriter(conn, reg)
		if err := qw.WriteQuery(string(text)); err != nil {
			return err
		}
		if err := qw.Flush(); err != nil {
			return err
		}
	}

	start := time.Now()
	sent := len(events)
	if *rate <= 0 {
		err := transport.Send(ctx, conn.(*net.TCPConn), reg, events)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "spectre-client: interrupted; closed stream early")
		} else if err != nil {
			return err
		}
	} else {
		w := transport.NewWriter(conn, reg)
		interval := time.Second / time.Duration(*rate)
		next := time.Now()
		for i := range events {
			if ctx.Err() != nil {
				sent = i
				fmt.Fprintln(os.Stderr, "spectre-client: interrupted; closed stream early")
				break
			}
			if err := w.WriteEvent(&events[i]); err != nil {
				return err
			}
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				if err := w.Flush(); err != nil {
					return err
				}
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
				}
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := tc.CloseWrite(); err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "spectre-client: sent %d events in %v (%.0f events/sec)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	return nil
}
