// Command spectre-client reads events from a dataset file and streams
// them to a spectre-server over TCP, as fast as possible (the throughput
// measurement mode of the paper's evaluation) or rate-limited. With
// -query it first submits its own query to the server's shared runtime
// (the multi-query deployment); without it the server's fallback query
// applies.
//
// With -reconnect the client survives a server restart: every
// connection opens with a resume handshake (the server answers with the
// position its durable WAL — spectre-server -state-dir — already
// journalled), broken connections are retried with capped exponential
// backoff plus jitter, and rate-limited streams carry application-level
// heartbeats so a dead server surfaces as a write error within seconds
// instead of an idle hang.
//
// Usage:
//
//	spectre-client -addr localhost:7071 -file nyse.events
//	spectre-client -addr localhost:7071 -file nyse.events -query q.mrq
//	spectre-client -addr localhost:7071 -file nyse.events -rate 10000
//	spectre-client -addr localhost:7071 -file nyse.events -query q.mrq -reconnect
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/transport"
)

// heartbeatEvery paces keepalive frames on rate-limited streams.
const heartbeatEvery = 2 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "localhost:7071", "server address")
		file       = flag.String("file", "", "dataset file (datagen text format)")
		queryFile  = flag.String("query", "", "query file to submit before streaming (multi-query server)")
		rate       = flag.Int("rate", 0, "events per second (0 = unthrottled)")
		reconnect  = flag.Bool("reconnect", false, "resume over reconnects: retry broken connections with backoff and ask the server where to resume (requires a durable server, -state-dir)")
		maxRetries = flag.Int("max-retries", 0, "give up after this many consecutive failed attempts (0 = retry until interrupted)")
	)
	flag.Parse()
	if *file == "" {
		return fmt.Errorf("-file is required")
	}
	// SIGINT/SIGTERM stops the send mid-stream but still closes the write
	// side cleanly, so the server drains what was sent instead of seeing
	// a torn frame.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	reg := spectre.NewRegistry()
	events, err := spectre.ReadEvents(f, reg)
	if err != nil {
		return err
	}

	var queryText string
	if *queryFile != "" {
		text, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		queryText = string(text)
	}

	start := time.Now()
	if !*reconnect {
		sent, err := sendOnce(ctx, *addr, reg, events, queryText, *rate, false)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "spectre-client: interrupted; closed stream early")
		} else if err != nil {
			return err
		}
		report(sent, time.Since(start))
		return nil
	}

	// Reconnect loop: each attempt re-handshakes and the server's resume
	// offset decides what is left to send, so a mid-stream server restart
	// costs only the backoff delay plus the unjournalled suffix.
	backoff := transport.Backoff{Min: 200 * time.Millisecond, Max: 10 * time.Second}
	attempt := 0
	totalSent := 0
	for {
		sent, err := sendOnce(ctx, *addr, reg, events, queryText, *rate, true)
		totalSent += sent
		if err == nil {
			report(totalSent, time.Since(start))
			return nil
		}
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "spectre-client: interrupted; closed stream early")
			report(totalSent, time.Since(start))
			return nil
		}
		if sent > 0 {
			attempt = 0 // the connection made progress; restart the backoff
		}
		attempt++
		if *maxRetries > 0 && attempt > *maxRetries {
			// The retry budget is spent: surface a typed error carrying the
			// attempt count, so scripts can errors.As on *ClusterError.
			return &spectre.ClusterError{Op: "reconnect", Addr: *addr, Attempts: attempt, Err: err}
		}
		d := backoff.Next(attempt - 1)
		fmt.Fprintf(os.Stderr, "spectre-client: connection lost (%v); retrying in %v\n", err, d.Round(time.Millisecond))
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			report(totalSent, time.Since(start))
			return nil
		}
	}
}

func report(sent int, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr, "spectre-client: sent %d events in %v (%.0f events/sec)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
}

// sendOnce runs one connection: dial, handshake, stream, close-write. In
// resume mode it asks the server where to start and sends events[pos:];
// otherwise it sends everything. It returns how many events were written
// on this connection (not necessarily received) and the first error.
func sendOnce(ctx context.Context, addr string, reg *spectre.Registry, events []spectre.Event,
	queryText string, rate int, resume bool) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()

	w := transport.NewWriter(conn, reg)
	from := 0
	if resume {
		if err := w.WriteQueryResume(queryText); err != nil {
			return 0, err
		}
		if err := w.Flush(); err != nil {
			return 0, err
		}
		pos, err := transport.NewReader(conn, reg).ReadResume()
		if err != nil {
			return 0, fmt.Errorf("resume handshake: %w", err)
		}
		if pos > uint64(len(events)) {
			return 0, fmt.Errorf("server resume position %d beyond dataset (%d events)", pos, len(events))
		}
		from = int(pos)
		if from > 0 {
			fmt.Fprintf(os.Stderr, "spectre-client: server resumed at event %d\n", from)
		}
	} else if queryText != "" {
		if err := w.WriteQuery(queryText); err != nil {
			return 0, err
		}
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}

	if rate <= 0 {
		if err := transport.Send(ctx, conn, reg, events[from:]); err != nil {
			// Send flushes what it wrote even on error; the server's next
			// resume answer is the ground truth for what arrived.
			return len(events) - from, err
		}
		return len(events) - from, nil
	}

	sent := 0
	interval := time.Second / time.Duration(rate)
	next := time.Now()
	for i := from; i < len(events); i++ {
		if ctx.Err() != nil {
			break
		}
		if err := w.WriteEvent(&events[i]); err != nil {
			return sent, err
		}
		sent++
		next = next.Add(interval)
		if err := waitThrottled(ctx, w, next); err != nil {
			return sent, err
		}
	}
	if err := w.Flush(); err != nil {
		return sent, err
	}
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		if err := cw.CloseWrite(); err != nil {
			return sent, err
		}
	}
	if ctx.Err() != nil {
		return sent, context.Canceled
	}
	return sent, nil
}

// waitThrottled sleeps until next, flushing buffered frames first and
// emitting a heartbeat every heartbeatEvery so a dead server fails the
// connection during the wait instead of after it.
func waitThrottled(ctx context.Context, w *transport.Writer, next time.Time) error {
	for {
		d := time.Until(next)
		if d <= 0 {
			return nil
		}
		if err := w.Flush(); err != nil {
			return err
		}
		wait := d
		if wait > heartbeatEvery {
			wait = heartbeatEvery
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
			if time.Until(next) > 0 {
				if err := w.WriteHeartbeat(); err != nil {
					return err
				}
				if err := w.Flush(); err != nil {
					return err
				}
			}
		case <-ctx.Done():
			timer.Stop()
			return nil
		}
	}
}
