package spectre

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/sched"
)

// Scheduler selects the scheduling policy of an engine or a submitted
// query: which window versions occupy the k operator-instance slots each
// maintenance cycle, and how the slot pool and the speculation budget
// are sized at runtime. Obtain one from TopKScheduler,
// FixedProbScheduler or AdaptiveScheduler and install it with
// WithScheduler.
//
// Every policy sits above the engine's final validation gate: the
// delivered output is byte-identical to sequential processing under each
// of them. Policies change throughput, latency and resource usage —
// never results.
type Scheduler struct {
	cfg sched.Config
	err error
}

// String names the scheduler.
func (s Scheduler) String() string { return s.cfg.Kind.String() }

// TopKScheduler is the paper's scheduling policy (Fig. 7) and the
// default: a fixed pool of k slots (WithInstances) assigned to the k
// window versions with the highest survival probability under the
// learned completion model.
func TopKScheduler() Scheduler {
	return Scheduler{cfg: sched.Config{Kind: sched.TopK}}
}

// FixedProbScheduler is the baseline of the paper's Figure 11: top-k
// scheduling under a constant completion probability p in [0, 1] for
// every open consumption group, instead of the learned Markov model.
// Resolved groups keep their certain outcome. Use it to reproduce the
// figure or as a model-free reference point.
func FixedProbScheduler(p float64) Scheduler {
	if !(p >= 0 && p <= 1) { // negated form rejects NaN too
		return Scheduler{err: fmt.Errorf("spectre: FixedProbScheduler(%g): probability must be in [0, 1]", p)}
	}
	return Scheduler{cfg: sched.Config{Kind: sched.FixedProb, FixedP: p}}
}

// AdaptiveScheduler selects versions like TopKScheduler but resizes the
// effective slot count and the speculation budget at runtime from
// observed load: slot utilization, queue depth and the rollback rate.
// Idle slots are parked (their goroutines block; pool workers skip
// them); under overload or rollback storms the speculation budget is cut
// so the root chain gets the cycles, and it recovers once the shard is
// healthy. Bound the adaptation with WithAdaptiveInstances and
// WithAdaptiveSpeculation; without explicit bounds the slot pool adapts
// within [1, WithInstances] and the budget within
// [max(16, WithMaxSpeculation/8), WithMaxSpeculation].
func AdaptiveScheduler() Scheduler {
	return Scheduler{cfg: sched.Config{Kind: sched.Adaptive}}
}

// WithScheduler installs the scheduling policy on an Engine or a Runtime
// submission (default: TopKScheduler). Later scheduling options win:
// WithScheduler overrides the policy kind chosen by an earlier
// WithAdaptiveInstances/WithAdaptiveSpeculation while keeping their
// bounds, and vice versa.
func WithScheduler(s Scheduler) Option {
	return func(c *core.Config) {
		if s.err != nil {
			c.SetError(s.err)
			return
		}
		c.Sched.Kind = s.cfg.Kind
		c.Sched.FixedP = s.cfg.FixedP
		c.SchedSet = true
	}
}

// WithAdaptiveInstances selects the adaptive scheduler and bounds its
// slot pool: the effective instance count k tracks observed load within
// [min, max], starting from WithInstances (clamped into the bounds).
// max is the hard ceiling — the pool never grows past it (nor past the
// machine's useful parallelism); idle slots park down to min.
func WithAdaptiveInstances(min, max int) Option {
	return func(c *core.Config) {
		if min <= 0 || max < min || max > maxOptionValue {
			c.SetError(fmt.Errorf("spectre: WithAdaptiveInstances(%d, %d): bounds must satisfy 1 <= min <= max <= %d", min, max, maxOptionValue))
			return
		}
		c.Sched.Kind = sched.Adaptive
		c.Sched.MinSlots, c.Sched.MaxSlots = min, max
		c.SchedSet = true
	}
}

// WithAdaptiveSpeculation selects the adaptive scheduler and bounds its
// speculation budget: the dependency tree's version cap is cut toward
// min under overload and rollback storms and recovers toward max while
// the shard is healthy. max doubles as WithMaxSpeculation(max) — the
// absolute ceiling on speculative growth. Options apply in order: a
// later WithMaxSpeculation lowers (or raises) the hard ceiling and the
// adaptive budget never exceeds it.
func WithAdaptiveSpeculation(min, max int) Option {
	return func(c *core.Config) {
		if min <= 0 || max < min || max > maxOptionValue {
			c.SetError(fmt.Errorf("spectre: WithAdaptiveSpeculation(%d, %d): bounds must satisfy 1 <= min <= max <= %d", min, max, maxOptionValue))
			return
		}
		c.Sched.Kind = sched.Adaptive
		c.Sched.MinSpec, c.Sched.MaxSpec = min, max
		c.MaxSpeculation = max
		c.SchedSet = true
	}
}
