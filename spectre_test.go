package spectre_test

import (
	"context"
	"testing"
	"time"

	spectre "github.com/spectrecep/spectre"
)

// TestPublicAPIFigure1 drives the whole public surface: registry, query
// parsing, engine construction, run, metrics — reproducing the paper's
// Figure 1(b).
func TestPublicAPIFigure1(t *testing.T) {
	reg := spectre.NewRegistry()
	query, err := spectre.ParseQuery(`
		QUERY influence
		PATTERN (A B)
		DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
		WITHIN 1 min FROM A
		CONSUME (B)
		ON MATCH RESTART LEADER
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	at := func(s int) int64 { return int64(s) * int64(time.Second) }
	events := []spectre.Event{
		{TS: at(0), Type: ta},
		{TS: at(10), Type: ta},
		{TS: at(20), Type: tb},
		{TS: at(40), Type: tb},
		{TS: at(65), Type: tb},
	}

	eng, err := spectre.NewEngine(query,
		spectre.WithInstances(3),
		spectre.WithConsistencyCheckEvery(4),
		spectre.WithBatchSize(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	var got []spectre.ComplexEvent
	if err := eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		got = append(got, ce)
	})); err != nil {
		t.Fatal(err)
	}
	want := []string{"influence@0:0,2", "influence@0:0,3", "influence@1:1,4"}
	if len(got) != len(want) {
		t.Fatalf("got %d complex events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i] {
			t.Fatalf("event %d = %s, want %s", i, got[i].Key(), want[i])
		}
	}
	m := eng.Metrics()
	if m.Matches != 3 || m.EventsConsumed != 3 {
		t.Fatalf("metrics: %d matches, %d consumed; want 3/3", m.Matches, m.EventsConsumed)
	}
}

// TestEnginesAgreeViaPublicAPI cross-checks the three engines on Q1.
func TestEnginesAgreeViaPublicAPI(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 50, Leaders: 4, Minutes: 80, Seed: 5,
	})
	query, err := buildQ1(reg, 6, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, stats, err := spectre.RunSequential(query, append([]spectre.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RunsStarted == 0 {
		t.Fatal("vacuous workload")
	}
	eng, err := spectre.NewEngine(query, spectre.WithInstances(4))
	if err != nil {
		t.Fatal(err)
	}
	var got []spectre.ComplexEvent
	if err := eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		got = append(got, ce)
	})); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SPECTRE %d matches, sequential %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("output %d differs", i)
		}
	}
	// The baseline runs and terminates; its arrival-order semantics may
	// yield a different match set on overlapping windows.
	if _, _, err := spectre.RunBaseline(query, append([]spectre.Event(nil), events...)); err != nil {
		t.Fatal(err)
	}
}

// TestFixedProbabilityOption exercises the Figure 11 configuration path.
func TestFixedProbabilityOption(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateRand(reg, spectre.RandConfig{Symbols: 20, Events: 4000, Seed: 8})
	query, err := buildQ3(reg, 3, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := spectre.RunSequential(query, append([]spectre.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 1} {
		eng, err := spectre.NewEngine(query,
			spectre.WithInstances(2),
			spectre.WithFixedProbability(p),
			spectre.WithMarkov(0.5, 20), // ignored by the fixed predictor; exercises the option
		)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		if err := eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(spectre.ComplexEvent) { count++ })); err != nil {
			t.Fatal(err)
		}
		if count != len(want) {
			t.Fatalf("p=%g: %d matches, want %d", p, count, len(want))
		}
	}
}

// TestDatasetHelpers covers the re-exported dataset utilities.
func TestDatasetHelpers(t *testing.T) {
	if spectre.LeaderSymbol(0) == "" || spectre.Symbol(0) == "" {
		t.Fatal("symbol helpers must produce names")
	}
	reg := spectre.NewRegistry()
	events := spectre.GenerateRand(reg, spectre.RandConfig{Symbols: 5, Events: 100, Seed: 1})
	if len(events) != 100 {
		t.Fatalf("generated %d events", len(events))
	}
}
