package spectre_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/shard"
)

// riseQuerySrc detects two consecutive rising quotes of the same
// partition; fallQuerySrc the falling counterpart with selective
// consumption. Both partition by symbol (event type).
const (
	riseQuerySrc = `
		QUERY rise
		PATTERN (X Y)
		DEFINE X AS X.close > X.open, Y AS Y.close > X.close
		WITHIN 40 EVENTS FROM X
		CONSUME ALL
		PARTITION BY TYPE SHARDS 8
	`
	fallQuerySrc = `
		QUERY fall
		PATTERN (A B)
		DEFINE A AS A.close < A.open, B AS B.close < A.close
		WITHIN 30 EVENTS FROM A
		CONSUME (B)
		PARTITION BY TYPE SHARDS 3
	`
)

// expectedPerPartition routes events exactly like the runtime and runs the
// sequential reference engine on every partition substream, returning the
// multiset of complex-event keys.
func expectedPerPartition(t *testing.T, reg *spectre.Registry, src string, nShards int, events []spectre.Event) map[string]int {
	t.Helper()
	router := shard.NewRouter(nShards, shard.ByType())
	want := make(map[string]int)
	total := 0
	for _, bucket := range router.Split(events) {
		q, err := spectre.ParseQuery(src, reg)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := spectre.RunSequential(q, bucket)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			want[out[i].Key()]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("per-partition reference produced no matches; test is vacuous")
	}
	return want
}

// TestRuntimeShardedCrossCheck is the acceptance cross-check: a Runtime
// hosting two partitioned queries over one stream produces, per query,
// exactly the complex-event set of standalone sequential runs over each
// partition substream.
func TestRuntimeShardedCrossCheck(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 24, Leaders: 4, Minutes: 80, Seed: 5,
	})

	wantRise := expectedPerPartition(t, reg, riseQuerySrc, 8, events)
	wantFall := expectedPerPartition(t, reg, fallQuerySrc, 3, events)

	qRise, err := spectre.ParseQuery(riseQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	qFall, err := spectre.ParseQuery(fallQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	gotRise := make(map[string]int)
	gotFall := make(map[string]int)
	hRise, err := rt.Submit(ctx, qRise, spectre.SinkFunc(func(ce spectre.ComplexEvent) { gotRise[ce.Key()]++ }))
	if err != nil {
		t.Fatal(err)
	}
	hFall, err := rt.Submit(ctx, qFall, spectre.SinkFunc(func(ce spectre.ComplexEvent) { gotFall[ce.Key()]++ }))
	if err != nil {
		t.Fatal(err)
	}
	if hRise.Shards() != 8 || hFall.Shards() != 3 {
		t.Fatalf("shards = %d/%d, want 8/3", hRise.Shards(), hFall.Shards())
	}

	if err := rt.Run(ctx, spectre.FromSlice(events)); err != nil {
		t.Fatal(err)
	}

	assertSameMultiset(t, "rise", gotRise, wantRise)
	assertSameMultiset(t, "fall", gotFall, wantFall)

	if m := hRise.Metrics(); m.Matches != uint64(len(flatten(wantRise))) {
		t.Errorf("rise metrics: %d matches, want %d", m.Matches, len(flatten(wantRise)))
	}
	if m := hRise.Metrics(); m.EventsIngested != uint64(len(events)) {
		t.Errorf("rise ingested %d events across shards, want %d", m.EventsIngested, len(events))
	}
	if sm := hRise.ShardMetrics(); len(sm) != 8 {
		t.Errorf("ShardMetrics returned %d entries, want 8", len(sm))
	}
}

// TestRuntimeSingleShardMatchesEngineOrder checks the unpartitioned path:
// one shard on the shared pool delivers exactly the standalone engine /
// sequential order.
func TestRuntimeSingleShardMatchesEngineOrder(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 16, Leaders: 3, Minutes: 60, Seed: 11,
	})
	src := `
		QUERY rise
		PATTERN (X Y)
		DEFINE X AS X.close > X.open, Y AS Y.close > X.close
		WITHIN 25 EVENTS FROM X
		CONSUME ALL
	`
	q, err := spectre.ParseQuery(src, reg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := spectre.RunSequential(q, append([]spectre.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference produced no matches; test is vacuous")
	}

	ctx := context.Background()
	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var got []spectre.ComplexEvent
	h, err := rt.Submit(ctx, q, spectre.SinkFunc(func(ce spectre.ComplexEvent) { got = append(got, ce) }))
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards() != 1 {
		t.Fatalf("unpartitioned query got %d shards", h.Shards())
	}
	for i := range events {
		if err := h.Feed(ctx, events[i]); err != nil {
			t.Fatal(err)
		}
	}
	h.Drain()

	if len(got) != len(want) {
		t.Fatalf("got %d complex events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("event %d differs: got %s, want %s", i, got[i].Key(), want[i].Key())
		}
	}
}

// TestRuntimeLifecycleErrors covers the close/misuse contract.
func TestRuntimeLifecycleErrors(t *testing.T) {
	reg := spectre.NewRegistry()
	q, err := spectre.ParseQuery(`PATTERN (A B) WITHIN 10 EVENTS FROM A`, reg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Submit(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if err := h.Feed(ctx, spectre.Event{Type: 1}); !errors.Is(err, spectre.ErrHandleClosed) {
		t.Fatalf("Feed after Close = %v, want ErrHandleClosed", err)
	}
	if err := h.TryFeed(spectre.Event{Type: 1}); !errors.Is(err, spectre.ErrHandleClosed) {
		t.Fatalf("TryFeed after Close = %v, want ErrHandleClosed", err)
	}
	if err := h.FeedBatch(ctx, []spectre.Event{{Type: 1}}); !errors.Is(err, spectre.ErrHandleClosed) {
		t.Fatalf("FeedBatch after Close = %v, want ErrHandleClosed", err)
	}
	h.Wait()

	if _, err := rt.Submit(ctx, q, nil, spectre.WithShards(4)); err == nil {
		t.Fatal("WithShards without a partition key must fail")
	}

	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(ctx, q, nil); !errors.Is(err, spectre.ErrRuntimeClosed) {
		t.Fatalf("Submit after Close = %v, want ErrRuntimeClosed", err)
	}
	if err := rt.Run(ctx, spectre.FromSlice(nil)); !errors.Is(err, spectre.ErrRuntimeClosed) {
		t.Fatalf("Run after Close = %v, want ErrRuntimeClosed", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestRuntimeWithPartitionByField exercises the programmatic partition
// option on a payload field.
func TestRuntimeWithPartitionByField(t *testing.T) {
	reg := spectre.NewRegistry()
	accountIdx := reg.FieldIndex("account")
	valueIdx := reg.FieldIndex("value")
	ta := reg.TypeID("T")

	// Per-account pattern: two consecutive events with growing value.
	q, err := spectre.ParseQuery(`
		QUERY grow
		PATTERN (A B)
		DEFINE B AS B.value > A.value
		WITHIN 6 EVENTS FROM A
		CONSUME ALL
	`, reg)
	if err != nil {
		t.Fatal(err)
	}

	nAccounts := 10
	var events []spectre.Event
	mk := func(i int, account, value float64) spectre.Event {
		f := make([]float64, 2)
		f[accountIdx] = account
		f[valueIdx] = value
		return spectre.Event{TS: int64(i), Type: ta, Fields: f}
	}
	state := uint64(99)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < 2000; i++ {
		events = append(events, mk(i, float64(next()%uint64(nAccounts)), float64(next()%1000)))
	}

	nShards := 4
	router := shard.NewRouter(nShards, shard.ByField(accountIdx))
	want := make(map[string]int)
	for _, bucket := range router.Split(events) {
		out, _, err := spectre.RunSequential(q, bucket)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			want[out[i].Key()]++
		}
	}
	if len(want) == 0 {
		t.Fatal("reference produced no matches; test is vacuous")
	}

	ctx := context.Background()
	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	got := make(map[string]int)
	h, err := rt.Submit(ctx, q, spectre.SinkFunc(func(ce spectre.ComplexEvent) { got[ce.Key()]++ }),
		spectre.WithPartitionBy("account"), spectre.WithShards(nShards))
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards() != nShards {
		t.Fatalf("shards = %d, want %d", h.Shards(), nShards)
	}
	// Feed the partitioned stream in batches: same result, one queue
	// handoff per (batch, shard).
	const batch = 100
	for lo := 0; lo < len(events); lo += batch {
		hi := min(lo+batch, len(events))
		if err := h.FeedBatch(ctx, events[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	h.Drain()
	assertSameMultiset(t, "grow", got, want)
}

func assertSameMultiset(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: key %s: got %d, want %d\n%s", label, k, got[k], n, diffMultiset(got, want))
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Fatalf("%s: unexpected key %s (count %d)\n%s", label, k, n, diffMultiset(got, want))
		}
	}
}

func diffMultiset(got, want map[string]int) string {
	return fmt.Sprintf("got %d distinct keys, want %d", len(got), len(want))
}

func flatten(m map[string]int) []string {
	var out []string
	for k, n := range m {
		for i := 0; i < n; i++ {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
