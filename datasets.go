package spectre

import (
	"io"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/stream"
)

// Dataset configurations, re-exported so users can regenerate the paper's
// workloads (see DESIGN.md §4.6 for how the synthetic streams substitute
// the proprietary NYSE data).
type (
	// NYSEConfig parameterizes the synthetic NYSE quote stream.
	NYSEConfig = dataset.NYSEConfig
	// RandConfig parameterizes the uniform random symbol stream.
	RandConfig = dataset.RandConfig
)

// GenerateNYSE generates the synthetic NYSE-like intra-day quote stream
// (paper §4.1): per-minute open/close quotes for cfg.Symbols symbols, the
// first cfg.Leaders of which are the blue-chip leaders of query Q1.
func GenerateNYSE(reg *Registry, cfg NYSEConfig) []Event {
	return dataset.NYSE(reg, cfg)
}

// GenerateRand generates the RAND dataset (paper §4.1): uniformly random
// symbols over a small alphabet.
func GenerateRand(reg *Registry, cfg RandConfig) []Event {
	return dataset.Rand(reg, cfg)
}

// LeaderSymbol returns the name of the i-th blue-chip leader symbol used
// by the NYSE generator and query Q1.
func LeaderSymbol(i int) string { return dataset.LeaderSymbol(i) }

// Symbol returns the name of the i-th ordinary symbol used by the
// generators.
func Symbol(i int) string { return dataset.Symbol(i) }

// WriteEvents encodes events in the repository's text format (one event
// per line: timestamp, type, fields).
func WriteEvents(w io.Writer, reg *Registry, events []Event) error {
	return stream.WriteEvents(w, reg, events)
}

// ReadEvents decodes the text format produced by WriteEvents.
func ReadEvents(r io.Reader, reg *Registry) ([]Event, error) {
	return stream.ReadEvents(r, reg)
}
