// Benchmarks regenerating the paper's evaluation artifacts (§4.2) as Go
// testing.B benchmarks, one family per figure. Each benchmark iteration
// runs a complete engine over a cached dataset and reports throughput as
// events/sec (the paper's metric). Full parameter sweeps with candlestick
// statistics are produced by cmd/spectre-bench; these benchmarks cover
// representative sweep points so `go test -bench=.` exercises every
// experiment.
package spectre_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/query"
)

// benchData lazily generates and caches the datasets shared by the
// benchmarks.
type benchData struct {
	once   sync.Once
	reg    *spectre.Registry
	nyse   []spectre.Event
	random []spectre.Event
}

var data benchData

func (d *benchData) init() {
	d.once.Do(func() {
		d.reg = spectre.NewRegistry()
		d.nyse = spectre.GenerateNYSE(d.reg, spectre.NYSEConfig{
			Symbols: 300, Leaders: 16, Minutes: 100, Seed: 42,
		})
		d.random = spectre.GenerateRand(d.reg, spectre.RandConfig{
			Symbols: 300, Events: 30000, Seed: 42,
		})
	})
}

// q1Query builds the paper's Q1 for the benchmark dataset.
func q1Query(b *testing.B, q, ws int) *spectre.Query {
	b.Helper()
	query, err := buildQ1(data.reg, q, ws, 16)
	if err != nil {
		b.Fatal(err)
	}
	return query
}

// runEngine runs one SPECTRE engine over events and reports events/sec.
func runEngine(b *testing.B, query *spectre.Query, events []spectre.Event, opts ...spectre.Option) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := spectre.NewEngine(query, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(context.Background(), spectre.FromSlice(events), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFig10a measures Q1 throughput at representative
// pattern-size/window-size ratios and instance counts (paper Fig. 10(a)).
func BenchmarkFig10a(b *testing.B) {
	data.init()
	const ws = 1000
	for _, ratio := range []float64{0.005, 0.08, 0.32} {
		qsize := int(ratio * ws)
		if qsize < 1 {
			qsize = 1
		}
		query := q1Query(b, qsize, ws)
		for _, k := range []int{1, 4} {
			b.Run(fmt.Sprintf("ratio=%.3f/k=%d", ratio, k), func(b *testing.B) {
				runEngine(b, query, data.nyse, spectre.WithInstances(k))
			})
		}
	}
}

// BenchmarkFig10b measures Q2 throughput for narrow, wide and impossible
// price bands (paper Fig. 10(b)).
func BenchmarkFig10b(b *testing.B) {
	data.init()
	bands := []struct {
		lo, hi float64
		label  string
	}{
		{95, 105, "narrow"},
		{70, 142, "wide"},
		{50, 1e12, "0cplx"},
	}
	for _, band := range bands {
		query, err := buildQ2(data.reg, 1000, 125, band.lo, band.hi)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{1, 4} {
			b.Run(fmt.Sprintf("band=%s/k=%d", band.label, k), func(b *testing.B) {
				runEngine(b, query, data.nyse, spectre.WithInstances(k))
			})
		}
	}
}

// BenchmarkFig10c measures the splitter's maintenance+scheduling cycle
// rate (paper Fig. 10(c)). The cycles/sec metric is derived from the
// engine's cycle counter.
func BenchmarkFig10c(b *testing.B) {
	data.init()
	query := q1Query(b, 10, 1000)
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				eng, err := spectre.NewEngine(query, spectre.WithInstances(k))
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(context.Background(), spectre.FromSlice(data.nyse), nil); err != nil {
					b.Fatal(err)
				}
				cycles += eng.Metrics().Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkFig10f measures the dependency tree's high-water mark of
// window versions (paper Fig. 10(f)); the value is reported as a metric.
func BenchmarkFig10f(b *testing.B) {
	data.init()
	query := q1Query(b, 10, 1000)
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			maxTree := 0
			for i := 0; i < b.N; i++ {
				eng, err := spectre.NewEngine(query, spectre.WithInstances(k))
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(context.Background(), spectre.FromSlice(data.nyse), nil); err != nil {
					b.Fatal(err)
				}
				if m := eng.Metrics().MaxTreeSize; m > maxTree {
					maxTree = m
				}
			}
			b.ReportMetric(float64(maxTree), "max-versions")
		})
	}
}

// BenchmarkFig11 compares the Markov model against fixed completion
// probabilities on Q3 (paper Fig. 11).
func BenchmarkFig11(b *testing.B) {
	data.init()
	for _, cfg := range []struct {
		n, ws, slide int
		label        string
	}{
		{1, 1000, 100, "ratio=0.002"},
		{49, 500, 50, "ratio=0.1"},
	} {
		query, err := buildQ3(data.reg, cfg.n, cfg.ws, cfg.slide)
		if err != nil {
			b.Fatal(err)
		}
		models := []struct {
			label string
			opts  []spectre.Option
		}{
			{"fixed-0", []spectre.Option{spectre.WithFixedProbability(0)}},
			{"fixed-60", []spectre.Option{spectre.WithFixedProbability(0.6)}},
			{"fixed-100", []spectre.Option{spectre.WithFixedProbability(1)}},
			{"markov", nil},
		}
		for _, m := range models {
			b.Run(cfg.label+"/"+m.label, func(b *testing.B) {
				opts := append([]spectre.Option{spectre.WithInstances(4)}, m.opts...)
				runEngine(b, query, data.random, opts...)
			})
		}
	}
}

// BenchmarkTRexComparison reproduces §4.2.3: the T-REX-style baseline
// versus SPECTRE on Q1.
func BenchmarkTRexComparison(b *testing.B) {
	data.init()
	query := q1Query(b, 10, 1000)
	b.Run("trex", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := spectre.RunBaseline(query, append([]spectre.Event(nil), data.nyse...)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("spectre/k=%d", k), func(b *testing.B) {
			runEngine(b, query, data.nyse, spectre.WithInstances(k))
		})
	}
}

// BenchmarkFeedBatch compares per-event Handle.Feed with batched
// Handle.FeedBatch ingestion on the partitioned trading workload: the
// batch path pays one shard-queue handoff per (batch, shard) instead of
// one lock/wakeup per event. Two workloads bracket the effect: "ingest"
// (a pattern that never starts, so the intake path dominates — here the
// amortization is the whole story) and "detect" (the rise pattern, where
// detection work dilutes it). feed=batch* should beat feed=event.
func BenchmarkFeedBatch(b *testing.B) {
	data.init()
	ctx := context.Background()
	workloads := []struct {
		label string
		query string
	}{
		{"ingest", `
			QUERY spike
			PATTERN (X Y)
			DEFINE X AS X.close > 1000000, Y AS Y.close > 2000000
			WITHIN 64 EVENTS FROM X
			CONSUME ALL
			PARTITION BY TYPE SHARDS 4
		`},
		{"detect", `
			QUERY rise
			PATTERN (X Y)
			DEFINE X AS X.close > X.open, Y AS Y.close > X.close
			WITHIN 64 EVENTS FROM X
			CONSUME ALL
			PARTITION BY TYPE SHARDS 4
		`},
	}
	modes := []struct {
		label string
		batch int
	}{
		{"feed=event", 0},
		{"feed=batch256", 256},
		{"feed=batch1024", 1024},
	}
	for _, wl := range workloads {
		query, err := spectre.ParseQuery(wl.query, data.reg)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range modes {
			b.Run(wl.label+"/"+mode.label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rt, err := spectre.NewRuntime(data.reg)
					if err != nil {
						b.Fatal(err)
					}
					h, err := rt.Submit(ctx, query, nil, spectre.WithInstances(2))
					if err != nil {
						b.Fatal(err)
					}
					if mode.batch == 0 {
						for j := range data.nyse {
							if err := h.Feed(ctx, data.nyse[j]); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						for lo := 0; lo < len(data.nyse); lo += mode.batch {
							hi := min(lo+mode.batch, len(data.nyse))
							if err := h.FeedBatch(ctx, data.nyse[lo:hi]); err != nil {
								b.Fatal(err)
							}
						}
					}
					h.Drain()
					if err := rt.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkSpeculation measures checkpointed speculation forking on the
// consume-heavy RAND workload (Q3, CONSUME ALL, slide ws/4 — every event
// lies in four windows, so most consumption groups fork dependent
// versions). ckpt=off reprocesses every fork from the window start; the
// checkpointed runs replay only the suffix past the divergence point.
// Throughput and allocs/op should both improve with checkpointing on.
func BenchmarkSpeculation(b *testing.B) {
	data.init()
	query, err := buildQ3(data.reg, 3, 1000, 250)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		label string
		opts  []spectre.Option
	}{
		{"ckpt=off", []spectre.Option{spectre.WithoutCheckpoints()}},
		{"ckpt=16", []spectre.Option{spectre.WithCheckpointEvery(16)}},
		{"ckpt=64", []spectre.Option{spectre.WithCheckpointEvery(64)}},
		{"ckpt=default", nil},
	}
	for _, m := range modes {
		b.Run(m.label, func(b *testing.B) {
			opts := append([]spectre.Option{spectre.WithInstances(4)}, m.opts...)
			runEngine(b, query, data.random, opts...)
		})
	}
}

// BenchmarkSched compares the scheduling policies end to end through
// the public Runtime API: TopK (the paper's fixed top-k), FixedProb
// (the Fig. 11 baseline) and Adaptive (slot pool and speculation budget
// track observed load), each under steady and bursty arrival. On a box
// with fewer cores than the provisioned k, adaptive should win by
// parking the slots the machine cannot actually run.
func BenchmarkSched(b *testing.B) {
	data.init()
	ctx := context.Background()
	query := q1Query(b, 80, 1000)
	const kmax = 8
	schedulers := []struct {
		label string
		opts  []spectre.Option
	}{
		{"topk", []spectre.Option{spectre.WithScheduler(spectre.TopKScheduler())}},
		{"fixedprob", []spectre.Option{spectre.WithScheduler(spectre.FixedProbScheduler(0.5))}},
		{"adaptive", []spectre.Option{spectre.WithAdaptiveInstances(1, kmax)}},
	}
	const burst = 16 << 10
	arrivals := []struct {
		label string
		feed  func(b *testing.B, h *spectre.Handle)
	}{
		{"steady", func(b *testing.B, h *spectre.Handle) {
			for lo := 0; lo < len(data.nyse); lo += 1024 {
				hi := min(lo+1024, len(data.nyse))
				if err := h.FeedBatch(ctx, data.nyse[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"bursty", func(b *testing.B, h *spectre.Handle) {
			for lo := 0; lo < len(data.nyse); lo += burst {
				hi := min(lo+burst, len(data.nyse))
				if err := h.FeedBatch(ctx, data.nyse[lo:hi]); err != nil {
					b.Fatal(err)
				}
				if hi < len(data.nyse) {
					time.Sleep(10 * time.Millisecond)
				}
			}
		}},
	}
	for _, arr := range arrivals {
		for _, sc := range schedulers {
			b.Run(arr.label+"/"+sc.label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rt, err := spectre.NewRuntime(data.reg)
					if err != nil {
						b.Fatal(err)
					}
					opts := append([]spectre.Option{
						spectre.WithInstances(kmax),
						spectre.WithQueueCap(8 << 10),
					}, sc.opts...)
					h, err := rt.Submit(ctx, query, nil, opts...)
					if err != nil {
						b.Fatal(err)
					}
					arr.feed(b, h)
					h.Drain()
					if err := rt.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkPlanner measures the cost-based planner on a mixed-type
// workload where 4 of 10 event types are relevant to the query: the
// type-indexed intake prefilter drops the rest before they reach the
// splitter. planned should beat unplanned; the full sweep lives in
// cmd/spectre-bench -exp planner.
func BenchmarkPlanner(b *testing.B) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateRand(reg, spectre.RandConfig{Symbols: 10, Events: 30000, Seed: 42})
	qb := query.New(reg).Name("planner")
	open, closeF := qb.Float("open"), qb.Float("close")
	strongRise := func(ev *query.Event) bool { return closeF.Of(ev) > open.Of(ev)*1.0045 }
	rising := func(ev *query.Event) bool { return closeF.Of(ev) > open.Of(ev) }
	q, err := qb.
		Pattern(
			query.Step("A").Types(spectre.Symbol(0), spectre.Symbol(1)).WhereEvent(strongRise),
			query.Step("B").Types(spectre.Symbol(1), spectre.Symbol(2)).WhereEvent(rising),
			query.Step("C").Types(spectre.Symbol(3)),
		).
		Within(query.Events(2000)).From("A").
		ConsumeAll().
		Build()
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		label string
		opt   spectre.Option
	}{
		{"planned", spectre.WithPlanner()},
		{"unplanned", spectre.WithoutPlanner()},
	}
	for _, m := range modes {
		b.Run(m.label, func(b *testing.B) {
			runEngine(b, q, events, spectre.WithInstances(4), m.opt)
		})
	}
}

// BenchmarkShed measures ingestion under overload with and without
// utility-driven load shedding: a slow matcher predicate pins the shard
// behind the producer, so the no-shedding mode is paced by backpressure
// while WithShedding keeps the producer at full speed by dropping
// low-utility events at the intake. The match-retention comparison
// against random drop lives in cmd/spectre-bench -exp shed.
func BenchmarkShed(b *testing.B) {
	ctx := context.Background()
	reg := spectre.NewRegistry()
	ta, tb := reg.TypeID("A"), reg.TypeID("B")
	var burnSink float64
	burn := func(*query.Event, query.Binder) bool {
		s := 0.0
		for i := 1; i < 100; i++ {
			s += 1.0 / float64(i)
		}
		burnSink = s
		return s > 0
	}
	q, err := query.New(reg).Name("shed").
		Pattern(
			query.Step("A").Types("A").Where(burn),
			query.Step("B").Types("B"),
		).
		Within(query.Events(32)).From("A").
		Consume("B").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	const n = 8_192
	events := make([]spectre.Event, n)
	for i := range events {
		tp := ta
		if i%8 == 7 {
			tp = tb
		}
		events[i] = spectre.Event{TS: int64(i) * int64(time.Millisecond), Type: tp}
	}
	modes := []struct {
		label string
		opts  []spectre.Option
	}{
		{"noshed", nil},
		{"shed", []spectre.Option{spectre.WithShedding()}},
	}
	for _, m := range modes {
		b.Run(m.label, func(b *testing.B) {
			b.ReportAllocs()
			var matches, shed uint64
			for i := 0; i < b.N; i++ {
				rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(1))
				if err != nil {
					b.Fatal(err)
				}
				opts := append([]spectre.Option{spectre.WithQueueCap(2048)}, m.opts...)
				h, err := rt.Submit(ctx, q, nil, opts...)
				if err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(events); lo += 1024 {
					hi := min(lo+1024, len(events))
					if err := h.FeedBatch(ctx, events[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
				h.Drain()
				mt := h.Metrics()
				matches, shed = mt.Matches, mt.ShedEvents
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(matches), "matches")
			b.ReportMetric(float64(shed), "shed-events")
		})
	}
	_ = burnSink
}

// BenchmarkRecovery measures WAL-backed durability (DESIGN.md §11):
// ingest/* compares end-to-end throughput without durability and with
// the file-backed WAL (the durable run journals events, checkpoints and
// cuts off the hot path and group-commits watermarks, so it should stay
// within a few percent), and recover times Submit+Recover over the
// journal a parked run leaves behind. Smoke-friendly at -benchtime=1x;
// the full sweep lives in cmd/spectre-bench -exp recovery.
func BenchmarkRecovery(b *testing.B) {
	data.init()
	ctx := context.Background()
	query := q1Query(b, 20, 2000)
	feed := func(b *testing.B, h *spectre.Handle) {
		for lo := 0; lo < len(data.nyse); lo += 1024 {
			hi := min(lo+1024, len(data.nyse))
			if err := h.FeedBatch(ctx, data.nyse[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, durableMode := range []string{"off", "wal"} {
		b.Run("ingest/durable="+durableMode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var ropts []spectre.RuntimeOption
				if durableMode == "wal" {
					b.StopTimer()
					dir := b.TempDir()
					b.StartTimer()
					ropts = append(ropts, spectre.WithDurability(dir))
				}
				rt, err := spectre.NewRuntime(data.reg, ropts...)
				if err != nil {
					b.Fatal(err)
				}
				h, err := rt.Submit(ctx, query, nil, spectre.WithInstances(2))
				if err != nil {
					b.Fatal(err)
				}
				feed(b, h)
				h.Drain()
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
	b.Run("recover", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Life 1 (untimed): journal the stream durably and park.
			// FeedBatch is asynchronous and parking discards queued input,
			// so wait for the splitter to actually consume everything.
			b.StopTimer()
			dir := b.TempDir()
			rt, err := spectre.NewRuntime(data.reg, spectre.WithDurability(dir))
			if err != nil {
				b.Fatal(err)
			}
			h, err := rt.Submit(ctx, query, nil, spectre.WithInstances(2))
			if err != nil {
				b.Fatal(err)
			}
			feed(b, h)
			deadline := time.Now().Add(30 * time.Second)
			for h.Metrics().EventsIngested < uint64(len(data.nyse)) {
				if time.Now().After(deadline) {
					b.Fatal("ingestion stalled before park")
				}
				time.Sleep(200 * time.Microsecond)
			}
			h.Park()
			if err := rt.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			// Life 2 (timed): reopen the directory, re-submit, recover.
			rt2, err := spectre.NewRuntime(data.reg, spectre.WithDurability(dir))
			if err != nil {
				b.Fatal(err)
			}
			h2, err := rt2.Submit(ctx, query, nil, spectre.WithInstances(2))
			if err != nil {
				b.Fatal(err)
			}
			if err := rt2.Recover(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if pos := h2.Recovered(); len(pos) != 1 || pos[0] == 0 {
				b.Fatalf("recovery replayed nothing (Recovered=%v)", pos)
			}
			h2.Park()
			if err := rt2.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// BenchmarkDistributed measures the distributed submission path
// (DESIGN.md §12) against the in-process runtime on the same
// partitioned query: local runs the sharded Runtime, cluster places the
// same four shards on two loopback workers over real TCP — paying
// framing, the workers' durable in-memory WAL pipelines and the ordered
// merge. Smoke-friendly at -benchtime=1x; the batch-size sweep lives in
// cmd/spectre-bench -exp distributed.
func BenchmarkDistributed(b *testing.B) {
	data.init()
	ctx := context.Background()
	const text = `
		QUERY dist
		PATTERN (X Y)
		DEFINE X AS X.close > X.open, Y AS Y.close > X.close
		WITHIN 40 EVENTS FROM X
		CONSUME ALL
		PARTITION BY TYPE SHARDS 4
	`
	feed := func(feedBatch func([]spectre.Event) error) error {
		for lo := 0; lo < len(data.nyse); lo += 1024 {
			hi := min(lo+1024, len(data.nyse))
			if err := feedBatch(data.nyse[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}
	b.Run("local", func(b *testing.B) {
		b.ReportAllocs()
		q, err := spectre.ParseQuery(text, data.reg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			rt, err := spectre.NewRuntime(data.reg)
			if err != nil {
				b.Fatal(err)
			}
			h, err := rt.Submit(ctx, q, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := feed(func(evs []spectre.Event) error { return h.FeedBatch(ctx, evs) }); err != nil {
				b.Fatal(err)
			}
			h.Drain()
			if err := rt.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("cluster", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl, err := spectre.ListenCluster("127.0.0.1:0", data.reg, spectre.ClusterOptions{MinWorkers: 2})
			if err != nil {
				b.Fatal(err)
			}
			var workers []*spectre.ClusterWorker
			for j := 0; j < 2; j++ {
				w, err := spectre.JoinCluster(ctx, spectre.NewRegistry(), cl.Addr().String(), spectre.ClusterWorkerOptions{})
				if err != nil {
					b.Fatal(err)
				}
				workers = append(workers, w)
			}
			h, err := cl.Submit(ctx, text, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := feed(func(evs []spectre.Event) error { return h.FeedBatch(ctx, evs) }); err != nil {
				b.Fatal(err)
			}
			if err := h.Drain(ctx); err != nil {
				b.Fatal(err)
			}
			for _, w := range workers {
				w.Close()
			}
			if err := cl.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
}

// BenchmarkComms measures the transport cost of the distributed path
// (DESIGN.md §13) as bytes shipped per source event: three
// plan-filterable queries on a two-worker loopback cluster, once with
// coordinator-side pushdown and the compact v2 wire (the default), once
// with pushdown disabled so every routed event ships in full. The
// bytes/event metric comes from the coordinator's per-link transport
// counters. Smoke-friendly at -benchtime=1x; the full mode sweep
// (including the v1 wire and shared-stream dedup) lives in
// cmd/spectre-bench -exp comms.
func BenchmarkComms(b *testing.B) {
	data.init()
	ctx := context.Background()
	texts := make([]string, 3)
	for i, win := range []int{60, 120, 180} {
		texts[i] = fmt.Sprintf(`
			QUERY CQ%d
			PATTERN (A B C)
			DEFINE A AS (A.symbol IN ('BLUE00','BLUE01') AND A.close > A.open),
			       B AS B.close > B.open,
			       C AS C.close > C.open
			WITHIN %d EVENTS FROM A
			CONSUME ALL
			PARTITION BY TYPE SHARDS 4
		`, i, win)
	}
	run := func(b *testing.B, opts spectre.ClusterOptions) {
		b.ReportAllocs()
		var bytes uint64
		for i := 0; i < b.N; i++ {
			cl, err := spectre.ListenCluster("127.0.0.1:0", data.reg, opts)
			if err != nil {
				b.Fatal(err)
			}
			var workers []*spectre.ClusterWorker
			for j := 0; j < 2; j++ {
				w, err := spectre.JoinCluster(ctx, spectre.NewRegistry(), cl.Addr().String(), spectre.ClusterWorkerOptions{})
				if err != nil {
					b.Fatal(err)
				}
				workers = append(workers, w)
			}
			var handles []*spectre.ClusterHandle
			for _, text := range texts {
				h, err := cl.Submit(ctx, text, nil)
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles, h)
			}
			for lo := 0; lo < len(data.nyse); lo += 1024 {
				hi := min(lo+1024, len(data.nyse))
				for _, h := range handles {
					if err := h.FeedBatch(ctx, data.nyse[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
			}
			for _, h := range handles {
				h.Close()
			}
			for _, h := range handles {
				if err := h.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			for _, ls := range cl.LinkStats() {
				bytes += ls.BytesSent
			}
			for _, w := range workers {
				w.Close()
			}
			if err := cl.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bytes)/(float64(len(data.nyse))*float64(b.N)), "bytes/event")
	}
	b.Run("pushdown", func(b *testing.B) { run(b, spectre.ClusterOptions{MinWorkers: 2}) })
	b.Run("full-ship", func(b *testing.B) { run(b, spectre.ClusterOptions{MinWorkers: 2, DisablePushdown: true}) })
}

// BenchmarkSequential measures the reference engine (context for the
// parallel numbers).
func BenchmarkSequential(b *testing.B) {
	data.init()
	query := q1Query(b, 10, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectre.RunSequential(query, append([]spectre.Event(nil), data.nyse...)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data.nyse))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
