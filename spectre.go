// Package spectre is a Go implementation of SPECTRE (SPECulaTive Runtime
// Environment), the window-based parallel complex event processing
// framework with consumption-policy support from
//
//	Mayer, Slo, Tariq, Rothermel, Gräber, Ramachandran:
//	"SPECTRE: Supporting Consumption Policies in Window-Based Parallel
//	Complex Event Processing", ACM Middleware 2017.
//
// Consumption policies remove events from further pattern detection once
// they participate in a detected complex event. In window-based data
// parallelism this creates dependencies between overlapping windows.
// SPECTRE resolves them speculatively: it maintains multiple versions of
// each dependent window (one per assumed outcome of each undecided
// consumption group), predicts the groups' completion probabilities with
// an online-learned Markov model, and schedules the k most probable window
// versions onto k parallel operator instances. The delivered output equals
// sequential processing exactly — no false positives, no false negatives.
//
// # Quick start
//
//	reg := spectre.NewRegistry()
//	query, err := spectre.ParseQuery(`
//	    PATTERN (A B)
//	    DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
//	    WITHIN 1 min FROM A
//	    CONSUME (B)
//	    ON MATCH RESTART LEADER
//	`, reg)
//	// handle err
//	eng, err := spectre.NewEngine(query, spectre.WithInstances(8))
//	// handle err
//	err = eng.Run(ctx, spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
//	    fmt.Println(ce)
//	}))
//
// # Constructing queries
//
// Queries enter the system through two equivalent frontends that compile
// through one lowering path (the query package's Builder):
//
//   - ParseQuery compiles the textual DSL above — the extended
//     MATCH-RECOGNIZE notation of the paper's Figure 9. The authoritative
//     grammar lives in the query package docs.
//   - The query package's fluent builder constructs the same queries in
//     Go, with typed field accessors and arbitrary Go predicates — the
//     natural fit for programmatic query generation.
//
// The builder form of the quick-start query:
//
//	b := query.New(reg)
//	q, err := b.Name("influence").
//	    Pattern(query.Step("A").Types("A"), query.Step("B").Types("B")).
//	    Within(query.Duration(time.Minute)).From("A").
//	    Consume("B").
//	    OnMatch(query.RestartLeader).
//	    Build()
//
// Both report failures as the query package's structured *Error (every
// problem at once; parse errors carry line:column positions and a caret
// excerpt). The Pattern/Step/WindowSpec aliases deprecated in the
// previous release have been removed: the builder is the single way to
// assemble queries programmatically.
//
// # The v2 streaming API
//
// Every streaming entry point takes a context.Context and a Sink:
//
//   - Run/Submit/Feed/FeedBatch unblock with ctx.Err() as soon as the
//     context is done — a cancelled run stops within one ingest cycle,
//     a cancelled Feed stops waiting on a full shard queue.
//   - A Sink replaces the bare emit callback: OnMatch receives matches,
//     OnError asynchronous errors (e.g. a cancelled submission context),
//     OnDrain fires exactly once when the query has fully drained. Wrap a
//     plain function with SinkFunc when that is all you need.
//   - Handle.TryFeed never blocks: a full shard queue rejects the event
//     with an *OverloadError (errors.Is ErrOverloaded), the admission
//     signal overload-aware producers shed load on.
//   - Handle.FeedBatch admits whole batches with one queue handoff per
//     (batch, shard) — the cheap path for high-throughput producers.
//   - Runtime.Shutdown(ctx) drains every query gracefully and aborts
//     whatever misses the deadline.
//
// An Engine serves one query over one stream. Long-lived, multi-tenant
// deployments use Runtime instead: it hosts many concurrent queries,
// partitions each input stream by a key attribute (`PARTITION BY` in the
// query text, or WithPartitionBy/WithPartitionByType) and multiplexes
// every (query, shard) SPECTRE pipeline onto one shared worker pool —
// see Runtime, Handle and examples/partitioned.
//
// # Scheduling
//
// Which window versions get the k operator slots — and how large k and
// the speculation budget are — is a pluggable policy (see Scheduler):
// TopKScheduler is the paper's fixed top-k default, FixedProbScheduler
// the Figure 11 constant-probability baseline, and AdaptiveScheduler
// resizes the slot pool and the speculation budget at runtime from
// observed load (WithAdaptiveInstances / WithAdaptiveSpeculation bound
// it). Policies never change the delivered output, only performance;
// Metrics exposes their signals (SlotUtilization, PolicyResizes,
// CurSlots, CurSpeculation).
//
// # Overload survival
//
// A Runtime submission can opt into graceful degradation under
// sustained overload (DESIGN.md §10): WithShedding drops the
// lowest-utility events at the intake queue once it crosses a watermark
// — bounding queue latency without ever blocking Feed — with the
// utility learned from the query plan's predicate pass rates and each
// type's contribution to emitted matches (Metrics.ShedEvents counts the
// drops). WithWeight and WithLatencyTarget enroll the query in the
// cross-query admission arbiter, which splits the machine's processors
// among co-located queries by weight and boosts queries missing their
// latency SLO; Metrics.EmitLagP50/P99 expose the root-emission lag the
// SLO is measured against.
//
// # Durability and crash recovery
//
// A Runtime built with WithDurability(dir) persists every named query's
// state through a per-shard write-ahead log under dir — the admitted
// ingest journal, periodic matcher checkpoints, and an emission
// watermark fsynced before each match batch is delivered. After a crash,
// a new process re-creates the runtime on the same directory, re-submits
// the same queries and calls Runtime.Recover(ctx):
//
//	rt, err := spectre.NewRuntime(reg, spectre.WithDurability("/var/lib/spectre"))
//	// handle err
//	h, err := rt.Submit(ctx, query, sink) // same query name as before the crash
//	// handle err
//	err = rt.Recover(ctx) // replays the journal, re-forms windows
//	// resume feeding from h.Recovered()[shard] per shard
//
// Each shard seeds from its deepest consistent checkpoint, replays the
// journal suffix, and suppresses matches the previous process already
// delivered (the persisted watermark), so the delivered stream is
// exactly-once over the journalled substream. Handle.Recovered reports
// where producers must resume. DESIGN.md §11 specifies the WAL format,
// the recovery algorithm and the degraded modes.
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package spectre

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/plan"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/internal/trex"
)

// Core data types, re-exported from the internal model.
type (
	// Event is a primitive input event.
	Event = event.Event
	// ComplexEvent is a detected pattern instance.
	ComplexEvent = event.Complex
	// EventType is an interned event type (e.g. a stock symbol).
	EventType = event.Type
	// Registry interns event-type and payload-field names.
	Registry = event.Registry
	// Query is a compiled query: pattern + window specification. Obtain
	// one from ParseQuery or the query package's Builder.
	Query = pattern.Query
	// Source yields events in stream order.
	Source = stream.Source
	// Metrics are the runtime counters of an Engine run.
	Metrics = core.Metrics
	// Predictor predicts consumption-group completion probabilities.
	Predictor = markov.Predictor
	// QueryPlan is the cost-based evaluation plan of a compiled query:
	// the intake type filter, the selectivity-ordered predicate programs
	// and the planner-chosen deployment. Obtain one from Engine.Plan or
	// Handle.Plan; render it with Explain (text) or Info (JSON).
	QueryPlan = plan.Plan
	// PlanInfo is the JSON-serializable snapshot of a QueryPlan.
	PlanInfo = plan.Info
)

// NewRegistry returns an empty type/field registry. Use one registry per
// deployment: the query, the data source and the engine must share it.
func NewRegistry() *Registry { return event.NewRegistry() }

// ParseQuery compiles a textual query in the extended MATCH-RECOGNIZE
// notation of the paper's Figure 9 (PATTERN / DEFINE / WITHIN ... FROM /
// CONSUME; the full grammar is documented in the query package). The
// parser lowers every clause through the query package's Builder, so
// parsed queries and programmatically built ones are interchangeable.
// Errors are the query package's structured *Error with line:column
// positions and a caret excerpt of the offending line.
func ParseQuery(src string, reg *Registry) (*Query, error) {
	return parser.Parse(src, reg)
}

// FromSlice adapts a slice of events into a Source.
func FromSlice(events []Event) Source { return stream.FromSlice(events) }

// FromChan adapts a channel of events into a Source; close the channel to
// end the stream. The returned source is context-aware: a cancelled run
// does not stay blocked on a quiet channel.
func FromChan(ch <-chan Event) Source { return stream.FromChan(ch) }

// Option configures an Engine (and, via Runtime.Submit, a submitted
// query). Invalid arguments — zero, negative or absurdly large counts —
// are reported as an error by the constructor or Submit call the option
// is passed to, never silently replaced with a default.
type Option func(*core.Config)

// maxOptionValue caps count-valued options: values beyond it are
// configuration mistakes (a shard or instance count in the millions buys
// nothing but memory), so they fail validation instead of thrashing.
const maxOptionValue = 1 << 20

// validCount reports whether n is a sane value for the named count
// option, recording the validation error on c otherwise.
func validCount(c *core.Config, option string, n int) bool {
	if n <= 0 || n > maxOptionValue {
		c.SetError(fmt.Errorf("spectre: %s(%d): value must be in [1, %d]", option, n, maxOptionValue))
		return false
	}
	return true
}

// WithInstances sets k, the number of parallel operator instances
// (default 4).
func WithInstances(k int) Option {
	return func(c *core.Config) {
		if validCount(c, "WithInstances", k) {
			c.Instances = k
		}
	}
}

// WithRegistry pins the registry a submission's events (and durable WAL
// records) are interpreted against, instead of the runtime's own.
// Deployments that intern each connection's stream into a private
// registry — spectre-server parses every client's query into one — need
// it so a durable query's WAL carries the name tables its events
// actually use. The query must have been parsed or built against the
// same registry.
func WithRegistry(reg *Registry) Option {
	return func(c *core.Config) {
		if reg == nil {
			c.SetError(fmt.Errorf("spectre: WithRegistry(nil)"))
			return
		}
		c.Reg = reg
	}
}

// WithPredictor replaces the completion-probability model (default: the
// paper's Markov model with α = 0.7, ℓ = 10).
func WithPredictor(p Predictor) Option {
	return func(c *core.Config) { c.Predictor = p }
}

// WithFixedProbability uses a constant completion probability for every
// consumption group (the baseline of the paper's Figure 11).
func WithFixedProbability(p float64) Option {
	return func(c *core.Config) { c.Predictor = markov.Fixed{P: p} }
}

// WithMarkov tunes the Markov model: alpha is the exponential-smoothing
// weight, stepSize is ℓ (precomputed power spacing).
func WithMarkov(alpha float64, stepSize int) Option {
	return func(c *core.Config) {
		c.Markov.Alpha = alpha
		c.Markov.StepSize = stepSize
	}
}

// WithConsistencyCheckEvery sets the periodic consistency-check frequency
// in processed events (paper Fig. 8; default 64).
func WithConsistencyCheckEvery(n int) Option {
	return func(c *core.Config) { c.ConsistencyCheckEvery = n }
}

// WithMaxSpeculation caps the dependency tree's speculative growth
// (default 256 window versions). Beyond the cap new consumption groups
// are not speculated on; the final validation gate keeps the output
// exactly sequential regardless, so the cap only trades throughput for
// bounded memory on adversarial consume-heavy workloads.
func WithMaxSpeculation(n int) Option {
	return func(c *core.Config) { c.MaxSpeculation = n }
}

// WithBatchSize sets how many events an operator instance processes per
// scheduling handoff (default 256).
func WithBatchSize(n int) Option {
	return func(c *core.Config) {
		if validCount(c, "WithBatchSize", n) {
			c.BatchSize = n
		}
	}
}

// WithCheckpointEvery sets the matcher-state checkpoint interval in
// stream positions (default: the batch size). While a window version is
// processed, the engine periodically snapshots its matcher state; new
// speculative versions of the same window fork from the deepest valid
// checkpoint instead of reprocessing the window from the start, and
// rollbacks restart from the latest still-consistent prefix. Smaller
// intervals make forks and rollbacks cheaper at the cost of more
// snapshot work; the delivered output is identical for every setting.
// Use WithoutCheckpoints to disable snapshotting entirely.
func WithCheckpointEvery(n int) Option {
	return func(c *core.Config) {
		if validCount(c, "WithCheckpointEvery", n) {
			c.CheckpointEvery = n
		}
	}
}

// WithoutCheckpoints disables matcher-state checkpointing: speculative
// forks and rollbacks reprocess their window from the start (the
// verbatim behaviour of the paper's Fig. 4).
func WithoutCheckpoints() Option {
	return func(c *core.Config) { c.CheckpointEvery = -1 }
}

// WithQueueCap bounds the per-shard intake queue of a Runtime submission
// (default 65536 events). A full queue blocks Feed/FeedBatch and rejects
// TryFeed with an *OverloadError, so the cap is the admission-control
// knob: smaller caps surface overload sooner, larger caps absorb bursts.
// A standalone Engine ignores it.
func WithQueueCap(n int) Option {
	return func(c *core.Config) {
		if n <= 0 {
			c.SetError(fmt.Errorf("spectre: WithQueueCap(%d): value must be positive", n))
			return
		}
		c.QueueCap = n
	}
}

// WithShedding enables utility-driven load shedding at the intake queue
// of a Runtime submission (DESIGN.md §10). When a shard queue's depth
// crosses a watermark (half the queue cap), the events least likely to
// contribute to a match are dropped first — probabilistically, by a
// utility estimate combining the query plan's predicate pass rates with
// each type's observed contribution to emitted matches — instead of
// blocking Feed/FeedBatch or failing TryFeed. Above the high watermark
// (90% of the cap) everything is dropped, so the queue depth, and with
// it the queueing latency, stays bounded and no Feed caller ever blocks
// indefinitely. Kept events are never reordered: output equals the
// sequential processing of exactly the admitted subsequence. Metrics
// gains ShedEvents; the default is off (shedding trades completeness
// for bounded latency, which only the caller may decide). A standalone
// Engine ignores it.
func WithShedding() Option {
	return func(c *core.Config) { c.Shed = true }
}

// WithWeight sets the query's share of a shared Runtime's processors
// under the cross-query admission arbiter: co-submitted queries with
// weights w1, w2, ... receive processor budgets proportional to their
// weights (each shard always keeps a floor of one), and the adaptive
// scheduler grows a shard's slot pool only up to its granted budget
// instead of assuming the whole machine. Queries that set neither a
// weight nor a latency target are not arbitrated and keep the historical
// whole-machine ceiling. w must be positive and finite; the default
// weight of an arbitrated query is 1.
func WithWeight(w float64) Option {
	return func(c *core.Config) {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			c.SetError(fmt.Errorf("spectre: WithWeight(%v): weight must be positive and finite", w))
			return
		}
		c.Weight = w
	}
}

// WithLatencyTarget declares a root-emission latency SLO for a Runtime
// submission: the time from an event's admission to the emission of the
// matches it participates in. It is acted on twice. The adaptive
// scheduler treats a p99 emission lag beyond the target like queue
// overload and cuts the speculation budget so the root chain gets the
// cycles; and on a shared runtime the admission arbiter boosts the
// query's processor share (up to 4x its weight) while the SLO is
// missed. Setting a target opts the query into arbitration even without
// WithWeight. Observe the lag itself via Metrics.EmitLagP50/P99.
func WithLatencyTarget(d time.Duration) Option {
	return func(c *core.Config) {
		if d <= 0 {
			c.SetError(fmt.Errorf("spectre: WithLatencyTarget(%v): target must be positive", d))
			return
		}
		c.Sched.LatencyTarget = d
	}
}

// WithPlanner enables the cost-based query planner (the default). The
// planner derives, per query, a closed set of acceptable event types and
// hoists purely type- and field-based guards into an intake prefilter
// that drops irrelevant events before they are sharded or buffered;
// splits each step's conjunctive predicate into binding-free and
// binding-dependent parts and reorders them by observed selectivity; and,
// when the deployment is not pinned by explicit options, picks the shard
// count and scheduling policy from the query's estimated per-event cost.
// Plans never change the delivered output — only where work is avoided.
// Inspect the chosen plan with Engine.Plan/Handle.Plan (QueryPlan.Explain
// renders it; spectre-server serves it as JSON per query at
// /debug/spectre/metrics). DESIGN.md §9 documents the legality rules.
func WithPlanner() Option {
	return func(c *core.Config) { c.PlanDisabled = false }
}

// WithoutPlanner disables the cost-based query planner: every event
// reaches every shard's splitter, predicates run in declaration order
// and the deployment uses only the explicit options and their static
// defaults. The delivered output is identical either way; use this to
// benchmark the planner or to rule it out while debugging.
func WithoutPlanner() Option {
	return func(c *core.Config) { c.PlanDisabled = true }
}

// Engine is the parallel SPECTRE runtime for one query. An Engine runs a
// single stream; construct a new one per run.
type Engine struct {
	inner *core.Engine
}

// NewEngine builds a SPECTRE engine for the query. Invalid options and
// query-validation failures are reported as a *QueryError.
func NewEngine(q *Query, opts ...Option) (*Engine, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	// Plan-driven scheduling: unless a policy was pinned with a scheduling
	// option, let the cost estimate choose it (an engine has one shard, so
	// only the policy is plannable here).
	autoSched := false
	if !cfg.PlanDisabled && !cfg.SchedSet && cfg.Err == nil {
		cfg.Sched.Kind = plan.EstimateQuery(q).RecommendedSched
		autoSched = true
	}
	inner, err := core.New(q, cfg)
	if err != nil {
		return nil, queryErr(q, err)
	}
	if p := inner.Plan(); p != nil {
		p.SetDeployment(1, cfg.Sched.Kind, false, autoSched)
	}
	return &Engine{inner: inner}, nil
}

// Plan returns the engine's evaluation plan, or nil when the planner is
// disabled (WithoutPlanner).
func (e *Engine) Plan() *QueryPlan { return e.inner.Plan() }

// Run processes the source and calls sink.OnMatch for every detected
// complex event, in canonical order (window order; detection order within
// a window). The output is exactly what sequential processing would
// produce. When ctx is done, Run stops within one ingest cycle — already
// delivered matches stand, the rest is discarded — reports the context
// error to sink.OnError and returns it. On normal completion sink.OnDrain
// fires before Run returns nil. sink may be nil to discard matches; sink
// methods must not call back into the engine.
func (e *Engine) Run(ctx context.Context, src Source, sink Sink) error {
	var emit func(event.Complex)
	if sink != nil {
		emit = sink.OnMatch
	}
	err := e.inner.Run(ctx, src, emit)
	if sink != nil {
		switch {
		case err == nil:
			sink.OnDrain()
		case errors.Is(err, ErrAlreadyRan):
			// Synchronous misuse, not a stream error: the return value
			// is the only report.
		default:
			sink.OnError(err)
		}
	}
	return err
}

// Metrics returns a snapshot of the runtime counters (throughput inputs,
// speculation statistics, dependency-tree high-water mark, ...).
func (e *Engine) Metrics() Metrics {
	return e.inner.MetricsSnapshot()
}

// SequentialStats summarizes a sequential run (the reference semantics).
type SequentialStats = seqengine.Stats

// RunSequential processes events with the sequential reference engine:
// windows processed to completion one after the other. It defines the
// semantics the parallel engine reproduces, and its
// completed-to-created consumption-group ratio is the "ground truth"
// completion probability of the paper's Figures 10(d)/(e).
func RunSequential(q *Query, events []Event) ([]ComplexEvent, SequentialStats, error) {
	eng, err := seqengine.New(q)
	if err != nil {
		return nil, SequentialStats{}, err
	}
	return eng.Run(events)
}

// BaselineStats summarizes a baseline-engine run.
type BaselineStats = trex.Stats

// RunBaseline processes events with the T-REX-style single-threaded
// baseline engine (general-purpose interpreted automata in
// multi-selection mode, maintaining every partial sequence; the
// comparison system of the paper's §4.2.3). Its detection semantics are
// arrival-ordered with immediate consumption, so match sets can differ
// from the window-ordered reference on overlapping windows.
func RunBaseline(q *Query, events []Event) ([]ComplexEvent, BaselineStats, error) {
	eng, err := trex.NewGeneral(q)
	if err != nil {
		return nil, BaselineStats{}, err
	}
	return eng.Run(events)
}
