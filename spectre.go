// Package spectre is a Go implementation of SPECTRE (SPECulaTive Runtime
// Environment), the window-based parallel complex event processing
// framework with consumption-policy support from
//
//	Mayer, Slo, Tariq, Rothermel, Gräber, Ramachandran:
//	"SPECTRE: Supporting Consumption Policies in Window-Based Parallel
//	Complex Event Processing", ACM Middleware 2017.
//
// Consumption policies remove events from further pattern detection once
// they participate in a detected complex event. In window-based data
// parallelism this creates dependencies between overlapping windows.
// SPECTRE resolves them speculatively: it maintains multiple versions of
// each dependent window (one per assumed outcome of each undecided
// consumption group), predicts the groups' completion probabilities with
// an online-learned Markov model, and schedules the k most probable window
// versions onto k parallel operator instances. The delivered output equals
// sequential processing exactly — no false positives, no false negatives.
//
// # Quick start
//
//	reg := spectre.NewRegistry()
//	query, err := spectre.ParseQuery(`
//	    PATTERN (A B)
//	    DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
//	    WITHIN 1 min FROM A
//	    CONSUME (B)
//	    ON MATCH RESTART LEADER
//	`, reg)
//	// handle err
//	eng, err := spectre.NewEngine(query, spectre.WithInstances(8))
//	// handle err
//	err = eng.Run(spectre.FromSlice(events), func(ce spectre.ComplexEvent) {
//	    fmt.Println(ce)
//	})
//
// An Engine serves one query over one stream. Long-lived, multi-tenant
// deployments use Runtime instead: it hosts many concurrent queries,
// partitions each input stream by a key attribute (`PARTITION BY` in the
// query text, or WithPartitionBy/WithPartitionByType) and multiplexes
// every (query, shard) SPECTRE pipeline onto one shared worker pool —
// see Runtime, Handle and examples/partitioned.
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package spectre

import (
	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/internal/trex"
)

// Core data types, re-exported from the internal model.
type (
	// Event is a primitive input event.
	Event = event.Event
	// ComplexEvent is a detected pattern instance.
	ComplexEvent = event.Complex
	// EventType is an interned event type (e.g. a stock symbol).
	EventType = event.Type
	// Registry interns event-type and payload-field names.
	Registry = event.Registry
	// Query is a compiled query: pattern + window specification.
	Query = pattern.Query
	// Pattern is the pattern part of a query (for programmatic
	// construction; most users should prefer ParseQuery).
	Pattern = pattern.Pattern
	// Step is a single pattern variable.
	Step = pattern.Step
	// WindowSpec describes window formation.
	WindowSpec = pattern.WindowSpec
	// Source yields events in stream order.
	Source = stream.Source
	// Metrics are the runtime counters of an Engine run.
	Metrics = core.Metrics
	// Predictor predicts consumption-group completion probabilities.
	Predictor = markov.Predictor
)

// NewRegistry returns an empty type/field registry. Use one registry per
// deployment: the query, the data source and the engine must share it.
func NewRegistry() *Registry { return event.NewRegistry() }

// ParseQuery compiles a textual query in the extended MATCH-RECOGNIZE
// notation of the paper's Figure 9 (PATTERN / DEFINE / WITHIN ... FROM /
// CONSUME, see internal/parser for the full grammar).
func ParseQuery(src string, reg *Registry) (*Query, error) {
	return parser.Parse(src, reg)
}

// FromSlice adapts a slice of events into a Source.
func FromSlice(events []Event) Source { return stream.FromSlice(events) }

// FromChan adapts a channel of events into a Source; close the channel to
// end the stream.
func FromChan(ch <-chan Event) Source { return stream.FromChan(ch) }

// Option configures an Engine.
type Option func(*core.Config)

// WithInstances sets k, the number of parallel operator instances
// (default 4).
func WithInstances(k int) Option {
	return func(c *core.Config) { c.Instances = k }
}

// WithPredictor replaces the completion-probability model (default: the
// paper's Markov model with α = 0.7, ℓ = 10).
func WithPredictor(p Predictor) Option {
	return func(c *core.Config) { c.Predictor = p }
}

// WithFixedProbability uses a constant completion probability for every
// consumption group (the baseline of the paper's Figure 11).
func WithFixedProbability(p float64) Option {
	return func(c *core.Config) { c.Predictor = markov.Fixed{P: p} }
}

// WithMarkov tunes the Markov model: alpha is the exponential-smoothing
// weight, stepSize is ℓ (precomputed power spacing).
func WithMarkov(alpha float64, stepSize int) Option {
	return func(c *core.Config) {
		c.Markov.Alpha = alpha
		c.Markov.StepSize = stepSize
	}
}

// WithConsistencyCheckEvery sets the periodic consistency-check frequency
// in processed events (paper Fig. 8; default 64).
func WithConsistencyCheckEvery(n int) Option {
	return func(c *core.Config) { c.ConsistencyCheckEvery = n }
}

// WithMaxSpeculation caps the dependency tree's speculative growth
// (default 256 window versions). Beyond the cap new consumption groups
// are not speculated on; the final validation gate keeps the output
// exactly sequential regardless, so the cap only trades throughput for
// bounded memory on adversarial consume-heavy workloads.
func WithMaxSpeculation(n int) Option {
	return func(c *core.Config) { c.MaxSpeculation = n }
}

// WithBatchSize sets how many events an operator instance processes per
// scheduling handoff (default 256).
func WithBatchSize(n int) Option {
	return func(c *core.Config) { c.BatchSize = n }
}

// Engine is the parallel SPECTRE runtime for one query. An Engine runs a
// single stream; construct a new one per run.
type Engine struct {
	inner *core.Engine
}

// NewEngine builds a SPECTRE engine for the query.
func NewEngine(q *Query, opts ...Option) (*Engine, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	inner, err := core.New(q, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Run processes the source and calls emit for every detected complex
// event, in canonical order (window order; detection order within a
// window). The output is exactly what sequential processing would
// produce. emit must not call back into the engine.
func (e *Engine) Run(src Source, emit func(ComplexEvent)) error {
	return e.inner.Run(src, emit)
}

// Metrics returns a snapshot of the runtime counters (throughput inputs,
// speculation statistics, dependency-tree high-water mark, ...).
func (e *Engine) Metrics() Metrics {
	return e.inner.MetricsSnapshot()
}

// SequentialStats summarizes a sequential run (the reference semantics).
type SequentialStats = seqengine.Stats

// RunSequential processes events with the sequential reference engine:
// windows processed to completion one after the other. It defines the
// semantics the parallel engine reproduces, and its
// completed-to-created consumption-group ratio is the "ground truth"
// completion probability of the paper's Figures 10(d)/(e).
func RunSequential(q *Query, events []Event) ([]ComplexEvent, SequentialStats, error) {
	eng, err := seqengine.New(q)
	if err != nil {
		return nil, SequentialStats{}, err
	}
	return eng.Run(events)
}

// BaselineStats summarizes a baseline-engine run.
type BaselineStats = trex.Stats

// RunBaseline processes events with the T-REX-style single-threaded
// baseline engine (general-purpose interpreted automata in
// multi-selection mode, maintaining every partial sequence; the
// comparison system of the paper's §4.2.3). Its detection semantics are
// arrival-ordered with immediate consumption, so match sets can differ
// from the window-ordered reference on overlapping windows.
func RunBaseline(q *Query, events []Event) ([]ComplexEvent, BaselineStats, error) {
	eng, err := trex.NewGeneral(q)
	if err != nil {
		return nil, BaselineStats{}, err
	}
	return eng.Run(events)
}
