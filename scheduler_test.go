package spectre_test

import (
	"context"
	"errors"
	"testing"

	spectre "github.com/spectrecep/spectre"
)

// TestSchedulerOptions verifies the public scheduling options: invalid
// arguments are reported by the constructor, valid configurations run
// and produce identical output across policies.
func TestSchedulerOptions(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{Symbols: 20, Leaders: 4, Minutes: 60, Seed: 3})
	q, err := buildQ1(reg, 5, 200, 4)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("invalid", func(t *testing.T) {
		if _, err := spectre.NewEngine(q, spectre.WithScheduler(spectre.FixedProbScheduler(1.5))); err == nil {
			t.Fatal("FixedProbScheduler(1.5) must fail validation")
		}
		if _, err := spectre.NewEngine(q, spectre.WithAdaptiveInstances(0, 4)); err == nil {
			t.Fatal("WithAdaptiveInstances(0, 4) must fail validation")
		}
		if _, err := spectre.NewEngine(q, spectre.WithAdaptiveSpeculation(64, 8)); err == nil {
			t.Fatal("WithAdaptiveSpeculation(64, 8) must fail validation")
		}
		var qe *spectre.QueryError
		_, err := spectre.NewEngine(q, spectre.WithAdaptiveInstances(4, 2))
		if !errors.As(err, &qe) {
			t.Fatalf("option error %v is not a *QueryError", err)
		}
	})

	want, _, err := spectre.RunSequential(q, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	schedulers := []struct {
		label string
		opts  []spectre.Option
	}{
		{"topk", []spectre.Option{spectre.WithScheduler(spectre.TopKScheduler())}},
		{"fixedprob", []spectre.Option{spectre.WithScheduler(spectre.FixedProbScheduler(0.5))}},
		{"adaptive", []spectre.Option{
			spectre.WithScheduler(spectre.AdaptiveScheduler()),
			spectre.WithAdaptiveInstances(1, 6),
			spectre.WithAdaptiveSpeculation(32, 512),
		}},
	}
	for _, sc := range schedulers {
		t.Run(sc.label, func(t *testing.T) {
			opts := append([]spectre.Option{spectre.WithInstances(4)}, sc.opts...)
			eng, err := spectre.NewEngine(q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			var got []spectre.ComplexEvent
			err = eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
				got = append(got, ce)
			}))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s emitted %d complex events, sequential %d", sc.label, len(got), len(want))
			}
			for i := range want {
				if got[i].Key() != want[i].Key() {
					t.Fatalf("%s: event %d differs: %s vs %s", sc.label, i, got[i].Key(), want[i].Key())
				}
			}
			m := eng.Metrics()
			if m.SlotCyclesActive == 0 {
				t.Fatal("per-engine metrics must expose the control-plane counters")
			}
			if u := m.SlotUtilization(); u < 0 || u > 1 {
				t.Fatalf("slot utilization %f out of range", u)
			}
		})
	}
}
