package spectre_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	spectre "github.com/spectrecep/spectre"
)

// soakQuerySrc pairs every A with the next B in a short window: matches
// start arriving after the second event, so a blocking sink stalls the
// shard almost immediately — the deterministic way to drive the intake
// queue into overload without racing the consumer.
const soakQuerySrc = `
	QUERY soak
	PATTERN (A B)
	DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
	WITHIN 8 EVENTS FROM A
	CONSUME ALL
`

// soakEvents builds n alternating A/B events with increasing timestamps.
func soakEvents(reg *spectre.Registry, n int) []spectre.Event {
	ta := reg.TypeID("A")
	tb := reg.TypeID("B")
	evs := make([]spectre.Event, n)
	for i := range evs {
		tp := ta
		if i%2 == 1 {
			tp = tb
		}
		evs[i] = spectre.Event{TS: int64(i) * int64(time.Millisecond), Type: tp}
	}
	return evs
}

// gateSink records match keys and blocks every OnMatch until the gate
// closes, stalling the shard loop so the intake queue fills on demand.
// entered (optional) is closed when the first OnMatch arrives, so tests
// can wait until the shard is provably stalled.
type gateSink struct {
	gate    <-chan struct{}
	entered chan struct{}
	once    sync.Once
	keys    []string
}

func (g *gateSink) OnMatch(ce spectre.ComplexEvent) {
	if g.entered != nil {
		g.once.Do(func() { close(g.entered) })
	}
	<-g.gate
	g.keys = append(g.keys, ce.Key())
}
func (g *gateSink) OnError(error) {}
func (g *gateSink) OnDrain()      {}

// releaseOnExit closes gate at test exit unless already closed, so a
// failed assert does not deadlock the deferred runtime shutdown behind a
// still-stalled sink.
func releaseOnExit(gate chan struct{}) func() {
	return func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}
}

// TestTryFeedOverloadKeepsSequentialOrder stalls a capacity-64 shard and
// hammers TryFeed past it: rejections must be structured OverloadErrors
// naming the query, shard and occupancy, no call may block, and the
// matches over the accepted events must be exactly a sequential run over
// that kept substream.
func TestTryFeedOverloadKeepsSequentialOrder(t *testing.T) {
	reg := spectre.NewRegistry()
	events := soakEvents(reg, 20_000)
	q, err := spectre.ParseQuery(soakQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	gate := make(chan struct{})
	defer releaseOnExit(gate)()
	sink := &gateSink{gate: gate}
	h, err := rt.Submit(context.Background(), q, sink, spectre.WithQueueCap(64))
	if err != nil {
		t.Fatal(err)
	}

	var kept []spectre.Event
	overloads := 0
	for _, ev := range events {
		err := h.TryFeed(ev)
		if err == nil {
			kept = append(kept, ev)
			continue
		}
		overloads++
		if !errors.Is(err, spectre.ErrOverloaded) {
			t.Fatalf("TryFeed rejection %v does not match ErrOverloaded", err)
		}
		var oe *spectre.OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("TryFeed rejection %v is not an *OverloadError", err)
		}
		if oe.Query != "soak" || oe.Shard != 0 || oe.Cap != 64 {
			t.Fatalf("OverloadError = %+v, want query soak, shard 0, cap 64", oe)
		}
		if oe.Pending <= 0 || oe.Pending > oe.Cap {
			t.Fatalf("OverloadError pending %d out of (0, %d]", oe.Pending, oe.Cap)
		}
	}
	if overloads == 0 {
		t.Fatal("stalled 64-slot queue never overloaded over 20k events; test is vacuous")
	}
	close(gate)
	h.Drain()

	if m := h.Metrics(); m.ShedEvents != 0 {
		t.Fatalf("ShedEvents = %d without WithShedding, want 0", m.ShedEvents)
	}

	qRef, err := spectre.ParseQuery(soakQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := spectre.RunSequential(qRef, kept)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.keys) != len(want) {
		t.Fatalf("runtime emitted %d matches over the kept substream, sequential %d", len(sink.keys), len(want))
	}
	for i := range want {
		if sink.keys[i] != want[i].Key() {
			t.Fatalf("match %d = %s, want %s (sequential order lost)", i, sink.keys[i], want[i].Key())
		}
	}
}

// TestSheddingSurvivesOverload stalls the shard with shedding enabled:
// every producer call must return nil (shed, not rejected), the queue
// must stay bounded, and after release the shed/filtered/ingested
// counters must account for every event fed.
func TestSheddingSurvivesOverload(t *testing.T) {
	reg := spectre.NewRegistry()
	events := soakEvents(reg, 30_000)
	q, err := spectre.ParseQuery(soakQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	gate := make(chan struct{})
	defer releaseOnExit(gate)()
	sink := &gateSink{gate: gate}
	h, err := rt.Submit(context.Background(), q, sink,
		spectre.WithQueueCap(1024), spectre.WithShedding())
	if err != nil {
		t.Fatal(err)
	}

	// First half one at a time, second half in batches: both producer
	// paths must shed instead of rejecting or blocking.
	ctx := context.Background()
	for _, ev := range events[:len(events)/2] {
		if err := h.TryFeed(ev); err != nil {
			t.Fatalf("TryFeed with shedding returned %v, want nil", err)
		}
	}
	const chunk = 512
	for rest := events[len(events)/2:]; len(rest) > 0; {
		n := chunk
		if n > len(rest) {
			n = len(rest)
		}
		if err := h.FeedBatch(ctx, rest[:n]); err != nil {
			t.Fatalf("FeedBatch with shedding returned %v, want nil", err)
		}
		rest = rest[n:]
	}

	close(gate)
	h.Drain()

	m := h.Metrics()
	if m.ShedEvents == 0 {
		t.Fatal("stalled shard shed nothing over 30k events; shedding never engaged")
	}
	if total := m.EventsIngested + m.FilteredEvents + m.ShedEvents; total != uint64(len(events)) {
		t.Fatalf("ingested %d + filtered %d + shed %d = %d, want every one of the %d fed events accounted for",
			m.EventsIngested, m.FilteredEvents, m.ShedEvents, total, len(events))
	}
	if len(sink.keys) == 0 {
		t.Fatal("no matches at all: the kept prefix must still match")
	}
}

// TestFeedBatchDeadlineNotDeadlock fills a stalled no-shedding queue and
// checks that a blocking FeedBatch honors its context deadline instead of
// deadlocking, while the shedding variant never blocks at all.
func TestFeedBatchDeadlineNotDeadlock(t *testing.T) {
	reg := spectre.NewRegistry()
	events := soakEvents(reg, 4_096)
	q, err := spectre.ParseQuery(soakQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	gate := make(chan struct{})
	defer releaseOnExit(gate)()
	sink := &gateSink{gate: gate, entered: make(chan struct{})}
	h, err := rt.Submit(context.Background(), q, sink, spectre.WithQueueCap(128))
	if err != nil {
		t.Fatal(err)
	}

	// Provoke the first match and wait until the sink has the shard
	// stalled — only then is "queue full" a stable condition.
	for _, ev := range events[:8] {
		if err := h.Feed(context.Background(), ev); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-sink.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("shard never reached the sink")
	}

	// Fill the stalled queue to capacity.
	for i := 8; ; i++ {
		if i >= len(events) {
			t.Fatal("never hit capacity on a stalled 128-slot queue")
		}
		if err := h.TryFeed(events[i]); errors.Is(err, spectre.ErrOverloaded) {
			break
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = h.FeedBatch(ctx, events)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FeedBatch on a full queue returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("FeedBatch took %v to honor a 200ms deadline", elapsed)
	}
	if err := h.Feed(ctx, events[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Feed on a full queue returned %v, want DeadlineExceeded", err)
	}
	close(gate)
	h.Drain()

	// Shedding variant: same stall, but no producer call may block even
	// with an unbounded context.
	gate2 := make(chan struct{})
	defer releaseOnExit(gate2)()
	sink2 := &gateSink{gate: gate2}
	h2, err := rt.Submit(context.Background(), q, sink2,
		spectre.WithQueueCap(128), spectre.WithShedding())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if err := h2.FeedBatch(context.Background(), events); err != nil {
				t.Errorf("FeedBatch with shedding returned %v, want nil", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("FeedBatch with shedding blocked on a stalled shard")
	}
	close(gate2)
	h2.Drain()
	if m := h2.Metrics(); m.ShedEvents == 0 {
		t.Fatal("stalled shedding shard recorded no shed events")
	}
}

// TestSheddingIdleIsByteIdentical keeps the queue far below the low
// watermark: shedding enabled but never engaged must be invisible — the
// exact sequential match stream, zero ShedEvents, and live emission-lag
// gauges.
func TestSheddingIdleIsByteIdentical(t *testing.T) {
	reg := spectre.NewRegistry()
	events := soakEvents(reg, 10_000) // well under the 32768 low watermark
	q, err := spectre.ParseQuery(soakQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var keys []string
	h, err := rt.Submit(context.Background(), q,
		spectre.SinkFunc(func(ce spectre.ComplexEvent) { keys = append(keys, ce.Key()) }),
		spectre.WithShedding())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FeedBatch(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	h.Drain()

	m := h.Metrics()
	if m.ShedEvents != 0 {
		t.Fatalf("ShedEvents = %d below the low watermark, want 0", m.ShedEvents)
	}
	if m.EmitLagP50 <= 0 || m.EmitLagP99 <= 0 {
		t.Fatalf("emission-lag gauges p50=%g p99=%g, want both seeded and positive", m.EmitLagP50, m.EmitLagP99)
	}

	qRef, err := spectre.ParseQuery(soakQuerySrc, reg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := spectre.RunSequential(qRef, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("%d matches with idle shedding, sequential %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i].Key() {
			t.Fatalf("match %d = %s, want %s", i, keys[i], want[i].Key())
		}
	}
}
