package spectre_test

import (
	"context"
	"errors"
	"testing"
	"time"

	spectre "github.com/spectrecep/spectre"
)

// TestClusterEndToEnd is the public-API smoke test for distributed
// execution: a coordinator with two loopback workers runs the rise
// query and must produce exactly the per-partition sequential match
// set. (The byte-level ordering guarantee is covered by the golden
// equivalence suite in internal/cluster.)
func TestClusterEndToEnd(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 24, Leaders: 4, Minutes: 60, Seed: 7,
	})
	want := expectedPerPartition(t, reg, riseQuerySrc, 8, events)

	cl, err := spectre.ListenCluster("127.0.0.1:0", reg, spectre.ClusterOptions{
		MinWorkers:    2,
		FlushInterval: time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		w, err := spectre.JoinCluster(ctx, spectre.NewRegistry(), cl.Addr().String(), spectre.ClusterWorkerOptions{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}

	got := make(map[string]int)
	h, err := cl.Submit(ctx, riseQuerySrc, spectre.SinkFunc(func(ce spectre.ComplexEvent) { got[ce.Key()]++ }))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "rise" || h.Shards() != 8 {
		t.Fatalf("handle = %q/%d shards, want rise/8", h.Name(), h.Shards())
	}
	if err := h.FeedBatch(ctx, events); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := h.Drain(waitCtx); err != nil {
		t.Fatal(err)
	}
	assertSameMultiset(t, "cluster rise", got, want)
}

// TestClusterSubmitRejections checks that node-local execution policies
// are rejected synchronously with a *QueryError.
func TestClusterSubmitRejections(t *testing.T) {
	reg := spectre.NewRegistry()
	cl, err := spectre.ListenCluster("127.0.0.1:0", reg, spectre.ClusterOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	cases := []struct {
		label string
		text  string
		opts  []spectre.Option
	}{
		{"shedding", riseQuerySrc, []spectre.Option{spectre.WithShedding()}},
		{"weight", riseQuerySrc, []spectre.Option{spectre.WithWeight(2)}},
		{"scheduler", riseQuerySrc, []spectre.Option{spectre.WithScheduler(spectre.TopKScheduler())}},
	}
	for _, tc := range cases {
		_, err := cl.Submit(ctx, tc.text, nil, tc.opts...)
		var qe *spectre.QueryError
		if !errors.As(err, &qe) {
			t.Errorf("%s: Submit error = %v, want *QueryError", tc.label, err)
		}
	}
}

// TestJoinClusterTypedError checks the satellite contract: exhausting
// the join retry budget surfaces a *ClusterError carrying the attempt
// count.
func TestJoinClusterTypedError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := spectre.JoinCluster(ctx, spectre.NewRegistry(), "127.0.0.1:1", spectre.ClusterWorkerOptions{JoinAttempts: 2})
	var ce *spectre.ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("JoinCluster error = %v, want *ClusterError", err)
	}
	if ce.Op != "join" || ce.Attempts != 2 {
		t.Fatalf("ClusterError = op %q, %d attempts; want join/2", ce.Op, ce.Attempts)
	}
}
