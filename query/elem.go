package query

import "github.com/spectrecep/spectre/internal/pattern"

// Elem is one position of a pattern sequence: a single step (Step, Plus,
// Neg) or an unordered Set. Values are created by this package's
// constructors and passed to Builder.Pattern.
type Elem interface {
	// appendTo lowers the element into the builder's working pattern.
	appendTo(b *Builder)
}

// conjSpec is one recorded AND-operand of a step's predicate; Build
// lowers the list into pattern.Conjunct values for the planner.
type conjSpec struct {
	pred        Predicate
	bindingFree bool
	label       string
	fields      []int
	fieldsKnown bool
}

// stepSpec is the unresolved form of a pattern step: type names are kept
// as strings until Build interns them through the registry. pred is the
// AND-fold of conjs, maintained incrementally so unplanned execution pays
// one closure call per step.
type stepSpec struct {
	name    string
	types   []string
	pred    Predicate
	conjs   []conjSpec
	quant   pattern.Quantifier
	negated bool
}

// StepBuilder configures one pattern variable. Obtain one from Step, Plus
// or Neg; chain Types and Where; then pass it to Builder.Pattern (or
// Set). The zero value is not usable.
type StepBuilder struct {
	s stepSpec
}

// Step declares a pattern variable that binds exactly one event.
func Step(name string) *StepBuilder {
	return &StepBuilder{s: stepSpec{name: name, quant: pattern.One}}
}

// Plus declares a Kleene-plus variable (`B+` in the DSL): one event is
// required, further contiguous matches extend the binding without
// advancing pattern completion (the paper's Q2 band steps).
func Plus(name string) *StepBuilder {
	return &StepBuilder{s: stepSpec{name: name, quant: pattern.OneOrMore}}
}

// Neg declares a negated variable (`!C` in the DSL): if a matching event
// occurs while the negation is active, the partial match is abandoned.
func Neg(name string) *StepBuilder {
	return &StepBuilder{s: stepSpec{name: name, quant: pattern.One, negated: true}}
}

// Types restricts the step to the named event types (interned at Build
// time); repeated calls accumulate. A step with no Types matches any
// type, subject to its Where predicate.
func (sb *StepBuilder) Types(names ...string) *StepBuilder {
	sb.s.types = append(sb.s.types, names...)
	return sb
}

// Where attaches a payload predicate — an arbitrary Go function over the
// candidate event and the bindings accumulated so far. Repeated calls
// AND: the step matches only when every predicate accepts. Predicates
// that read earlier bindings must use Where; ones that only inspect the
// candidate event should prefer WhereEvent, which the planner can hoist
// into the intake prefilter and evaluate first.
func (sb *StepBuilder) Where(p Predicate) *StepBuilder {
	return sb.where(p, false, "where", nil, false)
}

// WhereEvent attaches a binding-free payload predicate: a function of the
// candidate event alone. Semantically identical to Where with the binder
// ignored, but the declaration lets the planner (see internal/plan and
// spectre.WithPlanner) evaluate it before binding-dependent conjuncts and
// hoist it into the type-indexed intake prefilter where legal. The
// predicate must be pure — it may be re-evaluated during rollbacks.
func (sb *StepBuilder) WhereEvent(p func(*Event) bool) *StepBuilder {
	if p == nil {
		return sb
	}
	return sb.where(func(ev *Event, _ Binder) bool { return p(ev) }, true, "where-event", nil, false)
}

// WhereConjunct records one predicate conjunct with an explicit
// binding-free classification and label. It is the lowering target of the
// parser's DEFINE clause (each top-level AND operand arrives separately);
// programmatic callers normally use Where/WhereEvent.
func (sb *StepBuilder) WhereConjunct(p Predicate, bindingFree bool, label string) *StepBuilder {
	return sb.where(p, bindingFree, label, nil, false)
}

// WhereConjunctFields is WhereConjunct with an exhaustive list of the
// payload field indexes the predicate can read (candidate or bound
// events). The parser supplies it from the DEFINE expression AST; the
// declaration lets the distributed transport project shipped events down
// to the fields some predicate actually reads. An empty list is valid
// (type-only predicates). Callers that cannot enumerate the fields must
// use WhereConjunct, which disables projection for the query.
func (sb *StepBuilder) WhereConjunctFields(p Predicate, bindingFree bool, label string, fields []int) *StepBuilder {
	return sb.where(p, bindingFree, label, fields, true)
}

func (sb *StepBuilder) where(p Predicate, bindingFree bool, label string, fields []int, fieldsKnown bool) *StepBuilder {
	if p == nil {
		return sb
	}
	if prev := sb.s.pred; prev != nil {
		sb.s.pred = func(ev *Event, b Binder) bool { return prev(ev, b) && p(ev, b) }
	} else {
		sb.s.pred = p
	}
	sb.s.conjs = append(sb.s.conjs, conjSpec{pred: p, bindingFree: bindingFree, label: label, fields: fields, fieldsKnown: fieldsKnown})
	return sb
}

func (sb *StepBuilder) appendTo(b *Builder) {
	if sb == nil {
		// A typed-nil *StepBuilder inside an Elem slice slips past
		// Pattern's interface nil check; record it like any other bad
		// input instead of panicking.
		b.errf("PATTERN", "nil pattern element")
		return
	}
	b.steps = append(b.steps, resolvedStep{spec: sb.s, elem: len(b.elems), member: -1})
	b.elems = append(b.elems, elemEntry{step: sb.s})
}

// setElem is the Elem produced by Set.
type setElem struct {
	members []*StepBuilder
}

// Set declares an unordered conjunction (the DSL's `SET(X1 ... Xn)`, the
// paper's Q3): every member must bind one event, in any order. Members
// must be plain Step variables — Plus and Neg members are rejected at
// Build time.
func Set(members ...*StepBuilder) Elem {
	return setElem{members: members}
}

func (se setElem) appendTo(b *Builder) {
	entry := elemEntry{set: make([]stepSpec, 0, len(se.members))}
	for mi, m := range se.members {
		if m == nil {
			b.errf("PATTERN", "nil step in SET element")
			continue
		}
		if m.s.negated || m.s.quant != pattern.One {
			b.errf(stepClause(m.s.name), "SET members must be plain steps (no Plus/Neg)")
		}
		b.steps = append(b.steps, resolvedStep{spec: m.s, elem: len(b.elems), member: mi})
		entry.set = append(entry.set, m.s)
	}
	if len(entry.set) == 0 {
		b.errf("PATTERN", "empty SET element")
	}
	b.elems = append(b.elems, entry)
}
