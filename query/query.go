package query

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// Aliases into the compiled query model. *Query values built here are the
// same type the rest of the spectre API consumes (spectre.Query is the
// same alias), so Build output feeds spectre.NewEngine / Runtime.Submit
// directly.
type (
	// Query is a compiled query: pattern, window specification and
	// optional partitioning. Identical to spectre.Query.
	Query = pattern.Query
	// Predicate is a step's payload predicate: an arbitrary Go function
	// over the candidate event and the bindings accumulated so far.
	Predicate = pattern.Predicate
	// StartPredicate decides whether an event opens a new window. It sees
	// no bindings because windows form before pattern detection.
	StartPredicate = pattern.StartPredicate
	// Binder exposes the events already bound by a partial match, indexed
	// by flat step position (pattern order, set members in listed order).
	Binder = pattern.Binder
	// Event is a primitive input event. Identical to spectre.Event.
	Event = event.Event
	// EventType is an interned event type id.
	EventType = event.Type
	// Registry interns event-type and payload-field names. Identical to
	// spectre.Registry; it is safe for concurrent use.
	Registry = event.Registry
)

// elemEntry is one lowered pattern element: a step when set is nil,
// otherwise an unordered set.
type elemEntry struct {
	step stepSpec
	set  []stepSpec
}

// resolvedStep records a step together with its element position, in flat
// (Binder) order.
type resolvedStep struct {
	spec   stepSpec
	elem   int
	member int // -1 for step elements
}

// Builder accumulates a query under construction. Obtain one from New,
// chain clause methods in any order, then call Build. Methods never fail
// midway: invalid input is recorded and Build reports every problem at
// once as a structured *Error.
//
// Clause methods follow the DSL: Pattern ↔ PATTERN, Within ↔ WITHIN,
// From/FromEvery ↔ FROM, Consume ↔ CONSUME, OnMatch ↔ ON MATCH, Runs ↔
// RUNS, PartitionBy ↔ PARTITION BY. Repeated calls to the same
// single-valued clause overwrite (last wins); Pattern appends.
type Builder struct {
	reg  *event.Registry
	name string

	elems []elemEntry
	steps []resolvedStep

	win    Window
	winSet bool

	from          string
	fromSet       bool
	fromEvery     int
	fromEverySet  bool
	fromFilter    StartPredicate
	fromTypes     []string
	fromFilterSet bool

	consumeAll   bool
	consumeEmpty bool
	consumeList  []string

	onMatch Completion
	runs    int
	runsSet bool

	partSet    bool
	partByType bool
	partField  string
	shards     int
	shardsSet  bool

	issues []Issue
}

// New returns a builder that interns type and field names through reg —
// the same registry the event sources and engines share.
func New(reg *Registry) *Builder {
	b := &Builder{reg: reg, onMatch: Stop}
	if reg == nil {
		b.errf("", "registry must not be nil")
	}
	return b
}

// errf records an issue against a clause.
func (b *Builder) errf(clause, format string, args ...any) {
	b.issues = append(b.issues, Issue{Clause: clause, Msg: fmt.Sprintf(format, args...)})
}

func stepClause(name string) string { return fmt.Sprintf("step %q", name) }

// Name sets the query name (the DSL's `QUERY name`). Detections carry it;
// the default is "query".
func (b *Builder) Name(name string) *Builder {
	b.name = name
	return b
}

// Pattern appends elements to the pattern sequence. Elements are built
// with Step, Plus, Neg and Set.
func (b *Builder) Pattern(elems ...Elem) *Builder {
	for _, el := range elems {
		if el == nil {
			b.errf("PATTERN", "nil pattern element")
			continue
		}
		el.appendTo(b)
	}
	return b
}

// Within sets the window extent (Events or Duration).
func (b *Builder) Within(w Window) *Builder {
	b.win = w
	b.winSet = true
	return b
}

// From opens a window whenever an event matches the named pattern
// variable's type filter and predicate (`WITHIN ... FROM A`). Without any
// From clause, windows open from the first positive non-set variable,
// matching the DSL default.
func (b *Builder) From(step string) *Builder {
	b.from = step
	b.fromSet = true
	return b
}

// FromEvery opens a window every n events — a count-based slide
// (`WITHIN ... FROM EVERY n EVENTS`).
func (b *Builder) FromEvery(n int) *Builder {
	b.fromEvery = n
	b.fromEverySet = true
	return b
}

// FromFilter opens a window on every event matching the given types and
// predicate, independent of any pattern variable. Empty types match any
// type; a nil predicate accepts every event that passes the type filter.
// This is the programmatic superset of `FROM var` for start conditions no
// variable expresses.
func (b *Builder) FromFilter(pred StartPredicate, types ...string) *Builder {
	b.fromFilter = pred
	b.fromTypes = append([]string(nil), types...)
	b.fromFilterSet = true
	return b
}

// Consume lists the pattern variables whose events are removed from
// further detection once a match completes (`CONSUME (A B)`). The default
// is no consumption.
func (b *Builder) Consume(names ...string) *Builder {
	b.consumeAll = false
	b.consumeEmpty = len(names) == 0
	b.consumeList = append([]string(nil), names...)
	return b
}

// ConsumeAll marks every non-negated variable as consumed (`CONSUME ALL`,
// the policy of the paper's Q1–Q3).
func (b *Builder) ConsumeAll() *Builder {
	b.consumeAll = true
	b.consumeEmpty = false
	b.consumeList = nil
	return b
}

// ConsumeNone clears the consumption policy (`CONSUME NONE`, the
// default).
func (b *Builder) ConsumeNone() *Builder {
	b.consumeAll = false
	b.consumeEmpty = false
	b.consumeList = nil
	return b
}

// OnMatch selects the post-match behaviour: Stop (default), Restart or
// RestartLeader.
func (b *Builder) OnMatch(c Completion) *Builder {
	b.onMatch = c
	return b
}

// Runs caps concurrently open partial matches per window version (`RUNS
// n`); 0 means unlimited. The default is 1, the paper's single
// consumption group per window version.
func (b *Builder) Runs(n int) *Builder {
	b.runs = n
	b.runsSet = true
	return b
}

// PartitionBy partitions the query's input stream by the named payload
// field (`PARTITION BY field`): every key runs independent window
// formation and detection. The field index is resolved through the
// registry at Build time.
func (b *Builder) PartitionBy(field string) *Builder {
	b.partSet = true
	b.partByType = false
	b.partField = field
	return b
}

// PartitionByType partitions the input stream by event type (`PARTITION
// BY TYPE`), e.g. per stock symbol.
func (b *Builder) PartitionByType() *Builder {
	b.partSet = true
	b.partByType = true
	b.partField = ""
	return b
}

// Shards sets the preferred shard count of a partitioned query (`SHARDS
// n`); without it the runtime decides (typically GOMAXPROCS). Requires a
// PartitionBy/PartitionByType clause.
func (b *Builder) Shards(n int) *Builder {
	b.shards = n
	b.shardsSet = true
	return b
}

// Float returns a typed accessor for the named numeric payload field,
// resolved against the registry now — predicates built on it do no name
// lookups at match time.
func (b *Builder) Float(name string) Field {
	if b.reg == nil {
		return Field{name: name, index: -1}
	}
	return Field{name: name, index: b.reg.FieldIndex(name)}
}

// Symbol returns a typed accessor for the named event type, interned
// through the registry now.
func (b *Builder) Symbol(name string) Symbol {
	if b.reg == nil {
		return Symbol{name: name}
	}
	return Symbol{name: name, id: b.reg.TypeID(name)}
}

// resolveTypes interns type names; empty input resolves to nil (any
// type).
func (b *Builder) resolveTypes(names []string) []event.Type {
	if len(names) == 0 || b.reg == nil {
		return nil
	}
	out := make([]event.Type, len(names))
	for i, n := range names {
		out[i] = b.reg.TypeID(n)
	}
	return out
}

// findStep returns the step declared under name, in any element
// (including set members).
func (b *Builder) findStep(name string) (resolvedStep, bool) {
	for _, rs := range b.steps {
		if rs.spec.name == name {
			return rs, true
		}
	}
	return resolvedStep{}, false
}

// Build validates the accumulated clauses and compiles them into a
// *Query ready for spectre.NewEngine or Runtime.Submit. It reports every
// problem at once as a structured *Error; a successful Build leaves the
// builder reusable (each call produces an independent query).
func (b *Builder) Build() (*Query, error) {
	issues := append([]Issue(nil), b.issues...)
	addf := func(clause, format string, args ...any) {
		issues = append(issues, Issue{Clause: clause, Msg: fmt.Sprintf(format, args...)})
	}

	name := b.name
	if name == "" {
		name = "query"
	}

	// Step names must be unique across the whole pattern.
	seen := make(map[string]struct{}, len(b.steps))
	for _, rs := range b.steps {
		if rs.spec.name == "" {
			addf("PATTERN", "pattern variable with empty name")
			continue
		}
		if _, dup := seen[rs.spec.name]; dup {
			addf(stepClause(rs.spec.name), "duplicate pattern variable %q", rs.spec.name)
			continue
		}
		seen[rs.spec.name] = struct{}{}
	}

	if len(b.elems) == 0 {
		addf("PATTERN", "pattern has no elements (call Pattern)")
	}

	// Assemble the pattern. The folded Pred drives unplanned execution;
	// Conjuncts carry the same predicate in decomposed form for the
	// planner (internal/plan).
	mk := func(s stepSpec) pattern.Step {
		var conjs []pattern.Conjunct
		if len(s.conjs) > 0 {
			conjs = make([]pattern.Conjunct, len(s.conjs))
			for i, c := range s.conjs {
				conjs[i] = pattern.Conjunct{Pred: c.pred, BindingFree: c.bindingFree, Label: c.label, Fields: c.fields, FieldsKnown: c.fieldsKnown}
			}
		}
		return pattern.Step{
			Name:      s.name,
			Types:     b.resolveTypes(s.types),
			Pred:      s.pred,
			Conjuncts: conjs,
			Quant:     s.quant,
			Negated:   s.negated,
		}
	}
	switch b.onMatch {
	case Stop, Restart, RestartLeader:
	default:
		addf("ON MATCH", "unknown completion behaviour %v", b.onMatch)
	}
	pat := pattern.Pattern{
		Name:      name,
		Selection: pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: b.onMatch},
	}
	if b.runsSet {
		if b.runs < 0 {
			addf("RUNS", "run cap must be non-negative, got %d", b.runs)
		} else {
			pat.Selection.MaxConcurrentRuns = b.runs
		}
	}
	for _, entry := range b.elems {
		if entry.set != nil {
			set := make([]pattern.Step, len(entry.set))
			for i, s := range entry.set {
				set[i] = mk(s)
			}
			pat.Elements = append(pat.Elements, pattern.Element{Kind: pattern.ElemSet, Set: set})
			continue
		}
		pat.Elements = append(pat.Elements, pattern.Element{Kind: pattern.ElemStep, Step: mk(entry.step)})
	}

	// Window extent.
	win := pattern.WindowSpec{}
	switch {
	case !b.winSet:
		addf("WITHIN", "window extent required (Within(query.Events(n)) or Within(query.Duration(d)))")
	case b.win.kind == pattern.EndCount && b.win.count <= 0:
		addf("WITHIN", "window size must be positive, got %d events", b.win.count)
	case b.win.kind == pattern.EndDuration && b.win.dur <= 0:
		addf("WITHIN", "window duration must be positive, got %v", b.win.dur)
	default:
		win.EndKind = b.win.kind
		win.Count = b.win.count
		win.Duration = b.win.dur
	}

	// Window start.
	fromClauses := 0
	for _, set := range []bool{b.fromSet, b.fromEverySet, b.fromFilterSet} {
		if set {
			fromClauses++
		}
	}
	switch {
	case fromClauses > 1:
		addf("FROM", "conflicting window-start clauses (use exactly one of From, FromEvery, FromFilter)")
	case b.fromEverySet:
		if b.fromEvery <= 0 {
			addf("FROM", "window slide must be positive, got %d events", b.fromEvery)
			break
		}
		win.StartKind = pattern.StartEvery
		win.Every = b.fromEvery
	case b.fromFilterSet:
		win.StartKind = pattern.StartOnMatch
		win.StartTypes = b.resolveTypes(b.fromTypes)
		win.StartPred = b.fromFilter
	default:
		fromName := b.from
		if fromName == "" {
			// DSL default: the first positive non-set variable.
			for _, entry := range b.elems {
				if entry.set == nil && !entry.step.negated {
					fromName = entry.step.name
					break
				}
			}
			if fromName == "" && len(b.elems) > 0 {
				addf("FROM", "window FROM clause required (no positive step to open windows from)")
			}
		}
		if fromName != "" {
			rs, ok := b.findStep(fromName)
			if !ok {
				addf("FROM", "FROM references unknown pattern variable %q", fromName)
				break
			}
			win.StartKind = pattern.StartOnMatch
			win.StartTypes = b.resolveTypes(rs.spec.types)
			if pred := rs.spec.pred; pred != nil {
				// Windows open before detection: the step's predicate is
				// evaluated without bindings. StartFromStep records that
				// the predicate's field reads are covered by the step's
				// conjunct metadata (projection legality, internal/plan).
				win.StartPred = func(ev *event.Event) bool { return pred(ev, nil) }
				win.StartFromStep = true
			}
		}
	}

	q := &pattern.Query{Name: name, Pattern: pat, Window: win}

	// Consumption policy.
	switch {
	case b.consumeEmpty:
		addf("CONSUME", "CONSUME requires at least one variable (use ConsumeNone for none)")
	case b.consumeAll:
		q.Pattern.ConsumeAll()
	case len(b.consumeList) > 0:
		ok := true
		for _, n := range b.consumeList {
			rs, found := b.findStep(n)
			switch {
			case !found:
				addf("CONSUME", "CONSUME references unknown pattern variable %q", n)
				ok = false
			case rs.spec.negated:
				addf("CONSUME", "cannot consume negated variable %q", n)
				ok = false
			}
		}
		if ok {
			if err := q.Pattern.ConsumeSteps(b.consumeList...); err != nil {
				addf("CONSUME", "%v", err)
			}
		}
	}

	// Partitioning.
	if b.shardsSet && b.shards <= 0 {
		addf("SHARDS", "shard count must be positive, got %d", b.shards)
	}
	switch {
	case b.partSet:
		ps := &pattern.PartitionSpec{Field: -1, Shards: max(b.shards, 0)}
		if b.partByType {
			ps.ByType = true
		} else if b.partField == "" {
			addf("PARTITION BY", "empty partition field name")
		} else {
			ps.FieldName = b.partField
			if b.reg != nil {
				ps.Field = b.reg.FieldIndex(b.partField)
			}
		}
		q.Partition = ps
	case b.shardsSet:
		addf("SHARDS", "SHARDS requires a PartitionBy or PartitionByType clause")
	}

	if len(issues) > 0 {
		return nil, &Error{Issues: issues}
	}
	if err := q.Validate(); err != nil {
		return nil, errOf("", "%v", err)
	}
	return q, nil
}
