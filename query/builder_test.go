package query_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/query"
)

// TestBuildValidation is the builder-validation table: each entry breaks
// the query one way and must surface as a structured issue mentioning the
// expected clause and message.
func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name       string
		build      func(b *query.Builder) *query.Builder
		wantClause string
		wantSub    string
	}{
		{
			name:       "empty pattern",
			build:      func(b *query.Builder) *query.Builder { return b.Within(query.Events(10)) },
			wantClause: "PATTERN",
			wantSub:    "no elements",
		},
		{
			name: "missing within",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A"))
			},
			wantClause: "WITHIN",
			wantSub:    "window extent required",
		},
		{
			name: "bad window size",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(0))
			},
			wantClause: "WITHIN",
			wantSub:    "must be positive",
		},
		{
			name: "bad window duration",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Duration(-time.Second))
			},
			wantClause: "WITHIN",
			wantSub:    "must be positive",
		},
		{
			name: "bad slide",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).FromEvery(0)
			},
			wantClause: "FROM",
			wantSub:    "slide must be positive",
		},
		{
			name: "unknown consume variable",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).Consume("Z")
			},
			wantClause: "CONSUME",
			wantSub:    "unknown pattern variable",
		},
		{
			name: "consume negated",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A"), query.Neg("C"), query.Step("B")).
					Within(query.Events(10)).Consume("C")
			},
			wantClause: "CONSUME",
			wantSub:    "negated",
		},
		{
			name: "empty consume",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).Consume()
			},
			wantClause: "CONSUME",
			wantSub:    "at least one variable",
		},
		{
			name: "duplicate step names",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A"), query.Step("A")).Within(query.Events(10))
			},
			wantClause: `step "A"`,
			wantSub:    "duplicate pattern variable",
		},
		{
			name: "duplicate across set",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A"), query.Set(query.Step("A"))).Within(query.Events(10))
			},
			wantClause: `step "A"`,
			wantSub:    "duplicate pattern variable",
		},
		{
			name: "from unknown variable",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).From("Z")
			},
			wantClause: "FROM",
			wantSub:    "unknown pattern variable",
		},
		{
			name: "conflicting from clauses",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).From("A").FromEvery(5)
			},
			wantClause: "FROM",
			wantSub:    "conflicting",
		},
		{
			name: "set with kleene member",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A"), query.Set(query.Plus("X"))).Within(query.Events(10))
			},
			wantClause: `step "X"`,
			wantSub:    "plain steps",
		},
		{
			name: "empty set",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A"), query.Set()).Within(query.Events(10))
			},
			wantClause: "PATTERN",
			wantSub:    "empty SET",
		},
		{
			name: "negative runs",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).Runs(-1)
			},
			wantClause: "RUNS",
			wantSub:    "non-negative",
		},
		{
			name: "shards without partition",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).Shards(4)
			},
			wantClause: "SHARDS",
			wantSub:    "requires a PartitionBy",
		},
		{
			name: "bad shard count",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).PartitionByType().Shards(0)
			},
			wantClause: "SHARDS",
			wantSub:    "must be positive",
		},
		{
			name: "empty partition field",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).PartitionBy("")
			},
			wantClause: "PARTITION BY",
			wantSub:    "empty partition field",
		},
		{
			name: "bad completion",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Step("A")).Within(query.Events(10)).OnMatch(query.Completion(42))
			},
			wantClause: "ON MATCH",
			wantSub:    "unknown completion",
		},
		{
			name: "leading negation",
			build: func(b *query.Builder) *query.Builder {
				return b.Pattern(query.Neg("A"), query.Step("B")).Within(query.Events(10))
			},
			wantSub: "negated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := tc.build(query.New(event.NewRegistry())).Build()
			if err == nil {
				t.Fatalf("Build succeeded (%+v), want error containing %q", q, tc.wantSub)
			}
			var qe *query.Error
			if !errors.As(err, &qe) {
				t.Fatalf("error %T is not *query.Error", err)
			}
			if len(qe.Issues) == 0 {
				t.Fatal("structured error has no issues")
			}
			found := false
			for _, is := range qe.Issues {
				if strings.Contains(is.Msg, tc.wantSub) && (tc.wantClause == "" || is.Clause == tc.wantClause) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no issue with clause %q and message %q in %v", tc.wantClause, tc.wantSub, err)
			}
		})
	}
}

// TestBuildAccumulatesIssues checks that one Build reports every problem
// at once.
func TestBuildAccumulatesIssues(t *testing.T) {
	_, err := query.New(event.NewRegistry()).
		Pattern(query.Step("A"), query.Step("A")).
		Consume("Z").
		Shards(-1).
		Build()
	if err == nil {
		t.Fatal("want error")
	}
	var qe *query.Error
	if !errors.As(err, &qe) {
		t.Fatalf("error %T is not *query.Error", err)
	}
	// duplicate A, missing WITHIN, unknown CONSUME var, bad shard count.
	if len(qe.Issues) < 4 {
		t.Fatalf("want ≥ 4 issues, got %d: %v", len(qe.Issues), err)
	}
}

// TestLastWinsOverridesInvalidCall checks the documented last-wins
// semantics: an invalid clause value followed by a valid one must build
// cleanly — clause methods record state, Build judges only the final
// state.
func TestLastWinsOverridesInvalidCall(t *testing.T) {
	q, err := query.New(event.NewRegistry()).
		Pattern(query.Step("A")).
		Within(query.Events(0)).Within(query.Events(10)).
		Runs(-1).Runs(2).
		OnMatch(query.Completion(42)).OnMatch(query.Restart).
		Consume().ConsumeAll().
		PartitionByType().Shards(0).Shards(4).
		Build()
	if err != nil {
		t.Fatalf("Build after corrections failed: %v", err)
	}
	if q.Pattern.Selection.MaxConcurrentRuns != 2 ||
		q.Pattern.Selection.OnCompletion != query.Restart ||
		!q.Pattern.HasConsumption() ||
		q.Partition == nil || q.Partition.Shards != 4 ||
		q.Window.Count != 10 {
		t.Fatalf("final state not applied: %+v", q)
	}
}

// TestTypedNilStep checks a typed-nil *StepBuilder is recorded as an
// issue instead of panicking (it slips past Pattern's interface nil
// check).
func TestTypedNilStep(t *testing.T) {
	var missing *query.StepBuilder
	_, err := query.New(event.NewRegistry()).
		Pattern(query.Step("A"), missing).
		Within(query.Events(10)).
		Build()
	if err == nil || !strings.Contains(err.Error(), "nil pattern element") {
		t.Fatalf("want nil-element issue, got %v", err)
	}
}

func TestNilRegistry(t *testing.T) {
	_, err := query.New(nil).Pattern(query.Step("A")).Within(query.Events(10)).Build()
	if err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("want registry error, got %v", err)
	}
}

// TestAccessors checks the typed field and symbol accessors resolve once
// and read correctly.
func TestAccessors(t *testing.T) {
	reg := event.NewRegistry()
	b := query.New(reg)
	price := b.Float("price")
	qty := b.Float("qty")
	acme := b.Symbol("ACME")
	if price.Index() == qty.Index() {
		t.Fatalf("distinct fields share index %d", price.Index())
	}
	if got, ok := reg.LookupField("price"); !ok || got != price.Index() {
		t.Fatalf("price not interned: idx=%d ok=%v want %d", got, ok, price.Index())
	}
	if id, ok := reg.LookupType("ACME"); !ok || id != acme.ID() {
		t.Fatalf("ACME not interned")
	}
	ev := &query.Event{Type: acme.ID(), Fields: make([]float64, qty.Index()+1)}
	ev.Fields[price.Index()] = 42
	if price.Of(ev) != 42 || qty.Of(ev) != 0 {
		t.Fatalf("accessor reads: price=%g qty=%g", price.Of(ev), qty.Of(ev))
	}
	if !acme.Is(ev) {
		t.Fatal("symbol accessor must match")
	}
	if price.Name() != "price" || acme.Name() != "ACME" {
		t.Fatal("accessor names lost")
	}
}

// TestBuilderQueryRuns drives a built query end to end through the
// sequential reference engine, including a cross-variable predicate that
// uses the Binder.
func TestBuilderQueryRuns(t *testing.T) {
	reg := event.NewRegistry()
	b := query.New(reg)
	x := b.Float("x")
	// B matches only when its x exceeds the bound A's x (flat index 0).
	gtA := func(ev *query.Event, bind query.Binder) bool {
		if bind == nil {
			return false
		}
		bound := bind.Bound(0)
		return len(bound) > 0 && x.Of(ev) > x.Of(bound[0])
	}
	q, err := b.
		Pattern(
			query.Step("A").Types("A"),
			query.Step("B").Types("B").Where(gtA),
		).
		Within(query.Events(100)).From("A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := seqengine.New(q)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	mk := func(ty event.Type, v float64) event.Event {
		f := make([]float64, x.Index()+1)
		f[x.Index()] = v
		return event.Event{Type: ty, Fields: f}
	}
	out, _, err := eng.Run([]event.Event{mk(ta, 5), mk(tb, 3), mk(tb, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key() != "query@0:0,2" {
		t.Fatalf("got %v, want [query@0:0,2]", out)
	}
}

// TestBuilderReusable checks Build can be called repeatedly and the
// consumption clauses override each other (the QE-variants pattern).
func TestBuilderReusable(t *testing.T) {
	reg := event.NewRegistry()
	b := query.New(reg).
		Pattern(query.Step("A").Types("A"), query.Step("B").Types("B")).
		Within(query.Duration(time.Minute)).From("A").
		OnMatch(query.RestartLeader)

	qNone, err := b.ConsumeNone().Build()
	if err != nil {
		t.Fatal(err)
	}
	qSel, err := b.Consume("B").Build()
	if err != nil {
		t.Fatal(err)
	}
	if qNone.Pattern.HasConsumption() {
		t.Fatal("first build must not consume")
	}
	if !qSel.Pattern.HasConsumption() || qSel.Pattern.Elements[0].Step.Consume {
		t.Fatal("second build must consume exactly B")
	}
	// The first query must not have been mutated by the second Build.
	if qNone.Pattern.HasConsumption() {
		t.Fatal("builds must be independent")
	}
}

func TestFromFilter(t *testing.T) {
	reg := event.NewRegistry()
	b := query.New(reg)
	x := b.Float("x")
	q, err := b.
		Pattern(query.Step("A"), query.Step("B")).
		Within(query.Events(50)).
		FromFilter(func(ev *query.Event) bool { return x.Of(ev) > 10 }, "S").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.StartKind != pattern.StartOnMatch || len(q.Window.StartTypes) != 1 || q.Window.StartPred == nil {
		t.Fatalf("window = %+v", q.Window)
	}
	ts, _ := reg.LookupType("S")
	ev := &query.Event{Type: ts, Fields: []float64{0}}
	ev.Fields[x.Index()] = 11
	if !q.Window.StartMatches(ev) {
		t.Fatal("filter should accept S with x=11")
	}
	ev.Fields[x.Index()] = 9
	if q.Window.StartMatches(ev) {
		t.Fatal("filter should reject x=9")
	}
}

func TestPartitionResolution(t *testing.T) {
	reg := event.NewRegistry()
	q, err := query.New(reg).
		Pattern(query.Step("A")).
		Within(query.Events(10)).
		PartitionBy("account").Shards(8).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := reg.LookupField("account")
	if !ok {
		t.Fatal("partition field not interned at Build")
	}
	if q.Partition == nil || q.Partition.Field != idx || q.Partition.Shards != 8 || q.Partition.ByType {
		t.Fatalf("partition = %+v, want field %d, 8 shards", q.Partition, idx)
	}
}

// TestErrorRendering pins the multi-issue error format.
func TestErrorRendering(t *testing.T) {
	e := &query.Error{Issues: []query.Issue{
		{Clause: "WITHIN", Msg: "window extent required"},
		{Line: 3, Col: 7, Msg: "unexpected input", Excerpt: "PATTERN (A B\n      ^"},
	}}
	s := e.Error()
	for _, want := range []string{"2 errors", "WITHIN: window extent required", "line 3:7", "^"} {
		if !strings.Contains(s, want) {
			t.Fatalf("error %q does not contain %q", s, want)
		}
	}
	one := &query.Error{Issues: e.Issues[:1]}
	if got := one.Error(); got != "query: WITHIN: window extent required" {
		t.Fatalf("single-issue rendering = %q", got)
	}
}
