package query_test

// The golden equivalence suite: every DSL query used in the parser tests
// has a hand-written builder counterpart here, and the two must compile
// to structurally equal queries (query.Diff, predicates compared by
// presence) AND behave identically on a probe stream through the
// sequential reference engine. The paper queries Q1–Q3 and Q_E are
// checked the other way round: the canonical builder constructions in
// internal/queries must behave identically to their DSL renderings over
// the synthetic datasets.
//
// Because the parser lowers through the same builder, any drift between
// the DSL and the Go API shows up here as a Diff or an output mismatch.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/query"
)

// runSeq runs q over events with the sequential reference engine and
// returns the ordered detection keys.
func runSeq(t *testing.T, q *pattern.Query, events []event.Event) []string {
	t.Helper()
	eng, err := seqengine.New(q)
	if err != nil {
		t.Fatalf("seqengine.New: %v", err)
	}
	out, _, err := eng.Run(append([]event.Event(nil), events...))
	if err != nil {
		t.Fatalf("seqengine.Run: %v", err)
	}
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Key()
	}
	return keys
}

func sameOutput(t *testing.T, label string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d detections\n a=%v\n b=%v", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: detection %d differs: %q vs %q", label, i, a[i], b[i])
		}
	}
	// A probe stream that detects nothing proves nothing: every golden
	// is constructed to produce matches.
	if len(a) == 0 {
		t.Fatalf("%s: probe stream produced no detections — equivalence is vacuous", label)
	}
	t.Logf("%s: %d identical detections", label, len(a))
}

// golden is one DSL query with its hand-written builder counterpart and a
// probe stream. Both sides share one registry so interned ids agree.
type golden struct {
	name   string
	dsl    string
	build  func(b *query.Builder) (*query.Query, error)
	events func(reg *event.Registry) []event.Event
}

func TestGoldenEquivalence(t *testing.T) {
	cases := []golden{
		{
			name: "q1-shape",
			dsl: `
				QUERY Q1
				PATTERN (MLE RE1 RE2)
				DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
				       RE1 AS RE1.close > RE1.open,
				       RE2 AS RE2.close > RE2.open
				WITHIN 8000 EVENTS FROM MLE
				CONSUME (MLE RE1 RE2)
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				blue0, blue1 := b.Symbol("BLUE00"), b.Symbol("BLUE01")
				close, open := b.Float("close"), b.Float("open")
				rising := func(ev *query.Event, _ query.Binder) bool { return close.Of(ev) > open.Of(ev) }
				mle := func(ev *query.Event, bind query.Binder) bool {
					return (blue0.Is(ev) || blue1.Is(ev)) && rising(ev, bind)
				}
				return b.Name("Q1").
					Pattern(
						query.Step("MLE").Where(mle),
						query.Step("RE1").Where(rising),
						query.Step("RE2").Where(rising),
					).
					Within(query.Events(8000)).From("MLE").
					Consume("MLE", "RE1", "RE2").
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				return dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 30, Leaders: 4, Minutes: 60, Seed: 3})
			},
		},
		{
			name: "kleene-and-slide",
			dsl: `
				PATTERN (A B+ C)
				DEFINE A AS A.close < 10,
				       B AS (B.close > 10 AND B.close < 20),
				       C AS C.close > 20
				WITHIN 500 EVENTS FROM EVERY 100 EVENTS
				CONSUME ALL
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				close := b.Float("close")
				return b.
					Pattern(
						query.Step("A").Where(func(ev *query.Event, _ query.Binder) bool { return close.Of(ev) < 10 }),
						query.Plus("B").Where(func(ev *query.Event, _ query.Binder) bool {
							c := close.Of(ev)
							return c > 10 && c < 20
						}),
						query.Step("C").Where(func(ev *query.Event, _ query.Binder) bool { return close.Of(ev) > 20 }),
					).
					Within(query.Events(500)).FromEvery(100).
					ConsumeAll().
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				closeIdx := reg.FieldIndex("close")
				ty := reg.TypeID("S")
				vals := []float64{5, 12, 15, 25, 8, 11, 30, 2, 14, 14, 22, 9}
				evs := make([]event.Event, 0, 600)
				for i := 0; i < 600; i++ {
					f := make([]float64, closeIdx+1)
					f[closeIdx] = vals[i%len(vals)] + float64(i%7)
					evs = append(evs, event.Event{Type: ty, Fields: f})
				}
				return evs
			},
		},
		{
			name: "set-and-duration",
			dsl: `
				PATTERN (A SET(X1 X2 X3))
				DEFINE A AS A.symbol = 'S0000',
				       X1 AS X1.symbol = 'S0001',
				       X2 AS X2.symbol = 'S0002',
				       X3 AS X3.symbol = 'S0003'
				WITHIN 1 min FROM A
				CONSUME (A X1 X2 X3)
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				symPred := func(s query.Symbol) query.Predicate {
					return func(ev *query.Event, _ query.Binder) bool { return s.Is(ev) }
				}
				return b.
					Pattern(
						query.Step("A").Where(symPred(b.Symbol("S0000"))),
						query.Set(
							query.Step("X1").Where(symPred(b.Symbol("S0001"))),
							query.Step("X2").Where(symPred(b.Symbol("S0002"))),
							query.Step("X3").Where(symPred(b.Symbol("S0003"))),
						),
					).
					Within(query.Duration(time.Minute)).From("A").
					Consume("A", "X1", "X2", "X3").
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				evs := make([]event.Event, 0, 400)
				for i := 0; i < 400; i++ {
					sym := dataset.Symbol(i % 5)
					evs = append(evs, event.Event{
						TS:   int64(i) * int64(10*time.Second),
						Type: reg.TypeID(sym),
					})
				}
				return evs
			},
		},
		{
			name: "negation-and-policies",
			dsl: `
				PATTERN (A !C B)
				DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B', C AS C.symbol = 'C'
				WITHIN 100 EVENTS FROM A
				CONSUME (B)
				ON MATCH RESTART LEADER
				RUNS 2
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				symPred := func(s query.Symbol) query.Predicate {
					return func(ev *query.Event, _ query.Binder) bool { return s.Is(ev) }
				}
				return b.
					Pattern(
						query.Step("A").Where(symPred(b.Symbol("A"))),
						query.Neg("C").Where(symPred(b.Symbol("C"))),
						query.Step("B").Where(symPred(b.Symbol("B"))),
					).
					Within(query.Events(100)).From("A").
					Consume("B").
					OnMatch(query.RestartLeader).
					Runs(2).
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				names := []string{"A", "B", "B", "A", "C", "B", "A", "B", "C", "A", "B", "B"}
				evs := make([]event.Event, 0, 360)
				for i := 0; i < 360; i++ {
					evs = append(evs, event.Event{Type: reg.TypeID(names[i%len(names)])})
				}
				return evs
			},
		},
		{
			name: "cross-variable-predicate",
			dsl: `
				PATTERN (A B)
				DEFINE A AS A.symbol = 'A',
				       B AS (B.symbol = 'B' AND B.x > A.x)
				WITHIN 100 EVENTS FROM A
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				symA, symB := b.Symbol("A"), b.Symbol("B")
				x := b.Float("x")
				return b.
					Pattern(
						query.Step("A").Where(func(ev *query.Event, _ query.Binder) bool { return symA.Is(ev) }),
						query.Step("B").Where(func(ev *query.Event, bind query.Binder) bool {
							if !symB.Is(ev) || bind == nil {
								return false
							}
							bound := bind.Bound(0)
							return len(bound) > 0 && x.Of(ev) > x.Of(bound[0])
						}),
					).
					Within(query.Events(100)).From("A").
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				xIdx := reg.FieldIndex("x")
				ta, tb := reg.TypeID("A"), reg.TypeID("B")
				evs := make([]event.Event, 0, 300)
				for i := 0; i < 300; i++ {
					ty := tb
					if i%3 == 0 {
						ty = ta
					}
					f := make([]float64, xIdx+1)
					f[xIdx] = float64((i * 7) % 13)
					evs = append(evs, event.Event{Type: ty, Fields: f})
				}
				return evs
			},
		},
		{
			name: "partition-by-type",
			dsl: `
				PATTERN (A B)
				WITHIN 100 EVENTS FROM A
				CONSUME ALL
				PARTITION BY TYPE SHARDS 16
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				return b.
					Pattern(query.Step("A"), query.Step("B")).
					Within(query.Events(100)).From("A").
					ConsumeAll().
					PartitionByType().Shards(16).
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				evs := make([]event.Event, 120)
				for i := range evs {
					evs[i] = event.Event{Type: reg.TypeID(dataset.Symbol(i % 3))}
				}
				return evs
			},
		},
		{
			name: "partition-by-field",
			dsl: `
				PATTERN (A B)
				WITHIN 100 EVENTS FROM A
				PARTITION BY account
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				return b.
					Pattern(query.Step("A"), query.Step("B")).
					Within(query.Events(100)).From("A").
					PartitionBy("account").
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				acct := reg.FieldIndex("account")
				evs := make([]event.Event, 90)
				for i := range evs {
					f := make([]float64, acct+1)
					f[acct] = float64(i % 4)
					evs[i] = event.Event{Type: reg.TypeID("T"), Fields: f}
				}
				return evs
			},
		},
		{
			name: "default-from",
			dsl: `
				PATTERN (A B)
				DEFINE A AS A.x > 1
				WITHIN 20 EVENTS
			`,
			build: func(b *query.Builder) (*query.Query, error) {
				x := b.Float("x")
				return b.
					Pattern(
						query.Step("A").Where(func(ev *query.Event, _ query.Binder) bool { return x.Of(ev) > 1 }),
						query.Step("B"),
					).
					Within(query.Events(20)).
					Build()
			},
			events: func(reg *event.Registry) []event.Event {
				xIdx := reg.FieldIndex("x")
				evs := make([]event.Event, 100)
				for i := range evs {
					f := make([]float64, xIdx+1)
					f[xIdx] = float64(i % 3)
					evs[i] = event.Event{Type: reg.TypeID("T"), Fields: f}
				}
				return evs
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := event.NewRegistry()
			parsed, err := parser.Parse(tc.dsl, reg)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			built, err := tc.build(query.New(reg))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if d := query.Diff(parsed, built); d != "" {
				t.Fatalf("DSL and builder queries differ structurally: %s", d)
			}
			evs := tc.events(reg)
			sameOutput(t, tc.name, runSeq(t, parsed, evs), runSeq(t, built, evs))
		})
	}
}

// TestPaperQueriesEquivalence checks the canonical builder constructions
// of Q_E and Q1–Q3 (internal/queries) against their DSL renderings: same
// detections, in the same order, over the paper's synthetic datasets. The
// two sides express type filters differently (Types vs DEFINE symbol
// predicates), so the assertion is behavioural.
func TestPaperQueriesEquivalence(t *testing.T) {
	t.Run("QE", func(t *testing.T) {
		for _, variant := range []struct {
			name    string
			cp      queries.QEConsumption
			consume string
		}{
			{"none", queries.QEConsumeNone, "CONSUME NONE"},
			{"selected-B", queries.QEConsumeSelectedB, "CONSUME (B)"},
		} {
			t.Run(variant.name, func(t *testing.T) {
				reg := event.NewRegistry()
				built, err := queries.QE(reg, variant.cp)
				if err != nil {
					t.Fatal(err)
				}
				dsl := fmt.Sprintf(`
					QUERY QE
					PATTERN (A B)
					DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
					WITHIN 1 min FROM A
					%s
					ON MATCH RESTART LEADER
				`, variant.consume)
				parsed, err := parser.Parse(dsl, reg)
				if err != nil {
					t.Fatal(err)
				}
				ta, _ := reg.LookupType("A")
				tb, _ := reg.LookupType("B")
				evs := make([]event.Event, 0, 200)
				for i := 0; i < 200; i++ {
					ty := tb
					if i%4 == 0 {
						ty = ta
					}
					evs = append(evs, event.Event{TS: int64(i) * int64(7*time.Second), Type: ty})
				}
				sameOutput(t, "QE "+variant.name, runSeq(t, built, evs), runSeq(t, parsed, evs))
			})
		}
	})

	t.Run("Q1", func(t *testing.T) {
		reg := event.NewRegistry()
		built, err := queries.Q1(reg, queries.Q1Config{Q: 3, WindowSize: 200, Leaders: 2})
		if err != nil {
			t.Fatal(err)
		}
		dsl := `
			QUERY Q1
			PATTERN (MLE RE1 RE2 RE3)
			DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
			       RE1 AS RE1.close > RE1.open,
			       RE2 AS RE2.close > RE2.open,
			       RE3 AS RE3.close > RE3.open
			WITHIN 200 EVENTS FROM MLE
			CONSUME ALL
		`
		parsed, err := parser.Parse(dsl, reg)
		if err != nil {
			t.Fatal(err)
		}
		evs := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 2, Minutes: 50, Seed: 11})
		sameOutput(t, "Q1", runSeq(t, built, evs), runSeq(t, parsed, evs))
	})

	t.Run("Q2", func(t *testing.T) {
		reg := event.NewRegistry()
		built, err := queries.Q2(reg, queries.Q2Config{WindowSize: 400, Slide: 100, LowerLimit: 95, UpperLimit: 105})
		if err != nil {
			t.Fatal(err)
		}
		dsl := strings.NewReplacer("$LO", "95", "$HI", "105").Replace(`
			QUERY Q2
			PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M)
			DEFINE A AS A.close < $LO,
			       B AS (B.close > $LO AND B.close < $HI),
			       C AS C.close > $HI,
			       D AS (D.close > $LO AND D.close < $HI),
			       E AS E.close < $LO,
			       F AS (F.close > $LO AND F.close < $HI),
			       G AS G.close > $HI,
			       H AS (H.close > $LO AND H.close < $HI),
			       I AS I.close < $LO,
			       J AS (J.close > $LO AND J.close < $HI),
			       K AS K.close > $HI,
			       L AS (L.close > $LO AND L.close < $HI),
			       M AS M.close < $LO
			WITHIN 400 EVENTS FROM EVERY 100 EVENTS
			CONSUME ALL
		`)
		parsed, err := parser.Parse(dsl, reg)
		if err != nil {
			t.Fatal(err)
		}
		evs := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 20, Leaders: 2, Minutes: 120, Seed: 5})
		sameOutput(t, "Q2", runSeq(t, built, evs), runSeq(t, parsed, evs))
	})

	t.Run("Q3", func(t *testing.T) {
		reg := event.NewRegistry()
		built, err := queries.Q3(reg, queries.Q3Config{SetSize: 3, WindowSize: 200, Slide: 50})
		if err != nil {
			t.Fatal(err)
		}
		dsl := `
			QUERY Q3
			PATTERN (A SET(X1 X2 X3))
			DEFINE A AS A.symbol = 'S0000',
			       X1 AS X1.symbol = 'S0001',
			       X2 AS X2.symbol = 'S0002',
			       X3 AS X3.symbol = 'S0003'
			WITHIN 200 EVENTS FROM EVERY 50 EVENTS
			CONSUME ALL
		`
		parsed, err := parser.Parse(dsl, reg)
		if err != nil {
			t.Fatal(err)
		}
		evs := dataset.Rand(reg, dataset.RandConfig{Symbols: 10, Events: 4000, Seed: 23})
		sameOutput(t, "Q3", runSeq(t, built, evs), runSeq(t, parsed, evs))
	})
}
