package query

import (
	"fmt"
	"strings"
)

// Issue is one problem found while constructing or parsing a query. A
// query can be wrong in several independent ways; Build reports all of
// them at once instead of stopping at the first.
type Issue struct {
	// Clause names the builder call or query-text clause at fault, e.g.
	// "PATTERN", "CONSUME", `step "B"`. Empty when the issue concerns the
	// query as a whole.
	Clause string
	// Msg describes the problem.
	Msg string
	// Line and Col locate the problem in the query text (1-based; Col
	// counts bytes). Both are 0 for programmatically built queries.
	Line, Col int
	// Excerpt is the offending source line with a caret under the
	// position, "" when the query was not built from text.
	Excerpt string
}

// String renders the issue as "line L:C: clause: msg" followed by the
// caret excerpt when one is available.
func (i Issue) String() string {
	var b strings.Builder
	if i.Line > 0 {
		fmt.Fprintf(&b, "line %d", i.Line)
		if i.Col > 0 {
			fmt.Fprintf(&b, ":%d", i.Col)
		}
		b.WriteString(": ")
	}
	if i.Clause != "" {
		b.WriteString(i.Clause)
		b.WriteString(": ")
	}
	b.WriteString(i.Msg)
	if i.Excerpt != "" {
		b.WriteByte('\n')
		b.WriteString(i.Excerpt)
	}
	return b.String()
}

// Error is the structured error of the query-construction API. Both the
// fluent builder and the textual parser (spectre.ParseQuery) report
// failures as *Error, so callers can errors.As once and inspect every
// issue with its position.
type Error struct {
	// Issues holds at least one issue, in the order they were found.
	Issues []Issue
}

// Error implements error.
func (e *Error) Error() string {
	switch len(e.Issues) {
	case 0:
		return "query: invalid query"
	case 1:
		return "query: " + e.Issues[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query: %d errors:", len(e.Issues))
	for _, is := range e.Issues {
		b.WriteString("\n  ")
		b.WriteString(strings.ReplaceAll(is.String(), "\n", "\n  "))
	}
	return b.String()
}

// errOf wraps a single positionless issue into an *Error.
func errOf(clause, format string, args ...any) *Error {
	return &Error{Issues: []Issue{{Clause: clause, Msg: fmt.Sprintf(format, args...)}}}
}
