// Package query is the first-class query-construction API: a typed,
// fluent builder that the textual DSL (spectre.ParseQuery), the paper's
// evaluation queries and user code all compile through. Whichever
// frontend a query enters by, it lowers into the same Build step, so the
// DSL and the Go API cannot drift apart.
//
// # Building a query
//
//	reg := spectre.NewRegistry()
//	b := query.New(reg)
//	open, close := b.Float("open"), b.Float("close")
//	rising := func(ev *query.Event, _ query.Binder) bool {
//		return close.Of(ev) > open.Of(ev)
//	}
//	q, err := b.Name("Q1").
//		Pattern(
//			query.Step("MLE").Types("BLUE00", "BLUE01").Where(rising),
//			query.Step("RE1").Where(rising),
//			query.Step("RE2").Where(rising),
//		).
//		Within(query.Events(8000)).From("MLE").
//		ConsumeAll().
//		Build()
//
// The result is a *spectre.Query (the package's Query alias), ready for
// spectre.NewEngine or spectre.Runtime.Submit. Predicates are arbitrary
// Go functions; Float and Symbol return accessors resolved against the
// registry once, at construction, so the match path does no name lookups.
// Build validates everything and reports every problem at once as a
// structured *Error with per-issue clause and (for parsed queries)
// line:column positions.
//
// # The query language
//
// spectre.ParseQuery compiles the same clauses from text — the extended
// MATCH-RECOGNIZE notation of the paper's Figure 9 (keywords are
// case-insensitive, `--` starts a line comment):
//
//	query    := [QUERY ident]
//	            PATTERN '(' elem+ ')'
//	            [DEFINE def (',' def)*]
//	            WITHIN (int EVENTS | duration) [FROM (ident | EVERY int EVENTS)]
//	            [CONSUME ('(' ident+ ')' | ALL | NONE)]
//	            [ON MATCH (STOP | RESTART | RESTART LEADER)]
//	            [RUNS int]
//	            [PARTITION BY (TYPE | ident) [SHARDS int]]
//	elem     := ident ['+'] | '!' ident | SET '(' ident+ ')'
//	def      := ident AS expr
//	expr     := disjunction of conjunctions of comparisons over
//	            arithmetic on field refs (X.field), X.symbol, numbers,
//	            strings, with NOT, parentheses and IN ('A','B',...)
//	duration := int (MS | S | SEC | MIN | H)
//
// Example (the paper's Q1 for q = 2):
//
//	QUERY Q1
//	PATTERN (MLE RE1 RE2)
//	DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
//	       RE1 AS RE1.close > RE1.open,
//	       RE2 AS RE2.close > RE2.open
//	WITHIN 8000 EVENTS FROM MLE
//	CONSUME (MLE RE1 RE2)
//
// # Builder ↔ DSL correspondence
//
//	DSL clause                      builder call
//	------------------------------  ------------------------------------
//	QUERY name                      Name("name")
//	PATTERN (A B+ !C SET(X Y))      Pattern(Step("A"), Plus("B"),
//	                                        Neg("C"), Set(Step("X"), Step("Y")))
//	DEFINE A AS <expr>              Step("A").Where(predicate)
//	A.symbol IN ('S1','S2')         Step("A").Types("S1", "S2")
//	WITHIN n EVENTS                 Within(Events(n))
//	WITHIN 1 min                    Within(Duration(time.Minute))
//	FROM A                          From("A")
//	FROM EVERY n EVENTS             FromEvery(n)
//	CONSUME (A B) | ALL | NONE      Consume("A", "B") | ConsumeAll() | ConsumeNone()
//	ON MATCH STOP | RESTART [LEADER] OnMatch(Stop | Restart | RestartLeader)
//	RUNS n                          Runs(n)
//	PARTITION BY TYPE | field       PartitionByType() | PartitionBy("field")
//	SHARDS n                        Shards(n)
//
// A DSL type-equality predicate (`A.symbol = 'S1'`) and Types("S1") are
// behaviourally equivalent; Types additionally lets the engine use its
// type filter fast path and the derived window-start filter.
package query
