package query

// Field is a typed accessor for a numeric payload field. It is resolved
// against the registry once, when the builder hands it out — predicates
// built on a Field read the payload by dense index with no per-event name
// lookup:
//
//	b := query.New(reg)
//	open, close := b.Float("open"), b.Float("close")
//	rising := func(ev *query.Event, _ query.Binder) bool {
//		return close.Of(ev) > open.Of(ev)
//	}
type Field struct {
	name  string
	index int
}

// Of reads the field from ev. Events that carry fewer fields read 0,
// matching the DSL's total predicate semantics.
func (f Field) Of(ev *Event) float64 { return ev.Field(f.index) }

// Index returns the dense payload index the field resolved to.
func (f Field) Index() int { return f.index }

// Name returns the field name the accessor was built from.
func (f Field) Name() string { return f.name }

// Symbol is a typed accessor for an interned event type (e.g. a stock
// symbol). Like Field, it is resolved once at construction; Is compares
// interned ids, not strings.
type Symbol struct {
	name string
	id   EventType
}

// Is reports whether ev carries this event type.
func (s Symbol) Is(ev *Event) bool { return ev.Type == s.id }

// ID returns the interned type id.
func (s Symbol) ID() EventType { return s.id }

// Name returns the type name the accessor was built from.
func (s Symbol) Name() string { return s.name }
