package query

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/pattern"
)

// Diff reports the first structural difference between two compiled
// queries, or "" when they are structurally equivalent. Predicates and
// start filters are opaque functions, so Diff compares only their
// presence; behavioural equivalence of the functions themselves is the
// caller's concern (the golden tests probe it by running both queries
// over the same stream).
//
// Diff is the round-trip check of the construction API: a DSL query and
// its hand-written builder counterpart must diff empty.
func Diff(a, b *Query) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return "one query is nil"
	}
	if a.Name != b.Name {
		return fmt.Sprintf("name: %q vs %q", a.Name, b.Name)
	}
	if d := diffPattern(&a.Pattern, &b.Pattern); d != "" {
		return d
	}
	if d := diffWindow(&a.Window, &b.Window); d != "" {
		return d
	}
	return diffPartition(a.Partition, b.Partition)
}

func diffPattern(a, b *pattern.Pattern) string {
	if a.Name != b.Name {
		return fmt.Sprintf("pattern name: %q vs %q", a.Name, b.Name)
	}
	if a.Selection != b.Selection {
		return fmt.Sprintf("selection: %+v vs %+v", a.Selection, b.Selection)
	}
	if len(a.Elements) != len(b.Elements) {
		return fmt.Sprintf("element count: %d vs %d", len(a.Elements), len(b.Elements))
	}
	for i := range a.Elements {
		ae, be := &a.Elements[i], &b.Elements[i]
		if ae.Kind != be.Kind {
			return fmt.Sprintf("element %d kind: %v vs %v", i, ae.Kind, be.Kind)
		}
		switch ae.Kind {
		case pattern.ElemStep:
			if d := diffStep(&ae.Step, &be.Step); d != "" {
				return fmt.Sprintf("element %d: %s", i, d)
			}
		case pattern.ElemSet:
			if len(ae.Set) != len(be.Set) {
				return fmt.Sprintf("element %d set size: %d vs %d", i, len(ae.Set), len(be.Set))
			}
			for m := range ae.Set {
				if d := diffStep(&ae.Set[m], &be.Set[m]); d != "" {
					return fmt.Sprintf("element %d member %d: %s", i, m, d)
				}
			}
		}
	}
	return ""
}

func diffStep(a, b *pattern.Step) string {
	switch {
	case a.Name != b.Name:
		return fmt.Sprintf("step name: %q vs %q", a.Name, b.Name)
	case !typesEqual(a.Types, b.Types):
		return fmt.Sprintf("step %q types: %v vs %v", a.Name, a.Types, b.Types)
	case (a.Pred == nil) != (b.Pred == nil):
		return fmt.Sprintf("step %q predicate presence: %v vs %v", a.Name, a.Pred != nil, b.Pred != nil)
	case a.Quant != b.Quant:
		return fmt.Sprintf("step %q quantifier: %v vs %v", a.Name, a.Quant, b.Quant)
	case a.Negated != b.Negated:
		return fmt.Sprintf("step %q negated: %v vs %v", a.Name, a.Negated, b.Negated)
	case a.Consume != b.Consume:
		return fmt.Sprintf("step %q consume: %v vs %v", a.Name, a.Consume, b.Consume)
	}
	return ""
}

func diffWindow(a, b *pattern.WindowSpec) string {
	switch {
	case a.StartKind != b.StartKind:
		return fmt.Sprintf("window start kind: %v vs %v", a.StartKind, b.StartKind)
	case a.Every != b.Every:
		return fmt.Sprintf("window slide: %d vs %d", a.Every, b.Every)
	case !typesEqual(a.StartTypes, b.StartTypes):
		return fmt.Sprintf("window start types: %v vs %v", a.StartTypes, b.StartTypes)
	case (a.StartPred == nil) != (b.StartPred == nil):
		return fmt.Sprintf("window start predicate presence: %v vs %v", a.StartPred != nil, b.StartPred != nil)
	case a.EndKind != b.EndKind:
		return fmt.Sprintf("window end kind: %v vs %v", a.EndKind, b.EndKind)
	case a.Count != b.Count:
		return fmt.Sprintf("window size: %d vs %d", a.Count, b.Count)
	case a.Duration != b.Duration:
		return fmt.Sprintf("window duration: %v vs %v", a.Duration, b.Duration)
	}
	return ""
}

func diffPartition(a, b *pattern.PartitionSpec) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return fmt.Sprintf("partition presence: %v vs %v", a != nil, b != nil)
	case *a != *b:
		return fmt.Sprintf("partition: %+v vs %+v", *a, *b)
	}
	return ""
}

func typesEqual(a, b []EventType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
