package query

import (
	"time"

	"github.com/spectrecep/spectre/internal/pattern"
)

// Window is the extent of the WITHIN clause: how far a window reaches
// from its start. Construct one with Events or Duration and pass it to
// Builder.Within.
type Window struct {
	kind  pattern.EndKind
	count int
	dur   time.Duration
}

// Events sizes windows in events: a window closes after n events,
// inclusive of the start event (`WITHIN n EVENTS`).
func Events(n int) Window {
	return Window{kind: pattern.EndCount, count: n}
}

// Duration sizes windows in event time: a window closes d after its start
// event's timestamp (`WITHIN 1 min`).
func Duration(d time.Duration) Window {
	return Window{kind: pattern.EndDuration, dur: d}
}

// Completion selects what a detection run does after emitting a match;
// pass one of Stop, Restart or RestartLeader to Builder.OnMatch.
type Completion = pattern.CompletionBehavior

const (
	// Stop ends detection for the window after the first match (`ON MATCH
	// STOP`, the default and the paper's Q1–Q3 behaviour).
	Stop = pattern.StopAfterMatch
	// Restart clears the whole run so a new leader can start a new match
	// in the same window (`ON MATCH RESTART`).
	Restart = pattern.RestartFresh
	// RestartLeader keeps the first element's binding and resets the
	// rest, so the same leader correlates with further events (`ON MATCH
	// RESTART LEADER`, the "first A, each B" policy of the paper's Q_E).
	RestartLeader = pattern.RestartAfterLeader
)
