// Setmonitor runs the paper's evaluation query Q3 — a leading symbol
// followed by a basket of n specific symbols in any order, all
// constituents consumed — over the RAND dataset, and demonstrates the
// effect of the completion-probability model on throughput (the paper's
// Figure 11): a badly chosen fixed probability wastes speculative work,
// while the online-learned Markov model adapts automatically.
//
// Run it with:
//
//	go run ./examples/setmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	spectre "github.com/spectrecep/spectre"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := spectre.NewRegistry()
	events := spectre.GenerateRand(reg, spectre.RandConfig{
		Symbols: 300,
		Events:  60000,
		Seed:    11,
	})
	fmt.Printf("generated %d uniform random symbol events\n", len(events))

	// Q3: leader S0000 followed by the basket {S0001..S0008}, any order,
	// within 1000 events, windows sliding every 100 events.
	const n = 8
	var b strings.Builder
	b.WriteString("QUERY Q3\nPATTERN (A SET(")
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "X%d", i)
	}
	b.WriteString("))\nDEFINE A AS A.symbol = '" + spectre.Symbol(0) + "'")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, ",\n X%d AS X%d.symbol = '%s'", i, i, spectre.Symbol(i))
	}
	b.WriteString("\nWITHIN 1000 EVENTS FROM EVERY 100 EVENTS\nCONSUME ALL\n")
	query, err := spectre.ParseQuery(b.String(), reg)
	if err != nil {
		return err
	}

	want, stats, err := spectre.RunSequential(query, append([]spectre.Event(nil), events...))
	if err != nil {
		return err
	}
	fmt.Printf("ground-truth completion probability: %.0f%% (%d matches)\n\n",
		stats.CompletionProbability()*100, len(want))

	type model struct {
		label string
		opts  []spectre.Option
	}
	models := []model{
		{"fixed   0%", []spectre.Option{spectre.WithFixedProbability(0)}},
		{"fixed  50%", []spectre.Option{spectre.WithFixedProbability(0.5)}},
		{"fixed 100%", []spectre.Option{spectre.WithFixedProbability(1)}},
		{"Markov", nil}, // the engine default: the paper's learned model
	}
	const k = 8
	for _, m := range models {
		opts := append([]spectre.Option{spectre.WithInstances(k)}, m.opts...)
		eng, err := spectre.NewEngine(query, opts...)
		if err != nil {
			return err
		}
		matches := 0
		start := time.Now()
		if err := eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(spectre.ComplexEvent) { matches++ })); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if matches != len(want) {
			return fmt.Errorf("%s: %d matches, want %d", m.label, matches, len(want))
		}
		fmt.Printf("%-12s k=%d: %8.0f events/sec (%d matches, identical output)\n",
			m.label, k, float64(len(events))/elapsed.Seconds(), matches)
	}
	return nil
}
