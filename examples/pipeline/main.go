// Pipeline demonstrates the paper's deployment setup end to end, in one
// process: a client streams a generated dataset over a real TCP
// connection to a SPECTRE engine that detects an M-shaped chart pattern
// (the paper's Q2) and prints throughput.
//
// Run it with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/internal/transport"
)

const q2 = `
	QUERY Q2
	PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M)
	DEFINE A AS A.close < 85,
	       B AS (B.close > 85 AND B.close < 120),
	       C AS C.close > 120,
	       D AS (D.close > 85 AND D.close < 120),
	       E AS E.close < 85,
	       F AS (F.close > 85 AND F.close < 120),
	       G AS G.close > 120,
	       H AS (H.close > 85 AND H.close < 120),
	       I AS I.close < 85,
	       J AS (J.close > 85 AND J.close < 120),
	       K AS K.close > 120,
	       L AS (L.close > 85 AND L.close < 120),
	       M AS M.close < 85
	WITHIN 2000 EVENTS FROM EVERY 250 EVENTS
	CONSUME ALL
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: registry, query, engine.
	reg := spectre.NewRegistry()
	query, err := spectre.ParseQuery(q2, reg)
	if err != nil {
		return err
	}
	eng, err := spectre.NewEngine(query, spectre.WithInstances(4))
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("engine listening on %s\n", ln.Addr())

	// Client side: generate the dataset with its own registry (types
	// travel by name over the wire) and stream it.
	clientErr := make(chan error, 1)
	go func() {
		clientReg := spectre.NewRegistry()
		events := spectre.GenerateNYSE(clientReg, spectre.NYSEConfig{
			Symbols: 200, Leaders: 8, Minutes: 300, Seed: 3,
		})
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			clientErr <- err
			return
		}
		defer conn.Close()
		start := time.Now()
		if err := transport.Send(context.Background(), conn, clientReg, events); err != nil {
			clientErr <- err
			return
		}
		fmt.Printf("client: sent %d events in %v\n", len(events), time.Since(start).Round(time.Millisecond))
		clientErr <- nil
	}()

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	src, srcErr := transport.SourceFromConn(conn, reg)

	matches := 0
	start := time.Now()
	if err := eng.Run(context.Background(), src, spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		matches++
		if matches <= 5 {
			fmt.Printf("  M-shape detected: window w%d, %d constituents\n", ce.WindowID, len(ce.Constituents))
		}
	})); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := srcErr(); err != nil {
		return err
	}
	if err := <-clientErr; err != nil {
		return err
	}
	m := eng.Metrics()
	fmt.Printf("engine: %d events, %d matches in %v (%.0f events/sec), windows %d, versions %d\n",
		m.EventsIngested, matches, elapsed.Round(time.Millisecond),
		float64(m.EventsIngested)/elapsed.Seconds(), m.WindowsOpened, m.VersionsCreated)
	return nil
}
