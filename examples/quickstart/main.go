// Quickstart reproduces Figure 1 of the SPECTRE paper: the introductory
// stock-correlation query Q_E run with two different consumption policies
// over the stream A1 A2 B1 B2 B3.
//
// With no consumption policy, 5 complex events are detected; with the
// "selected B" policy, B1 and B2 are consumed by the first window's
// matches and only 3 complex events remain.
//
// The queries are constructed with the typed builder of the query
// package; the equivalent DSL text for the selected-B variant is
//
//	QUERY influence
//	PATTERN (A B)
//	DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
//	WITHIN 1 min FROM A
//	CONSUME (B)
//	ON MATCH RESTART LEADER
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/query"
)

func main() {
	for _, variant := range []struct {
		label   string
		consume bool
	}{
		{"consumption policy: none (Figure 1a)", false},
		{"consumption policy: selected B (Figure 1b)", true},
	} {
		fmt.Printf("\n%s\n", variant.label)
		if err := runVariant(variant.consume); err != nil {
			log.Fatal(err)
		}
	}
}

func runVariant(consumeB bool) error {
	reg := spectre.NewRegistry()

	// Q_E: a window of scope 1 minute opens on every A event; the first A
	// in a window correlates with each B ("first A, each B").
	b := query.New(reg).Name("influence").
		Pattern(
			query.Step("A").Types("A"),
			query.Step("B").Types("B"),
		).
		Within(query.Duration(time.Minute)).From("A").
		OnMatch(query.RestartLeader)
	if consumeB {
		b.Consume("B")
	} else {
		b.ConsumeNone()
	}
	q, err := b.Build()
	if err != nil {
		return err
	}

	// The Figure 1 stream: A1 A2 B1 B2 B3. B3 arrives more than a minute
	// after A1, so it belongs only to the window opened by A2.
	typeA, _ := reg.LookupType("A")
	typeB, _ := reg.LookupType("B")
	at := func(s int) int64 { return int64(s) * int64(time.Second) }
	events := []spectre.Event{
		{TS: at(0), Type: typeA},  // A1
		{TS: at(10), Type: typeA}, // A2
		{TS: at(20), Type: typeB}, // B1
		{TS: at(40), Type: typeB}, // B2
		{TS: at(65), Type: typeB}, // B3
	}
	names := []string{"A1", "A2", "B1", "B2", "B3"}

	eng, err := spectre.NewEngine(q, spectre.WithInstances(4))
	if err != nil {
		return err
	}
	// The engine plans every query it accepts (see DESIGN.md §9): here
	// both steps are typed, so irrelevant event types would be dropped at
	// intake before touching the match pipeline. Explain shows the chosen
	// plan; WithoutPlanner() would pin planning off.
	if !consumeB {
		fmt.Printf("  plan:\n")
		for _, line := range strings.Split(strings.TrimRight(eng.Plan().Explain(), "\n"), "\n") {
			fmt.Printf("    %s\n", line)
		}
	}
	count := 0
	err = eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		count++
		parts := make([]string, len(ce.Constituents))
		for i, seq := range ce.Constituents {
			parts[i] = names[seq]
		}
		fmt.Printf("  complex event %d: window w%d, constituents %v\n", count, ce.WindowID+1, parts)
	}))
	if err != nil {
		return err
	}
	fmt.Printf("  → %d complex events\n", count)
	return nil
}
