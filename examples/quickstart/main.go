// Quickstart reproduces Figure 1 of the SPECTRE paper: the introductory
// stock-correlation query Q_E run with two different consumption policies
// over the stream A1 A2 B1 B2 B3.
//
// With no consumption policy, 5 complex events are detected; with the
// "selected B" policy, B1 and B2 are consumed by the first window's
// matches and only 3 complex events remain.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	spectre "github.com/spectrecep/spectre"
)

const (
	queryNoConsumption = `
		QUERY influence
		PATTERN (A B)
		DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
		WITHIN 1 min FROM A
		CONSUME NONE
		ON MATCH RESTART LEADER
	`
	querySelectedB = `
		QUERY influence
		PATTERN (A B)
		DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
		WITHIN 1 min FROM A
		CONSUME (B)
		ON MATCH RESTART LEADER
	`
)

func main() {
	for _, variant := range []struct{ label, src string }{
		{"consumption policy: none (Figure 1a)", queryNoConsumption},
		{"consumption policy: selected B (Figure 1b)", querySelectedB},
	} {
		fmt.Printf("\n%s\n", variant.label)
		if err := runVariant(variant.src); err != nil {
			log.Fatal(err)
		}
	}
}

func runVariant(src string) error {
	reg := spectre.NewRegistry()
	query, err := spectre.ParseQuery(src, reg)
	if err != nil {
		return err
	}

	// The Figure 1 stream: A1 A2 B1 B2 B3. B3 arrives more than a minute
	// after A1, so it belongs only to the window opened by A2.
	typeA, _ := reg.LookupType("A")
	typeB, _ := reg.LookupType("B")
	at := func(s int) int64 { return int64(s) * int64(time.Second) }
	events := []spectre.Event{
		{TS: at(0), Type: typeA},  // A1
		{TS: at(10), Type: typeA}, // A2
		{TS: at(20), Type: typeB}, // B1
		{TS: at(40), Type: typeB}, // B2
		{TS: at(65), Type: typeB}, // B3
	}
	names := []string{"A1", "A2", "B1", "B2", "B3"}

	eng, err := spectre.NewEngine(query, spectre.WithInstances(4))
	if err != nil {
		return err
	}
	count := 0
	err = eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
		count++
		parts := make([]string, len(ce.Constituents))
		for i, seq := range ce.Constituents {
			parts[i] = names[seq]
		}
		fmt.Printf("  complex event %d: window w%d, constituents %v\n", count, ce.WindowID+1, parts)
	}))
	if err != nil {
		return err
	}
	fmt.Printf("  → %d complex events\n", count)
	return nil
}
