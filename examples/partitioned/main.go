// Partitioned runs the multi-query, key-partitioned SPECTRE Runtime over
// a per-symbol trading stream: hundreds of symbols, two queries submitted
// to one shared runtime, each partitioned by symbol (PARTITION BY TYPE)
// so every symbol's windows and consumption policies evolve independently
// while all shards multiplex onto one worker pool.
//
// Run it with:
//
//	go run ./examples/partitioned
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	spectre "github.com/spectrecep/spectre"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := spectre.NewRegistry()

	// Hundreds of symbols quoting once per minute; the stream interleaves
	// them all, so per-symbol correlation needs partitioning.
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 300,
		Leaders: 8,
		Minutes: 150,
		Seed:    11,
	})
	fmt.Printf("generated %d quotes across 300 symbols\n", len(events))

	// Query 1: per-symbol momentum — two consecutive rising quotes of the
	// SAME symbol, the second closing higher. PARTITION BY TYPE gives each
	// symbol its own windows; SHARDS 8 spreads the symbols over 8
	// independent SPECTRE pipelines.
	momentum, err := spectre.ParseQuery(`
		QUERY momentum
		PATTERN (X Y)
		DEFINE X AS X.close > X.open, Y AS Y.close > X.close
		WITHIN 20 EVENTS FROM X
		CONSUME ALL
		PARTITION BY TYPE SHARDS 8
	`, reg)
	if err != nil {
		return err
	}

	// Query 2: per-symbol reversal — a falling quote followed by a deeper
	// fall, consuming only the confirmation (the paper's selected-B
	// policy). Shard count left to the runtime (GOMAXPROCS).
	reversal, err := spectre.ParseQuery(`
		QUERY reversal
		PATTERN (A B)
		DEFINE A AS A.close < A.open, B AS B.close < A.close
		WITHIN 15 EVENTS FROM A
		CONSUME (B)
		PARTITION BY TYPE
	`, reg)
	if err != nil {
		return err
	}

	ctx := context.Background()
	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		return err
	}
	defer rt.Close()

	// One counter per handle: sink callbacks are serialized per handle but
	// run concurrently across handles, so the two queries must not share a
	// counter (or any other unsynchronized state).
	var nMomentum, nReversal int
	hMomentum, err := rt.Submit(ctx, momentum, spectre.SinkFunc(func(spectre.ComplexEvent) { nMomentum++ }))
	if err != nil {
		return err
	}
	hReversal, err := rt.Submit(ctx, reversal, spectre.SinkFunc(func(spectre.ComplexEvent) { nReversal++ }))
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s on %d shards, %s on %d shards\n",
		hMomentum.Name(), hMomentum.Shards(), hReversal.Name(), hReversal.Shards())

	// Feed both queries in batches: FeedBatch scatters each slice to its
	// shards with one queue handoff per (batch, shard) — the cheap intake
	// path — and each handle routes every event by symbol hash.
	start := time.Now()
	const batch = 512
	for lo := 0; lo < len(events); lo += batch {
		hi := min(lo+batch, len(events))
		if err := hMomentum.FeedBatch(ctx, events[lo:hi]); err != nil {
			return err
		}
		if err := hReversal.FeedBatch(ctx, events[lo:hi]); err != nil {
			return err
		}
	}
	hMomentum.Drain()
	hReversal.Drain()
	elapsed := time.Since(start)

	// Graceful teardown with a deadline: a production service would call
	// this from its SIGTERM handler.
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(shutdownCtx); err != nil {
		return err
	}

	fmt.Printf("processed %d events through both queries in %v (%.0f events/sec)\n",
		len(events), elapsed.Round(time.Millisecond),
		float64(len(events))/elapsed.Seconds())
	for _, hc := range []struct {
		h       *spectre.Handle
		matches int
	}{{hMomentum, nMomentum}, {hReversal, nReversal}} {
		m := hc.h.Metrics()
		fmt.Printf("  %-9s %6d matches  windows=%d versions=%d gate-reprocessed=%d\n",
			hc.h.Name(), hc.matches, m.WindowsOpened, m.VersionsCreated, m.GateReprocessed)
	}
	return nil
}
