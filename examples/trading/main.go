// Trading runs the paper's evaluation query Q1 — a rising quote of a
// blue-chip "market leading" symbol followed by the first q rising quotes
// of any symbol, all constituents consumed — over a synthetic NYSE-like
// intra-day quote stream, and compares the parallel SPECTRE engine with
// the sequential reference engine and the T-REX-style baseline.
//
// Run it with:
//
//	go run ./examples/trading
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	spectre "github.com/spectrecep/spectre"
	"github.com/spectrecep/spectre/query"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := spectre.NewRegistry()

	// A compact version of the paper's NYSE dataset: 300 symbols quoting
	// once per minute for 200 minutes, the first 8 being blue chips.
	const leaders = 8
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 300,
		Leaders: leaders,
		Minutes: 200,
		Seed:    7,
	})
	fmt.Printf("generated %d quotes\n", len(events))

	// Q1 with q = 20 rising quotes within a 1000-event window from the
	// leader. Programmatic construction is where the typed builder shines:
	// the q steps are a loop, the predicate is a Go closure over field
	// accessors resolved once, and the leader list is a Types filter.
	b := query.New(reg).Name("Q1")
	open, close := b.Float("open"), b.Float("close")
	rising := func(ev *query.Event, _ query.Binder) bool {
		return close.Of(ev) > open.Of(ev)
	}
	leaderList := make([]string, leaders)
	for i := range leaderList {
		leaderList[i] = spectre.LeaderSymbol(i)
	}
	b.Pattern(query.Step("MLE").Types(leaderList...).Where(rising))
	const q = 20
	for i := 1; i <= q; i++ {
		b.Pattern(query.Step(fmt.Sprintf("RE%d", i)).Where(rising))
	}
	q1, err := b.Within(query.Events(1000)).From("MLE").ConsumeAll().Build()
	if err != nil {
		return err
	}

	// Sequential reference: defines the expected output.
	seqStart := time.Now()
	want, stats, err := spectre.RunSequential(q1, append([]spectre.Event(nil), events...))
	if err != nil {
		return err
	}
	seqElapsed := time.Since(seqStart)
	fmt.Printf("sequential engine:  %5d matches in %8v (%7.0f events/sec), completion probability %.0f%%\n",
		len(want), seqElapsed.Round(time.Millisecond),
		float64(len(events))/seqElapsed.Seconds(), stats.CompletionProbability()*100)

	// T-REX-style baseline.
	trexStart := time.Now()
	trexOut, _, err := spectre.RunBaseline(q1, append([]spectre.Event(nil), events...))
	if err != nil {
		return err
	}
	trexElapsed := time.Since(trexStart)
	fmt.Printf("T-REX baseline:     %5d matches in %8v (%7.0f events/sec)\n",
		len(trexOut), trexElapsed.Round(time.Millisecond),
		float64(len(events))/trexElapsed.Seconds())
	fmt.Println("  (the baseline detects in arrival order with multi-selection semantics;")
	fmt.Println("   its match set differs from the window-ordered reference by design)")

	// SPECTRE at increasing parallelism.
	for _, k := range []int{1, 2, 4, 8} {
		eng, err := spectre.NewEngine(q1, spectre.WithInstances(k))
		if err != nil {
			return err
		}
		var got []spectre.ComplexEvent
		start := time.Now()
		if err := eng.Run(context.Background(), spectre.FromSlice(events), spectre.SinkFunc(func(ce spectre.ComplexEvent) {
			got = append(got, ce)
		})); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if len(got) != len(want) {
			return fmt.Errorf("SPECTRE k=%d found %d matches, sequential %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				return fmt.Errorf("SPECTRE k=%d output %d differs from sequential", k, i)
			}
		}
		m := eng.Metrics()
		fmt.Printf("SPECTRE k=%d:        %5d matches in %8v (%7.0f events/sec), tree max %d, rollbacks %d\n",
			k, len(got), elapsed.Round(time.Millisecond),
			float64(len(events))/elapsed.Seconds(), m.MaxTreeSize, m.Rollbacks)
	}
	fmt.Println("all engines agree with the sequential reference output")
	return nil
}
