package spectre_test

// Concurrency tests for the shared type/field registry. The interesting
// assertions happen under the race detector (CI runs go test -race):
// before the registry grew its lock, two Runtime.Submit calls resolving
// partition fields — or two goroutines parsing queries — against a shared
// registry raced on the intern maps.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	spectre "github.com/spectrecep/spectre"
)

func TestConcurrentSubmitSharedRegistry(t *testing.T) {
	reg := spectre.NewRegistry()
	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const submitters = 8
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct type and field names per goroutine force fresh
			// interning on every path: ParseQuery (DEFINE symbol + field
			// refs), Submit (partition-field resolution) and event
			// construction all mutate the shared registry concurrently.
			src := fmt.Sprintf(`
				QUERY q%d
				PATTERN (X Y)
				DEFINE X AS X.symbol = 'T%d', Y AS (Y.symbol = 'T%d' AND Y.v%d >= 0)
				WITHIN 10 EVENTS FROM X
				CONSUME ALL
			`, i, i, i, i)
			q, err := spectre.ParseQuery(src, reg)
			if err != nil {
				errs <- fmt.Errorf("parse q%d: %w", i, err)
				return
			}
			var matches atomic.Int64
			sink := spectre.SinkFunc(func(spectre.ComplexEvent) { matches.Add(1) })
			h, err := rt.Submit(context.Background(), q, sink,
				spectre.WithPartitionBy(fmt.Sprintf("key%d", i)), spectre.WithShards(2))
			if err != nil {
				errs <- fmt.Errorf("submit q%d: %w", i, err)
				return
			}
			ty, _ := reg.LookupType(fmt.Sprintf("T%d", i))
			evs := make([]spectre.Event, 40)
			for j := range evs {
				evs[j] = spectre.Event{Type: ty}
			}
			if err := h.FeedBatch(context.Background(), evs); err != nil {
				errs <- fmt.Errorf("feed q%d: %w", i, err)
				return
			}
			h.Drain()
			if matches.Load() == 0 {
				errs <- fmt.Errorf("q%d detected nothing", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
