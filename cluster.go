package spectre

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"github.com/spectrecep/spectre/internal/cluster"
	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/shard"
)

// ClusterError is the structured failure of a cluster operation — a join
// that exhausted its retry budget, a listen that could not bind, a submit
// that timed out waiting for workers. It carries the operation, the
// remote address and the attempt count, and unwraps to the underlying
// cause for errors.Is / errors.As.
type ClusterError = cluster.Error

// ErrClusterClosed is returned by cluster operations after Close: feeds
// on a closed handle, Wait on a query the coordinator failed at
// shutdown, Submit on a closed coordinator.
var ErrClusterClosed = cluster.ErrClosed

// ClusterOptions configures a coordinator started with ListenCluster.
// The zero value is usable: one worker, 256-event link batches, 2ms
// flush, 2s heartbeats.
type ClusterOptions struct {
	// MinWorkers makes Submit block until at least this many workers
	// have joined (default 1).
	MinWorkers int
	// BatchEvents is the per-shard event batch size on a worker link
	// (default 256).
	BatchEvents int
	// FlushInterval bounds how long a partial batch may sit staged
	// before it is shipped anyway (default 2ms).
	FlushInterval time.Duration
	// Heartbeat is the idle keepalive interval on worker links (default
	// 2s); a link that stays silent for ten intervals is declared dead
	// and its shards are rebalanced.
	Heartbeat time.Duration
	// BatchMin and BatchMax bound the adaptive per-link batch size
	// (defaults 64 and 4096). The controller grows a link's batch when
	// its frames keep filling and shrinks it when the link's shards hold
	// the ordered merge back.
	BatchMin int
	BatchMax int
	// StaticBatch disables the adaptive controller: every link keeps
	// BatchEvents for the lifetime of the cluster.
	StaticBatch bool
	// DisablePushdown turns off coordinator-side plan pushdown: every
	// routed event ships to its worker even when the query's intake
	// filter would discard it there.
	DisablePushdown bool
	// Logf receives coordinator lifecycle logs (default: discard).
	Logf func(format string, args ...any)
}

// ClusterWorkerOptions configures a worker process started with
// JoinCluster: advertised capacity, heartbeat interval and the join
// retry budget.
type ClusterWorkerOptions = cluster.WorkerOptions

// Cluster is the submitting node of a distributed SPECTRE deployment
// (DESIGN.md §12): it accepts worker connections, places each submitted
// query's shards on them, streams routed events out and merges the
// emission streams back into the exact order a single-process Runtime
// would deliver. Byte-identical output, remote execution.
//
//	cl, err := spectre.ListenCluster("127.0.0.1:0", reg, spectre.ClusterOptions{MinWorkers: 2})
//	// handle err; workers run `spectre-server -worker -join <addr>`
//	h, err := cl.Submit(ctx, text, sink)
//	// handle err
//	for _, ev := range events {
//	    _ = h.Feed(ctx, ev)
//	}
//	_ = h.Drain(ctx)
type Cluster struct {
	c   *cluster.Coordinator
	reg *Registry
}

// ListenCluster starts a coordinator listening for workers on addr. The
// registry must be the one the submitted queries and fed events were
// built against; workers intern their own registries against the
// coordinator's type and field tables, so theirs need not match.
func ListenCluster(addr string, reg *Registry, opts ClusterOptions) (*Cluster, error) {
	c, err := cluster.Listen(addr, reg, cluster.Options{
		MinWorkers:      opts.MinWorkers,
		BatchEvents:     opts.BatchEvents,
		FlushInterval:   opts.FlushInterval,
		Heartbeat:       opts.Heartbeat,
		BatchMin:        opts.BatchMin,
		BatchMax:        opts.BatchMax,
		StaticBatch:     opts.StaticBatch,
		DisablePushdown: opts.DisablePushdown,
		Logf:            opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c, reg: reg}, nil
}

// Addr returns the address workers join.
func (cl *Cluster) Addr() net.Addr { return cl.c.Addr() }

// Workers reports how many workers are currently joined.
func (cl *Cluster) Workers() int { return cl.c.Workers() }

// ClusterLinkStats is a snapshot of one worker link's transport
// counters: negotiated protocol version, current adaptive batch size,
// bytes and frames in each direction, events shipped and events saved
// by shared-stream page dedup.
type ClusterLinkStats = cluster.LinkStats

// LinkStats snapshots the transport counters of every joined worker
// link, ordered by worker id.
func (cl *Cluster) LinkStats() []ClusterLinkStats { return cl.c.Stats() }

// WaitWorkers blocks until n workers are joined or ctx is done.
func (cl *Cluster) WaitWorkers(ctx context.Context, n int) error {
	return cl.c.WaitWorkers(ctx, n)
}

// Close stops the coordinator: the listener closes, worker links drop,
// and every unfinished query fails with ErrClusterClosed.
func (cl *Cluster) Close() error { return cl.c.Close() }

// Submit distributes one query across the joined workers. The query
// text is compiled locally for validation and shard routing, then
// shipped to each shard's owner and compiled there. The sink receives
// the merged output in the same order a local Runtime submission of the
// same query would deliver it.
//
// Options are the Runtime partition options
// (WithShards/WithPartitionBy/WithPartitionByType). Node-local
// execution policies — WithShedding, WithWeight, WithScheduler,
// WithDurability — do not travel with a distributed query and are
// rejected.
func (cl *Cluster) Submit(ctx context.Context, text string, sink Sink, opts ...Option) (*ClusterHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := ParseQuery(text, cl.reg)
	if err != nil {
		return nil, err
	}
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Err != nil {
		return nil, queryErr(q, cfg.Err)
	}
	switch {
	case cfg.Shed || cfg.ShedScorer != nil:
		return nil, queryErr(q, fmt.Errorf("WithShedding is node-local and does not apply to a distributed query"))
	case cfg.Weight != 0:
		return nil, queryErr(q, fmt.Errorf("WithWeight is node-local and does not apply to a distributed query"))
	case cfg.SchedSet:
		return nil, queryErr(q, fmt.Errorf("WithScheduler is node-local and does not apply to a distributed query"))
	case cfg.Durable != nil:
		return nil, queryErr(q, fmt.Errorf("distributed queries are durable on their workers; WithDurability does not apply"))
	}

	// Partition resolution mirrors Runtime.Submit, minus the planner:
	// shard counts default to GOMAXPROCS, not the cost model.
	spec := cfg.Partition
	if spec == nil {
		spec = q.Partition
	}
	nShards := 1
	var route func(*event.Event) int
	if spec != nil {
		resolved := *spec
		if !resolved.ByType && resolved.Field < 0 {
			if resolved.FieldName == "" {
				return nil, queryErr(q, fmt.Errorf("partition spec names no key"))
			}
			resolved.Field = cl.reg.FieldIndex(resolved.FieldName)
		}
		nShards = cfg.Shards
		if nShards <= 0 {
			nShards = resolved.Shards
		}
		if nShards <= 0 {
			nShards = runtime.GOMAXPROCS(0)
		}
		key, err := shard.FromSpec(&resolved)
		if err != nil {
			return nil, queryErr(q, err)
		}
		route = shard.NewRouter(nShards, key).Route
	} else if cfg.Shards > 1 {
		return nil, queryErr(q, fmt.Errorf("%d shards requested but the query has no partition key (use PARTITION BY or WithPartitionBy)", cfg.Shards))
	}

	h := &ClusterHandle{sink: sink, name: q.Name, shards: nShards}
	qh, err := cl.c.Submit(ctx, cluster.Submission{
		Name:    q.Name,
		Text:    text,
		NShards: nShards,
		Route:   route,
		Emit:    h.notifyMatch,
		OnDrain: h.notifyDrain,
	})
	if err != nil {
		if err == ErrClusterClosed {
			return nil, err
		}
		return nil, queryErr(q, err)
	}
	h.h = qh
	return h, nil
}

// ClusterHandle is one query submitted to a Cluster. Like a Runtime
// Handle, feeds are single-producer and the sink is serialized.
type ClusterHandle struct {
	h      *cluster.QueryHandle
	name   string
	shards int
	mu     sync.Mutex // serializes every sink invocation
	sink   Sink
}

func (h *ClusterHandle) notifyMatch(ce event.Complex) {
	h.mu.Lock()
	if h.sink != nil {
		h.sink.OnMatch(ce)
	}
	h.mu.Unlock()
}

func (h *ClusterHandle) notifyDrain() {
	h.mu.Lock()
	if h.sink != nil {
		h.sink.OnDrain()
	}
	h.mu.Unlock()
}

// Name returns the query's name.
func (h *ClusterHandle) Name() string { return h.name }

// Shards returns how many shards the query runs on.
func (h *ClusterHandle) Shards() int { return h.shards }

// Feed routes one event to its shard's worker. The coordinator retains
// events until a worker write-ahead log provably covers them, so
// feeding never blocks on worker liveness; backpressure is the link's.
func (h *ClusterHandle) Feed(ctx context.Context, ev Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.h.Feed(ev)
}

// FeedBatch routes a batch of in-order events.
func (h *ClusterHandle) FeedBatch(ctx context.Context, evs []Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.h.FeedBatch(evs)
}

// Close marks end of stream; pending events are still processed.
func (h *ClusterHandle) Close() { h.h.Close() }

// Wait blocks until every shard of the query has drained (Close first),
// or ctx is done.
func (h *ClusterHandle) Wait(ctx context.Context) error { return h.h.Wait(ctx) }

// Drain closes the handle and waits for completion.
func (h *ClusterHandle) Drain(ctx context.Context) error {
	h.Close()
	return h.Wait(ctx)
}

// ClusterWorker is a worker process's side of a cluster membership: it
// executes shard assignments shipped by the coordinator, each as an
// independent durable single-shard pipeline, and hands its state back
// (write-ahead log export) when the coordinator rebalances a shard
// away.
type ClusterWorker struct {
	w *cluster.Worker
}

// JoinCluster dials the coordinator at addr and joins as a worker,
// retrying with jittered exponential backoff up to opts.JoinAttempts
// times. On exhaustion it returns a *ClusterError with the attempt
// count. The registry may be empty: workers learn the coordinator's
// type and field tables over the wire.
func JoinCluster(ctx context.Context, reg *Registry, addr string, opts ClusterWorkerOptions) (*ClusterWorker, error) {
	w, err := cluster.Join(ctx, reg, addr, opts)
	if err != nil {
		return nil, err
	}
	return &ClusterWorker{w: w}, nil
}

// ID returns the coordinator-assigned worker id.
func (w *ClusterWorker) ID() uint32 { return w.w.ID() }

// ClusterWorkerStats is a snapshot of a worker's coordinator-link
// transport counters: negotiated protocol version, bytes and frames in
// each direction, and events received through shared-page references.
type ClusterWorkerStats = cluster.WorkerStats

// Stats snapshots the worker's transport counters.
func (w *ClusterWorker) Stats() ClusterWorkerStats { return w.w.Stats() }

// Wait blocks until the worker stops: coordinator link lost, or Close.
// A link failure is returned as a *ClusterError.
func (w *ClusterWorker) Wait() error { return w.w.Wait() }

// Close detaches the worker from the cluster, aborting its assigned
// shards. The coordinator observes the link drop and reassigns them
// from its retained event buffers.
func (w *ClusterWorker) Close() { w.w.Close() }
