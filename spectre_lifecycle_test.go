// Lifecycle and cancellation coverage for the v2 streaming API: context
// cancellation mid-stream, double Close/Wait/Drain, Feed after Close,
// option validation and the sink protocol. Everything here runs under
// `go test -race` in CI.
package spectre_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	spectre "github.com/spectrecep/spectre"
)

// recorder is a Sink that records everything it hears.
type recorder struct {
	mu      sync.Mutex
	matches int
	errs    []error
	drains  int
}

func (r *recorder) OnMatch(spectre.ComplexEvent) {
	r.mu.Lock()
	r.matches++
	r.mu.Unlock()
}

func (r *recorder) OnError(err error) {
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
}

func (r *recorder) OnDrain() {
	r.mu.Lock()
	r.drains++
	r.mu.Unlock()
}

func (r *recorder) snapshot() (int, []error, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.matches, append([]error(nil), r.errs...), r.drains
}

func simpleQuery(t testing.TB, reg *spectre.Registry) *spectre.Query {
	t.Helper()
	q, err := spectre.ParseQuery(`
		QUERY ab
		PATTERN (A B)
		WITHIN 10 EVENTS FROM A
		CONSUME ALL
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestEngineRunContextCancel is the acceptance check for run
// cancellation: an engine blocked on a quiet channel source must return
// ctx.Err() promptly after cancel — not wait for an event that never
// arrives — and report it to the sink as OnError, never OnDrain.
func TestEngineRunContextCancel(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")

	eng, err := spectre.NewEngine(q, spectre.WithInstances(2))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan spectre.Event)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &recorder{}
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, spectre.FromChan(ch), rec) }()

	// The engine is live: it accepts events from the channel.
	for i := 0; i < 3; i++ {
		select {
		case ch <- spectre.Event{TS: int64(i), Type: ta}:
		case <-time.After(5 * time.Second):
			t.Fatal("engine did not ingest from the channel")
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Run did not return")
	}
	_, errs, drains := rec.snapshot()
	if len(errs) != 1 || !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("sink errors = %v, want one context.Canceled", errs)
	}
	if drains != 0 {
		t.Fatalf("sink drains = %d, want 0 on a cancelled run", drains)
	}

	// An engine handed an already-done context refuses to start — without
	// consuming its single run.
	eng2, err := spectre.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(ctx, spectre.FromSlice(nil), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with done ctx = %v, want context.Canceled", err)
	}
	if err := eng2.Run(context.Background(), spectre.FromSlice(nil), nil); err != nil {
		t.Fatalf("Run after an up-front rejection = %v, want nil (run not consumed)", err)
	}
}

// TestEngineRunSinkDrain checks the happy-path sink protocol: OnMatch
// then exactly one OnDrain, no OnError.
func TestEngineRunSinkDrain(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	eng, err := spectre.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	events := []spectre.Event{{TS: 0, Type: ta}, {TS: 1, Type: tb}}
	if err := eng.Run(context.Background(), spectre.FromSlice(events), rec); err != nil {
		t.Fatal(err)
	}
	matches, errs, drains := rec.snapshot()
	if matches != 1 || len(errs) != 0 || drains != 1 {
		t.Fatalf("sink saw matches=%d errs=%v drains=%d, want 1/none/1", matches, errs, drains)
	}
	// Running twice is misuse, reported synchronously and not via OnError.
	if err := eng.Run(context.Background(), spectre.FromSlice(events), rec); !errors.Is(err, spectre.ErrAlreadyRan) {
		t.Fatalf("second Run = %v, want ErrAlreadyRan", err)
	}
	if _, errs, _ := rec.snapshot(); len(errs) != 0 {
		t.Fatalf("ErrAlreadyRan leaked into OnError: %v", errs)
	}
}

// TestSubmitContextCancelAborts checks the submission-lifetime contract:
// cancelling the Submit context aborts the handle, the sink hears
// OnError(ctx.Err()) and then OnDrain, and further feeding fails.
func TestSubmitContextCancelAborts(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	rec := &recorder{}
	h, err := rt.Submit(ctx, q, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := h.Feed(context.Background(), spectre.Event{TS: int64(i), Type: ta}); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	// The cancellation alone must drive the full sink protocol — OnError
	// then OnDrain — without the producer ever calling Wait.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, drains := rec.snapshot(); drains == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aborted handle never reported OnDrain")
		}
		time.Sleep(time.Millisecond)
	}
	_, errs, drains := rec.snapshot()
	if len(errs) != 1 || !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("sink errors = %v, want one context.Canceled", errs)
	}
	if drains != 1 {
		t.Fatalf("sink drains = %d, want 1", drains)
	}
	h.Wait() // idempotent alongside the watcher-driven drain
	if err := h.Feed(context.Background(), spectre.Event{Type: ta}); !errors.Is(err, spectre.ErrHandleClosed) {
		t.Fatalf("Feed after abort = %v, want ErrHandleClosed", err)
	}

	// Submitting on an already-cancelled context fails fast.
	if _, err := rt.Submit(ctx, q, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with done ctx = %v, want context.Canceled", err)
	}
}

// TestSubmitContextCancelAfterDrain pins OnDrain as the terminal sink
// call: a submission context cancelled after the query drained must not
// deliver a late OnError.
func TestSubmitContextCancelAfterDrain(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &recorder{}
	h, err := rt.Submit(ctx, q, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Feed(context.Background(), spectre.Event{Type: ta}); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	cancel()
	time.Sleep(50 * time.Millisecond) // give a buggy watcher time to misfire
	_, errs, drains := rec.snapshot()
	if drains != 1 {
		t.Fatalf("sink drains = %d, want 1", drains)
	}
	if len(errs) != 0 {
		t.Fatalf("cancel after drain leaked into OnError: %v", errs)
	}
}

// TestRuntimeRunContextCancel checks that Runtime.Run blocked on a quiet
// channel source returns promptly on cancellation, draining what the
// handles admitted.
func TestRuntimeRunContextCancel(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Submit(context.Background(), q, nil); err != nil {
		t.Fatal(err)
	}
	ch := make(chan spectre.Event)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx, spectre.FromChan(ch)) }()
	select {
	case ch <- spectre.Event{Type: ta}:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not consume from the channel")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Runtime.Run did not return from a quiet source")
	}
}

// TestHandleLifecycleRaces hammers the close/wait/drain surface from many
// goroutines while a producer feeds — the double-Close/Wait/Drain and
// Feed-after-Close contract under the race detector.
func TestHandleLifecycleRaces(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rec := &recorder{}
	h, err := rt.Submit(context.Background(), q, rec)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	// One producer (Feed is single-producer by contract); it stops at the
	// first ErrHandleClosed. Bounded so a slow race-detector run still
	// drains quickly after the concurrent Close.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			typ := ta
			if i%2 == 1 {
				typ = tb
			}
			if err := h.Feed(ctx, spectre.Event{TS: int64(i), Type: typ}); err != nil {
				if !errors.Is(err, spectre.ErrHandleClosed) {
					t.Errorf("Feed = %v, want nil or ErrHandleClosed", err)
				}
				return
			}
		}
	}()
	// Many closers and waiters racing each other.
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			h.Close()
			h.Wait()
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			h.Drain()
		}()
	}
	wg.Wait()

	if err := h.Feed(ctx, spectre.Event{Type: ta}); !errors.Is(err, spectre.ErrHandleClosed) {
		t.Fatalf("Feed after Close = %v, want ErrHandleClosed", err)
	}
	if _, _, drains := rec.snapshot(); drains != 1 {
		t.Fatalf("sink drains = %d, want exactly 1 across concurrent waiters", drains)
	}
}

// TestRuntimeShutdownDeadline checks the two Shutdown modes: a missed
// deadline aborts pending queries and reports the context error; the
// runtime is unusable either way.
func TestRuntimeShutdownDeadline(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)
	ta, _ := reg.LookupType("A")

	rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	h, err := rt.Submit(context.Background(), q, rec)
	if err != nil {
		t.Fatal(err)
	}
	evs := make([]spectre.Event, 10000)
	for i := range evs {
		evs[i] = spectre.Event{TS: int64(i), Type: ta}
	}
	if err := h.FeedBatch(context.Background(), evs); err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Shutdown(cancelled) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Shutdown past deadline = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown with a done context did not abort")
	}
	if _, _, drains := rec.snapshot(); drains != 1 {
		t.Fatalf("sink drains = %d, want 1 after abort", drains)
	}
	if _, err := rt.Submit(context.Background(), q, nil); !errors.Is(err, spectre.ErrRuntimeClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrRuntimeClosed", err)
	}
}

// TestFeedBatchMatchesFeed checks ingestion-path equivalence: the same
// partitioned stream produces the same match multiset whether fed per
// event or in batches.
func TestFeedBatchMatchesFeed(t *testing.T) {
	reg := spectre.NewRegistry()
	events := spectre.GenerateNYSE(reg, spectre.NYSEConfig{
		Symbols: 12, Leaders: 3, Minutes: 60, Seed: 9,
	})
	src := `
		QUERY rise
		PATTERN (X Y)
		DEFINE X AS X.close > X.open, Y AS Y.close > X.close
		WITHIN 20 EVENTS FROM X
		CONSUME ALL
		PARTITION BY TYPE SHARDS 4
	`
	ctx := context.Background()
	run := func(batch int) map[string]int {
		t.Helper()
		q, err := spectre.ParseQuery(src, reg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := spectre.NewRuntime(reg, spectre.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		got := make(map[string]int)
		h, err := rt.Submit(ctx, q, spectre.SinkFunc(func(ce spectre.ComplexEvent) { got[ce.Key()]++ }))
		if err != nil {
			t.Fatal(err)
		}
		if batch <= 0 {
			for i := range events {
				if err := h.Feed(ctx, events[i]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for lo := 0; lo < len(events); lo += batch {
				hi := min(lo+batch, len(events))
				if err := h.FeedBatch(ctx, events[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
		}
		h.Drain()
		return got
	}
	want := run(0)
	if len(want) == 0 {
		t.Fatal("per-event reference produced no matches; test is vacuous")
	}
	for _, batch := range []int{1, 7, 256, len(events) + 1} {
		assertSameMultiset(t, "feedbatch", run(batch), want)
	}
}

// TestOptionValidation checks that bad option inputs surface as
// constructor/Submit errors instead of silently falling back to defaults.
func TestOptionValidation(t *testing.T) {
	reg := spectre.NewRegistry()
	q := simpleQuery(t, reg)

	engineCases := []struct {
		name string
		opt  spectre.Option
	}{
		{"WithInstances(0)", spectre.WithInstances(0)},
		{"WithInstances(-3)", spectre.WithInstances(-3)},
		{"WithInstances(1<<30)", spectre.WithInstances(1 << 30)},
		{"WithBatchSize(0)", spectre.WithBatchSize(0)},
		{"WithBatchSize(-1)", spectre.WithBatchSize(-1)},
		{"WithShards(0)", spectre.WithShards(0)},
		{"WithShards(-2)", spectre.WithShards(-2)},
		{"WithQueueCap(0)", spectre.WithQueueCap(0)},
	}
	for _, tc := range engineCases {
		if _, err := spectre.NewEngine(q, tc.opt); err == nil {
			t.Errorf("NewEngine with %s: no error", tc.name)
		} else {
			var qe *spectre.QueryError
			if !errors.As(err, &qe) {
				t.Errorf("NewEngine with %s: error %v is not a *QueryError", tc.name, err)
			}
			if !strings.Contains(err.Error(), strings.Split(tc.name, "(")[0]) {
				t.Errorf("NewEngine with %s: error %q does not name the option", tc.name, err)
			}
		}
	}

	rt, err := spectre.NewRuntime(reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, tc := range engineCases {
		if _, err := rt.Submit(context.Background(), q, nil, tc.opt); err == nil {
			t.Errorf("Submit with %s: no error", tc.name)
		}
	}

	for _, n := range []int{0, -1, 1 << 30} {
		if _, err := spectre.NewRuntime(reg, spectre.WithWorkers(n)); err == nil {
			t.Errorf("NewRuntime with WithWorkers(%d): no error", n)
		}
	}

	// Valid values still work (no false positives from validation).
	if _, err := spectre.NewEngine(q, spectre.WithInstances(2), spectre.WithBatchSize(64)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestOverloadErrorTaxonomy pins the error contract: *OverloadError
// matches ErrOverloaded, QueryError unwraps, and sentinels survive
// wrapping.
func TestOverloadErrorTaxonomy(t *testing.T) {
	var oe error = &spectre.OverloadError{Shard: 3, Pending: 10, Cap: 10}
	if !errors.Is(oe, spectre.ErrOverloaded) {
		t.Fatal("OverloadError must match ErrOverloaded")
	}
	if !strings.Contains(oe.Error(), "shard 3") {
		t.Fatalf("OverloadError message %q does not name the shard", oe.Error())
	}
	named := &spectre.OverloadError{Query: "rise", Shard: 1, Pending: 8, Cap: 8}
	if msg := named.Error(); !strings.Contains(msg, `"rise"`) || !strings.Contains(msg, "8/8") {
		t.Fatalf("OverloadError message %q does not carry the query name and occupancy", msg)
	}
	if !errors.Is(named, spectre.ErrOverloaded) {
		t.Fatal("named OverloadError must still match ErrOverloaded")
	}
	qe := &spectre.QueryError{Query: "q", Err: spectre.ErrRuntimeClosed}
	if !errors.Is(qe, spectre.ErrRuntimeClosed) {
		t.Fatal("QueryError must unwrap to its cause")
	}
}
