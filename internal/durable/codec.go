package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/matcher"
)

// maxRecordBytes bounds a single record's encoded payload; anything
// larger is treated as corruption, not allocated.
const maxRecordBytes = 64 << 20

// maxDecodeCount bounds any single decoded collection length, so a
// corrupt-but-CRC-colliding count cannot drive a huge allocation.
const maxDecodeCount = 1 << 26

// encodeRecord appends rec's payload (kind byte + body) to buf.
func encodeRecord(buf []byte, rec *Record) ([]byte, error) {
	buf = append(buf, byte(rec.Kind))
	switch rec.Kind {
	case KindTypes:
		buf = appendStrings(buf, rec.Types)
	case KindFields:
		buf = appendStrings(buf, rec.Fields)
	case KindEvents:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Events)))
		for i := range rec.Events {
			buf = appendEvent(buf, &rec.Events[i])
		}
	case KindCheckpoint:
		buf = appendCheckpoint(buf, rec.Checkpoint)
	case KindCut:
		c := rec.Cut
		buf = binary.LittleEndian.AppendUint64(buf, c.Boundary)
		buf = binary.LittleEndian.AppendUint64(buf, c.NextWindowID)
		buf = binary.LittleEndian.AppendUint64(buf, c.Watermark)
		buf = appendU64s(buf, c.Consumed)
	case KindWatermark:
		buf = binary.LittleEndian.AppendUint64(buf, rec.Watermark)
	default:
		return nil, fmt.Errorf("durable: cannot encode record kind %d", rec.Kind)
	}
	return buf, nil
}

// decodeRecord parses one payload produced by encodeRecord.
func decodeRecord(p []byte) (*Record, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("durable: empty record")
	}
	d := &decoder{p: p[1:]}
	rec := &Record{Kind: Kind(p[0])}
	switch rec.Kind {
	case KindTypes:
		rec.Types = d.strings()
	case KindFields:
		rec.Fields = d.strings()
	case KindEvents:
		n := d.count()
		if d.err == nil && n > 0 {
			rec.Events = make([]event.Event, n)
			for i := range rec.Events {
				rec.Events[i] = d.event()
			}
		}
	case KindCheckpoint:
		rec.Checkpoint = d.checkpoint()
	case KindCut:
		rec.Cut = &CutRecord{
			Boundary:     d.u64(),
			NextWindowID: d.u64(),
			Watermark:    d.u64(),
			Consumed:     d.u64s(),
		}
	case KindWatermark:
		rec.Watermark = d.u64()
	default:
		return nil, fmt.Errorf("durable: unknown record kind %d", rec.Kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after kind-%d record", len(d.p), rec.Kind)
	}
	return rec, nil
}

func appendEvent(buf []byte, ev *event.Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, ev.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.TS))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Type))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ev.Fields)))
	for _, f := range ev.Fields {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

func appendCheckpoint(buf []byte, ck *CheckpointRecord) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, ck.WindowID)
	buf = binary.LittleEndian.AppendUint64(buf, ck.WindowStart)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.WindowStartTS))
	buf = binary.LittleEndian.AppendUint64(buf, ck.Pos)
	buf = appendU64s(buf, ck.Used)
	buf = appendU64s(buf, ck.Skipped)
	buf = appendU64s(buf, ck.LocalConsumed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.Buffered)))
	for i := range ck.Buffered {
		buf = appendComplex(buf, &ck.Buffered[i])
	}
	sn := &ck.Matcher
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sn.NextID))
	buf = appendBool(buf, sn.Stopped)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.Runs)))
	for i := range sn.Runs {
		r := &sn.Runs[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Elem))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.KCount))
		buf = binary.LittleEndian.AppendUint64(buf, r.SetMask)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.LastFlat))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Events)))
		for j := range r.Events {
			buf = appendEvent(buf, &r.Events[j])
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Spans)))
		for _, sp := range r.Spans {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(sp.Start))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(sp.N))
		}
	}
	return buf
}

func appendComplex(buf []byte, c *event.Complex) []byte {
	buf = appendString(buf, c.Query)
	buf = binary.LittleEndian.AppendUint64(buf, c.WindowID)
	buf = appendU64s(buf, c.Constituents)
	buf = appendU64s(buf, c.Consumed)
	buf = binary.LittleEndian.AppendUint64(buf, c.DetectedAt)
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

func appendU64s(buf []byte, vs []uint64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// decoder is a cursor over a record body; the first error sticks and
// subsequent reads return zero values.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("durable: "+format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.p) < n {
		d.fail("short record: need %d bytes, have %d", n, len(d.p))
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) count() int {
	n := d.u32()
	if n > maxDecodeCount {
		d.fail("count %d exceeds limit", n)
		return 0
	}
	return int(n)
}

func (d *decoder) boolean() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *decoder) str() string {
	n := d.count()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) strings() []string {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *decoder) u64s() []uint64 {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64()
	}
	return out
}

func (d *decoder) event() event.Event {
	ev := event.Event{
		Seq:  d.u64(),
		TS:   int64(d.u64()),
		Type: event.Type(d.u32()),
	}
	if nf := d.count(); d.err == nil && nf > 0 {
		ev.Fields = make([]float64, nf)
		for i := range ev.Fields {
			ev.Fields[i] = math.Float64frombits(d.u64())
		}
	}
	return ev
}

func (d *decoder) complex() event.Complex {
	return event.Complex{
		Query:        d.str(),
		WindowID:     d.u64(),
		Constituents: d.u64s(),
		Consumed:     d.u64s(),
		DetectedAt:   d.u64(),
	}
}

func (d *decoder) checkpoint() *CheckpointRecord {
	ck := &CheckpointRecord{
		WindowID:      d.u64(),
		WindowStart:   d.u64(),
		WindowStartTS: int64(d.u64()),
		Pos:           d.u64(),
		Used:          d.u64s(),
		Skipped:       d.u64s(),
		LocalConsumed: d.u64s(),
	}
	if n := d.count(); d.err == nil && n > 0 {
		ck.Buffered = make([]event.Complex, n)
		for i := range ck.Buffered {
			ck.Buffered[i] = d.complex()
		}
	}
	ck.Matcher.NextID = int(d.u64())
	ck.Matcher.Stopped = d.boolean()
	if n := d.count(); d.err == nil && n > 0 {
		ck.Matcher.Runs = make([]matcher.RunSnapshot, n)
		for i := range ck.Matcher.Runs {
			r := &ck.Matcher.Runs[i]
			r.ID = int(d.u64())
			r.Elem = int(d.u32())
			r.KCount = int(d.u32())
			r.SetMask = d.u64()
			r.LastFlat = int32(d.u32())
			if ne := d.count(); d.err == nil && ne > 0 {
				r.Events = make([]event.Event, ne)
				for j := range r.Events {
					r.Events[j] = d.event()
				}
			}
			if ns := d.count(); d.err == nil && ns > 0 {
				r.Spans = make([]matcher.Span, ns)
				for j := range r.Spans {
					r.Spans[j] = matcher.Span{Start: int32(d.u32()), N: int32(d.u32())}
				}
			}
		}
	}
	return ck
}
