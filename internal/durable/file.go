package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/spectrecep/spectre/internal/event"
)

// crcTable selects the Castagnoli polynomial for frame checksums: same
// error detection class as IEEE, but hardware-accelerated (SSE4.2 /
// ARMv8 CRC instructions) — on small machines the software IEEE path
// costs a measurable slice of ingest throughput.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame layout: [len:u32][crc32c(payload):u32][payload]. A frame whose
// header or payload is short, whose CRC mismatches, or whose length is
// absurd is a torn tail when it is the last thing in the last segment —
// the write was cut mid-flight and the file is truncated there on open.
// Anywhere else it is corruption.
const frameHeader = 8

// defaultSegmentBytes is the rotation threshold: a cut record arriving
// once the live segment exceeds it starts a new segment (seeded with the
// name tables and the cut) and deletes fully-released older segments.
const defaultSegmentBytes = 4 << 20

// FileStore is the file-backed Store: one directory per (query, shard)
// under the root, holding numbered WAL segments.
type FileStore struct {
	dir string
	// SegmentBytes overrides the rotation threshold (tests shrink it);
	// set before the first OpenShard.
	SegmentBytes int64

	mu     sync.Mutex
	inUse  map[string]bool
	closed bool
}

// NewFileStore opens (creating if needed) a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	return &FileStore{dir: dir, SegmentBytes: defaultSegmentBytes, inUse: make(map[string]bool)}, nil
}

// Dir returns the store's root directory.
func (fs *FileStore) Dir() string { return fs.dir }

// shardKey builds a filesystem-safe, collision-resistant directory name
// for a (query, shard) pair.
func shardKey(query string, shard int) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, query)
	if len(clean) > 48 {
		clean = clean[:48]
	}
	h := fnv.New32a()
	h.Write([]byte(query))
	return fmt.Sprintf("%s-%08x-s%d", clean, h.Sum32(), shard)
}

// OpenShard implements Store.
func (fs *FileStore) OpenShard(query string, shard int) (ShardLog, error) {
	key := shardKey(query, shard)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, fmt.Errorf("durable: store closed")
	}
	if fs.inUse[key] {
		return nil, fmt.Errorf("%w: %s shard %d", ErrShardOpen, query, shard)
	}
	dir := filepath.Join(fs.dir, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create shard dir: %w", err)
	}
	fs.inUse[key] = true
	return &fileLog{fs: fs, key: key, dir: dir, segLimit: fs.SegmentBytes}, nil
}

// Close implements Store. Open shard logs stay usable; only new opens
// are refused.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	fs.closed = true
	fs.mu.Unlock()
	return nil
}

func (fs *FileStore) release(key string) {
	fs.mu.Lock()
	delete(fs.inUse, key)
	fs.mu.Unlock()
}

// segInfo tracks one on-disk segment for compaction decisions.
type segInfo struct {
	path      string
	index     uint64
	maxSeq    uint64 // highest event seq in the segment
	hasEvents bool
}

// fileLog is one shard's segmented WAL handle.
type fileLog struct {
	fs       *FileStore
	key      string
	dir      string
	segLimit int64

	segs    []segInfo // older segments, oldest first (excludes current)
	cur     segInfo
	f       *os.File
	bw      *bufio.Writer
	curSize int64

	// Latest name tables seen, re-emitted at rotation so every segment
	// is self-describing after older ones are deleted.
	lastTypes  []string
	lastFields []string

	scratch []byte
	loaded  bool
	closed  bool
}

func segPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", index))
}

// Load implements ShardLog: scan segments in order, repair the torn
// tail of the last one, fold the retained records, and open the tail
// segment for appending.
func (l *fileLog) Load(reg *event.Registry) (*ShardState, error) {
	if l.loaded {
		return nil, fmt.Errorf("durable: Load called twice")
	}
	if l.closed {
		return nil, fmt.Errorf("durable: Load on closed shard log")
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{path: filepath.Join(l.dir, name), index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })

	f := newFolder(reg)
	for i := range segs {
		last := i == len(segs)-1
		if err := l.scanSegment(&segs[i], last, f); err != nil {
			return nil, err
		}
	}

	if len(segs) == 0 {
		l.cur = segInfo{path: segPath(l.dir, 1), index: 1}
		file, err := os.OpenFile(l.cur.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = file
		l.curSize = 0
	} else {
		l.cur = segs[len(segs)-1]
		l.segs = segs[:len(segs)-1]
		file, err := os.OpenFile(l.cur.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := file.Stat()
		if err != nil {
			file.Close()
			return nil, err
		}
		l.f = file
		l.curSize = st.Size()
	}
	l.bw = bufio.NewWriterSize(l.f, 64*1024)
	l.loaded = true
	st := f.finish()
	if st != nil {
		// Carry the on-disk tables forward so rotation re-emits them
		// even if the registry never grows again this run.
		if f.typeMap != nil {
			l.lastTypes = make([]string, 0, len(f.typeMap)-1)
			for _, id := range f.typeMap[1:] {
				l.lastTypes = append(l.lastTypes, reg.TypeName(id))
			}
		}
		if f.fieldMap != nil {
			l.lastFields = make([]string, 0, len(f.fieldMap))
			for _, idx := range f.fieldMap {
				l.lastFields = append(l.lastFields, reg.FieldName(idx))
			}
		}
	}
	return st, nil
}

// scanSegment folds one segment's records. Torn frames in the final
// segment truncate the file; any damage elsewhere is fatal.
func (l *fileLog) scanSegment(seg *segInfo, last bool, f *folder) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return err
	}
	off := 0
	torn := func(cause error) error {
		if !last {
			return &Corrupt{Path: seg.path, Off: int64(off), Err: cause}
		}
		if err := os.Truncate(seg.path, int64(off)); err != nil {
			return fmt.Errorf("durable: truncate torn tail of %s: %w", seg.path, err)
		}
		return nil
	}
	for off < len(data) {
		if len(data)-off < frameHeader {
			return torn(errors.New("short frame header"))
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes {
			return torn(fmt.Errorf("implausible frame length %d", n))
		}
		if len(data)-off-frameHeader < int(n) {
			return torn(errors.New("short frame payload"))
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			return torn(errors.New("frame CRC mismatch"))
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// CRC-valid but undecodable: the bytes arrived intact, so
			// this is real damage (or a format break), never a torn tail.
			return &Corrupt{Path: seg.path, Off: int64(off), Err: err}
		}
		if rec.Kind == KindEvents && len(rec.Events) > 0 {
			seg.hasEvents = true
			if s := rec.Events[len(rec.Events)-1].Seq; s > seg.maxSeq {
				seg.maxSeq = s
			}
		}
		if err := f.add(rec); err != nil {
			return &Corrupt{Path: seg.path, Off: int64(off), Err: err}
		}
		off += frameHeader + int(n)
	}
	return nil
}

// Append implements ShardLog.
func (l *fileLog) Append(rec *Record) error {
	if !l.loaded || l.closed {
		return ErrNotLoaded
	}
	switch rec.Kind {
	case KindTypes:
		l.lastTypes = rec.Types
	case KindFields:
		l.lastFields = rec.Fields
	case KindCut:
		if l.curSize >= l.segLimit {
			return l.rotate(rec)
		}
	}
	return l.writeFrame(rec)
}

// writeFrame encodes rec and appends one CRC frame to the live segment.
func (l *fileLog) writeFrame(rec *Record) error {
	payload, err := encodeRecord(l.scratch[:0], rec)
	if err != nil {
		return err
	}
	l.scratch = payload[:0]
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.bw.Write(payload); err != nil {
		return err
	}
	l.curSize += int64(frameHeader + len(payload))
	if rec.Kind == KindEvents && len(rec.Events) > 0 {
		l.cur.hasEvents = true
		if s := rec.Events[len(rec.Events)-1].Seq; s > l.cur.maxSeq {
			l.cur.maxSeq = s
		}
	}
	return nil
}

// rotate closes the live segment, starts the next one seeded with the
// name tables and cut (so it is self-describing), syncs it, and then
// deletes older segments whose every event lies below the cut boundary.
// Compaction runs only after the new segment's cut is durable.
func (l *fileLog) rotate(cut *Record) error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segs = append(l.segs, l.cur)
	next := segInfo{index: l.cur.index + 1}
	next.path = segPath(l.dir, next.index)
	file, err := os.OpenFile(next.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = file
	l.bw = bufio.NewWriterSize(file, 64*1024)
	l.cur = next
	l.curSize = 0
	if len(l.lastTypes) > 0 {
		if err := l.writeFrame(&Record{Kind: KindTypes, Types: l.lastTypes}); err != nil {
			return err
		}
	}
	if len(l.lastFields) > 0 {
		if err := l.writeFrame(&Record{Kind: KindFields, Fields: l.lastFields}); err != nil {
			return err
		}
	}
	if err := l.writeFrame(cut); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	// Delete the released prefix: segments wholly below the boundary.
	// Stop at the first segment that still holds journal suffix events —
	// later segments may hold older events interleaved with needed ones
	// only in theory (seqs grow monotonically), so a prefix scan is
	// exact. Checkpoints lost with a deleted segment only cost replay
	// time, never correctness.
	boundary := cut.Cut.Boundary
	keep := 0
	for keep < len(l.segs) {
		s := l.segs[keep]
		if s.hasEvents && s.maxSeq >= boundary {
			break
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			break
		}
		keep++
	}
	l.segs = append([]segInfo(nil), l.segs[keep:]...)
	return nil
}

// DiscardsRecords reports that Append encodes the record into the
// segment and keeps no reference to it afterwards, so callers may reuse
// record-owned buffers (notably event batches) once Append returns.
func (l *fileLog) DiscardsRecords() bool { return true }

// Sync implements ShardLog.
func (l *fileLog) Sync() error {
	if !l.loaded || l.closed {
		return ErrNotLoaded
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close implements ShardLog.
func (l *fileLog) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.loaded {
		if e := l.bw.Flush(); e != nil {
			err = e
		}
		if e := l.f.Sync(); e != nil && err == nil {
			err = e
		}
		if e := l.f.Close(); e != nil && err == nil {
			err = e
		}
	}
	l.fs.release(l.key)
	return err
}
