package durable

import (
	"fmt"
	"sync"

	"github.com/spectrecep/spectre/internal/event"
)

// MemStore is the in-memory Store: records survive engine restarts
// within one process but not process death. It deliberately models the
// volatile/durable split of a real disk — Append lands in a volatile
// buffer, Sync promotes it — so tests can call Crash to drop everything
// that was never synced and exercise the same torn-state recovery paths
// a machine failure produces. Records are stored encoded; Load decodes
// them, so every MemStore test also exercises the codec.
type MemStore struct {
	mu     sync.Mutex
	shards map[string]*memShard
	closed bool
}

type memShard struct {
	mu       sync.Mutex
	durable  [][]byte
	volatile [][]byte
	epoch    uint64 // bumped on Crash; stale handles become inert
	open     bool
	loaded   bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{shards: make(map[string]*memShard)}
}

// OpenShard implements Store.
func (m *MemStore) OpenShard(query string, shard int) (ShardLog, error) {
	key := fmt.Sprintf("%s/%d", query, shard)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("durable: store closed")
	}
	sh, ok := m.shards[key]
	if !ok {
		sh = &memShard{}
		m.shards[key] = sh
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.open {
		return nil, fmt.Errorf("%w: %s", ErrShardOpen, key)
	}
	sh.open = true
	sh.loaded = false
	return &memLog{sh: sh, epoch: sh.epoch}, nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

// Crash simulates process death: every unsynced (volatile) record is
// dropped and all open shard logs are force-released, as if the process
// holding them vanished. Handles from before the crash become inert —
// their appends, syncs and closes are refused — mirroring a dead
// process's file descriptors.
func (m *MemStore) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.volatile = nil
		sh.open = false
		sh.epoch++
		sh.mu.Unlock()
	}
}

// memLog is one shard's handle.
type memLog struct {
	sh     *memShard
	epoch  uint64
	closed bool
}

// live reports whether the handle may touch the shard; the caller holds
// sh.mu.
func (l *memLog) live() bool {
	return !l.closed && l.epoch == l.sh.epoch
}

// Load implements ShardLog.
func (l *memLog) Load(reg *event.Registry) (*ShardState, error) {
	l.sh.mu.Lock()
	defer l.sh.mu.Unlock()
	if !l.live() {
		return nil, ErrNotLoaded
	}
	f := newFolder(reg)
	for _, p := range l.sh.durable {
		rec, err := decodeRecord(p)
		if err != nil {
			return nil, err
		}
		if err := f.add(rec); err != nil {
			return nil, err
		}
	}
	l.sh.loaded = true
	return f.finish(), nil
}

// Append implements ShardLog.
func (l *memLog) Append(rec *Record) error {
	l.sh.mu.Lock()
	defer l.sh.mu.Unlock()
	if !l.live() || !l.sh.loaded {
		return ErrNotLoaded
	}
	p, err := encodeRecord(nil, rec)
	if err != nil {
		return err
	}
	l.sh.volatile = append(l.sh.volatile, p)
	return nil
}

// Sync implements ShardLog.
func (l *memLog) Sync() error {
	l.sh.mu.Lock()
	defer l.sh.mu.Unlock()
	if !l.live() || !l.sh.loaded {
		return ErrNotLoaded
	}
	l.sh.durable = append(l.sh.durable, l.sh.volatile...)
	l.sh.volatile = nil
	return nil
}

// Close implements ShardLog. Unsynced records are discarded (a clean
// shutdown syncs first; the engine's persister does).
func (l *memLog) Close() error {
	l.sh.mu.Lock()
	defer l.sh.mu.Unlock()
	if l.live() {
		l.closed = true
		l.sh.volatile = nil
		l.sh.open = false
	}
	return nil
}
