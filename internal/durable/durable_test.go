package durable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spectrecep/spectre/internal/event"
)

// testEvents builds n events of alternating types A/B with one payload
// field, seqs starting at base.
func testEvents(reg *event.Registry, base uint64, n int) []event.Event {
	a, b := reg.TypeID("A"), reg.TypeID("B")
	price := reg.FieldIndex("price")
	evs := make([]event.Event, n)
	for i := range evs {
		t := a
		if i%2 == 1 {
			t = b
		}
		fields := make([]float64, price+1)
		fields[price] = float64(base) + float64(i)
		evs[i] = event.Event{Seq: base + uint64(i), TS: int64(base) + int64(i), Type: t, Fields: fields}
	}
	return evs
}

func openShard(t *testing.T, s Store, reg *event.Registry) (ShardLog, *ShardState) {
	t.Helper()
	log, err := s.OpenShard("q", 0)
	if err != nil {
		t.Fatalf("OpenShard: %v", err)
	}
	st, err := log.Load(reg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return log, st
}

func appendAll(t *testing.T, log ShardLog, recs ...*Record) {
	t.Helper()
	for _, rec := range recs {
		if err := log.Append(rec); err != nil {
			t.Fatalf("Append kind %d: %v", rec.Kind, err)
		}
	}
	if err := log.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// writeJournal appends tables + events + a watermark and closes the log.
func writeJournal(t *testing.T, s Store, reg *event.Registry, base uint64, n int, watermark uint64) {
	t.Helper()
	log, _ := openShard(t, s, reg)
	appendAll(t, log,
		TypesRecord(reg),
		FieldsRecord(reg),
		&Record{Kind: KindEvents, Events: testEvents(reg, base, n)},
		&Record{Kind: KindWatermark, Watermark: watermark},
	)
	if err := log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func stores(t *testing.T) map[string]Store {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	return map[string]Store{"file": fs, "mem": NewMemStore()}
}

func TestRoundtrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			reg := event.NewRegistry()
			writeJournal(t, s, reg, 0, 10, 3)

			log, st := openShard(t, s, reg)
			defer log.Close()
			if st == nil {
				t.Fatal("empty state after writes")
			}
			if len(st.Events) != 10 {
				t.Fatalf("journal length = %d, want 10", len(st.Events))
			}
			for i, ev := range st.Events {
				if ev.Seq != uint64(i) {
					t.Fatalf("event %d has seq %d", i, ev.Seq)
				}
				if got := ev.Field(reg.FieldIndex("price")); got != float64(i) {
					t.Fatalf("event %d price = %v, want %v", i, got, float64(i))
				}
			}
			if st.NextSeq != 10 {
				t.Fatalf("NextSeq = %d, want 10", st.NextSeq)
			}
			if st.Watermark != 3 {
				t.Fatalf("Watermark = %d, want 3", st.Watermark)
			}
		})
	}
}

func TestCutFoldsState(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			reg := event.NewRegistry()
			log, _ := openShard(t, s, reg)
			appendAll(t, log,
				TypesRecord(reg),
				FieldsRecord(reg),
				&Record{Kind: KindEvents, Events: testEvents(reg, 0, 20)},
				&Record{Kind: KindCheckpoint, Checkpoint: &CheckpointRecord{WindowID: 1, WindowStart: 2, Pos: 6}},
				&Record{Kind: KindCheckpoint, Checkpoint: &CheckpointRecord{WindowID: 4, WindowStart: 12, Pos: 15}},
				&Record{Kind: KindWatermark, Watermark: 5},
				&Record{Kind: KindCut, Cut: &CutRecord{Boundary: 10, NextWindowID: 4, Watermark: 5, Consumed: []uint64{11, 13}}},
			)
			log.Close()

			log, st := openShard(t, s, reg)
			defer log.Close()
			if st.Cut == nil || st.Cut.Boundary != 10 {
				t.Fatalf("cut = %+v, want boundary 10", st.Cut)
			}
			if len(st.Events) != 10 || st.Events[0].Seq != 10 {
				t.Fatalf("journal after cut: %d events, first seq %d; want 10 starting at 10",
					len(st.Events), st.Events[0].Seq)
			}
			if len(st.Checkpoints) != 1 || st.Checkpoints[0].WindowID != 4 {
				t.Fatalf("checkpoints after cut = %d entries, want only window 4", len(st.Checkpoints))
			}
			if got := st.Cut.Consumed; len(got) != 2 || got[0] != 11 || got[1] != 13 {
				t.Fatalf("consumed = %v, want [11 13]", got)
			}
		})
	}
}

// TestRegistryRemap loads a log with a registry that interned the same
// names in a different order: type ids and field indices must be
// rewritten, not trusted.
func TestRegistryRemap(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			reg := event.NewRegistry()
			reg.TypeID("A")          // 1
			reg.TypeID("B")          // 2
			reg.FieldIndex("price")  // 0
			reg.FieldIndex("volume") // 1
			log, _ := openShard(t, s, reg)
			ev := event.Event{Seq: 0, Type: reg.TypeID("B"), Fields: []float64{7, 9}}
			appendAll(t, log, TypesRecord(reg), FieldsRecord(reg),
				&Record{Kind: KindEvents, Events: []event.Event{ev}})
			log.Close()

			reg2 := event.NewRegistry()
			reg2.TypeID("B")          // 1 — swapped vs reg
			reg2.TypeID("A")          // 2
			reg2.FieldIndex("volume") // 0 — swapped vs reg
			reg2.FieldIndex("price")  // 1
			log, st := openShard(t, s, reg2)
			defer log.Close()
			got := st.Events[0]
			if got.Type != reg2.TypeID("B") {
				t.Fatalf("type = %d, want %d (B in the loading registry)", got.Type, reg2.TypeID("B"))
			}
			if p := got.Field(reg2.FieldIndex("price")); p != 7 {
				t.Fatalf("price = %v, want 7", p)
			}
			if v := got.Field(reg2.FieldIndex("volume")); v != 9 {
				t.Fatalf("volume = %v, want 9", v)
			}
		})
	}
}

func TestDoubleOpenRefused(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			log, err := s.OpenShard("q", 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.OpenShard("q", 0); !errors.Is(err, ErrShardOpen) {
				t.Fatalf("second open: %v, want ErrShardOpen", err)
			}
			log.Close()
			log2, err := s.OpenShard("q", 0)
			if err != nil {
				t.Fatalf("reopen after close: %v", err)
			}
			log2.Close()
		})
	}
}

// segFiles lists the shard's segment files, oldest first.
func segFiles(t *testing.T, fs *FileStore) []string {
	t.Helper()
	var segs []string
	err := filepath.WalkDir(fs.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".seg") {
			segs = append(segs, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// TestTornTailTruncated simulates a crash mid-append: garbage after the
// last full frame must be truncated on open, keeping the intact prefix.
func TestTornTailTruncated(t *testing.T) {
	cases := map[string]func([]byte) []byte{
		"short-header":  func(b []byte) []byte { return append(b, 0x03, 0x00) },
		"short-payload": func(b []byte) []byte { return append(b, 0xff, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 0x01) },
		"crc-mismatch": func(b []byte) []byte {
			frame := make([]byte, 12)
			binary.LittleEndian.PutUint32(frame, 4)
			binary.LittleEndian.PutUint32(frame[4:], 0xdeadbeef)
			return append(b, frame...)
		},
		"zero-length": func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0, 0, 0, 0) },
	}
	for name, mangle := range cases {
		t.Run(name, func(t *testing.T) {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			reg := event.NewRegistry()
			writeJournal(t, fs, reg, 0, 5, 1)

			segs := segFiles(t, fs)
			if len(segs) != 1 {
				t.Fatalf("segments = %d, want 1", len(segs))
			}
			data, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			intact := len(data)
			if err := os.WriteFile(segs[0], mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			log, st := openShard(t, fs, reg)
			if len(st.Events) != 5 || st.Watermark != 1 {
				t.Fatalf("recovered %d events, watermark %d; want 5, 1", len(st.Events), st.Watermark)
			}
			// The tail must be physically gone, and the log writable again.
			if fi, _ := os.Stat(segs[0]); fi.Size() != int64(intact) {
				t.Fatalf("segment size %d after repair, want %d", fi.Size(), intact)
			}
			appendAll(t, log, &Record{Kind: KindEvents, Events: testEvents(reg, 5, 1)})
			log.Close()

			log, st = openShard(t, fs, reg)
			defer log.Close()
			if len(st.Events) != 6 {
				t.Fatalf("after repair+append: %d events, want 6", len(st.Events))
			}
		})
	}
}

// TestCorruptionMidFileFatal flips a payload byte in a frame that is NOT
// the tail: that is real damage, not a torn write, and Load must refuse.
func TestCorruptionMidFileFatal(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := event.NewRegistry()
	writeJournal(t, fs, reg, 0, 5, 1)

	seg := segFiles(t, fs)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first frame's payload AND fix up its CRC so
	// the frame passes framing but fails decoding (CRC-valid garbage).
	n := binary.LittleEndian.Uint32(data)
	payload := data[frameHeader : frameHeader+int(n)]
	payload[0] ^= 0xff // record kind becomes implausible
	binary.LittleEndian.PutUint32(data[4:], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	log, err := fs.OpenShard("q", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	_, err = log.Load(reg)
	var c *Corrupt
	if !errors.As(err, &c) {
		t.Fatalf("Load = %v, want *Corrupt", err)
	}
}

// TestRotationAndCompaction drives the segment limit low, writes
// journal+cut cycles and verifies (a) rotation produces new segments,
// (b) fully-released segments are deleted, (c) the folded state after
// reopen matches the logical state.
func TestRotationAndCompaction(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs.SegmentBytes = 512
	reg := event.NewRegistry()
	log, _ := openShard(t, fs, reg)
	appendAll(t, log, TypesRecord(reg), FieldsRecord(reg))
	var seq uint64
	for round := 0; round < 8; round++ {
		appendAll(t, log, &Record{Kind: KindEvents, Events: testEvents(reg, seq, 16)})
		seq += 16
		appendAll(t, log, &Record{Kind: KindCut, Cut: &CutRecord{Boundary: seq - 4, NextWindowID: uint64(round + 1), Watermark: uint64(round)}})
	}
	log.Close()

	segs := segFiles(t, fs)
	if len(segs) < 2 {
		t.Fatalf("segments after 8 rotations-worth of cuts = %d, want rotation to have occurred", len(segs))
	}
	// The oldest segment on disk must still cover the final boundary's
	// journal suffix: everything wholly below it was compacted away.
	if !strings.HasSuffix(segs[0], "wal-00000001.seg") {
		// good: segment 1 was deleted by compaction
	} else {
		t.Fatalf("segment 1 survived compaction: %v", segs)
	}

	log, st := openShard(t, fs, reg)
	defer log.Close()
	if st.Cut == nil || st.Cut.Boundary != seq-4 {
		t.Fatalf("cut boundary = %+v, want %d", st.Cut, seq-4)
	}
	if len(st.Events) != 4 || st.Events[0].Seq != seq-4 {
		t.Fatalf("journal = %d events starting at %d, want 4 starting at %d",
			len(st.Events), st.Events[0].Seq, seq-4)
	}
	if st.NextSeq != seq {
		t.Fatalf("NextSeq = %d, want %d", st.NextSeq, seq)
	}
	if st.Watermark != 7 {
		t.Fatalf("watermark = %d, want 7", st.Watermark)
	}
}

// TestMemCrashDropsUnsynced is the MemStore volatile/durable contract:
// unsynced appends vanish at Crash, synced ones survive, and handles
// from before the crash are inert.
func TestMemCrashDropsUnsynced(t *testing.T) {
	ms := NewMemStore()
	reg := event.NewRegistry()
	log, _ := openShard(t, ms, reg)
	appendAll(t, log, TypesRecord(reg), FieldsRecord(reg),
		&Record{Kind: KindEvents, Events: testEvents(reg, 0, 4)})
	// Unsynced tail: must not survive the crash.
	if err := log.Append(&Record{Kind: KindEvents, Events: testEvents(reg, 4, 4)}); err != nil {
		t.Fatal(err)
	}

	ms.Crash()

	if err := log.Append(&Record{Kind: KindWatermark, Watermark: 9}); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("stale handle Append = %v, want ErrNotLoaded", err)
	}
	if err := log.Sync(); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("stale handle Sync = %v, want ErrNotLoaded", err)
	}

	log2, st := openShard(t, ms, reg)
	defer log2.Close()
	if len(st.Events) != 4 || st.NextSeq != 4 {
		t.Fatalf("recovered %d events, NextSeq %d; want the 4 synced ones", len(st.Events), st.NextSeq)
	}
}

// TestAppendBeforeLoad: the Load-first contract is enforced.
func TestAppendBeforeLoad(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			log, err := s.OpenShard("q", 0)
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()
			if err := log.Append(&Record{Kind: KindWatermark, Watermark: 1}); !errors.Is(err, ErrNotLoaded) {
				t.Fatalf("Append before Load = %v, want ErrNotLoaded", err)
			}
		})
	}
}
