// Package durable persists per-shard query state so a SPECTRE runtime
// survives process death: a write-ahead log of admitted events (the
// replay journal), matcher checkpoints, root-pop cut records and an
// emission watermark. The log is segmented, each record CRC-framed, and
// appends reach disk through an explicit Sync — the engine batches and
// syncs off the hot path (internal/core's persister goroutine).
//
// Recovery contract (consumed by core's recover path):
//
//   - The cut record is the durable floor: everything below its Boundary
//     is released — popped windows, released arena prefix, already-final
//     consumption marks folded into Consumed.
//   - Events at or above the boundary form the replay journal; feeding
//     them back through the engine re-forms windows and matches
//     deterministically (window formation depends only on Seq/TS).
//   - Checkpoints are a pure optimisation: replay seeds window versions
//     from the deepest consistent one instead of the window start.
//   - The watermark counts matches delivered to the sink, cumulatively
//     per shard. It is synced before delivery, so on recovery the first
//     (Watermark − Cut.Watermark) regenerated matches are suppressed —
//     exactly-once on the journaled substream.
//
// Type and field ids are registry-assignment-dependent, so the log
// carries the full name tables (KindTypes/KindFields); Load re-interns
// them and remaps every persisted event, making the log portable across
// restarts that intern names in a different order.
package durable

import (
	"errors"
	"fmt"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/matcher"
)

// Kind discriminates WAL record types.
type Kind uint8

const (
	// KindTypes carries the registry's type-name table (ids 1..n in
	// order). Written at shard open and re-written when the table grows
	// and at segment rotation, so every segment is self-describing.
	KindTypes Kind = iota + 1
	// KindFields carries the registry's field-name table (indices 0..n).
	KindFields
	// KindEvents is a batch of admitted events, in ingest order.
	KindEvents
	// KindCheckpoint is a serialized matcher checkpoint for one window.
	KindCheckpoint
	// KindCut is a root-pop cut: the durable floor advances.
	KindCut
	// KindWatermark advances the cumulative delivered-match count.
	KindWatermark
)

// Record is the sum type appended to a shard log. Exactly the fields for
// its Kind are set.
type Record struct {
	Kind       Kind
	Types      []string
	Fields     []string
	Events     []event.Event
	Checkpoint *CheckpointRecord
	Cut        *CutRecord
	Watermark  uint64
}

// CheckpointRecord is the durable form of a deptree checkpoint: window
// identity plus the version bookkeeping and a self-contained matcher
// snapshot (bound events by value — no arena references). Only
// suppression-free (mainline) checkpoints are persisted, so Skipped is
// empty by construction and no Sup set is recorded.
type CheckpointRecord struct {
	WindowID      uint64
	WindowStart   uint64
	WindowStartTS int64
	Pos           uint64
	Used          []uint64
	Skipped       []uint64
	LocalConsumed []uint64
	Buffered      []event.Complex
	Matcher       matcher.Snapshot
}

// CutRecord marks a root pop. Everything below Boundary is durably
// final: the arena prefix is released, windows below NextWindowID are
// resolved, and Watermark matches have been delivered.
type CutRecord struct {
	// Boundary is the new arena floor (the new root window's start, or
	// the stream length when the tree emptied).
	Boundary uint64
	// NextWindowID is the id the window manager will assign next (the
	// new root's id, or the opened count when the tree emptied).
	NextWindowID uint64
	// Watermark is the cumulative delivered-match count at the cut.
	Watermark uint64
	// Consumed holds the finally consumed event seqs at or above Boundary
	// as run-length pairs — start, count, start, count, … ascending —
	// (marks below the boundary can never be observed again). Consumption
	// is dense where windows completed, so runs keep per-cut snapshots
	// small on consume-heavy workloads.
	Consumed []uint64
}

// ShardState is the folded result of loading a shard log.
type ShardState struct {
	// Cut is the latest cut record, or nil when none was written.
	Cut *CutRecord
	// Events is the replay journal: admitted events at or above the cut
	// boundary, in ingest order, remapped to the loading registry.
	Events []event.Event
	// Checkpoints are the retained checkpoints for windows at or above
	// the boundary, remapped, in append order.
	Checkpoints []*CheckpointRecord
	// Watermark is the highest cumulative delivered-match count seen.
	Watermark uint64
	// NextSeq is one past the last journaled event's sequence number
	// (the position a producer should resume feeding from).
	NextSeq uint64
}

// Store hands out per-(query, shard) logs. Implementations must allow
// concurrent OpenShard calls for distinct shards; a shard already open
// returns an error until its log is closed.
type Store interface {
	OpenShard(query string, shard int) (ShardLog, error)
	Close() error
}

// ShardLog is one shard's WAL. Load must be called once, before the
// first Append: it repairs a torn tail, folds the retained records into
// a ShardState (nil when the log is empty) and readies the log for
// appending. Append buffers; Sync makes everything appended so far
// durable. Append takes ownership of the record and its slices.
type ShardLog interface {
	Load(reg *event.Registry) (*ShardState, error)
	Append(rec *Record) error
	Sync() error
	Close() error
}

// ErrShardOpen is returned by OpenShard while another log handle for the
// same shard is still open.
var ErrShardOpen = errors.New("durable: shard log already open")

// ErrNotLoaded is returned by Append/Sync before Load was called.
var ErrNotLoaded = errors.New("durable: shard log not loaded")

// Corrupt wraps unrecoverable log damage: a CRC-valid frame whose body
// does not decode, or a broken frame before the final segment's tail.
type Corrupt struct {
	Path string
	Off  int64
	Err  error
}

// Error implements error.
func (c *Corrupt) Error() string {
	return fmt.Sprintf("durable: corrupt record in %s at offset %d: %v", c.Path, c.Off, c.Err)
}

// Unwrap implements errors.Unwrap.
func (c *Corrupt) Unwrap() error { return c.Err }

// folder accumulates a shard state from a record sequence. Registry
// remapping is applied as the name tables stream by.
type folder struct {
	reg      *event.Registry
	typeMap  []event.Type // old id -> new id; nil means identity so far
	fieldMap []int        // old index -> new index
	identity bool

	st  ShardState
	any bool
}

func newFolder(reg *event.Registry) *folder {
	return &folder{reg: reg, identity: true}
}

// remapEvent rewrites ev's type id and field layout in place into the
// loading registry's assignment.
func (f *folder) remapEvent(ev *event.Event) {
	if f.identity {
		return
	}
	if int(ev.Type) < len(f.typeMap) {
		ev.Type = f.typeMap[ev.Type]
	}
	if len(ev.Fields) == 0 {
		return
	}
	width := 0
	for i := range ev.Fields {
		ni := i
		if i < len(f.fieldMap) {
			ni = f.fieldMap[i]
		}
		if ni+1 > width {
			width = ni + 1
		}
	}
	out := make([]float64, width)
	for i, v := range ev.Fields {
		ni := i
		if i < len(f.fieldMap) {
			ni = f.fieldMap[i]
		}
		out[ni] = v
	}
	ev.Fields = out
}

func (f *folder) add(rec *Record) error {
	f.any = true
	switch rec.Kind {
	case KindTypes:
		f.typeMap = make([]event.Type, len(rec.Types)+1)
		same := true
		for i, name := range rec.Types {
			id := f.reg.TypeID(name)
			f.typeMap[i+1] = id
			if id != event.Type(i+1) {
				same = false
			}
		}
		f.identity = same && fieldMapIdentity(f.fieldMap)
	case KindFields:
		f.fieldMap = make([]int, len(rec.Fields))
		same := true
		for i, name := range rec.Fields {
			idx := f.reg.FieldIndex(name)
			f.fieldMap[i] = idx
			if idx != i {
				same = false
			}
		}
		f.identity = same && typeMapIdentity(f.typeMap)
	case KindEvents:
		for i := range rec.Events {
			f.remapEvent(&rec.Events[i])
			if rec.Events[i].Seq+1 > f.st.NextSeq {
				f.st.NextSeq = rec.Events[i].Seq + 1
			}
		}
		f.st.Events = append(f.st.Events, rec.Events...)
	case KindCheckpoint:
		ck := rec.Checkpoint
		for ri := range ck.Matcher.Runs {
			evs := ck.Matcher.Runs[ri].Events
			for i := range evs {
				f.remapEvent(&evs[i])
			}
		}
		f.st.Checkpoints = append(f.st.Checkpoints, ck)
	case KindCut:
		f.st.Cut = rec.Cut
		if rec.Cut.Watermark > f.st.Watermark {
			f.st.Watermark = rec.Cut.Watermark
		}
	case KindWatermark:
		if rec.Watermark > f.st.Watermark {
			f.st.Watermark = rec.Watermark
		}
	default:
		return fmt.Errorf("durable: unknown record kind %d", rec.Kind)
	}
	return nil
}

func typeMapIdentity(m []event.Type) bool {
	for i, id := range m {
		if i > 0 && id != event.Type(i) {
			return false
		}
	}
	return true
}

func fieldMapIdentity(m []int) bool {
	for i, idx := range m {
		if idx != i {
			return false
		}
	}
	return true
}

// finish applies the final cut filter and returns the state (nil when
// the log held no records).
func (f *folder) finish() *ShardState {
	if !f.any {
		return nil
	}
	st := f.st
	if cut := st.Cut; cut != nil {
		kept := st.Events[:0]
		for i := range st.Events {
			if st.Events[i].Seq >= cut.Boundary {
				kept = append(kept, st.Events[i])
			}
		}
		st.Events = kept
		cks := st.Checkpoints[:0]
		for _, ck := range st.Checkpoints {
			if ck.WindowStart >= cut.Boundary {
				cks = append(cks, ck)
			}
		}
		st.Checkpoints = cks
		if st.NextSeq < cut.Boundary {
			st.NextSeq = cut.Boundary
		}
	}
	return &st
}

// TypesRecord builds a KindTypes record from reg's current table.
func TypesRecord(reg *event.Registry) *Record {
	n := reg.NumTypes()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = reg.TypeName(event.Type(i + 1))
	}
	return &Record{Kind: KindTypes, Types: names}
}

// FieldsRecord builds a KindFields record from reg's current table.
func FieldsRecord(reg *event.Registry) *Record {
	n := reg.NumFields()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = reg.FieldName(i)
	}
	return &Record{Kind: KindFields, Fields: names}
}
