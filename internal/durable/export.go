package durable

import (
	"encoding/binary"
	"fmt"

	"github.com/spectrecep/spectre/internal/event"
)

// Shard export/import turns one shard's folded WAL state into a portable
// byte blob and back. This is the migration primitive of the distributed
// runtime (internal/cluster): a quiesced shard's journal tail, retained
// checkpoints, cut record and emission watermark travel inside a handoff
// frame to the shard's next owner, which imports them into its own store
// and recovers through the ordinary crash-recovery path.
//
// The blob is a sequence of length-prefixed records in the WAL's own
// encoding, always led by the registry name tables, so an import into a
// process that interned names in a different order remaps exactly like a
// restart does.

// ExportShard loads the (query, shard) log from st and renders its folded
// state as a self-describing record blob. The shard log must be closed
// (the owning runtime parked); exporting an open shard fails with
// ErrShardOpen.
func ExportShard(st Store, reg *event.Registry, query string, shard int) ([]byte, error) {
	log, err := st.OpenShard(query, shard)
	if err != nil {
		return nil, fmt.Errorf("durable: export %s/%d: %w", query, shard, err)
	}
	defer log.Close()
	state, err := log.Load(reg)
	if err != nil {
		return nil, fmt.Errorf("durable: export %s/%d: %w", query, shard, err)
	}
	if state == nil {
		return nil, nil
	}
	recs := []*Record{TypesRecord(reg), FieldsRecord(reg)}
	// The journal is chunked so no single record approaches the codec's
	// size cap even for a large retained tail.
	const exportChunk = 4096
	for evs := state.Events; len(evs) > 0; {
		n := min(len(evs), exportChunk)
		recs = append(recs, &Record{Kind: KindEvents, Events: evs[:n]})
		evs = evs[n:]
	}
	for _, ck := range state.Checkpoints {
		recs = append(recs, &Record{Kind: KindCheckpoint, Checkpoint: ck})
	}
	if state.Cut != nil {
		recs = append(recs, &Record{Kind: KindCut, Cut: state.Cut})
	}
	recs = append(recs, &Record{Kind: KindWatermark, Watermark: state.Watermark})

	var blob []byte
	scratch := make([]byte, 0, 4096)
	for _, rec := range recs {
		scratch, err = encodeRecord(scratch[:0], rec)
		if err != nil {
			return nil, fmt.Errorf("durable: export %s/%d: %w", query, shard, err)
		}
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(scratch)))
		blob = append(blob, n[:]...)
		blob = append(blob, scratch...)
	}
	return blob, nil
}

// ImportShard appends an exported blob into st's (query, shard) log, which
// must be empty and closed: importing over existing state would interleave
// two histories. A nil blob is a no-op (exporting a never-written shard
// yields nil, and importing it leaves the destination fresh).
func ImportShard(st Store, reg *event.Registry, query string, shard int, blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	recs, err := decodeExport(blob)
	if err != nil {
		return fmt.Errorf("durable: import %s/%d: %w", query, shard, err)
	}
	log, err := st.OpenShard(query, shard)
	if err != nil {
		return fmt.Errorf("durable: import %s/%d: %w", query, shard, err)
	}
	defer log.Close()
	state, err := log.Load(reg)
	if err != nil {
		return fmt.Errorf("durable: import %s/%d: %w", query, shard, err)
	}
	if state != nil {
		return fmt.Errorf("durable: import %s/%d: destination shard log is not empty", query, shard)
	}
	for _, rec := range recs {
		if err := log.Append(rec); err != nil {
			return fmt.Errorf("durable: import %s/%d: %w", query, shard, err)
		}
	}
	if err := log.Sync(); err != nil {
		return fmt.Errorf("durable: import %s/%d: %w", query, shard, err)
	}
	return nil
}

// decodeExport splits a blob back into records.
func decodeExport(blob []byte) ([]*Record, error) {
	var recs []*Record
	for off := 0; off < len(blob); {
		if len(blob)-off < 4 {
			return nil, fmt.Errorf("truncated export blob at offset %d", off)
		}
		n := int(binary.BigEndian.Uint32(blob[off : off+4]))
		off += 4
		if n <= 0 || n > maxRecordBytes || n > len(blob)-off {
			return nil, fmt.Errorf("corrupt export record length %d at offset %d", n, off-4)
		}
		rec, err := decodeRecord(blob[off : off+n])
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, nil
}
