package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCandlesticks(t *testing.T) {
	c := Candlesticks([]float64{5, 1, 3, 2, 4})
	if c.Min != 1 || c.Max != 5 || c.Median != 3 {
		t.Fatalf("candles = %+v", c)
	}
	if c.P25 != 2 || c.P75 != 4 {
		t.Fatalf("quartiles = %g / %g, want 2 / 4", c.P25, c.P75)
	}
	if got := Candlesticks(nil); got != (Candles{}) {
		t.Fatal("empty input must return zero candles")
	}
	single := Candlesticks([]float64{7})
	if single.Min != 7 || single.Median != 7 || single.Max != 7 {
		t.Fatalf("single sample candles = %+v", single)
	}
}

// TestPercentileProperties: percentiles are monotone in p and bounded by
// min/max.
func TestPercentileProperties(t *testing.T) {
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(s, p)
			if v < s[0]-1e-9 || v > s[len(s)-1]+1e-9 {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input must be 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %g, want 4", got)
	}
	if got := StdDev([]float64{2, 4, 6}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %g, want 2", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("one sample has no deviation")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("throughput = %g, want 1000", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("zero duration must be 0, got %g", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for _, v := range []float64{10, 30, 20} {
		s.Add(v)
	}
	if s.Median() != 20 {
		t.Fatalf("median = %g, want 20", s.Median())
	}
	if s.Candles().Max != 30 {
		t.Fatal("candles must reflect the samples")
	}
}
