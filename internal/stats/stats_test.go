package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCandlesticks(t *testing.T) {
	c := Candlesticks([]float64{5, 1, 3, 2, 4})
	if c.Min != 1 || c.Max != 5 || c.Median != 3 {
		t.Fatalf("candles = %+v", c)
	}
	if c.P25 != 2 || c.P75 != 4 {
		t.Fatalf("quartiles = %g / %g, want 2 / 4", c.P25, c.P75)
	}
	if got := Candlesticks(nil); got != (Candles{}) {
		t.Fatal("empty input must return zero candles")
	}
	single := Candlesticks([]float64{7})
	if single.Min != 7 || single.Median != 7 || single.Max != 7 {
		t.Fatalf("single sample candles = %+v", single)
	}
}

// TestPercentileProperties: percentiles are monotone in p and bounded by
// min/max.
func TestPercentileProperties(t *testing.T) {
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(s, p)
			if v < s[0]-1e-9 || v > s[len(s)-1]+1e-9 {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input must be 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("mean = %g, want 4", got)
	}
	if got := StdDev([]float64{2, 4, 6}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %g, want 2", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("one sample has no deviation")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("throughput = %g, want 1000", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("zero duration must be 0, got %g", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for _, v := range []float64{10, 30, 20} {
		s.Add(v)
	}
	if s.Median() != 20 {
		t.Fatalf("median = %g, want 20", s.Median())
	}
	if s.Candles().Max != 30 {
		t.Fatal("candles must reflect the samples")
	}
}

func TestQuantileEWMA(t *testing.T) {
	// Pseudo-shuffled uniform samples on [0, 1): the p50 estimate must
	// settle near the true median and the p99 must sit well above it.
	var p50, p99 QuantileEWMA
	p50.Q = 0.5
	p99.Q = 0.99
	for i := 0; i < 50_000; i++ {
		v := float64((i*7919)%1000) / 1000
		p50.Observe(v)
		p99.Observe(v)
	}
	if !p50.Seeded() || !p99.Seeded() {
		t.Fatal("estimators must report seeded after observations")
	}
	if v := p50.Value(); v < 0.35 || v > 0.65 {
		t.Fatalf("p50 estimate %.3f on uniform [0,1), want ~0.5", v)
	}
	if v := p99.Value(); v < 0.80 {
		t.Fatalf("p99 estimate %.3f on uniform [0,1), want near the top", v)
	}
	if p99.Value() <= p50.Value() {
		t.Fatalf("p99 %.3f <= p50 %.3f: quantile ordering lost", p99.Value(), p50.Value())
	}
}

func TestQuantileEWMAZeroValue(t *testing.T) {
	var q QuantileEWMA // zero Q is degenerate but must not panic
	if q.Seeded() || q.Value() != 0 {
		t.Fatal("zero value must be unseeded with estimate 0")
	}
	q.Observe(5)
	if !q.Seeded() || q.Value() != 5 {
		t.Fatalf("first sample must seed the estimate, got %.3f", q.Value())
	}
}

func TestQuantileEWMATracksShift(t *testing.T) {
	// After the distribution jumps, the adaptive step must pull the
	// estimate toward the new level instead of freezing.
	q := QuantileEWMA{Q: 0.5, Alpha: 0.1}
	for i := 0; i < 5_000; i++ {
		q.Observe(1)
	}
	for i := 0; i < 5_000; i++ {
		q.Observe(100)
	}
	if q.Value() < 50 {
		t.Fatalf("estimate %.1f after a 1 -> 100 shift, want it to track upward", q.Value())
	}
}
