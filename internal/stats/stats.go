// Package stats provides the small statistics toolkit used by the
// evaluation harness: candlestick percentiles (0/25/50/75/100, as in the
// paper's figures), summary statistics, and throughput measurement.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Candles holds the five percentiles the paper's candlestick plots report.
type Candles struct {
	Min, P25, Median, P75, Max float64
}

// Candlesticks computes the 0th, 25th, 50th, 75th and 100th percentiles of
// samples. It returns the zero value for an empty input.
func Candlesticks(samples []float64) Candles {
	if len(samples) == 0 {
		return Candles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return Candles{
		Min:    s[0],
		P25:    Percentile(s, 0.25),
		Median: Percentile(s, 0.50),
		P75:    Percentile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted, using linear
// interpolation between closest ranks. sorted must be ascending and
// non-empty.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of samples (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	var ss float64
	for _, v := range samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)-1))
}

// String renders the candles in the compact form used by the bench harness.
func (c Candles) String() string {
	return fmt.Sprintf("min=%.0f p25=%.0f med=%.0f p75=%.0f max=%.0f",
		c.Min, c.P25, c.Median, c.P75, c.Max)
}

// Throughput converts an event count and elapsed duration into events per
// second. It returns 0 for non-positive durations.
func Throughput(events uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Seconds()
}

// Series accumulates repeated measurements of one experimental
// configuration (the paper repeats each experiment 10 times).
type Series struct {
	Name    string
	Samples []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.Samples = append(s.Samples, v) }

// Candles returns the candlestick percentiles of the series.
func (s *Series) Candles() Candles { return Candlesticks(s.Samples) }

// Median returns the median of the series.
func (s *Series) Median() float64 { return s.Candles().Median }

// EWMA is an exponentially weighted moving average with the same
// fixed-alpha update idiom as the scheduler's adaptive controller
// (internal/sched). The zero value is unseeded: the first observation
// becomes the average directly, so estimates are unbiased at startup.
type EWMA struct {
	Alpha  float64 // per-observation smoothing weight, (0, 1]
	val    float64
	seeded bool
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(v float64) {
	if !e.seeded {
		e.val = v
		e.seeded = true
		return
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.05
	}
	e.val += a * (v - e.val)
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.val }

// Seeded reports whether at least one sample has been observed.
func (e *EWMA) Seeded() bool { return e.seeded }

// QuantileEWMA is a streaming quantile estimator: a stochastic-gradient
// step on the pinball (quantile) loss, with the step size scaled by an
// EWMA of the absolute deviation so the estimate tracks distribution
// shifts without tuning per-stream constants. It is O(1) per sample and
// per instance — suitable for always-on latency gauges.
type QuantileEWMA struct {
	Q      float64 // target quantile, (0, 1); e.g. 0.5, 0.99
	Alpha  float64 // step-size weight, (0, 1]; 0 defaults to 0.05
	est    float64
	spread EWMA
	seeded bool
}

// Observe folds one sample into the quantile estimate.
func (q *QuantileEWMA) Observe(v float64) {
	if !q.seeded {
		q.est = v
		q.spread.Alpha = q.alpha()
		q.seeded = true
		return
	}
	q.spread.Observe(math.Abs(v - q.est))
	step := q.alpha() * q.spread.Value()
	if v > q.est {
		q.est += step * q.Q
	} else if v < q.est {
		q.est -= step * (1 - q.Q)
	}
}

func (q *QuantileEWMA) alpha() float64 {
	if q.Alpha <= 0 || q.Alpha > 1 {
		return 0.05
	}
	return q.Alpha
}

// Value returns the current quantile estimate (0 before any sample).
func (q *QuantileEWMA) Value() float64 { return q.est }

// Seeded reports whether at least one sample has been observed.
func (q *QuantileEWMA) Seeded() bool { return q.seeded }
