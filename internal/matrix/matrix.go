// Package matrix implements the small dense-matrix arithmetic needed by the
// Markov completion-probability model (paper §3.2.1): multiplication,
// integer powers, row-vector application, convex interpolation and
// row-stochastic validation. Matrices are tiny (state space = minimum
// pattern length + 1), so a simple row-major float64 implementation is both
// adequate and allocation-friendly.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimension is returned when operand dimensions are incompatible.
var ErrDimension = errors.New("matrix: incompatible dimensions")

// M is a dense square row-major matrix.
type M struct {
	N    int
	Data []float64 // len N*N, Data[r*N+c]
}

// New returns an N×N zero matrix.
func New(n int) *M {
	return &M{N: n, Data: make([]float64, n*n)}
}

// Identity returns the N×N identity matrix.
func Identity(n int) *M {
	m := New(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (r, c).
func (m *M) At(r, c int) float64 { return m.Data[r*m.N+c] }

// Set assigns element (r, c).
func (m *M) Set(r, c int, v float64) { m.Data[r*m.N+c] = v }

// Clone returns a deep copy.
func (m *M) Clone() *M {
	c := New(m.N)
	copy(c.Data, m.Data)
	return c
}

// Mul returns a*b. It returns ErrDimension when sizes differ.
func Mul(a, b *M) (*M, error) {
	if a.N != b.N {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimension, a.N, b.N)
	}
	n := a.N
	out := New(n)
	for r := 0; r < n; r++ {
		arow := a.Data[r*n : r*n+n]
		orow := out.Data[r*n : r*n+n]
		for k := 0; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for c := 0; c < n; c++ {
				orow[c] += av * brow[c]
			}
		}
	}
	return out, nil
}

// Pow returns m^p for p ≥ 0 using binary exponentiation. Pow(m, 0) is the
// identity.
func Pow(m *M, p int) (*M, error) {
	if p < 0 {
		return nil, fmt.Errorf("matrix: negative power %d", p)
	}
	result := Identity(m.N)
	base := m.Clone()
	for p > 0 {
		if p&1 == 1 {
			r, err := Mul(result, base)
			if err != nil {
				return nil, err
			}
			result = r
		}
		p >>= 1
		if p > 0 {
			b, err := Mul(base, base)
			if err != nil {
				return nil, err
			}
			base = b
		}
	}
	return result, nil
}

// Lerp returns (1-t)*a + t*b. It returns ErrDimension when sizes differ.
func Lerp(a, b *M, t float64) (*M, error) {
	if a.N != b.N {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimension, a.N, b.N)
	}
	out := New(a.N)
	for i := range out.Data {
		out.Data[i] = (1-t)*a.Data[i] + t*b.Data[i]
	}
	return out, nil
}

// Blend returns (1-alpha)*old + alpha*recent — the exponential-smoothing
// update of the paper (T1 = (1-α)·T1_old + α·T1_new).
func Blend(old, recent *M, alpha float64) (*M, error) {
	return Lerp(old, recent, alpha)
}

// ApplyRow returns v*m for a row vector v (len must equal m.N).
func ApplyRow(v []float64, m *M) ([]float64, error) {
	if len(v) != m.N {
		return nil, fmt.Errorf("%w: vector %d vs matrix %d", ErrDimension, len(v), m.N)
	}
	n := m.N
	out := make([]float64, n)
	for r := 0; r < n; r++ {
		vr := v[r]
		if vr == 0 {
			continue
		}
		row := m.Data[r*n : r*n+n]
		for c := 0; c < n; c++ {
			out[c] += vr * row[c]
		}
	}
	return out, nil
}

// IsStochastic reports whether every row sums to 1 within tol and all
// entries are non-negative.
func (m *M) IsStochastic(tol float64) bool {
	n := m.N
	for r := 0; r < n; r++ {
		var sum float64
		for c := 0; c < n; c++ {
			v := m.Data[r*n+c]
			if v < -tol {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > tol {
			return false
		}
	}
	return true
}

// NormalizeRows rescales each row to sum to 1. Rows that sum to zero become
// the corresponding identity row (self-loop), which models "no observation"
// conservatively.
func (m *M) NormalizeRows() {
	n := m.N
	for r := 0; r < n; r++ {
		var sum float64
		for c := 0; c < n; c++ {
			sum += m.Data[r*n+c]
		}
		if sum == 0 {
			m.Data[r*n+r] = 1
			continue
		}
		for c := 0; c < n; c++ {
			m.Data[r*n+c] /= sum
		}
	}
}

// String renders the matrix for debugging.
func (m *M) String() string {
	var b strings.Builder
	for r := 0; r < m.N; r++ {
		if r > 0 {
			b.WriteByte('\n')
		}
		for c := 0; c < m.N; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4f", m.At(r, c))
		}
	}
	return b.String()
}
