package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomStochastic(rng *rand.Rand, n int) *M {
	m := New(n)
	for r := 0; r < n; r++ {
		var sum float64
		row := make([]float64, n)
		for c := 0; c < n; c++ {
			row[c] = rng.Float64()
			sum += row[c]
		}
		for c := 0; c < n; c++ {
			m.Set(r, c, row[c]/sum)
		}
	}
	return m
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	if !id.IsStochastic(0) {
		t.Fatal("identity must be stochastic")
	}
	m := New(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(2, 0, 1)
	p, err := Mul(id, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatal("I*M must equal M")
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	if _, err := Mul(New(2), New(3)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := Lerp(New(2), New(3), 0.5); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := ApplyRow([]float64{1, 2}, New(3)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomStochastic(rng, 4)
	byPow, err := Pow(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	byMul := Identity(4)
	for i := 0; i < 7; i++ {
		byMul, err = Mul(byMul, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range byPow.Data {
		if math.Abs(byPow.Data[i]-byMul.Data[i]) > 1e-12 {
			t.Fatalf("Pow and repeated Mul differ at %d: %g vs %g", i, byPow.Data[i], byMul.Data[i])
		}
	}
	p0, err := Pow(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p0.IsStochastic(0) {
		t.Fatal("M^0 must be the identity")
	}
	if _, err := Pow(m, -1); err == nil {
		t.Fatal("negative power must error")
	}
}

// TestStochasticClosure: products, powers and convex blends of stochastic
// matrices stay stochastic (property-based).
func TestStochasticClosure(t *testing.T) {
	check := func(seed int64, alphaRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomStochastic(rng, n)
		b := randomStochastic(rng, n)
		alpha := math.Abs(alphaRaw)
		alpha -= math.Floor(alpha) // [0,1)
		prod, err := Mul(a, b)
		if err != nil || !prod.IsStochastic(1e-9) {
			return false
		}
		pw, err := Pow(a, 1+rng.Intn(30))
		if err != nil || !pw.IsStochastic(1e-9) {
			return false
		}
		bl, err := Blend(a, b, alpha)
		if err != nil || !bl.IsStochastic(1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRow(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 0.25)
	m.Set(0, 1, 0.75)
	m.Set(1, 0, 0.5)
	m.Set(1, 1, 0.5)
	v, err := ApplyRow([]float64{1, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Fatalf("v*M = %v, want [0.25 0.75]", v)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 6)
	// Row 1 all zeros → becomes a self-loop.
	m.NormalizeRows()
	if m.At(0, 0) != 0.25 || m.At(0, 1) != 0.75 {
		t.Fatalf("row 0 = %v, want [0.25 0.75]", m.Data[:2])
	}
	if m.At(1, 1) != 1 {
		t.Fatal("zero row must normalize to a self-loop")
	}
	if !m.IsStochastic(1e-12) {
		t.Fatal("normalized matrix must be stochastic")
	}
}

func TestLerpEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomStochastic(rng, 3)
	b := randomStochastic(rng, 3)
	l0, _ := Lerp(a, b, 0)
	l1, _ := Lerp(a, b, 1)
	for i := range a.Data {
		if math.Abs(l0.Data[i]-a.Data[i]) > 1e-15 || math.Abs(l1.Data[i]-b.Data[i]) > 1e-15 {
			t.Fatal("lerp endpoints must reproduce the operands")
		}
	}
}
