// Package transport implements the TCP event transport of the paper's
// evaluation setup (§4.1): "a client program that reads events from a
// source file and sends them to SPECTRE over a TCP connection", extended
// with a query control frame so one server can host many client queries
// against a shared runtime.
//
// Wire format (all integers little-endian):
//
//	frame   := length:uint32 payload
//	payload := ts:int64 typeLen:uint16 type:[typeLen]byte
//	           nFields:uint16 fields:[nFields]float64
//
// A length word with the high bit set marks a control frame instead:
//
//	ctrl    := (ctrlFlag|length):uint32 kind:uint8 body:[length-1]byte
//	kind 1  := query submission; body is the query text
//	kind 2  := heartbeat (empty body); readers skip it silently
//	kind 3  := query submission requesting a resume offset (reconnect)
//	kind 4  := resume offset reply; body is a uint64 stream position
//
// Clients may send one query control frame before their event stream
// (spectre-client -query); event-only streams remain valid (the legacy
// single-query deployment). Event types travel as names and are interned
// into the receiver's registry, so client and server need not share id
// assignments.
//
// Reconnect handshake (durable servers, spectre-server -state-dir): the
// client opens with kind 3 instead of kind 1; the server recovers the
// query's WAL state and answers with kind 4 carrying the position the
// client must re-send events from. Heartbeats (kind 2) keep otherwise
// idle connections failing fast when the peer dies.
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/stream"
)

// Limits guard against corrupt frames.
const (
	maxFrame    = 1 << 20
	maxTypeLen  = 1 << 12
	maxFieldLen = 1 << 12
)

// Control-frame encoding.
const (
	// ctrlFlag marks a control frame in the length word. Event frames
	// never set it (maxFrame is far below).
	ctrlFlag = uint32(1) << 31
	// ctrlQuery is the query-submission control kind.
	ctrlQuery = byte(1)
	// ctrlHeartbeat is an application-level keepalive. Readers skip it
	// silently; its only job is to make a dead peer surface as a write
	// error at the sender within one heartbeat interval.
	ctrlHeartbeat = byte(2)
	// ctrlQueryResume is a query submission that additionally asks the
	// server for a resume offset (a ctrlResume reply) before events flow —
	// the reconnect handshake of a durable deployment (-state-dir).
	ctrlQueryResume = byte(3)
	// ctrlResume carries the server's answer: the stream position
	// (uint64) the client must re-send events from.
	ctrlResume = byte(4)
)

// ErrFrameTooLarge is returned for frames exceeding the limits.
var ErrFrameTooLarge = errors.New("transport: frame exceeds limit")

// Writer encodes events onto a stream.
type Writer struct {
	w   *bufio.Writer
	reg *event.Registry
	buf []byte
}

// NewWriter returns a Writer that resolves type names through reg.
func NewWriter(w io.Writer, reg *event.Registry) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64*1024), reg: reg}
}

// WriteEvent encodes one event.
func (w *Writer) WriteEvent(ev *event.Event) error {
	name := w.reg.TypeName(ev.Type)
	need := 8 + 2 + len(name) + 2 + 8*len(ev.Fields)
	if need > maxFrame {
		return ErrFrameTooLarge
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(need))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(ev.TS))
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(name)))
	w.buf = append(w.buf, name...)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(ev.Fields)))
	for _, f := range ev.Fields {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
	}
	_, err := w.w.Write(w.buf)
	return err
}

// Flush flushes buffered frames.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteQuery encodes a query-submission control frame. Clients send it
// once, before the first event frame.
func (w *Writer) WriteQuery(query string) error {
	return w.writeQueryKind(ctrlQuery, query)
}

// WriteQueryResume encodes a query-submission frame that requests a
// resume offset: the server answers with a ctrlResume frame (ReadResume)
// once its durable state is recovered. An empty query selects the
// server's fallback query, like sending no query frame at all.
func (w *Writer) WriteQueryResume(query string) error {
	return w.writeQueryKind(ctrlQueryResume, query)
}

func (w *Writer) writeQueryKind(kind byte, query string) error {
	need := 1 + len(query)
	if need > maxFrame {
		return ErrFrameTooLarge
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, ctrlFlag|uint32(need))
	w.buf = append(w.buf, kind)
	w.buf = append(w.buf, query...)
	_, err := w.w.Write(w.buf)
	return err
}

// WriteHeartbeat encodes a keepalive control frame.
func (w *Writer) WriteHeartbeat() error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, ctrlFlag|1)
	w.buf = append(w.buf, ctrlHeartbeat)
	_, err := w.w.Write(w.buf)
	return err
}

// WriteResume encodes the server's resume-offset reply to a
// WriteQueryResume handshake.
func (w *Writer) WriteResume(pos uint64) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, ctrlFlag|9)
	w.buf = append(w.buf, ctrlResume)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, pos)
	_, err := w.w.Write(w.buf)
	return err
}

// Reader decodes events from a stream, interning types into reg.
type Reader struct {
	r   *bufio.Reader
	reg *event.Registry
	buf []byte
}

// NewReader returns a Reader interning into reg.
func NewReader(r io.Reader, reg *event.Registry) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64*1024), reg: reg}
}

// ReadQuery consumes the query control frame when the stream starts with
// one. ok is false — and nothing is consumed — when the next frame is an
// event frame (a legacy event-only client) or the stream is empty.
// resume reports whether the client asked for a resume offset
// (WriteQueryResume); the server must answer with WriteResume before
// reading events.
func (r *Reader) ReadQuery() (query string, resume bool, ok bool, err error) {
	head, err := r.r.Peek(4)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return "", false, false, nil
		}
		return "", false, false, err
	}
	n := binary.LittleEndian.Uint32(head)
	if n&ctrlFlag == 0 {
		return "", false, false, nil
	}
	if err := r.readCtrl(n); err != nil {
		return "", false, false, err
	}
	switch r.buf[0] {
	case ctrlQuery:
		return string(r.buf[1:]), false, true, nil
	case ctrlQueryResume:
		return string(r.buf[1:]), true, true, nil
	default:
		return "", false, false, fmt.Errorf("transport: unknown control kind %d", r.buf[0])
	}
}

// ReadResume consumes the server's resume-offset reply. Heartbeats
// arriving first are skipped.
func (r *Reader) ReadResume() (uint64, error) {
	for {
		head, err := r.r.Peek(4)
		if err != nil {
			return 0, err
		}
		n := binary.LittleEndian.Uint32(head)
		if n&ctrlFlag == 0 {
			return 0, fmt.Errorf("transport: expected resume frame, got an event frame")
		}
		if err := r.readCtrl(n); err != nil {
			return 0, err
		}
		switch r.buf[0] {
		case ctrlHeartbeat:
			continue
		case ctrlResume:
			if len(r.buf) != 9 {
				return 0, fmt.Errorf("transport: resume frame has %d body bytes, want 8", len(r.buf)-1)
			}
			return binary.LittleEndian.Uint64(r.buf[1:]), nil
		default:
			return 0, fmt.Errorf("transport: expected resume frame, got control kind %d", r.buf[0])
		}
	}
}

// readCtrl consumes one control frame (whose length word n was peeked)
// into r.buf.
func (r *Reader) readCtrl(n uint32) error {
	n &^= ctrlFlag
	if n > maxFrame || n < 1 {
		return fmt.Errorf("transport: bad control frame length %d", n)
	}
	if _, err := r.r.Discard(4); err != nil {
		return err
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return fmt.Errorf("transport: short control frame: %w", err)
	}
	return nil
}

// skipCtrl consumes the body of a control frame whose length word was
// already read off the stream; only heartbeats are legal mid-stream.
func (r *Reader) skipCtrl(n uint32) error {
	n &^= ctrlFlag
	if n > maxFrame || n < 1 {
		return fmt.Errorf("transport: bad control frame length %d", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return fmt.Errorf("transport: short control frame: %w", err)
	}
	if r.buf[0] != ctrlHeartbeat {
		return fmt.Errorf("transport: unexpected control kind %d mid-stream", r.buf[0])
	}
	return nil
}

// ReadEvent decodes one event, silently skipping heartbeat control
// frames; io.EOF signals a clean end of stream.
func (r *Reader) ReadEvent() (event.Event, error) {
	var n uint32
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return event.Event{}, io.ErrUnexpectedEOF
			}
			return event.Event{}, err
		}
		n = binary.LittleEndian.Uint32(lenBuf[:])
		if n&ctrlFlag != 0 {
			if err := r.skipCtrl(n); err != nil {
				return event.Event{}, err
			}
			continue
		}
		break
	}
	if n > maxFrame {
		return event.Event{}, ErrFrameTooLarge
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return event.Event{}, fmt.Errorf("transport: short frame: %w", err)
	}
	p := r.buf
	if len(p) < 12 {
		return event.Event{}, fmt.Errorf("transport: frame too short (%d bytes)", len(p))
	}
	ts := int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	tl := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if tl > maxTypeLen || len(p) < tl+2 {
		return event.Event{}, fmt.Errorf("transport: bad type length %d", tl)
	}
	name := string(p[:tl])
	p = p[tl:]
	nf := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if nf > maxFieldLen || len(p) != 8*nf {
		return event.Event{}, fmt.Errorf("transport: bad field count %d for %d payload bytes", nf, len(p))
	}
	ev := event.Event{TS: ts, Type: r.reg.TypeID(name)}
	if nf > 0 {
		ev.Fields = make([]float64, nf)
		for i := 0; i < nf; i++ {
			ev.Fields[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
	}
	return ev, nil
}

// Send streams events over conn and closes the write side when done. A
// done ctx stops mid-stream: already-buffered frames are flushed and the
// write side is closed cleanly (the receiver sees a short but valid
// stream), then ctx.Err() is returned.
func Send(ctx context.Context, conn net.Conn, reg *event.Registry, events []event.Event) error {
	w := NewWriter(conn, reg)
	sendErr := func() error {
		for i := range events {
			// Poll cheaply: one atomic-ish Err check per frame beats a
			// select per frame and still stops within one event.
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := w.WriteEvent(&events[i]); err != nil {
				return err
			}
		}
		return nil
	}()
	if err := w.Flush(); err != nil && sendErr == nil {
		sendErr = err
	}
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		if err := cw.CloseWrite(); err != nil && sendErr == nil {
			sendErr = err
		}
	}
	return sendErr
}

// AbortReadsOnDone arranges for blocked reads on conn to fail once ctx is
// done, by snapping the read deadline to the past. It returns a stop
// function releasing the watcher (call it when the connection is done
// regardless of cancellation). This is how a server unwedges connection
// streams on shutdown: the read loop fails with a deadline error, the
// serving goroutine drains what was admitted and exits.
func AbortReadsOnDone(ctx context.Context, conn net.Conn) (stop func() bool) {
	return context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Now())
	})
}

// IsClosedOrCanceled reports whether err looks like the read-side fallout
// of a cancelled connection: a snapped deadline (AbortReadsOnDone) or a
// concurrently closed socket.
func IsClosedOrCanceled(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded) || errors.Is(err, net.ErrClosed)
}

// connSource adapts a Reader into a stream.Source; decode errors end the
// stream and are reported through Err.
type connSource struct {
	r   *Reader
	err error
}

var _ stream.Source = (*connSource)(nil)

// Next implements stream.Source.
func (s *connSource) Next() (event.Event, bool) {
	ev, err := s.r.ReadEvent()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = err
		}
		return event.Event{}, false
	}
	return ev, true
}

// Err returns the first decode error (nil on clean EOF).
func (s *connSource) Err() error { return s.err }

// SourceFromConn exposes a network connection as an engine Source. Call
// the returned error function after the engine finishes to learn whether
// the stream ended cleanly.
func SourceFromConn(conn io.Reader, reg *event.Registry) (stream.Source, func() error) {
	return SourceFromReader(NewReader(conn, reg))
}

// SourceFromReader exposes an existing Reader as an engine Source — used
// after ReadQuery consumed the leading control frame, so the event stream
// continues on the same buffered reader.
func SourceFromReader(r *Reader) (stream.Source, func() error) {
	s := &connSource{r: r}
	return s, func() error { return s.err }
}

// Backoff computes capped exponential reconnect delays with jitter:
// attempt 0 waits about Min, each further attempt doubles, clamped to
// Max, and every delay is scattered uniformly over ±25% so a fleet of
// clients does not reconnect in lockstep after a server restart.
type Backoff struct {
	Min time.Duration
	Max time.Duration
}

// Next returns the delay before reconnect attempt (0-based).
func (b Backoff) Next(attempt int) time.Duration {
	min, max := b.Min, b.Max
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max < min {
		max = 30 * time.Second
	}
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter in [0.75, 1.25), floored at Min so the first retry is never
	// immediate.
	d = time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
	if d < min {
		d = min
	}
	return d
}
