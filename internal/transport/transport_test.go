package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/stream"
)

func TestRoundTrip(t *testing.T) {
	sendReg := event.NewRegistry()
	a := sendReg.TypeID("AAPL")
	b := sendReg.TypeID("MSFT")
	events := []event.Event{
		{TS: 100, Type: a, Fields: []float64{1.5, 2.5}},
		{TS: 200, Type: b},
		{TS: 300, Type: a, Fields: []float64{-7}},
	}

	var buf bytes.Buffer
	w := NewWriter(&buf, sendReg)
	for i := range events {
		if err := w.WriteEvent(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// The receiver interns into its own registry (ids may differ).
	recvReg := event.NewRegistry()
	recvReg.TypeID("ZZZ") // shift id assignment
	r := NewReader(&buf, recvReg)
	for i := range events {
		got, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.TS != events[i].TS {
			t.Fatalf("event %d ts = %d", i, got.TS)
		}
		wantName := sendReg.TypeName(events[i].Type)
		if recvReg.TypeName(got.Type) != wantName {
			t.Fatalf("event %d type = %q, want %q", i, recvReg.TypeName(got.Type), wantName)
		}
		if len(got.Fields) != len(events[i].Fields) {
			t.Fatalf("event %d fields = %v", i, got.Fields)
		}
		for j := range got.Fields {
			if got.Fields[j] != events[i].Fields[j] {
				t.Fatalf("event %d field %d = %g", i, j, got.Fields[j])
			}
		}
	}
	if _, err := r.ReadEvent(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestCorruptFrames(t *testing.T) {
	reg := event.NewRegistry()
	// Oversized frame length.
	r := NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), reg)
	if _, err := r.ReadEvent(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// Truncated frame.
	r = NewReader(bytes.NewReader([]byte{10, 0, 0, 0, 1, 2}), reg)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("truncated frame must fail")
	}
	// Frame too short for the header.
	r = NewReader(bytes.NewReader([]byte{2, 0, 0, 0, 1, 2}), reg)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("short frame must fail")
	}
}

func TestSendOverTCP(t *testing.T) {
	sendReg := event.NewRegistry()
	ty := sendReg.TypeID("X")
	events := make([]event.Event, 500)
	for i := range events {
		events[i] = event.Event{TS: int64(i), Type: ty, Fields: []float64{float64(i)}}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- Send(context.Background(), conn, sendReg, events)
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	recvReg := event.NewRegistry()
	src, srcErr := SourceFromConn(conn, recvReg)
	got := stream.Collect(src)
	if err := srcErr(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("received %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].TS != int64(i) || got[i].Fields[0] != float64(i) {
			t.Fatalf("event %d corrupted: %+v", i, got[i])
		}
	}
}

// TestQueryFrameRoundTrip covers the multi-query protocol: a query
// control frame followed by events on the same buffered reader.
func TestQueryFrameRoundTrip(t *testing.T) {
	const queryText = "PATTERN (A B)\nWITHIN 10 EVENTS FROM A\nPARTITION BY TYPE"
	reg := event.NewRegistry()
	var buf bytes.Buffer
	w := NewWriter(&buf, reg)
	if err := w.WriteQuery(queryText); err != nil {
		t.Fatal(err)
	}
	events := []event.Event{
		{TS: 1, Type: reg.TypeID("A"), Fields: []float64{1.5}},
		{TS: 2, Type: reg.TypeID("B")},
	}
	for i := range events {
		if err := w.WriteEvent(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recvReg := event.NewRegistry()
	r := NewReader(&buf, recvReg)
	got, ok, err := r.ReadQuery()
	if err != nil || !ok {
		t.Fatalf("ReadQuery = (%q, %v, %v)", got, ok, err)
	}
	if got != queryText {
		t.Fatalf("query text corrupted: %q", got)
	}
	src, srcErr := SourceFromReader(r)
	decoded := stream.Collect(src)
	if err := srcErr(); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	if recvReg.TypeName(decoded[0].Type) != "A" || decoded[0].Fields[0] != 1.5 {
		t.Fatalf("event corrupted: %+v", decoded[0])
	}
}

// TestReadQueryLegacyStream checks that event-only streams (legacy
// clients) pass ReadQuery untouched.
func TestReadQueryLegacyStream(t *testing.T) {
	reg := event.NewRegistry()
	var buf bytes.Buffer
	w := NewWriter(&buf, reg)
	ev := event.Event{TS: 7, Type: reg.TypeID("X")}
	if err := w.WriteEvent(&ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf, event.NewRegistry())
	if q, ok, err := r.ReadQuery(); err != nil || ok || q != "" {
		t.Fatalf("ReadQuery on event stream = (%q, %v, %v), want not-a-query", q, ok, err)
	}
	got, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if got.TS != 7 {
		t.Fatalf("event not preserved after peek: %+v", got)
	}

	// Empty stream: no query, no error.
	r = NewReader(bytes.NewReader(nil), event.NewRegistry())
	if q, ok, err := r.ReadQuery(); err != nil || ok || q != "" {
		t.Fatalf("ReadQuery on empty stream = (%q, %v, %v)", q, ok, err)
	}
}

// TestReadQueryCorruptControl checks control-frame validation.
func TestReadQueryCorruptControl(t *testing.T) {
	// Unknown control kind.
	var buf bytes.Buffer
	frame := binary.LittleEndian.AppendUint32(nil, (uint32(1)<<31)|2)
	frame = append(frame, 0xEE, 0x00)
	buf.Write(frame)
	r := NewReader(&buf, event.NewRegistry())
	if _, _, err := r.ReadQuery(); err == nil {
		t.Fatal("unknown control kind must error")
	}

	// Oversized control frame.
	buf.Reset()
	buf.Write(binary.LittleEndian.AppendUint32(nil, (uint32(1)<<31)|(2<<20)))
	r = NewReader(&buf, event.NewRegistry())
	if _, _, err := r.ReadQuery(); err == nil {
		t.Fatal("oversized control frame must error")
	}

	// Truncated control frame body.
	buf.Reset()
	buf.Write(binary.LittleEndian.AppendUint32(nil, (uint32(1)<<31)|100))
	buf.WriteByte(1)
	r = NewReader(&buf, event.NewRegistry())
	if _, _, err := r.ReadQuery(); err == nil {
		t.Fatal("truncated control frame must error")
	}
}
