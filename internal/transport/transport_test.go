package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/stream"
)

func TestRoundTrip(t *testing.T) {
	sendReg := event.NewRegistry()
	a := sendReg.TypeID("AAPL")
	b := sendReg.TypeID("MSFT")
	events := []event.Event{
		{TS: 100, Type: a, Fields: []float64{1.5, 2.5}},
		{TS: 200, Type: b},
		{TS: 300, Type: a, Fields: []float64{-7}},
	}

	var buf bytes.Buffer
	w := NewWriter(&buf, sendReg)
	for i := range events {
		if err := w.WriteEvent(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// The receiver interns into its own registry (ids may differ).
	recvReg := event.NewRegistry()
	recvReg.TypeID("ZZZ") // shift id assignment
	r := NewReader(&buf, recvReg)
	for i := range events {
		got, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.TS != events[i].TS {
			t.Fatalf("event %d ts = %d", i, got.TS)
		}
		wantName := sendReg.TypeName(events[i].Type)
		if recvReg.TypeName(got.Type) != wantName {
			t.Fatalf("event %d type = %q, want %q", i, recvReg.TypeName(got.Type), wantName)
		}
		if len(got.Fields) != len(events[i].Fields) {
			t.Fatalf("event %d fields = %v", i, got.Fields)
		}
		for j := range got.Fields {
			if got.Fields[j] != events[i].Fields[j] {
				t.Fatalf("event %d field %d = %g", i, j, got.Fields[j])
			}
		}
	}
	if _, err := r.ReadEvent(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestCorruptFrames(t *testing.T) {
	reg := event.NewRegistry()
	// Oversized frame length.
	r := NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0x7f}), reg)
	if _, err := r.ReadEvent(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// Oversized control frame mid-stream.
	r = NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), reg)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("oversized control frame must fail")
	}
	// Non-heartbeat control frame mid-stream.
	var buf bytes.Buffer
	w := NewWriter(&buf, reg)
	if err := w.WriteResume(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r = NewReader(&buf, reg)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("resume frame mid event stream must fail")
	}
	// Truncated frame.
	r = NewReader(bytes.NewReader([]byte{10, 0, 0, 0, 1, 2}), reg)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("truncated frame must fail")
	}
	// Frame too short for the header.
	r = NewReader(bytes.NewReader([]byte{2, 0, 0, 0, 1, 2}), reg)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("short frame must fail")
	}
}

func TestSendOverTCP(t *testing.T) {
	sendReg := event.NewRegistry()
	ty := sendReg.TypeID("X")
	events := make([]event.Event, 500)
	for i := range events {
		events[i] = event.Event{TS: int64(i), Type: ty, Fields: []float64{float64(i)}}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- Send(context.Background(), conn, sendReg, events)
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	recvReg := event.NewRegistry()
	src, srcErr := SourceFromConn(conn, recvReg)
	got := stream.Collect(src)
	if err := srcErr(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("received %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].TS != int64(i) || got[i].Fields[0] != float64(i) {
			t.Fatalf("event %d corrupted: %+v", i, got[i])
		}
	}
}

// TestQueryFrameRoundTrip covers the multi-query protocol: a query
// control frame followed by events on the same buffered reader.
func TestQueryFrameRoundTrip(t *testing.T) {
	const queryText = "PATTERN (A B)\nWITHIN 10 EVENTS FROM A\nPARTITION BY TYPE"
	reg := event.NewRegistry()
	var buf bytes.Buffer
	w := NewWriter(&buf, reg)
	if err := w.WriteQuery(queryText); err != nil {
		t.Fatal(err)
	}
	events := []event.Event{
		{TS: 1, Type: reg.TypeID("A"), Fields: []float64{1.5}},
		{TS: 2, Type: reg.TypeID("B")},
	}
	for i := range events {
		if err := w.WriteEvent(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recvReg := event.NewRegistry()
	r := NewReader(&buf, recvReg)
	got, _, ok, err := r.ReadQuery()
	if err != nil || !ok {
		t.Fatalf("ReadQuery = (%q, %v, %v)", got, ok, err)
	}
	if got != queryText {
		t.Fatalf("query text corrupted: %q", got)
	}
	src, srcErr := SourceFromReader(r)
	decoded := stream.Collect(src)
	if err := srcErr(); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	if recvReg.TypeName(decoded[0].Type) != "A" || decoded[0].Fields[0] != 1.5 {
		t.Fatalf("event corrupted: %+v", decoded[0])
	}
}

// TestReadQueryLegacyStream checks that event-only streams (legacy
// clients) pass ReadQuery untouched.
func TestReadQueryLegacyStream(t *testing.T) {
	reg := event.NewRegistry()
	var buf bytes.Buffer
	w := NewWriter(&buf, reg)
	ev := event.Event{TS: 7, Type: reg.TypeID("X")}
	if err := w.WriteEvent(&ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf, event.NewRegistry())
	if q, _, ok, err := r.ReadQuery(); err != nil || ok || q != "" {
		t.Fatalf("ReadQuery on event stream = (%q, %v, %v), want not-a-query", q, ok, err)
	}
	got, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if got.TS != 7 {
		t.Fatalf("event not preserved after peek: %+v", got)
	}

	// Empty stream: no query, no error.
	r = NewReader(bytes.NewReader(nil), event.NewRegistry())
	if q, _, ok, err := r.ReadQuery(); err != nil || ok || q != "" {
		t.Fatalf("ReadQuery on empty stream = (%q, %v, %v)", q, ok, err)
	}
}

// TestReadQueryCorruptControl checks control-frame validation.
func TestReadQueryCorruptControl(t *testing.T) {
	// Unknown control kind.
	var buf bytes.Buffer
	frame := binary.LittleEndian.AppendUint32(nil, (uint32(1)<<31)|2)
	frame = append(frame, 0xEE, 0x00)
	buf.Write(frame)
	r := NewReader(&buf, event.NewRegistry())
	if _, _, _, err := r.ReadQuery(); err == nil {
		t.Fatal("unknown control kind must error")
	}

	// Oversized control frame.
	buf.Reset()
	buf.Write(binary.LittleEndian.AppendUint32(nil, (uint32(1)<<31)|(2<<20)))
	r = NewReader(&buf, event.NewRegistry())
	if _, _, _, err := r.ReadQuery(); err == nil {
		t.Fatal("oversized control frame must error")
	}

	// Truncated control frame body.
	buf.Reset()
	buf.Write(binary.LittleEndian.AppendUint32(nil, (uint32(1)<<31)|100))
	buf.WriteByte(1)
	r = NewReader(&buf, event.NewRegistry())
	if _, _, _, err := r.ReadQuery(); err == nil {
		t.Fatal("truncated control frame must error")
	}
}

// TestHeartbeatSkipped checks that heartbeat frames interleaved with
// events are invisible to ReadEvent.
func TestHeartbeatSkipped(t *testing.T) {
	reg := event.NewRegistry()
	var buf bytes.Buffer
	w := NewWriter(&buf, reg)
	if err := w.WriteHeartbeat(); err != nil {
		t.Fatal(err)
	}
	ev := event.Event{TS: 42, Type: reg.TypeID("X")}
	if err := w.WriteEvent(&ev); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf, event.NewRegistry())
	got, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if got.TS != 42 {
		t.Fatalf("event corrupted across heartbeats: %+v", got)
	}
	if _, err := r.ReadEvent(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF after trailing heartbeat, got %v", err)
	}
}

// TestResumeHandshake covers the reconnect handshake: a kind-3 query
// frame, the kind-4 resume reply (possibly preceded by a heartbeat), and
// the event stream continuing on the same readers.
func TestResumeHandshake(t *testing.T) {
	reg := event.NewRegistry()

	// Client -> server: query + resume request.
	var c2s bytes.Buffer
	cw := NewWriter(&c2s, reg)
	if err := cw.WriteQueryResume("PATTERN (A B)\nWITHIN 10 EVENTS FROM A"); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	sr := NewReader(&c2s, event.NewRegistry())
	q, resume, ok, err := sr.ReadQuery()
	if err != nil || !ok || !resume {
		t.Fatalf("ReadQuery = (%q, resume=%v, ok=%v, %v)", q, resume, ok, err)
	}

	// Plain kind-1 queries must not request resume.
	c2s.Reset()
	if err := cw.WriteQuery("PATTERN (A B)\nWITHIN 10 EVENTS FROM A"); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, resume, ok, err := NewReader(&c2s, event.NewRegistry()).ReadQuery(); err != nil || !ok || resume {
		t.Fatalf("plain query: resume=%v ok=%v err=%v", resume, ok, err)
	}

	// Server -> client: heartbeat then the resume offset.
	var s2c bytes.Buffer
	sw := NewWriter(&s2c, reg)
	if err := sw.WriteHeartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteResume(12345); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	pos, err := NewReader(&s2c, event.NewRegistry()).ReadResume()
	if err != nil {
		t.Fatal(err)
	}
	if pos != 12345 {
		t.Fatalf("resume pos = %d, want 12345", pos)
	}

	// An event frame where the resume reply belongs is a protocol error.
	s2c.Reset()
	ev := event.Event{TS: 1, Type: reg.TypeID("A")}
	if err := sw.WriteEvent(&ev); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&s2c, event.NewRegistry()).ReadResume(); err == nil {
		t.Fatal("event frame in place of resume reply must error")
	}
}

// TestBackoff checks the reconnect delay schedule: bounded by [Min, Max]
// with exponential growth and jitter.
func TestBackoff(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		for i := 0; i < 50; i++ {
			d := b.Next(attempt)
			if d < b.Min {
				t.Fatalf("attempt %d: delay %v below Min", attempt, d)
			}
			if d > b.Max+b.Max/4 {
				t.Fatalf("attempt %d: delay %v beyond jittered Max", attempt, d)
			}
			if d > prevMax {
				prevMax = d
			}
		}
	}
	if prevMax < b.Max/2 {
		t.Fatalf("backoff never grew near Max: peak %v", prevMax)
	}
	// Zero-valued config still yields sane delays.
	var zero Backoff
	if d := zero.Next(3); d <= 0 || d > time.Minute {
		t.Fatalf("zero-config delay %v", d)
	}
}
