package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	var buf bytes.Buffer
	for i, body := range bodies {
		if err := WriteFrame(&buf, byte(i+1), body); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
	}
	var scratch []byte
	for i, body := range bodies {
		kind, got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if kind != byte(i+1) {
			t.Fatalf("frame %d: kind = %d, want %d", i, kind, i+1)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("frame %d: body mismatch (%d bytes vs %d)", i, len(got), len(body))
		}
		scratch = got[:0]
	}
	if _, _, err := ReadFrame(&buf, nil); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	var pristine bytes.Buffer
	if err := WriteFrame(&pristine, 7, []byte("hello cluster")); err != nil {
		t.Fatal(err)
	}
	raw := pristine.Bytes()

	// Flip every byte position in turn: each corruption must surface as a
	// *FrameError or an io error — never a silently accepted frame with a
	// wrong body, and never a panic.
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		kind, body, err := ReadFrame(bytes.NewReader(mut), nil)
		if err == nil {
			if kind != 7 || !bytes.Equal(body, []byte("hello cluster")) {
				t.Fatalf("flip at %d: accepted corrupted frame kind=%d body=%q", i, kind, body)
			}
			// A flip inside the length prefix could in principle cancel out;
			// with a single-bit region flip it cannot reproduce both length
			// and CRC, so acceptance here means the flip was read back
			// identically — impossible for XOR. Fail loudly.
			t.Fatalf("flip at %d: frame accepted despite mutation", i)
		}
	}

	// Oversized length prefix: rejected before allocating the claimed size.
	var huge [8]byte
	binary.BigEndian.PutUint32(huge[0:4], MaxFrameBytes+1)
	_, _, err := ReadFrame(bytes.NewReader(huge[:]), nil)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame: err = %v, want *FrameError", err)
	}

	// Zero length prefix.
	_, _, err = ReadFrame(bytes.NewReader(make([]byte, 8)), nil)
	if !errors.As(err, &fe) {
		t.Fatalf("zero-length frame: err = %v, want *FrameError", err)
	}

	// Truncated body: claimed length larger than the stream.
	trunc := append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(trunc[0:4], 1<<20)
	_, _, err = ReadFrame(bytes.NewReader(trunc), nil)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// FuzzDecodeFrame drives ReadFrame with arbitrary bytes: whatever the
// length, CRC or kind corruption, decoding must return a structured error
// (*FrameError or an io error), never panic, and never allocate beyond the
// bytes actually present plus one read chunk. Valid frames must round-trip.
func FuzzDecodeFrame(f *testing.F) {
	seed, _ := AppendFrame(nil, 3, []byte("seed body"))
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	var huge [9]byte
	binary.BigEndian.PutUint32(huge[0:4], MaxFrameBytes)
	f.Add(huge[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var scratch []byte
		for {
			kind, body, err := ReadFrame(r, scratch)
			if err != nil {
				var fe *FrameError
				if !errors.As(err, &fe) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unstructured error: %#v", err)
				}
				return
			}
			// Accepted frames must re-encode to a decodable frame.
			re, err := AppendFrame(nil, kind, body)
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			k2, b2, err := ReadFrame(bytes.NewReader(re), nil)
			if err != nil || k2 != kind || !bytes.Equal(b2, body) {
				t.Fatalf("round-trip mismatch: %v", err)
			}
			scratch = body[:0]
		}
	})
}
