package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The cluster control plane (internal/cluster) runs on a second, CRC-guarded
// framing layer, separate from the event wire format above: worker links
// carry long-lived multiplexed traffic (assignments, event batches, emission
// streams, shard handoffs), so every frame is integrity-checked and
// length-bounded before any of its body is interpreted.
//
// Frame layout, all integers big-endian:
//
//	[len u32][crc u32][kind u8][body ...]
//
// len counts the kind byte plus the body (so it is at least 1); crc is
// CRC-32C (Castagnoli) over the kind byte and the body. Frames larger than
// MaxFrameBytes are rejected without allocating their claimed size.

// MaxFrameBytes bounds a single frame's payload (kind + body). Large enough
// for a full shard-handoff snapshot, small enough that a corrupt or hostile
// length prefix cannot exhaust memory.
const MaxFrameBytes = 64 << 20

// frameReadChunk is the allocation step while reading a frame body: the
// buffer grows as bytes actually arrive, so a frame that claims a huge
// length but delivers a short body never costs more than one chunk beyond
// the data received.
const frameReadChunk = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FrameError reports a structurally invalid frame (bad length, checksum
// mismatch). It is distinct from io errors: a FrameError means the peer (or
// the path to it) is corrupting the stream and the link must be dropped.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "transport: bad frame: " + e.Reason }

// AppendFrame appends one encoded frame to buf and returns the extended
// slice. It fails when the payload exceeds MaxFrameBytes.
func AppendFrame(buf []byte, kind byte, body []byte) ([]byte, error) {
	n := len(body) + 1
	if n > MaxFrameBytes {
		return buf, &FrameError{Reason: fmt.Sprintf("payload %d bytes exceeds limit %d", n, MaxFrameBytes)}
	}
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[8] = kind
	crc := crc32.Checksum(hdr[8:9], crcTable)
	crc = crc32.Update(crc, crcTable, body)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	return buf, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind byte, body []byte) error {
	buf, err := AppendFrame(nil, kind, body)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads the next frame from r. buf is an optional reusable
// buffer; the returned body aliases it when it is large enough. A frame
// whose length prefix is zero or exceeds MaxFrameBytes, or whose checksum
// does not match, returns a *FrameError; short reads surface the underlying
// io error (io.EOF only when the stream ends exactly on a frame boundary).
func ReadFrame(r io.Reader, buf []byte) (kind byte, body []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[0:4]))
	want := binary.BigEndian.Uint32(hdr[4:8])
	if n < 1 {
		return 0, nil, &FrameError{Reason: "zero-length frame"}
	}
	if n > MaxFrameBytes {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("payload %d bytes exceeds limit %d", n, MaxFrameBytes)}
	}
	// Read incrementally: allocation tracks delivered bytes, not the
	// claimed length, so a corrupt length prefix on a short stream cannot
	// force a huge allocation.
	if cap(buf) >= n {
		buf = buf[:0]
	} else {
		buf = make([]byte, 0, min(n, frameReadChunk))
	}
	for len(buf) < n {
		step := min(n-len(buf), frameReadChunk)
		if cap(buf)-len(buf) < step {
			grown := make([]byte, len(buf), min(n, len(buf)+2*frameReadChunk))
			copy(grown, buf)
			buf = grown
		}
		chunk := buf[len(buf) : len(buf)+step]
		if _, err := io.ReadFull(r, chunk); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		buf = buf[:len(buf)+step]
	}
	if got := crc32.Checksum(buf, crcTable); got != want {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("checksum mismatch: frame says %08x, payload is %08x", want, got)}
	}
	return buf[0], buf[1:], nil
}
