package seqengine

import (
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
)

// figure1Stream builds the intro example stream: A1 A2 B1 B2 B3 with
// timestamps chosen so that w1 (opened by A1, scope 1 min) contains
// A1 A2 B1 B2 and w2 (opened by A2) contains A2 B1 B2 B3 — exactly the
// paper's Figure 1.
func figure1Stream(reg *event.Registry) []event.Event {
	typeA := reg.TypeID("A")
	typeB := reg.TypeID("B")
	sec := func(s int) int64 { return int64(s) * int64(time.Second) }
	return []event.Event{
		{TS: sec(0), Type: typeA},  // seq 0: A1
		{TS: sec(10), Type: typeA}, // seq 1: A2
		{TS: sec(20), Type: typeB}, // seq 2: B1
		{TS: sec(40), Type: typeB}, // seq 3: B2
		{TS: sec(65), Type: typeB}, // seq 4: B3 (outside w1, inside w2)
	}
}

func keys(out []event.Complex) []string {
	ks := make([]string, len(out))
	for i := range out {
		ks[i] = out[i].Key()
	}
	return ks
}

func assertKeys(t *testing.T, got []event.Complex, want []string) {
	t.Helper()
	gk := keys(got)
	if len(gk) != len(want) {
		t.Fatalf("got %d complex events %v, want %d %v", len(gk), gk, len(want), want)
	}
	for i := range want {
		if gk[i] != want[i] {
			t.Fatalf("complex event %d: got %s, want %s (all: %v)", i, gk[i], want[i], gk)
		}
	}
}

// TestFigure1a reproduces Figure 1(a): consumption policy "none" yields 5
// complex events.
func TestFigure1a(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeNone)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := eng.Run(figure1Stream(reg))
	if err != nil {
		t.Fatal(err)
	}
	assertKeys(t, out, []string{
		"QE@0:0,2", // A1 B1
		"QE@0:0,3", // A1 B2
		"QE@1:1,2", // A2 B1
		"QE@1:1,3", // A2 B2
		"QE@1:1,4", // A2 B3
	})
	if stats.EventsConsumed != 0 {
		t.Fatalf("no-consumption run consumed %d events", stats.EventsConsumed)
	}
}

// TestFigure1b reproduces Figure 1(b): consumption policy "selected B"
// yields 3 complex events because B1 and B2 are consumed in w1.
func TestFigure1b(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeSelectedB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := eng.Run(figure1Stream(reg))
	if err != nil {
		t.Fatal(err)
	}
	assertKeys(t, out, []string{
		"QE@0:0,2", // A1 B1 (consumes B1)
		"QE@0:0,3", // A1 B2 (consumes B2)
		"QE@1:1,4", // A2 B3 — B1, B2 are gone
	})
	if stats.EventsConsumed != 3 {
		t.Fatalf("consumed %d events, want 3 (B1, B2, B3)", stats.EventsConsumed)
	}
}

// TestSequenceABCConsumeAll reproduces the §3.1 running example: a
// sequence A B C within a 1-minute window, consume all on match.
func TestSequenceABCConsumeAll(t *testing.T) {
	reg := event.NewRegistry()
	ta, tb, tc := reg.TypeID("A"), reg.TypeID("B"), reg.TypeID("C")
	p := pattern.Seq("ABC",
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
		pattern.Step{Name: "C", Types: []event.Type{tc}},
	)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "ABC",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind:  pattern.StartOnMatch,
			StartTypes: []event.Type{ta},
			EndKind:    pattern.EndDuration,
			Duration:   time.Minute,
		},
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}

	sec := func(s int) int64 { return int64(s) * int64(time.Second) }

	t.Run("complete", func(t *testing.T) {
		out, stats, err := eng.Run([]event.Event{
			{TS: sec(0), Type: ta},
			{TS: sec(10), Type: tb},
			{TS: sec(20), Type: tc},
			{TS: sec(90), Type: ta}, // closes w1; opens w2 with no B/C after
		})
		if err != nil {
			t.Fatal(err)
		}
		assertKeys(t, out, []string{"ABC@0:0,1,2"})
		if stats.RunsStarted != 2 || stats.RunsCompleted != 1 || stats.RunsAbandoned != 1 {
			t.Fatalf("stats = %+v, want 2 started / 1 completed / 1 abandoned", stats)
		}
		if stats.EventsConsumed != 3 {
			t.Fatalf("consumed %d, want 3", stats.EventsConsumed)
		}
	})

	t.Run("abandoned at window end", func(t *testing.T) {
		// No C within the window: the consumption group is abandoned, no
		// event is consumed (§3.1).
		eng2, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := eng2.Run([]event.Event{
			{TS: sec(0), Type: ta},
			{TS: sec(10), Type: tb},
			{TS: sec(70), Type: tc}, // outside w1's scope
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("got %v, want no complex events", keys(out))
		}
		if stats.RunsCompleted != 0 || stats.RunsAbandoned != stats.RunsStarted {
			t.Fatalf("stats = %+v, want all runs abandoned", stats)
		}
		if stats.EventsConsumed != 0 {
			t.Fatalf("consumed %d, want 0", stats.EventsConsumed)
		}
	})
}

// TestNegationAbandonsRun covers the §3.1 discussion: a pattern A then B
// with no C in between; a C occurrence abandons the consumption group.
func TestNegationAbandonsRun(t *testing.T) {
	reg := event.NewRegistry()
	ta, tb, tc := reg.TypeID("A"), reg.TypeID("B"), reg.TypeID("C")
	p := pattern.Pattern{
		Name: "AnotCB",
		Elements: []pattern.Element{
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "A", Types: []event.Type{ta}}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "C", Types: []event.Type{tc}, Negated: true}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "B", Types: []event.Type{tb}}},
		},
		Selection: pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch},
	}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "AnotCB",
		Pattern: p,
		Window: pattern.WindowSpec{
			StartKind:  pattern.StartOnMatch,
			StartTypes: []event.Type{ta},
			EndKind:    pattern.EndCount,
			Count:      10,
		},
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("no C: match", func(t *testing.T) {
		out, _, err := eng.Run([]event.Event{
			{Type: ta}, {Type: tb},
		})
		if err != nil {
			t.Fatal(err)
		}
		assertKeys(t, out, []string{"AnotCB@0:0,1"})
	})

	t.Run("C in between: abandoned", func(t *testing.T) {
		eng2, _ := New(q)
		out, stats, err := eng2.Run([]event.Event{
			{Type: ta}, {Type: tc}, {Type: tb},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("got %v, want none", keys(out))
		}
		if stats.RunsAbandoned == 0 {
			t.Fatal("expected the run to be abandoned by the negation")
		}
	})
}

// TestKleeneVariableLength exercises a Q2-like A B+ C pattern: the B+
// absorbs a variable number of band events.
func TestKleeneVariableLength(t *testing.T) {
	reg := event.NewRegistry()
	tx := reg.TypeID("X")
	closeIdx := reg.FieldIndex("close")
	mk := func(c float64) event.Event {
		f := make([]float64, closeIdx+1)
		f[closeIdx] = c
		return event.Event{Type: tx, Fields: f}
	}
	below := func(ev *event.Event, _ pattern.Binder) bool { return ev.Field(closeIdx) < 10 }
	within := func(ev *event.Event, _ pattern.Binder) bool {
		return ev.Field(closeIdx) > 10 && ev.Field(closeIdx) < 20
	}
	above := func(ev *event.Event, _ pattern.Binder) bool { return ev.Field(closeIdx) > 20 }

	p := pattern.Seq("ABC",
		pattern.Step{Name: "A", Pred: below},
		pattern.Step{Name: "B", Pred: within, Quant: pattern.OneOrMore},
		pattern.Step{Name: "C", Pred: above},
	)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "Kleene",
		Pattern: *p,
		Window:  pattern.WindowSpec{StartKind: pattern.StartEvery, Every: 100, EndKind: pattern.EndCount, Count: 100},
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	// 5 → start; 12, 15, 13 → B+; 25 → C completes with 5 constituents.
	out, _, err := eng.Run([]event.Event{
		mk(5), mk(12), mk(15), mk(13), mk(25),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertKeys(t, out, []string{"Kleene@0:0,1,2,3,4"})
}

// TestQ3SetDetection exercises the unordered set element.
func TestQ3SetDetection(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.Q3(reg, queries.Q3Config{SetSize: 2, WindowSize: 10, Slide: 10})
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := reg.LookupType("S0000")
	s1, _ := reg.LookupType("S0001")
	s2, _ := reg.LookupType("S0002")
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	// A=S0000, set = {S0001, S0002}; arrive out of order: S0002 first.
	out, _, err := eng.Run([]event.Event{
		{Type: s0}, {Type: s2}, {Type: s1},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertKeys(t, out, []string{"Q3@0:0,1,2"})
}
