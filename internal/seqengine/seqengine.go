// Package seqengine implements the sequential reference engine: windows are
// processed to completion one after the other in window order, which is the
// "standard procedure to deal with data dependencies" the paper describes
// (§2.3) and the semantics SPECTRE must reproduce exactly (§2.3: "deliver
// exactly those complex events that would be produced in sequential
// processing").
//
// The engine doubles as the ground-truth pass of the evaluation: the ratio
// of completed to created consumption groups is the "ground truth value" of
// the completion probability used in Figures 10(d) and 10(e).
package seqengine

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/window"
)

// Stats summarizes a sequential run. RunsStarted/RunsCompleted correspond
// to consumption groups created/completed; their ratio is the paper's
// ground-truth completion probability.
type Stats struct {
	WindowsOpened   uint64
	EventsProcessed uint64 // events fed to pattern detection (per window)
	RunsStarted     uint64
	RunsCompleted   uint64
	RunsAbandoned   uint64
	EventsConsumed  uint64
	Matches         uint64
}

// CompletionProbability returns completed/created, the ground-truth value
// of Figures 10(d)/(e). It returns 0 when no group was created.
func (s Stats) CompletionProbability() float64 {
	if s.RunsStarted == 0 {
		return 0
	}
	return float64(s.RunsCompleted) / float64(s.RunsStarted)
}

// Engine is the sequential reference engine.
type Engine struct {
	query    *pattern.Query
	compiled *matcher.Compiled
}

// New compiles the query into a sequential engine.
func New(q *pattern.Query) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("seqengine: %w", err)
	}
	c, err := matcher.Compile(&q.Pattern)
	if err != nil {
		return nil, fmt.Errorf("seqengine: %w", err)
	}
	return &Engine{query: q, compiled: c}, nil
}

// Run processes events and returns the complex events in canonical order
// (window order, detection order within a window) together with run
// statistics. Sequence numbers are assigned in place: events[i].Seq = i,
// the same dense numbering the SPECTRE runtime assigns at ingest.
func (e *Engine) Run(events []event.Event) ([]event.Complex, Stats, error) {
	for i := range events {
		events[i].Seq = uint64(i)
	}
	windows := e.SplitWindows(events)

	var (
		stats    Stats
		out      []event.Complex
		consumed = make([]bool, len(events))
		fb       []matcher.Feedback
	)
	stats.WindowsOpened = uint64(len(windows))

	for _, w := range windows {
		st := e.compiled.NewState()
		end := w.EndSeq()
		if end > uint64(len(events)) {
			end = uint64(len(events))
		}
		for seq := w.StartSeq; seq < end; seq++ {
			if consumed[seq] {
				continue
			}
			ev := &events[seq]
			stats.EventsProcessed++
			fb = st.Process(ev, fb[:0])
			out = e.applyFeedback(fb, st, w, consumed, &stats, out)
			if st.Stopped() {
				break
			}
		}
		fb = st.WindowEnd(fb[:0])
		out = e.applyFeedback(fb, st, w, consumed, &stats, out)
	}
	return out, stats, nil
}

// applyFeedback folds matcher feedback into outputs, consumption marks and
// statistics. Completions consume their events immediately and abandon any
// other partial match in the same window that used a consumed event.
func (e *Engine) applyFeedback(fb []matcher.Feedback, st *matcher.State, w *window.Window,
	consumed []bool, stats *Stats, out []event.Complex) []event.Complex {
	// The slice may grow while we append abandon feedback for sibling
	// runs; iterate by index.
	for i := 0; i < len(fb); i++ {
		f := fb[i]
		switch f.Kind {
		case matcher.RunStarted:
			stats.RunsStarted++
		case matcher.RunAbandoned:
			stats.RunsAbandoned++
		case matcher.RunCompleted:
			stats.RunsCompleted++
			stats.Matches++
			m := f.Match
			ce := event.Complex{
				Query:      e.query.Name,
				WindowID:   w.ID,
				DetectedAt: m.CompletedAt.Seq,
			}
			ce.Constituents = make([]uint64, len(m.Constituents))
			for j, c := range m.Constituents {
				ce.Constituents[j] = c.Seq
			}
			ce.Consumed = make([]uint64, len(m.Consumed))
			for j, c := range m.Consumed {
				ce.Consumed[j] = c.Seq
			}
			out = append(out, ce)
			if len(ce.Consumed) > 0 {
				for _, seq := range ce.Consumed {
					if !consumed[seq] {
						consumed[seq] = true
						stats.EventsConsumed++
					}
				}
				// Same-window consumption: sibling partial matches that
				// bound a consumed event are abandoned.
				fb = st.AbandonRunsUsing(ce.Consumed, fb)
			}
		}
	}
	return out
}

// SplitWindows materializes the window list for events under the engine's
// window specification.
func (e *Engine) SplitWindows(events []event.Event) []*window.Window {
	mgr := window.NewManager(e.query.Window)
	var windows []*window.Window
	for i := range events {
		opened, _ := mgr.Observe(&events[i])
		windows = append(windows, opened...)
	}
	mgr.Finish(uint64(len(events)))
	return windows
}

// GroundTruth runs the engine and returns only the ground-truth completion
// probability (Figures 10(d)/(e)).
func (e *Engine) GroundTruth(events []event.Event) (float64, error) {
	_, stats, err := e.Run(events)
	if err != nil {
		return 0, err
	}
	return stats.CompletionProbability(), nil
}
