// Package dataset generates the two evaluation workloads of the paper
// (§4.1) as deterministic synthetic equivalents (see DESIGN.md §4.6 for
// the substitution rationale):
//
//   - NYSE: an intra-day stock-quote stream — ~3000 symbols (the first
//     Leaders of which are the "technology blue chip" leading symbols of
//     Q1), one quote per symbol per minute, open/close prices following a
//     regime-switching random walk. The regime process makes windows
//     heterogeneous in their rising/falling fraction, which is what gives
//     long patterns (large q) a small-but-nonzero completion probability —
//     the property Figures 10(a)/(d) sweep.
//
//   - RAND: a uniform random sequence over a small symbol alphabet
//     (300 symbols in the paper), used by Q3.
//
// All generation is deterministic in the seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/spectrecep/spectre/internal/event"
)

// Field names of quote events; intern them through Fields.
const (
	FieldOpen  = "open"
	FieldClose = "close"
)

// Fields interns the quote payload schema and returns the indices of
// (open, close).
func Fields(reg *event.Registry) (openIdx, closeIdx int) {
	return reg.FieldIndex(FieldOpen), reg.FieldIndex(FieldClose)
}

// LeaderSymbol returns the name of the i-th leading (blue-chip) symbol.
func LeaderSymbol(i int) string { return fmt.Sprintf("BLUE%02d", i) }

// Symbol returns the name of the i-th ordinary symbol.
func Symbol(i int) string { return fmt.Sprintf("S%04d", i) }

// NYSEConfig parameterizes the synthetic NYSE stream.
type NYSEConfig struct {
	// Symbols is the total number of stock symbols (paper: ~3000).
	Symbols int
	// Leaders is the number of leading blue-chip symbols among them
	// (paper: 16). Leaders come first in each minute.
	Leaders int
	// Minutes is the stream length in minutes; every symbol quotes once
	// per minute (paper resolution), so the stream has Symbols×Minutes
	// events.
	Minutes int
	// Seed makes generation deterministic.
	Seed int64
	// FlatProb is the probability that a quote is unchanged
	// (close == open) outside of regime effects; intra-day minute quotes
	// are mostly flat. Default 0.55.
	FlatProb float64
	// RegimeVol controls how fast the market regime (the rising-quote
	// fraction) wanders. Default 0.05.
	RegimeVol float64
}

func (c *NYSEConfig) setDefaults() {
	if c.Symbols <= 0 {
		c.Symbols = 3000
	}
	if c.Leaders <= 0 {
		c.Leaders = 16
	}
	if c.Leaders > c.Symbols {
		c.Leaders = c.Symbols
	}
	if c.Minutes <= 0 {
		c.Minutes = 60
	}
	if c.FlatProb <= 0 || c.FlatProb >= 1 {
		c.FlatProb = 0.55
	}
	if c.RegimeVol <= 0 {
		c.RegimeVol = 0.05
	}
}

// NYSE generates the synthetic quote stream. Event order: minute by
// minute; within a minute the leaders quote first, then the ordinary
// symbols (a fixed interleaving; the paper's stream is likewise a
// round-robin of per-symbol minute quotes).
func NYSE(reg *event.Registry, cfg NYSEConfig) []event.Event {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	openIdx, closeIdx := Fields(reg)
	nf := 2
	if closeIdx > openIdx && closeIdx+1 > nf {
		nf = closeIdx + 1
	}
	if openIdx+1 > nf {
		nf = openIdx + 1
	}

	types := make([]event.Type, cfg.Symbols)
	price := make([]float64, cfg.Symbols)
	for i := 0; i < cfg.Symbols; i++ {
		var name string
		if i < cfg.Leaders {
			name = LeaderSymbol(i)
		} else {
			name = Symbol(i - cfg.Leaders)
		}
		types[i] = reg.TypeID(name)
		// Log-normal-ish initial prices around 100.
		price[i] = 100 * math.Exp(rng.NormFloat64()*0.35)
	}

	events := make([]event.Event, 0, cfg.Symbols*cfg.Minutes)
	start := time.Date(2017, 12, 11, 9, 30, 0, 0, time.UTC).UnixNano()
	// regime ∈ [-1, 1]: >0 means rising quotes dominate the non-flat
	// fraction; a bounded random walk with occasional jumps.
	regime := 0.0
	for m := 0; m < cfg.Minutes; m++ {
		regime += rng.NormFloat64() * cfg.RegimeVol
		if rng.Float64() < 0.01 {
			regime += rng.NormFloat64() * 0.5 // regime jump
		}
		if regime > 1 {
			regime = 1
		} else if regime < -1 {
			regime = -1
		}
		ts := start + int64(m)*int64(time.Minute)
		riseProb := (1 - cfg.FlatProb) * (0.5 + 0.5*regime)
		fallProb := (1 - cfg.FlatProb) - riseProb
		for s := 0; s < cfg.Symbols; s++ {
			open := price[s]
			var close float64
			u := rng.Float64()
			switch {
			case u < riseProb:
				close = open * (1 + 0.0005 + rng.Float64()*0.004)
			case u < riseProb+fallProb:
				close = open * (1 - 0.0005 - rng.Float64()*0.004)
			default:
				close = open
			}
			price[s] = close
			fields := make([]float64, nf)
			fields[openIdx] = open
			fields[closeIdx] = close
			events = append(events, event.Event{TS: ts, Type: types[s], Fields: fields})
		}
	}
	return events
}

// RandConfig parameterizes the RAND dataset.
type RandConfig struct {
	// Symbols is the alphabet size (paper: 300).
	Symbols int
	// Events is the stream length (paper: 3 million).
	Events int
	// Seed makes generation deterministic.
	Seed int64
}

func (c *RandConfig) setDefaults() {
	if c.Symbols <= 0 {
		c.Symbols = 300
	}
	if c.Events <= 0 {
		c.Events = 100000
	}
}

// Rand generates the RAND dataset: each event's symbol is uniform over the
// alphabet (paper §4.1: "the probability of each stock symbol is equally
// distributed"). Prices follow an unbiased ±/flat walk so price-based
// queries remain applicable.
func Rand(reg *event.Registry, cfg RandConfig) []event.Event {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	openIdx, closeIdx := Fields(reg)
	nf := max(openIdx, closeIdx) + 1

	types := make([]event.Type, cfg.Symbols)
	price := make([]float64, cfg.Symbols)
	for i := 0; i < cfg.Symbols; i++ {
		types[i] = reg.TypeID(Symbol(i))
		price[i] = 100 * math.Exp(rng.NormFloat64()*0.35)
	}
	events := make([]event.Event, 0, cfg.Events)
	start := time.Date(2017, 12, 11, 9, 30, 0, 0, time.UTC).UnixNano()
	for i := 0; i < cfg.Events; i++ {
		s := rng.Intn(cfg.Symbols)
		open := price[s]
		var close float64
		switch rng.Intn(3) {
		case 0:
			close = open * (1 + 0.001 + rng.Float64()*0.004)
		case 1:
			close = open * (1 - 0.001 - rng.Float64()*0.004)
		default:
			close = open
		}
		price[s] = close
		fields := make([]float64, nf)
		fields[openIdx] = open
		fields[closeIdx] = close
		// One event per second keeps time-scoped queries usable.
		events = append(events, event.Event{TS: start + int64(i)*int64(time.Second), Type: types[s], Fields: fields})
	}
	return events
}
