package dataset

import (
	"testing"

	"github.com/spectrecep/spectre/internal/event"
)

func TestNYSEDeterministic(t *testing.T) {
	cfg := NYSEConfig{Symbols: 50, Leaders: 4, Minutes: 10, Seed: 9}
	r1, r2 := event.NewRegistry(), event.NewRegistry()
	a := NYSE(r1, cfg)
	b := NYSE(r2, cfg)
	if len(a) != len(b) || len(a) != 50*10 {
		t.Fatalf("lengths %d/%d, want 500", len(a), len(b))
	}
	for i := range a {
		if a[i].TS != b[i].TS || a[i].Type != b[i].Type || a[i].Fields[0] != b[i].Fields[0] {
			t.Fatalf("event %d differs between equal-seed runs", i)
		}
	}
}

func TestNYSEStructure(t *testing.T) {
	reg := event.NewRegistry()
	cfg := NYSEConfig{Symbols: 30, Leaders: 3, Minutes: 5, Seed: 1}
	events := NYSE(reg, cfg)
	openIdx, closeIdx := Fields(reg)

	// Leaders exist and quote first within each minute.
	lead0, ok := reg.LookupType(LeaderSymbol(0))
	if !ok {
		t.Fatal("leader symbol must be registered")
	}
	if events[0].Type != lead0 {
		t.Fatal("the first event of each minute must be the first leader")
	}
	// Prices chain: each symbol's open equals its previous close.
	prevClose := make(map[event.Type]float64)
	rising, falling, flat := 0, 0, 0
	for i := range events {
		ev := &events[i]
		open, cl := ev.Field(openIdx), ev.Field(closeIdx)
		if open <= 0 || cl <= 0 {
			t.Fatalf("non-positive price at %d", i)
		}
		if pc, ok := prevClose[ev.Type]; ok && pc != open {
			t.Fatalf("price chain broken for type %d at %d", ev.Type, i)
		}
		prevClose[ev.Type] = cl
		switch {
		case cl > open:
			rising++
		case cl < open:
			falling++
		default:
			flat++
		}
	}
	if flat == 0 || rising == 0 || falling == 0 {
		t.Fatalf("mix of movements expected: rising=%d falling=%d flat=%d", rising, falling, flat)
	}
	// Timestamps advance by minute.
	if events[0].TS == events[len(events)-1].TS {
		t.Fatal("timestamps must advance")
	}
}

func TestRandUniform(t *testing.T) {
	reg := event.NewRegistry()
	events := Rand(reg, RandConfig{Symbols: 10, Events: 20000, Seed: 4})
	if len(events) != 20000 {
		t.Fatalf("len = %d", len(events))
	}
	counts := make(map[event.Type]int)
	for i := range events {
		counts[events[i].Type]++
	}
	if len(counts) != 10 {
		t.Fatalf("distinct symbols = %d, want 10", len(counts))
	}
	for ty, c := range counts {
		if c < 1500 || c > 2500 {
			t.Fatalf("symbol %d count %d far from uniform 2000", ty, c)
		}
	}
	// Timestamps strictly increase (one per second).
	for i := 1; i < len(events); i++ {
		if events[i].TS <= events[i-1].TS {
			t.Fatal("timestamps must strictly increase")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	reg := event.NewRegistry()
	events := Rand(reg, RandConfig{})
	if len(events) != 100000 {
		t.Fatalf("default RAND length = %d, want 100000", len(events))
	}
}
