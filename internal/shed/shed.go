// Package shed implements utility-driven load shedding for the SPECTRE
// runtime's intake queues (DESIGN.md §10): when a shard queue's depth
// crosses a watermark, the events least likely to contribute to a match
// are dropped first, probabilistically, in the style of eSPICE — instead
// of blocking Feed or failing TryFeed.
//
// The per-event utility estimate combines two signals the engine already
// has:
//
//   - a static prior from the query plan (internal/plan): the product of
//     the observed EWMA pass rates of the conjuncts of the most permissive
//     step whose type filter accepts the event's type — an event that must
//     clear selective predicates to matter is worth less than one that is
//     accepted outright;
//   - the type's observed contribution to emitted matches: an EWMA of
//     constituent appearances per kept event of that type, fed back from
//     the root-emission path. The ratio is over *kept* events, not offered
//     ones, so a heavily shed type whose survivors keep matching retains
//     its utility and can recover (no shed death spiral).
//
// The drop decision is rank-based: the shedder maintains a decayed
// histogram of recently offered utilities and drops an event when its
// utility rank falls below the shed fraction — 0 at the low watermark,
// ramping linearly to 1 at the high watermark. Above the high watermark
// everything is dropped, which bounds the queue depth strictly below its
// capacity: a producer can always make progress, and the blocking Feed
// path never waits on a saturated queue. Ties within a histogram bucket
// break uniformly at random, so a constant utility score degenerates to
// exactly the uniform random-drop baseline.
//
// Shedding never reorders kept events: the decision is made at admission
// time, in stream order, before the event is stamped and queued, so the
// kept subsequence reaches the splitter in the original relative order
// and the §4.2 validation gate continues to guarantee exact-sequential
// output for the events that were admitted.
package shed

import (
	"math"
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/stats"
)

const (
	// defaultLowFrac / defaultHighFrac place the shedding watermarks as
	// fractions of the queue capacity: below low nothing is shed, above
	// high everything is.
	defaultLowFrac  = 0.5
	defaultHighFrac = 0.9
	// refreshEvery is the offer period between utility-table refreshes
	// (fold contribution counters, re-query plan priors, decay the rank
	// histogram). Power of two.
	refreshEvery = 1024
	// contribAlpha smooths the per-type contribution ratio across
	// refresh periods.
	contribAlpha = 0.2
	// priorWeight blends the plan prior with the observed contribution
	// once the latter is seeded.
	priorWeight = 0.3
	// minKept is the least kept events of a type in one refresh period
	// before its contribution ratio is considered a real observation.
	minKept = 8
	// histBuckets quantizes utilities for the rank estimate.
	histBuckets = 32
	// histDecay ages the rank histogram each refresh so the utility
	// distribution tracks the recent stream, not the whole run.
	histDecay = 0.5
)

// Config parameterizes a Shedder.
type Config struct {
	// QueueCap is the shard-queue capacity the watermarks are relative
	// to. Required (> 0).
	QueueCap int
	// LowFrac / HighFrac override the watermark fractions of QueueCap
	// (defaults 0.5 and 0.9). 0 < low < high <= 1.
	LowFrac, HighFrac float64
	// Prior scores a type's static match-participation likelihood in
	// [0, 1] from query-plan knowledge. Nil uses a neutral 0.5 — the
	// estimator then learns from contribution feedback alone.
	Prior func(event.Type) float64
	// Scorer, when non-nil, replaces the utility estimator entirely:
	// every offered event of type t scores Scorer(t). A constant scorer
	// yields uniform random dropping — the baseline the shed benchmark
	// compares against.
	Scorer func(event.Type) float64
	// Seed seeds the drop-decision PRNG; 0 selects a fixed default, so
	// runs are reproducible unless the caller randomizes.
	Seed uint64
}

// typeStat is the cross-goroutine slice of one type's state: the match
// feedback arrives from the emission path (splitter goroutines) while
// everything else is owned by the single producer.
type typeStat struct {
	matched atomic.Uint64 // constituent appearances in emitted matches
}

// Shedder decides, per offered event, whether it is admitted to the
// shard queue or shed. Offer is single-producer (the Handle feed
// discipline); NoteMatch may be called concurrently from the emission
// path.
type Shedder struct {
	low, high int
	prior     func(event.Type) float64
	scorer    func(event.Type) float64

	// tab is indexed by event type and grown copy-on-write so NoteMatch
	// can run concurrently with growth.
	tab atomic.Pointer[[]*typeStat]

	// Producer-owned state (no synchronization needed).
	utility []float64    // current per-type utility estimate
	priors  []float64    // cached plan priors
	contrib []stats.EWMA // observed contribution per kept event
	kept    []uint64     // kept this refresh period, per type
	offers  uint64
	rng     uint64

	hist     [histBuckets]float64 // decayed utility histogram of offers
	histMass float64

	keptTotal atomic.Uint64
	shedTotal atomic.Uint64
}

// New builds a Shedder. QueueCap must be positive; watermark fractions
// outside (0, 1] fall back to the defaults.
func New(cfg Config) *Shedder {
	lowFrac, highFrac := cfg.LowFrac, cfg.HighFrac
	if lowFrac <= 0 || lowFrac >= 1 {
		lowFrac = defaultLowFrac
	}
	if highFrac <= lowFrac || highFrac > 1 {
		highFrac = defaultHighFrac
	}
	low := int(lowFrac * float64(cfg.QueueCap))
	high := int(highFrac * float64(cfg.QueueCap))
	if high <= low {
		high = low + 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	s := &Shedder{low: low, high: high, prior: cfg.Prior, scorer: cfg.Scorer, rng: seed}
	empty := make([]*typeStat, 0)
	s.tab.Store(&empty)
	return s
}

// Offer decides whether an event of type t may enter a queue currently
// holding depth pending events. true admits, false sheds. Single
// producer only.
func (s *Shedder) Offer(t event.Type, depth int) bool {
	s.offers++
	if s.offers&(refreshEvery-1) == 0 {
		s.refresh()
	}
	s.ensure(t)
	u := s.utility[t]
	b := bucketOf(u)
	s.hist[b]++
	s.histMass++

	if depth <= s.low {
		s.note(t, true)
		return true
	}
	frac := 1.0
	if depth < s.high {
		frac = float64(depth-s.low) / float64(s.high-s.low)
	}
	// Rank of u among recently offered utilities, with uniform
	// tie-breaking inside the bucket: identical utilities shed uniformly
	// at random at rate frac.
	below := 0.0
	for i := 0; i < b; i++ {
		below += s.hist[i]
	}
	rank := (below + s.rand01()*s.hist[b]) / s.histMass
	keep := rank >= frac
	s.note(t, keep)
	return keep
}

// NoteMatch records that an event of type t was a constituent of an
// emitted complex event. Safe for concurrent use with Offer and itself.
func (s *Shedder) NoteMatch(t event.Type) {
	tab := *s.tab.Load()
	if int(t) < len(tab) {
		tab[t].matched.Add(1)
	}
}

// Utility returns the current utility estimate for t (producer side;
// tests and debugging).
func (s *Shedder) Utility(t event.Type) float64 {
	if int(t) < len(s.utility) {
		return s.utility[t]
	}
	return 0
}

// Kept and Shed return the cumulative admission counters.
func (s *Shedder) Kept() uint64 { return s.keptTotal.Load() }
func (s *Shedder) Shed() uint64 { return s.shedTotal.Load() }

func (s *Shedder) note(t event.Type, keep bool) {
	if keep {
		s.kept[t]++
		s.keptTotal.Add(1)
	} else {
		s.shedTotal.Add(1)
	}
}

// ensure grows the per-type state to cover t and seeds its utility from
// the prior (or the override scorer).
func (s *Shedder) ensure(t event.Type) {
	n := int(t) + 1
	if n <= len(s.utility) {
		return
	}
	old := *s.tab.Load()
	tab := make([]*typeStat, n)
	copy(tab, old)
	for i := len(old); i < n; i++ {
		tab[i] = &typeStat{}
	}
	s.tab.Store(&tab)

	grow := n - len(s.utility)
	s.utility = append(s.utility, make([]float64, grow)...)
	s.priors = append(s.priors, make([]float64, grow)...)
	s.contrib = append(s.contrib, make([]stats.EWMA, grow)...)
	s.kept = append(s.kept, make([]uint64, grow)...)
	for i := n - grow; i < n; i++ {
		s.priors[i] = s.priorOf(event.Type(i))
		s.contrib[i].Alpha = contribAlpha
		s.utility[i] = s.score(event.Type(i))
	}
}

func (s *Shedder) priorOf(t event.Type) float64 {
	if s.prior == nil {
		return 0.5
	}
	return clamp01(s.prior(t))
}

// score computes the published utility of t from the cached prior and
// the contribution EWMA.
func (s *Shedder) score(t event.Type) float64 {
	if s.scorer != nil {
		return clamp01(s.scorer(t))
	}
	p := s.priors[t]
	if !s.contrib[t].Seeded() {
		return p
	}
	return clamp01(priorWeight*p + (1-priorWeight)*s.contrib[t].Value())
}

// refresh folds the period's match-contribution counters into the
// per-type EWMAs, re-queries the plan priors (their conjunct pass rates
// move with live traffic), republishes utilities and ages the rank
// histogram.
func (s *Shedder) refresh() {
	tab := *s.tab.Load()
	for i := range s.utility {
		matched := tab[i].matched.Swap(0)
		kept := s.kept[i]
		s.kept[i] = 0
		if kept >= minKept {
			s.contrib[i].Observe(clamp01(float64(matched) / float64(kept)))
		}
		s.priors[i] = s.priorOf(event.Type(i))
		s.utility[i] = s.score(event.Type(i))
	}
	for i := range s.hist {
		s.hist[i] *= histDecay
	}
	s.histMass *= histDecay
}

// rand01 is a xorshift64* step mapped to [0, 1).
func (s *Shedder) rand01() float64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return float64(s.rng>>11) / (1 << 53)
}

func bucketOf(u float64) int {
	b := int(u * histBuckets)
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
