package shed

import (
	"testing"

	"github.com/spectrecep/spectre/internal/event"
)

const testCap = 1000 // watermarks at 500 / 900

func TestBelowLowWatermarkKeepsEverything(t *testing.T) {
	s := New(Config{QueueCap: testCap})
	for i := 0; i < 10_000; i++ {
		if !s.Offer(event.Type(i%4), 500) {
			t.Fatalf("event %d shed at depth == low watermark", i)
		}
	}
	if s.Shed() != 0 || s.Kept() != 10_000 {
		t.Fatalf("kept=%d shed=%d, want 10000/0", s.Kept(), s.Shed())
	}
}

func TestAboveHighWatermarkShedsEverything(t *testing.T) {
	s := New(Config{QueueCap: testCap})
	for i := 0; i < 10_000; i++ {
		if s.Offer(event.Type(i%4), 900) {
			t.Fatalf("event %d kept at depth == high watermark", i)
		}
	}
	if s.Kept() != 0 {
		t.Fatalf("kept=%d, want 0 above the high watermark", s.Kept())
	}
}

func TestShedFractionRampsWithDepth(t *testing.T) {
	// A single type at the mid-point between the watermarks: rank is
	// uniform over its own bucket, so roughly half the offers must shed.
	s := New(Config{QueueCap: testCap})
	const n = 20_000
	for i := 0; i < n; i++ {
		s.Offer(1, 700)
	}
	frac := float64(s.Shed()) / float64(n)
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("shed fraction %.3f at mid-ramp depth, want ~0.5", frac)
	}
}

func TestUtilityPrefersContributingType(t *testing.T) {
	// Type 1 contributes to matches, type 2 never does. After feedback
	// folds in, type 1's utility must dominate and type 2 must absorb
	// nearly all of the shedding at a moderate shed fraction.
	s := New(Config{QueueCap: testCap})
	for round := 0; round < 8; round++ {
		for i := 0; i < refreshEvery; i++ {
			tp := event.Type(1 + i%2)
			if s.Offer(tp, 100) && tp == 1 {
				s.NoteMatch(1)
			}
		}
	}
	if u1, u2 := s.Utility(1), s.Utility(2); u1 <= u2+0.2 {
		t.Fatalf("utility(contributing)=%.3f vs utility(idle)=%.3f, want clear separation", u1, u2)
	}

	kept1, shed1, kept2, shed2 := 0, 0, 0, 0
	for i := 0; i < 20_000; i++ {
		tp := event.Type(1 + i%2)
		keep := s.Offer(tp, 650) // ~3/8 shed fraction
		switch {
		case tp == 1 && keep:
			kept1++
			s.NoteMatch(1)
		case tp == 1:
			shed1++
		case keep:
			kept2++
		default:
			shed2++
		}
	}
	rate1 := float64(shed1) / float64(kept1+shed1)
	rate2 := float64(shed2) / float64(kept2+shed2)
	if rate1 >= rate2 {
		t.Fatalf("contributing type shed at %.3f, idle type at %.3f: utility ordering lost", rate1, rate2)
	}
	if rate1 > 0.10 {
		t.Fatalf("contributing type shed at %.3f, want near-zero while the idle type absorbs the load", rate1)
	}
}

func TestConstantScorerIsUniformRandomDrop(t *testing.T) {
	// The random-drop baseline: every type scores the same, so both
	// types shed at the same rate — the shed fraction.
	s := New(Config{QueueCap: testCap, Scorer: func(event.Type) float64 { return 0.5 }})
	shedBy := [2]int{}
	const n = 40_000
	for i := 0; i < n; i++ {
		tp := event.Type(1 + i%2)
		if !s.Offer(tp, 700) {
			shedBy[i%2]++
		}
	}
	f1 := float64(shedBy[0]) / float64(n/2)
	f2 := float64(shedBy[1]) / float64(n/2)
	if f1 < 0.40 || f1 > 0.60 || f2 < 0.40 || f2 > 0.60 {
		t.Fatalf("constant scorer shed rates %.3f/%.3f, want both ~0.5", f1, f2)
	}
}

func TestPriorSeedsUtilityBeforeFeedback(t *testing.T) {
	prior := func(tp event.Type) float64 {
		if tp == 1 {
			return 0.9
		}
		return 0.1
	}
	s := New(Config{QueueCap: testCap, Prior: prior})
	s.Offer(1, 0)
	s.Offer(2, 0)
	if u1, u2 := s.Utility(1), s.Utility(2); u1 != 0.9 || u2 != 0.1 {
		t.Fatalf("pre-feedback utilities %.2f/%.2f, want the plan priors 0.9/0.1", u1, u2)
	}
}

func TestWatermarkDefaultsAndClamping(t *testing.T) {
	s := New(Config{QueueCap: 100, LowFrac: 2.5, HighFrac: -1})
	if s.low != 50 || s.high != 90 {
		t.Fatalf("invalid fractions gave watermarks %d/%d, want defaults 50/90", s.low, s.high)
	}
	s = New(Config{QueueCap: 1})
	if s.high <= s.low {
		t.Fatalf("degenerate cap: high=%d low=%d, want high > low", s.high, s.low)
	}
}
