// Durability cost and recovery time: the two numbers that decide whether
// WAL-backed checkpoints (DESIGN.md §11) are deployable. (a) Ingest
// throughput with durability off, with an in-memory store (isolates the
// record-encoding cost) and with the file-backed WAL (adds fsync) — the
// persister runs off the hot path, so the durable modes should stay
// within a few percent of the baseline. (b) Recovery wall time (open +
// checkpoint load + journal replay) as the WAL grows: checkpoints bound
// the replay suffix, so recovery should scale with the checkpoint
// interval, not with the total stream length.
package bench

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/stats"
)

// recoveryQuery is the Q1 instance both halves of the experiment run: a
// small pattern over the NYSE stream, matching the speculation bench's
// regime so the durable-overhead number is comparable.
func (o *Options) recoveryQuery(reg *event.Registry) (*pattern.Query, error) {
	qsize := o.WindowSize / 100
	if qsize < 2 {
		qsize = 2
	}
	return queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
}

// specFeed pushes events through a single durable (or not) shard with k
// operator instances and returns the wall time from first feed to drain.
func specFeed(q *pattern.Query, reg *event.Registry, events []event.Event, k int, store durable.Store) (time.Duration, core.Metrics, error) {
	rt := core.NewRuntime(core.RuntimeConfig{})
	defer rt.Close()
	h, err := rt.Submit(q, core.Config{Instances: k, Reg: reg, Durable: store}, nil, 1, nil, nil)
	if err != nil {
		return 0, core.Metrics{}, err
	}
	start := time.Now()
	for lo := 0; lo < len(events); lo += 1024 {
		hi := lo + 1024
		if hi > len(events) {
			hi = len(events)
		}
		if err := h.FeedBatch(context.Background(), events[lo:hi]); err != nil {
			return 0, core.Metrics{}, err
		}
	}
	h.Drain()
	return time.Since(start), h.Metrics(), nil
}

// awaitIngested blocks until the shard has ingested n events — FeedBatch
// is asynchronous, and parking discards whatever is still queued, so the
// WAL only reflects what the splitter actually consumed.
func awaitIngested(h *core.Handle, n int) error {
	deadline := time.Now().Add(30 * time.Second)
	for h.Metrics().EventsIngested < uint64(n) {
		if time.Now().After(deadline) {
			return fmt.Errorf("ingestion stalled at %d/%d events", h.Metrics().EventsIngested, n)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// dirBytes sums the on-disk WAL footprint.
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// Recovery measures (a) the throughput cost of durable checkpointing on
// the speculation workload (Q3, consume-heavy RAND — the workload the
// acceptance bound of ≤5% is stated against) and (b) recovery time after
// a park as a function of how much of the stream the WAL has journalled.
// The (a) repeats interleave the three modes round-robin so that drift
// on a shared machine hits every mode equally — with sequential repeats
// the mode measured during a noisy phase loses by more than the WAL
// actually costs.
func (o *Options) Recovery() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.randData(reg)
	qcfg := o.speculationQuery()
	q, err := queries.Q3(reg, qcfg)
	if err != nil {
		return nil, err
	}
	k := o.Instances[len(o.Instances)-1]

	o.printf("\n== Recovery: durable-checkpoint cost (speculation workload) and restart latency (n=%d, ws=%d, k=%d) ==\n",
		len(events), qcfg.WindowSize, k)
	o.printf("%-14s %14s %10s %8s   %s\n", "mode", "med ev/s", "appends", "syncs", "candles (min/p25/med/p75/max)")

	// Mode order matters: off and wal run back to back inside each round
	// so the paired ratio spans the shortest possible wall-clock gap; mem
	// (the encoding-cost control) closes the round.
	modes := []struct {
		label string
		store func() (durable.Store, func(), error)
	}{
		{"durable=off", func() (durable.Store, func(), error) { return nil, func() {}, nil }},
		{"durable=wal", func() (durable.Store, func(), error) {
			dir, err := os.MkdirTemp("", "spectre-bench-wal")
			if err != nil {
				return nil, nil, err
			}
			fsStore, err := durable.NewFileStore(dir)
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			return fsStore, func() { fsStore.Close(); os.RemoveAll(dir) }, nil
		}},
		{"durable=mem", func() (durable.Store, func(), error) {
			return durable.NewMemStore(), func() {}, nil
		}},
	}

	repeats := o.Repeats
	if repeats < 5 {
		repeats = 5 // paired comparison needs a few samples per mode
	}
	series := make([]stats.Series, len(modes))
	perRound := make([][]float64, len(modes))
	lastM := make([]core.Metrics, len(modes))
	for r := 0; r < repeats; r++ {
		for i, mode := range modes {
			store, cleanup, err := mode.store()
			if err != nil {
				return nil, err
			}
			elapsed, m, err := specFeed(q, reg, events, k, store)
			cleanup()
			if err != nil {
				return nil, err
			}
			tp := stats.Throughput(uint64(len(events)), elapsed)
			series[i].Add(tp)
			perRound[i] = append(perRound[i], tp)
			lastM[i] = m
			// Settle the heap between runs: without this each run pays the
			// GC debt of the previous mode's garbage (the in-memory store
			// retains the whole journal), which biases the comparison by
			// more than the WAL costs.
			runtime.GC()
		}
	}
	var rows []Row
	for i, mode := range modes {
		c := series[i].Candles()
		rows = append(rows, Row{
			Figure: "recovery", Label: mode.label, K: k,
			Value: c.Median, Metric: "events/sec", Candles: c,
		})
		o.printf("%-14s %14.0f %10d %8d   %s\n", mode.label, c.Median, lastM[i].DurableAppends, lastM[i].DurableSyncs, c)
	}
	// The overhead statistic pairs each round's wal run with the off run
	// right next to it and takes the median of the per-round ratios:
	// machine-load drift between rounds cancels inside a pair, where the
	// ratio of unpaired medians would absorb it as phantom overhead.
	var ratios stats.Series
	for r := range perRound[0] {
		if off := perRound[0][r]; off > 0 {
			ratios.Add(100 * (1 - perRound[1][r]/off))
		}
	}
	overhead := ratios.Candles().Median
	rows = append(rows, Row{
		Figure: "recovery", Label: "wal-overhead", K: k,
		Value: overhead, Metric: "percent",
	})
	o.printf("%-14s %13.1f%%   (acceptance bound: <= 5%%; median of per-round paired ratios)\n", "wal-overhead", overhead)

	// (b) Recovery time vs WAL size: journal a prefix durably, park (the
	// restart-survivable detach), then time Submit+Recover on a fresh
	// runtime over the same directory.
	o.printf("%-14s %14s %12s   %s\n", "wal size", "med ms", "bytes", "candles")
	for _, frac := range []int{8, 4, 2, 1} {
		n := len(events) / frac
		var series stats.Series
		var walBytes int64
		for r := 0; r < o.Repeats; r++ {
			ms, bytes, err := o.measureRecovery(q, reg, events[:n])
			if err != nil {
				return nil, err
			}
			series.Add(ms)
			walBytes = bytes
		}
		c := series.Candles()
		label := fmt.Sprintf("recover@%d", n)
		rows = append(rows, Row{
			Figure: "recovery", Label: label, K: 2,
			Value: c.Median, Metric: "ms", Candles: c,
		})
		o.printf("%-14s %14.2f %12d   %s\n", label, c.Median, walBytes, c)
	}
	return rows, nil
}

// measureRecovery runs one park/recover cycle: life 1 journals the prefix
// and parks, life 2 recovers against the same WAL directory. It returns
// the recovery wall time in milliseconds and the WAL's on-disk size.
func (o *Options) measureRecovery(q *pattern.Query, reg *event.Registry, events []event.Event) (float64, int64, error) {
	dir, err := os.MkdirTemp("", "spectre-bench-recover")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)

	store, err := durable.NewFileStore(dir)
	if err != nil {
		return 0, 0, err
	}
	rt := core.NewRuntime(core.RuntimeConfig{Workers: 1})
	h, err := rt.Submit(q, core.Config{Instances: 2, Reg: reg, Durable: store}, nil, 1, nil, nil)
	if err != nil {
		rt.Close()
		store.Close()
		return 0, 0, err
	}
	feedErr := func() error {
		for lo := 0; lo < len(events); lo += 1024 {
			hi := lo + 1024
			if hi > len(events) {
				hi = len(events)
			}
			if err := h.FeedBatch(context.Background(), events[lo:hi]); err != nil {
				return err
			}
		}
		return awaitIngested(h, len(events))
	}()
	h.Park()
	rt.Close()
	store.Close()
	if feedErr != nil {
		return 0, 0, feedErr
	}
	walBytes := dirBytes(dir)

	store2, err := durable.NewFileStore(dir)
	if err != nil {
		return 0, 0, err
	}
	rt2 := core.NewRuntime(core.RuntimeConfig{Workers: 1})
	start := time.Now()
	h2, err := rt2.Submit(q, core.Config{Instances: 2, Reg: reg, Durable: store2}, nil, 1, nil, nil)
	if err == nil {
		err = rt2.Recover(context.Background())
	}
	elapsed := time.Since(start)
	if err != nil {
		rt2.Close()
		store2.Close()
		return 0, 0, err
	}
	if pos := h2.Recovered(); len(pos) != 1 || pos[0] == 0 {
		rt2.Close()
		store2.Close()
		return 0, 0, fmt.Errorf("recovery replayed nothing (Recovered=%v); WAL was empty", pos)
	}
	h2.Park()
	rt2.Close()
	store2.Close()
	return float64(elapsed.Nanoseconds()) / 1e6, walBytes, nil
}
