// Planner effectiveness: the cost-based query planner (internal/plan) on
// a mixed-type workload where only a minority of event types is relevant
// to the query. This experiment goes beyond the paper's figures: it
// measures what the type-indexed intake prefilter and the
// selectivity-ordered predicate programs buy when the stream interleaves
// many queries' traffic — the regime the planner is designed for.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/stats"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/query"
)

// plannerTypes is the type alphabet of the planner experiment;
// plannerRelevant of them appear in the query (40% — the planner's
// intake prefilter drops the remaining 60% of the stream).
const (
	plannerTypes    = 10
	plannerRelevant = 4
)

// PlannerQuery builds the planner experiment's query: a fully typed
// three-step rising-quote pattern over the first plannerRelevant symbols,
// with binding-free payload guards the planner hoists into the intake
// prefilter and reorders by observed selectivity.
func PlannerQuery(reg *event.Registry, windowSize int) (*pattern.Query, error) {
	b := query.New(reg).Name("planner")
	open, close := b.Float(dataset.FieldOpen), b.Float(dataset.FieldClose)
	// RAND quotes move by at most ±0.5% per event, so this strong-rise
	// guard passes ~4% of its step's type matches: windows stay sparse and
	// the measured difference is the per-event intake work, not window
	// management (which the planner cannot remove — output is identical).
	strongRise := func(ev *query.Event) bool { return close.Of(ev) > open.Of(ev)*1.0045 }
	rising := func(ev *query.Event) bool { return close.Of(ev) > open.Of(ev) }
	positive := func(ev *query.Event) bool { return close.Of(ev) > 0 }
	return b.
		Pattern(
			query.Step("A").Types(dataset.Symbol(0), dataset.Symbol(1)).WhereEvent(strongRise),
			query.Step("B").Types(dataset.Symbol(1), dataset.Symbol(2)).WhereEvent(positive).WhereEvent(rising),
			query.Step("C").Types(dataset.Symbol(3)),
		).
		Within(query.Events(windowSize)).From("A").
		ConsumeAll().
		Build()
}

// plannerData generates the mixed-type stream: RAND quotes over the full
// plannerTypes-symbol alphabet, so 60% of events belong to types the
// query never references.
func (o *Options) plannerData(reg *event.Registry) []event.Event {
	return dataset.Rand(reg, dataset.RandConfig{
		Symbols: plannerTypes,
		Events:  o.RandEvents,
		Seed:    o.Seed,
	})
}

// measurePlanned runs the engine Repeats times and returns throughput
// candles plus the median heap allocations per fed event.
func measurePlanned(q *pattern.Query, events []event.Event, cfg core.Config, repeats int) (stats.Candles, float64, core.Metrics, error) {
	var series, allocSeries stats.Series
	var lastMetrics core.Metrics
	var ms runtime.MemStats
	for r := 0; r < repeats; r++ {
		eng, err := core.New(q, cfg)
		if err != nil {
			return stats.Candles{}, 0, core.Metrics{}, err
		}
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		if err := eng.Run(context.Background(), stream.FromSlice(events), nil); err != nil {
			return stats.Candles{}, 0, core.Metrics{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		series.Add(stats.Throughput(uint64(len(events)), elapsed))
		allocSeries.Add(float64(ms.Mallocs-mallocs) / float64(len(events)))
		lastMetrics = eng.MetricsSnapshot()
	}
	return series.Candles(), allocSeries.Candles().Median, lastMetrics, nil
}

// Planner measures planned versus unplanned throughput on the mixed-type
// workload, at the largest configured instance count. The headline number
// is the speedup of the last column; the FilteredEvents counter verifies
// the intake prefilter actually carried the load.
func (o *Options) Planner() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.plannerData(reg)
	q, err := PlannerQuery(reg, o.WindowSize)
	if err != nil {
		return nil, err
	}
	k := o.Instances[len(o.Instances)-1]
	o.printf("\n== Planner: mixed-type workload, %d/%d relevant types (ws=%d, k=%d, %d events) ==\n",
		plannerRelevant, plannerTypes, o.WindowSize, k, len(events))
	o.printf("%-12s %14s %12s   %s\n", "mode", "med ev/s", "allocs/ev", "candles (min/p25/med/p75/max)")

	var rows []Row
	base := 0.0
	for _, mode := range []struct {
		label    string
		disabled bool
	}{
		{"unplanned", true},
		{"planned", false},
	} {
		c, allocs, m, err := measurePlanned(q, events, core.Config{Instances: k, PlanDisabled: mode.disabled}, o.Repeats)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Figure: "planner", Label: mode.label, K: k,
			Value: c.Median, Metric: "events/sec", Candles: c, AllocsPerOp: allocs,
		})
		switch {
		case mode.disabled:
			base = c.Median
			o.printf("%-12s %14.0f %12.2f   %s\n", mode.label, c.Median, allocs, c)
		default:
			o.printf("%-12s %14.0f %12.2f   %s  (%.2fx vs unplanned, %d filtered)\n",
				mode.label, c.Median, allocs, c, c.Median/base, m.FilteredEvents)
			if m.FilteredEvents == 0 {
				return nil, fmt.Errorf("planner experiment: intake prefilter dropped nothing")
			}
		}
	}
	return rows, nil
}
