// Package bench regenerates every figure of the paper's evaluation
// (§4.2): the scalability sweeps of Figure 10(a)/(b), the overhead
// measurements of Figure 10(c)/(f), the ground-truth completion
// probabilities of Figure 10(d)/(e), the Markov-versus-fixed comparison of
// Figure 11(a)/(b), and the T-REX comparison of §4.2.3.
//
// Experiments are scaled to commodity hardware: dataset sizes, window
// sizes and instance counts are configurable, with defaults chosen so the
// full suite runs in minutes. The paper's *ratios* (pattern size / window
// size) are preserved — they, not absolute sizes, drive the phenomena
// under test. Absolute events/second are not comparable to the paper's
// 20-core testbed; the shapes (who wins, where scaling saturates) are.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/internal/stats"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/internal/trex"
)

// Options scales the experiment suite. Zero values select defaults that
// complete in minutes on a laptop.
type Options struct {
	// Repeats is the number of measurement repetitions per configuration
	// (paper: 10).
	Repeats int
	// Instances are the operator-instance counts to sweep (paper: 1, 2,
	// 4, 8, 16, 32).
	Instances []int
	// WindowSize is ws for Q1/Q2 (paper: 8000). Ratios from the paper are
	// applied to this size.
	WindowSize int
	// Slide is s for Q2 (paper: 1000).
	Slide int
	// NYSESymbols / NYSELeaders / NYSEMinutes scale the synthetic NYSE
	// stream (paper: ~3000 symbols × 2 months).
	NYSESymbols, NYSELeaders, NYSEMinutes int
	// RandSymbols / RandEvents scale the RAND stream (paper: 300 symbols,
	// 3M events).
	RandSymbols, RandEvents int
	// Seed makes dataset generation deterministic.
	Seed int64
	// Shards is the shard-count sweep of the Partitioned experiment
	// (default 1, 2, 4, 8).
	Shards []int
	// Out receives the printed tables (nil silences printing).
	Out io.Writer
}

func (o *Options) setDefaults() {
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if len(o.Instances) == 0 {
		o.Instances = []int{1, 2, 4, 8}
	}
	if o.WindowSize <= 0 {
		o.WindowSize = 2000
	}
	if o.Slide <= 0 {
		o.Slide = o.WindowSize / 8
	}
	if o.NYSESymbols <= 0 {
		o.NYSESymbols = 500
	}
	if o.NYSELeaders <= 0 {
		o.NYSELeaders = 16
	}
	if o.NYSEMinutes <= 0 {
		o.NYSEMinutes = 200
	}
	if o.RandSymbols <= 0 {
		o.RandSymbols = 300
	}
	if o.RandEvents <= 0 {
		o.RandEvents = 100000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

func (o *Options) printf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// Q1Ratios are the pattern-size-to-window-size ratios of Figure 10(a)/(d).
var Q1Ratios = []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32}

// Q2Bands are the lower/upper price-limit pairs of Figure 10(b)/(e); wider
// bands increase the average pattern size and decrease the completion
// probability. The final entry makes completion impossible ("0 cplx").
var Q2Bands = []struct {
	Lower, Upper float64
	Label        string
}{
	{95, 105, "narrow"},
	{90, 112, "band2"},
	{85, 120, "band3"},
	{80, 130, "band4"},
	{70, 142, "band5"},
	{60, 160, "band6"},
	{50, 185, "band7"},
	{50, 1e12, "0 cplx"}, // C (close > upper) can never occur
}

// Row is one measured configuration.
type Row struct {
	Figure      string
	Label       string  // sweep point (e.g. "ratio=0.005")
	K           int     // operator instances (0 when not applicable)
	Value       float64 // median of the metric
	Metric      string  // e.g. "events/sec"
	Candles     stats.Candles
	GroundTruth float64 // completion probability where applicable
	AllocsPerOp float64 // heap allocations per fed event (0 when not measured)
}

// nyseData caches the generated NYSE stream.
func (o *Options) nyseData(reg *event.Registry) []event.Event {
	return dataset.NYSE(reg, dataset.NYSEConfig{
		Symbols: o.NYSESymbols,
		Leaders: o.NYSELeaders,
		Minutes: o.NYSEMinutes,
		Seed:    o.Seed,
	})
}

func (o *Options) randData(reg *event.Registry) []event.Event {
	return dataset.Rand(reg, dataset.RandConfig{
		Symbols: o.RandSymbols,
		Events:  o.RandEvents,
		Seed:    o.Seed,
	})
}

// measureSpectre runs the engine Repeats times and returns the throughput
// candles (events/second).
func measureSpectre(q *pattern.Query, events []event.Event, cfg core.Config, repeats int) (stats.Candles, core.Metrics, error) {
	var series stats.Series
	var lastMetrics core.Metrics
	for r := 0; r < repeats; r++ {
		eng, err := core.New(q, cfg)
		if err != nil {
			return stats.Candles{}, core.Metrics{}, err
		}
		src := stream.FromSlice(events)
		start := time.Now()
		if err := eng.Run(context.Background(), src, nil); err != nil {
			return stats.Candles{}, core.Metrics{}, err
		}
		elapsed := time.Since(start)
		series.Add(stats.Throughput(uint64(len(events)), elapsed))
		lastMetrics = eng.MetricsSnapshot()
	}
	return series.Candles(), lastMetrics, nil
}

// groundTruth computes the paper's ground-truth completion probability:
// a sequential pass counting completed vs created consumption groups.
func groundTruth(q *pattern.Query, events []event.Event) (float64, error) {
	eng, err := seqengine.New(q)
	if err != nil {
		return 0, err
	}
	_, st, err := eng.Run(append([]event.Event(nil), events...))
	if err != nil {
		return 0, err
	}
	return st.CompletionProbability(), nil
}

// Fig10a regenerates Figure 10(a): Q1 on NYSE, throughput versus the
// pattern-size/window-size ratio for each instance count.
func (o *Options) Fig10a() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	o.printf("\n== Figure 10(a): Q1 on NYSE — throughput vs ratio (ws=%d, %d events) ==\n", o.WindowSize, len(events))
	o.printf("%-12s %-6s %14s   %s\n", "ratio", "k", "med ev/s", "candles (min/p25/med/p75/max)")
	var rows []Row
	for _, ratio := range Q1Ratios {
		qsize := int(ratio * float64(o.WindowSize))
		if qsize < 1 {
			qsize = 1
		}
		q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
		if err != nil {
			return nil, err
		}
		for _, k := range o.Instances {
			c, _, err := measureSpectre(q, events, core.Config{Instances: k}, o.Repeats)
			if err != nil {
				return nil, err
			}
			row := Row{
				Figure: "fig10a", Label: fmt.Sprintf("ratio=%.3f", ratio), K: k,
				Value: c.Median, Metric: "events/sec", Candles: c,
			}
			rows = append(rows, row)
			o.printf("%-12s %-6d %14.0f   %s\n", row.Label, k, c.Median, c)
		}
	}
	return rows, nil
}

// Fig10d regenerates Figure 10(d): the ground-truth consumption-group
// completion probability for the Q1 sweep.
func (o *Options) Fig10d() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	o.printf("\n== Figure 10(d): Q1 ground-truth completion probability ==\n")
	o.printf("%-12s %10s\n", "ratio", "P(compl)")
	var rows []Row
	for _, ratio := range Q1Ratios {
		qsize := int(ratio * float64(o.WindowSize))
		if qsize < 1 {
			qsize = 1
		}
		q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
		if err != nil {
			return nil, err
		}
		gt, err := groundTruth(q, events)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Figure: "fig10d", Label: fmt.Sprintf("ratio=%.3f", ratio),
			Value: gt * 100, Metric: "completion %", GroundTruth: gt,
		})
		o.printf("%-12s %9.1f%%\n", fmt.Sprintf("ratio=%.3f", ratio), gt*100)
	}
	return rows, nil
}

// Fig10b regenerates Figure 10(b): Q2 on NYSE, throughput versus the
// average-pattern-size band sweep for each instance count.
func (o *Options) Fig10b() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	o.printf("\n== Figure 10(b): Q2 on NYSE — throughput vs price bands (ws=%d s=%d) ==\n", o.WindowSize, o.Slide)
	o.printf("%-12s %-6s %14s   %s\n", "band", "k", "med ev/s", "candles")
	var rows []Row
	for _, band := range Q2Bands {
		q, err := queries.Q2(reg, queries.Q2Config{
			WindowSize: o.WindowSize, Slide: o.Slide,
			LowerLimit: band.Lower, UpperLimit: band.Upper,
		})
		if err != nil {
			return nil, err
		}
		for _, k := range o.Instances {
			c, _, err := measureSpectre(q, events, core.Config{Instances: k}, o.Repeats)
			if err != nil {
				return nil, err
			}
			row := Row{
				Figure: "fig10b", Label: band.Label, K: k,
				Value: c.Median, Metric: "events/sec", Candles: c,
			}
			rows = append(rows, row)
			o.printf("%-12s %-6d %14.0f   %s\n", band.Label, k, c.Median, c)
		}
	}
	return rows, nil
}

// Fig10e regenerates Figure 10(e): ground-truth completion probability
// for the Q2 band sweep.
func (o *Options) Fig10e() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	o.printf("\n== Figure 10(e): Q2 ground-truth completion probability ==\n")
	o.printf("%-12s %10s\n", "band", "P(compl)")
	var rows []Row
	for _, band := range Q2Bands {
		q, err := queries.Q2(reg, queries.Q2Config{
			WindowSize: o.WindowSize, Slide: o.Slide,
			LowerLimit: band.Lower, UpperLimit: band.Upper,
		})
		if err != nil {
			return nil, err
		}
		gt, err := groundTruth(q, events)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Figure: "fig10e", Label: band.Label,
			Value: gt * 100, Metric: "completion %", GroundTruth: gt,
		})
		o.printf("%-12s %9.1f%%\n", band.Label, gt*100)
	}
	return rows, nil
}

// Fig10c regenerates Figure 10(c): splitter maintenance+scheduling cycles
// per second versus the instance count (Q1, ratio 0.01).
func (o *Options) Fig10c() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	qsize := o.WindowSize / 100 // the paper's q=80 at ws=8000
	if qsize < 1 {
		qsize = 1
	}
	q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
	if err != nil {
		return nil, err
	}
	o.printf("\n== Figure 10(c): scheduling cycles/second vs #instances (Q1, q=%d) ==\n", qsize)
	o.printf("%-6s %16s\n", "k", "cycles/sec")
	var rows []Row
	for _, k := range o.Instances {
		var series stats.Series
		for r := 0; r < o.Repeats; r++ {
			eng, err := core.New(q, core.Config{Instances: k})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := eng.Run(context.Background(), stream.FromSlice(events), nil); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			m := eng.MetricsSnapshot()
			series.Add(float64(m.Cycles) / elapsed.Seconds())
		}
		c := series.Candles()
		rows = append(rows, Row{
			Figure: "fig10c", Label: "cycles", K: k,
			Value: c.Median, Metric: "cycles/sec", Candles: c,
		})
		o.printf("%-6d %16.0f\n", k, c.Median)
	}
	return rows, nil
}

// Fig10f regenerates Figure 10(f): the dependency tree's high-water mark
// of window versions versus the instance count (Q1, ratio 0.01).
func (o *Options) Fig10f() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	qsize := o.WindowSize / 100
	if qsize < 1 {
		qsize = 1
	}
	q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
	if err != nil {
		return nil, err
	}
	o.printf("\n== Figure 10(f): max dependency-tree size vs #instances (Q1, q=%d) ==\n", qsize)
	o.printf("%-6s %12s\n", "k", "max versions")
	var rows []Row
	for _, k := range o.Instances {
		var series stats.Series
		for r := 0; r < o.Repeats; r++ {
			eng, err := core.New(q, core.Config{Instances: k})
			if err != nil {
				return nil, err
			}
			if err := eng.Run(context.Background(), stream.FromSlice(events), nil); err != nil {
				return nil, err
			}
			series.Add(float64(eng.MetricsSnapshot().MaxTreeSize))
		}
		c := series.Candles()
		rows = append(rows, Row{
			Figure: "fig10f", Label: "tree", K: k,
			Value: c.Median, Metric: "versions", Candles: c,
		})
		o.printf("%-6d %12.0f\n", k, c.Median)
	}
	return rows, nil
}

// fig11 runs one panel of Figure 11: Q3 with fixed completion
// probabilities 0..100% versus the Markov model.
func (o *Options) fig11(name string, setSize, ws, slide, k int) ([]Row, error) {
	reg := event.NewRegistry()
	events := o.randData(reg)
	q, err := queries.Q3(reg, queries.Q3Config{SetSize: setSize, WindowSize: ws, Slide: slide})
	if err != nil {
		return nil, err
	}
	gt, err := groundTruth(q, events)
	if err != nil {
		return nil, err
	}
	o.printf("\n== Figure 11 (%s): Q3 ratio=%.3f (ground truth %.0f%%), k=%d ==\n",
		name, float64(setSize+1)/float64(ws), gt*100, k)
	o.printf("%-10s %14s\n", "model", "med ev/s")
	var rows []Row
	type model struct {
		label string
		pred  markov.Predictor
	}
	models := []model{
		{"0%", markov.Fixed{P: 0}},
		{"20%", markov.Fixed{P: 0.2}},
		{"40%", markov.Fixed{P: 0.4}},
		{"60%", markov.Fixed{P: 0.6}},
		{"80%", markov.Fixed{P: 0.8}},
		{"100%", markov.Fixed{P: 1}},
		{"Markov", nil}, // engine default
	}
	for _, m := range models {
		c, _, err := measureSpectre(q, events, core.Config{Instances: k, Predictor: m.pred}, o.Repeats)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Figure: name, Label: m.label, K: k,
			Value: c.Median, Metric: "events/sec", Candles: c, GroundTruth: gt,
		})
		o.printf("%-10s %14.0f\n", m.label, c.Median)
	}
	return rows, nil
}

// Fig11a regenerates Figure 11(a): high completion probability
// (ratio ≈ 0.002; the paper uses n=1 at ws=1000).
func (o *Options) Fig11a() ([]Row, error) {
	o.setDefaults()
	k := o.Instances[len(o.Instances)-1]
	return o.fig11("fig11a", 1, 1000, 100, k)
}

// Fig11b regenerates Figure 11(b): lower completion probability. The
// paper uses ratio 0.1 (n=99 at ws=1000); set elements are capped at 64
// members in this implementation, so the same ratio is realized as n=49
// at ws=500.
func (o *Options) Fig11b() ([]Row, error) {
	o.setDefaults()
	k := o.Instances[len(o.Instances)-1]
	return o.fig11("fig11b", 49, 500, 50, k)
}

// TRexComparison regenerates §4.2.3: SPECTRE versus the T-REX-style
// baseline on Q1.
func (o *Options) TRexComparison() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	qsize := o.WindowSize / 100
	if qsize < 1 {
		qsize = 1
	}
	q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
	if err != nil {
		return nil, err
	}
	o.printf("\n== §4.2.3: SPECTRE vs T-REX baseline (Q1, q=%d) ==\n", qsize)
	o.printf("%-14s %14s\n", "system", "med ev/s")
	var rows []Row

	var trexSeries stats.Series
	for r := 0; r < o.Repeats; r++ {
		// General multi-selection mode: the real T-REX maintains every
		// partial sequence (no UDF-level single-run restriction).
		eng, err := trex.NewGeneral(q)
		if err != nil {
			return nil, err
		}
		evs := append([]event.Event(nil), events...)
		start := time.Now()
		if _, _, err := eng.Run(evs); err != nil {
			return nil, err
		}
		trexSeries.Add(stats.Throughput(uint64(len(events)), time.Since(start)))
	}
	tc := trexSeries.Candles()
	rows = append(rows, Row{Figure: "trex", Label: "T-REX", K: 1, Value: tc.Median, Metric: "events/sec", Candles: tc})
	o.printf("%-14s %14.0f\n", "T-REX", tc.Median)

	for _, k := range o.Instances {
		c, _, err := measureSpectre(q, events, core.Config{Instances: k}, o.Repeats)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("SPECTRE k=%d", k)
		rows = append(rows, Row{Figure: "trex", Label: label, K: k, Value: c.Median, Metric: "events/sec", Candles: c})
		o.printf("%-14s %14.0f\n", label, c.Median)
	}
	return rows, nil
}

// Experiments maps experiment ids to their runners.
func (o *Options) Experiments() map[string]func() ([]Row, error) {
	return map[string]func() ([]Row, error){
		"fig10a":      o.Fig10a,
		"fig10b":      o.Fig10b,
		"fig10c":      o.Fig10c,
		"fig10d":      o.Fig10d,
		"fig10e":      o.Fig10e,
		"fig10f":      o.Fig10f,
		"fig11a":      o.Fig11a,
		"fig11b":      o.Fig11b,
		"trex":        o.TRexComparison,
		"partition":   o.Partitioned,
		"feedbatch":   o.FeedBatch,
		"speculation": o.Speculation,
		"sched":       o.Sched,
		"planner":     o.Planner,
		"shed":        o.Shed,
		"recovery":    o.Recovery,
		"distributed": o.Distributed,
		"comms":       o.Comms,
	}
}

// ExperimentOrder lists the experiment ids in presentation order.
var ExperimentOrder = []string{
	"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f",
	"fig11a", "fig11b", "trex", "partition", "feedbatch", "speculation",
	"sched", "planner", "shed", "recovery", "distributed", "comms",
}

// RunAll executes every experiment in order.
func (o *Options) RunAll() ([]Row, error) {
	o.setDefaults()
	var all []Row
	exps := o.Experiments()
	for _, id := range ExperimentOrder {
		rows, err := exps[id]()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", id, err)
		}
		all = append(all, rows...)
	}
	return all, nil
}
