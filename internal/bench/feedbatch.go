// FeedBatch ingestion overhead: per-event Feed pays one shard-queue
// lock/unlock (and, under backpressure, one wakeup) per event; FeedBatch
// pays it once per (batch, shard). This experiment measures end-to-end
// throughput of the same partitioned workload at increasing batch sizes —
// the communication-overhead lever of Mayer et al., "Minimizing
// Communication Overhead in Window-Based Parallel Complex Event
// Processing", applied to the intake path.
package bench

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
)

// BatchSizes returns the ingestion batch-size sweep of the FeedBatch
// experiment; 0 is the per-event Feed baseline.
func (o *Options) BatchSizes() []int {
	return []int{0, 16, 64, 256, 1024}
}

// FeedBatch measures Runtime ingest throughput versus the feed batch
// size on the partitioned trading workload (the batch=0 row is per-event
// Handle.Feed; every other row hands whole slices to Handle.FeedBatch).
func (o *Options) FeedBatch() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	q, err := RiseQuery(reg, o.WindowSize)
	if err != nil {
		return nil, err
	}
	nShards := 4
	o.printf("\n== FeedBatch: ingest throughput vs batch size (%d shards, ws=%d, %d events) ==\n",
		nShards, o.WindowSize, len(events))
	o.printf("%-12s %14s   %s\n", "batch", "med ev/s", "candles (min/p25/med/p75/max)")
	var rows []Row
	base := 0.0
	for _, bs := range o.BatchSizes() {
		c, _, err := measureRuntime(q, events, core.Config{Instances: 2}, nShards, 0, o.Repeats, bs)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("batch=%d", bs)
		if bs == 0 {
			label = "feed"
		}
		rows = append(rows, Row{
			Figure: "feedbatch", Label: label, K: bs,
			Value: c.Median, Metric: "events/sec", Candles: c,
		})
		if bs == 0 {
			base = c.Median
			o.printf("%-12s %14.0f   %s\n", label, c.Median, c)
		} else if base > 0 {
			o.printf("%-12s %14.0f   %s  (%.2fx vs per-event Feed)\n", label, c.Median, c, c.Median/base)
		} else {
			o.printf("%-12s %14.0f   %s\n", label, c.Median, c)
		}
	}
	return rows, nil
}
