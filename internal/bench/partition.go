// Partitioned scaling: the multi-query Runtime's key-sharded execution
// over a per-symbol trading workload. This experiment goes beyond the
// paper's figures: it measures how partition-level data parallelism (one
// SPECTRE dependency tree + splitter per shard, multiplexed on a shared
// worker pool) multiplies the intra-query speculation parallelism of
// Figures 10(a)/(b).
package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/shard"
	"github.com/spectrecep/spectre/internal/stats"
)

// RiseQuery builds the per-symbol trading query of the partition
// experiments: two consecutive rising quotes where the second closes
// higher, windows opened by every rising quote. Partitioned by symbol it
// detects per-symbol momentum; on the merged stream it degenerates to a
// cross-symbol pattern — the point of the experiment is that partitioning
// changes both the semantics (per-symbol correlation) and the attainable
// parallelism.
func RiseQuery(reg *event.Registry, windowSize int) (*pattern.Query, error) {
	openIdx := reg.FieldIndex("open")
	closeIdx := reg.FieldIndex("close")
	rising := func(ev *event.Event, _ pattern.Binder) bool {
		return ev.Field(closeIdx) > ev.Field(openIdx)
	}
	higher := func(ev *event.Event, b pattern.Binder) bool {
		if ev.Field(closeIdx) <= ev.Field(openIdx) {
			return false
		}
		xs := b.Bound(0)
		if len(xs) == 0 {
			return false
		}
		return ev.Field(closeIdx) > xs[0].Field(closeIdx)
	}
	p := pattern.Seq("rise",
		pattern.Step{Name: "X", Pred: rising},
		pattern.Step{Name: "Y", Pred: higher},
	)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "rise",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartOnMatch,
			StartPred: func(ev *event.Event) bool { return rising(ev, nil) },
			EndKind:   pattern.EndCount,
			Count:     windowSize,
		},
		Partition: &pattern.PartitionSpec{ByType: true, Field: -1},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// measureRuntime pushes events through a fresh Runtime with nShards
// key-partitioned shards and returns the throughput candles. batchSize 0
// feeds per event (Handle.Feed); larger values feed batchSize-event
// slices through Handle.FeedBatch.
func measureRuntime(q *pattern.Query, events []event.Event, cfg core.Config, nShards, workers, repeats, batchSize int) (stats.Candles, core.Metrics, error) {
	ctx := context.Background()
	var series stats.Series
	var lastMetrics core.Metrics
	for r := 0; r < repeats; r++ {
		rt := core.NewRuntime(core.RuntimeConfig{Workers: workers})
		router := shard.NewRouter(nShards, shard.ByType())
		h, err := rt.Submit(q, cfg, router.Route, nShards, nil, nil)
		if err != nil {
			rt.Close()
			return stats.Candles{}, core.Metrics{}, err
		}
		start := time.Now()
		if batchSize <= 0 {
			for i := range events {
				if err := h.Feed(ctx, events[i]); err != nil {
					rt.Close()
					return stats.Candles{}, core.Metrics{}, err
				}
			}
		} else {
			for lo := 0; lo < len(events); lo += batchSize {
				hi := min(lo+batchSize, len(events))
				if err := h.FeedBatch(ctx, events[lo:hi]); err != nil {
					rt.Close()
					return stats.Candles{}, core.Metrics{}, err
				}
			}
		}
		h.Drain()
		elapsed := time.Since(start)
		lastMetrics = h.Metrics()
		rt.Close()
		series.Add(stats.Throughput(uint64(len(events)), elapsed))
	}
	return series.Candles(), lastMetrics, nil
}

// ShardCounts returns the shard sweep of the partition experiment.
func (o *Options) ShardCounts() []int {
	if len(o.Shards) > 0 {
		return o.Shards
	}
	return []int{1, 2, 4, 8}
}

// Partitioned measures Runtime throughput versus the shard count on a
// per-symbol trading stream (hundreds of symbols). The shards=1 row is
// the single-shard path every other row is compared against.
func (o *Options) Partitioned() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	q, err := RiseQuery(reg, o.WindowSize)
	if err != nil {
		return nil, err
	}
	o.printf("\n== Partitioned runtime: throughput vs shard count (%d symbols, ws=%d, %d events) ==\n",
		o.NYSESymbols, o.WindowSize, len(events))
	o.printf("%-12s %14s   %s\n", "shards", "med ev/s", "candles (min/p25/med/p75/max)")
	var rows []Row
	base := 0.0
	for _, n := range o.ShardCounts() {
		c, _, err := measureRuntime(q, events, core.Config{Instances: 2}, n, 0, o.Repeats, 0)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("shards=%d", n)
		rows = append(rows, Row{
			Figure: "partition", Label: label, K: n,
			Value: c.Median, Metric: "events/sec", Candles: c,
		})
		if n == 1 {
			base = c.Median
			o.printf("%-12s %14.0f   %s\n", label, c.Median, c)
		} else if base > 0 {
			o.printf("%-12s %14.0f   %s  (%.2fx vs 1 shard)\n", label, c.Median, c, c.Median/base)
		} else {
			o.printf("%-12s %14.0f   %s\n", label, c.Median, c)
		}
	}
	return rows, nil
}
