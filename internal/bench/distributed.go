// Distributed placement cost (DESIGN.md §12): what running a query's
// shards on remote workers costs relative to the in-process sharded
// runtime, and how much the per-link event batching buys back. Local
// and distributed runs execute the same partitioned query over the same
// NYSE stream; the distributed runs place the shards on two loopback
// worker processes-in-miniature (in-process cluster.Join over real TCP),
// sweeping the coordinator's per-link batch size — the knob the
// communication-overhead line of work says dominates framing cost on
// overlapping windows.
package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/spectrecep/spectre/internal/cluster"
	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/shard"
	"github.com/spectrecep/spectre/internal/stats"
)

// distShards is the shard count of both sides of the comparison.
const distShards = 4

// distBatchSweep is the per-link batch sizes the distributed side sweeps.
var distBatchSweep = []int{64, 256, 1024}

// distQuery is the partitioned rising-pair query both sides run; the
// window scales with the suite's WindowSize so the regime matches the
// other experiments.
func (o *Options) distQuery() string {
	win := o.WindowSize / 50
	if win < 8 {
		win = 8
	}
	return fmt.Sprintf(`
		QUERY dist
		PATTERN (X Y)
		DEFINE X AS X.close > X.open, Y AS Y.close > X.close
		WITHIN %d EVENTS FROM X
		CONSUME ALL
	`, win)
}

// distLocal measures one in-process run: the sharded core runtime with
// the same route and shard count the coordinator would use.
func distLocal(text string, reg *event.Registry, events []event.Event, route func(*event.Event) int) (float64, error) {
	q, err := parser.Parse(text, reg)
	if err != nil {
		return 0, err
	}
	rt := core.NewRuntime(core.RuntimeConfig{})
	defer rt.Close()
	h, err := rt.Submit(q, core.Config{Reg: reg}, route, distShards, nil, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for lo := 0; lo < len(events); lo += 1024 {
		hi := lo + 1024
		if hi > len(events) {
			hi = len(events)
		}
		if err := h.FeedBatch(context.Background(), events[lo:hi]); err != nil {
			return 0, err
		}
	}
	h.Drain()
	return stats.Throughput(uint64(len(events)), time.Since(start)), nil
}

// distRemote measures one distributed run: a coordinator on a loopback
// listener, nWorkers in-process workers joined over real TCP, the same
// query and route, and the given per-link batch size.
func distRemote(text string, reg *event.Registry, events []event.Event, route func(*event.Event) int, nWorkers, batch int) (float64, error) {
	c, err := cluster.Listen("127.0.0.1:0", reg, cluster.Options{
		MinWorkers:  nWorkers,
		BatchEvents: batch,
	})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workers := make([]*cluster.Worker, 0, nWorkers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < nWorkers; i++ {
		w, err := cluster.Join(ctx, event.NewRegistry(), c.Addr().String(), cluster.WorkerOptions{})
		if err != nil {
			return 0, err
		}
		workers = append(workers, w)
	}
	h, err := c.Submit(ctx, cluster.Submission{
		Name: "dist", Text: text, NShards: distShards, Route: route,
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for lo := 0; lo < len(events); lo += 1024 {
		hi := lo + 1024
		if hi > len(events) {
			hi = len(events)
		}
		if err := h.FeedBatch(events[lo:hi]); err != nil {
			return 0, err
		}
	}
	h.Close()
	if err := h.Wait(ctx); err != nil {
		return 0, err
	}
	return stats.Throughput(uint64(len(events)), time.Since(start)), nil
}

// Distributed compares local sharded execution against two loopback
// workers across the per-link batch-size sweep. The distributed numbers
// pay real TCP framing, the ordered merge and the workers' durable
// (in-memory WAL) pipelines, so they trail local execution; the sweep
// shows how much of that gap is framing amortized away by batching.
func (o *Options) Distributed() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	text := o.distQuery()
	route := shard.NewRouter(distShards, shard.ByType()).Route
	const nWorkers = 2

	o.printf("\n== Distributed: local vs %d loopback workers (Q1-style, %d shards, %d events) ==\n",
		nWorkers, distShards, len(events))
	o.printf("%-16s %14s   %s\n", "mode", "med ev/s", "candles (min/p25/med/p75/max)")

	var rows []Row
	var localSeries stats.Series
	for r := 0; r < o.Repeats; r++ {
		tp, err := distLocal(text, reg, events, route)
		if err != nil {
			return nil, err
		}
		localSeries.Add(tp)
	}
	lc := localSeries.Candles()
	rows = append(rows, Row{
		Figure: "distributed", Label: "local", K: distShards,
		Value: lc.Median, Metric: "events/sec", Candles: lc,
	})
	o.printf("%-16s %14.0f   %s\n", "local", lc.Median, lc)

	for _, batch := range distBatchSweep {
		var series stats.Series
		for r := 0; r < o.Repeats; r++ {
			tp, err := distRemote(text, reg, events, route, nWorkers, batch)
			if err != nil {
				return nil, err
			}
			series.Add(tp)
		}
		c := series.Candles()
		label := fmt.Sprintf("2w batch=%d", batch)
		rows = append(rows, Row{
			Figure: "distributed", Label: label, K: distShards,
			Value: c.Median, Metric: "events/sec", Candles: c,
		})
		o.printf("%-16s %14.0f   %s\n", label, c.Median, c)
	}
	return rows, nil
}
