// Speculation cost: checkpointed forking on a consume-heavy workload.
// This experiment goes beyond the paper's figures: it measures what the
// "modified copy" of Fig. 4 costs when dependent window versions are
// created incrementally from matcher-state checkpoints (replaying only
// the suffix past the divergence point) versus reprocessed from the
// window start, across checkpoint intervals.
package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/stats"
	"github.com/spectrecep/spectre/internal/stream"
)

// SpeculationIntervals are the checkpoint intervals swept by the
// speculation experiment; -1 disables checkpointing (the baseline: every
// fork and rollback reprocesses from the window start).
var SpeculationIntervals = []int{-1, 16, 64, 256}

// speculationQuery builds the consume-heavy overlapping-window workload
// of the speculation experiment: Q3's unordered set detection with
// CONSUME ALL on the RAND stream, with a slide of ws/4 so every event
// lies in four windows and most consumption groups have dependents.
// Windows are long (ws/2 of the Q1/Q2 window) so that reprocessing a
// dependent version from the window start — the cost checkpointed
// forking removes — dominates over version-creation churn.
func (o *Options) speculationQuery() queries.Q3Config {
	cfg := queries.Q3Config{
		SetSize:    3,
		WindowSize: o.WindowSize / 2,
		Slide:      o.WindowSize / 8,
	}
	if cfg.WindowSize < 8 {
		cfg.WindowSize = 8
	}
	if cfg.Slide < 1 {
		cfg.Slide = 1
	}
	return cfg
}

// Speculation measures throughput versus the checkpoint interval on the
// consume-heavy RAND workload, together with the speculation counters
// that explain the shape: how many fresh versions were seeded from a
// checkpoint, how many window positions the seeds skipped, and how many
// rollbacks restarted from a prefix.
func (o *Options) Speculation() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.randData(reg)
	qcfg := o.speculationQuery()
	q, err := queries.Q3(reg, qcfg)
	if err != nil {
		return nil, err
	}
	k := o.Instances[len(o.Instances)-1]
	o.printf("\n== Speculation: checkpointed forking on consume-heavy RAND (n=%d ws=%d s=%d, k=%d) ==\n",
		qcfg.SetSize, qcfg.WindowSize, qcfg.Slide, k)
	o.printf("%-10s %14s %10s %12s %10s %10s\n",
		"ckpt", "med ev/s", "seeded", "skipped ev", "partial", "rollbacks")
	var rows []Row
	for _, interval := range SpeculationIntervals {
		var series stats.Series
		var last core.Metrics
		cfg := core.Config{Instances: k, CheckpointEvery: interval}
		for r := 0; r < o.Repeats; r++ {
			eng, err := core.New(q, cfg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := eng.Run(context.Background(), stream.FromSlice(events), nil); err != nil {
				return nil, err
			}
			series.Add(stats.Throughput(uint64(len(events)), time.Since(start)))
			last = eng.MetricsSnapshot()
		}
		c := series.Candles()
		label := fmt.Sprintf("ckpt=%d", interval)
		if interval < 0 {
			label = "off"
		}
		rows = append(rows, Row{
			Figure: "speculation", Label: label, K: k,
			Value: c.Median, Metric: "events/sec", Candles: c,
		})
		o.printf("%-10s %14.0f %10d %12d %10d %10d\n",
			label, c.Median, last.VersionsSeeded, last.SeededEvents, last.PartialRolls, last.Rollbacks)
	}
	return rows, nil
}
