// Scheduling-policy comparison: steady versus bursty arrival over the
// Fig. 10(a) workload family under the three scheduling policies (TopK,
// FixedProb, Adaptive). This experiment goes beyond the paper's figures:
// it measures what the scheduling control plane buys when the arrival
// process is not a benchmark's full-rate replay — the regime the
// adaptive policy's signals (queue depth, slot utilization, rollback
// rate) are designed for.
package bench

import (
	"context"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/sched"
	"github.com/spectrecep/spectre/internal/stats"
)

// schedQueueCap bounds the shard intake queue of the sched experiment:
// small enough that a burst overflows it (the overload signal fires),
// large enough that steady feeding stays smooth.
const schedQueueCap = 8 << 10

// schedBurstGap is the idle gap between bursts of the bursty arrival.
const schedBurstGap = 15 * time.Millisecond

// schedPolicies are the compared scheduling configurations; kmax is the
// fixed instance count of the static policies and the adaptive ceiling.
func schedPolicies(kmax int) []struct {
	label string
	cfg   sched.Config
} {
	return []struct {
		label string
		cfg   sched.Config
	}{
		{"topk", sched.Config{Kind: sched.TopK}},
		{"fixedprob=0.5", sched.Config{Kind: sched.FixedProb, FixedP: 0.5}},
		{"adaptive", sched.Config{Kind: sched.Adaptive, MinSlots: 1, MaxSlots: kmax}},
	}
}

// Sched measures end-to-end throughput (feed start to drain) of the
// Fig. 10(a) Q1 workload under each scheduling policy, for two arrival
// processes: steady (batches fed back to back, backpressure-paced) and
// bursty (queue-overflowing bursts separated by idle gaps). The
// reported counters show what the control plane did: resizes applied,
// final slot count and cycle-weighted slot utilization.
func (o *Options) Sched() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := o.nyseData(reg)
	qsize := int(0.08 * float64(o.WindowSize))
	if qsize < 1 {
		qsize = 1
	}
	q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: o.WindowSize, Leaders: o.NYSELeaders})
	if err != nil {
		return nil, err
	}
	kmax := o.Instances[len(o.Instances)-1]
	burst := schedQueueCap * 2

	arrivals := []struct {
		label string
		feed  func(h *core.Handle) error
	}{
		{"steady", func(h *core.Handle) error {
			for i := 0; i < len(events); i += 1024 {
				end := i + 1024
				if end > len(events) {
					end = len(events)
				}
				if err := h.FeedBatch(context.Background(), events[i:end]); err != nil {
					return err
				}
			}
			return nil
		}},
		{"bursty", func(h *core.Handle) error {
			for i := 0; i < len(events); i += burst {
				end := i + burst
				if end > len(events) {
					end = len(events)
				}
				if err := h.FeedBatch(context.Background(), events[i:end]); err != nil {
					return err
				}
				if end < len(events) {
					time.Sleep(schedBurstGap)
				}
			}
			return nil
		}},
	}

	o.printf("\n== Sched: steady vs bursty arrival under TopK / FixedProb / Adaptive (Q1 q=%d ws=%d, k=%d, queue=%d) ==\n",
		qsize, o.WindowSize, kmax, schedQueueCap)
	o.printf("%-24s %14s %9s %6s %7s\n", "arrival/policy", "med ev/s", "resizes", "slots", "util")
	var rows []Row
	for _, arr := range arrivals {
		for _, pol := range schedPolicies(kmax) {
			var series stats.Series
			var last core.Metrics
			for r := 0; r < o.Repeats; r++ {
				cfg := core.Config{Instances: kmax, QueueCap: schedQueueCap, Sched: pol.cfg}
				rt := core.NewRuntime(core.RuntimeConfig{})
				h, err := rt.Submit(q, cfg, nil, 1, nil, nil)
				if err != nil {
					rt.Close()
					return nil, err
				}
				start := time.Now()
				err = arr.feed(h)
				h.Drain()
				elapsed := time.Since(start)
				if err == nil {
					series.Add(stats.Throughput(uint64(len(events)), elapsed))
					last = h.Metrics()
				}
				rt.Close()
				if err != nil {
					return nil, err
				}
			}
			c := series.Candles()
			label := arr.label + "/" + pol.label
			rows = append(rows, Row{
				Figure: "sched", Label: label, K: kmax,
				Value: c.Median, Metric: "events/sec", Candles: c,
			})
			o.printf("%-24s %14.0f %9d %6d %7.2f\n",
				label, c.Median, last.PolicyResizes, last.CurSlots, last.SlotUtilization())
		}
	}
	return rows, nil
}
