// Communication efficiency (DESIGN.md §13): bytes shipped per source
// event for an ingest-bound distributed workload — a plan-filterable
// mixed-type NYSE stream feeding three queries attached to one shared
// source. The v1 wire ships every routed event to every query's shard
// in full; the v2 wire adds coordinator-side plan pushdown (irrelevant
// events never framed), compact delta/varint encoding with plan-driven
// field projection, and shared-stream page dedup (one physical copy per
// link, per-query reference frames). Every mode's merged output is
// checked against a local sharded run of the same queries.
package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/spectrecep/spectre/internal/cluster"
	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/shard"
	"github.com/spectrecep/spectre/internal/stats"
)

// commsQueries are the three same-stream queries. Each step carries a
// binding-free rising predicate, so the pushdown plan can prove a
// falling event (close ≤ open, roughly half the NYSE stream) useless to
// every step and drop it before framing; the windows differ so the
// queries stay distinct consumers of the shared pages.
func commsQueries() []string {
	qs := make([]string, 0, 3)
	for i, win := range []int{60, 120, 180} {
		qs = append(qs, fmt.Sprintf(`
			QUERY CQ%d
			PATTERN (A B C)
			DEFINE A AS (A.symbol IN ('BLUE00','BLUE01') AND A.close > A.open),
			       B AS B.close > B.open,
			       C AS C.close > C.open
			WITHIN %d EVENTS FROM A
			CONSUME ALL
		`, i, win))
	}
	return qs
}

// commsData is the mixed-type stream both sides consume.
func commsData(reg *event.Registry) []event.Event {
	return dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 150, Seed: 11})
}

// commsCanon renders a match canonically for cross-mode comparison.
func commsCanon(c event.Complex) string {
	return fmt.Sprintf("%s|w%d|d%d|%v|%v", c.Query, c.WindowID, c.DetectedAt, c.Constituents, c.Consumed)
}

// commsLocal runs the three queries on the in-process sharded runtime
// and returns each query's match set in canonical (sorted) order — the
// reference the distributed modes must reproduce. The local runtime
// interleaves shard output in arrival order, so only the set is the
// contract here; the distributed modes additionally check their merged
// sequences against each other.
func commsLocal(reg *event.Registry, events []event.Event, texts []string, route func(*event.Event) int) ([][]string, error) {
	rt := core.NewRuntime(core.RuntimeConfig{})
	defer rt.Close()
	out := make([][]string, len(texts))
	handles := make([]*core.Handle, len(texts))
	var mu sync.Mutex
	for i, text := range texts {
		i := i
		q, err := parser.Parse(text, reg)
		if err != nil {
			return nil, err
		}
		h, err := rt.Submit(q, core.Config{Reg: reg}, route, distShards, func(m event.Complex) {
			mu.Lock()
			out[i] = append(out[i], commsCanon(m))
			mu.Unlock()
		}, nil)
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	for lo := 0; lo < len(events); lo += 1024 {
		hi := lo + 1024
		if hi > len(events) {
			hi = len(events)
		}
		for _, h := range handles {
			if err := h.FeedBatch(context.Background(), events[lo:hi]); err != nil {
				return nil, err
			}
		}
	}
	for _, h := range handles {
		h.Drain()
	}
	for i := range out {
		sort.Strings(out[i])
	}
	return out, nil
}

// commsResult is one distributed run's transport accounting and output.
type commsResult struct {
	bytesPerEvent float64
	eventsPerSec  float64
	framesSent    uint64
	deduped       uint64
	out           [][]string // per query, merged order
}

// commsRemote runs the three queries attached to one shared stream on a
// two-worker loopback cluster under the given coordinator options and
// returns bytes-per-source-event from the links' transport counters.
func commsRemote(reg *event.Registry, events []event.Event, texts []string, route func(*event.Event) int, opts cluster.Options) (commsResult, error) {
	var res commsResult
	const nWorkers = 2
	opts.MinWorkers = nWorkers
	opts.FlushInterval = time.Millisecond
	c, err := cluster.Listen("127.0.0.1:0", reg, opts)
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workers := make([]*cluster.Worker, 0, nWorkers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < nWorkers; i++ {
		w, err := cluster.Join(ctx, event.NewRegistry(), c.Addr().String(), cluster.WorkerOptions{})
		if err != nil {
			return res, err
		}
		workers = append(workers, w)
	}

	st := c.OpenStream()
	res.out = make([][]string, len(texts))
	handles := make([]*cluster.QueryHandle, len(texts))
	var mu sync.Mutex
	for i, text := range texts {
		i := i
		h, err := c.Submit(ctx, cluster.Submission{
			Name: fmt.Sprintf("CQ%d", i), Text: text,
			NShards: distShards, Route: route, Stream: st,
			Emit: func(m event.Complex) {
				mu.Lock()
				res.out[i] = append(res.out[i], commsCanon(m))
				mu.Unlock()
			},
		})
		if err != nil {
			return res, err
		}
		handles[i] = h
	}
	// Give the workers a beat to report shard readiness: page staging
	// (and pushdown's sequence pre-stamping) only covers shards whose
	// owners are ready; events fed before that ship through the plain
	// pump and dilute the measurement.
	time.Sleep(300 * time.Millisecond)

	start := time.Now()
	for lo := 0; lo < len(events); lo += 1024 {
		hi := lo + 1024
		if hi > len(events) {
			hi = len(events)
		}
		if err := st.FeedBatch(events[lo:hi]); err != nil {
			return res, err
		}
	}
	st.Close()
	for _, h := range handles {
		if err := h.Wait(ctx); err != nil {
			return res, err
		}
	}
	res.eventsPerSec = stats.Throughput(uint64(len(events)), time.Since(start))
	var bytes uint64
	for _, ls := range c.Stats() {
		bytes += ls.BytesSent
		res.framesSent += ls.FramesSent
		res.deduped += ls.EventsDeduped
	}
	res.bytesPerEvent = float64(bytes) / float64(len(events))
	return res, nil
}

// commsModes are the wire configurations the sweep compares.
var commsModes = []struct {
	label string
	opts  cluster.Options
}{
	{"2w v1 full-ship", cluster.Options{MaxProto: 1}},
	{"2w v2 no-pushdown", cluster.Options{DisablePushdown: true}},
	{"2w v2", cluster.Options{}},
}

// commsCheck asserts a distributed run reproduced the local match sets.
func commsCheck(label string, local [][]string, res commsResult) error {
	for i, want := range local {
		got := append([]string(nil), res.out[i]...)
		sort.Strings(got)
		if len(got) != len(want) {
			return fmt.Errorf("comms %s: query %d emitted %d matches, local reference %d", label, i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("comms %s: query %d match %d diverges from local reference", label, i, j)
			}
		}
	}
	return nil
}

// Comms measures bytes shipped per source event across wire modes: the
// v1 protocol (full events, no filtering), the v2 protocol with
// pushdown disabled (compact frames and page dedup only), and the full
// v2 stack. Every mode must reproduce the local runs' match sets, and
// the v2 modes must agree with each other byte-for-byte in merged
// order.
func (o *Options) Comms() ([]Row, error) {
	o.setDefaults()
	reg := event.NewRegistry()
	events := commsData(reg)
	texts := commsQueries()
	route := shard.NewRouter(distShards, shard.ByType()).Route

	o.printf("\n== Comms: bytes/event across wire modes (3 shared-stream queries, %d shards, %d events) ==\n",
		distShards, len(events))

	local, err := commsLocal(reg, events, texts, route)
	if err != nil {
		return nil, err
	}
	nMatches := 0
	for _, q := range local {
		nMatches += len(q)
	}
	o.printf("local reference: %d matches across %d queries\n", nMatches, len(texts))
	o.printf("%-18s %14s %14s %10s %10s\n", "mode", "bytes/event", "med ev/s", "frames", "deduped")

	var rows []Row
	var refOut [][]string // first v2-family merged output, for cross-mode equality
	for _, mode := range commsModes {
		var series, tput stats.Series
		var last commsResult
		for r := 0; r < o.Repeats; r++ {
			res, err := commsRemote(reg, events, texts, route, mode.opts)
			if err != nil {
				return nil, err
			}
			if err := commsCheck(mode.label, local, res); err != nil {
				return nil, err
			}
			series.Add(res.bytesPerEvent)
			tput.Add(res.eventsPerSec)
			last = res
		}
		// The v2 modes run the same deterministic merge over the same
		// pre-stamped sequences; their merged orders must be identical.
		if mode.opts.MaxProto != 1 {
			if refOut == nil {
				refOut = last.out
			} else {
				for i := range refOut {
					if len(refOut[i]) != len(last.out[i]) {
						return nil, fmt.Errorf("comms %s: merged order diverges from other v2 mode on query %d", mode.label, i)
					}
					for j := range refOut[i] {
						if refOut[i][j] != last.out[i][j] {
							return nil, fmt.Errorf("comms %s: merged order diverges from other v2 mode on query %d", mode.label, i)
						}
					}
				}
			}
		}
		c := series.Candles()
		tc := tput.Candles()
		rows = append(rows, Row{
			Figure: "comms", Label: mode.label, K: distShards,
			Value: c.Median, Metric: "bytes/event", Candles: c,
		})
		o.printf("%-18s %14.1f %14.0f %10d %10d\n", mode.label, c.Median, tc.Median, last.framesSent, last.deduped)
	}
	return rows, nil
}
