// Load-shedding comparison: overload survival under a producer that
// outruns the shard. Event types arrive at a 7:1 ratio — frequent A
// quotes that mostly idle in windows, rare B quotes that complete every
// match — and the consumer is artificially slowed so the intake queue
// crosses its shedding watermarks. Three admission policies compete:
// no shedding (backpressure pacing, the reference match count), random
// drop (a constant utility score, eSPICE's baseline) and utility-driven
// shedding (plan priors + observed match contribution). Utility shedding
// should retain close to the full match count by spending its drops on
// the abundant, low-contribution type.
package bench

import (
	"context"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/stats"
	"github.com/spectrecep/spectre/query"
)

// shedQueueCap bounds the shard intake queue of the shed experiment:
// watermarks sit at 50% / 90% of it.
const shedQueueCap = 4096

// shedBRatio is the arrival ratio: one B per shedBRatio events.
const shedBRatio = 8

// shedBurnSink defeats dead-code elimination of the consumer slowdown.
var shedBurnSink float64

// shedBurn wastes a bounded amount of matcher time per candidate event,
// guaranteeing the producer outruns the shard so the queue actually
// crosses the shedding watermarks on any machine.
func shedBurn() bool {
	s := 0.0
	for i := 1; i < 400; i++ {
		s += 1.0 / float64(i)
	}
	shedBurnSink = s
	return s > 0
}

// ShedQuery builds the experiment's pattern: every rare B completes a
// match with a preceding A, so per-type match contribution is ~8x higher
// for B than for A. The burn predicate is binding-dependent on purpose —
// the planner must not hoist it into the intake prefilter, where the
// producer would pay it instead of the shard.
func ShedQuery(reg *event.Registry, windowSize int) (*pattern.Query, error) {
	return query.New(reg).Name("shed").
		Pattern(
			query.Step("A").Types("A").Where(func(*query.Event, query.Binder) bool { return shedBurn() }),
			query.Step("B").Types("B"),
		).
		Within(query.Events(windowSize)).From("A").
		Consume("B").
		Build()
}

// shedData interleaves the two types deterministically at the 7:1 ratio.
func shedData(reg *event.Registry, n int) []event.Event {
	ta := reg.TypeID("A")
	tb := reg.TypeID("B")
	evs := make([]event.Event, n)
	for i := range evs {
		tp := ta
		if i%shedBRatio == shedBRatio-1 {
			tp = tb
		}
		evs[i] = event.Event{TS: int64(i) * int64(time.Millisecond), Type: tp}
	}
	return evs
}

// Shed measures match retention and emission lag under overload for the
// three admission policies. The no-shedding run is paced by backpressure
// and retains every match (the reference); the shedding runs are offered
// the stream faster than the shard drains it and differ only in the
// utility score. The figure of merit is matches retained: utility
// shedding must beat random drop by spending its shed budget on A's.
func (o *Options) Shed() ([]Row, error) {
	o.setDefaults()
	n := o.RandEvents / 2
	if n < 4*shedQueueCap {
		n = 4 * shedQueueCap
	}

	modes := []struct {
		label string
		conf  func(*core.Config)
	}{
		{"noshed", func(*core.Config) {}},
		{"shed=random", func(c *core.Config) {
			c.Shed = true
			c.ShedScorer = func(event.Type) float64 { return 0.5 }
		}},
		{"shed=utility", func(c *core.Config) { c.Shed = true }},
	}

	o.printf("\n== Shed: utility-driven load shedding vs random drop vs backpressure (A:B = %d:1, n=%d, queue=%d) ==\n",
		shedBRatio-1, n, shedQueueCap)
	o.printf("%-14s %14s %10s %10s %12s\n", "mode", "med ev/s", "matches", "shed", "lag p99 ms")
	var rows []Row
	for _, mode := range modes {
		var series stats.Series
		var last core.Metrics
		for r := 0; r < o.Repeats; r++ {
			reg := event.NewRegistry()
			events := shedData(reg, n)
			q, err := ShedQuery(reg, 4*shedBRatio)
			if err != nil {
				return nil, err
			}
			cfg := core.Config{Instances: 2, QueueCap: shedQueueCap}
			mode.conf(&cfg)
			rt := core.NewRuntime(core.RuntimeConfig{Workers: 1})
			h, err := rt.Submit(q, cfg, nil, 1, nil, nil)
			if err != nil {
				rt.Close()
				return nil, err
			}
			start := time.Now()
			feedErr := func() error {
				for lo := 0; lo < len(events); lo += 1024 {
					hi := lo + 1024
					if hi > len(events) {
						hi = len(events)
					}
					if err := h.FeedBatch(context.Background(), events[lo:hi]); err != nil {
						return err
					}
				}
				return nil
			}()
			h.Drain()
			elapsed := time.Since(start)
			rt.Close()
			if feedErr != nil {
				return nil, feedErr
			}
			series.Add(stats.Throughput(uint64(n), elapsed))
			last = h.Metrics()
		}
		c := series.Candles()
		rows = append(rows, Row{
			Figure: "shed", Label: mode.label, K: 2,
			Value: float64(last.Matches), Metric: "matches", Candles: c,
		})
		o.printf("%-14s %14.0f %10d %10d %12.2f\n",
			mode.label, c.Median, last.Matches, last.ShedEvents, last.EmitLagP99*1000)
	}
	return rows, nil
}
