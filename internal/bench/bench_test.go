package bench

import (
	"fmt"
	"strings"
	"testing"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
)

// tinyOptions shrinks every experiment so the whole suite smoke-runs in
// seconds.
func tinyOptions(out *strings.Builder) *Options {
	o := &Options{
		Repeats:     1,
		Instances:   []int{1, 2},
		WindowSize:  200,
		Slide:       50,
		NYSESymbols: 40,
		NYSELeaders: 4,
		NYSEMinutes: 40,
		RandSymbols: 50,
		RandEvents:  4000,
		Seed:        7,
	}
	if out != nil {
		o.Out = out
	}
	return o
}

func TestFig10aSmoke(t *testing.T) {
	var out strings.Builder
	rows, err := tinyOptions(&out).Fig10a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Q1Ratios)*2 {
		t.Fatalf("rows = %d, want %d", len(rows), len(Q1Ratios)*2)
	}
	for _, r := range rows {
		if r.Value <= 0 {
			t.Fatalf("non-positive throughput in %+v", r)
		}
	}
	if !strings.Contains(out.String(), "Figure 10(a)") {
		t.Fatal("table header missing")
	}
}

func TestFig10dGroundTruthShape(t *testing.T) {
	rows, err := tinyOptions(nil).Fig10d()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Q1Ratios) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's qualitative shape: completion probability decreases as
	// the pattern/window ratio grows (Fig. 10(d)). Compare the ends.
	first, last := rows[0].GroundTruth, rows[len(rows)-1].GroundTruth
	if first < last {
		t.Fatalf("completion probability should fall with the ratio: first=%.2f last=%.2f", first, last)
	}
	if first < 0.5 {
		t.Fatalf("smallest ratio should be easy to complete, got %.2f", first)
	}
}

func TestFig10eImpossibleBand(t *testing.T) {
	rows, err := tinyOptions(nil).Fig10e()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.Label != "0 cplx" || last.GroundTruth != 0 {
		t.Fatalf("the impossible band must have zero completions, got %+v", last)
	}
}

func TestFig10cAndFSmoke(t *testing.T) {
	var out strings.Builder
	o := tinyOptions(&out)
	rowsC, err := o.Fig10c()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rowsC {
		if r.Value <= 0 {
			t.Fatalf("cycles/sec must be positive: %+v", r)
		}
	}
	rowsF, err := o.Fig10f()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rowsF {
		if r.Value < 1 {
			t.Fatalf("tree size must be ≥ 1: %+v", r)
		}
	}
}

func TestFig11Smoke(t *testing.T) {
	o := tinyOptions(nil)
	rows, err := o.fig11("fig11-test", 2, 200, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // 6 fixed + Markov
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	foundMarkov := false
	for _, r := range rows {
		if r.Label == "Markov" {
			foundMarkov = true
		}
		if r.Value <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	if !foundMarkov {
		t.Fatal("Markov row missing")
	}
}

func TestTRexComparisonSmoke(t *testing.T) {
	rows, err := tinyOptions(nil).TRexComparison()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Label != "T-REX" {
		t.Fatalf("first row = %+v, want the baseline", rows[0])
	}
	if len(rows) != 3 { // T-REX + 2 instance counts
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	o := tinyOptions(nil)
	exps := o.Experiments()
	for _, id := range ExperimentOrder {
		if _, ok := exps[id]; !ok {
			t.Fatalf("experiment %q missing from the registry", id)
		}
	}
	if len(exps) != len(ExperimentOrder) {
		t.Fatalf("registry has %d entries, order lists %d", len(exps), len(ExperimentOrder))
	}
}

func TestPartitionedSmoke(t *testing.T) {
	var out strings.Builder
	o := tinyOptions(&out)
	o.Shards = []int{1, 2}
	rows, err := o.Partitioned()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Value <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	if !strings.Contains(out.String(), "Partitioned runtime") {
		t.Fatal("table header missing")
	}
}

func TestDistributedSmoke(t *testing.T) {
	var out strings.Builder
	rows, err := tinyOptions(&out).Distributed()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(distBatchSweep) {
		t.Fatalf("rows = %d, want %d", len(rows), 1+len(distBatchSweep))
	}
	for _, r := range rows {
		if r.Value <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	if !strings.Contains(out.String(), "Distributed") {
		t.Fatal("table header missing")
	}
}

// BenchmarkPartitioned measures the sharded runtime against the
// single-shard path on a per-symbol stream with hundreds of symbols (the
// acceptance target: ≥ 2x at 8+ partition keys on a multi-core box).
func BenchmarkPartitioned(b *testing.B) {
	reg := event.NewRegistry()
	o := &Options{NYSESymbols: 200, NYSELeaders: 8, NYSEMinutes: 400, Seed: 42}
	o.setDefaults()
	events := o.nyseData(reg)
	q, err := RiseQuery(reg, 256)
	if err != nil {
		b.Fatal(err)
	}
	for _, nShards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(events)))
			for i := 0; i < b.N; i++ {
				c, _, err := measureRuntime(q, events, core.Config{Instances: 2}, nShards, 0, 1, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(c.Median, "events/sec")
			}
		})
	}
}
