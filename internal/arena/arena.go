// Package arena provides the shared-memory event store of the
// parallelization framework (paper §2.2, Figure 2): a chunked, append-only
// arena with a single writer (the splitter) and many lock-free readers (the
// operator instances), plus an atomic bitset tracking finally consumed
// events.
//
// Events are addressed by their global sequence number. Chunking keeps
// addresses stable (no reallocation copies), so readers may hold *Event
// pointers across appends.
package arena

import (
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
)

const (
	// chunkBits sets the chunk size; 1<<chunkBits events per chunk.
	chunkBits = 14
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

type chunk struct {
	events [chunkSize]event.Event
}

// Arena is the append-only shared event store. Append may be called by a
// single goroutine only; Get/Len are safe from any goroutine and observe a
// consistent prefix.
type Arena struct {
	// chunks is published atomically whenever the directory grows; the
	// chunks themselves are stable once allocated.
	chunks atomic.Pointer[[]*chunk]
	length atomic.Uint64 // number of appended events; published last
}

// New returns an empty arena.
func New() *Arena {
	a := &Arena{}
	dir := make([]*chunk, 0, 16)
	a.chunks.Store(&dir)
	return a
}

// Append stores ev at the next sequence position and returns its assigned
// sequence number (equal to the previous Len). The caller must be the
// arena's single writer. The event's Seq field is set to the assigned
// number.
func (a *Arena) Append(ev event.Event) uint64 {
	seq := a.length.Load()
	ci := int(seq >> chunkBits)
	dir := *a.chunks.Load()
	if ci >= len(dir) {
		// Grow the directory. Copy-on-write so readers never observe a
		// partially updated slice.
		grown := make([]*chunk, len(dir)+1, cap(dir)*2+1)
		copy(grown, dir)
		grown[len(dir)] = &chunk{}
		a.chunks.Store(&grown)
		dir = grown
	}
	ev.Seq = seq
	dir[ci].events[seq&chunkMask] = ev
	// Publish after the write so readers that observe the new length also
	// observe the event contents.
	a.length.Store(seq + 1)
	return seq
}

// Get returns a pointer to the event with the given sequence number. The
// pointer stays valid for the arena's lifetime. Get must only be called
// with seq < Len().
func (a *Arena) Get(seq uint64) *event.Event {
	dir := *a.chunks.Load()
	return &dir[seq>>chunkBits].events[seq&chunkMask]
}

// Len reports the number of appended events. All events with Seq < Len()
// are fully visible.
func (a *Arena) Len() uint64 { return a.length.Load() }

// ConsumedSet is a grow-only atomic bitset keyed by event sequence number.
// Only the splitter marks events consumed (single writer); operator
// instances read concurrently. Marking is monotone: bits are never cleared.
type ConsumedSet struct {
	words atomic.Pointer[[]atomicWord]
	count atomic.Uint64
}

type atomicWord struct{ v atomic.Uint64 }

// NewConsumedSet returns an empty consumed set.
func NewConsumedSet() *ConsumedSet {
	s := &ConsumedSet{}
	w := make([]atomicWord, 0, 64)
	s.words.Store(&w)
	return s
}

// Mark records seq as consumed. Single-writer only.
func (s *ConsumedSet) Mark(seq uint64) {
	wi := int(seq >> 6)
	words := *s.words.Load()
	if wi >= len(words) {
		grown := make([]atomicWord, wi+1, (wi+1)*2)
		for i := range words {
			grown[i].v.Store(words[i].v.Load())
		}
		s.words.Store(&grown)
		words = grown
	}
	old := words[wi].v.Load()
	bit := uint64(1) << (seq & 63)
	if old&bit == 0 {
		words[wi].v.Store(old | bit)
		s.count.Add(1)
	}
}

// Contains reports whether seq has been marked consumed.
func (s *ConsumedSet) Contains(seq uint64) bool {
	words := *s.words.Load()
	wi := int(seq >> 6)
	if wi >= len(words) {
		return false
	}
	return words[wi].v.Load()&(uint64(1)<<(seq&63)) != 0
}

// Count returns the number of consumed events so far.
func (s *ConsumedSet) Count() uint64 { return s.count.Load() }
