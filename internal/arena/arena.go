// Package arena provides the shared-memory event store of the
// parallelization framework (paper §2.2, Figure 2): a chunked, append-only
// arena with a single writer (the splitter) and many lock-free readers (the
// operator instances), plus an atomic bitset tracking finally consumed
// events.
//
// Events are addressed by their global sequence number. Chunking keeps
// addresses stable (no reallocation copies), so readers may hold *Event
// pointers across appends.
package arena

import (
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
)

const (
	// chunkBits sets the chunk size; 1<<chunkBits events per chunk.
	chunkBits = 14
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

type chunk struct {
	events [chunkSize]event.Event
}

// maxFree caps the recycled-chunk freelist: enough for steady-state
// reuse after root pops without pinning a long burst's worth of memory.
const maxFree = 4

// zeroEvent backs Get for sequence positions whose chunk was never
// materialized (gaps left by AppendAt) or was recycled by ReleaseBefore.
// Shared and immutable: callers never write through Get's result.
var zeroEvent = &event.Event{}

// Arena is the append-only shared event store. Append/AppendAt/
// ReleaseBefore may be called by a single goroutine only; Get/Len are
// safe from any goroutine and observe a consistent prefix.
type Arena struct {
	// chunks is published atomically whenever the directory changes; the
	// chunks themselves are stable while reachable.
	chunks atomic.Pointer[[]*chunk]
	length atomic.Uint64 // number of appended events; published last

	// free holds recycled chunks for reuse (single-writer, like Append).
	free []*chunk
	// allocs/reuses count fresh chunk allocations and freelist reuses;
	// atomics so metrics and regression tests can read them mid-run.
	allocs atomic.Uint64
	reuses atomic.Uint64
}

// New returns an empty arena.
func New() *Arena {
	a := &Arena{}
	dir := make([]*chunk, 0, 16)
	a.chunks.Store(&dir)
	return a
}

// newChunk pops the freelist or allocates. Recycled chunks are zeroed
// here, before the directory publishes them, so readers never observe
// stale events.
func (a *Arena) newChunk() *chunk {
	if n := len(a.free); n > 0 {
		c := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		clear(c.events[:])
		a.reuses.Add(1)
		return c
	}
	a.allocs.Add(1)
	return &chunk{}
}

// put stores ev at position seq, materializing its chunk if needed. The
// directory grows (and backfills nil entries) copy-on-write so readers
// never observe a partially updated slice.
func (a *Arena) put(seq uint64, ev event.Event) {
	ci := int(seq >> chunkBits)
	dir := *a.chunks.Load()
	if ci >= len(dir) || dir[ci] == nil {
		size := len(dir)
		if ci >= size {
			size = ci + 1
		}
		grown := make([]*chunk, size, max(cap(dir)*2+1, size))
		copy(grown, dir)
		grown[ci] = a.newChunk()
		a.chunks.Store(&grown)
		dir = grown
	}
	dir[ci].events[seq&chunkMask] = ev
}

// Append stores ev at the next sequence position and returns its assigned
// sequence number (equal to the previous Len). The caller must be the
// arena's single writer. The event's Seq field is set to the assigned
// number.
func (a *Arena) Append(ev event.Event) uint64 {
	seq := a.length.Load()
	ev.Seq = seq
	a.put(seq, ev)
	// Publish after the write so readers that observe the new length also
	// observe the event contents.
	a.length.Store(seq + 1)
	return seq
}

// AppendAt stores ev at its pre-stamped position ev.Seq, which must be
// at least Len() (the single writer only moves forward). Positions
// skipped over — events dropped upstream by the planner's intake
// prefilter — read back as zero events; detection code recognizes them
// by Seq mismatch and treats them as no-ops.
func (a *Arena) AppendAt(ev event.Event) uint64 {
	seq := ev.Seq
	a.put(seq, ev)
	a.length.Store(seq + 1)
	return seq
}

// Get returns a pointer to the event with the given sequence number,
// or a shared zero event when the position's chunk was skipped or
// recycled. The pointer stays valid while the chunk is reachable (for
// recycled ranges see ReleaseBefore's contract). Get must only be
// called with seq < Len().
func (a *Arena) Get(seq uint64) *event.Event {
	dir := *a.chunks.Load()
	c := dir[seq>>chunkBits]
	if c == nil {
		return zeroEvent
	}
	return &c.events[seq&chunkMask]
}

// ReleaseBefore recycles every chunk wholly below boundary onto the
// freelist (beyond maxFree they are dropped for the GC). The caller —
// the arena's single writer — must guarantee that no reader holds, or
// will ever again request, a pointer to any event below boundary: the
// engine calls this after a root window version is popped, when every
// remaining window starts at or after the new root's start sequence.
func (a *Arena) ReleaseBefore(boundary uint64) {
	limit := int(boundary >> chunkBits) // first chunk that may still be live
	dir := *a.chunks.Load()
	if limit > len(dir) {
		limit = len(dir)
	}
	any := false
	for ci := 0; ci < limit; ci++ {
		if dir[ci] != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	grown := append([]*chunk(nil), dir...)
	for ci := 0; ci < limit; ci++ {
		if grown[ci] == nil {
			continue
		}
		if len(a.free) < maxFree {
			a.free = append(a.free, grown[ci])
		}
		grown[ci] = nil
	}
	a.chunks.Store(&grown)
}

// AllocStats reports how many chunks were freshly allocated and how
// many were reused from the freelist.
func (a *Arena) AllocStats() (allocs, reuses uint64) {
	return a.allocs.Load(), a.reuses.Load()
}

// Len reports the number of appended events. All events with Seq < Len()
// are fully visible.
func (a *Arena) Len() uint64 { return a.length.Load() }

// ConsumedSet is a grow-only atomic bitset keyed by event sequence number.
// Only the splitter marks events consumed (single writer); operator
// instances read concurrently. Marking is monotone: bits are never cleared.
type ConsumedSet struct {
	words atomic.Pointer[[]atomicWord]
	count atomic.Uint64
}

type atomicWord struct{ v atomic.Uint64 }

// NewConsumedSet returns an empty consumed set.
func NewConsumedSet() *ConsumedSet {
	s := &ConsumedSet{}
	w := make([]atomicWord, 0, 64)
	s.words.Store(&w)
	return s
}

// Mark records seq as consumed. Single-writer only.
func (s *ConsumedSet) Mark(seq uint64) {
	wi := int(seq >> 6)
	words := *s.words.Load()
	if wi >= len(words) {
		grown := make([]atomicWord, wi+1, (wi+1)*2)
		for i := range words {
			grown[i].v.Store(words[i].v.Load())
		}
		s.words.Store(&grown)
		words = grown
	}
	old := words[wi].v.Load()
	bit := uint64(1) << (seq & 63)
	if old&bit == 0 {
		words[wi].v.Store(old | bit)
		s.count.Add(1)
	}
}

// Contains reports whether seq has been marked consumed.
func (s *ConsumedSet) Contains(seq uint64) bool {
	words := *s.words.Load()
	wi := int(seq >> 6)
	if wi >= len(words) {
		return false
	}
	return words[wi].v.Load()&(uint64(1)<<(seq&63)) != 0
}

// Count returns the number of consumed events so far.
func (s *ConsumedSet) Count() uint64 { return s.count.Load() }

// AppendRange appends every marked sequence number in [lo, hi) to dst,
// ascending, and returns it. Used by the durability layer to snapshot
// the live consumption marks into a cut record.
func (s *ConsumedSet) AppendRange(lo, hi uint64, dst []uint64) []uint64 {
	words := *s.words.Load()
	if max := uint64(len(words)) << 6; hi > max {
		hi = max
	}
	for seq := lo; seq < hi; {
		w := words[seq>>6].v.Load() >> (seq & 63)
		if w == 0 {
			seq = (seq | 63) + 1
			continue
		}
		for ; w != 0 && seq < hi; seq++ {
			if w&1 != 0 {
				dst = append(dst, seq)
			}
			w >>= 1
		}
		if w == 0 && seq&63 != 0 {
			// Skip the rest of the exhausted word — but only when seq is
			// still inside it: when the word's top bit was set, the inner
			// loop already advanced seq to the next word's first bit, and
			// rounding up again would skip that word entirely.
			seq = (seq | 63) + 1
		}
	}
	return dst
}

// AppendRuns appends every marked sequence number in [lo, hi) to dst as
// run-length pairs — start, count, start, count, … in ascending order —
// and returns it. Consumption marks are dense once windows complete
// (CONSUME ALL marks every constituent), so runs shrink a cut record's
// consumed snapshot by orders of magnitude versus the explicit list
// AppendRange produces.
func (s *ConsumedSet) AppendRuns(lo, hi uint64, dst []uint64) []uint64 {
	words := *s.words.Load()
	if max := uint64(len(words)) << 6; hi > max {
		hi = max
	}
	var runStart, runLen uint64
	for seq := lo; seq < hi; {
		w := words[seq>>6].v.Load() >> (seq & 63)
		if w == 0 {
			seq = (seq | 63) + 1
			continue
		}
		for ; w != 0 && seq < hi; seq++ {
			if w&1 != 0 {
				switch {
				case runLen > 0 && runStart+runLen == seq:
					runLen++
				default:
					if runLen > 0 {
						dst = append(dst, runStart, runLen)
					}
					runStart, runLen = seq, 1
				}
			}
			w >>= 1
		}
		if w == 0 && seq&63 != 0 {
			// Same word-boundary guard as AppendRange: when the top bit
			// was set, seq already sits on the next word's first bit.
			seq = (seq | 63) + 1
		}
	}
	if runLen > 0 {
		dst = append(dst, runStart, runLen)
	}
	return dst
}
