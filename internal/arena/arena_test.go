package arena

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/spectrecep/spectre/internal/event"
)

func TestAppendGet(t *testing.T) {
	a := New()
	if a.Len() != 0 {
		t.Fatal("new arena must be empty")
	}
	const n = 3 * chunkSize / 2 // crosses a chunk boundary
	for i := 0; i < n; i++ {
		seq := a.Append(event.Event{TS: int64(i), Type: event.Type(i % 7)})
		if seq != uint64(i) {
			t.Fatalf("assigned seq %d, want %d", seq, i)
		}
	}
	if a.Len() != n {
		t.Fatalf("len = %d, want %d", a.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		ev := a.Get(uint64(i))
		if ev.Seq != uint64(i) || ev.TS != int64(i) {
			t.Fatalf("Get(%d) = %+v", i, ev)
		}
	}
}

func TestPointerStability(t *testing.T) {
	a := New()
	a.Append(event.Event{TS: 42})
	p := a.Get(0)
	// Grow across many chunks; the first pointer must stay valid.
	for i := 0; i < 4*chunkSize; i++ {
		a.Append(event.Event{TS: int64(i)})
	}
	if p != a.Get(0) || p.TS != 42 {
		t.Fatal("event pointers must be stable across growth")
	}
}

// TestConcurrentReaders exercises the single-writer/multi-reader contract
// under the race detector.
func TestConcurrentReaders(t *testing.T) {
	a := New()
	const n = 2 * chunkSize
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := a.Len()
				if l == 0 {
					continue
				}
				ev := a.Get(l - 1)
				if ev.Seq != l-1 {
					t.Errorf("read seq %d at len %d", ev.Seq, l)
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		a.Append(event.Event{TS: int64(i)})
	}
	close(stop)
	wg.Wait()
}

func TestConsumedSet(t *testing.T) {
	s := NewConsumedSet()
	if s.Contains(0) || s.Count() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Mark(3)
	s.Mark(3) // idempotent
	s.Mark(64)
	s.Mark(100000)
	if !s.Contains(3) || !s.Contains(64) || !s.Contains(100000) {
		t.Fatal("marked seqs must be contained")
	}
	if s.Contains(4) || s.Contains(99999) {
		t.Fatal("unmarked seqs must not be contained")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
}

// TestConsumedSetProperty: marking any set of seqs makes exactly those
// seqs contained.
func TestConsumedSetProperty(t *testing.T) {
	check := func(seqs []uint16) bool {
		s := NewConsumedSet()
		want := make(map[uint64]bool)
		for _, x := range seqs {
			s.Mark(uint64(x))
			want[uint64(x)] = true
		}
		for x := uint64(0); x < 1<<16; x += 13 {
			if s.Contains(x) != want[x] {
				return false
			}
		}
		return uint64(len(want)) == s.Count()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConsumedSetConcurrentReaders(t *testing.T) {
	s := NewConsumedSet()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Monotonicity: once visible, always visible.
				if s.Contains(10) && !s.Contains(10) {
					t.Error("consumed bit vanished")
					return
				}
			}
		}()
	}
	for i := 0; i < 10000; i++ {
		s.Mark(uint64(i))
	}
	close(stop)
	wg.Wait()
}

func TestAppendAtGapsReadAsZero(t *testing.T) {
	a := New()
	// Stamped substream 0,3,4 with gaps at 1,2 (dropped upstream).
	for _, seq := range []uint64{0, 3, 4} {
		a.AppendAt(event.Event{Seq: seq, Type: 7, TS: int64(seq)})
	}
	if got := a.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	for _, seq := range []uint64{0, 3, 4} {
		ev := a.Get(seq)
		if ev.Seq != seq || ev.Type != 7 {
			t.Fatalf("Get(%d) = %+v, want stamped event", seq, ev)
		}
	}
	for _, seq := range []uint64{1, 2} {
		ev := a.Get(seq)
		if ev.Seq != 0 || ev.Type != 0 {
			t.Fatalf("gap Get(%d) = %+v, want zero event", seq, ev)
		}
	}
}

func TestAppendAtAcrossChunkGap(t *testing.T) {
	a := New()
	a.AppendAt(event.Event{Seq: 0, Type: 1})
	// Jump several whole chunks: skipped chunks stay nil.
	far := uint64(3*chunkSize + 5)
	a.AppendAt(event.Event{Seq: far, Type: 2})
	if ev := a.Get(far); ev.Type != 2 || ev.Seq != far {
		t.Fatalf("Get(%d) = %+v", far, ev)
	}
	if ev := a.Get(uint64(chunkSize + 1)); ev != zeroEvent {
		t.Fatalf("skipped chunk should read the shared zero event")
	}
	allocs, _ := a.AllocStats()
	if allocs != 2 {
		t.Fatalf("allocs = %d, want 2 (skipped chunks must not materialize)", allocs)
	}
}

func TestReleaseBeforeRecyclesChunks(t *testing.T) {
	a := New()
	total := uint64(3 * chunkSize)
	for i := uint64(0); i < total; i++ {
		a.Append(event.Event{Type: event.Type(i%5 + 1)})
	}
	// Boundary inside chunk 2: chunks 0 and 1 are wholly below it.
	a.ReleaseBefore(2*chunkSize + 10)
	for _, seq := range []uint64{0, chunkSize, 2*chunkSize - 1} {
		if a.Get(seq) != zeroEvent {
			t.Fatalf("Get(%d) should be released", seq)
		}
	}
	if ev := a.Get(2 * chunkSize); ev.Seq != 2*chunkSize {
		t.Fatalf("live chunk lost: %+v", ev)
	}
	// New appends must reuse the freed chunks, zeroed.
	before, _ := a.AllocStats()
	for i := uint64(0); i < 2*chunkSize; i++ {
		a.Append(event.Event{Type: 9})
	}
	allocs, reuses := a.AllocStats()
	if allocs != before {
		t.Fatalf("allocs grew %d -> %d; want freelist reuse", before, allocs)
	}
	if reuses != 2 {
		t.Fatalf("reuses = %d, want 2", reuses)
	}
	if ev := a.Get(total); ev.Type != 9 || ev.Seq != total {
		t.Fatalf("recycled chunk returned stale data: %+v", ev)
	}
}

// TestReleaseBeforeBoundsAllocations is the alloc-count regression test
// for the recycling satellite: a long run with a sliding release
// boundary must allocate a bounded number of chunks, not O(stream).
func TestReleaseBeforeBoundsAllocations(t *testing.T) {
	a := New()
	const chunks = 64
	for c := uint64(0); c < chunks; c++ {
		for i := 0; i < chunkSize; i++ {
			a.Append(event.Event{Type: 1})
		}
		if c >= 1 {
			a.ReleaseBefore(c * chunkSize) // keep only the current chunk
		}
	}
	allocs, reuses := a.AllocStats()
	if allocs > maxFree+2 {
		t.Fatalf("allocs = %d for %d chunks; recycling should bound this at %d", allocs, chunks, maxFree+2)
	}
	if reuses == 0 {
		t.Fatalf("no freelist reuse in a %d-chunk run", chunks)
	}
}

// TestConsumedSetAppendRangeWordBoundary is the regression test for the
// skipped-word bug: when a word's top bit (seq 63 mod 64) is marked, the
// scan used to round seq past the *following* word, silently dropping up
// to 64 marks from cut-record snapshots — which surfaced as duplicate
// deliveries after crash recovery.
func TestConsumedSetAppendRangeWordBoundary(t *testing.T) {
	s := NewConsumedSet()
	marks := []uint64{119, 127, 128, 130, 144, 191, 192, 200}
	for _, m := range marks {
		s.Mark(m)
	}
	got := s.AppendRange(0, 256, nil)
	if len(got) != len(marks) {
		t.Fatalf("AppendRange = %v, want %v", got, marks)
	}
	for i, m := range marks {
		if got[i] != m {
			t.Fatalf("AppendRange[%d] = %d, want %d (full: %v)", i, got[i], m, got)
		}
	}
	// Sub-ranges around the boundary behave too.
	if got := s.AppendRange(128, 192, nil); len(got) != 4 || got[0] != 128 || got[3] != 191 {
		t.Fatalf("AppendRange(128,192) = %v, want [128 130 144 191]", got)
	}
	if got := s.AppendRange(120, 128, nil); len(got) != 1 || got[0] != 127 {
		t.Fatalf("AppendRange(120,128) = %v, want [127]", got)
	}
}

func TestConsumedSetAppendRuns(t *testing.T) {
	s := NewConsumedSet()
	marks := []uint64{3, 4, 5, 119, 127, 128, 129, 200}
	for _, seq := range marks {
		s.Mark(seq)
	}
	got := s.AppendRuns(0, 256, nil)
	want := []uint64{3, 3, 119, 1, 127, 3, 200, 1}
	if len(got) != len(want) {
		t.Fatalf("AppendRuns(0,256) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendRuns(0,256) = %v, want %v", got, want)
		}
	}
	// Sub-range splits a run at lo and drops marks past hi.
	got = s.AppendRuns(4, 128, nil)
	want = []uint64{4, 2, 119, 1, 127, 1}
	if len(got) != len(want) {
		t.Fatalf("AppendRuns(4,128) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendRuns(4,128) = %v, want %v", got, want)
		}
	}
}
