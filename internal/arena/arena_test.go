package arena

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/spectrecep/spectre/internal/event"
)

func TestAppendGet(t *testing.T) {
	a := New()
	if a.Len() != 0 {
		t.Fatal("new arena must be empty")
	}
	const n = 3 * chunkSize / 2 // crosses a chunk boundary
	for i := 0; i < n; i++ {
		seq := a.Append(event.Event{TS: int64(i), Type: event.Type(i % 7)})
		if seq != uint64(i) {
			t.Fatalf("assigned seq %d, want %d", seq, i)
		}
	}
	if a.Len() != n {
		t.Fatalf("len = %d, want %d", a.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		ev := a.Get(uint64(i))
		if ev.Seq != uint64(i) || ev.TS != int64(i) {
			t.Fatalf("Get(%d) = %+v", i, ev)
		}
	}
}

func TestPointerStability(t *testing.T) {
	a := New()
	a.Append(event.Event{TS: 42})
	p := a.Get(0)
	// Grow across many chunks; the first pointer must stay valid.
	for i := 0; i < 4*chunkSize; i++ {
		a.Append(event.Event{TS: int64(i)})
	}
	if p != a.Get(0) || p.TS != 42 {
		t.Fatal("event pointers must be stable across growth")
	}
}

// TestConcurrentReaders exercises the single-writer/multi-reader contract
// under the race detector.
func TestConcurrentReaders(t *testing.T) {
	a := New()
	const n = 2 * chunkSize
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := a.Len()
				if l == 0 {
					continue
				}
				ev := a.Get(l - 1)
				if ev.Seq != l-1 {
					t.Errorf("read seq %d at len %d", ev.Seq, l)
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		a.Append(event.Event{TS: int64(i)})
	}
	close(stop)
	wg.Wait()
}

func TestConsumedSet(t *testing.T) {
	s := NewConsumedSet()
	if s.Contains(0) || s.Count() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Mark(3)
	s.Mark(3) // idempotent
	s.Mark(64)
	s.Mark(100000)
	if !s.Contains(3) || !s.Contains(64) || !s.Contains(100000) {
		t.Fatal("marked seqs must be contained")
	}
	if s.Contains(4) || s.Contains(99999) {
		t.Fatal("unmarked seqs must not be contained")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
}

// TestConsumedSetProperty: marking any set of seqs makes exactly those
// seqs contained.
func TestConsumedSetProperty(t *testing.T) {
	check := func(seqs []uint16) bool {
		s := NewConsumedSet()
		want := make(map[uint64]bool)
		for _, x := range seqs {
			s.Mark(uint64(x))
			want[uint64(x)] = true
		}
		for x := uint64(0); x < 1<<16; x += 13 {
			if s.Contains(x) != want[x] {
				return false
			}
		}
		return uint64(len(want)) == s.Count()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConsumedSetConcurrentReaders(t *testing.T) {
	s := NewConsumedSet()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Monotonicity: once visible, always visible.
				if s.Contains(10) && !s.Contains(10) {
					t.Error("consumed bit vanished")
					return
				}
			}
		}()
	}
	for i := 0; i < 10000; i++ {
		s.Mark(uint64(i))
	}
	close(stop)
	wg.Wait()
}
