// Package event defines the event model shared by every engine in this
// repository: primitive events flowing on streams, interned event types,
// numeric field schemas, and complex (derived) events produced by pattern
// detection.
//
// Events are deliberately compact: a type id, an event-time timestamp, a
// globally unique sequence number and a dense slice of numeric fields whose
// meaning is given by a Schema. This mirrors the attribute-value model of
// the SPECTRE paper (§2.1) while keeping the hot path allocation-free.
package event

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Type is an interned event type identifier. In the algorithmic-trading
// workloads of the paper a type corresponds to a stock symbol.
type Type uint32

// NoType is the zero Type; it never names a registered type.
const NoType Type = 0

// Event is a single primitive event. Events are totally ordered by Seq;
// sources must emit events so that Seq increases monotonically (the paper
// assumes a well-defined global ordering by timestamps plus tie-breaker
// rules, which the ingest layer collapses into Seq).
type Event struct {
	// Seq is the global sequence number, assigned at ingest. It is the
	// total order used for window membership and consumption bookkeeping.
	Seq uint64
	// TS is the event time in nanoseconds since the Unix epoch.
	TS int64
	// Type identifies the event type (e.g. the stock symbol).
	Type Type
	// Fields holds the numeric payload, indexed by a Schema.
	Fields []float64
}

// Field returns the idx-th payload field, or 0 when the event carries fewer
// fields. The zero default matches map-lookup semantics and keeps predicate
// evaluation total.
func (e *Event) Field(idx int) float64 {
	if idx < 0 || idx >= len(e.Fields) {
		return 0
	}
	return e.Fields[idx]
}

// Clone returns a deep copy of the event. The fields slice is copied so the
// clone can outlive arena reuse.
func (e *Event) Clone() Event {
	c := *e
	if e.Fields != nil {
		c.Fields = append([]float64(nil), e.Fields...)
	}
	return c
}

// Complex is a derived event emitted when a pattern instance completes.
// Two complex events are the same detection iff their Query, WindowID and
// Constituents agree; String renders a canonical form used by tests to
// compare engine outputs.
type Complex struct {
	// Query names the query that produced this detection.
	Query string
	// WindowID is the id of the window the detection happened in.
	WindowID uint64
	// Constituents are the sequence numbers of the participating primitive
	// events in match order.
	Constituents []uint64
	// Consumed are the sequence numbers consumed by the consumption policy
	// (a subset of Constituents), in ascending order.
	Consumed []uint64
	// DetectedAt is the sequence number of the event that completed the
	// pattern instance.
	DetectedAt uint64
}

// Key returns a canonical string identity for the detection, suitable for
// set comparison between engines.
func (c *Complex) Key() string {
	var b strings.Builder
	b.WriteString(c.Query)
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(c.WindowID, 10))
	b.WriteByte(':')
	for i, s := range c.Constituents {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(s, 10))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (c *Complex) String() string { return c.Key() }

// Clone returns a deep copy of the complex event.
func (c *Complex) Clone() Complex {
	out := *c
	out.Constituents = append([]uint64(nil), c.Constituents...)
	out.Consumed = append([]uint64(nil), c.Consumed...)
	return out
}

// Registry interns event type names and payload field names. A single
// Registry is shared by the query, the dataset and the engine so that ids
// are consistent. The zero value is not usable; call NewRegistry.
//
// A Registry is safe for concurrent use: interning and lookups may race
// freely across goroutines (e.g. two Runtime.Submit calls resolving
// partition fields against a shared registry), and an id handed out once
// is never reassigned.
type Registry struct {
	mu        sync.RWMutex
	typeIDs   map[string]Type
	typeNames []string

	fieldIdx   map[string]int
	fieldNames []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		typeIDs:   make(map[string]Type),
		typeNames: []string{""}, // reserve id 0 == NoType
		fieldIdx:  make(map[string]int),
	}
}

// TypeID interns name and returns its id. Ids start at 1; NoType (0) is
// never returned.
func (r *Registry) TypeID(name string) Type {
	r.mu.RLock()
	id, ok := r.typeIDs[name]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.typeIDs[name]; ok {
		return id
	}
	id = Type(len(r.typeNames))
	r.typeNames = append(r.typeNames, name)
	r.typeIDs[name] = id
	return id
}

// LookupType returns the id for name and whether it is registered.
func (r *Registry) LookupType(name string) (Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.typeIDs[name]
	return id, ok
}

// TypeName returns the name for id, or "" for unknown ids.
func (r *Registry) TypeName(id Type) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) >= len(r.typeNames) {
		return ""
	}
	return r.typeNames[id]
}

// NumTypes reports the number of registered types (excluding NoType).
func (r *Registry) NumTypes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.typeNames) - 1
}

// FieldIndex interns a payload field name and returns its dense index.
func (r *Registry) FieldIndex(name string) int {
	r.mu.RLock()
	idx, ok := r.fieldIdx[name]
	r.mu.RUnlock()
	if ok {
		return idx
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx, ok := r.fieldIdx[name]; ok {
		return idx
	}
	idx = len(r.fieldNames)
	r.fieldNames = append(r.fieldNames, name)
	r.fieldIdx[name] = idx
	return idx
}

// LookupField returns the index for a field name and whether it exists.
func (r *Registry) LookupField(name string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.fieldIdx[name]
	return idx, ok
}

// FieldName returns the name of field idx, or "" when out of range.
func (r *Registry) FieldName(idx int) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if idx < 0 || idx >= len(r.fieldNames) {
		return ""
	}
	return r.fieldNames[idx]
}

// NumFields reports the number of registered payload fields.
func (r *Registry) NumFields() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fieldNames)
}

// Format renders an event using the registry's names, for debugging.
func (r *Registry) Format(e *Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d(", r.TypeName(e.Type), e.Seq)
	for i, f := range e.Fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%g", r.FieldName(i), f)
	}
	b.WriteByte(')')
	return b.String()
}
