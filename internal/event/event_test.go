package event

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers interning and lookup from many
// goroutines; run under -race it proves the registry is safe to share
// (e.g. between concurrent Runtime.Submit calls resolving partition
// fields).
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 8
		types      = 50
		fields     = 20
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				name := fmt.Sprintf("T%02d", (i+g)%types)
				id := reg.TypeID(name)
				if got, ok := reg.LookupType(name); !ok || got != id {
					t.Errorf("LookupType(%q) = %d,%v after TypeID returned %d", name, got, ok, id)
					return
				}
				if got := reg.TypeName(id); got != name {
					t.Errorf("TypeName(%d) = %q, want %q", id, got, name)
					return
				}
				fname := fmt.Sprintf("f%d", (i*7+g)%fields)
				idx := reg.FieldIndex(fname)
				if got := reg.FieldName(idx); got != fname {
					t.Errorf("FieldName(%d) = %q, want %q", idx, got, fname)
					return
				}
				_ = reg.NumTypes()
				_ = reg.NumFields()
			}
		}(g)
	}
	wg.Wait()
	if got := reg.NumTypes(); got != types {
		t.Fatalf("NumTypes = %d, want %d (ids must stay dense under contention)", got, types)
	}
	if got := reg.NumFields(); got != fields {
		t.Fatalf("NumFields = %d, want %d", got, fields)
	}
}

func TestRegistryInterning(t *testing.T) {
	reg := NewRegistry()
	a := reg.TypeID("AAPL")
	b := reg.TypeID("MSFT")
	if a == b || a == NoType || b == NoType {
		t.Fatalf("ids must be distinct and non-zero: %d %d", a, b)
	}
	if got := reg.TypeID("AAPL"); got != a {
		t.Fatal("interning must be stable")
	}
	if name := reg.TypeName(a); name != "AAPL" {
		t.Fatalf("name = %q", name)
	}
	if _, ok := reg.LookupType("GOOG"); ok {
		t.Fatal("lookup must not intern")
	}
	if reg.NumTypes() != 2 {
		t.Fatalf("NumTypes = %d, want 2", reg.NumTypes())
	}
	if reg.TypeName(Type(99)) != "" {
		t.Fatal("unknown id must render empty")
	}
}

func TestRegistryFields(t *testing.T) {
	reg := NewRegistry()
	open := reg.FieldIndex("open")
	closeIdx := reg.FieldIndex("close")
	if open == closeIdx {
		t.Fatal("field indices must be distinct")
	}
	if got := reg.FieldIndex("open"); got != open {
		t.Fatal("field interning must be stable")
	}
	if idx, ok := reg.LookupField("close"); !ok || idx != closeIdx {
		t.Fatal("lookup must find interned fields")
	}
	if reg.FieldName(open) != "open" || reg.FieldName(42) != "" {
		t.Fatal("FieldName mismatch")
	}
	if reg.NumFields() != 2 {
		t.Fatalf("NumFields = %d, want 2", reg.NumFields())
	}
}

func TestEventField(t *testing.T) {
	ev := Event{Fields: []float64{1.5, 2.5}}
	if ev.Field(0) != 1.5 || ev.Field(1) != 2.5 {
		t.Fatal("field access")
	}
	if ev.Field(2) != 0 || ev.Field(-1) != 0 {
		t.Fatal("out-of-range fields must read as 0")
	}
	c := ev.Clone()
	c.Fields[0] = 9
	if ev.Fields[0] != 1.5 {
		t.Fatal("clone must not share the fields slice")
	}
}

func TestComplexKey(t *testing.T) {
	ce := Complex{Query: "Q", WindowID: 3, Constituents: []uint64{1, 2, 5}}
	if ce.Key() != "Q@3:1,2,5" {
		t.Fatalf("key = %q", ce.Key())
	}
	other := Complex{Query: "Q", WindowID: 3, Constituents: []uint64{1, 2, 6}}
	if ce.Key() == other.Key() {
		t.Fatal("different constituents must yield different keys")
	}
	cl := ce.Clone()
	cl.Constituents[0] = 9
	if ce.Constituents[0] != 1 {
		t.Fatal("clone must deep-copy constituents")
	}
}

func TestFormat(t *testing.T) {
	reg := NewRegistry()
	ty := reg.TypeID("X")
	reg.FieldIndex("open")
	ev := Event{Seq: 7, Type: ty, Fields: []float64{3}}
	if got := reg.Format(&ev); got != "X#7(open=3)" {
		t.Fatalf("format = %q", got)
	}
}
