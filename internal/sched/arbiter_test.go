package sched

import (
	"testing"
	"time"
)

func TestArbiterSplitsByWeight(t *testing.T) {
	a := NewArbiter(16)
	q1 := a.Register("heavy", 3, 0, 1)
	q2 := a.Register("light", 1, 0, 1)
	if got := q1.Shard(0).Procs(); got != 12 {
		t.Fatalf("weight-3 query granted %d of 16 procs, want 12", got)
	}
	if got := q2.Shard(0).Procs(); got != 4 {
		t.Fatalf("weight-1 query granted %d of 16 procs, want 4", got)
	}
}

func TestArbiterShardFloorOfOne(t *testing.T) {
	a := NewArbiter(2)
	q1 := a.Register("a", 1, 0, 4)
	a.Register("b", 1, 0, 4)
	for i := 0; i < 4; i++ {
		if got := q1.Shard(i).Procs(); got < 1 {
			t.Fatalf("shard %d granted %d procs, want the floor of 1", i, got)
		}
	}
}

func TestArbiterReleaseRedistributes(t *testing.T) {
	a := NewArbiter(8)
	q1 := a.Register("stays", 1, 0, 1)
	q2 := a.Register("leaves", 1, 0, 1)
	if got := q1.Shard(0).Procs(); got != 4 {
		t.Fatalf("pre-release grant %d, want 4", got)
	}
	q2.Release()
	q2.Release() // idempotent
	if got := a.Queries(); got != 1 {
		t.Fatalf("%d queries registered after release, want 1", got)
	}
	if got := q1.Shard(0).Procs(); got != 8 {
		t.Fatalf("post-release grant %d, want the whole pool of 8", got)
	}
}

func TestArbiterDemandSkewsShardGrants(t *testing.T) {
	a := NewArbiter(8)
	q := a.Register("skewed", 1, 0, 2)
	// Reports recompute every reportsPerRecompute calls; drive past it.
	for i := 0; i < reportsPerRecompute; i++ {
		q.Shard(0).Report(6, 0)
		q.Shard(1).Report(2, 0)
	}
	p0, p1 := q.Shard(0).Procs(), q.Shard(1).Procs()
	if p0 <= p1 {
		t.Fatalf("demand-6 shard granted %d, demand-2 shard %d: want the busy shard ahead", p0, p1)
	}
	if p0+p1 > 8+1 {
		t.Fatalf("grants %d+%d exceed the pool beyond the min-1 allowance", p0, p1)
	}
}

func TestArbiterSLOBoost(t *testing.T) {
	a := NewArbiter(16)
	missing := a.Register("missing", 1, 10*time.Millisecond, 1)
	meeting := a.Register("meeting", 1, 10*time.Millisecond, 1)
	for i := 0; i < reportsPerRecompute; i++ {
		missing.Shard(0).Report(1, 0.05) // 5x over a 10ms target → boost clamped at 4
		meeting.Shard(0).Report(1, 0.001)
	}
	pm, pk := missing.Shard(0).Procs(), meeting.Shard(0).Procs()
	if pm <= pk {
		t.Fatalf("SLO-missing query granted %d vs %d: want the boost to pull procs", pm, pk)
	}
	// boost 4 vs 1 → 16·4/5 = 12.8 vs 16/5 = 3.2.
	if pm < 12 || pk > 4 {
		t.Fatalf("grants %d/%d, want ~13/3 under a clamped 4x boost", pm, pk)
	}
}

func TestArbiterRegisterDefaults(t *testing.T) {
	a := NewArbiter(0) // GOMAXPROCS fallback
	q := a.Register("q", -5, 0, 0)
	if q.weight != 1 {
		t.Fatalf("non-positive weight normalized to %v, want 1", q.weight)
	}
	if len(q.shards) != 1 {
		t.Fatalf("%d shards for a 0-shard registration, want 1", len(q.shards))
	}
	if q.Shard(3) != nil || q.Shard(-1) != nil {
		t.Fatal("out-of-range Shard() must return nil")
	}
}

func TestAdaptiveRespectsArbiterCeiling(t *testing.T) {
	// Two queries at 1:3 weight on 8 procs: the adaptive query's real
	// grant is 2, and it stays 2 across the recomputes its own Report
	// calls trigger.
	a := NewArbiter(8)
	q := a.Register("q", 1, 0, 1)
	a.Register("heavy", 3, 0, 1)
	ctl := q.Shard(0)
	if got := ctl.Procs(); got != 2 {
		t.Fatalf("setup: granted %d procs, want 2", got)
	}

	cfg := Config{Kind: Adaptive, MaxSlots: 8, AdjustEvery: 1, Procs: 16, Ctl: ctl}
	p := cfg.New(4, 64).(*adaptive)
	// Saturated + pressured signals that would normally grow to 8.
	for i := 0; i < 64; i++ {
		p.Tune(Signals{SlotsActive: p.slots, SlotsBusy: p.slots, Selected: p.slots, QueueDepth: 100, QueueCap: 1000, TreeSize: 50})
	}
	if p.slots > 2 {
		t.Fatalf("slots grew to %d past the arbiter grant of 2", p.slots)
	}
}

func TestAdaptiveLatencyTargetCutsSpeculation(t *testing.T) {
	cfg := Config{Kind: Adaptive, MaxSlots: 4, AdjustEvery: 1, Procs: 4, MinSpec: 16, LatencyTarget: 10 * time.Millisecond}
	p := cfg.New(4, 256).(*adaptive)
	before := p.spec
	p.Tune(Signals{SlotsActive: 4, SlotsBusy: 4, Selected: 4, EmitLagP99: 0.5})
	if p.spec >= before {
		t.Fatalf("speculation %d -> %d under a blown latency SLO, want a cut", before, p.spec)
	}
}

func TestAdaptiveReportsToArbiter(t *testing.T) {
	a := NewArbiter(8)
	q := a.Register("q", 1, 0, 1)
	ctl := q.Shard(0)
	cfg := Config{Kind: Adaptive, MaxSlots: 4, AdjustEvery: 1, Procs: 8, Ctl: ctl}
	p := cfg.New(2, 64).(*adaptive)
	p.Tune(Signals{SlotsActive: 2, SlotsBusy: 2, Selected: 2, EmitLagP99: 0.25})
	if got := ctl.reports.Load(); got == 0 {
		t.Fatal("adaptive adjust did not report to its ShardCtl")
	}
}
