// Package sched is the scheduling control plane of the SPECTRE runtime:
// it decides, once per splitter maintenance cycle, which window versions
// occupy the k operator-instance slots and how large k and the
// speculation budget should be.
//
// The paper freezes both decisions at submission time: k is the
// Instances parameter and the slot assignment is the fixed top-k walk of
// Fig. 7. This package names that code path (TopK), its Fig. 11 baseline
// (FixedProb — the constant completion probability previously buried in
// markov.Fixed) and adds an Adaptive policy that resizes the effective
// slot count and the speculation budget at runtime from observed load —
// slot utilization, rollback rate and shard-queue depth — following the
// adaptive-parallelization-degree argument of Xiao & Aritsugi and the
// graceful-degradation-under-overload argument of eSPICE.
//
// Every policy sits strictly above the §4.2 validation gate: the policy
// chooses what to work on and with how much parallelism, never what is
// emitted. The delivered output is byte-identical for every policy.
package sched

import (
	"runtime"
	"time"

	"github.com/spectrecep/spectre/internal/deptree"
)

// Env is the read-only view of a shard the splitter exposes to Select.
// All fields are owned by the calling splitter for the duration of the
// call.
type Env struct {
	// Tree is the shard's dependency tree.
	Tree *deptree.Tree
	// Prob returns the completion probability of a consumption group:
	// certain (1 or 0) for resolved groups, model-predicted for open
	// ones.
	Prob func(cg *deptree.CG) float64
	// Eligible filters window versions that actually need processing.
	Eligible func(wv *deptree.WindowVersion) bool
}

// Signals summarizes one maintenance cycle's observations for Tune.
// Counter fields are cumulative over the run; gauges are instantaneous.
type Signals struct {
	// SlotsActive is the current effective slot-pool size.
	SlotsActive int
	// SlotsBusy counts active slots that currently hold an assignment.
	SlotsBusy int
	// Selected is how many versions the previous Select handed out.
	// Selected == SlotsActive means demand is at least the pool size.
	Selected int
	// QueueDepth is the shard intake queue's pending backlog (0 for
	// dedicated source-fed engines, which pull instead of queue).
	QueueDepth int
	// QueueCap is the intake queue's capacity (0 when unbounded/pull).
	QueueCap int
	// TreeSize is the number of window versions in the dependency tree.
	TreeSize int
	// SpecBudget is the tree's current speculation cap.
	SpecBudget int
	// Rollbacks and PartialRolls are the shard's cumulative rollback
	// counters.
	Rollbacks    uint64
	PartialRolls uint64
	// EmitLagP50 and EmitLagP99 are the shard's root-emission latency
	// quantile estimates in seconds: the time from an event's ingestion
	// to the root window version that covers it being finalized. Zero
	// until the first root pops.
	EmitLagP50 float64
	EmitLagP99 float64
	// InputDone reports end of stream.
	InputDone bool
}

// Decision is a policy's control output for the next cycle: the slot-pool
// size to run with and the speculation budget for the dependency tree.
// The engine clamps Slots to [1, ceiling] and parks the slots beyond it.
type Decision struct {
	Slots int
	Spec  int
}

// Policy decides slot assignment and control-plane sizing for one shard.
// A Policy instance is owned by its shard's splitter: calls are
// single-threaded, but implementations may keep mutable state.
type Policy interface {
	// Select appends the window versions that should occupy the k slots,
	// most deserving first, to out and returns it. Fewer than k results
	// means fewer than k versions are eligible.
	Select(env Env, k int, out []*deptree.WindowVersion) []*deptree.WindowVersion
	// Tune observes one cycle's signals and returns the sizing decision
	// for the next cycle. Static policies return a constant.
	Tune(sig Signals) Decision
}

// Kind enumerates the built-in policies.
type Kind int

const (
	// TopK is the paper's Fig. 7 behavior: a fixed pool of k slots
	// assigned to the k most probable window versions under the learned
	// completion model.
	TopK Kind = iota
	// FixedProb is the Fig. 11 baseline: top-k selection under a
	// constant completion probability for every open consumption group.
	FixedProb
	// Adaptive is top-k selection under the learned model, with the
	// effective slot count and the speculation budget resized at runtime
	// from observed load.
	Adaptive
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TopK:
		return "topk"
	case FixedProb:
		return "fixedprob"
	case Adaptive:
		return "adaptive"
	}
	return "unknown"
}

// Config selects and parameterizes a policy. The zero value is the
// static TopK policy. One Config is shared by every shard of a query;
// each shard materializes its own Policy instance with New.
type Config struct {
	// Kind selects the policy.
	Kind Kind
	// FixedP is the constant completion probability of FixedProb.
	FixedP float64
	// MinSlots/MaxSlots bound the Adaptive slot pool. Unset (0) values
	// default to 1 and the configured instance count respectively.
	// MaxSlots also raises the engine's slot-pool ceiling above the
	// instance count, so an adaptive query can grow past its initial k.
	MinSlots, MaxSlots int
	// MinSpec/MaxSpec bound the Adaptive speculation budget. Unset
	// values default to max(16, spec/8) and the configured
	// MaxSpeculation respectively.
	MinSpec, MaxSpec int
	// AdjustEvery is the adaptation cadence in scheduling cycles
	// (default 64). Only Adaptive uses it.
	AdjustEvery int
	// Procs caps useful slot growth at the machine's actual parallelism
	// (default GOMAXPROCS): slots beyond runnable CPUs only add
	// scheduling overhead. Tests pin it for determinism.
	Procs int
	// LatencyTarget is the query's root-emission latency SLO (0 = none).
	// Adaptive treats a p99 emission lag beyond the target like queue
	// overload (cut speculation), and the admission arbiter boosts the
	// query's processor share while the SLO is missed.
	LatencyTarget time.Duration
	// Ctl is the shard's admission-arbiter handle on a shared runtime
	// (nil when the query is not arbitrated). When set, Adaptive uses
	// the granted processor budget instead of Procs as the parallelism
	// ceiling and reports demand and emission lag back each period.
	Ctl *ShardCtl
}

// normalized fills Config defaults given the configured fixed instance
// count k and speculation budget spec.
func (c Config) normalized(k, spec int) Config {
	if c.MinSlots <= 0 {
		c.MinSlots = 1
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = k
	}
	if c.MaxSlots < c.MinSlots {
		c.MaxSlots = c.MinSlots
	}
	if c.MinSpec <= 0 {
		c.MinSpec = spec / 8
		if c.MinSpec < 16 {
			c.MinSpec = 16
		}
	}
	// spec (the configured MaxSpeculation) is the hard ceiling: the
	// adaptive budget never exceeds it, whatever the bounds say.
	if c.MaxSpec <= 0 || (spec > 0 && c.MaxSpec > spec) {
		c.MaxSpec = spec
	}
	if c.MinSpec > c.MaxSpec && c.MaxSpec > 0 {
		c.MinSpec = c.MaxSpec
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = 64
	}
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
	}
	return c
}

// SlotCeiling returns the slot-pool capacity a shard must allocate for
// this config: the fixed instance count, or MaxSlots if it is larger
// (adaptive queries and custom policy factories grow past their initial
// k up to this ceiling).
func (c Config) SlotCeiling(k int) int {
	if c.MaxSlots > k {
		return c.MaxSlots
	}
	return k
}

// InitialSlots returns the slot count a shard starts with: the fixed
// instance count, clamped into the adaptive bounds when adapting.
func (c Config) InitialSlots(k int) int {
	if c.Kind != Adaptive {
		return k
	}
	n := c.normalized(k, 0)
	return clamp(k, n.MinSlots, n.MaxSlots)
}

// New builds a fresh Policy instance for one shard. k and spec are the
// configured instance count and speculation budget; static policies pin
// their Decision to them, Adaptive uses them as the starting point and
// to fill unset bounds.
func (c Config) New(k, spec int) Policy {
	switch c.Kind {
	case FixedProb:
		return newFixedProb(c.FixedP, k, spec)
	case Adaptive:
		return newAdaptive(c.normalized(k, spec), k, spec)
	default:
		return &topK{dec: Decision{Slots: k, Spec: spec}}
	}
}

// outcomeOr returns the certain probability of a resolved group, or p
// for open groups. Resolved outcomes must stay certain under every
// policy: a completed group's dependents are facts, not speculation.
func outcomeOr(cg *deptree.CG, p float64) float64 {
	switch cg.Outcome() {
	case deptree.CGCompleted:
		return 1
	case deptree.CGAbandoned:
		return 0
	}
	return p
}

// topK is the paper's fixed scheduling policy (Fig. 7), extracted from
// the splitter verbatim: the k most probable versions under the model,
// constant sizing.
type topK struct {
	dec Decision
}

func (p *topK) Select(env Env, k int, out []*deptree.WindowVersion) []*deptree.WindowVersion {
	return env.Tree.TopK(k, env.Prob, env.Eligible, out)
}

func (p *topK) Tune(Signals) Decision { return p.dec }

// fixedProb is the Fig. 11 baseline: top-k selection under a constant
// completion probability.
type fixedProb struct {
	dec  Decision
	prob func(cg *deptree.CG) float64
}

func newFixedProb(p float64, k, spec int) *fixedProb {
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return &fixedProb{
		dec:  Decision{Slots: k, Spec: spec},
		prob: func(cg *deptree.CG) float64 { return outcomeOr(cg, p) },
	}
}

func (p *fixedProb) Select(env Env, k int, out []*deptree.WindowVersion) []*deptree.WindowVersion {
	return env.Tree.TopK(k, p.prob, env.Eligible, out)
}

func (p *fixedProb) Tune(Signals) Decision { return p.dec }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
