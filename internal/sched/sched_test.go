package sched

import "testing"

// tuneN feeds n identical signal cycles and returns the last decision.
func tuneN(p Policy, sig Signals, n int) Decision {
	var d Decision
	for i := 0; i < n; i++ {
		d = p.Tune(sig)
	}
	return d
}

func TestStaticPoliciesAreConstant(t *testing.T) {
	for _, cfg := range []Config{{Kind: TopK}, {Kind: FixedProb, FixedP: 0.3}} {
		p := cfg.New(4, 256)
		want := Decision{Slots: 4, Spec: 256}
		for _, sig := range []Signals{
			{},
			{SlotsActive: 4, SlotsBusy: 4, Selected: 4, QueueDepth: 1 << 20, QueueCap: 1, TreeSize: 1 << 20, Rollbacks: 1 << 30},
		} {
			if got := tuneN(p, sig, 500); got != want {
				t.Fatalf("%v: decision %+v, want %+v", cfg.Kind, got, want)
			}
		}
	}
}

func TestAdaptiveShrinksWhenIdle(t *testing.T) {
	cfg := Config{Kind: Adaptive, MinSlots: 1, MaxSlots: 8, AdjustEvery: 8, Procs: 8}
	p := cfg.New(8, 256)
	// Nothing eligible, nothing busy: the pool must park down to the
	// floor.
	idle := Signals{SlotsActive: 8, SlotsBusy: 0, Selected: 0}
	d := tuneN(p, idle, 2000)
	if d.Slots != 1 {
		t.Fatalf("idle pool kept %d slots, want 1", d.Slots)
	}
}

func TestAdaptiveGrowsUnderPressure(t *testing.T) {
	cfg := Config{Kind: Adaptive, MinSlots: 1, MaxSlots: 8, AdjustEvery: 8, Procs: 8}
	p := cfg.New(1, 256)
	// Closed loop: a saturated shard fills however many slots it gets.
	sig := Signals{QueueDepth: 100, QueueCap: 1 << 16, TreeSize: 64}
	var d Decision
	for i := 0; i < 2000; i++ {
		d = p.Tune(sig)
		sig.SlotsActive, sig.SlotsBusy, sig.Selected = d.Slots, d.Slots, d.Slots
	}
	if d.Slots != 8 {
		t.Fatalf("pressured pool grew to %d slots, want 8", d.Slots)
	}
}

func TestAdaptiveRespectsProcsCeiling(t *testing.T) {
	cfg := Config{Kind: Adaptive, MinSlots: 1, MaxSlots: 16, AdjustEvery: 8, Procs: 2}
	p := cfg.New(8, 256)
	sig := Signals{QueueDepth: 100, QueueCap: 1 << 16, TreeSize: 64}
	var d Decision
	for i := 0; i < 2000; i++ {
		d = p.Tune(sig)
		sig.SlotsActive, sig.SlotsBusy, sig.Selected = d.Slots, d.Slots, d.Slots
	}
	if d.Slots != 2 {
		t.Fatalf("pool on a 2-proc machine settled at %d slots, want 2", d.Slots)
	}
}

func TestAdaptiveDegradesSpeculationOnRollbackStorm(t *testing.T) {
	cfg := Config{Kind: Adaptive, MinSlots: 1, MaxSlots: 4, MinSpec: 16, MaxSpec: 256, AdjustEvery: 8, Procs: 4}
	p := cfg.New(4, 256).(*adaptive)
	sig := Signals{SlotsActive: 4, SlotsBusy: 4, Selected: 4, TreeSize: 8}
	for i := 0; i < 2000; i++ {
		sig.Rollbacks += 4 // 4 rollbacks per cycle: a storm by any measure
		p.Tune(sig)
	}
	if d := p.Tune(sig); d.Spec != 16 {
		t.Fatalf("speculation budget under a rollback storm is %d, want floor 16", d.Spec)
	}
}

func TestAdaptiveDegradesSpeculationOnOverloadAndRecovers(t *testing.T) {
	cfg := Config{Kind: Adaptive, MinSlots: 1, MaxSlots: 4, MinSpec: 16, MaxSpec: 256, AdjustEvery: 8, Procs: 4}
	p := cfg.New(4, 256).(*adaptive)
	overload := Signals{SlotsActive: 4, SlotsBusy: 4, Selected: 4, QueueDepth: 1000, QueueCap: 1024, TreeSize: 8}
	if d := tuneN(p, overload, 2000); d.Spec != 16 {
		t.Fatalf("speculation budget under overload is %d, want floor 16", d.Spec)
	}
	// Healthy again, tree pressing against the budget: recover to the
	// ceiling.
	healthy := Signals{SlotsActive: 4, SlotsBusy: 4, Selected: 4, QueueDepth: 0, QueueCap: 1024, TreeSize: 300}
	if d := tuneN(p, healthy, 2000); d.Spec != 256 {
		t.Fatalf("recovered speculation budget is %d, want ceiling 256", d.Spec)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{Kind: Adaptive}.normalized(4, 256)
	if c.MinSlots != 1 || c.MaxSlots != 4 {
		t.Fatalf("slot bounds [%d, %d], want [1, 4]", c.MinSlots, c.MaxSlots)
	}
	if c.MinSpec != 32 || c.MaxSpec != 256 {
		t.Fatalf("spec bounds [%d, %d], want [32, 256]", c.MinSpec, c.MaxSpec)
	}
	if c.AdjustEvery != 64 || c.Procs <= 0 {
		t.Fatalf("cadence %d / procs %d not defaulted", c.AdjustEvery, c.Procs)
	}

	if got := (Config{Kind: Adaptive, MaxSlots: 16}).SlotCeiling(4); got != 16 {
		t.Fatalf("adaptive ceiling %d, want 16", got)
	}
	if got := (Config{Kind: TopK, MaxSlots: 16}).SlotCeiling(4); got != 16 {
		t.Fatalf("static ceiling %d, want 16 (custom factories grow past k)", got)
	}
	if got := (Config{Kind: TopK}).SlotCeiling(4); got != 4 {
		t.Fatalf("default ceiling %d, want 4", got)
	}
	if got := (Config{Kind: Adaptive, MinSlots: 2, MaxSlots: 3}).InitialSlots(8); got != 3 {
		t.Fatalf("initial slots %d, want clamp to 3", got)
	}

	// The configured MaxSpeculation is the hard ceiling: adaptive bounds
	// beyond it are clamped down (a later WithMaxSpeculation wins).
	c = Config{Kind: Adaptive, MinSpec: 16, MaxSpec: 4096}.normalized(4, 64)
	if c.MaxSpec != 64 {
		t.Fatalf("MaxSpec %d exceeds the configured hard ceiling 64", c.MaxSpec)
	}
	c = Config{Kind: Adaptive, MinSpec: 128, MaxSpec: 4096}.normalized(4, 64)
	if c.MaxSpec != 64 || c.MinSpec != 64 {
		t.Fatalf("bounds [%d, %d] not clamped to the 64 ceiling", c.MinSpec, c.MaxSpec)
	}
}

func TestFixedProbClampsProbability(t *testing.T) {
	for _, p := range []float64{-1, 2} {
		pol := Config{Kind: FixedProb, FixedP: p}.New(2, 64)
		if pol == nil {
			t.Fatal("policy must be constructed with a clamped probability")
		}
	}
}
