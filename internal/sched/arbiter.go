package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Arbiter is the cross-query admission side of the control plane: on a
// shared Runtime, each query registers with a weight and an optional
// latency SLO, and the arbiter divides the machine's processors among
// the registered queries in proportion to weight — boosted for queries
// missing their SLO — then among each query's shards in proportion to
// their observed demand. The per-shard grant feeds back into the
// adaptive policy as the parallelism ceiling (replacing Config.Procs),
// so co-located adaptive queries split the machine instead of each
// assuming all of GOMAXPROCS.
//
// Grants are hints, not hard caps: every shard is guaranteed a floor of
// one proc so no query can be starved outright, which means the grants
// can sum above the total when queries outnumber processors.
type Arbiter struct {
	mu      sync.Mutex
	total   int
	queries []*QueryCtl
}

// NewArbiter builds an arbiter over total processors (<= 0 defaults to
// GOMAXPROCS).
func NewArbiter(total int) *Arbiter {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	return &Arbiter{total: total}
}

// Register adds a query with the given weight (<= 0 defaults to 1),
// latency target (0 = no SLO) and shard count, and returns its control
// handle. Call Release on the handle when the query is forgotten.
func (a *Arbiter) Register(name string, weight float64, target time.Duration, shards int) *QueryCtl {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		weight = 1
	}
	if shards < 1 {
		shards = 1
	}
	qc := &QueryCtl{arb: a, name: name, weight: weight, target: target.Seconds()}
	qc.shards = make([]*ShardCtl, shards)
	for i := range qc.shards {
		sc := &ShardCtl{q: qc}
		sc.procs.Store(int64(a.total))
		sc.demand.Store(math.Float64bits(1))
		qc.shards[i] = sc
	}
	a.mu.Lock()
	a.queries = append(a.queries, qc)
	a.recomputeLocked()
	a.mu.Unlock()
	return qc
}

// Queries returns the number of registered queries (tests/diagnostics).
func (a *Arbiter) Queries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queries)
}

// recomputeLocked redistributes the processor budget. Caller holds a.mu.
func (a *Arbiter) recomputeLocked() {
	if len(a.queries) == 0 {
		return
	}
	type scored struct {
		q     *QueryCtl
		score float64
	}
	scores := make([]scored, 0, len(a.queries))
	sum := 0.0
	for _, q := range a.queries {
		s := q.weight * q.sloBoost()
		scores = append(scores, scored{q, s})
		sum += s
	}
	for _, sc := range scores {
		grant := float64(a.total) * sc.score / sum
		sc.q.distribute(grant)
	}
}

// QueryCtl is one query's registration with the arbiter.
type QueryCtl struct {
	arb      *Arbiter
	name     string
	weight   float64
	target   float64 // latency SLO in seconds; 0 = none
	shards   []*ShardCtl
	released bool
}

// Shard returns the control handle of shard i (nil when out of range).
func (q *QueryCtl) Shard(i int) *ShardCtl {
	if i < 0 || i >= len(q.shards) {
		return nil
	}
	return q.shards[i]
}

// Release removes the query from the arbiter and redistributes its
// grant. Idempotent.
func (q *QueryCtl) Release() {
	a := q.arb
	a.mu.Lock()
	defer a.mu.Unlock()
	if q.released {
		return
	}
	q.released = true
	for i, cur := range a.queries {
		if cur == q {
			a.queries = append(a.queries[:i], a.queries[i+1:]...)
			break
		}
	}
	a.recomputeLocked()
}

// sloBoost scales the query's score by how far it is past its latency
// target, clamped to [1, 4]: a query missing its SLO pulls processors
// from queries that are meeting theirs, but can never monopolize.
func (q *QueryCtl) sloBoost() float64 {
	if q.target <= 0 {
		return 1
	}
	worst := 0.0
	for _, s := range q.shards {
		if lag := math.Float64frombits(s.lag.Load()); lag > worst {
			worst = lag
		}
	}
	boost := worst / q.target
	if boost < 1 || math.IsNaN(boost) {
		return 1
	}
	if boost > 4 {
		return 4
	}
	return boost
}

// distribute splits grant processors among the query's shards in
// proportion to their demand EWMAs, with a floor of one per shard.
func (q *QueryCtl) distribute(grant float64) {
	sum := 0.0
	for _, s := range q.shards {
		sum += math.Float64frombits(s.demand.Load())
	}
	for _, s := range q.shards {
		share := grant / float64(len(q.shards))
		if sum > 0 {
			share = grant * math.Float64frombits(s.demand.Load()) / sum
		}
		procs := int64(math.Round(share))
		if procs < 1 {
			procs = 1
		}
		s.procs.Store(procs)
	}
}

// ShardCtl is the per-shard side of the arbiter: the splitter's adaptive
// policy reads its processor budget each adaptation period and reports
// its observed demand and emission lag back.
type ShardCtl struct {
	q       *QueryCtl
	procs   atomic.Int64
	demand  atomic.Uint64 // Float64bits of the shard's demand EWMA
	lag     atomic.Uint64 // Float64bits of the shard's p99 emission lag, seconds
	reports atomic.Uint64
}

// reportsPerRecompute throttles full redistribution: Report is called
// once per adaptation period per shard, and one recompute every 8
// reports tracks load shifts while keeping the shared lock cold.
const reportsPerRecompute = 8

// Procs returns the shard's current processor budget (>= 1).
func (s *ShardCtl) Procs() int { return int(s.procs.Load()) }

// Report publishes the shard's demand EWMA (versions per cycle wanting
// a slot) and p99 root-emission lag in seconds, and occasionally
// triggers a redistribution.
func (s *ShardCtl) Report(demand, lagSeconds float64) {
	if demand < 0 || math.IsNaN(demand) {
		demand = 0
	}
	if lagSeconds < 0 || math.IsNaN(lagSeconds) {
		lagSeconds = 0
	}
	s.demand.Store(math.Float64bits(demand))
	s.lag.Store(math.Float64bits(lagSeconds))
	if s.reports.Add(1)%reportsPerRecompute == 0 {
		a := s.q.arb
		a.mu.Lock()
		a.recomputeLocked()
		a.mu.Unlock()
	}
}
