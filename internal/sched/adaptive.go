package sched

import "github.com/spectrecep/spectre/internal/deptree"

// Adaptation thresholds. Utilization is the EWMA fraction of active
// slots holding an assignment; demand is the EWMA of how many versions
// Select actually handed out.
const (
	// ewmaAlpha is the per-cycle smoothing weight of the observed
	// signals. Cycles are microseconds apart, so a small weight still
	// adapts within a fraction of a millisecond of wall time.
	ewmaAlpha = 0.05
	// growUtil: above this utilization with saturated demand the pool
	// grows.
	growUtil = 0.85
	// shrinkUtil: below this utilization the pool shrinks toward demand.
	shrinkUtil = 0.5
	// overloadFrac: a queue beyond this fraction of its capacity is
	// overload — degrade gracefully by cutting the speculation budget so
	// the root chain (the only thing that drains the queue) gets the
	// cycles.
	overloadNum, overloadDen = 3, 4
	// rollStormDen: more than AdjustEvery/rollStormDen rollbacks within
	// one adaptation period means speculation is mostly being wasted.
	rollStormDen = 8
)

// adaptive resizes the effective slot count and the speculation budget
// per adaptation period. The slot count tracks demand (how many eligible
// versions there are) and utilization, bounded by [MinSlots, MaxSlots]
// and by the machine's actual parallelism; the speculation budget shrinks
// multiplicatively on rollback storms and queue overload and recovers
// multiplicatively while the tree presses against it.
type adaptive struct {
	cfg       Config
	slots     int
	spec      int
	lagTarget float64 // latency SLO in seconds; 0 = none

	cycle         int
	utilEWMA      float64
	demandEWMA    float64
	lastRollbacks uint64
}

func newAdaptive(cfg Config, k, spec int) *adaptive {
	slots := clamp(k, cfg.MinSlots, cfg.MaxSlots)
	return &adaptive{
		cfg:        cfg,
		slots:      slots,
		spec:       clamp(spec, cfg.MinSpec, cfg.MaxSpec),
		lagTarget:  cfg.LatencyTarget.Seconds(),
		utilEWMA:   1,
		demandEWMA: float64(slots),
	}
}

// Select is the paper's top-k walk under the learned model — adaptation
// changes how many slots there are, not who deserves them.
func (a *adaptive) Select(env Env, k int, out []*deptree.WindowVersion) []*deptree.WindowVersion {
	return env.Tree.TopK(k, env.Prob, env.Eligible, out)
}

func (a *adaptive) Tune(sig Signals) Decision {
	a.observe(sig)
	a.cycle++
	if a.cycle >= a.cfg.AdjustEvery {
		a.cycle = 0
		a.adjust(sig)
	}
	return Decision{Slots: a.slots, Spec: a.spec}
}

func (a *adaptive) observe(sig Signals) {
	util := 0.0
	if sig.SlotsActive > 0 {
		util = float64(sig.SlotsBusy) / float64(sig.SlotsActive)
	}
	a.utilEWMA += ewmaAlpha * (util - a.utilEWMA)
	a.demandEWMA += ewmaAlpha * (float64(sig.Selected) - a.demandEWMA)
}

func (a *adaptive) adjust(sig Signals) {
	// Degree of parallelism: more slots only help while there are both
	// eligible versions to fill them and CPUs to run them. On a shared
	// runtime the arbiter's per-shard grant replaces the whole-machine
	// Procs ceiling, so co-located queries split the processors.
	procs := a.cfg.Procs
	if a.cfg.Ctl != nil {
		if granted := a.cfg.Ctl.Procs(); granted > 0 {
			procs = granted
		}
	}
	hi := a.cfg.MaxSlots
	if procs < hi {
		hi = procs
	}
	if hi < a.cfg.MinSlots {
		hi = a.cfg.MinSlots
	}
	// The demand EWMA approaches the slot count asymptotically from
	// below when every slot is handed out each cycle; half a slot of
	// tolerance reads that as saturation.
	saturated := a.utilEWMA > growUtil && a.demandEWMA+0.5 >= float64(a.slots)
	pressured := sig.QueueDepth > 0 || sig.TreeSize > a.slots
	switch {
	case saturated && pressured && a.slots < hi:
		grown := a.slots * 2
		if grown > hi {
			grown = hi
		}
		a.slots = grown
	case a.utilEWMA < shrinkUtil || a.slots > hi:
		// Shrink toward observed demand, one halving at a time; idle
		// slots park and stop costing wake-ups.
		target := int(a.demandEWMA + 0.999)
		shrunk := (a.slots + 1) / 2
		if shrunk < target {
			shrunk = target
		}
		a.slots = clamp(shrunk, a.cfg.MinSlots, hi)
	}

	// Speculation budget: wasted speculation (rollback storms) and queue
	// overload both mean the tree is burning cycles the root chain
	// needs; degrade it multiplicatively and recover it multiplicatively
	// once the tree presses against the budget again while healthy.
	rolls := sig.Rollbacks - a.lastRollbacks
	a.lastRollbacks = sig.Rollbacks
	overloaded := sig.QueueCap > 0 && sig.QueueDepth*overloadDen > sig.QueueCap*overloadNum
	storm := int(rolls)*rollStormDen > a.cfg.AdjustEvery
	// A missed latency SLO is the same disease as queue overload: the
	// root chain is starved, so speculation must yield.
	lagOver := a.lagTarget > 0 && sig.EmitLagP99 > a.lagTarget
	switch {
	case storm || overloaded || lagOver:
		a.spec = clamp(a.spec/2, a.cfg.MinSpec, a.cfg.MaxSpec)
	case sig.TreeSize*4 >= a.spec*3:
		a.spec = clamp(a.spec*2, a.cfg.MinSpec, a.cfg.MaxSpec)
	}

	if a.cfg.Ctl != nil {
		a.cfg.Ctl.Report(a.demandEWMA, sig.EmitLagP99)
	}
}
