package cluster

// Protocol-2 codec coverage: round-trips for the compact frame bodies
// (events2, page, pageRefs, assign flags) and a fuzz target over every
// body decoder — corrupt input must come back as a structured error, no
// panics and no allocations disproportionate to the delivered bytes.

import (
	"reflect"
	"testing"

	"github.com/spectrecep/spectre/internal/event"
)

func ev(seq uint64, ts int64, ty event.Type, fields ...float64) event.Event {
	return event.Event{Seq: seq, TS: ts, Type: ty, Fields: fields}
}

// wantProjected rebuilds the dense field array a projected decode
// produces: proj columns kept, everything else zeroed.
func wantProjected(evs []event.Event, proj []int) []event.Event {
	width := 0
	for _, f := range proj {
		if f+1 > width {
			width = f + 1
		}
	}
	out := make([]event.Event, len(evs))
	for i, e := range evs {
		out[i] = e
		fields := make([]float64, width)
		for _, f := range proj {
			fields[f] = e.Field(f)
		}
		out[i].Fields = fields
	}
	return out
}

func TestEvents2RoundTrip(t *testing.T) {
	cases := []struct {
		name string
		msg  events2Msg
		want []event.Event // nil: expect msg.Events back unchanged
	}{
		{name: "empty", msg: events2Msg{Query: 7, Shard: 3}},
		{name: "contig", msg: events2Msg{Query: 1, Shard: 0, Events: []event.Event{
			ev(10, 100, 2, 1.5, -2.5),
			ev(11, 100, 2, 3.25),
			ev(12, 90, 4), // TS may go backwards: deltas are signed
		}}},
		{name: "sparse", msg: events2Msg{Query: 1, Shard: 2, Events: []event.Event{
			ev(0, 5, 1, 9),
			ev(7, 6, 1),
			ev(8, 1000, 3, 0.5),
			ev(40, 1001, 3),
		}}},
		{
			name: "projected",
			msg: events2Msg{Query: 9, Shard: 1, Proj: []int{0, 3}, Events: []event.Event{
				ev(5, 1, 2, 10, 20, 30, 40),
				ev(6, 2, 2, 11, 21), // short fields: Field(3) reads as 0
				ev(9, 3, 5),
			}},
			want: wantProjected([]event.Event{
				ev(5, 1, 2, 10, 20, 30, 40),
				ev(6, 2, 2, 11, 21),
				ev(9, 3, 5),
			}, []int{0, 3}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.msg.encode(nil)
			got, err := decodeEvents2(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Query != tc.msg.Query || got.Shard != tc.msg.Shard {
				t.Fatalf("header (%d,%d) != (%d,%d)", got.Query, got.Shard, tc.msg.Query, tc.msg.Shard)
			}
			want := tc.want
			if want == nil {
				want = tc.msg.Events
			}
			if len(got.Events) != len(want) {
				t.Fatalf("%d events != %d", len(got.Events), len(want))
			}
			for i := range want {
				g, w := got.Events[i], want[i]
				if g.Seq != w.Seq || g.TS != w.TS || g.Type != w.Type {
					t.Fatalf("event %d header %+v != %+v", i, g, w)
				}
				if len(g.Fields) == 0 && len(w.Fields) == 0 {
					continue
				}
				if !reflect.DeepEqual(g.Fields, w.Fields) {
					t.Fatalf("event %d fields %v != %v", i, g.Fields, w.Fields)
				}
			}
		})
	}
}

func TestPageRoundTrip(t *testing.T) {
	m := pageMsg{PageID: 42, Refs: 3, Events: []event.Event{
		ev(0, 10, 1, 1, 2),
		ev(0, 11, 2),
		ev(0, -5, 3, 4),
	}}
	got, err := decodePage(m.encode(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.PageID != m.PageID || got.Refs != m.Refs || len(got.Events) != len(m.Events) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.Events {
		g, w := got.Events[i], m.Events[i]
		if g.TS != w.TS || g.Type != w.Type || (len(w.Fields) > 0 && !reflect.DeepEqual(g.Fields, w.Fields)) {
			t.Fatalf("event %d %+v != %+v", i, g, w)
		}
	}
}

func TestPageRefsRoundTrip(t *testing.T) {
	m := pageRefsMsg{
		Query: 3, Shard: 1, PageID: 42,
		Idx:  []uint32{0, 2, 3, 9},
		Seqs: []uint64{100, 101, 107, 108},
	}
	got, err := decodePageRefs(m.encode(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Query != m.Query || got.Shard != m.Shard || got.PageID != m.PageID ||
		!reflect.DeepEqual(got.Idx, m.Idx) || !reflect.DeepEqual(got.Seqs, m.Seqs) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, m)
	}
}

func TestAssignRoundTripBothProtos(t *testing.T) {
	m := assignMsg{
		Query: 2, Shard: 1, NShards: 4, EmitBase: 99,
		Name: "Q", Text: "QUERY Q ...", Snapshot: []byte{1, 2, 3},
		PreStamped: true,
	}
	for _, proto := range []uint32{1, 2} {
		got, err := decodeAssign(m.encode(nil, proto), proto)
		if err != nil {
			t.Fatalf("proto %d decode: %v", proto, err)
		}
		want := m
		if proto < 2 {
			want.PreStamped = false // flag does not exist on the v1 wire
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("proto %d: %+v != %+v", proto, got, want)
		}
	}
}

func TestDecodeEvents2Corrupt(t *testing.T) {
	base := events2Msg{Query: 1, Shard: 0, Events: []event.Event{
		ev(10, 100, 2, 1.5), ev(20, 101, 2, 2.5),
	}}
	valid := base.encode(nil)
	cases := map[string][]byte{
		"truncated":        valid[:len(valid)-3],
		"empty":            {},
		"trailing garbage": append(append([]byte{}, valid...), 0xFF),
		// count far beyond the bytes backing it
		"count overrun": {1, 0, 0, 0xFF, 0xFF, 0xFF, 0x07},
		// projected flag with a projection list longer than maxProjFields
		"proj overrun": {1, 0, ev2Projected, 1, 0xFF, 0xFF, 0x7F},
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeEvents2(b); err == nil {
				t.Fatalf("corrupt frame decoded without error")
			}
		})
	}
}

// FuzzDecodeFrame drives every cluster body decoder with arbitrary
// bytes: first byte selects the frame kind (and the negotiated proto for
// kindAssign), the rest is the body. Decoders must return structured
// errors — never panic — and the proportionality guards must keep
// allocations bounded by the input size.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{kindHello})
	f.Add(append([]byte{kindEvents},
		(&eventsMsg{Query: 1, Events: []event.Event{ev(0, 1, 2, 3)}}).encode(nil)...))
	f.Add(append([]byte{kindEvents2},
		(&events2Msg{Query: 1, Events: []event.Event{ev(5, 1, 2, 3), ev(9, 2, 2)}}).encode(nil)...))
	f.Add(append([]byte{kindEvents2},
		(&events2Msg{Query: 1, Proj: []int{1}, Events: []event.Event{ev(5, 1, 2, 3, 4)}}).encode(nil)...))
	f.Add(append([]byte{kindPage},
		(&pageMsg{PageID: 1, Refs: 2, Events: []event.Event{ev(0, 1, 2, 3)}}).encode(nil)...))
	f.Add(append([]byte{kindPageRefs},
		(&pageRefsMsg{Query: 1, PageID: 1, Idx: []uint32{0, 4}, Seqs: []uint64{7, 9}}).encode(nil)...))
	f.Add(append([]byte{kindAssign},
		(&assignMsg{Query: 1, NShards: 2, Text: "t", PreStamped: true}).encode(nil, 2)...))
	f.Add(append([]byte{kindHandoff},
		(&handoffMsg{Query: 1, Snapshot: []byte{1}}).encode(nil)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		kind, body := data[0], data[1:]
		if len(body) > 1<<20 {
			return
		}
		var err error
		switch kind {
		case kindHello:
			_, err = decodeHello(body)
		case kindWelcome:
			_, err = decodeWelcome(body)
		case kindTables:
			_, err = decodeTables(body)
		case kindAssign:
			// Exercise both negotiated framings.
			if _, e1 := decodeAssign(body, 1); e1 != nil {
				err = e1
			}
			_, err2 := decodeAssign(body, 2)
			if err2 != nil {
				err = err2
			}
		case kindReady:
			_, err = decodeReady(body)
		case kindEvents:
			var m eventsMsg
			m, err = decodeEvents(body)
			checkEventBudget(t, m.Events, len(body))
		case kindEvents2:
			var m eventsMsg
			m, err = decodeEvents2(body)
			checkEventBudget(t, m.Events, len(body))
			for i := 1; i < len(m.Events); i++ {
				if err == nil && m.Events[i].Seq <= m.Events[i-1].Seq {
					t.Fatalf("decoded seqs not strictly increasing: %d then %d",
						m.Events[i-1].Seq, m.Events[i].Seq)
				}
			}
		case kindPage:
			var m pageMsg
			m, err = decodePage(body)
			checkEventBudget(t, m.Events, len(body))
		case kindPageRefs:
			var m pageRefsMsg
			m, err = decodePageRefs(body)
			if err == nil {
				for _, ix := range m.Idx {
					if ix > maxWireCount {
						t.Fatalf("page index %d above maxWireCount", ix)
					}
				}
			}
		case kindEmit:
			_, err = decodeEmit(body)
		case kindProgress:
			_, err = decodeProgress(body)
		case kindClose, kindDrained, kindQuiesce, kindAbort:
			_, err = decodeShardMsg(body)
		case kindHandoff:
			_, err = decodeHandoff(body)
		case kindError:
			_, err = decodeError(body)
		default:
			return
		}
		_ = err // corrupt input legitimately errors; panics are the failure mode
	})
}

// checkEventBudget asserts the proportionality guards: a successful
// decode must not have produced more payload floats than the dense
// projection budget allows, nor more events than the body has bytes.
func checkEventBudget(t *testing.T, evs []event.Event, bodyLen int) {
	total := 0
	for i := range evs {
		total += len(evs[i].Fields)
	}
	if total > maxFrameFloats {
		t.Fatalf("decoded %d floats exceeds maxFrameFloats from %dB frame", total, bodyLen)
	}
	if len(evs) > bodyLen {
		t.Fatalf("decoded %d events from %dB frame", len(evs), bodyLen)
	}
}

func TestFrameOverheadMatchesTransport(t *testing.T) {
	// frameOverhead mirrors internal/transport framing: 4B length + 4B
	// CRC + 1B kind. Guard against drift with a literal check.
	if frameOverhead != 4+4+1 {
		t.Fatalf("frameOverhead %d != 9", frameOverhead)
	}
}
