package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/plan"
	"github.com/spectrecep/spectre/internal/transport"
)

// Options parameterizes a Coordinator.
type Options struct {
	// MinWorkers makes Submit block until at least this many workers have
	// joined (default 1).
	MinWorkers int
	// BatchEvents is the initial per-shard event batch size on a worker
	// link (default 256): the pump coalesces this many routed events into
	// one frame before shipping. Each link's batch then adapts within
	// [BatchMin, BatchMax] — growing while the link keeps shipping full
	// batches, shrinking when the link owns the shard that holds back a
	// query's ordered-merge head — unless StaticBatch pins it.
	BatchEvents int
	// BatchMin and BatchMax bound the adaptive batch size (defaults 64
	// and 4096).
	BatchMin int
	BatchMax int
	// StaticBatch disables the adaptive controller: every link keeps
	// BatchEvents for its lifetime.
	StaticBatch bool
	// DisablePushdown turns off coordinator-side plan pushdown: every
	// routed event ships to its shard owner even when the query's intake
	// prefilter proves it irrelevant.
	DisablePushdown bool
	// MaxProto caps the negotiated wire protocol version (default: the
	// newest this build speaks). Tests use it to exercise the v1
	// compatibility path.
	MaxProto int
	// FlushInterval bounds how long a partial batch may sit staged before
	// it is shipped anyway (default 2ms).
	FlushInterval time.Duration
	// Heartbeat is the idle keepalive interval (default 2s); a link is
	// declared dead after linkTimeoutFactor missed beats.
	Heartbeat time.Duration
	// Logf receives coordinator lifecycle logs (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.MinWorkers <= 0 {
		o.MinWorkers = 1
	}
	if o.BatchEvents <= 0 {
		o.BatchEvents = 256
	}
	if o.BatchMin <= 0 {
		o.BatchMin = 64
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 4096
	}
	if o.BatchMax < o.BatchMin {
		o.BatchMax = o.BatchMin
	}
	if o.BatchEvents < o.BatchMin {
		o.BatchEvents = o.BatchMin
	}
	if o.BatchEvents > o.BatchMax {
		o.BatchEvents = o.BatchMax
	}
	if o.MaxProto <= 0 || o.MaxProto > protoVersion {
		o.MaxProto = protoVersion
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Coordinator accepts worker links, owns the shard placement table of
// every submitted query, pumps routed events to shard owners and merges
// the returned emission streams into sequential-equivalent order
// (DESIGN.md §12).
//
// One mutex guards all placement and merge state. Frame writes never
// happen under it: each link has an unbounded outbound queue drained by a
// writer goroutine, so a stalled worker can never deadlock the feed path
// against the emission readers (the queue's memory is bounded by the
// retained-event buffers, which the coordinator keeps anyway for
// replay-on-reassignment).
type Coordinator struct {
	reg  *event.Registry
	opts Options
	ln   net.Listener

	mu         sync.Mutex
	workers    map[uint32]*workerLink
	queries    map[uint32]*queryState
	nextWorker uint32
	nextQuery  uint32
	closed     bool
	membership chan struct{} // closed+replaced on every join/leave
	// encBuf is the shared frame-body encode scratch (c.mu): enqueue
	// copies the body into a pooled frame buffer synchronously, so one
	// scratch serves every pump.
	encBuf []byte
	ticks  int // flusher ticks since the last batch-controller pass

	wg sync.WaitGroup
}

// workerLink is one joined worker connection.
type workerLink struct {
	id       uint32
	name     string
	capacity int
	proto    uint32 // negotiated wire protocol version
	conn     net.Conn

	// Outbound frame queue (qmu): encoded frames in send order.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   [][]byte
	qclosed bool

	// Coordinator-mutex guarded placement state.
	load                  int
	gone                  bool
	typesSent, fieldsSent int
	// batch is the link's adaptive event batch size; fullSends counts
	// full batches shipped since the controller's last pass.
	batch     int
	fullSends int
	// pageSeq numbers shared-stream pages; stage holds the events and
	// per-shard reference lists accumulated since the last page flush.
	pageSeq uint64
	stage   *pageStage

	// Transport counters (atomic: writeLoop and readLink update them
	// outside c.mu).
	bytesSent     atomic.Uint64
	bytesRecv     atomic.Uint64
	framesSent    atomic.Uint64
	framesRecv    atomic.Uint64
	eventsSent    atomic.Uint64
	eventsDeduped atomic.Uint64
}

// framePool recycles encoded outbound frame buffers: enqueue draws from
// it, writeLoop returns each buffer after the connection write.
var framePool = sync.Pool{New: func() any { return []byte(nil) }}

// LinkStats is a point-in-time snapshot of one worker link's transport
// counters (Coordinator.Stats).
type LinkStats struct {
	WorkerID      uint32
	Name          string
	Proto         uint32
	Batch         int
	Shards        int
	BytesSent     uint64
	BytesRecv     uint64
	FramesSent    uint64
	FramesRecv    uint64
	EventsSent    uint64
	EventsDeduped uint64
}

// Stats snapshots every live worker link's transport counters, ordered
// by worker id.
func (c *Coordinator) Stats() []LinkStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LinkStats, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, LinkStats{
			WorkerID:      w.id,
			Name:          w.name,
			Proto:         w.proto,
			Batch:         w.batch,
			Shards:        w.load,
			BytesSent:     w.bytesSent.Load(),
			BytesRecv:     w.bytesRecv.Load(),
			FramesSent:    w.framesSent.Load(),
			FramesRecv:    w.framesRecv.Load(),
			EventsSent:    w.eventsSent.Load(),
			EventsDeduped: w.eventsDeduped.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkerID < out[j].WorkerID })
	return out
}

// queryState is one submitted query's distributed execution.
type queryState struct {
	id      uint32
	name    string
	text    string
	nShards int
	route   func(*event.Event) int
	merge   *orderedMerge
	shards  []*shardRun
	emit    func(event.Complex)
	onDrain func()

	// preStamped marks the query as running in pre-stamped mode: workers
	// trust the wire-carried raw sequence numbers instead of re-stamping
	// at intake, which is what lets the coordinator drop (pushdown) or
	// page-share events. Pre-stamped shards only run on proto ≥ 2 links.
	preStamped bool
	// admit is the plan's intake prefilter when pushdown is on (nil
	// otherwise): events it rejects spend their raw position but are
	// never retained, encoded or shipped.
	admit func(*event.Event) bool
	// proj, when projected, lists the payload field indexes any query
	// predicate can read; proto ≥ 2 links ship only those columns.
	proj      []int
	projected bool
	// stream, when non-nil, is the shared source this query is fed
	// through (Stream.FeedBatch); direct handle feeds are rejected.
	stream *Stream
	// filtered counts events dropped by pushdown.
	filtered uint64

	closing  bool
	drained  int
	finished bool
	failure  error
	done     chan struct{}
}

// shardRun is the coordinator-side state of one placed shard.
type shardRun struct {
	owner     *workerLink // nil while unassigned
	ready     bool        // assignment acknowledged; the pump may send
	quiescing bool        // quiesce sent, handoff pending
	target    *workerLink // preferred owner once the handoff lands

	// routed counts every event routed to this shard — dropped ones
	// included — so raw substream positions stay dense in the merge's
	// gpos table while retained stays sparse under pushdown.
	routed uint64
	// retained buffers every admitted event from base onward, each
	// stamped with its raw position in Seq; it is the replay source for
	// crash reassignment and is truncated only when a ready frame proves
	// the new owner's WAL journal covers the prefix.
	retained []event.Event
	// base is the raw-position floor of retained: every retained event
	// has Seq ≥ base, and resume positions below it are protocol errors.
	base uint64
	// sent indexes the next unsent retained event.
	sent int
	// gen increments on every assignment and prune; staged shared-stream
	// reference lists are valid only for the generation they were built
	// in.
	gen uint64

	// accepted counts accepted emissions (the ordinal dedupe cursor R[s]).
	accepted uint64
	// snap/snapW hold the latest handed-off WAL snapshot and its emission
	// watermark; reassignments seed from them.
	snap  []byte
	snapW uint64

	closeSent bool
	drained   bool
}

// Submission describes one query to distribute. The caller resolves the
// partition route against the same registry the coordinator encodes
// events with.
type Submission struct {
	Name    string
	Text    string
	NShards int
	Route   func(*event.Event) int
	Emit    func(event.Complex)
	OnDrain func()
	// Stream attaches the query to a shared source (OpenStream): it is
	// then fed exclusively through Stream.FeedBatch, and workers running
	// shards of several attached queries receive each source event once.
	Stream *Stream
}

// Listen starts a coordinator on addr.
func Listen(addr string, reg *event.Registry, opts Options) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, &Error{Op: "listen", Addr: addr, Err: err}
	}
	return NewCoordinator(ln, reg, opts), nil
}

// NewCoordinator starts a coordinator on an existing listener.
func NewCoordinator(ln net.Listener, reg *event.Registry, opts Options) *Coordinator {
	opts.setDefaults()
	c := &Coordinator{
		reg:        reg,
		opts:       opts,
		ln:         ln,
		workers:    make(map[uint32]*workerLink),
		queries:    make(map[uint32]*queryState),
		membership: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.accept()
	go c.flusher()
	return c
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Workers reports how many workers are currently joined.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitWorkers blocks until at least n workers are joined.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		have := len(c.workers)
		ch := c.membership
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// signalMembership wakes WaitWorkers waiters (c.mu held).
func (c *Coordinator) signalMembership() {
	close(c.membership)
	c.membership = make(chan struct{})
}

// Close stops accepting, drops every worker link and fails every
// unfinished query with ErrClosed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	links := make([]*workerLink, 0, len(c.workers))
	for _, w := range c.workers {
		links = append(links, w)
	}
	queries := make([]*queryState, 0, len(c.queries))
	for _, q := range c.queries {
		queries = append(queries, q)
	}
	c.queries = map[uint32]*queryState{}
	c.signalMembership()
	c.mu.Unlock()

	err := c.ln.Close()
	for _, w := range links {
		w.closeQueue()
		_ = w.conn.Close()
	}
	c.mu.Lock()
	for _, q := range queries {
		if !q.finished {
			q.finished = true
			q.failure = ErrClosed
			close(q.done)
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

// --- worker links -------------------------------------------------------

func (c *Coordinator) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handshake(conn)
		}()
	}
}

// handshake validates one joining worker and registers its link.
func (c *Coordinator) handshake(conn net.Conn) {
	deadline := time.Now().Add(10 * time.Second)
	_ = conn.SetDeadline(deadline)
	kind, body, err := transport.ReadFrame(conn, nil)
	if err != nil || kind != kindHello {
		_ = conn.Close()
		return
	}
	hello, err := decodeHello(body)
	if err != nil {
		_ = conn.Close()
		return
	}
	// Negotiate down to the newest version both sides speak: the worker
	// advertises its maximum, the coordinator answers with the chosen
	// version and every frame on the link follows it.
	chosen := min(hello.Proto, uint32(c.opts.MaxProto))
	if chosen < minProtoVersion {
		msg := errorMsg{Msg: fmt.Sprintf("protocol mismatch: coordinator speaks v%d..v%d, worker v%d", minProtoVersion, c.opts.MaxProto, hello.Proto)}
		_ = transport.WriteFrame(conn, kindError, msg.encode(nil))
		_ = conn.Close()
		return
	}
	w := &workerLink{
		name:     hello.Name,
		capacity: int(hello.Capacity),
		proto:    chosen,
		batch:    c.opts.BatchEvents,
		conn:     conn,
	}
	if w.capacity <= 0 {
		w.capacity = 1
	}
	if w.name == "" {
		w.name = conn.RemoteAddr().String()
	}
	w.qcond = sync.NewCond(&w.qmu)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return
	}
	c.nextWorker++
	w.id = c.nextWorker
	c.workers[w.id] = w
	c.mu.Unlock()

	welcome := welcomeMsg{Proto: w.proto, WorkerID: w.id}
	if err := transport.WriteFrame(conn, kindWelcome, welcome.encode(nil)); err != nil {
		c.mu.Lock()
		delete(c.workers, w.id)
		c.mu.Unlock()
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.opts.Logf("cluster: worker %d (%s) joined, capacity %d, proto v%d", w.id, w.name, w.capacity, w.proto)

	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		w.writeLoop()
	}()
	go func() {
		defer c.wg.Done()
		c.heartbeatLink(w)
	}()

	c.mu.Lock()
	c.placePending(w)
	c.rebalance(w)
	c.signalMembership()
	c.mu.Unlock()

	c.readLink(w)
}

// enqueue stages one encoded frame on the link's outbound queue. The
// body is copied into a pooled frame buffer immediately, so callers may
// reuse their encode scratch.
func (w *workerLink) enqueue(kind byte, body []byte) {
	buf, _ := framePool.Get().([]byte)
	frame, err := transport.AppendFrame(buf[:0], kind, body)
	if err != nil {
		framePool.Put(frame) //nolint:staticcheck // same backing array
		return
	}
	w.qmu.Lock()
	if !w.qclosed {
		w.queue = append(w.queue, frame)
		w.qcond.Signal()
	}
	w.qmu.Unlock()
}

func (w *workerLink) closeQueue() {
	w.qmu.Lock()
	w.qclosed = true
	w.qcond.Signal()
	w.qmu.Unlock()
}

// writeLoop drains the outbound queue onto the connection.
func (w *workerLink) writeLoop() {
	for {
		w.qmu.Lock()
		for len(w.queue) == 0 && !w.qclosed {
			w.qcond.Wait()
		}
		if w.qclosed && len(w.queue) == 0 {
			w.qmu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.qmu.Unlock()
		for _, frame := range batch {
			if _, err := w.conn.Write(frame); err != nil {
				// The read side observes the broken link and runs the
				// teardown; here we only stop draining.
				w.closeQueue()
				return
			}
			w.bytesSent.Add(uint64(len(frame)))
			w.framesSent.Add(1)
			framePool.Put(frame) //nolint:staticcheck // recycled via Get
		}
	}
}

// heartbeatLink keeps the link alive while no data flows.
func (c *Coordinator) heartbeatLink(w *workerLink) {
	t := time.NewTicker(c.opts.Heartbeat)
	defer t.Stop()
	for range t.C {
		w.qmu.Lock()
		closed := w.qclosed
		w.qmu.Unlock()
		if closed {
			return
		}
		w.enqueue(kindHeartbeat, nil)
	}
}

// readLink is the per-link reader; any error tears the worker down and
// reassigns its shards.
func (c *Coordinator) readLink(w *workerLink) {
	var scratch []byte
	for {
		_ = w.conn.SetReadDeadline(time.Now().Add(linkTimeoutFactor * c.opts.Heartbeat))
		kind, body, err := transport.ReadFrame(w.conn, scratch)
		if err != nil {
			c.workerLost(w, err)
			return
		}
		w.bytesRecv.Add(uint64(frameOverhead + len(body)))
		w.framesRecv.Add(1)
		scratch = body[:0]
		if err := c.dispatch(w, kind, body); err != nil {
			c.opts.Logf("cluster: worker %d (%s): %v", w.id, w.name, err)
			c.workerLost(w, err)
			return
		}
	}
}

func (c *Coordinator) dispatch(w *workerLink, kind byte, body []byte) error {
	switch kind {
	case kindHeartbeat:
		return nil
	case kindReady:
		m, err := decodeReady(body)
		if err != nil {
			return err
		}
		return c.handleReady(w, &m)
	case kindEmit:
		m, err := decodeEmit(body)
		if err != nil {
			return err
		}
		return c.handleEmit(w, &m)
	case kindProgress:
		m, err := decodeProgress(body)
		if err != nil {
			return err
		}
		c.handleProgress(w, &m)
		return nil
	case kindHandoff:
		m, err := decodeHandoff(body)
		if err != nil {
			return err
		}
		c.handleHandoff(w, &m)
		return nil
	case kindDrained:
		m, err := decodeShardMsg(body)
		if err != nil {
			return err
		}
		c.handleDrained(w, &m)
		return nil
	case kindError:
		m, err := decodeError(body)
		if err != nil {
			return err
		}
		return fmt.Errorf("worker reported: %s", m.Msg)
	default:
		return fmt.Errorf("unexpected frame kind %d", kind)
	}
}

// workerLost removes a dead link and reassigns everything it owned.
func (c *Coordinator) workerLost(w *workerLink, cause error) {
	w.closeQueue()
	_ = w.conn.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.gone {
		return
	}
	w.gone = true
	delete(c.workers, w.id)
	if !c.closed {
		c.opts.Logf("cluster: worker %d (%s) lost: %v", w.id, w.name, cause)
	}
	for _, q := range c.queries {
		for idx, s := range q.shards {
			if s.target == w {
				s.target = nil // the reservation died with the worker
			}
			if s.owner != w || s.drained {
				continue
			}
			s.owner = nil
			s.ready = false
			s.closeSent = false
			if s.quiescing {
				// The handoff will never arrive; release the migration
				// reservation and fall back to the crash path (stored
				// snapshot + retained replay).
				s.quiescing = false
				if s.target != nil {
					s.target.load--
					s.target = nil
				}
			}
			if next := c.pickWorkerFor(q); next != nil {
				c.assignShard(q, idx, next)
			}
		}
	}
	c.signalMembership()
}

// --- placement ----------------------------------------------------------

// pickWorker returns the least-loaded live worker with spare capacity
// (c.mu held).
func (c *Coordinator) pickWorker() *workerLink {
	var best *workerLink
	for _, w := range c.workers {
		if w.gone || w.load >= w.capacity {
			continue
		}
		if best == nil || w.load < best.load || (w.load == best.load && w.id < best.id) {
			best = w
		}
	}
	return best
}

// eligible reports whether w may own shards of q: pre-stamped queries
// (pushdown or shared-stream) need the v2 frame grammar, so they are
// pinned to proto ≥ 2 links (c.mu held).
func (q *queryState) eligible(w *workerLink) bool {
	return !q.preStamped || w.proto >= 2
}

// pickWorkerFor returns the best live worker for a shard of q: eligible
// links only, preferring — for shared-stream queries — the worker that
// already owns the most shards of the stream's other queries (so pages
// dedup across them), then least load (c.mu held).
func (c *Coordinator) pickWorkerFor(q *queryState) *workerLink {
	shared := map[*workerLink]int{}
	if q.stream != nil {
		for _, sq := range q.stream.queries {
			for _, s := range sq.shards {
				if s.owner != nil {
					shared[s.owner]++
				}
			}
		}
	}
	var best *workerLink
	for _, w := range c.workers {
		if w.gone || w.load >= w.capacity || !q.eligible(w) {
			continue
		}
		switch {
		case best == nil,
			shared[w] > shared[best],
			shared[w] == shared[best] && w.load < best.load,
			shared[w] == shared[best] && w.load == best.load && w.id < best.id:
			best = w
		}
	}
	return best
}

// placePending assigns every unowned shard (c.mu held).
func (c *Coordinator) placePending(_ *workerLink) {
	for _, q := range c.queries {
		for idx, s := range q.shards {
			if s.owner != nil || s.drained || s.quiescing {
				continue
			}
			next := c.pickWorkerFor(q)
			if next == nil {
				continue
			}
			c.assignShard(q, idx, next)
		}
	}
}

// rebalance migrates shards toward a newly joined worker until no worker
// runs more than one shard above another (c.mu held). Migration is a
// graceful handoff: quiesce on the old owner, WAL snapshot in flight,
// resume on the target.
func (c *Coordinator) rebalance(target *workerLink) {
	for _, q := range c.queries {
		if !q.eligible(target) {
			continue
		}
		for {
			if target.load >= target.capacity {
				return
			}
			var max *workerLink
			var maxIdx int
			// Count per-query ownership — balance each query's shards, not
			// just the global load, so one query's pipeline parallelism
			// actually grows when the fleet does. In-flight migrations
			// count toward their target, or the same imbalance would be
			// seen again and every shard would migrate.
			owned := make(map[*workerLink]int)
			for _, s := range q.shards {
				switch {
				case s.quiescing && s.target != nil:
					owned[s.target]++
				case s.owner != nil:
					owned[s.owner]++
				}
			}
			for idx, s := range q.shards {
				if s.owner == nil || s.owner == target || !s.ready ||
					s.quiescing || s.drained || s.closeSent {
					continue
				}
				if owned[s.owner] > owned[target]+1 {
					if max == nil || owned[s.owner] > owned[max] {
						max, maxIdx = s.owner, idx
					}
				}
			}
			if max == nil {
				break
			}
			s := q.shards[maxIdx]
			s.quiescing = true
			s.target = target
			target.load++ // reserve the slot so placement stays stable
			c.opts.Logf("cluster: migrating %s shard %d: worker %d -> %d", q.name, maxIdx, max.id, target.id)
			max.enqueue(kindQuiesce, (&shardMsg{Query: q.id, Shard: uint32(maxIdx)}).encode(nil))
		}
	}
}

// ensureTables re-announces the registry name tables to a link when they
// grew past what it has seen (c.mu held; ordered before the frames that
// need them by the link queue's FIFO).
func (c *Coordinator) ensureTables(w *workerLink) {
	nt, nf := c.reg.NumTypes(), c.reg.NumFields()
	if nt <= w.typesSent && nf <= w.fieldsSent {
		return
	}
	m := tablesMsg{Types: make([]string, 0, nt), Fields: make([]string, 0, nf)}
	for i := 1; i <= nt; i++ {
		m.Types = append(m.Types, c.reg.TypeName(event.Type(i)))
	}
	for i := 0; i < nf; i++ {
		m.Fields = append(m.Fields, c.reg.FieldName(i))
	}
	w.enqueue(kindTables, m.encode(nil))
	w.typesSent, w.fieldsSent = nt, nf
}

// assignShard hands shard idx of q to w (c.mu held). The snapshot rides
// along; emissions of the new life start at the snapshot watermark.
func (c *Coordinator) assignShard(q *queryState, idx int, w *workerLink) {
	s := q.shards[idx]
	s.owner = w
	s.ready = false
	s.closeSent = false
	s.gen++
	if s.target == w {
		s.target = nil
	} else {
		w.load++
	}
	c.ensureTables(w)
	m := assignMsg{
		Query:      q.id,
		Shard:      uint32(idx),
		NShards:    uint32(q.nShards),
		EmitBase:   s.snapW,
		Name:       q.name,
		Text:       q.text,
		Snapshot:   s.snap,
		PreStamped: q.preStamped,
	}
	w.enqueue(kindAssign, m.encode(nil, w.proto))
}

// pump ships retained events to the shard's owner: full batches always,
// the partial tail only when force is set (flusher tick, close, ready
// catch-up). Proto ≥ 2 links get the compact columnar frame — delta
// sequence numbers (sparse under pushdown) and projected fields; v1
// links get the fixed-width grammar, which is only ever legal for
// non-pre-stamped queries (contiguous positions the worker re-stamps).
// Must run with c.mu held.
func (c *Coordinator) pump(q *queryState, idx int, force bool) {
	s := q.shards[idx]
	if s.owner == nil || !s.ready || s.quiescing || s.drained {
		return
	}
	w := s.owner
	batch := w.batch
	for {
		avail := len(s.retained) - s.sent
		if avail == 0 || (!force && avail < batch) {
			break
		}
		n := min(avail, batch)
		evs := s.retained[s.sent : s.sent+n]
		c.ensureTables(w)
		if w.proto >= 2 {
			m := events2Msg{Query: q.id, Shard: uint32(idx), Events: evs}
			if q.projected {
				m.Proj = q.proj
			}
			c.encBuf = m.encode(c.encBuf[:0])
			w.enqueue(kindEvents2, c.encBuf)
		} else {
			m := eventsMsg{Query: q.id, Shard: uint32(idx), Events: evs}
			c.encBuf = m.encode(c.encBuf[:0])
			w.enqueue(kindEvents, c.encBuf)
		}
		w.eventsSent.Add(uint64(n))
		if n == batch {
			w.fullSends++
		}
		s.sent += n
	}
	if q.closing && !s.closeSent && s.sent == len(s.retained) {
		w.enqueue(kindClose, (&shardMsg{Query: q.id, Shard: uint32(idx)}).encode(nil))
		s.closeSent = true
	}
}

// controllerTicks is how many flusher ticks pass between adaptive batch
// controller runs, and fullSendGrow how many full batches a link must
// ship in that span before its batch doubles.
const (
	controllerTicks = 8
	fullSendGrow    = 4
)

// adjustBatches is the adaptive batch controller (c.mu held): a link
// that kept shipping full batches is throughput-bound and doubles its
// batch (fewer frames per event); a link owning the shard that currently
// holds back a query's ordered-merge head halves it (smaller batches
// mean fresher progress watermarks and a faster-released merge).
func (c *Coordinator) adjustBatches() {
	shrunk := map[*workerLink]bool{}
	for _, q := range c.queries {
		if b := q.merge.blocker(); b >= 0 {
			if w := q.shards[b].owner; w != nil && !shrunk[w] {
				shrunk[w] = true
				w.batch = max(w.batch/2, c.opts.BatchMin)
			}
		}
	}
	for _, w := range c.workers {
		if !shrunk[w] && w.fullSends >= fullSendGrow {
			w.batch = min(w.batch*2, c.opts.BatchMax)
		}
		w.fullSends = 0
	}
}

// flusher periodically flushes staged shared-stream pages, force-pumps
// partial batches so a trickling stream still makes progress, and runs
// the adaptive batch controller every controllerTicks intervals.
func (c *Coordinator) flusher() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.FlushInterval)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		for _, w := range c.workers {
			c.flushStage(w)
		}
		for _, q := range c.queries {
			for idx := range q.shards {
				c.pump(q, idx, true)
			}
		}
		if c.ticks++; c.ticks >= controllerTicks && !c.opts.StaticBatch {
			c.ticks = 0
			c.adjustBatches()
		}
		c.mu.Unlock()
	}
}

// --- worker frame handlers ----------------------------------------------

// lookupShard resolves a worker frame to its shard, returning nil when the
// frame is stale (query finished, shard reassigned).
func (c *Coordinator) lookupShard(w *workerLink, query, shard uint32) (*queryState, *shardRun) {
	q := c.queries[query]
	if q == nil || int(shard) >= len(q.shards) {
		return nil, nil
	}
	s := q.shards[shard]
	if s.owner != w {
		return nil, nil
	}
	return q, s
}

// handleReady records a recovered shard and catches its owner up. The
// reported resume position proves the owner's WAL journal covers every
// earlier event, so the retained prefix below it is dropped. Resume is a
// raw substream position: under pushdown it may fall in a gap of dropped
// events, so the prune finds the first retained event at or past it.
func (c *Coordinator) handleReady(w *workerLink, m *readyMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return nil
	}
	if m.Resume < s.base || m.Resume > s.routed {
		return fmt.Errorf("shard %s/%d: resume %d outside retained [%d, %d]", q.name, m.Shard, m.Resume, s.base, s.routed)
	}
	drop := sort.Search(len(s.retained), func(i int) bool { return s.retained[i].Seq >= m.Resume })
	if drop > 0 {
		s.retained = append([]event.Event(nil), s.retained[drop:]...)
	}
	s.base = m.Resume
	s.sent = 0
	s.gen++
	s.ready = true
	c.pump(q, int(m.Shard), q.closing)
	// A shard that was not ready at the last membership change was not a
	// migration candidate then; retry toward the least-loaded worker now.
	if next := c.pickWorker(); next != nil {
		c.rebalance(next)
	}
	return nil
}

// handleEmit accepts one match. The ordinal is the global per-shard
// emission number; anything below the accept cursor is a deterministic
// replay duplicate and is dropped, anything above is a protocol gap.
func (c *Coordinator) handleEmit(w *workerLink, m *emitMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return nil
	}
	if m.Ordinal < s.accepted {
		return nil // replay duplicate; identical by §4.2 determinism
	}
	if m.Ordinal > s.accepted {
		return fmt.Errorf("shard %s/%d: emission ordinal %d skips cursor %d", q.name, m.Shard, m.Ordinal, s.accepted)
	}
	if !q.merge.emit(int(m.Shard), m.Match) {
		return fmt.Errorf("shard %s/%d: match detected at %d beyond routed events", q.name, m.Shard, m.Match.DetectedAt)
	}
	s.accepted++
	q.merge.release()
	return nil
}

// handleProgress advances the shard's root-window bound in the merge.
func (c *Coordinator) handleProgress(w *workerLink, m *progressMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, _ := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return
	}
	q.merge.progress(int(m.Shard), m.Boundary)
	q.merge.release()
}

// handleHandoff installs the parked shard's WAL snapshot and re-places it.
func (c *Coordinator) handleHandoff(w *workerLink, m *handoffMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return
	}
	s.snap = m.Snapshot
	s.snapW = m.Watermark
	if m.Watermark != s.accepted {
		// Frames are FIFO per link, so a graceful handoff watermark always
		// equals the accept cursor; log the impossible, then trust the
		// ordinal dedupe to absorb it.
		c.opts.Logf("cluster: handoff watermark %d != accepted %d for %s/%d", m.Watermark, s.accepted, q.name, m.Shard)
	}
	w.load--
	s.owner = nil
	s.ready = false
	s.quiescing = false
	next := s.target
	if next != nil && next.gone {
		// The reserved slot died with the worker; fall through to a fresh
		// pick below (workerLost already dropped the dangling target).
		next = nil
		s.target = nil
	}
	if next == nil {
		next = c.pickWorkerFor(q)
		if next == nil {
			return // re-placed when the next worker joins
		}
		next.load++ // consumed by the s.target branch in assignShard
		s.target = next
	}
	c.assignShard(q, int(m.Shard), next)
}

// handleDrained finishes one shard's stream.
func (c *Coordinator) handleDrained(w *workerLink, m *shardMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil || s.drained {
		return
	}
	s.drained = true
	w.load--
	s.owner = nil
	q.merge.drained(int(m.Shard))
	q.merge.release()
	q.drained++
	if q.drained == q.nShards && !q.finished {
		q.finished = true
		delete(c.queries, q.id)
		close(q.done)
		if q.onDrain != nil {
			q.onDrain()
		}
	}
}

// --- submission ---------------------------------------------------------

// Submit distributes one query. It blocks until Options.MinWorkers
// workers are joined (bounded by ctx), then places one shard per
// least-loaded worker. Emissions are delivered on coordinator reader
// goroutines in the deterministic merged order; the Emit callback must
// not call back into the handle synchronously.
func (c *Coordinator) Submit(ctx context.Context, sub Submission) (*QueryHandle, error) {
	if sub.NShards <= 0 || sub.Route == nil && sub.NShards > 1 {
		return nil, fmt.Errorf("cluster: submission needs NShards >= 1 and a route for NShards > 1")
	}
	if sub.Name == "" || sub.Text == "" {
		return nil, fmt.Errorf("cluster: submission needs a query name and text")
	}
	if err := c.WaitWorkers(ctx, c.opts.MinWorkers); err != nil {
		if err == ErrClosed {
			return nil, err
		}
		return nil, &Error{Op: "submit", Err: err}
	}
	// Plan the query text against the shared registry: the same analysis
	// the workers run decides, coordinator-side, which events can be
	// dropped before framing (pushdown) and which payload fields any
	// predicate can read (projection).
	parsed, err := parser.Parse(sub.Text, c.reg)
	if err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", sub.Name, err)
	}
	pl := plan.New(parsed, plan.Options{Reg: c.reg})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.nextQuery++
	q := &queryState{
		id:      c.nextQuery,
		name:    sub.Name,
		text:    sub.Text,
		nShards: sub.NShards,
		route:   sub.Route,
		emit:    sub.Emit,
		onDrain: sub.OnDrain,
		stream:  sub.Stream,
		shards:  make([]*shardRun, sub.NShards),
		done:    make(chan struct{}),
	}
	// Pre-stamped mode needs at least one v2 worker to place shards on;
	// in an all-v1 fleet the query falls back to the classic full-ship
	// path (workers re-stamp contiguous positions), which stays portable
	// across every link.
	v2ok := false
	for _, w := range c.workers {
		if !w.gone && w.proto >= 2 {
			v2ok = true
			break
		}
	}
	pushdown := v2ok && pl.IntakeActive() && !c.opts.DisablePushdown
	q.preStamped = pushdown || (v2ok && sub.Stream != nil)
	if pushdown {
		q.admit = pl.Admit
	}
	q.proj, q.projected = pl.Projection()
	// The decoder's dense reconstruction caps field indexes at
	// maxProjIndex; a plan reading a field beyond it (absurdly wide
	// registry) ships full fields instead.
	for _, f := range q.proj {
		if f >= maxProjIndex {
			q.proj, q.projected = nil, false
			break
		}
	}
	q.merge = newOrderedMerge(sub.NShards, func(m event.Complex) {
		if q.emit != nil {
			q.emit(m)
		}
	})
	for i := range q.shards {
		q.shards[i] = &shardRun{}
	}
	c.queries[q.id] = q
	if sub.Stream != nil {
		sub.Stream.queries = append(sub.Stream.queries, q)
	}
	for i := range q.shards {
		if w := c.pickWorkerFor(q); w != nil {
			c.assignShard(q, i, w)
		}
	}
	return &QueryHandle{c: c, q: q}, nil
}

// QueryHandle is the submitting node's feed/drain interface to one
// distributed query.
type QueryHandle struct {
	c *Coordinator
	q *queryState
}

// Feed routes one event.
func (h *QueryHandle) Feed(ev event.Event) error {
	return h.FeedBatch([]event.Event{ev})
}

// FeedBatch routes a batch of events. Events are retained until a worker
// WAL provably covers them, so feeding never blocks on worker liveness.
func (h *QueryHandle) FeedBatch(evs []event.Event) error {
	c, q := h.c, h.q
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.stream != nil {
		return fmt.Errorf("cluster: query %s is fed through its shared stream", q.name)
	}
	if q.closing || q.finished {
		return ErrClosed
	}
	for i := range evs {
		if _, _, err := c.routeOne(q, &evs[i], false); err != nil {
			return err
		}
	}
	return nil
}

// routeOne routes one event into q (c.mu held): every routed event
// spends a raw substream position (the merge's gpos table must stay
// complete), pushdown then decides whether it is retained at all, and
// survivors are stamped with that raw position in Seq. It returns the
// shard index and the retained index (-1 when dropped). deferPump
// suppresses the eager full-batch pump — the shared-stream feeder stages
// pages instead and flushes on its own cadence.
func (c *Coordinator) routeOne(q *queryState, ev *event.Event, deferPump bool) (int, int, error) {
	idx := 0
	if q.route != nil {
		idx = q.route(ev)
	}
	if idx < 0 || idx >= q.nShards {
		return 0, -1, fmt.Errorf("cluster: route returned shard %d of %d", idx, q.nShards)
	}
	s := q.shards[idx]
	local := q.merge.route(idx)
	if local != s.routed {
		return 0, -1, fmt.Errorf("cluster: shard %d position skew: merge %d, routed %d", idx, local, s.routed)
	}
	s.routed++
	if q.admit != nil && !q.admit(ev) {
		q.filtered++
		return idx, -1, nil
	}
	e := *ev
	e.Seq = local
	s.retained = append(s.retained, e)
	if !deferPump {
		threshold := c.opts.BatchEvents
		if s.owner != nil {
			threshold = s.owner.batch
		}
		if len(s.retained)-s.sent >= threshold {
			c.pump(q, idx, false)
		}
	}
	return idx, len(s.retained) - 1, nil
}

// Close ends the stream: every shard is flushed and closed, and Wait
// unblocks once all of them report drained.
func (h *QueryHandle) Close() {
	c, q := h.c, h.q
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.closing || q.finished {
		return
	}
	q.closing = true
	for idx := range q.shards {
		c.pump(q, idx, true)
	}
}

// Wait blocks until every shard drained (after Close) or the query fails.
func (h *QueryHandle) Wait(ctx context.Context) error {
	select {
	case <-h.q.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.q.failure
}
