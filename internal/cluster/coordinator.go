package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/transport"
)

// Options parameterizes a Coordinator.
type Options struct {
	// MinWorkers makes Submit block until at least this many workers have
	// joined (default 1).
	MinWorkers int
	// BatchEvents is the per-shard event batch size on a worker link
	// (default 256): the pump coalesces this many routed events into one
	// frame before shipping.
	BatchEvents int
	// FlushInterval bounds how long a partial batch may sit staged before
	// it is shipped anyway (default 2ms).
	FlushInterval time.Duration
	// Heartbeat is the idle keepalive interval (default 2s); a link is
	// declared dead after linkTimeoutFactor missed beats.
	Heartbeat time.Duration
	// Logf receives coordinator lifecycle logs (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.MinWorkers <= 0 {
		o.MinWorkers = 1
	}
	if o.BatchEvents <= 0 {
		o.BatchEvents = 256
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Coordinator accepts worker links, owns the shard placement table of
// every submitted query, pumps routed events to shard owners and merges
// the returned emission streams into sequential-equivalent order
// (DESIGN.md §12).
//
// One mutex guards all placement and merge state. Frame writes never
// happen under it: each link has an unbounded outbound queue drained by a
// writer goroutine, so a stalled worker can never deadlock the feed path
// against the emission readers (the queue's memory is bounded by the
// retained-event buffers, which the coordinator keeps anyway for
// replay-on-reassignment).
type Coordinator struct {
	reg  *event.Registry
	opts Options
	ln   net.Listener

	mu         sync.Mutex
	workers    map[uint32]*workerLink
	queries    map[uint32]*queryState
	nextWorker uint32
	nextQuery  uint32
	closed     bool
	membership chan struct{} // closed+replaced on every join/leave

	wg sync.WaitGroup
}

// workerLink is one joined worker connection.
type workerLink struct {
	id       uint32
	name     string
	capacity int
	conn     net.Conn

	// Outbound frame queue (qmu): encoded frames in send order.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   [][]byte
	qclosed bool

	// Coordinator-mutex guarded placement state.
	load                  int
	gone                  bool
	typesSent, fieldsSent int
}

// queryState is one submitted query's distributed execution.
type queryState struct {
	id      uint32
	name    string
	text    string
	nShards int
	route   func(*event.Event) int
	merge   *orderedMerge
	shards  []*shardRun
	emit    func(event.Complex)
	onDrain func()

	closing  bool
	drained  int
	finished bool
	failure  error
	done     chan struct{}
}

// shardRun is the coordinator-side state of one placed shard.
type shardRun struct {
	owner     *workerLink // nil while unassigned
	ready     bool        // assignment acknowledged; the pump may send
	quiescing bool        // quiesce sent, handoff pending
	target    *workerLink // preferred owner once the handoff lands

	// retained buffers every routed event from base onward; it is the
	// replay source for crash reassignment and is truncated only when a
	// ready frame proves the new owner's WAL journal covers the prefix.
	retained []event.Event
	base     uint64
	// nextSend is the next shard-local position to ship to the owner.
	nextSend uint64

	// accepted counts accepted emissions (the ordinal dedupe cursor R[s]).
	accepted uint64
	// snap/snapW hold the latest handed-off WAL snapshot and its emission
	// watermark; reassignments seed from them.
	snap  []byte
	snapW uint64

	closeSent bool
	drained   bool
}

func (s *shardRun) end() uint64 { return s.base + uint64(len(s.retained)) }

// Submission describes one query to distribute. The caller resolves the
// partition route against the same registry the coordinator encodes
// events with.
type Submission struct {
	Name    string
	Text    string
	NShards int
	Route   func(*event.Event) int
	Emit    func(event.Complex)
	OnDrain func()
}

// Listen starts a coordinator on addr.
func Listen(addr string, reg *event.Registry, opts Options) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, &Error{Op: "listen", Addr: addr, Err: err}
	}
	return NewCoordinator(ln, reg, opts), nil
}

// NewCoordinator starts a coordinator on an existing listener.
func NewCoordinator(ln net.Listener, reg *event.Registry, opts Options) *Coordinator {
	opts.setDefaults()
	c := &Coordinator{
		reg:        reg,
		opts:       opts,
		ln:         ln,
		workers:    make(map[uint32]*workerLink),
		queries:    make(map[uint32]*queryState),
		membership: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.accept()
	go c.flusher()
	return c
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Workers reports how many workers are currently joined.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitWorkers blocks until at least n workers are joined.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		have := len(c.workers)
		ch := c.membership
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// signalMembership wakes WaitWorkers waiters (c.mu held).
func (c *Coordinator) signalMembership() {
	close(c.membership)
	c.membership = make(chan struct{})
}

// Close stops accepting, drops every worker link and fails every
// unfinished query with ErrClosed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	links := make([]*workerLink, 0, len(c.workers))
	for _, w := range c.workers {
		links = append(links, w)
	}
	queries := make([]*queryState, 0, len(c.queries))
	for _, q := range c.queries {
		queries = append(queries, q)
	}
	c.queries = map[uint32]*queryState{}
	c.signalMembership()
	c.mu.Unlock()

	err := c.ln.Close()
	for _, w := range links {
		w.closeQueue()
		_ = w.conn.Close()
	}
	c.mu.Lock()
	for _, q := range queries {
		if !q.finished {
			q.finished = true
			q.failure = ErrClosed
			close(q.done)
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

// --- worker links -------------------------------------------------------

func (c *Coordinator) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handshake(conn)
		}()
	}
}

// handshake validates one joining worker and registers its link.
func (c *Coordinator) handshake(conn net.Conn) {
	deadline := time.Now().Add(10 * time.Second)
	_ = conn.SetDeadline(deadline)
	kind, body, err := transport.ReadFrame(conn, nil)
	if err != nil || kind != kindHello {
		_ = conn.Close()
		return
	}
	hello, err := decodeHello(body)
	if err != nil {
		_ = conn.Close()
		return
	}
	if hello.Proto != protoVersion {
		msg := errorMsg{Msg: fmt.Sprintf("protocol mismatch: coordinator speaks v%d, worker v%d", protoVersion, hello.Proto)}
		_ = transport.WriteFrame(conn, kindError, msg.encode(nil))
		_ = conn.Close()
		return
	}
	w := &workerLink{
		name:     hello.Name,
		capacity: int(hello.Capacity),
		conn:     conn,
	}
	if w.capacity <= 0 {
		w.capacity = 1
	}
	if w.name == "" {
		w.name = conn.RemoteAddr().String()
	}
	w.qcond = sync.NewCond(&w.qmu)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return
	}
	c.nextWorker++
	w.id = c.nextWorker
	c.workers[w.id] = w
	c.mu.Unlock()

	welcome := welcomeMsg{Proto: protoVersion, WorkerID: w.id}
	if err := transport.WriteFrame(conn, kindWelcome, welcome.encode(nil)); err != nil {
		c.mu.Lock()
		delete(c.workers, w.id)
		c.mu.Unlock()
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.opts.Logf("cluster: worker %d (%s) joined, capacity %d", w.id, w.name, w.capacity)

	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		w.writeLoop()
	}()
	go func() {
		defer c.wg.Done()
		c.heartbeatLink(w)
	}()

	c.mu.Lock()
	c.placePending(w)
	c.rebalance(w)
	c.signalMembership()
	c.mu.Unlock()

	c.readLink(w)
}

// enqueue stages one encoded frame on the link's outbound queue.
func (w *workerLink) enqueue(kind byte, body []byte) {
	frame, err := transport.AppendFrame(nil, kind, body)
	if err != nil {
		return
	}
	w.qmu.Lock()
	if !w.qclosed {
		w.queue = append(w.queue, frame)
		w.qcond.Signal()
	}
	w.qmu.Unlock()
}

func (w *workerLink) closeQueue() {
	w.qmu.Lock()
	w.qclosed = true
	w.qcond.Signal()
	w.qmu.Unlock()
}

// writeLoop drains the outbound queue onto the connection.
func (w *workerLink) writeLoop() {
	for {
		w.qmu.Lock()
		for len(w.queue) == 0 && !w.qclosed {
			w.qcond.Wait()
		}
		if w.qclosed && len(w.queue) == 0 {
			w.qmu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.qmu.Unlock()
		for _, frame := range batch {
			if _, err := w.conn.Write(frame); err != nil {
				// The read side observes the broken link and runs the
				// teardown; here we only stop draining.
				w.closeQueue()
				return
			}
		}
	}
}

// heartbeatLink keeps the link alive while no data flows.
func (c *Coordinator) heartbeatLink(w *workerLink) {
	t := time.NewTicker(c.opts.Heartbeat)
	defer t.Stop()
	for range t.C {
		w.qmu.Lock()
		closed := w.qclosed
		w.qmu.Unlock()
		if closed {
			return
		}
		w.enqueue(kindHeartbeat, nil)
	}
}

// readLink is the per-link reader; any error tears the worker down and
// reassigns its shards.
func (c *Coordinator) readLink(w *workerLink) {
	var scratch []byte
	for {
		_ = w.conn.SetReadDeadline(time.Now().Add(linkTimeoutFactor * c.opts.Heartbeat))
		kind, body, err := transport.ReadFrame(w.conn, scratch)
		if err != nil {
			c.workerLost(w, err)
			return
		}
		scratch = body[:0]
		if err := c.dispatch(w, kind, body); err != nil {
			c.opts.Logf("cluster: worker %d (%s): %v", w.id, w.name, err)
			c.workerLost(w, err)
			return
		}
	}
}

func (c *Coordinator) dispatch(w *workerLink, kind byte, body []byte) error {
	switch kind {
	case kindHeartbeat:
		return nil
	case kindReady:
		m, err := decodeReady(body)
		if err != nil {
			return err
		}
		return c.handleReady(w, &m)
	case kindEmit:
		m, err := decodeEmit(body)
		if err != nil {
			return err
		}
		return c.handleEmit(w, &m)
	case kindProgress:
		m, err := decodeProgress(body)
		if err != nil {
			return err
		}
		c.handleProgress(w, &m)
		return nil
	case kindHandoff:
		m, err := decodeHandoff(body)
		if err != nil {
			return err
		}
		c.handleHandoff(w, &m)
		return nil
	case kindDrained:
		m, err := decodeShardMsg(body)
		if err != nil {
			return err
		}
		c.handleDrained(w, &m)
		return nil
	case kindError:
		m, err := decodeError(body)
		if err != nil {
			return err
		}
		return fmt.Errorf("worker reported: %s", m.Msg)
	default:
		return fmt.Errorf("unexpected frame kind %d", kind)
	}
}

// workerLost removes a dead link and reassigns everything it owned.
func (c *Coordinator) workerLost(w *workerLink, cause error) {
	w.closeQueue()
	_ = w.conn.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.gone {
		return
	}
	w.gone = true
	delete(c.workers, w.id)
	if !c.closed {
		c.opts.Logf("cluster: worker %d (%s) lost: %v", w.id, w.name, cause)
	}
	for _, q := range c.queries {
		for idx, s := range q.shards {
			if s.target == w {
				s.target = nil // the reservation died with the worker
			}
			if s.owner != w || s.drained {
				continue
			}
			s.owner = nil
			s.ready = false
			s.closeSent = false
			if s.quiescing {
				// The handoff will never arrive; release the migration
				// reservation and fall back to the crash path (stored
				// snapshot + retained replay).
				s.quiescing = false
				if s.target != nil {
					s.target.load--
					s.target = nil
				}
			}
			if next := c.pickWorker(); next != nil {
				c.assignShard(q, idx, next)
			}
		}
	}
	c.signalMembership()
}

// --- placement ----------------------------------------------------------

// pickWorker returns the least-loaded live worker with spare capacity
// (c.mu held).
func (c *Coordinator) pickWorker() *workerLink {
	var best *workerLink
	for _, w := range c.workers {
		if w.gone || w.load >= w.capacity {
			continue
		}
		if best == nil || w.load < best.load || (w.load == best.load && w.id < best.id) {
			best = w
		}
	}
	return best
}

// placePending assigns every unowned shard, preferring the new worker
// (c.mu held).
func (c *Coordinator) placePending(_ *workerLink) {
	for _, q := range c.queries {
		for idx, s := range q.shards {
			if s.owner != nil || s.drained || s.quiescing {
				continue
			}
			next := c.pickWorker()
			if next == nil {
				return
			}
			c.assignShard(q, idx, next)
		}
	}
}

// rebalance migrates shards toward a newly joined worker until no worker
// runs more than one shard above another (c.mu held). Migration is a
// graceful handoff: quiesce on the old owner, WAL snapshot in flight,
// resume on the target.
func (c *Coordinator) rebalance(target *workerLink) {
	for _, q := range c.queries {
		for {
			if target.load >= target.capacity {
				return
			}
			var max *workerLink
			var maxIdx int
			// Count per-query ownership — balance each query's shards, not
			// just the global load, so one query's pipeline parallelism
			// actually grows when the fleet does. In-flight migrations
			// count toward their target, or the same imbalance would be
			// seen again and every shard would migrate.
			owned := make(map[*workerLink]int)
			for _, s := range q.shards {
				switch {
				case s.quiescing && s.target != nil:
					owned[s.target]++
				case s.owner != nil:
					owned[s.owner]++
				}
			}
			for idx, s := range q.shards {
				if s.owner == nil || s.owner == target || !s.ready ||
					s.quiescing || s.drained || s.closeSent {
					continue
				}
				if owned[s.owner] > owned[target]+1 {
					if max == nil || owned[s.owner] > owned[max] {
						max, maxIdx = s.owner, idx
					}
				}
			}
			if max == nil {
				break
			}
			s := q.shards[maxIdx]
			s.quiescing = true
			s.target = target
			target.load++ // reserve the slot so placement stays stable
			c.opts.Logf("cluster: migrating %s shard %d: worker %d -> %d", q.name, maxIdx, max.id, target.id)
			max.enqueue(kindQuiesce, (&shardMsg{Query: q.id, Shard: uint32(maxIdx)}).encode(nil))
		}
	}
}

// ensureTables re-announces the registry name tables to a link when they
// grew past what it has seen (c.mu held; ordered before the frames that
// need them by the link queue's FIFO).
func (c *Coordinator) ensureTables(w *workerLink) {
	nt, nf := c.reg.NumTypes(), c.reg.NumFields()
	if nt <= w.typesSent && nf <= w.fieldsSent {
		return
	}
	m := tablesMsg{Types: make([]string, 0, nt), Fields: make([]string, 0, nf)}
	for i := 1; i <= nt; i++ {
		m.Types = append(m.Types, c.reg.TypeName(event.Type(i)))
	}
	for i := 0; i < nf; i++ {
		m.Fields = append(m.Fields, c.reg.FieldName(i))
	}
	w.enqueue(kindTables, m.encode(nil))
	w.typesSent, w.fieldsSent = nt, nf
}

// assignShard hands shard idx of q to w (c.mu held). The snapshot rides
// along; emissions of the new life start at the snapshot watermark.
func (c *Coordinator) assignShard(q *queryState, idx int, w *workerLink) {
	s := q.shards[idx]
	s.owner = w
	s.ready = false
	s.closeSent = false
	if s.target == w {
		s.target = nil
	} else {
		w.load++
	}
	c.ensureTables(w)
	m := assignMsg{
		Query:    q.id,
		Shard:    uint32(idx),
		NShards:  uint32(q.nShards),
		EmitBase: s.snapW,
		Name:     q.name,
		Text:     q.text,
		Snapshot: s.snap,
	}
	w.enqueue(kindAssign, m.encode(nil))
}

// pump ships retained events to the shard's owner: full batches always,
// the partial tail only when force is set (flusher tick, close, ready
// catch-up). Must run with c.mu held.
func (c *Coordinator) pump(q *queryState, idx int, force bool) {
	s := q.shards[idx]
	if s.owner == nil || !s.ready || s.quiescing || s.drained {
		return
	}
	batch := uint64(c.opts.BatchEvents)
	for {
		avail := s.end() - s.nextSend
		if avail == 0 || (!force && avail < batch) {
			break
		}
		n := min(avail, batch)
		start := s.nextSend - s.base
		m := eventsMsg{Query: q.id, Shard: uint32(idx), Events: s.retained[start : start+n]}
		c.ensureTables(s.owner)
		s.owner.enqueue(kindEvents, m.encode(nil))
		s.nextSend += n
	}
	if q.closing && !s.closeSent && s.nextSend == s.end() {
		s.owner.enqueue(kindClose, (&shardMsg{Query: q.id, Shard: uint32(idx)}).encode(nil))
		s.closeSent = true
	}
}

// flusher periodically force-pumps partial batches so a trickling stream
// still makes progress.
func (c *Coordinator) flusher() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.FlushInterval)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		for _, q := range c.queries {
			for idx := range q.shards {
				c.pump(q, idx, true)
			}
		}
		c.mu.Unlock()
	}
}

// --- worker frame handlers ----------------------------------------------

// lookupShard resolves a worker frame to its shard, returning nil when the
// frame is stale (query finished, shard reassigned).
func (c *Coordinator) lookupShard(w *workerLink, query, shard uint32) (*queryState, *shardRun) {
	q := c.queries[query]
	if q == nil || int(shard) >= len(q.shards) {
		return nil, nil
	}
	s := q.shards[shard]
	if s.owner != w {
		return nil, nil
	}
	return q, s
}

// handleReady records a recovered shard and catches its owner up. The
// reported resume position proves the owner's WAL journal covers every
// earlier event, so the retained prefix below it is dropped.
func (c *Coordinator) handleReady(w *workerLink, m *readyMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return nil
	}
	if m.Resume < s.base || m.Resume > s.end() {
		return fmt.Errorf("shard %s/%d: resume %d outside retained [%d, %d]", q.name, m.Shard, m.Resume, s.base, s.end())
	}
	if drop := m.Resume - s.base; drop > 0 {
		s.retained = append([]event.Event(nil), s.retained[drop:]...)
		s.base = m.Resume
	}
	s.nextSend = m.Resume
	s.ready = true
	c.pump(q, int(m.Shard), q.closing)
	// A shard that was not ready at the last membership change was not a
	// migration candidate then; retry toward the least-loaded worker now.
	if next := c.pickWorker(); next != nil {
		c.rebalance(next)
	}
	return nil
}

// handleEmit accepts one match. The ordinal is the global per-shard
// emission number; anything below the accept cursor is a deterministic
// replay duplicate and is dropped, anything above is a protocol gap.
func (c *Coordinator) handleEmit(w *workerLink, m *emitMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return nil
	}
	if m.Ordinal < s.accepted {
		return nil // replay duplicate; identical by §4.2 determinism
	}
	if m.Ordinal > s.accepted {
		return fmt.Errorf("shard %s/%d: emission ordinal %d skips cursor %d", q.name, m.Shard, m.Ordinal, s.accepted)
	}
	if !q.merge.emit(int(m.Shard), m.Match) {
		return fmt.Errorf("shard %s/%d: match detected at %d beyond routed events", q.name, m.Shard, m.Match.DetectedAt)
	}
	s.accepted++
	q.merge.release()
	return nil
}

// handleProgress advances the shard's root-window bound in the merge.
func (c *Coordinator) handleProgress(w *workerLink, m *progressMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, _ := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return
	}
	q.merge.progress(int(m.Shard), m.Boundary)
	q.merge.release()
}

// handleHandoff installs the parked shard's WAL snapshot and re-places it.
func (c *Coordinator) handleHandoff(w *workerLink, m *handoffMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil {
		return
	}
	s.snap = m.Snapshot
	s.snapW = m.Watermark
	if m.Watermark != s.accepted {
		// Frames are FIFO per link, so a graceful handoff watermark always
		// equals the accept cursor; log the impossible, then trust the
		// ordinal dedupe to absorb it.
		c.opts.Logf("cluster: handoff watermark %d != accepted %d for %s/%d", m.Watermark, s.accepted, q.name, m.Shard)
	}
	w.load--
	s.owner = nil
	s.ready = false
	s.quiescing = false
	next := s.target
	if next != nil && next.gone {
		// The reserved slot died with the worker; fall through to a fresh
		// pick below (workerLost already dropped the dangling target).
		next = nil
		s.target = nil
	}
	if next == nil {
		next = c.pickWorker()
		if next == nil {
			return // re-placed when the next worker joins
		}
		next.load++ // consumed by the s.target branch in assignShard
		s.target = next
	}
	c.assignShard(q, int(m.Shard), next)
}

// handleDrained finishes one shard's stream.
func (c *Coordinator) handleDrained(w *workerLink, m *shardMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, s := c.lookupShard(w, m.Query, m.Shard)
	if q == nil || s.drained {
		return
	}
	s.drained = true
	w.load--
	s.owner = nil
	q.merge.drained(int(m.Shard))
	q.merge.release()
	q.drained++
	if q.drained == q.nShards && !q.finished {
		q.finished = true
		delete(c.queries, q.id)
		close(q.done)
		if q.onDrain != nil {
			q.onDrain()
		}
	}
}

// --- submission ---------------------------------------------------------

// Submit distributes one query. It blocks until Options.MinWorkers
// workers are joined (bounded by ctx), then places one shard per
// least-loaded worker. Emissions are delivered on coordinator reader
// goroutines in the deterministic merged order; the Emit callback must
// not call back into the handle synchronously.
func (c *Coordinator) Submit(ctx context.Context, sub Submission) (*QueryHandle, error) {
	if sub.NShards <= 0 || sub.Route == nil && sub.NShards > 1 {
		return nil, fmt.Errorf("cluster: submission needs NShards >= 1 and a route for NShards > 1")
	}
	if sub.Name == "" || sub.Text == "" {
		return nil, fmt.Errorf("cluster: submission needs a query name and text")
	}
	if err := c.WaitWorkers(ctx, c.opts.MinWorkers); err != nil {
		if err == ErrClosed {
			return nil, err
		}
		return nil, &Error{Op: "submit", Err: err}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.nextQuery++
	q := &queryState{
		id:      c.nextQuery,
		name:    sub.Name,
		text:    sub.Text,
		nShards: sub.NShards,
		route:   sub.Route,
		emit:    sub.Emit,
		onDrain: sub.OnDrain,
		shards:  make([]*shardRun, sub.NShards),
		done:    make(chan struct{}),
	}
	q.merge = newOrderedMerge(sub.NShards, func(m event.Complex) {
		if q.emit != nil {
			q.emit(m)
		}
	})
	for i := range q.shards {
		q.shards[i] = &shardRun{}
	}
	c.queries[q.id] = q
	for i := range q.shards {
		if w := c.pickWorker(); w != nil {
			c.assignShard(q, i, w)
		}
	}
	return &QueryHandle{c: c, q: q}, nil
}

// QueryHandle is the submitting node's feed/drain interface to one
// distributed query.
type QueryHandle struct {
	c *Coordinator
	q *queryState
}

// Feed routes one event.
func (h *QueryHandle) Feed(ev event.Event) error {
	return h.FeedBatch([]event.Event{ev})
}

// FeedBatch routes a batch of events. Events are retained until a worker
// WAL provably covers them, so feeding never blocks on worker liveness.
func (h *QueryHandle) FeedBatch(evs []event.Event) error {
	c, q := h.c, h.q
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.closing || q.finished {
		return ErrClosed
	}
	batch := uint64(c.opts.BatchEvents)
	for i := range evs {
		idx := 0
		if q.route != nil {
			idx = q.route(&evs[i])
		}
		if idx < 0 || idx >= q.nShards {
			return fmt.Errorf("cluster: route returned shard %d of %d", idx, q.nShards)
		}
		s := q.shards[idx]
		local := q.merge.route(idx)
		if local != s.end() {
			return fmt.Errorf("cluster: shard %d position skew: merge %d, retained %d", idx, local, s.end())
		}
		s.retained = append(s.retained, evs[i])
		if s.end()-s.nextSend >= batch {
			c.pump(q, idx, false)
		}
	}
	return nil
}

// Close ends the stream: every shard is flushed and closed, and Wait
// unblocks once all of them report drained.
func (h *QueryHandle) Close() {
	c, q := h.c, h.q
	c.mu.Lock()
	defer c.mu.Unlock()
	if q.closing || q.finished {
		return
	}
	q.closing = true
	for idx := range q.shards {
		c.pump(q, idx, true)
	}
}

// Wait blocks until every shard drained (after Close) or the query fails.
func (h *QueryHandle) Wait(ctx context.Context) error {
	select {
	case <-h.q.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.q.failure
}
