package cluster

// Protocol version 2: the communication-minimizing frame grammar
// (DESIGN.md §13). Negotiated per link at handshake — the coordinator
// answers a worker's hello with min(worker proto, coordinator proto),
// so v1 workers keep speaking the fixed-width grammar of wire.go while
// v2 links move the event volume onto three compact frame kinds:
//
//   - kindEvents2: one shard's batch with varint scalars, delta-coded
//     sequence numbers and timestamps, and optional field projection
//     (only the payload fields some predicate reads are shipped).
//   - kindPage: a shared event page — one physical copy of a batch of
//     source events, shipped once per worker even when several
//     co-located (query, shard) consumers need it.
//   - kindPageRefs: one consumer's view of a page — indexes into the
//     page plus that shard's sequence numbers for them.
//
// All other frame kinds keep their v1 bodies on v2 links, except
// kindAssign which gains a trailing flags byte (preStamped).

import (
	"encoding/binary"
	"math"

	"github.com/spectrecep/spectre/internal/event"
)

// v2 frame kinds (coordinator → worker only).
const (
	kindEvents2  byte = 16 // compact per-shard event batch
	kindPage     byte = 17 // shared event page (sent once per worker)
	kindPageRefs byte = 18 // per-(query,shard) references into a page
)

// events2 flags.
const (
	ev2Contig    byte = 1 << 0 // seqs are First..First+n-1; no deltas encoded
	ev2Projected byte = 1 << 1 // fields carry a fixed projection column set
)

// assign flags (trailing byte of kindAssign on proto ≥ 2 links).
const assignPreStamped byte = 1 << 0

// maxProjFields bounds a projection list; maxProjIndex bounds each
// projected field index. Registry field tables are tiny, so the index
// bound is deliberately harsh: the decoder reconstructs dense Fields
// arrays of width max(proj)+1 per event, and capping the width at 256
// keeps the slab proportional to the wire bytes backing it (need(n,
// len(proj)*8) ⇒ slab ≤ 32× the unread body). The coordinator never
// projects a query whose plan reads a field at or above the bound
// (Submit falls back to full field shipping).
const (
	maxProjFields = 1 << 12
	maxProjIndex  = 1 << 8
)

// maxFrameFloats is the maxWireCount analog for decoded payload floats:
// a projected batch reconstructs dense field arrays (n events ×
// (maxProjIndex+1) floats), which can exceed the wire bytes that back
// them, so the decoded total is budgeted independently of frame size.
const maxFrameFloats = 1 << 22

// events2Msg is the proto-2 replacement for eventsMsg. Events must be in
// strictly increasing Seq order (the coordinator's retained buffer
// guarantees it). Proj, when non-nil, lists the payload field indexes
// actually shipped; the decoder reconstructs dense Fields arrays with
// zeros elsewhere, which is output-equivalent because the query's plan
// proved no predicate reads an unlisted field and matches reference
// events by position, never payload.
type events2Msg struct {
	Query  uint32
	Shard  uint32
	Proj   []int
	Events []event.Event
}

// pageMsg is one shared event page. Refs is the number of kindPageRefs
// frames that will reference the page — the worker frees it after that
// many arrive. Page events carry no sequence numbers; each consumer's
// refs frame supplies its own.
type pageMsg struct {
	PageID uint64
	Refs   uint32
	Events []event.Event
}

// pageRefsMsg maps a strictly increasing subset of a page's events into
// one (query, shard) substream: Idx[i] is the event's position in the
// page, Seqs[i] the shard-local sequence number it gets.
type pageRefsMsg struct {
	Query  uint32
	Shard  uint32
	PageID uint64
	Idx    []uint32
	Seqs   []uint64
}

// --- varint plumbing ------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func (r *wireReader) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// uvcount reads a uvarint collection length, bounded like count().
func (r *wireReader) uvcount() int {
	v := r.uvarint()
	if v > maxWireCount {
		r.fail("count %d exceeds limit %d", v, maxWireCount)
		return 0
	}
	return int(v)
}

// need verifies that n entries of at least per bytes each can still fit
// in the unread frame body, so collection sizes stay proportional to
// bytes actually delivered.
func (r *wireReader) need(n, per int) bool {
	if r.err != nil {
		return false
	}
	if n*per > len(r.b)-r.off {
		r.fail("collection of %d×≥%dB overruns frame", n, per)
		return false
	}
	return true
}

// --- shared event columns -------------------------------------------------

// appendEventCols encodes n events column-major: types (uvarint), then
// timestamps (first absolute, then zigzag deltas), then payload fields —
// either the fixed proj columns (raw float64 bits) or per-event
// length-prefixed full field lists.
func appendEventCols(b []byte, evs []event.Event, proj []int) []byte {
	for i := range evs {
		b = appendUvarint(b, uint64(evs[i].Type))
	}
	var prev int64
	for i := range evs {
		b = appendVarint(b, evs[i].TS-prev)
		prev = evs[i].TS
	}
	if proj != nil {
		for i := range evs {
			for _, f := range proj {
				b = appendU64(b, math.Float64bits(evs[i].Field(f)))
			}
		}
		return b
	}
	for i := range evs {
		b = appendUvarint(b, uint64(len(evs[i].Fields)))
		for _, v := range evs[i].Fields {
			b = appendU64(b, math.Float64bits(v))
		}
	}
	return b
}

// decodeEventCols is the inverse of appendEventCols: it fills evs (len
// n, Seq already set by the caller or zero) in place. Projected frames
// reconstruct dense Fields arrays out of one slab; the decoded float
// total is budgeted by maxFrameFloats because dense reconstruction can
// exceed the wire bytes backing it.
func (r *wireReader) decodeEventCols(evs []event.Event, proj []int) {
	n := len(evs)
	for i := 0; i < n && r.err == nil; i++ {
		t := r.uvarint()
		if t > math.MaxUint32 {
			r.fail("event type %d out of range", t)
			return
		}
		evs[i].Type = event.Type(t)
	}
	var prev int64
	for i := 0; i < n && r.err == nil; i++ {
		prev += r.varint()
		evs[i].TS = prev
	}
	if r.err != nil {
		return
	}
	if proj != nil {
		width := 0
		for _, f := range proj {
			if f+1 > width {
				width = f + 1
			}
		}
		if n*width > maxFrameFloats {
			r.fail("projected batch of %d×%d floats exceeds limit %d", n, width, maxFrameFloats)
			return
		}
		if !r.need(n, len(proj)*8) {
			return
		}
		slab := make([]float64, n*width)
		for i := 0; i < n; i++ {
			fields := slab[i*width : (i+1)*width : (i+1)*width]
			for _, f := range proj {
				fields[f] = math.Float64frombits(r.u64())
			}
			evs[i].Fields = fields
		}
		return
	}
	for i := 0; i < n && r.err == nil; i++ {
		nf := r.uvcount()
		if nf == 0 || r.err != nil {
			continue
		}
		if !r.need(nf, 8) {
			return
		}
		fields := make([]float64, nf)
		for j := range fields {
			fields[j] = math.Float64frombits(r.u64())
		}
		evs[i].Fields = fields
	}
}

// decodeProj reads a projection field-index list (strictly bounded; the
// legal lists come from a registry field table).
func (r *wireReader) decodeProj() []int {
	np := r.uvcount()
	if np > maxProjFields {
		r.fail("projection of %d fields exceeds limit %d", np, maxProjFields)
		return nil
	}
	if r.err != nil || np == 0 {
		return nil
	}
	if !r.need(np, 1) {
		return nil
	}
	proj := make([]int, np)
	for i := range proj {
		f := r.uvarint()
		if f >= maxProjIndex {
			r.fail("projected field index %d exceeds limit %d", f, maxProjIndex)
			return nil
		}
		proj[i] = int(f)
	}
	return proj
}

// --- events2 --------------------------------------------------------------

func (m *events2Msg) encode(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Query))
	b = appendUvarint(b, uint64(m.Shard))
	contig := true
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Seq != m.Events[i-1].Seq+1 {
			contig = false
			break
		}
	}
	var flags byte
	if contig {
		flags |= ev2Contig
	}
	if m.Proj != nil {
		flags |= ev2Projected
	}
	b = append(b, flags)
	b = appendUvarint(b, uint64(len(m.Events)))
	if m.Proj != nil {
		b = appendUvarint(b, uint64(len(m.Proj)))
		for _, f := range m.Proj {
			b = appendUvarint(b, uint64(f))
		}
	}
	if len(m.Events) == 0 {
		return b
	}
	b = appendUvarint(b, m.Events[0].Seq)
	if !contig {
		for i := 1; i < len(m.Events); i++ {
			b = appendUvarint(b, m.Events[i].Seq-m.Events[i-1].Seq-1)
		}
	}
	return appendEventCols(b, m.Events, m.Proj)
}

// decodeEvents2 returns the batch as a plain eventsMsg (with Seq set on
// every event) so the worker's dispatch path is shared across protocol
// versions.
func decodeEvents2(b []byte) (eventsMsg, error) {
	r := wireReader{b: b}
	m := eventsMsg{Query: uint32(r.uvarint()), Shard: uint32(r.uvarint())}
	flags := r.u8()
	n := r.uvcount()
	var proj []int
	if flags&ev2Projected != 0 {
		proj = r.decodeProj()
	}
	if r.err != nil || n == 0 {
		return m, r.finish()
	}
	// Every event costs at least one type byte and one TS byte, so the
	// allocation below is proportional to delivered bytes.
	if !r.need(n, 2) {
		return m, r.finish()
	}
	evs := make([]event.Event, n)
	seq := r.uvarint()
	evs[0].Seq = seq
	for i := 1; i < n && r.err == nil; i++ {
		if flags&ev2Contig != 0 {
			seq++
		} else {
			gap := r.uvarint()
			if gap > 1<<48 {
				r.fail("seq gap %d out of range", gap)
				break
			}
			seq += gap + 1
		}
		evs[i].Seq = seq
	}
	r.decodeEventCols(evs, proj)
	m.Events = evs
	return m, r.finish()
}

// --- pages ----------------------------------------------------------------

func (m *pageMsg) encode(b []byte) []byte {
	b = appendUvarint(b, m.PageID)
	b = appendUvarint(b, uint64(m.Refs))
	b = appendUvarint(b, uint64(len(m.Events)))
	return appendEventCols(b, m.Events, nil)
}

func decodePage(b []byte) (pageMsg, error) {
	r := wireReader{b: b}
	m := pageMsg{PageID: r.uvarint()}
	refs := r.uvarint()
	if refs > maxWireCount {
		r.fail("page ref count %d exceeds limit %d", refs, maxWireCount)
	}
	m.Refs = uint32(refs)
	n := r.uvcount()
	if r.err != nil || n == 0 {
		return m, r.finish()
	}
	// Type byte + TS byte + field-count byte minimum per event.
	if !r.need(n, 3) {
		return m, r.finish()
	}
	evs := make([]event.Event, n)
	r.decodeEventCols(evs, nil)
	m.Events = evs
	return m, r.finish()
}

func (m *pageRefsMsg) encode(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Query))
	b = appendUvarint(b, uint64(m.Shard))
	b = appendUvarint(b, m.PageID)
	b = appendUvarint(b, uint64(len(m.Idx)))
	for i, v := range m.Idx {
		if i == 0 {
			b = appendUvarint(b, uint64(v))
		} else {
			b = appendUvarint(b, uint64(v-m.Idx[i-1]-1))
		}
	}
	for i, s := range m.Seqs {
		if i == 0 {
			b = appendUvarint(b, s)
		} else {
			b = appendUvarint(b, s-m.Seqs[i-1]-1)
		}
	}
	return b
}

func decodePageRefs(b []byte) (pageRefsMsg, error) {
	r := wireReader{b: b}
	m := pageRefsMsg{
		Query:  uint32(r.uvarint()),
		Shard:  uint32(r.uvarint()),
		PageID: r.uvarint(),
	}
	n := r.uvcount()
	if r.err != nil || n == 0 {
		return m, r.finish()
	}
	// One index byte and one seq byte minimum per entry.
	if !r.need(n, 2) {
		return m, r.finish()
	}
	m.Idx = make([]uint32, n)
	var idx uint64
	for i := 0; i < n && r.err == nil; i++ {
		gap := r.uvarint()
		if i == 0 {
			idx = gap
		} else {
			idx += gap + 1
		}
		if idx > maxWireCount {
			r.fail("page index %d exceeds limit %d", idx, maxWireCount)
			break
		}
		m.Idx[i] = uint32(idx)
	}
	if r.err != nil {
		return m, r.finish()
	}
	m.Seqs = make([]uint64, n)
	var seq uint64
	for i := 0; i < n && r.err == nil; i++ {
		gap := r.uvarint()
		if i > 0 && gap > 1<<48 {
			r.fail("seq gap %d out of range", gap)
			break
		}
		if i == 0 {
			seq = gap
		} else {
			seq += gap + 1
		}
		m.Seqs[i] = seq
	}
	return m, r.finish()
}
