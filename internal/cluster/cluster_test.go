package cluster

// Distributed ↔ local golden equivalence: a query distributed over remote
// shard workers must deliver byte-identical output, in the merged
// deterministic order, to a reference built from local per-shard core
// runs interleaved through the same ordered merge — for any worker count,
// across graceful rebalancing and across a mid-stream worker kill.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/shard"
)

// canon renders a match canonically for byte comparison.
func canon(c event.Complex) string {
	return fmt.Sprintf("%s|w%d|d%d|%v|%v", c.Query, c.WindowID, c.DetectedAt, c.Constituents, c.Consumed)
}

// refOp is one entry of a shard's interleaved emit/advance stream.
type refOp struct {
	advance  bool
	boundary uint64
	match    event.Complex
}

// refRun builds the reference output: each shard's substream through a
// local single-shard core run (capturing the exact emit/advance
// interleaving), then the same ordered merge the coordinator uses.
func refRun(t *testing.T, reg *event.Registry, text string, route func(*event.Event) int, nShards int, events []event.Event) []string {
	t.Helper()
	rt := core.NewRuntime(core.RuntimeConfig{})
	defer rt.Close()
	subs := make([][]event.Event, nShards)
	for i := range events {
		s := route(&events[i])
		subs[s] = append(subs[s], events[i])
	}
	ops := make([][]refOp, nShards)
	for s := 0; s < nShards; s++ {
		s := s
		q, err := parser.Parse(text, reg)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		cfg := core.Config{
			Reg: reg,
			OnAdvance: func(b uint64) {
				ops[s] = append(ops[s], refOp{advance: true, boundary: b})
			},
		}
		h, err := rt.Submit(q, cfg, nil, 1, func(m event.Complex) {
			ops[s] = append(ops[s], refOp{match: m.Clone()})
		}, nil)
		if err != nil {
			t.Fatalf("submit shard %d: %v", s, err)
		}
		if err := h.FeedBatch(context.Background(), subs[s]); err != nil {
			t.Fatalf("feed shard %d: %v", s, err)
		}
		h.Close()
		h.Wait()
	}

	var out []string
	m := newOrderedMerge(nShards, func(c event.Complex) { out = append(out, canon(c)) })
	for i := range events {
		m.route(route(&events[i]))
	}
	for s := range ops {
		for _, op := range ops[s] {
			if op.advance {
				m.progress(s, op.boundary)
			} else if !m.emit(s, op.match) {
				t.Fatalf("reference: shard %d match at %d beyond routed events", s, op.match.DetectedAt)
			}
		}
		m.drained(s)
	}
	m.release()
	if m.pending() {
		t.Fatal("reference merge left matches buffered after drain")
	}
	return out
}

// testCluster wires a loopback coordinator plus n workers, each with its
// own registry (simulating separate processes).
type testCluster struct {
	c       *Coordinator
	workers []*Worker
}

func startCluster(t *testing.T, reg *event.Registry, n int) *testCluster {
	t.Helper()
	c, err := Listen("127.0.0.1:0", reg, Options{
		MinWorkers:    n,
		FlushInterval: time.Millisecond,
		Heartbeat:     200 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	tc := &testCluster{c: c}
	for i := 0; i < n; i++ {
		tc.addWorker(t)
	}
	return tc
}

func (tc *testCluster) addWorker(t *testing.T) *Worker {
	t.Helper()
	w, err := Join(context.Background(), event.NewRegistry(), tc.c.Addr().String(),
		WorkerOptions{Heartbeat: 100 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	t.Cleanup(func() { w.Close(); _ = w.Wait() })
	tc.workers = append(tc.workers, w)
	return w
}

// ownerCounts snapshots how many shards each worker currently owns.
func ownerCounts(c *Coordinator) map[uint32]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := map[uint32]int{}
	for _, q := range c.queries {
		for _, s := range q.shards {
			if s.owner != nil {
				m[s.owner.id]++
			}
		}
	}
	return m
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// distSubmit submits one query and returns the handle plus the collected
// merged output.
func distSubmit(t *testing.T, c *Coordinator, name, text string, route func(*event.Event) int, nShards int) (*QueryHandle, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var out []string
	h, err := c.Submit(context.Background(), Submission{
		Name:    name,
		Text:    text,
		NShards: nShards,
		Route:   route,
		Emit: func(m event.Complex) {
			mu.Lock()
			out = append(out, canon(m))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("cluster submit: %v", err)
	}
	return h, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), out...)
	}
}

func feedAll(t *testing.T, h *QueryHandle, events []event.Event) {
	t.Helper()
	const chunk = 250
	for off := 0; off < len(events); off += chunk {
		end := min(off+chunk, len(events))
		if err := h.FeedBatch(events[off:end]); err != nil {
			t.Fatalf("feed: %v", err)
		}
	}
}

func drain(t *testing.T, h *QueryHandle) {
	t.Helper()
	h.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func compareRuns(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) == 0 {
		t.Fatalf("%s: reference produced no detections — equivalence is vacuous", label)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d distributed vs %d reference detections", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: detection %d differs:\n distributed %s\n reference   %s", label, i, got[i], want[i])
		}
	}
	t.Logf("%s: %d identical detections", label, len(want))
}

// goldenCase is one distributed-equivalence scenario.
type goldenCase struct {
	name   string
	text   string
	route  func(reg *event.Registry) func(*event.Event) int
	events func(reg *event.Registry) []event.Event
}

func byType(n int) func(reg *event.Registry) func(*event.Event) int {
	return func(*event.Registry) func(*event.Event) int {
		return shard.NewRouter(n, shard.ByType()).Route
	}
}

const distShards = 4

var goldenCases = []goldenCase{
	{
		name: "Q1",
		text: `
			QUERY Q1
			PATTERN (MLE RE1 RE2 RE3)
			DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
			       RE1 AS RE1.close > RE1.open,
			       RE2 AS RE2.close > RE2.open,
			       RE3 AS RE3.close > RE3.open
			WITHIN 200 EVENTS FROM MLE
			CONSUME ALL
		`,
		route: byType(distShards),
		events: func(reg *event.Registry) []event.Event {
			return dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 50, Seed: 11})
		},
	},
	{
		name: "Q2",
		text: `
			QUERY Q2
			PATTERN (A B+ C D+ E)
			DEFINE A AS A.close < 95,
			       B AS (B.close > 95 AND B.close < 105),
			       C AS C.close > 105,
			       D AS (D.close > 95 AND D.close < 105),
			       E AS E.close < 95
			WITHIN 400 EVENTS FROM EVERY 100 EVENTS
			CONSUME ALL
		`,
		route: byType(distShards),
		events: func(reg *event.Registry) []event.Event {
			return dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 20, Leaders: 2, Minutes: 120, Seed: 5})
		},
	},
	{
		name: "Q3",
		text: `
			QUERY Q3
			PATTERN (A SET(X1 X2 X3))
			DEFINE A AS A.symbol = 'S0000',
			       X1 AS X1.symbol = 'S0001',
			       X2 AS X2.symbol = 'S0002',
			       X3 AS X3.symbol = 'S0003'
			WITHIN 200 EVENTS FROM EVERY 50 EVENTS
			CONSUME ALL
		`,
		// Q3's SET members must stay co-located: route on a session field
		// instead of the type so every shard sees all four symbols.
		route: func(reg *event.Registry) func(*event.Event) int {
			return shard.NewRouter(distShards, shard.ByField(reg.FieldIndex("session"))).Route
		},
		events: func(reg *event.Registry) []event.Event {
			evs := dataset.Rand(reg, dataset.RandConfig{Symbols: 10, Events: 4000, Seed: 23})
			idx := reg.FieldIndex("session")
			for i := range evs {
				f := make([]float64, idx+1)
				copy(f, evs[i].Fields)
				f[idx] = float64(i % 8)
				evs[i].Fields = f
			}
			return evs
		},
	},
	{
		name: "QE",
		text: `
			QUERY QE
			PATTERN (A B)
			DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B'
			WITHIN 1 min FROM A
			CONSUME (B)
			ON MATCH RESTART LEADER
		`,
		// A and B types must share a shard; route on the account field.
		route: func(reg *event.Registry) func(*event.Event) int {
			return shard.NewRouter(distShards, shard.ByField(reg.FieldIndex("account"))).Route
		},
		events: func(reg *event.Registry) []event.Event {
			acct := reg.FieldIndex("account")
			ta, tb := reg.TypeID("A"), reg.TypeID("B")
			evs := make([]event.Event, 0, 2400)
			for i := 0; i < 2400; i++ {
				ty := tb
				if i%4 == 0 {
					ty = ta
				}
				f := make([]float64, acct+1)
				f[acct] = float64(i % 6)
				evs = append(evs, event.Event{TS: int64(i) * int64(7*time.Second), Type: ty, Fields: f})
			}
			return evs
		},
	},
}

// TestDistributedGoldenEquivalence: every paper query, distributed over 2
// and 4 loopback workers, must be byte-identical to the local reference.
func TestDistributedGoldenEquivalence(t *testing.T) {
	for _, tc := range goldenCases {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				reg := event.NewRegistry()
				events := tc.events(reg)
				route := tc.route(reg)
				want := refRun(t, reg, tc.text, route, distShards, events)

				cl := startCluster(t, reg, workers)
				h, got := distSubmit(t, cl.c, tc.name, tc.text, route, distShards)
				feedAll(t, h, events)
				drain(t, h)
				compareRuns(t, fmt.Sprintf("%s w=%d", tc.name, workers), want, got())
			})
		}
	}
}

// TestDistributedWorkerKill: killing a worker mid-stream must lose no
// matches and duplicate none — the shards replay from retained events on
// the survivor and the emission ordinals absorb the overlap. The output
// must still be byte-identical to the reference.
func TestDistributedWorkerKill(t *testing.T) {
	tc := goldenCases[0] // Q1
	reg := event.NewRegistry()
	events := tc.events(reg)
	route := tc.route(reg)
	want := refRun(t, reg, tc.text, route, distShards, events)

	cl := startCluster(t, reg, 2)
	h, got := distSubmit(t, cl.c, tc.name, tc.text, route, distShards)

	half := len(events) / 2
	feedAll(t, h, events[:half])
	// Give the first half time to reach the workers so the kill actually
	// discards in-flight state rather than a cold shard.
	waitUntil(t, "some output before the kill", func() bool { return len(got()) > 0 })

	victim := cl.workers[0]
	victim.Close() // abrupt: connection drops, nothing handed off
	waitUntil(t, "shards reassigned off the dead worker", func() bool {
		counts := ownerCounts(cl.c)
		return counts[victim.ID()] == 0 && counts[cl.workers[1].ID()] == distShards
	})

	feedAll(t, h, events[half:])
	drain(t, h)
	compareRuns(t, "Q1 kill+rebalance", want, got())
}

// TestDistributedRebalanceJoin: a worker joining mid-stream triggers a
// graceful handoff (quiesce → WAL snapshot → resume) and the output stays
// byte-identical.
func TestDistributedRebalanceJoin(t *testing.T) {
	tc := goldenCases[3] // QE
	reg := event.NewRegistry()
	events := tc.events(reg)
	route := tc.route(reg)
	want := refRun(t, reg, tc.text, route, distShards, events)

	cl := startCluster(t, reg, 1)
	h, got := distSubmit(t, cl.c, tc.name, tc.text, route, distShards)

	half := len(events) / 2
	feedAll(t, h, events[:half])
	waitUntil(t, "first worker owning all shards", func() bool {
		return ownerCounts(cl.c)[cl.workers[0].ID()] == distShards
	})

	w2 := cl.addWorker(t)
	waitUntil(t, "graceful migration to the joined worker", func() bool {
		return ownerCounts(cl.c)[w2.ID()] == distShards/2
	})

	feedAll(t, h, events[half:])
	drain(t, h)
	compareRuns(t, "QE join+rebalance", want, got())
}

// TestJoinRetriesExhausted: joining an unreachable coordinator gives up
// after the configured attempts with a typed *Error.
func TestJoinRetriesExhausted(t *testing.T) {
	start := time.Now()
	_, err := Join(context.Background(), event.NewRegistry(), "127.0.0.1:1",
		WorkerOptions{JoinAttempts: 3, Logf: t.Logf})
	if err == nil {
		t.Fatal("join to unreachable address succeeded")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *cluster.Error: %v", err, err)
	}
	if ce.Op != "join" || ce.Attempts != 3 {
		t.Fatalf("unexpected error detail: op=%q attempts=%d", ce.Op, ce.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("join retries took %v, backoff cap is not being applied", elapsed)
	}
}

// TestOrderedMergeHolds: the merge must hold a buffered match while
// another shard's bound is behind it, and release in global key order.
func TestOrderedMergeHolds(t *testing.T) {
	var out []string
	m := newOrderedMerge(2, func(c event.Complex) { out = append(out, c.Query) })
	// Global stream: positions 0,2,4 -> shard 0; 1,3,5 -> shard 1.
	for i := 0; i < 6; i++ {
		m.route(i % 2)
	}
	// Shard 1 emits a match under its window at local 1 (global 3).
	m.progress(1, 1)
	if !m.emit(1, event.Complex{Query: "late", DetectedAt: 2}) {
		t.Fatal("emit rejected")
	}
	m.release()
	if len(out) != 0 {
		t.Fatalf("released %v while shard 0 bound was behind", out)
	}
	// Shard 0 advances past global 3 (its local 2 = global 4): now the
	// held match is settled.
	m.progress(0, 2)
	m.release()
	if len(out) != 1 || out[0] != "late" {
		t.Fatalf("expected the held match to release, got %v", out)
	}
	// A shard 0 match under its window at local 1 (global 2) would have
	// come earlier — the merge must never let that happen after release;
	// emitting under the current bound (local 2, global 4) orders after.
	m.progress(0, 2)
	if !m.emit(0, event.Complex{Query: "next", DetectedAt: 2}) {
		t.Fatal("emit rejected")
	}
	m.drained(1)
	m.release()
	if len(out) != 2 || out[1] != "next" {
		t.Fatalf("expected ordered release, got %v", out)
	}
}
