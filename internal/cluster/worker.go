package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/parser"
	"github.com/spectrecep/spectre/internal/transport"
)

// WorkerOptions parameterizes Join.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs (default the local
	// address of the joined connection).
	Name string
	// Capacity advertises how many shard assignments the worker accepts
	// concurrently (default 64).
	Capacity int
	// Heartbeat is the idle keepalive interval (default 2s); the link is
	// considered dead after linkTimeoutFactor missed beats.
	Heartbeat time.Duration
	// JoinAttempts caps the dial+handshake retries before Join gives up
	// with a *Error (default 5).
	JoinAttempts int
	// MaxProto caps the wire protocol version advertised in the hello
	// (default: the newest this build speaks). Tests use it to emulate
	// old workers against a new coordinator.
	MaxProto int
	// Logf receives worker lifecycle logs (default: discard).
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) setDefaults() {
	if o.Capacity <= 0 {
		o.Capacity = 64
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.JoinAttempts <= 0 {
		o.JoinAttempts = 5
	}
	if o.MaxProto <= 0 || o.MaxProto > protoVersion {
		o.MaxProto = protoVersion
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// linkTimeoutFactor scales the heartbeat interval into the per-read
// deadline on a cluster link. Generous on purpose: a missed deadline is
// treated as a crash, and CI machines under -race stall for seconds.
const linkTimeoutFactor = 10

// Worker executes shard assignments for one coordinator. Each assigned
// shard runs as an independent single-shard durable core runtime whose WAL
// lives in memory — the WAL is what makes the shard portable: a quiesce
// parks the runtime, exports the WAL and ships it back in a handoff frame.
type Worker struct {
	conn  net.Conn
	reg   *event.Registry
	rt    *core.Runtime
	opts  WorkerOptions
	id    uint32
	proto uint32 // negotiated wire protocol version

	ctx    context.Context
	cancel context.CancelFunc

	// wmu serializes frame writes; wbuf is the encode scratch it guards.
	wmu  sync.Mutex
	wbuf []byte

	mu     sync.Mutex
	shards map[uint64]*workerShard
	// typeMap/fieldMap translate the coordinator's interned ids (from the
	// latest kindTables frame) into this process's registry assignment.
	typeMap  []event.Type
	fieldMap []int
	identity bool
	// pages holds shared event pages awaiting their reference frames
	// (proto ≥ 2); each page is freed after refsLeft kindPageRefs frames
	// consumed it.
	pages map[uint64]*workerPage

	closed  atomic.Bool
	done    chan struct{}
	runErr  error
	errOnce sync.Once

	// Transport counters (Stats).
	bytesSent     atomic.Uint64
	bytesRecv     atomic.Uint64
	framesSent    atomic.Uint64
	framesRecv    atomic.Uint64
	eventsDeduped atomic.Uint64
}

// workerPage is one shared event page (remapped into the local registry
// once, shared by every referencing shard).
type workerPage struct {
	events   []event.Event
	refsLeft uint32
	used     uint32 // refs frames consumed so far (dedup accounting)
}

// WorkerStats is a point-in-time snapshot of the worker link's transport
// counters.
type WorkerStats struct {
	Proto         uint32
	BytesSent     uint64
	BytesRecv     uint64
	FramesSent    uint64
	FramesRecv    uint64
	EventsDeduped uint64
}

// Stats snapshots the link counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Proto:         w.proto,
		BytesSent:     w.bytesSent.Load(),
		BytesRecv:     w.bytesRecv.Load(),
		FramesSent:    w.framesSent.Load(),
		FramesRecv:    w.framesRecv.Load(),
		EventsDeduped: w.eventsDeduped.Load(),
	}
}

// workerShard is one assigned (query, shard) execution.
type workerShard struct {
	query uint32
	shard uint32
	name  string
	h     *core.Handle
	store *durable.MemStore
	// emitBase is the global ordinal of the first match this life will
	// deliver (the assignment's snapshot watermark); delivered counts the
	// emit callbacks since (persister goroutine only).
	emitBase  uint64
	delivered uint64
	gone      atomic.Bool // parked/aborted: late frames for it are ignored
}

func shardKey(query, shard uint32) uint64 { return uint64(query)<<32 | uint64(shard) }

// Join dials the coordinator at addr, performs the protocol handshake and
// starts serving assignments. The dial and handshake are retried with
// jittered backoff up to opts.JoinAttempts times; exhaustion returns a
// typed *Error. The returned worker serves until its link drops, Close is
// called, or ctx is cancelled; Wait blocks until then.
func Join(ctx context.Context, reg *event.Registry, addr string, opts WorkerOptions) (*Worker, error) {
	opts.setDefaults()
	backoff := transport.Backoff{Min: 100 * time.Millisecond, Max: 2 * time.Second}
	var conn net.Conn
	var id, proto uint32
	var lastErr error
	attempts := 0
	for attempts < opts.JoinAttempts {
		c, wid, p, err := dialCoordinator(ctx, addr, &opts)
		if err == nil {
			conn, id, proto = c, wid, p
			attempts++
			break
		}
		lastErr = err
		opts.Logf("cluster: join %s attempt %d/%d failed: %v", addr, attempts+1, opts.JoinAttempts, err)
		attempts++
		if attempts >= opts.JoinAttempts {
			break
		}
		select {
		case <-ctx.Done():
			return nil, &Error{Op: "join", Addr: addr, Attempts: attempts, Err: ctx.Err()}
		case <-time.After(backoff.Next(attempts - 1)):
		}
	}
	if conn == nil {
		return nil, &Error{Op: "join", Addr: addr, Attempts: attempts, Err: lastErr}
	}
	wctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		conn:   conn,
		reg:    reg,
		rt:     core.NewRuntime(core.RuntimeConfig{}),
		opts:   opts,
		id:     id,
		proto:  proto,
		ctx:    wctx,
		cancel: cancel,
		shards: make(map[uint64]*workerShard),
		pages:  make(map[uint64]*workerPage),
		done:   make(chan struct{}),
	}
	go w.serve()
	go w.heartbeat()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.fail(ctx.Err())
				w.Close()
			case <-w.done:
			}
		}()
	}
	return w, nil
}

// dialCoordinator performs one dial + hello/welcome handshake. The hello
// advertises the worker's newest protocol version; the coordinator
// answers with the version the link will actually speak (at most the
// advertised one — older coordinators echo their own fixed version,
// which the range check below accepts only when this build still speaks
// it).
func dialCoordinator(ctx context.Context, addr string, opts *WorkerOptions) (net.Conn, uint32, uint32, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, 0, err
	}
	deadline := time.Now().Add(10 * time.Second)
	_ = conn.SetDeadline(deadline)
	maxProto := uint32(opts.MaxProto)
	hello := helloMsg{Proto: maxProto, Capacity: uint32(opts.Capacity), Name: opts.Name}
	if err := transport.WriteFrame(conn, kindHello, hello.encode(nil)); err != nil {
		conn.Close()
		return nil, 0, 0, fmt.Errorf("send hello: %w", err)
	}
	kind, body, err := transport.ReadFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, 0, 0, fmt.Errorf("read welcome: %w", err)
	}
	if kind == kindError {
		if em, derr := decodeError(body); derr == nil {
			conn.Close()
			return nil, 0, 0, fmt.Errorf("coordinator rejected join: %s", em.Msg)
		}
	}
	if kind != kindWelcome {
		conn.Close()
		return nil, 0, 0, fmt.Errorf("unexpected frame kind %d during handshake", kind)
	}
	wm, err := decodeWelcome(body)
	if err != nil {
		conn.Close()
		return nil, 0, 0, err
	}
	if wm.Proto < minProtoVersion || wm.Proto > maxProto {
		conn.Close()
		return nil, 0, 0, fmt.Errorf("protocol mismatch: coordinator chose v%d, worker speaks v%d..v%d", wm.Proto, minProtoVersion, maxProto)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, wm.WorkerID, wm.Proto, nil
}

// ID returns the coordinator-assigned worker id.
func (w *Worker) ID() uint32 { return w.id }

// Wait blocks until the worker stops serving and returns the terminal
// error (nil on a clean Close).
func (w *Worker) Wait() error {
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runErr
}

// Close tears the worker down: the link is closed, every shard runtime is
// aborted, and Wait unblocks. Used both for graceful shutdown (after the
// coordinator quiesced the shards) and as the crash injection point in
// tests — state not yet handed off is lost, exactly like a process kill.
func (w *Worker) Close() {
	if !w.closed.CompareAndSwap(false, true) {
		return
	}
	w.cancel()
	_ = w.conn.Close()
}

func (w *Worker) fail(err error) {
	w.errOnce.Do(func() {
		w.mu.Lock()
		w.runErr = err
		w.mu.Unlock()
	})
}

// heartbeat keeps the link alive while no emissions flow.
func (w *Worker) heartbeat() {
	t := time.NewTicker(w.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			_ = w.send(kindHeartbeat, nil)
		}
	}
}

// send writes one frame under the write lock.
func (w *Worker) send(kind byte, body []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	buf, err := transport.AppendFrame(w.wbuf[:0], kind, body)
	if err != nil {
		return err
	}
	w.wbuf = buf
	_, err = w.conn.Write(buf)
	if err == nil {
		w.bytesSent.Add(uint64(len(buf)))
		w.framesSent.Add(1)
	}
	return err
}

// serve is the link reader: frames are processed strictly in order, which
// is what makes quiesce/close safe — by the time either arrives, every
// event batch sent before it has been fed.
func (w *Worker) serve() {
	defer func() {
		w.closed.Store(true)
		w.cancel()
		_ = w.conn.Close()
		// Abort every shard runtime: state not handed off dies with the
		// link, exactly as the coordinator assumes when it reassigns.
		w.mu.Lock()
		shards := make([]*workerShard, 0, len(w.shards))
		for _, ws := range w.shards {
			shards = append(shards, ws)
		}
		w.shards = map[uint64]*workerShard{}
		w.mu.Unlock()
		for _, ws := range shards {
			ws.gone.Store(true)
			ws.h.Abort()
			ws.h.Wait()
		}
		sctx, scancel := context.WithCancel(context.Background())
		scancel()
		_ = w.rt.Shutdown(sctx)
		close(w.done)
	}()
	var scratch []byte
	for {
		_ = w.conn.SetReadDeadline(time.Now().Add(linkTimeoutFactor * w.opts.Heartbeat))
		kind, body, err := transport.ReadFrame(w.conn, scratch)
		if err != nil {
			if !w.closed.Load() {
				w.fail(&Error{Op: "serve", Addr: w.conn.RemoteAddr().String(), Err: err})
			}
			return
		}
		w.bytesRecv.Add(uint64(frameOverhead + len(body)))
		w.framesRecv.Add(1)
		scratch = body[:0]
		if err := w.dispatch(kind, body); err != nil {
			w.fail(err)
			_ = w.send(kindError, (&errorMsg{Msg: err.Error()}).encode(nil))
			return
		}
	}
}

func (w *Worker) dispatch(kind byte, body []byte) error {
	switch kind {
	case kindHeartbeat:
		return nil
	case kindTables:
		m, err := decodeTables(body)
		if err != nil {
			return err
		}
		w.applyTables(&m)
		return nil
	case kindAssign:
		m, err := decodeAssign(body, w.proto)
		if err != nil {
			return err
		}
		return w.handleAssign(&m)
	case kindEvents:
		m, err := decodeEvents(body)
		if err != nil {
			return err
		}
		return w.handleEvents(&m)
	case kindEvents2:
		if w.proto < 2 {
			return &Error{Op: "serve", Err: fmt.Errorf("events2 frame on a v%d link", w.proto)}
		}
		m, err := decodeEvents2(body)
		if err != nil {
			return err
		}
		return w.handleEvents(&m)
	case kindPage:
		if w.proto < 2 {
			return &Error{Op: "serve", Err: fmt.Errorf("page frame on a v%d link", w.proto)}
		}
		m, err := decodePage(body)
		if err != nil {
			return err
		}
		return w.handlePage(&m)
	case kindPageRefs:
		if w.proto < 2 {
			return &Error{Op: "serve", Err: fmt.Errorf("page-refs frame on a v%d link", w.proto)}
		}
		m, err := decodePageRefs(body)
		if err != nil {
			return err
		}
		return w.handlePageRefs(&m)
	case kindClose:
		m, err := decodeShardMsg(body)
		if err != nil {
			return err
		}
		w.handleClose(m.Query, m.Shard)
		return nil
	case kindQuiesce:
		m, err := decodeShardMsg(body)
		if err != nil {
			return err
		}
		return w.handleQuiesce(m.Query, m.Shard)
	case kindAbort:
		m, err := decodeShardMsg(body)
		if err != nil {
			return err
		}
		w.handleAbort(m.Query, m.Shard)
		return nil
	case kindError:
		m, err := decodeError(body)
		if err != nil {
			return err
		}
		return &Error{Op: "serve", Err: fmt.Errorf("coordinator error: %s", m.Msg)}
	default:
		return &Error{Op: "serve", Err: fmt.Errorf("unexpected frame kind %d", kind)}
	}
}

// applyTables rebuilds the link-id → local-id translation from a full
// table announcement.
func (w *Worker) applyTables(m *tablesMsg) {
	typeMap := make([]event.Type, len(m.Types)+1)
	identity := true
	for i, name := range m.Types {
		id := w.reg.TypeID(name)
		typeMap[i+1] = id
		if id != event.Type(i+1) {
			identity = false
		}
	}
	fieldMap := make([]int, len(m.Fields))
	for i, name := range m.Fields {
		idx := w.reg.FieldIndex(name)
		fieldMap[i] = idx
		if idx != i {
			identity = false
		}
	}
	w.mu.Lock()
	w.typeMap, w.fieldMap, w.identity = typeMap, fieldMap, identity
	w.mu.Unlock()
}

// remap translates a batch of link-encoded events into the local registry
// assignment, in place.
func (w *Worker) remap(evs []event.Event) error {
	w.mu.Lock()
	typeMap, fieldMap, identity := w.typeMap, w.fieldMap, w.identity
	w.mu.Unlock()
	if identity && len(typeMap) > 0 {
		// Ids match the local registry (the common case: the worker's
		// registry interned the coordinator's tables in order); still
		// reject ids past the announced table.
		for i := range evs {
			if int(evs[i].Type) >= len(typeMap) {
				return fmt.Errorf("cluster: event type id %d past announced table (%d types)", evs[i].Type, len(typeMap)-1)
			}
		}
		return nil
	}
	for i := range evs {
		ev := &evs[i]
		if int(ev.Type) >= len(typeMap) {
			return fmt.Errorf("cluster: event type id %d past announced table (%d types)", ev.Type, len(typeMap)-1)
		}
		ev.Type = typeMap[ev.Type]
		if len(ev.Fields) == 0 {
			continue
		}
		width := 0
		for j := range ev.Fields {
			nj := j
			if j < len(fieldMap) {
				nj = fieldMap[j]
			}
			if nj+1 > width {
				width = nj + 1
			}
		}
		out := make([]float64, width)
		for j, v := range ev.Fields {
			nj := j
			if j < len(fieldMap) {
				nj = fieldMap[j]
			}
			out[nj] = v
		}
		ev.Fields = out
	}
	return nil
}

// handleAssign starts (or resumes, when a snapshot rides along) one shard.
func (w *Worker) handleAssign(m *assignMsg) error {
	key := shardKey(m.Query, m.Shard)
	w.mu.Lock()
	if _, dup := w.shards[key]; dup {
		w.mu.Unlock()
		return fmt.Errorf("cluster: duplicate assignment for query %d shard %d", m.Query, m.Shard)
	}
	if len(w.shards) >= w.opts.Capacity {
		w.mu.Unlock()
		_ = w.send(kindError, (&errorMsg{Msg: fmt.Sprintf("assignment rejected: capacity %d exhausted", w.opts.Capacity)}).encode(nil))
		return fmt.Errorf("cluster: capacity %d exhausted", w.opts.Capacity)
	}
	w.mu.Unlock()

	store := durable.NewMemStore()
	if err := durable.ImportShard(store, w.reg, m.Name, 0, m.Snapshot); err != nil {
		return fmt.Errorf("cluster: import snapshot for %s/%d: %w", m.Name, m.Shard, err)
	}
	q, err := parser.Parse(m.Text, w.reg)
	if err != nil {
		return fmt.Errorf("cluster: parse assigned query %s: %w", m.Name, err)
	}
	// The WAL shard key is q.Name; pin it to the assignment's name so the
	// imported snapshot is the state this submission recovers from.
	q.Name = m.Name
	ws := &workerShard{query: m.Query, shard: m.Shard, name: m.Name, store: store, emitBase: m.EmitBase}
	cfg := core.Config{
		Reg:        w.reg,
		Durable:    store,
		PreStamped: m.PreStamped,
		OnAdvance: func(boundary uint64) {
			if ws.gone.Load() {
				return
			}
			pm := progressMsg{Query: m.Query, Shard: m.Shard, Boundary: boundary}
			_ = w.send(kindProgress, pm.encode(nil))
		},
	}
	emit := func(ce event.Complex) {
		if ws.gone.Load() {
			return
		}
		ord := ws.emitBase + ws.delivered
		ws.delivered++
		em := emitMsg{Query: m.Query, Shard: m.Shard, Ordinal: ord, Match: ce}
		_ = w.send(kindEmit, em.encode(nil))
	}
	h, err := w.rt.Submit(q, cfg, nil, 1, emit, nil)
	if err != nil {
		return fmt.Errorf("cluster: submit %s/%d: %w", m.Name, m.Shard, err)
	}
	ws.h = h
	if err := w.rt.Recover(w.ctx); err != nil {
		h.Abort()
		h.Wait()
		return fmt.Errorf("cluster: recover %s/%d: %w", m.Name, m.Shard, err)
	}
	resume := uint64(0)
	if rec := h.Recovered(); len(rec) > 0 {
		resume = rec[0]
	}
	w.mu.Lock()
	w.shards[key] = ws
	w.mu.Unlock()
	w.opts.Logf("cluster: worker %d assigned %s shard %d (resume %d, emit base %d)", w.id, m.Name, m.Shard, resume, m.EmitBase)
	return w.send(kindReady, (&readyMsg{Query: m.Query, Shard: m.Shard, Resume: resume}).encode(nil))
}

func (w *Worker) lookup(query, shard uint32) *workerShard {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shards[shardKey(query, shard)]
}

func (w *Worker) drop(query, shard uint32) {
	w.mu.Lock()
	delete(w.shards, shardKey(query, shard))
	w.mu.Unlock()
}

// handleEvents feeds one batch. Feeding blocks when the shard's intake
// queue is full — the link reader stalling is exactly the backpressure
// the coordinator's TCP window propagates to its batcher.
func (w *Worker) handleEvents(m *eventsMsg) error {
	ws := w.lookup(m.Query, m.Shard)
	if ws == nil {
		// A batch can race a completed handoff; the new owner replays it.
		return nil
	}
	if err := w.remap(m.Events); err != nil {
		return err
	}
	if err := ws.h.FeedBatch(w.ctx, m.Events); err != nil {
		if w.ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("cluster: feed %s/%d: %w", ws.name, m.Shard, err)
	}
	return nil
}

// handlePage stores one shared event page: remapped into the local
// registry once, then referenced by refsLeft kindPageRefs frames and
// freed when the last one lands.
func (w *Worker) handlePage(m *pageMsg) error {
	if err := w.remap(m.Events); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.pages[m.PageID]; dup {
		return fmt.Errorf("cluster: duplicate page %d", m.PageID)
	}
	if m.Refs == 0 {
		return nil // degenerate but harmless: nothing will reference it
	}
	w.pages[m.PageID] = &workerPage{events: m.Events, refsLeft: m.Refs}
	return nil
}

// handlePageRefs resolves one consumer's view of a page into a plain
// event batch and feeds it like any kindEvents frame. Reference frames
// beyond the page's announced count, or indexes past its length, are
// protocol errors.
func (w *Worker) handlePageRefs(m *pageRefsMsg) error {
	if len(m.Idx) != len(m.Seqs) {
		return fmt.Errorf("cluster: page %d refs: %d indexes, %d seqs", m.PageID, len(m.Idx), len(m.Seqs))
	}
	w.mu.Lock()
	pg := w.pages[m.PageID]
	if pg == nil {
		w.mu.Unlock()
		return fmt.Errorf("cluster: refs for unknown page %d", m.PageID)
	}
	evs := make([]event.Event, len(m.Idx))
	for i, idx := range m.Idx {
		if int(idx) >= len(pg.events) {
			w.mu.Unlock()
			return fmt.Errorf("cluster: page %d index %d past length %d", m.PageID, idx, len(pg.events))
		}
		evs[i] = pg.events[idx]
		evs[i].Seq = m.Seqs[i]
	}
	if pg.used > 0 {
		// Every referencing shard after the first received these events
		// without a second wire copy.
		w.eventsDeduped.Add(uint64(len(m.Idx)))
	}
	pg.used++
	pg.refsLeft--
	if pg.refsLeft == 0 {
		delete(w.pages, m.PageID)
	}
	w.mu.Unlock()
	em := eventsMsg{Query: m.Query, Shard: m.Shard, Events: evs}
	ws := w.lookup(em.Query, em.Shard)
	if ws == nil {
		return nil // raced a completed handoff; the new owner replays
	}
	if err := ws.h.FeedBatch(w.ctx, em.Events); err != nil {
		if w.ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("cluster: feed %s/%d: %w", ws.name, em.Shard, err)
	}
	return nil
}

// handleClose ends the shard's stream; the drain completes in the
// background and reports kindDrained after the final emission flushed.
func (w *Worker) handleClose(query, shard uint32) {
	ws := w.lookup(query, shard)
	if ws == nil {
		return
	}
	ws.h.Close()
	go func() {
		ws.h.Wait()
		// Wait returns only after the shard's persister drained, so every
		// emit frame is already written: drained is ordered last.
		_ = w.send(kindDrained, (&shardMsg{Query: query, Shard: shard}).encode(nil))
		w.drop(query, shard)
	}()
}

// handleQuiesce parks the shard, exports its WAL and ships the handoff.
// Blocking the reader here is deliberate: the coordinator stopped sending
// for this shard before quiescing, and a handoff must not interleave with
// anything this worker still had in flight.
func (w *Worker) handleQuiesce(query, shard uint32) error {
	ws := w.lookup(query, shard)
	if ws == nil {
		return nil
	}
	ws.h.Park()
	ws.h.Wait()
	ws.gone.Store(true)
	blob, err := durable.ExportShard(ws.store, w.reg, ws.name, 0)
	if err != nil {
		return fmt.Errorf("cluster: export %s/%d: %w", ws.name, shard, err)
	}
	watermark := ws.emitBase + ws.delivered
	w.drop(query, shard)
	w.opts.Logf("cluster: worker %d handing off %s shard %d (watermark %d, %d bytes)", w.id, ws.name, shard, watermark, len(blob))
	hm := handoffMsg{Query: query, Shard: shard, Watermark: watermark, Snapshot: blob}
	return w.send(kindHandoff, hm.encode(nil))
}

func (w *Worker) handleAbort(query, shard uint32) {
	ws := w.lookup(query, shard)
	if ws == nil {
		return
	}
	ws.gone.Store(true)
	ws.h.Abort()
	go func() {
		ws.h.Wait()
		w.drop(query, shard)
	}()
}
