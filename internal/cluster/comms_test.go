package cluster

// Communication-efficiency behavior (DESIGN.md §13): protocol
// negotiation fallback to v1, pushdown equivalence (filtering at the
// coordinator must not change a single output byte), and shared-stream
// page dedup across co-located queries.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
)

// startClusterOpts is startCluster with coordinator/worker option
// overrides (zero fields get the test defaults).
func startClusterOpts(t *testing.T, reg *event.Registry, n int, opts Options, wopts WorkerOptions) *testCluster {
	t.Helper()
	if opts.MinWorkers == 0 {
		opts.MinWorkers = n
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = time.Millisecond
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 200 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := Listen("127.0.0.1:0", reg, opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	tc := &testCluster{c: c}
	for i := 0; i < n; i++ {
		if wopts.Heartbeat == 0 {
			wopts.Heartbeat = 100 * time.Millisecond
		}
		if wopts.Logf == nil {
			wopts.Logf = t.Logf
		}
		w, err := Join(context.Background(), event.NewRegistry(), c.Addr().String(), wopts)
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		t.Cleanup(func() { w.Close(); _ = w.Wait() })
		tc.workers = append(tc.workers, w)
	}
	return tc
}

// TestProtoNegotiationFallback: a v1-capped peer on either side of the
// handshake must drop the whole link to the v1 grammar — and the golden
// output must still be byte-identical, via the classic full-ship path.
func TestProtoNegotiationFallback(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		wopts WorkerOptions
	}{
		{name: "old-worker", wopts: WorkerOptions{MaxProto: 1}},
		{name: "old-coordinator", opts: Options{MaxProto: 1}},
	}
	gc := goldenCases[0] // Q1
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := event.NewRegistry()
			events := gc.events(reg)
			route := gc.route(reg)
			want := refRun(t, reg, gc.text, route, distShards, events)

			cl := startClusterOpts(t, reg, 2, tc.opts, tc.wopts)
			for _, ls := range cl.c.Stats() {
				if ls.Proto != 1 {
					t.Fatalf("link %d negotiated proto %d, want 1", ls.WorkerID, ls.Proto)
				}
			}
			for _, w := range cl.workers {
				if ws := w.Stats(); ws.Proto != 1 {
					t.Fatalf("worker %d negotiated proto %d, want 1", w.ID(), ws.Proto)
				}
			}
			h, got := distSubmit(t, cl.c, gc.name, gc.text, route, distShards)
			feedAll(t, h, events)
			drain(t, h)
			compareRuns(t, tc.name, want, got())
		})
	}
}

// TestMixedProtoFleet: one v1 and one v2 worker in the same cluster. A
// pushdown-eligible query must pin its shards to the v2 link and still
// match the reference; the v1 link stays usable for the handshake.
func TestMixedProtoFleet(t *testing.T) {
	gc := goldenCases[0] // Q1
	reg := event.NewRegistry()
	events := gc.events(reg)
	route := gc.route(reg)
	want := refRun(t, reg, gc.text, route, distShards, events)

	cl := startClusterOpts(t, reg, 1, Options{MinWorkers: 2}, WorkerOptions{MaxProto: 1})
	w2, err := Join(context.Background(), event.NewRegistry(), cl.c.Addr().String(),
		WorkerOptions{Heartbeat: 100 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("join v2: %v", err)
	}
	t.Cleanup(func() { w2.Close(); _ = w2.Wait() })

	h, got := distSubmit(t, cl.c, gc.name, gc.text, route, distShards)
	cl.c.mu.Lock()
	var q *queryState
	for _, cand := range cl.c.queries {
		q = cand
	}
	pre := q.preStamped
	for i, s := range q.shards {
		if pre && s.owner != nil && s.owner.proto < 2 {
			cl.c.mu.Unlock()
			t.Fatalf("pre-stamped shard %d placed on v1 link", i)
		}
	}
	cl.c.mu.Unlock()
	if !pre {
		t.Fatal("Q1 with a v2 worker present should run pre-stamped")
	}
	feedAll(t, h, events)
	drain(t, h)
	compareRuns(t, "mixed fleet", want, got())
}

// TestPushdownEquivalence: for every golden query on 2 and 4 workers,
// filtering at the coordinator (plan pushdown, the default) and
// filtering at the worker (DisablePushdown) must both be byte-identical
// to the local reference — so to each other.
func TestPushdownEquivalence(t *testing.T) {
	for _, gc := range goldenCases {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", gc.name, workers), func(t *testing.T) {
				reg := event.NewRegistry()
				events := gc.events(reg)
				route := gc.route(reg)
				want := refRun(t, reg, gc.text, route, distShards, events)

				outs := map[string][]string{}
				for _, mode := range []struct {
					name string
					opts Options
				}{
					{name: "pushdown", opts: Options{}},
					{name: "full-ship", opts: Options{DisablePushdown: true}},
				} {
					cl := startClusterOpts(t, reg, workers, mode.opts, WorkerOptions{})
					h, got := distSubmit(t, cl.c, gc.name, gc.text, route, distShards)
					feedAll(t, h, events)
					drain(t, h)
					outs[mode.name] = got()
					compareRuns(t, fmt.Sprintf("%s/%s", gc.name, mode.name), want, outs[mode.name])
				}
				for i := range outs["pushdown"] {
					if outs["pushdown"][i] != outs["full-ship"][i] {
						t.Fatalf("detection %d differs between pushdown and full-ship", i)
					}
				}
			})
		}
	}
}

// TestPushdownFilters asserts the tentpole actually engages: a query
// whose plan rejects most of the stream must drop events at the
// coordinator (never encoding them) when pushdown is on.
func TestPushdownFilters(t *testing.T) {
	gc := goldenCases[0] // Q1: every step requires close > open
	reg := event.NewRegistry()
	events := gc.events(reg)
	route := gc.route(reg)

	cl := startCluster(t, reg, 2)
	h, _ := distSubmit(t, cl.c, gc.name, gc.text, route, distShards)
	feedAll(t, h, events)

	// Routing is synchronous, so the counters are final once the feed
	// returns; sample before drain (finished queries leave the table).
	cl.c.mu.Lock()
	var filtered, retained uint64
	for _, q := range cl.c.queries {
		filtered += q.filtered
		for _, s := range q.shards {
			retained += uint64(len(s.retained))
		}
	}
	cl.c.mu.Unlock()
	drain(t, h)
	if filtered == 0 {
		t.Fatal("pushdown dropped nothing — plan filter never engaged")
	}
	if filtered+retained != uint64(len(events)) {
		t.Fatalf("filtered %d + retained %d != %d fed", filtered, retained, len(events))
	}
	t.Logf("pushdown dropped %d of %d events at the coordinator", filtered, len(events))
}

// TestSharedStreamDedup: three queries attached to one shared stream;
// co-located shards must receive each source event once (pages), the
// per-query outputs must match a per-query reference, and the dedup
// counters must show real savings.
func TestSharedStreamDedup(t *testing.T) {
	gc := goldenCases[0] // Q1
	reg := event.NewRegistry()
	events := gc.events(reg)
	route := gc.route(reg)
	want := refRun(t, reg, gc.text, route, distShards, events)

	cl := startCluster(t, reg, 2)
	st := cl.c.OpenStream()
	type sub struct {
		h   *QueryHandle
		got func() []string
	}
	var subs []sub
	for i := 0; i < 3; i++ {
		// All three use the same name: canon embeds it, and each query's
		// output must be byte-identical to the single-query reference.
		h, got := distSubmitStream(t, cl.c, st, gc.name, gc.text, route, distShards)
		subs = append(subs, sub{h: h, got: got})
	}
	// Page staging only covers shards that are already recovered on
	// their owner; wait so the whole stream is dedup-eligible.
	waitUntil(t, "shards ready", func() bool {
		cl.c.mu.Lock()
		defer cl.c.mu.Unlock()
		for _, q := range cl.c.queries {
			for _, s := range q.shards {
				if s.owner == nil || !s.ready {
					return false
				}
			}
		}
		return true
	})
	const chunk = 250
	for off := 0; off < len(events); off += chunk {
		end := min(off+chunk, len(events))
		if err := st.FeedBatch(events[off:end]); err != nil {
			t.Fatalf("stream feed: %v", err)
		}
	}
	st.Close()
	for i, s := range subs {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := s.h.Wait(ctx); err != nil {
			t.Fatalf("wait query %d: %v", i, err)
		}
		cancel()
		compareRuns(t, fmt.Sprintf("stream query %d", i), want, s.got())
	}

	var deduped uint64
	for _, ls := range cl.c.Stats() {
		deduped += ls.EventsDeduped
	}
	if deduped == 0 {
		t.Fatal("no events deduplicated across the shared stream")
	}
	var workerDeduped uint64
	for _, w := range cl.workers {
		workerDeduped += w.Stats().EventsDeduped
	}
	if workerDeduped == 0 {
		t.Fatal("workers expanded no page references")
	}
	t.Logf("deduped %d events coordinator-side, %d page-ref expansions worker-side", deduped, workerDeduped)

	// Direct feeds must be rejected on stream-attached queries.
	if err := subs[0].h.Feed(events[0]); err == nil {
		t.Fatal("direct feed on a stream-attached query succeeded")
	}
}

// distSubmitStream is distSubmit with the submission attached to a
// shared stream.
func distSubmitStream(t *testing.T, c *Coordinator, st *Stream, name, text string, route func(*event.Event) int, nShards int) (*QueryHandle, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var out []string
	h, err := c.Submit(context.Background(), Submission{
		Name:    name,
		Text:    text,
		NShards: nShards,
		Route:   route,
		Stream:  st,
		Emit: func(m event.Complex) {
			mu.Lock()
			out = append(out, canon(m))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("stream submit: %v", err)
	}
	return h, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), out...)
	}
}

// TestAdaptiveBatchGrows: a sustained full-throughput feed must push a
// link's batch above the configured floor; StaticBatch must pin it.
// The stream is match-free so the ordered merge never buffers a head —
// otherwise the blocked-merge shrink signal outvotes growth on a
// single-link cluster, which is the intended policy.
func TestAdaptiveBatchGrows(t *testing.T) {
	gc := goldenCases[0]
	reg := event.NewRegistry()
	events := dataset.Rand(reg, dataset.RandConfig{Symbols: 10, Events: 4000, Seed: 7})
	route := gc.route(reg)

	for _, static := range []bool{false, true} {
		name := "adaptive"
		if static {
			name = "static"
		}
		t.Run(name, func(t *testing.T) {
			cl := startClusterOpts(t, reg, 1,
				Options{BatchEvents: 64, BatchMin: 64, BatchMax: 1024, StaticBatch: static},
				WorkerOptions{})
			h, _ := distSubmit(t, cl.c, gc.name, gc.text, route, distShards)
			// Feed in whole-stream pulses so each shard's backlog fills
			// several frames at once, spaced so the controller (every 8
			// flusher ticks) observes the sustained full sends.
			for i := 0; i < 10; i++ {
				if err := h.FeedBatch(events); err != nil {
					t.Fatalf("feed: %v", err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			drain(t, h)
			grown := false
			for _, ls := range cl.c.Stats() {
				if ls.Batch > 64 {
					grown = true
				}
				if static && ls.Batch != 64 {
					t.Fatalf("static batch drifted to %d", ls.Batch)
				}
			}
			if !static && !grown {
				t.Fatal("adaptive batch never grew above the floor under sustained load")
			}
		})
	}
}
