package cluster

import (
	"github.com/spectrecep/spectre/internal/event"
)

// Ordered merge (DESIGN.md §12.3).
//
// Each shard's emission stream is already canonical: the §4.2 validation
// gate makes it exactly what sequential processing of that shard's
// substream would deliver. The merge interleaves the per-shard streams
// into one deterministic global order that is independent of where the
// shards run and of message timing.
//
// The key insight is that every emitted match belongs to its shard's
// current root window (internal/core drains outputs only for the tree
// root), and root windows pop in stream order. The coordinator therefore
// keys every match by the global stream position of the first event of
// the root window it was emitted under: the per-shard progress stream
// (Config.OnAdvance → kindProgress) announces each new root boundary in
// exact interleaving with the emissions, and the gpos table maps the
// shard-local boundary to the global position of the event routed there.
// Global positions are unique across shards (every event routes to
// exactly one shard), so keys never tie and the merge order is total.
//
// Release rule: the smallest buffered key may be delivered once every
// other live shard is known to be past it — a shard with a buffered match
// is past its own head key, and a shard with an empty buffer is past its
// low bound (the key of its current root window, advanced by emissions
// and progress frames, and infinite once the shard drains). Late progress
// frames only delay releases; they can never reorder them.

// mergeShard is the per-shard state of one ordered merge.
type mergeShard struct {
	// gpos maps the shard-local stream position of every event routed to
	// this shard to its global stream position. Never truncated: a match
	// regenerated after a crash handoff can detect below the resume
	// position, and its window key must still resolve.
	gpos []uint64
	// curWin is the shard-local start position of the shard's current
	// root window, as announced by the progress stream. It is not
	// monotone across a crash replay (the replayed suffix re-announces
	// earlier boundaries so regenerated matches key identically); the
	// release low bound below is.
	curWin uint64
	// low is the monotone release bound: every future *accepted* match of
	// this shard has a key at or above it.
	low uint64
	// drained marks end of stream: the bound is infinite.
	drained bool
	// buf holds accepted, not-yet-released matches in arrival (= key)
	// order; head is buf[next].
	buf  []keyedMatch
	next int
}

type keyedMatch struct {
	key   uint64
	match event.Complex
}

// orderedMerge interleaves per-shard emission streams. Callers own the
// locking; all methods are single-goroutine or externally serialized.
type orderedMerge struct {
	shards []mergeShard
	// fed counts globally routed events: the conservative bound for a
	// shard whose boundary points past everything routed to it so far.
	fed uint64
	out func(event.Complex)
}

func newOrderedMerge(n int, out func(event.Complex)) *orderedMerge {
	return &orderedMerge{shards: make([]mergeShard, n), out: out}
}

// route records that the next global event (position m.fed) was routed to
// shard s, and returns its shard-local position.
func (m *orderedMerge) route(s int) uint64 {
	sh := &m.shards[s]
	local := uint64(len(sh.gpos))
	sh.gpos = append(sh.gpos, m.fed)
	m.fed++
	return local
}

// keyAt resolves a shard-local boundary to a global release bound: the
// global position of the event at that local position, or — when the
// boundary points past everything routed so far — the number of globally
// fed events (any future event routed here lands at or past it).
func (m *orderedMerge) keyAt(s int, local uint64) uint64 {
	sh := &m.shards[s]
	if local < uint64(len(sh.gpos)) {
		return sh.gpos[local]
	}
	return m.fed
}

// emit accepts one match from shard s and buffers it under the current
// root-window key. It returns false when the match's detection position
// was never routed to this shard (a protocol violation).
func (m *orderedMerge) emit(s int, match event.Complex) bool {
	sh := &m.shards[s]
	if match.DetectedAt >= uint64(len(sh.gpos)) {
		return false
	}
	key := m.keyAt(s, sh.curWin)
	sh.buf = append(sh.buf, keyedMatch{key: key, match: match})
	if key > sh.low {
		sh.low = key
	}
	return true
}

// progress records a root-pop boundary from shard s.
func (m *orderedMerge) progress(s int, boundary uint64) {
	sh := &m.shards[s]
	sh.curWin = boundary
	if k := m.keyAt(s, boundary); k > sh.low {
		sh.low = k
	}
}

// drained marks shard s's stream as ended.
func (m *orderedMerge) drained(s int) {
	m.shards[s].drained = true
}

// release delivers every buffered match whose order is settled, in global
// order.
func (m *orderedMerge) release() {
	for {
		best := -1
		var bestKey uint64
		for i := range m.shards {
			sh := &m.shards[i]
			if sh.next < len(sh.buf) {
				if k := sh.buf[sh.next].key; best < 0 || k < bestKey {
					best, bestKey = i, k
				}
			}
		}
		if best < 0 {
			return
		}
		for i := range m.shards {
			sh := &m.shards[i]
			if i == best || sh.next < len(sh.buf) || sh.drained {
				continue
			}
			if sh.low < bestKey {
				// This shard may still produce a match ordered before the
				// candidate: hold the merge until its bound advances.
				return
			}
		}
		sh := &m.shards[best]
		km := sh.buf[sh.next]
		sh.buf[sh.next] = keyedMatch{}
		sh.next++
		if sh.next == len(sh.buf) {
			sh.buf = sh.buf[:0]
			sh.next = 0
		}
		m.out(km.match)
	}
}

// blocker returns the index of the shard currently holding the merge
// back — some shard has a buffered head match, and the returned shard's
// empty-buffer release bound is still below that head's key — or -1 when
// nothing is blocked. It is the adaptive batcher's shrink signal: the
// blocking shard's owner benefits from smaller batches (fresher progress
// watermarks release the head sooner).
func (m *orderedMerge) blocker() int {
	best := -1
	var bestKey uint64
	for i := range m.shards {
		sh := &m.shards[i]
		if sh.next < len(sh.buf) {
			if k := sh.buf[sh.next].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
	}
	if best < 0 {
		return -1
	}
	for i := range m.shards {
		sh := &m.shards[i]
		if i == best || sh.next < len(sh.buf) || sh.drained {
			continue
		}
		if sh.low < bestKey {
			return i
		}
	}
	return -1
}

// pending reports whether any accepted match is still buffered.
func (m *orderedMerge) pending() bool {
	for i := range m.shards {
		if m.shards[i].next < len(m.shards[i].buf) {
			return true
		}
	}
	return false
}
