package cluster

// Shared-stream dedup (DESIGN.md §13.3). Several queries over the same
// source stream each route, filter and retain independently, but a
// worker that owns shards of more than one of them would receive every
// shared event once per shard. A Stream makes the copies explicit and
// collapses them: Stream.FeedBatch routes each event into every attached
// query, stages — per worker link — one physical copy of the event plus
// per-(query, shard) reference lists, and the flush ships the copy as a
// kindPage frame with one small kindPageRefs frame per consumer.
//
// Correctness never depends on a page landing: a staged reference list
// is used only when it still starts exactly at the shard's send cursor
// in the generation it was staged in (checked under the coordinator
// mutex at flush time); anything else is dropped and the ordinary pump
// ships those retained events as plain batches. The two paths are
// mutually exclusive by construction, so no event is sent twice.

import (
	"github.com/spectrecep/spectre/internal/event"
)

// Stream is a shared event source for several attached queries
// (Submission.Stream). All state is guarded by the coordinator mutex.
type Stream struct {
	c       *Coordinator
	queries []*queryState
}

// OpenStream creates a shared source. Attach queries by submitting them
// with Submission.Stream set, then feed events through FeedBatch —
// attached queries reject direct handle feeds.
func (c *Coordinator) OpenStream() *Stream {
	return &Stream{c: c}
}

// refKey identifies one (query, shard) consumer in a link's stage.
type refKey struct {
	query uint32
	shard uint32
}

// refList is one consumer's staged references: which staged events it
// needs (stageIdx) and the raw sequence numbers they carry (seqs).
// Entries record consecutive retained indexes starting at start in
// generation gen; any retention churn in between marks the list broken.
type refList struct {
	q        *queryState
	shard    int
	gen      uint64
	start    int
	count    int
	broken   bool
	stageIdx []uint32
	seqs     []uint64
}

// pageStage accumulates one link's shared events between flushes.
type pageStage struct {
	events []event.Event
	refs   map[refKey]*refList
}

// FeedBatch routes a batch of source events into every attached query.
// Events whose routed shard currently lives on a proto ≥ 2 link are
// staged for page dedup; everything else ships through the plain pump.
func (st *Stream) FeedBatch(evs []event.Event) error {
	c := st.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range evs {
		ev := &evs[i]
		staged := -1 // stage index of ev on w, lazily created per link
		var stagedOn *workerLink
		for _, q := range st.queries {
			if q.closing || q.finished {
				continue
			}
			idx, ridx, err := c.routeOne(q, ev, q.preStamped)
			if err != nil {
				return err
			}
			if ridx < 0 || !q.preStamped {
				continue
			}
			s := q.shards[idx]
			w := s.owner
			if w == nil || !s.ready || s.quiescing || w.proto < 2 {
				continue
			}
			if w.stage == nil {
				w.stage = &pageStage{refs: make(map[refKey]*refList)}
			}
			// One physical copy per link. A single source event lands on
			// at most one link's stage per query, and co-location makes
			// the attached queries' owners coincide — when they don't,
			// the second link gets its own copy.
			if stagedOn != w {
				if stagedOn != nil && staged >= 0 {
					// Rare split ownership: restage on the other link too.
					staged = -1
				}
				w.stage.events = append(w.stage.events, *ev)
				staged = len(w.stage.events) - 1
				stagedOn = w
			}
			key := refKey{query: q.id, shard: uint32(idx)}
			rl := w.stage.refs[key]
			if rl == nil {
				rl = &refList{q: q, shard: idx, gen: s.gen, start: ridx}
				w.stage.refs[key] = rl
			}
			if rl.gen != s.gen || rl.start+rl.count != ridx {
				rl.broken = true
			}
			rl.count++
			rl.stageIdx = append(rl.stageIdx, uint32(staged))
			rl.seqs = append(rl.seqs, s.retained[ridx].Seq)
		}
		if stagedOn != nil && len(stagedOn.stage.events) >= stagedOn.batch {
			c.flushStage(stagedOn)
		}
	}
	return nil
}

// Close closes every attached query's stream end. Call Wait on the
// individual handles (or track drains via OnDrain) afterwards.
func (st *Stream) Close() {
	c := st.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		c.flushStage(w)
	}
	for _, q := range st.queries {
		if q.closing || q.finished {
			continue
		}
		q.closing = true
		for idx := range q.shards {
			c.pump(q, idx, true)
		}
	}
}

// flushStage ships one link's staged page when at least two consumers
// still reference it validly; otherwise the stage is discarded and the
// plain pump covers the events. Valid reference lists advance their
// shard's send cursor past the referenced retained prefix (c.mu held).
func (c *Coordinator) flushStage(w *workerLink) {
	st := w.stage
	if st == nil || len(st.events) == 0 {
		if st != nil {
			clearStage(st)
		}
		return
	}
	valid := make([]*refList, 0, len(st.refs))
	total := 0
	for _, rl := range st.refs {
		s := rl.q.shards[rl.shard]
		if rl.broken || rl.gen != s.gen || rl.start != s.sent ||
			s.owner != w || !s.ready || s.quiescing || s.drained {
			continue
		}
		valid = append(valid, rl)
		total += rl.count
	}
	if len(valid) >= 2 {
		w.pageSeq++
		c.ensureTables(w)
		pm := pageMsg{PageID: w.pageSeq, Refs: uint32(len(valid)), Events: st.events}
		c.encBuf = pm.encode(c.encBuf[:0])
		w.enqueue(kindPage, c.encBuf)
		for _, rl := range valid {
			rm := pageRefsMsg{
				Query:  rl.q.id,
				Shard:  uint32(rl.shard),
				PageID: w.pageSeq,
				Idx:    rl.stageIdx,
				Seqs:   rl.seqs,
			}
			c.encBuf = rm.encode(c.encBuf[:0])
			w.enqueue(kindPageRefs, c.encBuf)
			rl.q.shards[rl.shard].sent += rl.count
		}
		w.eventsSent.Add(uint64(total))
		if total > len(st.events) {
			w.eventsDeduped.Add(uint64(total - len(st.events)))
		}
	}
	clearStage(st)
}

func clearStage(st *pageStage) {
	st.events = st.events[:0]
	for k := range st.refs {
		delete(st.refs, k)
	}
}
