// Package cluster distributes the shards of one SPECTRE query across
// remote worker processes while keeping the delivered output equal to
// local execution (DESIGN.md §12).
//
// Roles:
//
//   - A Coordinator owns the placement table (shard id → worker link),
//     routes the submitted stream per shard, batches events per worker
//     link, and re-interleaves the per-shard emission streams into one
//     deterministic, sequential-equivalent order (ordered merge).
//   - A Worker joins a coordinator over TCP, runs each assigned shard as
//     an independent single-shard durable core runtime (WAL in memory),
//     and streams emissions and progress watermarks back.
//
// Rebalancing moves a shard between workers by shipping its WAL state
// (durable.ExportShard) inside a handoff frame; the receiving worker
// recovers through the ordinary crash-recovery path, with the
// already-delivered emission prefix suppressed by watermark and any
// crash-replayed overlap deduplicated by emission ordinal at the
// coordinator.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/spectrecep/spectre/internal/event"
)

// protoVersion is the newest frame grammar this build speaks;
// minProtoVersion the oldest it still accepts. The handshake negotiates
// per link: the worker's hello advertises its maximum, the coordinator
// answers with min(worker max, coordinator max), and both sides then
// frame according to the chosen version (wire2.go holds the v2
// additions). Bump protoVersion on any wire-incompatible change.
const (
	protoVersion    = 2
	minProtoVersion = 1
)

// Frame kinds on a cluster link (transport frame layer, internal/transport
// frame.go).
const (
	kindHello     byte = 1  // worker → coordinator: protocol, capacity, name
	kindWelcome   byte = 2  // coordinator → worker: protocol, worker id
	kindHeartbeat byte = 3  // both ways: liveness while idle
	kindTables    byte = 4  // coordinator → worker: full type/field name tables
	kindAssign    byte = 5  // coordinator → worker: run this shard (opt. snapshot)
	kindReady     byte = 6  // worker → coordinator: shard recovered, resume position
	kindEvents    byte = 7  // coordinator → worker: one shard's event batch
	kindEmit      byte = 8  // worker → coordinator: one match, with global ordinal
	kindProgress  byte = 9  // worker → coordinator: root-pop boundary watermark
	kindClose     byte = 10 // coordinator → worker: end of stream for shard
	kindDrained   byte = 11 // worker → coordinator: shard fully drained
	kindQuiesce   byte = 12 // coordinator → worker: park shard and hand it off
	kindHandoff   byte = 13 // worker → coordinator: parked shard's WAL snapshot
	kindAbort     byte = 14 // coordinator → worker: discard shard immediately
	kindError     byte = 15 // either way: fatal protocol/assignment failure
)

// maxWireCount bounds every decoded collection length so a corrupt frame
// cannot demand a huge allocation before its (length-capped) body runs out.
const maxWireCount = 1 << 24

// frameOverhead is the transport framing cost per frame: length and CRC
// words plus the kind byte (used by the link byte counters).
const frameOverhead = 9

type helloMsg struct {
	Proto    uint32
	Capacity uint32
	Name     string
}

type welcomeMsg struct {
	Proto    uint32
	WorkerID uint32
}

type tablesMsg struct {
	Types  []string
	Fields []string
}

type assignMsg struct {
	Query    uint32
	Shard    uint32
	NShards  uint32
	EmitBase uint64
	Name     string
	Text     string
	Snapshot []byte
	// PreStamped (proto ≥ 2 only, carried in a trailing flags byte)
	// tells the worker that the coordinator runs the plan's intake
	// prefilter before shipping: wire sequence numbers are raw
	// substream positions and must be trusted, not re-stamped.
	PreStamped bool
}

type readyMsg struct {
	Query  uint32
	Shard  uint32
	Resume uint64
}

type eventsMsg struct {
	Query  uint32
	Shard  uint32
	Events []event.Event
}

type emitMsg struct {
	Query   uint32
	Shard   uint32
	Ordinal uint64
	Match   event.Complex
}

type progressMsg struct {
	Query    uint32
	Shard    uint32
	Boundary uint64
}

// shardMsg is the shared body of kindClose, kindDrained, kindQuiesce and
// kindAbort.
type shardMsg struct {
	Query uint32
	Shard uint32
}

type handoffMsg struct {
	Query     uint32
	Shard     uint32
	Watermark uint64
	Snapshot  []byte
}

type errorMsg struct {
	Msg string
}

// --- encoding -----------------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendStrs(b []byte, ss []string) []byte {
	b = appendU32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

func appendU64s(b []byte, vs []uint64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, v)
	}
	return b
}

func (m *helloMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Proto)
	b = appendU32(b, m.Capacity)
	return appendStr(b, m.Name)
}

func (m *welcomeMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Proto)
	return appendU32(b, m.WorkerID)
}

func (m *tablesMsg) encode(b []byte) []byte {
	b = appendStrs(b, m.Types)
	return appendStrs(b, m.Fields)
}

func (m *assignMsg) encode(b []byte, proto uint32) []byte {
	b = appendU32(b, m.Query)
	b = appendU32(b, m.Shard)
	b = appendU32(b, m.NShards)
	b = appendU64(b, m.EmitBase)
	b = appendStr(b, m.Name)
	b = appendStr(b, m.Text)
	b = appendBytes(b, m.Snapshot)
	if proto >= 2 {
		var flags byte
		if m.PreStamped {
			flags |= assignPreStamped
		}
		b = append(b, flags)
	}
	return b
}

func (m *readyMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Query)
	b = appendU32(b, m.Shard)
	return appendU64(b, m.Resume)
}

func (m *eventsMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Query)
	b = appendU32(b, m.Shard)
	b = appendU32(b, uint32(len(m.Events)))
	for i := range m.Events {
		ev := &m.Events[i]
		b = appendU32(b, uint32(ev.Type))
		b = appendU64(b, uint64(ev.TS))
		b = appendU32(b, uint32(len(ev.Fields)))
		for _, f := range ev.Fields {
			b = appendU64(b, math.Float64bits(f))
		}
	}
	return b
}

func (m *emitMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Query)
	b = appendU32(b, m.Shard)
	b = appendU64(b, m.Ordinal)
	b = appendStr(b, m.Match.Query)
	b = appendU64(b, m.Match.WindowID)
	b = appendU64(b, m.Match.DetectedAt)
	b = appendU64s(b, m.Match.Constituents)
	return appendU64s(b, m.Match.Consumed)
}

func (m *progressMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Query)
	b = appendU32(b, m.Shard)
	return appendU64(b, m.Boundary)
}

func (m *shardMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Query)
	return appendU32(b, m.Shard)
}

func (m *handoffMsg) encode(b []byte) []byte {
	b = appendU32(b, m.Query)
	b = appendU32(b, m.Shard)
	b = appendU64(b, m.Watermark)
	return appendBytes(b, m.Snapshot)
}

func (m *errorMsg) encode(b []byte) []byte {
	return appendStr(b, m.Msg)
}

// --- decoding -----------------------------------------------------------

// wireReader is a sticky-error cursor over one frame body (mirrors the
// durable codec's decoder): the first malformed field poisons the reader
// and every later accessor returns a zero value, so message decoders read
// straight through and check err once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: bad frame: "+format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *wireReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *wireReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *wireReader) count() int {
	n := r.u32()
	if n > maxWireCount {
		r.fail("count %d exceeds limit %d", n, maxWireCount)
		return 0
	}
	return int(n)
}

func (r *wireReader) str() string {
	n := r.count()
	return string(r.take(n))
}

func (r *wireReader) bytes() []byte {
	n := r.count()
	p := r.take(n)
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

func (r *wireReader) strs() []string {
	n := r.count()
	if r.err != nil {
		return nil
	}
	out := make([]string, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

func (r *wireReader) u64s() []uint64 {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	if n*8 > len(r.b)-r.off {
		r.fail("u64 list of %d overruns frame", n)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

// finish reports the sticky error, or a trailing-garbage error when the
// frame body was not fully consumed.
func (r *wireReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: bad frame: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

func decodeHello(b []byte) (helloMsg, error) {
	r := wireReader{b: b}
	m := helloMsg{Proto: r.u32(), Capacity: r.u32(), Name: r.str()}
	return m, r.finish()
}

func decodeWelcome(b []byte) (welcomeMsg, error) {
	r := wireReader{b: b}
	m := welcomeMsg{Proto: r.u32(), WorkerID: r.u32()}
	return m, r.finish()
}

func decodeTables(b []byte) (tablesMsg, error) {
	r := wireReader{b: b}
	m := tablesMsg{Types: r.strs(), Fields: r.strs()}
	return m, r.finish()
}

func decodeAssign(b []byte, proto uint32) (assignMsg, error) {
	r := wireReader{b: b}
	m := assignMsg{
		Query:    r.u32(),
		Shard:    r.u32(),
		NShards:  r.u32(),
		EmitBase: r.u64(),
		Name:     r.str(),
		Text:     r.str(),
		Snapshot: r.bytes(),
	}
	if proto >= 2 {
		m.PreStamped = r.u8()&assignPreStamped != 0
	}
	return m, r.finish()
}

func decodeReady(b []byte) (readyMsg, error) {
	r := wireReader{b: b}
	m := readyMsg{Query: r.u32(), Shard: r.u32(), Resume: r.u64()}
	return m, r.finish()
}

func decodeEvents(b []byte) (eventsMsg, error) {
	r := wireReader{b: b}
	m := eventsMsg{Query: r.u32(), Shard: r.u32()}
	n := r.count()
	if r.err == nil && n > 0 {
		m.Events = make([]event.Event, 0, min(n, 1<<16))
		for i := 0; i < n && r.err == nil; i++ {
			var ev event.Event
			ev.Type = event.Type(r.u32())
			ev.TS = int64(r.u64())
			nf := r.count()
			if r.err != nil {
				break
			}
			if nf > 0 {
				if nf*8 > len(r.b)-r.off {
					r.fail("field list of %d overruns frame", nf)
					break
				}
				ev.Fields = make([]float64, nf)
				for j := range ev.Fields {
					ev.Fields[j] = math.Float64frombits(r.u64())
				}
			}
			m.Events = append(m.Events, ev)
		}
	}
	return m, r.finish()
}

func decodeEmit(b []byte) (emitMsg, error) {
	r := wireReader{b: b}
	m := emitMsg{Query: r.u32(), Shard: r.u32(), Ordinal: r.u64()}
	m.Match.Query = r.str()
	m.Match.WindowID = r.u64()
	m.Match.DetectedAt = r.u64()
	m.Match.Constituents = r.u64s()
	m.Match.Consumed = r.u64s()
	return m, r.finish()
}

func decodeProgress(b []byte) (progressMsg, error) {
	r := wireReader{b: b}
	m := progressMsg{Query: r.u32(), Shard: r.u32(), Boundary: r.u64()}
	return m, r.finish()
}

func decodeShardMsg(b []byte) (shardMsg, error) {
	r := wireReader{b: b}
	m := shardMsg{Query: r.u32(), Shard: r.u32()}
	return m, r.finish()
}

func decodeHandoff(b []byte) (handoffMsg, error) {
	r := wireReader{b: b}
	m := handoffMsg{Query: r.u32(), Shard: r.u32(), Watermark: r.u64(), Snapshot: r.bytes()}
	return m, r.finish()
}

func decodeError(b []byte) (errorMsg, error) {
	r := wireReader{b: b}
	m := errorMsg{Msg: r.str()}
	return m, r.finish()
}
