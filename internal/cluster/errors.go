package cluster

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by operations on a closed coordinator, query or
// worker.
var ErrClosed = errors.New("cluster: closed")

// Error is the typed failure of a cluster operation that exhausted its
// retry budget or lost its peer: joining a coordinator, resubmitting a
// query over a flapping link, or an assignment a worker rejected. Callers
// match it with errors.As to distinguish a cluster-liveness failure (peer
// gone, retries exhausted) from a query error.
type Error struct {
	// Op names the failed operation ("join", "resubmit", "assign", ...).
	Op string
	// Addr is the peer involved, when known.
	Addr string
	// Attempts counts how many tries were spent before giving up (0 when
	// the operation is not retried).
	Attempts int
	// Err is the final underlying error.
	Err error
}

func (e *Error) Error() string {
	msg := "cluster: " + e.Op
	if e.Addr != "" {
		msg += " " + e.Addr
	}
	if e.Attempts > 0 {
		msg += fmt.Sprintf(" (gave up after %d attempts)", e.Attempts)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }
