// Package plan is the cost-based query planner of the SPECTRE runtime.
// It sits between query.Build() and engine/runtime submission and makes
// the hot path do strictly less work per event, without touching the
// §4.2 correctness argument: every optimization below either drops
// events that provably cannot influence any match, or reorders pure
// conjuncts of one step's predicate.
//
// Three cooperating optimizations:
//
//  1. Type-indexed intake filtering. Each query accepts a closed set of
//     event types (union of the step type filters and the window start
//     filter). Where legal (see Plan.IntakeActive), the runtime tests
//     incoming events against a dense type bitmap — plus any hoisted
//     binding-free guards — at Feed/FeedBatch time and drops irrelevant
//     events before they touch shard queues, the arena, or matchers.
//     Dropped events still advance the per-shard sequence numbering
//     (events are stamped with their raw-substream position), so window
//     extents and match output are byte-identical to unplanned runs.
//
//  2. Selectivity-ordered predicate evaluation. A step's conjunctive
//     predicate (recorded by the query builder as pattern.Conjuncts) is
//     split into binding-free and binding-dependent classes. The
//     binding-free class always evaluates first; within each class,
//     conjuncts are reordered by observed pass rate (EWMA, sampled from
//     live traffic) so the most selective conjunct short-circuits the
//     rest. Reordering is legal because conjunct predicates are pure.
//
//  3. Plan-driven configuration. When the submitter pinned neither, the
//     public runtime picks the shard count and the scheduler policy
//     (sched.TopK vs sched.Adaptive) from the plan's estimated
//     per-event cost (see Estimate).
//
// A Plan is an explicit, inspectable value: Explain returns a
// human-readable rendering and Info a JSON-serializable one, exposed by
// spectre-server at /debug/spectre/metrics.
package plan

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/sched"
	"github.com/spectrecep/spectre/internal/stats"
)

const (
	// sampleMask picks which events contribute to pass-rate statistics:
	// seq&sampleMask == 0, i.e. 1 in 64.
	sampleMask = 63
	// replanEvery is how many sampled evaluations trigger a reorder
	// check. Must be a power of two.
	replanEvery = 1024
	// minSamples is the least sampled evaluations a conjunct needs in a
	// cycle before its observed rate updates the EWMA.
	minSamples = 32
	// hysteresis is the pass-rate improvement a new order must show at
	// some position before it replaces the current one; prevents
	// oscillation between near-equal orders.
	hysteresis = 0.05
	// ewmaAlpha smooths observed pass rates across replan cycles.
	ewmaAlpha = 0.2
)

// Options parameterizes New.
type Options struct {
	// Reg resolves type ids to names in Explain/Info output. Optional.
	Reg *event.Registry
}

// Plan is the compiled evaluation plan of one query. Admit and
// RelevantType are safe for concurrent use; the deployment setters are
// called once during submission, before the plan is published.
type Plan struct {
	query *pattern.Query // planned deep copy; execution compiles this

	intake       bool
	intakeReason string // why intake filtering is off, when it is
	matcherOK    bool   // every step typed: matcher-level skip is legal
	relevant     []uint64
	admit        []admitStep
	steps        []*stepPlan // parallel to FlatSteps; nil when unprogrammed

	est Estimate
	reg *event.Registry

	// Deployment facts, recorded by the submitter for Explain/Info.
	shards    int
	policy    string
	autoShard bool
	autoSched bool

	filtered atomic.Uint64 // events dropped by the intake prefilter
}

// admitStep is the intake-time test derived from one step: the event is
// relevant to the step when its type passes the filter and every
// binding-free conjunct accepts it.
type admitStep struct {
	types []event.Type // empty = any type
	free  []pattern.Predicate
}

func (s *admitStep) accepts(ev *event.Event) bool {
	if len(s.types) > 0 {
		ok := false
		for _, t := range s.types {
			if t == ev.Type {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, p := range s.free {
		if !p(ev, nil) {
			return false
		}
	}
	return true
}

// New plans q. The query must already be validated (pattern.Query
// Validate normalizes quantifiers and completion behaviour); q itself is
// never mutated — the plan owns a deep copy with rewritten predicates.
func New(q *pattern.Query, opts Options) *Plan {
	p := &Plan{query: cloneQuery(q), reg: opts.Reg, est: EstimateQuery(q)}
	p.analyze()
	p.program()
	return p
}

// analyze computes the type closure and the intake/matcher filter
// legality from the planned query.
func (p *Plan) analyze() {
	flats := p.query.Pattern.FlatSteps()
	p.matcherOK = true
	var maxType event.Type
	addType := func(t event.Type) {
		if t > maxType {
			maxType = t
		}
	}
	vacuous := ""
	for _, fs := range flats {
		st := fs.Step
		var free []pattern.Predicate
		for _, c := range st.Conjuncts {
			if c.BindingFree {
				free = append(free, c.Pred)
			}
		}
		if len(st.Types) == 0 {
			p.matcherOK = false
			if len(free) == 0 && vacuous == "" {
				vacuous = st.Name
			}
		}
		for _, t := range st.Types {
			addType(t)
		}
		p.admit = append(p.admit, admitStep{types: st.Types, free: free})
	}
	for _, t := range p.query.Window.StartTypes {
		addType(t)
	}
	if p.matcherOK {
		p.relevant = make([]uint64, int(maxType)/64+1)
		for _, fs := range flats {
			for _, t := range fs.Step.Types {
				p.relevant[int(t)/64] |= 1 << (uint(t) % 64)
			}
		}
		for _, t := range p.query.Window.StartTypes {
			p.relevant[int(t)/64] |= 1 << (uint(t) % 64)
		}
	}

	// Intake filtering drops events before window formation, so it is
	// legal only when dropped events can neither open windows
	// (StartOnMatch keeps every window-opening event via the start
	// filter, which the admit test subsumes) nor shift count-based
	// slides (StartEvery anchors windows at raw stream positions of
	// arbitrary events). A step that accepts any type with no
	// binding-free guard makes the admit test vacuous — every event is
	// relevant — so filtering is pointless and stays off.
	switch {
	case p.query.Window.StartKind != pattern.StartOnMatch:
		p.intakeReason = "window slides over every event (FROM EVERY)"
	case vacuous != "":
		p.intakeReason = fmt.Sprintf("step %q accepts any event (no type filter, no binding-free guard)", vacuous)
	default:
		p.intake = true
	}
}

// program installs selectivity-ordered predicate programs on every step
// with at least two conjuncts.
func (p *Plan) program() {
	flats := p.query.Pattern.FlatSteps()
	p.steps = make([]*stepPlan, len(flats))
	for i, fs := range flats {
		st := fs.Step
		if st.Pred == nil || len(st.Conjuncts) < 2 {
			continue
		}
		sp := newStepPlan(st.Name, st.Conjuncts)
		st.Pred = sp.predicate
		p.steps[i] = sp
	}
}

// Query returns the planned query: a deep copy of the input with
// predicate programs installed. Compile and execute this one.
func (p *Plan) Query() *pattern.Query { return p.query }

// IntakeActive reports whether the type-indexed intake prefilter is
// legal and non-vacuous for this query. When true, events failing Admit
// may be dropped at Feed time — provided sequence stamping preserves
// their raw-substream positions.
func (p *Plan) IntakeActive() bool { return p.intake }

// Admit reports whether ev can influence any match of the query: it is
// relevant to at least one step (type filter plus binding-free guards)
// or opens a window. Call only when IntakeActive.
func (p *Plan) Admit(ev *event.Event) bool {
	for i := range p.admit {
		if p.admit[i].accepts(ev) {
			return true
		}
	}
	// The start filter derives from the FROM step's predicate, so this
	// is provably redundant with the step loop above; kept as a safety
	// net because window formation is the one thing a dropped event
	// must never change.
	return p.query.Window.StartMatches(ev)
}

// Projection returns the sorted union of payload field indexes any step
// predicate (or the window start predicate) of the planned query can
// read, and whether that set is exhaustively known. When ok is true, an
// event stripped to exactly these fields (absent fields reading 0, as
// Event.Field defines) is indistinguishable from the original to every
// predicate the query evaluates — so a distributed transport may ship
// only those fields. ok is false when any predicated step carries a
// conjunct without field metadata (programmatic Where/WhereConjunct), or
// when a custom start predicate exists outside the step conjuncts
// (FromFilter). Matches reference events by position, so fields that no
// predicate reads never influence query output.
func (p *Plan) Projection() (fields []int, ok bool) {
	w := &p.query.Window
	if w.StartPred != nil && !w.StartFromStep {
		return nil, false
	}
	seen := make(map[int]bool)
	for _, fs := range p.query.Pattern.FlatSteps() {
		st := fs.Step
		if st.Pred == nil {
			continue
		}
		if len(st.Conjuncts) == 0 {
			return nil, false
		}
		for j := range st.Conjuncts {
			c := &st.Conjuncts[j]
			if !c.FieldsKnown {
				return nil, false
			}
			for _, f := range c.Fields {
				if !seen[f] {
					seen[f] = true
					fields = append(fields, f)
				}
			}
		}
	}
	sort.Ints(fields)
	return fields, true
}

// MatcherFilterActive reports whether every step carries a type filter,
// making the matcher-level type skip legal: an event whose type no step
// accepts is a pure no-op for detection and may bypass the matcher,
// the consumed-set checks and the suppression checks.
func (p *Plan) MatcherFilterActive() bool { return p.matcherOK }

// UtilityPrior scores the static match-participation likelihood of type
// t in [0, 1] for load shedding (internal/shed): the maximum, over the
// steps whose type filter accepts t, of the product of the step's
// observed conjunct pass rates — how likely an event of that type is to
// clear the most permissive step that could bind it. Types no step
// accepts score near zero; types that only open windows score the
// neutral 0.5. Pass rates are the same live EWMAs that drive conjunct
// reordering, so the prior tracks the traffic. Safe for concurrent use.
func (p *Plan) UtilityPrior(t event.Type) float64 {
	best := 0.0
	accepted := false
	for i, fs := range p.query.Pattern.FlatSteps() {
		st := fs.Step
		if !typeAccepted(st.Types, t) {
			continue
		}
		accepted = true
		pp := 1.0
		if st.Pred != nil {
			pp = 0.5 // single conjunct: no sampled program, assume even odds
			if i < len(p.steps) && p.steps[i] != nil {
				pp = p.steps[i].passProduct()
			}
		}
		if pp > best {
			best = pp
		}
	}
	if !accepted {
		for _, st := range p.query.Window.StartTypes {
			if st == t {
				return 0.5
			}
		}
		return 0.05
	}
	if best < 0.02 {
		return 0.02 // floor: selective types stay sheddable, not dead
	}
	return best
}

// typeAccepted reports whether a step type filter (empty = any type)
// accepts t.
func typeAccepted(types []event.Type, t event.Type) bool {
	if len(types) == 0 {
		return true
	}
	for _, st := range types {
		if st == t {
			return true
		}
	}
	return false
}

// RelevantType reports whether some step's type filter accepts t. Call
// only when MatcherFilterActive.
func (p *Plan) RelevantType(t event.Type) bool {
	w := int(t) / 64
	if w >= len(p.relevant) {
		return false
	}
	return p.relevant[w]&(1<<(uint(t)%64)) != 0
}

// CountFiltered adds n intake-dropped events to the plan's counter
// (mirrored into core.Metrics.FilteredEvents).
func (p *Plan) CountFiltered(n uint64) { p.filtered.Add(n) }

// Filtered returns the cumulative intake-dropped event count.
func (p *Plan) Filtered() uint64 { return p.filtered.Load() }

// SetDeployment records the submission-time configuration choices so
// Explain/Info can report them. auto marks values the planner chose
// (rather than the submitter pinning them).
func (p *Plan) SetDeployment(shards int, policy sched.Kind, autoShards, autoSched bool) {
	p.shards = shards
	p.policy = policy.String()
	p.autoShard = autoShards
	p.autoSched = autoSched
}

// Estimate returns the static cost estimate the plan was built from.
func (p *Plan) Estimate() Estimate { return p.est }

func (p *Plan) typeName(t event.Type) string {
	if p.reg != nil {
		if n := p.reg.TypeName(t); n != "" {
			return n
		}
	}
	return fmt.Sprintf("type-%d", t)
}

// relevantTypeNames lists the closed type set, sorted by id.
func (p *Plan) relevantTypeNames() []string {
	if !p.matcherOK {
		return nil
	}
	var out []string
	for w, bits := range p.relevant {
		for b := 0; b < 64; b++ {
			if bits&(1<<uint(b)) != 0 {
				out = append(out, p.typeName(event.Type(w*64+b)))
			}
		}
	}
	return out
}

// ConjunctInfo describes one conjunct of a step's predicate program.
type ConjunctInfo struct {
	Label       string  `json:"label"`
	BindingFree bool    `json:"binding_free"`
	PassRate    float64 `json:"pass_rate"` // EWMA; 0.5 until observed
}

// StepInfo describes one step's predicate program.
type StepInfo struct {
	Name      string         `json:"name"`
	Types     []string       `json:"types,omitempty"`
	Conjuncts []ConjunctInfo `json:"conjuncts,omitempty"`
	Order     []string       `json:"order,omitempty"` // labels, current evaluation order
	Replans   uint64         `json:"replans,omitempty"`
}

// Info is the JSON-serializable rendering of a plan, served at
// /debug/spectre/metrics.
type Info struct {
	Query           string     `json:"query"`
	IntakeFilter    bool       `json:"intake_filter"`
	IntakeOffReason string     `json:"intake_off_reason,omitempty"`
	MatcherFilter   bool       `json:"matcher_filter"`
	RelevantTypes   []string   `json:"relevant_types,omitempty"`
	Steps           []StepInfo `json:"steps,omitempty"`
	Shards          int        `json:"shards,omitempty"`
	AutoShards      bool       `json:"auto_shards,omitempty"`
	Scheduler       string     `json:"scheduler,omitempty"`
	AutoScheduler   bool       `json:"auto_scheduler,omitempty"`
	PerEventCost    float64    `json:"per_event_cost"`
	FilteredEvents  uint64     `json:"filtered_events"`
}

// Info returns the current state of the plan for serialization.
func (p *Plan) Info() Info {
	info := Info{
		Query:           p.query.Name,
		IntakeFilter:    p.intake,
		IntakeOffReason: p.intakeReason,
		MatcherFilter:   p.matcherOK,
		RelevantTypes:   p.relevantTypeNames(),
		Shards:          p.shards,
		AutoShards:      p.autoShard,
		Scheduler:       p.policy,
		AutoScheduler:   p.autoSched,
		PerEventCost:    p.est.PerEventCost,
		FilteredEvents:  p.filtered.Load(),
	}
	for i, fs := range p.query.Pattern.FlatSteps() {
		si := StepInfo{Name: fs.Step.Name}
		for _, t := range fs.Step.Types {
			si.Types = append(si.Types, p.typeName(t))
		}
		if sp := p.steps[i]; sp != nil {
			si.Conjuncts, si.Order, si.Replans = sp.info()
		}
		info.Steps = append(info.Steps, si)
	}
	return info
}

// Explain renders the plan as indented text for logs and examples.
func (p *Plan) Explain() string {
	var b strings.Builder
	info := p.Info()
	fmt.Fprintf(&b, "plan %s (per-event cost %.1f)\n", info.Query, info.PerEventCost)
	if info.IntakeFilter {
		fmt.Fprintf(&b, "  intake filter: on\n")
	} else {
		fmt.Fprintf(&b, "  intake filter: off (%s)\n", info.IntakeOffReason)
	}
	if info.MatcherFilter {
		fmt.Fprintf(&b, "  matcher type filter: on [%s]\n", strings.Join(info.RelevantTypes, " "))
	} else {
		fmt.Fprintf(&b, "  matcher type filter: off (untyped step)\n")
	}
	for _, st := range info.Steps {
		fmt.Fprintf(&b, "  step %s", st.Name)
		if len(st.Types) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(st.Types, " "))
		}
		if len(st.Order) > 0 {
			fmt.Fprintf(&b, ": order %s", strings.Join(st.Order, " -> "))
			if st.Replans > 0 {
				fmt.Fprintf(&b, " (%d replans)", st.Replans)
			}
		}
		b.WriteByte('\n')
	}
	if info.Shards > 0 {
		fmt.Fprintf(&b, "  shards: %d%s\n", info.Shards, autoMark(info.AutoShards))
	}
	if info.Scheduler != "" {
		fmt.Fprintf(&b, "  scheduler: %s%s\n", info.Scheduler, autoMark(info.AutoScheduler))
	}
	return b.String()
}

func autoMark(auto bool) string {
	if auto {
		return " (planner-chosen)"
	}
	return " (pinned)"
}

// stepPlan is the runtime predicate program of one step: its conjuncts,
// the current evaluation order (atomic, republished on replan) and the
// sampled pass-rate statistics driving reordering.
type stepPlan struct {
	name  string
	conjs []pattern.Conjunct
	free  []int // conjunct indexes, binding-free class, declaration order
	dep   []int // conjunct indexes, binding-dependent class

	order   atomic.Pointer[[]int]
	stat    []conjStat
	sampled atomic.Uint64
	replans atomic.Uint64

	mu    sync.Mutex // guards rates during replan
	rates []stats.EWMA
}

type conjStat struct {
	evals  atomic.Uint64
	passes atomic.Uint64
}

func newStepPlan(name string, conjs []pattern.Conjunct) *stepPlan {
	sp := &stepPlan{
		name:  name,
		conjs: conjs,
		stat:  make([]conjStat, len(conjs)),
		rates: make([]stats.EWMA, len(conjs)),
	}
	for i := range sp.rates {
		sp.rates[i].Alpha = ewmaAlpha
	}
	for i, c := range conjs {
		if c.BindingFree {
			sp.free = append(sp.free, i)
		} else {
			sp.dep = append(sp.dep, i)
		}
	}
	initial := make([]int, 0, len(conjs))
	initial = append(initial, sp.free...)
	initial = append(initial, sp.dep...)
	sp.order.Store(&initial)
	return sp
}

// predicate is the step's installed pattern.Predicate: conjuncts in the
// current order, binding-free ones with a nil binder, short-circuiting
// on the first failure. 1-in-64 events (by raw sequence number) also
// feed the pass-rate statistics; every replanEvery-th sampled
// evaluation checks whether a better order is available. Pure conjuncts
// make the reorder semantically invisible.
func (sp *stepPlan) predicate(ev *event.Event, b pattern.Binder) bool {
	order := *sp.order.Load()
	sample := ev.Seq&sampleMask == 0
	result := true
	for _, i := range order {
		c := &sp.conjs[i]
		var pass bool
		if c.BindingFree {
			pass = c.Pred(ev, nil)
		} else {
			pass = c.Pred(ev, b)
		}
		if sample {
			sp.stat[i].evals.Add(1)
			if pass {
				sp.stat[i].passes.Add(1)
			}
		}
		if !pass {
			result = false
			break
		}
	}
	if sample && sp.sampled.Add(1)&(replanEvery-1) == 0 {
		sp.maybeReorder()
	}
	return result
}

// maybeReorder folds the cycle's sampled counters into the EWMA pass
// rates and republishes the evaluation order when a different order is
// clearly (beyond hysteresis) better: each class sorted by ascending
// pass rate — most selective first — with the binding-free class always
// ahead of the binding-dependent one. Ties keep declaration order.
func (sp *stepPlan) maybeReorder() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	rate := make([]float64, len(sp.conjs))
	for i := range sp.stat {
		e := sp.stat[i].evals.Swap(0)
		pass := sp.stat[i].passes.Swap(0)
		if e >= minSamples {
			sp.rates[i].Observe(float64(pass) / float64(e))
		}
		if sp.rates[i].Seeded() {
			rate[i] = sp.rates[i].Value()
		} else {
			rate[i] = 0.5
		}
	}
	next := make([]int, 0, len(sp.conjs))
	next = append(next, sortedByRate(sp.free, rate)...)
	next = append(next, sortedByRate(sp.dep, rate)...)
	cur := *sp.order.Load()
	improve := 0.0
	for k := range cur {
		if cur[k] != next[k] {
			if d := rate[cur[k]] - rate[next[k]]; d > improve {
				improve = d
			}
		}
	}
	if improve > hysteresis {
		sp.order.Store(&next)
		sp.replans.Add(1)
	}
}

func sortedByRate(class []int, rate []float64) []int {
	out := append([]int(nil), class...)
	sort.SliceStable(out, func(a, b int) bool { return rate[out[a]] < rate[out[b]] })
	return out
}

// passProduct returns the product of the step's conjunct pass-rate
// EWMAs (0.5 for unseeded conjuncts): the estimated likelihood that an
// event of an accepted type clears the step's whole predicate.
func (sp *stepPlan) passProduct() float64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	prod := 1.0
	for i := range sp.rates {
		if sp.rates[i].Seeded() {
			prod *= sp.rates[i].Value()
		} else {
			prod *= 0.5
		}
	}
	return prod
}

func (sp *stepPlan) info() (conjs []ConjunctInfo, order []string, replans uint64) {
	sp.mu.Lock()
	for i, c := range sp.conjs {
		r := 0.5
		if sp.rates[i].Seeded() {
			r = sp.rates[i].Value()
		}
		conjs = append(conjs, ConjunctInfo{Label: c.Label, BindingFree: c.BindingFree, PassRate: r})
	}
	sp.mu.Unlock()
	for _, i := range *sp.order.Load() {
		order = append(order, sp.conjs[i].Label)
	}
	return conjs, order, sp.replans.Load()
}

// cloneQuery deep-copies q so predicate rewriting never mutates the
// caller's query value.
func cloneQuery(q *pattern.Query) *pattern.Query {
	cp := *q
	cp.Pattern.Elements = append([]pattern.Element(nil), q.Pattern.Elements...)
	for i := range cp.Pattern.Elements {
		el := &cp.Pattern.Elements[i]
		cloneStep(&el.Step)
		if el.Set != nil {
			el.Set = append([]pattern.Step(nil), el.Set...)
			for j := range el.Set {
				cloneStep(&el.Set[j])
			}
		}
	}
	cp.Window.StartTypes = append([]event.Type(nil), q.Window.StartTypes...)
	if q.Partition != nil {
		part := *q.Partition
		cp.Partition = &part
	}
	return &cp
}

func cloneStep(st *pattern.Step) {
	st.Types = append([]event.Type(nil), st.Types...)
	st.Conjuncts = append([]pattern.Conjunct(nil), st.Conjuncts...)
}

// Estimate is the static cost model: rough per-event work units used to
// choose the shard count and scheduler policy when the submitter pinned
// neither. Units are arbitrary but monotone in real cost (one type
// check ~ 1, one conjunct ~ 1, Kleene and set steps amplify).
type Estimate struct {
	Steps        int     `json:"steps"`
	Conjuncts    int     `json:"conjuncts"`
	BindingFree  int     `json:"binding_free"`
	PerEventCost float64 `json:"per_event_cost"`
	// RecommendedShards caps the shard fan-out for cheap queries, where
	// scatter overhead dominates matching work.
	RecommendedShards int `json:"recommended_shards"`
	// RecommendedSched is Adaptive for expensive queries (runtime
	// resizing pays off) and TopK — the paper's fixed walk — otherwise.
	RecommendedSched sched.Kind `json:"-"`
}

// costly is the per-event cost above which Adaptive scheduling and full
// shard fan-out are recommended.
const costly = 8

// EstimateQuery computes the static cost estimate for q without
// building a full plan. The public runtime calls this before submission
// to pick defaults; plan.New embeds the same estimate in the Plan.
func EstimateQuery(q *pattern.Query) Estimate {
	var est Estimate
	for _, fs := range q.Pattern.FlatSteps() {
		st := fs.Step
		est.Steps++
		w := 1.0
		if st.Quant == pattern.OneOrMore {
			w = 2 // Kleene steps re-test every contiguous event
		}
		conj := len(st.Conjuncts)
		if conj == 0 && st.Pred != nil {
			conj = 1
		}
		for _, c := range st.Conjuncts {
			if c.BindingFree {
				est.BindingFree++
			}
		}
		est.Conjuncts += conj
		est.PerEventCost += w * float64(1+conj)
	}
	procs := defaultProcs()
	if est.PerEventCost >= costly {
		est.RecommendedShards = procs
		est.RecommendedSched = sched.Adaptive
	} else {
		est.RecommendedShards = max(1, procs/2)
		est.RecommendedSched = sched.TopK
	}
	return est
}

func defaultProcs() int { return runtime.GOMAXPROCS(0) }
