package plan

import (
	"reflect"
	"strings"
	"testing"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/sched"
	"github.com/spectrecep/spectre/query"
)

// buildTyped builds a fully-typed two-step query (A then B, window FROM A)
// with a binding-free guard on B.
func buildTyped(t *testing.T, reg *event.Registry) *pattern.Query {
	t.Helper()
	b := query.New(reg).Name("typed")
	open := b.Float("open")
	q, err := b.
		Pattern(
			query.Step("A").Types("A"),
			query.Step("B").Types("B").WhereEvent(func(ev *query.Event) bool { return open.Of(ev) > 0 }),
		).
		Within(query.Events(100)).From("A").
		ConsumeNone().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestTypeClosure(t *testing.T) {
	reg := event.NewRegistry()
	// Intern distractor types around the relevant ones.
	reg.TypeID("X")
	q := buildTyped(t, reg)
	reg.TypeID("Y")

	p := New(q, Options{Reg: reg})
	if !p.MatcherFilterActive() {
		t.Fatal("fully typed query must enable the matcher type filter")
	}
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	tx, _ := reg.LookupType("X")
	ty, _ := reg.LookupType("Y")
	if !p.RelevantType(ta) || !p.RelevantType(tb) {
		t.Fatal("step types must be in the closure")
	}
	if p.RelevantType(tx) || p.RelevantType(ty) {
		t.Fatal("unreferenced types must be outside the closure")
	}
	// Out-of-range ids (beyond the bitmap) are irrelevant, not a panic.
	if p.RelevantType(event.Type(10_000)) {
		t.Fatal("unknown type id reported relevant")
	}
	names := p.Info().RelevantTypes
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("relevant type names = %v, want [A B]", names)
	}
}

func TestStartTypesJoinClosure(t *testing.T) {
	reg := event.NewRegistry()
	q, err := query.New(reg).Name("startfilter").
		Pattern(
			query.Step("A").Types("A"),
			query.Step("B").Types("B"),
		).
		Within(query.Events(100)).FromFilter(nil, "S").
		ConsumeNone().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := New(q, Options{Reg: reg})
	ts, _ := reg.LookupType("S")
	if !p.RelevantType(ts) {
		t.Fatal("window start types must join the closure")
	}
}

func TestIntakeLegality(t *testing.T) {
	reg := event.NewRegistry()
	q := buildTyped(t, reg)
	p := New(q, Options{})
	if !p.IntakeActive() {
		t.Fatalf("typed FROM-step query must enable intake filtering: %s", p.Explain())
	}

	// FROM EVERY windows anchor at raw positions of arbitrary events:
	// dropping any event would shift the slide.
	qe, err := query.New(reg).Name("every").
		Pattern(query.Step("A").Types("A"), query.Step("B").Types("B")).
		Within(query.Events(100)).FromEvery(10).
		ConsumeNone().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pe := New(qe, Options{})
	if pe.IntakeActive() {
		t.Fatal("FROM EVERY must disable intake filtering")
	}
	if !strings.Contains(pe.Info().IntakeOffReason, "FROM EVERY") {
		t.Fatalf("off reason %q", pe.Info().IntakeOffReason)
	}

	// An untyped, guard-free step accepts every event: the admit test is
	// vacuous and filtering must stay off.
	qv, err := query.New(reg).Name("vacuous").
		Pattern(
			query.Step("A").Types("A"),
			query.Step("Y").Where(func(_ *query.Event, _ query.Binder) bool { return true }),
		).
		Within(query.Events(100)).From("A").
		ConsumeNone().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pv := New(qv, Options{})
	if pv.IntakeActive() {
		t.Fatal("vacuous step must disable intake filtering")
	}
	if !strings.Contains(pv.Info().IntakeOffReason, `"Y"`) {
		t.Fatalf("off reason %q must name the vacuous step", pv.Info().IntakeOffReason)
	}
	// But an untyped step WITH a binding-free guard keeps filtering legal.
	qg, err := query.New(reg).Name("guarded").
		Pattern(
			query.Step("A").Types("A"),
			query.Step("Y").WhereEvent(func(ev *query.Event) bool { return ev.TS > 0 }),
		).
		Within(query.Events(100)).From("A").
		ConsumeNone().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pg := New(qg, Options{})
	if !pg.IntakeActive() {
		t.Fatal("binding-free guard on an untyped step keeps intake filtering legal")
	}
	if pg.MatcherFilterActive() {
		t.Fatal("untyped step must disable the matcher type filter")
	}
}

func TestAdmit(t *testing.T) {
	reg := event.NewRegistry()
	q := buildTyped(t, reg)
	p := New(q, Options{Reg: reg})
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	open, ok := reg.LookupField("open")
	if !ok {
		t.Fatal("field open not interned")
	}
	mk := func(typ event.Type, openV float64) *event.Event {
		fields := make([]float64, open+1)
		fields[open] = openV
		return &event.Event{Type: typ, Fields: fields}
	}
	if !p.Admit(mk(ta, 0)) {
		t.Fatal("step-A event must be admitted")
	}
	if !p.Admit(mk(tb, 1)) {
		t.Fatal("step-B event passing its guard must be admitted")
	}
	if p.Admit(mk(tb, -1)) {
		t.Fatal("step-B event failing its binding-free guard must be dropped")
	}
	if p.Admit(mk(reg.TypeID("Z"), 1)) {
		t.Fatal("unreferenced type must be dropped")
	}
}

// passer returns a pure conjunct that accepts when accept is true.
func passer(accept bool) pattern.Predicate {
	return func(*event.Event, pattern.Binder) bool { return accept }
}

func drive(sp *stepPlan, n int) {
	ev := &event.Event{} // Seq 0: every call is sampled
	for i := 0; i < n; i++ {
		sp.predicate(ev, nil)
	}
}

func orderOf(sp *stepPlan) []int { return *sp.order.Load() }

func TestReorderMovesSelectiveConjunctFirst(t *testing.T) {
	conjs := []pattern.Conjunct{
		{Pred: passer(true), BindingFree: true, Label: "wide"},
		{Pred: passer(false), BindingFree: true, Label: "narrow"},
	}
	sp := newStepPlan("s", conjs)
	drive(sp, minSamples*2)
	sp.maybeReorder()
	if got := orderOf(sp); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("order = %v, want the failing conjunct first", got)
	}
	if sp.replans.Load() != 1 {
		t.Fatalf("replans = %d, want 1", sp.replans.Load())
	}
}

func TestReorderStableOnTies(t *testing.T) {
	conjs := []pattern.Conjunct{
		{Pred: passer(true), BindingFree: true, Label: "c0"},
		{Pred: passer(true), BindingFree: true, Label: "c1"},
		{Pred: passer(true), BindingFree: true, Label: "c2"},
	}
	sp := newStepPlan("s", conjs)
	drive(sp, minSamples*2)
	for i := 0; i < 3; i++ {
		sp.maybeReorder()
	}
	if got := orderOf(sp); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("order = %v, tied rates must keep declaration order", got)
	}
	if sp.replans.Load() != 0 {
		t.Fatalf("replans = %d, tied rates must never republish", sp.replans.Load())
	}
}

func TestReorderHysteresis(t *testing.T) {
	// Rates 1.0 vs ~0.97: the difference is under the hysteresis, so the
	// order must not flip even though a "better" order exists.
	n := 0
	almost := func(*event.Event, pattern.Binder) bool {
		n++
		return n%64 != 0
	}
	conjs := []pattern.Conjunct{
		{Pred: passer(true), BindingFree: true, Label: "always"},
		{Pred: almost, BindingFree: true, Label: "almost"},
	}
	sp := newStepPlan("s", conjs)
	drive(sp, minSamples*4)
	sp.maybeReorder()
	if got := orderOf(sp); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("order = %v, sub-hysteresis improvement must not replan", got)
	}
}

func TestBindingFreeClassStaysFirst(t *testing.T) {
	// The binding-dependent conjunct fails always (rate 0), the
	// binding-free one passes always (rate 1). Even so, the binding-free
	// class must stay ahead: binder-dependent conjuncts may be arbitrarily
	// expensive and are never hoisted.
	conjs := []pattern.Conjunct{
		{Pred: passer(false), BindingFree: false, Label: "dep"},
		{Pred: passer(true), BindingFree: true, Label: "free"},
	}
	sp := newStepPlan("s", conjs)
	if got := orderOf(sp); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("initial order = %v, want binding-free first", got)
	}
	drive(sp, minSamples*2)
	sp.maybeReorder()
	if got := orderOf(sp); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("order = %v, classes must not interleave", got)
	}
}

func TestPredicateShortCircuits(t *testing.T) {
	called := false
	conjs := []pattern.Conjunct{
		{Pred: passer(false), BindingFree: true, Label: "gate"},
		{Pred: func(*event.Event, pattern.Binder) bool { called = true; return true }, BindingFree: false, Label: "tail"},
	}
	sp := newStepPlan("s", conjs)
	if sp.predicate(&event.Event{Seq: 1}, nil) {
		t.Fatal("predicate must fail when a conjunct fails")
	}
	if called {
		t.Fatal("later conjuncts must not run after a failure")
	}
}

func TestPlanDoesNotMutateInput(t *testing.T) {
	reg := event.NewRegistry()
	q := buildTyped(t, reg)
	origPred := make([]uintptr, 0, 2)
	for _, fs := range q.Pattern.FlatSteps() {
		origPred = append(origPred, reflect.ValueOf(fs.Step.Pred).Pointer())
	}
	p := New(q, Options{})
	for i, fs := range q.Pattern.FlatSteps() {
		if reflect.ValueOf(fs.Step.Pred).Pointer() != origPred[i] {
			t.Fatalf("step %d predicate of the input query was rewritten", i)
		}
	}
	// The planned copy's multi-conjunct steps run the predicate program.
	planned := p.Query().Pattern.FlatSteps()
	if len(planned) != len(origPred) {
		t.Fatalf("planned pattern has %d steps", len(planned))
	}
	if p.Query() == q {
		t.Fatal("plan must own a deep copy of the query")
	}
}

func TestEstimateQuery(t *testing.T) {
	reg := event.NewRegistry()
	cheap := buildTyped(t, reg)
	ce := EstimateQuery(cheap)
	if ce.Steps != 2 || ce.RecommendedSched != sched.TopK {
		t.Fatalf("cheap estimate = %+v, want 2 steps, TopK", ce)
	}
	if ce.RecommendedShards < 1 {
		t.Fatalf("recommended shards = %d", ce.RecommendedShards)
	}

	b := query.New(reg).Name("costly")
	guard := func(ev *query.Event) bool { return ev.TS >= 0 }
	b.Pattern(query.Step("A").Types("A").WhereEvent(guard))
	for i := 0; i < 4; i++ {
		b.Pattern(query.Plus(string(rune('B' + i))).Types("B").WhereEvent(guard).WhereEvent(guard))
	}
	q, err := b.Within(query.Events(100)).From("A").ConsumeNone().Build()
	if err != nil {
		t.Fatal(err)
	}
	he := EstimateQuery(q)
	if he.PerEventCost < costly || he.RecommendedSched != sched.Adaptive {
		t.Fatalf("costly estimate = %+v, want Adaptive", he)
	}
	if he.PerEventCost <= ce.PerEventCost {
		t.Fatal("cost model must be monotone in pattern size")
	}
}

func TestExplainAndInfo(t *testing.T) {
	reg := event.NewRegistry()
	q := buildTyped(t, reg)
	p := New(q, Options{Reg: reg})
	p.SetDeployment(4, sched.Adaptive, true, false)
	p.CountFiltered(7)

	info := p.Info()
	if !info.IntakeFilter || !info.MatcherFilter {
		t.Fatalf("info = %+v", info)
	}
	if info.FilteredEvents != 7 {
		t.Fatalf("filtered = %d, want 7", info.FilteredEvents)
	}
	if info.Shards != 4 || !info.AutoShards || info.Scheduler != "adaptive" || info.AutoScheduler {
		t.Fatalf("deployment facts = %+v", info)
	}

	text := p.Explain()
	for _, want := range []string{"plan typed", "intake filter: on", "matcher type filter: on [A B]", "shards: 4 (planner-chosen)", "scheduler: adaptive (pinned)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}
}

func TestUtilityPrior(t *testing.T) {
	reg := event.NewRegistry()
	reg.TypeID("X") // distractor: accepted by no step
	// Two binding-free guards on B so the planner installs a sampled
	// predicate program (stepPlans exist only for >= 2 conjuncts).
	b := query.New(reg).Name("prior")
	open := b.Float("open")
	q, err := b.
		Pattern(
			query.Step("A").Types("A"),
			query.Step("B").Types("B").
				WhereEvent(func(ev *query.Event) bool { return open.Of(ev) > 0 }).
				WhereEvent(func(ev *query.Event) bool { return open.Of(ev) < 100 }),
		).
		Within(query.Events(100)).From("A").
		ConsumeNone().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := New(q, Options{Reg: reg})
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	tx, _ := reg.LookupType("X")

	// Step A has no predicate: an A event always clears its step.
	if got := p.UtilityPrior(ta); got != 1.0 {
		t.Fatalf("prior(A) = %.3f, want 1.0 for a predicate-free step", got)
	}
	// Step B carries two unseeded conjuncts: 0.5 * 0.5 even odds each.
	if got := p.UtilityPrior(tb); got != 0.25 {
		t.Fatalf("prior(B) = %.3f, want 0.25 before any samples", got)
	}
	// X is accepted by no step and opens no window.
	if got := p.UtilityPrior(tx); got != 0.05 {
		t.Fatalf("prior(X) = %.3f, want near-zero for an irrelevant type", got)
	}
	if got := p.UtilityPrior(event.Type(10_000)); got != 0.05 {
		t.Fatalf("prior(unknown) = %.3f, want near-zero", got)
	}

	// Seed B's conjunct pass rate to ~0: the prior must follow the live
	// EWMA down, stopping at the floor so B stays sheddable but not dead.
	var sp *stepPlan
	for _, cand := range p.steps {
		if cand != nil {
			sp = cand
		}
	}
	if sp == nil {
		t.Fatal("expected a stepPlan for B's predicate")
	}
	sp.mu.Lock()
	for i := range sp.rates {
		for k := 0; k < 64; k++ {
			sp.rates[i].Observe(0)
		}
	}
	sp.mu.Unlock()
	if got := p.UtilityPrior(tb); got != 0.02 {
		t.Fatalf("prior(B) = %.3f after an all-fail pass rate, want the 0.02 floor", got)
	}
	// And back up when the conjunct starts passing.
	sp.mu.Lock()
	for i := range sp.rates {
		for k := 0; k < 256; k++ {
			sp.rates[i].Observe(1)
		}
	}
	sp.mu.Unlock()
	if got := p.UtilityPrior(tb); got < 0.9 {
		t.Fatalf("prior(B) = %.3f after an all-pass rate, want it tracking toward 1", got)
	}
}
