package trex

import (
	"testing"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/seqengine"
)

func TestSimpleSequence(t *testing.T) {
	reg := event.NewRegistry()
	ta, tb, tc := reg.TypeID("A"), reg.TypeID("B"), reg.TypeID("C")
	p := pattern.Seq("ABC",
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
		pattern.Step{Name: "C", Types: []event.Type{tc}},
	)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "ABC",
		Pattern: *p,
		Window:  pattern.WindowSpec{StartKind: pattern.StartOnMatch, StartTypes: []event.Type{ta}, EndKind: pattern.EndCount, Count: 10},
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := eng.Run([]event.Event{
		{Type: ta}, {Type: tb}, {Type: tc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key() != "ABC@0:0,1,2" {
		t.Fatalf("got %v, want [ABC@0:0,1,2]", out)
	}
	if stats.EventsConsumed != 3 {
		t.Fatalf("consumed %d, want 3", stats.EventsConsumed)
	}
}

func TestKleeneBindsAll(t *testing.T) {
	reg := event.NewRegistry()
	ta, tb, tc := reg.TypeID("A"), reg.TypeID("B"), reg.TypeID("C")
	p := pattern.Seq("ABplusC",
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Quant: pattern.OneOrMore},
		pattern.Step{Name: "C", Types: []event.Type{tc}},
	)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "ABplusC",
		Pattern: *p,
		Window:  pattern.WindowSpec{StartKind: pattern.StartOnMatch, StartTypes: []event.Type{ta}, EndKind: pattern.EndCount, Count: 10},
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := eng.Run([]event.Event{
		{Type: ta}, {Type: tb}, {Type: tb}, {Type: tb}, {Type: tc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key() != "ABplusC@0:0,1,2,3,4" {
		t.Fatalf("got %v, want all three Bs bound", out)
	}
}

func TestNegationAborts(t *testing.T) {
	reg := event.NewRegistry()
	ta, tb, tx := reg.TypeID("A"), reg.TypeID("B"), reg.TypeID("X")
	p := pattern.Pattern{
		Name: "AnotXB",
		Elements: []pattern.Element{
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "A", Types: []event.Type{ta}}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "X", Types: []event.Type{tx}, Negated: true}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "B", Types: []event.Type{tb}}},
		},
		Selection: pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch},
	}
	q := &pattern.Query{
		Name:    "AnotXB",
		Pattern: p,
		Window:  pattern.WindowSpec{StartKind: pattern.StartOnMatch, StartTypes: []event.Type{ta}, EndKind: pattern.EndCount, Count: 10},
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := eng.Run([]event.Event{
		{Type: ta}, {Type: tx}, {Type: tb},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %v, want no matches (negation)", out)
	}
}

// TestAgreesWithSequentialOnTumblingWindows cross-checks the baseline
// against the reference engine on disjoint (tumbling) windows, where
// arrival-order and window-order consumption coincide exactly.
func TestAgreesWithSequentialOnTumblingWindows(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 30, Leaders: 3, Minutes: 100, Seed: 5})
	q, err := queries.Q2(reg, queries.Q2Config{WindowSize: 250, Slide: 250, LowerLimit: 80, UpperLimit: 125})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := seqengine.New(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := seq.Run(append([]event.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Run(append([]event.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("trex found %d matches, sequential %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("match %d: trex %s, sequential %s", i, got[i].Key(), want[i].Key())
		}
	}
}

// TestAgreesWithSequentialWithoutConsumption cross-checks overlapping
// windows with no consumption policy: the engines' detection orders
// differ, but the match sets must be identical.
func TestAgreesWithSequentialWithoutConsumption(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 30, Leaders: 3, Minutes: 60, Seed: 5})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 4, WindowSize: 150, Leaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	q.Pattern.ConsumeNone()
	seq, err := seqengine.New(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := seq.Run(append([]event.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Run(append([]event.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := make(map[string]bool, len(want))
	for i := range want {
		wantKeys[want[i].Key()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("trex found %d matches, sequential %d", len(got), len(want))
	}
	for i := range got {
		if !wantKeys[got[i].Key()] {
			t.Fatalf("trex match %s not produced by the sequential engine", got[i].Key())
		}
	}
}

func TestSetDetection(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.Q3(reg, queries.Q3Config{SetSize: 3, WindowSize: 20, Slide: 20})
	if err != nil {
		t.Fatal(err)
	}
	s := func(i int) event.Type { id, _ := reg.LookupType(dataset.Symbol(i)); return id }
	eng, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := eng.Run([]event.Event{
		{Type: s(0)}, {Type: s(3)}, {Type: s(2)}, {Type: s(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key() != "Q3@0:0,1,2,3" {
		t.Fatalf("got %v, want [Q3@0:0,1,2,3]", out)
	}
}
