// Package trex implements a T-REX-style baseline engine for the paper's
// §4.2.3 comparison. T-REX (Cugola & Margara, 2012) is a general-purpose
// event processing engine that automatically translates queries into state
// machines; it supports consumption policies but processes sequentially
// (it "does not support event consumptions in parallel processing").
//
// This baseline reproduces the two properties the paper's comparison rests
// on:
//
//   - Generality: queries are compiled to an explicit instruction-coded
//     automaton that is interpreted per event — no query-specific code
//     path, bindings in persistent (copy-on-append) structures, dynamic
//     dispatch per instruction. This is what costs T-REX its throughput
//     against SPECTRE's UDF-style matcher.
//   - Sequential execution: a single thread advances the automata of all
//     open windows in arrival order; consumption is applied immediately
//     when a match completes.
//
// Because detection is arrival-ordered (not window-ordered), outputs can
// differ from SPECTRE/sequential-engine outputs in corner cases where a
// later window's pattern completes before an earlier window's pending
// partial match; the throughput comparison is unaffected.
package trex

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/window"
)

// opcode is one automaton instruction.
type opcode int

const (
	opCheckType opcode = iota + 1 // guard: allowed types
	opEvalPred                    // guard: interpreted predicate
	opBind                        // bind the event to a flat step
	opGoto                        // move to state .target
	opStay                        // stay in the current state (Kleene extension)
	opEnterSet                    // move to set state .target, marking member .bit
	opAbort                       // negation fired: kill the instance
)

// instr is an interpreted instruction.
type instr struct {
	op     opcode
	types  []event.Type
	pred   int // index into program.preds; -1 = none
	flat   int
	target int
	bit    int
}

// block is one alternative: guards followed by an action.
type block struct {
	code []instr
}

// stateKind discriminates automaton states.
type stateKind int

const (
	stWait   stateKind = iota + 1 // waiting to bind a step element
	stLoop                        // inside a Kleene-plus, extend or advance
	stSet                         // inside a set element, collecting members
	stAccept                      // pattern complete
)

// state is an automaton state; its blocks are tried in order.
type state struct {
	kind    stateKind
	blocks  []block
	setSize int
	after   int // stSet: state entered once all members are bound
}

// program is the compiled automaton.
type program struct {
	states  []state
	preds   []pattern.Predicate
	consume []bool // per flat index
	accept  int
}

// instance is one partial match: an interpreted automaton run with
// persistent bindings.
type instance struct {
	state   int
	setMask uint64
	// bindings is a persistent association list (copy-on-append), the
	// kind of generic structure a query-agnostic engine uses.
	bindings *binding
}

type binding struct {
	flat int
	ev   *event.Event
	prev *binding
}

var _ pattern.Binder = (*instance)(nil)

// Bound implements pattern.Binder by walking the persistent list.
func (in *instance) Bound(step int) []*event.Event {
	var out []*event.Event
	for b := in.bindings; b != nil; b = b.prev {
		if b.flat == step {
			out = append(out, b.ev)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// compiler assembles the program.
type compiler struct {
	prog   *program
	flatOf map[[2]int]int
	p      *pattern.Pattern
}

// compile translates the pattern into the instruction program. The state
// layout per positive element:
//
//	step One        → one stWait state
//	step OneOrMore  → stWait (bind first) followed by stLoop (extend or
//	                  match the NEXT element, advance-first like the
//	                  reference matcher)
//	set             → one stSet state collecting the member bitmask
//
// Negation guards attach to the states where the run waits for the next
// positive element (matching the reference matcher's semantics: guards of
// a Kleene element stay active while it extends).
func compile(p *pattern.Pattern) (*program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{prog: &program{}, p: p, flatOf: make(map[[2]int]int)}
	flat := p.FlatSteps()
	c.prog.consume = make([]bool, len(flat))
	for i, fs := range flat {
		c.flatOf[[2]int{fs.Elem, fs.Member}] = i
		c.prog.consume[i] = fs.Step.Consume
	}

	// Collect positive elements with their guard lists.
	var elems []posElem
	var pending []int
	for ei := range p.Elements {
		el := &p.Elements[ei]
		if el.Kind == pattern.ElemStep && el.Step.Negated {
			pending = append(pending, ei)
			continue
		}
		elems = append(elems, posElem{elem: ei, guards: pending})
		pending = nil
	}

	// First pass: assign state indices.
	entry := make([]int, len(elems))
	loopOf := make([]int, len(elems))
	next := 0
	for i := range elems {
		entry[i] = next
		next++
		el := &p.Elements[elems[i].elem]
		if el.Kind == pattern.ElemStep && el.Step.Quant == pattern.OneOrMore {
			loopOf[i] = next
			next++
		} else {
			loopOf[i] = -1
		}
	}
	acceptState := next
	c.prog.accept = acceptState
	c.prog.states = make([]state, next+1)
	c.prog.states[acceptState] = state{kind: stAccept}

	// afterOf returns the state reached after fully matching element i.
	afterOf := func(i int) int {
		if i+1 < len(elems) {
			return entry[i+1]
		}
		return acceptState
	}

	for i := range elems {
		ei := elems[i].elem
		el := &p.Elements[ei]
		guards := c.guardBlocks(elems[i].guards)
		switch {
		case el.Kind == pattern.ElemSet:
			st := state{kind: stSet, setSize: len(el.Set), after: afterOf(i)}
			st.blocks = append(st.blocks, guards...)
			for mi := range el.Set {
				st.blocks = append(st.blocks, c.memberBlock(ei, mi, entry[i]))
			}
			c.prog.states[entry[i]] = st
		case el.Step.Quant == pattern.OneOrMore:
			// Wait state: bind the first event, move to the loop state
			// (or accept when the Kleene is final: minimum-match).
			target := loopOf[i]
			if i == len(elems)-1 {
				target = acceptState
			}
			wait := state{kind: stWait}
			wait.blocks = append(wait.blocks, guards...)
			wait.blocks = append(wait.blocks, c.stepBlock(ei, target))
			c.prog.states[entry[i]] = wait
			if target != acceptState {
				// Loop state: advance-first into the next element, else
				// extend. The Kleene element's own guards stay active.
				loop := state{kind: stLoop}
				loop.blocks = append(loop.blocks, guards...)
				loop.blocks = append(loop.blocks, c.elementBlocks(i+1, elems, entry, loopOf, acceptState)...)
				loop.blocks = append(loop.blocks, c.extendBlock(ei))
				c.prog.states[loopOf[i]] = loop
			}
		default:
			wait := state{kind: stWait}
			wait.blocks = append(wait.blocks, guards...)
			wait.blocks = append(wait.blocks, c.stepBlock(ei, afterOf(i)))
			c.prog.states[entry[i]] = wait
		}
	}
	return c.prog, nil
}

// posElem is a positive pattern element with the negation guards active
// while it is pending.
type posElem struct {
	elem   int
	guards []int // element indices of active negations
}

// elementBlocks returns the blocks that match element j from an
// advance-first context (the Kleene loop preceding it).
func (c *compiler) elementBlocks(j int, elems []posElem, entry, loopOf []int, acceptState int) []block {
	ej := elems[j].elem
	el := &c.p.Elements[ej]
	after := acceptState
	if j+1 < len(elems) {
		after = entry[j+1]
	}
	switch {
	case el.Kind == pattern.ElemSet:
		blocks := make([]block, 0, len(el.Set))
		for mi := range el.Set {
			blocks = append(blocks, c.memberBlock(ej, mi, entry[j]))
		}
		return blocks
	case el.Step.Quant == pattern.OneOrMore:
		target := loopOf[j]
		if j == len(elems)-1 {
			target = acceptState
		}
		return []block{c.stepBlock(ej, target)}
	default:
		return []block{c.stepBlock(ej, after)}
	}
}

func (c *compiler) predIdx(pr pattern.Predicate) int {
	if pr == nil {
		return -1
	}
	c.prog.preds = append(c.prog.preds, pr)
	return len(c.prog.preds) - 1
}

// guardBlocks builds abort alternatives for active negations.
func (c *compiler) guardBlocks(negElems []int) []block {
	var out []block
	for _, ei := range negElems {
		st := &c.p.Elements[ei].Step
		out = append(out, block{code: []instr{
			{op: opCheckType, types: st.Types},
			{op: opEvalPred, pred: c.predIdx(st.Pred), flat: c.flatOf[[2]int{ei, -1}]},
			{op: opAbort},
		}})
	}
	return out
}

// stepBlock matches a step element and advances to target.
func (c *compiler) stepBlock(ei, target int) block {
	st := &c.p.Elements[ei].Step
	fi := c.flatOf[[2]int{ei, -1}]
	return block{code: []instr{
		{op: opCheckType, types: st.Types},
		{op: opEvalPred, pred: c.predIdx(st.Pred), flat: fi},
		{op: opBind, flat: fi},
		{op: opGoto, target: target},
	}}
}

// extendBlock matches another Kleene event and stays.
func (c *compiler) extendBlock(ei int) block {
	st := &c.p.Elements[ei].Step
	fi := c.flatOf[[2]int{ei, -1}]
	return block{code: []instr{
		{op: opCheckType, types: st.Types},
		{op: opEvalPred, pred: c.predIdx(st.Pred), flat: fi},
		{op: opBind, flat: fi},
		{op: opStay},
	}}
}

// memberBlock matches set member mi of element ei; setState is the set's
// state index.
func (c *compiler) memberBlock(ei, mi, setState int) block {
	st := &c.p.Elements[ei].Set[mi]
	fi := c.flatOf[[2]int{ei, mi}]
	return block{code: []instr{
		{op: opCheckType, types: st.Types},
		{op: opEvalPred, pred: c.predIdx(st.Pred), flat: fi},
		{op: opBind, flat: fi},
		{op: opEnterSet, target: setState, bit: mi},
	}}
}

// winState is the detection state of one open window.
type winState struct {
	win       *window.Window
	instances []*instance
	stopped   bool
}

// Stats summarizes a T-REX run.
type Stats struct {
	EventsProcessed uint64 // event×window automaton advances
	Matches         uint64
	EventsConsumed  uint64
}

// Engine is the single-threaded baseline engine.
type Engine struct {
	query *pattern.Query
	prog  *program
	multi bool
}

// New compiles the query for the baseline engine, honoring the query's
// selection policy (closest to the reference semantics).
func New(q *pattern.Query) (*Engine, error) {
	return newEngine(q, false)
}

// NewGeneral compiles the query in general multi-selection mode: like the
// real T-REX, the engine maintains every partial sequence — a new
// automaton instance starts whenever an event matches the pattern's first
// element, and a match does not stop detection in its window. Restricting
// detection to a single run per window is a UDF-level optimization
// available to SPECTRE's user-defined operators (paper §4.2.3: "SPECTRE
// employs user-defined functions ... which allows for more code
// optimizations") that a general-purpose engine cannot apply; this mode is
// what the throughput comparison uses.
func NewGeneral(q *pattern.Query) (*Engine, error) {
	return newEngine(q, true)
}

func newEngine(q *pattern.Query, multi bool) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("trex: %w", err)
	}
	prog, err := compile(&q.Pattern)
	if err != nil {
		return nil, fmt.Errorf("trex: %w", err)
	}
	return &Engine{query: q, prog: prog, multi: multi}, nil
}

// Run processes events in arrival order, advancing every open window's
// automata, and returns the detected complex events in detection order.
func (e *Engine) Run(events []event.Event) ([]event.Complex, Stats, error) {
	for i := range events {
		events[i].Seq = uint64(i)
	}
	var (
		stats    Stats
		out      []event.Complex
		open     []*winState
		consumed = make([]bool, len(events))
	)
	mgr := window.NewManager(e.query.Window)
	sel := e.query.Pattern.Selection

	for i := range events {
		ev := &events[i]
		opened, _ := mgr.Observe(ev)
		for _, w := range opened {
			open = append(open, &winState{win: w})
		}
		// Expire windows whose boundary passed.
		live := open[:0]
		for _, ws := range open {
			if ws.win.Resolved() && ev.Seq >= ws.win.EndSeq() {
				continue
			}
			live = append(live, ws)
		}
		open = live
		if consumed[i] {
			continue
		}
		// T-REX's event model is a generic attribute-value set; automata
		// evaluate interpreted predicates over that representation. Events
		// are converted into tuples on arrival and re-materialized per
		// automaton evaluation (see tuple below).
		tup := toTuple(ev)
		for _, ws := range open {
			if ws.stopped {
				continue
			}
			stats.EventsProcessed++
			e.advanceWindow(ws, tup, sel, consumed, &stats, &out)
		}
	}
	return out, stats, nil
}

// tuple is T-REX's generic event representation: an attribute-value set.
// Keeping events generic (rather than as typed structs bound to the
// query's schema) is what makes the engine query-agnostic — and what
// costs it throughput against SPECTRE's UDF-compiled operators
// (paper §4.2.3).
type tuple struct {
	seq   uint64
	ts    int64
	typ   event.Type
	attrs map[int]float64
}

func toTuple(ev *event.Event) *tuple {
	t := &tuple{seq: ev.Seq, ts: ev.TS, typ: ev.Type, attrs: make(map[int]float64, len(ev.Fields))}
	for i, f := range ev.Fields {
		t.attrs[i] = f
	}
	return t
}

// materialize rebuilds a concrete event from the generic tuple for one
// automaton evaluation.
func (t *tuple) materialize() *event.Event {
	fields := make([]float64, len(t.attrs))
	for i, f := range t.attrs {
		if i < len(fields) {
			fields[i] = f
		}
	}
	return &event.Event{Seq: t.seq, TS: t.ts, Type: t.typ, Fields: fields}
}

// advanceWindow interprets the automata of the window against the event
// tuple. Every automaton evaluation materializes the event from its
// generic representation, as a query-agnostic engine must.
func (e *Engine) advanceWindow(ws *winState, tup *tuple, sel pattern.SelectionPolicy,
	consumed []bool, stats *Stats, out *[]event.Complex) {
	prog := e.prog
	kept := ws.instances[:0]
	completedThis := false
	var completedInsts []*instance
	for _, in := range ws.instances {
		ev := tup.materialize()
		switch e.step(in, ev) {
		case stepAborted:
			// dropped
		case stepAccepted:
			completedInsts = append(completedInsts, in)
			completedThis = true
		default:
			kept = append(kept, in)
		}
	}
	ws.instances = kept

	canStart := !ws.stopped && !completedThis &&
		(e.multi || sel.MaxConcurrentRuns <= 0 || len(ws.instances) < sel.MaxConcurrentRuns)
	if canStart {
		fresh := &instance{state: 0}
		ev := tup.materialize()
		switch e.step(fresh, ev) {
		case stepAccepted:
			completedInsts = append(completedInsts, fresh)
		case stepAdvanced:
			ws.instances = append(ws.instances, fresh)
		}
	}

	for _, in := range completedInsts {
		ce := e.emit(in, ws, tup.seq, consumed, stats)
		*out = append(*out, ce)
		if e.multi {
			// General mode: detection continues; consumption (below)
			// purges overlapping partial sequences.
			continue
		}
		switch sel.OnCompletion {
		case pattern.RestartFresh:
			// nothing kept
		case pattern.RestartAfterLeader:
			lead := in.Bound(0)
			if len(lead) > 0 && !consumed[lead[0].Seq] {
				ws.instances = append(ws.instances, &instance{
					state:    1,
					bindings: &binding{flat: 0, ev: lead[0]},
				})
			}
		default:
			ws.stopped = true
			ws.instances = ws.instances[:0]
		}
	}
	if len(completedInsts) > 0 {
		kept := ws.instances[:0]
		for _, in := range ws.instances {
			dead := false
			for b := in.bindings; b != nil; b = b.prev {
				if consumed[b.ev.Seq] {
					dead = true
					break
				}
			}
			if !dead {
				kept = append(kept, in)
			}
		}
		ws.instances = kept
	}
	_ = prog
}

type stepVerdict int

const (
	stepNoMatch stepVerdict = iota
	stepAdvanced
	stepAccepted
	stepAborted
)

// step interprets the current state's alternatives against ev.
func (e *Engine) step(in *instance, ev *event.Event) stepVerdict {
	prog := e.prog
	st := &prog.states[in.state]
	if st.kind == stAccept {
		return stepAccepted
	}
	for bi := range st.blocks {
		v, matched := e.runBlock(in, &st.blocks[bi], ev)
		if matched {
			return v
		}
	}
	return stepNoMatch
}

// runBlock executes one alternative; matched reports whether its guards
// accepted the event.
func (e *Engine) runBlock(in *instance, b *block, ev *event.Event) (stepVerdict, bool) {
	prog := e.prog
	for _, ins := range b.code {
		switch ins.op {
		case opCheckType:
			if len(ins.types) > 0 {
				ok := false
				for _, t := range ins.types {
					if t == ev.Type {
						ok = true
						break
					}
				}
				if !ok {
					return stepNoMatch, false
				}
			}
		case opEvalPred:
			if ins.pred >= 0 && !prog.preds[ins.pred](ev, in) {
				return stepNoMatch, false
			}
		case opBind:
			in.bindings = &binding{flat: ins.flat, ev: ev, prev: in.bindings}
		case opStay:
			return stepAdvanced, true
		case opGoto:
			in.state = ins.target
			in.setMask = 0
			if prog.states[in.state].kind == stAccept {
				return stepAccepted, true
			}
			return stepAdvanced, true
		case opEnterSet:
			if in.state != ins.target {
				in.state = ins.target
				in.setMask = 0
			}
			if in.setMask&(1<<uint(ins.bit)) != 0 {
				// Member already collected; the binding added above must
				// be undone (the event did not advance the run).
				in.bindings = in.bindings.prev
				return stepNoMatch, false
			}
			in.setMask |= 1 << uint(ins.bit)
			st := &prog.states[in.state]
			if bits.OnesCount64(in.setMask) == st.setSize {
				in.state = st.after
				in.setMask = 0
				if prog.states[in.state].kind == stAccept {
					return stepAccepted, true
				}
			}
			return stepAdvanced, true
		case opAbort:
			return stepAborted, true
		}
	}
	return stepNoMatch, false
}

// emit materializes the complex event of a completed instance and applies
// consumption immediately (T-REX semantics).
func (e *Engine) emit(in *instance, ws *winState, detectedAt uint64, consumed []bool, stats *Stats) event.Complex {
	prog := e.prog
	ce := event.Complex{Query: e.query.Name, WindowID: ws.win.ID, DetectedAt: detectedAt}
	var cons []uint64
	var all []*binding
	for b := in.bindings; b != nil; b = b.prev {
		all = append(all, b)
	}
	for i := len(all) - 1; i >= 0; i-- {
		b := all[i]
		ce.Constituents = append(ce.Constituents, b.ev.Seq)
		if prog.consume[b.flat] {
			cons = append(cons, b.ev.Seq)
		}
	}
	sort.Slice(ce.Constituents, func(i, j int) bool { return ce.Constituents[i] < ce.Constituents[j] })
	sort.Slice(cons, func(i, j int) bool { return cons[i] < cons[j] })
	ce.Consumed = cons
	for _, seq := range cons {
		if !consumed[seq] {
			consumed[seq] = true
			stats.EventsConsumed++
		}
	}
	stats.Matches++
	return ce
}
