// Package matcher implements incremental pattern detection over a single
// window's event subsequence. It is the "operator logic" of the paper
// (§3.3, Fig. 8): processing an event yields feedback — a partial match
// (consumption group) was created, extended, completed or abandoned — that
// the surrounding engine translates into dependency-tree updates.
//
// The matcher is deterministic and its state is deep-cloneable, which the
// SPECTRE runtime exploits when it copies speculative window versions.
//
// Semantics notes (documented here because the paper leaves them to the
// event specification language):
//
//   - Skip-till-next-match: events that match nothing are ignored and do
//     not influence the run. Only influencing events (bound events and
//     negation triggers) matter for consumption consistency.
//   - Kleene-plus is advance-first: when the run already satisfies the
//     minimum of a Kleene step and the event also matches the next
//     element, the run advances. This guarantees progress when bands
//     overlap; the paper's Q2 uses disjoint bands where the rule never
//     fires.
//   - A Kleene-plus element in final position completes on its first
//     binding (minimum-match semantics).
//   - A completing event never also starts a new run.
package matcher

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// FeedbackKind enumerates the operator-logic feedback of the paper's
// Figure 8.
type FeedbackKind int

const (
	// RunStarted reports a new partial match: a consumption group must be
	// created (paper: consumptionGroupCreated).
	RunStarted FeedbackKind = iota + 1
	// EventBound reports that the event joined an existing partial match;
	// when Consumable is set it must be added to the consumption group.
	EventBound
	// RunCompleted reports a total match: a complex event is produced and
	// the consumption group completes.
	RunCompleted
	// RunAbandoned reports that the partial match can no longer complete
	// (negation fired, window ended, or a constituent was consumed):
	// the consumption group is abandoned.
	RunAbandoned
)

// String implements fmt.Stringer.
func (k FeedbackKind) String() string {
	switch k {
	case RunStarted:
		return "run-started"
	case EventBound:
		return "event-bound"
	case RunCompleted:
		return "run-completed"
	case RunAbandoned:
		return "run-abandoned"
	default:
		return fmt.Sprintf("FeedbackKind(%d)", int(k))
	}
}

// Match is a completed pattern instance.
type Match struct {
	// Constituents are the bound events in pattern order (binding order
	// within Kleene steps).
	Constituents []*event.Event
	// Consumed are the constituents bound to consume-flagged steps, sorted
	// by sequence number.
	Consumed []*event.Event
	// CompletedAt is the event that completed the match.
	CompletedAt *event.Event
}

// Feedback is one operator-logic notification.
type Feedback struct {
	Kind FeedbackKind
	// Run identifies the partial match the feedback concerns.
	Run int
	// Event is the processed event (nil for window-end abandons).
	Event *event.Event
	// Consumable marks EventBound/RunStarted feedback whose event belongs
	// to a consume-flagged step.
	Consumable bool
	// PrevDelta/Delta are the run's completion state δ before and after
	// the event (δ = minimum events still required; 0 = complete). They
	// feed the Markov transition statistics.
	PrevDelta, Delta int
	// Match is set for RunCompleted.
	Match *Match
	// Carry lists events pre-bound in a freshly (re)started run — the
	// retained leader of a restart-after-leader pattern when its step is
	// consume-flagged. They belong in the new consumption group.
	Carry []*event.Event
}

// compiled element: a positive element plus the negation guards active
// while it is pending.
type pelem struct {
	kind   pattern.ElemKind
	step   pattern.Step
	set    []pattern.Step
	flat   []int // flat step indices (1 for step, len(set) for sets)
	guards []guard
	// sufMin is the minimum number of events needed by the elements after
	// this one.
	sufMin int
}

type guard struct {
	step pattern.Step
	flat int
}

// Compiled is an immutable compiled pattern shared by all states.
type Compiled struct {
	name      string
	elems     []pelem
	selection pattern.SelectionPolicy
	numFlat   int
	minLen    int
	// endGuards are negations trailing the last positive element; an event
	// matching one of them after the final element has no effect (the
	// match has already completed), so they are rejected at compile time.
}

// Compile validates and compiles a pattern.
func Compile(p *pattern.Pattern) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	flat := p.FlatSteps()
	c := &Compiled{
		name:      p.Name,
		selection: p.Selection,
		numFlat:   len(flat),
		minLen:    p.MinLength(),
	}
	// Map (elem, member) to flat index.
	flatIdx := make(map[[2]int]int, len(flat))
	for i, fs := range flat {
		flatIdx[[2]int{fs.Elem, fs.Member}] = i
	}
	var pendingGuards []guard
	for ei := range p.Elements {
		el := &p.Elements[ei]
		if el.Kind == pattern.ElemStep && el.Step.Negated {
			pendingGuards = append(pendingGuards, guard{
				step: el.Step,
				flat: flatIdx[[2]int{ei, -1}],
			})
			continue
		}
		pe := pelem{kind: el.Kind}
		switch el.Kind {
		case pattern.ElemStep:
			pe.step = el.Step
			pe.flat = []int{flatIdx[[2]int{ei, -1}]}
		case pattern.ElemSet:
			pe.set = el.Set
			pe.flat = make([]int, len(el.Set))
			for mi := range el.Set {
				pe.flat[mi] = flatIdx[[2]int{ei, mi}]
			}
		}
		pe.guards = pendingGuards
		pendingGuards = nil
		c.elems = append(c.elems, pe)
	}
	if len(pendingGuards) > 0 {
		return nil, fmt.Errorf("matcher: pattern %q has trailing negated step %q with no following step",
			p.Name, pendingGuards[0].step.Name)
	}
	// Suffix minimum lengths.
	suf := 0
	for i := len(c.elems) - 1; i >= 0; i-- {
		c.elems[i].sufMin = suf
		switch c.elems[i].kind {
		case pattern.ElemStep:
			suf++
		case pattern.ElemSet:
			suf += len(c.elems[i].set)
		}
	}
	return c, nil
}

// MinLength returns the pattern's minimum match length (δ_max).
func (c *Compiled) MinLength() int { return c.minLen }

// Name returns the pattern name.
func (c *Compiled) Name() string { return c.name }

// span locates one flat step's bindings inside a run's backing slice.
type span struct {
	start, n int32
}

// run is one partial match. Bindings are interned in a single backing
// slice in bind order with per-flat-index spans, so cloning a run is two
// memcpys instead of one allocation per step. The layout invariant —
// each flat index's bindings are contiguous — holds because only the
// pending element accumulates bindings, always at the tail.
type run struct {
	id       int
	elem     int // current pending element index
	kcount   int // events bound to the pending Kleene element
	setMask  uint64
	lastFlat int32          // flat index of the most recent binding, -1 if none
	events   []*event.Event // all bound events, bind order
	spans    []span         // indexed by flat step index
}

var _ pattern.Binder = (*run)(nil)

// Bound implements pattern.Binder.
func (r *run) Bound(step int) []*event.Event {
	if step < 0 || step >= len(r.spans) {
		return nil
	}
	sp := r.spans[step]
	if sp.n == 0 {
		return nil
	}
	return r.events[sp.start : sp.start+sp.n]
}

// bind appends ev as a binding of flat step index fi.
func (r *run) bind(fi int, ev *event.Event) {
	sp := &r.spans[fi]
	if sp.n == 0 {
		sp.start = int32(len(r.events))
	}
	r.events = append(r.events, ev)
	sp.n++
	r.lastFlat = int32(fi)
}

// usesAny reports whether the run has bound any event in seqs (sorted).
func (r *run) usesAny(seqs []uint64) bool {
	for _, ev := range r.events {
		i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= ev.Seq })
		if i < len(seqs) && seqs[i] == ev.Seq {
			return true
		}
	}
	return false
}

// State is the mutable matcher state of one window version.
type State struct {
	c       *Compiled
	runs    []*run
	free    []*run // recycled runs; the per-event hot path never allocates
	idxBuf  []int  // scratch for batched run removal
	nextID  int
	stopped bool // StopAfterMatch fired
}

// NewState returns a fresh state for one window.
func (c *Compiled) NewState() *State {
	return &State{c: c}
}

// newRun takes a run from the freelist (or allocates one) and resets it.
func (s *State) newRun() *run {
	if n := len(s.free); n > 0 {
		r := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		r.elem, r.kcount, r.setMask, r.lastFlat = 0, 0, 0, -1
		r.events = r.events[:0]
		clear(r.spans)
		return r
	}
	return &run{lastFlat: -1, spans: make([]span, s.c.numFlat)}
}

// recycle returns a run to the freelist.
func (s *State) recycle(r *run) {
	s.free = append(s.free, r)
}

// Clone deep-copies the state. Each cloned run is two slice copies, so
// forking a speculative window version costs O(open bindings), not
// O(pattern steps × allocations).
func (s *State) Clone() *State {
	cl := &State{c: s.c, nextID: s.nextID, stopped: s.stopped}
	cl.runs = make([]*run, len(s.runs))
	for i, r := range s.runs {
		nr := &run{
			id: r.id, elem: r.elem, kcount: r.kcount,
			setMask: r.setMask, lastFlat: r.lastFlat,
			events: append(make([]*event.Event, 0, len(r.events)), r.events...),
			spans:  append(make([]span, 0, len(r.spans)), r.spans...),
		}
		cl.runs[i] = nr
	}
	return cl
}

// OpenRuns reports the number of open partial matches.
func (s *State) OpenRuns() int { return len(s.runs) }

// Stopped reports whether detection has ended for this window
// (StopAfterMatch fired).
func (s *State) Stopped() bool { return s.stopped }

// EachRun calls f with every open run's id and current δ.
func (s *State) EachRun(f func(id, delta int)) {
	for _, r := range s.runs {
		f(r.id, s.delta(r))
	}
}

// RunInfo describes an open run.
type RunInfo struct{ ID, Delta int }

// Runs appends every open run's id and δ to buf and returns it
// (allocation-free when buf has capacity).
func (s *State) Runs(buf []RunInfo) []RunInfo {
	for _, r := range s.runs {
		buf = append(buf, RunInfo{ID: r.id, Delta: s.delta(r)})
	}
	return buf
}

// RunDelta returns the δ of run id, or -1 when the run is not open.
func (s *State) RunDelta(id int) int {
	for _, r := range s.runs {
		if r.id == id {
			return s.delta(r)
		}
	}
	return -1
}

// delta computes the run's completion state δ.
func (s *State) delta(r *run) int {
	if r.elem >= len(s.c.elems) {
		return 0
	}
	el := &s.c.elems[r.elem]
	var remaining int
	switch el.kind {
	case pattern.ElemStep:
		if el.step.Quant == pattern.OneOrMore && r.kcount > 0 {
			remaining = 0
		} else {
			remaining = 1
		}
	case pattern.ElemSet:
		remaining = len(el.set) - bits.OnesCount64(r.setMask)
	}
	return remaining + el.sufMin
}

// Process feeds one event to the matcher, appending feedback to fb and
// returning it. Events must be fed in stream order.
func (s *State) Process(ev *event.Event, fb []Feedback) []Feedback {
	// Phase 1: negation guards and advancement of open runs.
	// Runs are scanned in creation order; removals are batched.
	removed := s.idxBuf[:0]
	for ri, r := range s.runs {
		prevDelta := s.delta(r)
		el := &s.c.elems[r.elem]

		// Negation guards active while this element is pending.
		aborted := false
		for gi := range el.guards {
			if el.guards[gi].step.Matches(ev, r) {
				fb = append(fb, Feedback{
					Kind: RunAbandoned, Run: r.id, Event: ev,
					PrevDelta: prevDelta, Delta: prevDelta,
				})
				removed = append(removed, ri)
				aborted = true
				break
			}
		}
		if aborted {
			continue
		}

		bound, completed := s.advance(r, ev)
		if !bound {
			continue
		}
		newDelta := s.delta(r)
		if completed {
			m := s.buildMatch(r, ev)
			fb = append(fb, Feedback{
				Kind: RunCompleted, Run: r.id, Event: ev,
				PrevDelta: prevDelta, Delta: 0, Match: m,
			})
			switch s.c.selection.OnCompletion {
			case pattern.RestartAfterLeader:
				if s.leaderConsumed(r, m) {
					removed = append(removed, ri)
				} else {
					s.resetAfterLeader(r)
					fb = append(fb, s.restartFeedback(r, ev))
				}
			case pattern.RestartFresh:
				removed = append(removed, ri)
			default: // StopAfterMatch
				removed = append(removed, ri)
				s.stopped = true
			}
			continue
		}
		step := s.boundStep(r, ev)
		fb = append(fb, Feedback{
			Kind: EventBound, Run: r.id, Event: ev,
			Consumable: step != nil && step.Consume,
			PrevDelta:  prevDelta, Delta: newDelta,
		})
	}
	if len(removed) > 0 {
		s.removeRuns(removed)
	}
	s.idxBuf = removed[:0]
	if s.stopped {
		// StopAfterMatch ends detection for the whole window: any other
		// open partial matches are abandoned so their consumption groups
		// resolve.
		fb = s.WindowEnd(fb)
	}

	// Phase 2: start a new run when the event matches the first element
	// and the selection policy permits another run. A completing event
	// never also starts a new run (the completion feedback above already
	// consumed it semantically).
	if s.stopped {
		return fb
	}
	if max := s.c.selection.MaxConcurrentRuns; max > 0 && len(s.runs) >= max {
		return fb
	}
	if s.eventJustCompleted(fb, ev) {
		return fb
	}
	first := &s.c.elems[0]
	r := s.newRun()
	r.id = s.nextID
	if boundOK, completed := s.tryStart(r, first, ev); !boundOK {
		s.recycle(r)
	} else {
		s.nextID++
		s.runs = append(s.runs, r)
		step := s.boundStep(r, ev)
		fb = append(fb, Feedback{
			Kind: RunStarted, Run: r.id, Event: ev,
			Consumable: step != nil && step.Consume,
			PrevDelta:  s.c.minLen, Delta: s.delta(r),
		})
		if completed {
			m := s.buildMatch(r, ev)
			fb = append(fb, Feedback{
				Kind: RunCompleted, Run: r.id, Event: ev,
				PrevDelta: s.delta(r), Delta: 0, Match: m,
			})
			switch s.c.selection.OnCompletion {
			case pattern.RestartAfterLeader:
				if s.leaderConsumed(r, m) {
					s.removeRun(r.id)
				} else {
					s.resetAfterLeader(r)
					fb = append(fb, s.restartFeedback(r, ev))
				}
			case pattern.RestartFresh:
				s.removeRun(r.id)
			default:
				s.removeRun(r.id)
				s.stopped = true
				fb = s.WindowEnd(fb)
			}
		}
	}
	return fb
}

// restartFeedback announces the re-opened partial match after a
// restart-after-leader completion: a new consumption group begins,
// pre-seeded with the retained leader when its step is consume-flagged.
func (s *State) restartFeedback(r *run, ev *event.Event) Feedback {
	lead := &s.c.elems[0].step
	var carry []*event.Event
	if lead.Consume {
		carry = append([]*event.Event(nil), r.Bound(s.c.elems[0].flat[0])...)
	}
	return Feedback{
		Kind: RunStarted, Run: r.id, Event: ev, Carry: carry,
		PrevDelta: s.c.minLen, Delta: s.delta(r),
	}
}

// eventJustCompleted reports whether ev carried a RunCompleted feedback in
// this processing round.
func (s *State) eventJustCompleted(fb []Feedback, ev *event.Event) bool {
	for i := len(fb) - 1; i >= 0; i-- {
		if fb[i].Event != ev {
			break
		}
		if fb[i].Kind == RunCompleted {
			return true
		}
	}
	return false
}

// tryStart attempts to bind ev as the first event of a fresh run.
func (s *State) tryStart(r *run, first *pelem, ev *event.Event) (bound, completed bool) {
	switch first.kind {
	case pattern.ElemStep:
		if !first.step.Matches(ev, r) {
			return false, false
		}
		r.bind(first.flat[0], ev)
		if first.step.Quant == pattern.OneOrMore {
			r.kcount = 1
			// Minimum-match: a final Kleene element completes immediately.
			if r.elem == len(s.c.elems)-1 {
				r.elem = len(s.c.elems)
				return true, true
			}
			return true, false
		}
		r.elem++
		return true, r.elem == len(s.c.elems)
	case pattern.ElemSet:
		for mi := range first.set {
			if first.set[mi].Matches(ev, r) {
				r.setMask = 1 << uint(mi)
				r.bind(first.flat[mi], ev)
				if bits.OnesCount64(r.setMask) == len(first.set) {
					r.elem++
					r.setMask = 0
					return true, r.elem == len(s.c.elems)
				}
				return true, false
			}
		}
	}
	return false, false
}

// advance tries to bind ev into the open run r. It returns whether the
// event was bound and whether the run completed.
func (s *State) advance(r *run, ev *event.Event) (bound, completed bool) {
	el := &s.c.elems[r.elem]
	switch el.kind {
	case pattern.ElemStep:
		if el.step.Quant == pattern.OneOrMore && r.kcount > 0 {
			// Advance-first: prefer moving to the next element.
			if r.elem+1 < len(s.c.elems) && s.bindInto(r, r.elem+1, ev) {
				return true, r.elem == len(s.c.elems)
			}
			if el.step.Matches(ev, r) {
				r.bind(el.flat[0], ev)
				return true, false
			}
			return false, false
		}
		if el.step.Matches(ev, r) {
			r.bind(el.flat[0], ev)
			if el.step.Quant == pattern.OneOrMore {
				r.kcount = 1
				if r.elem == len(s.c.elems)-1 {
					r.elem = len(s.c.elems)
					return true, true
				}
				return true, false
			}
			r.elem++
			r.kcount = 0
			return true, r.elem == len(s.c.elems)
		}
		return false, false
	case pattern.ElemSet:
		for mi := range el.set {
			if r.setMask&(1<<uint(mi)) != 0 {
				continue
			}
			if el.set[mi].Matches(ev, r) {
				r.setMask |= 1 << uint(mi)
				r.bind(el.flat[mi], ev)
				if bits.OnesCount64(r.setMask) == len(el.set) {
					r.elem++
					r.setMask = 0
					r.kcount = 0
					return true, r.elem == len(s.c.elems)
				}
				return true, false
			}
		}
		return false, false
	}
	return false, false
}

// bindInto binds ev into element ei (used by advance-first). On success the
// run's position moves to ei (or past it).
func (s *State) bindInto(r *run, ei int, ev *event.Event) bool {
	el := &s.c.elems[ei]
	// Negation guards of the next element also apply during advance-first;
	// a guard match is handled by the caller's guard pass on the *current*
	// element only, so be conservative: an event matching a guard of the
	// next element does not advance.
	switch el.kind {
	case pattern.ElemStep:
		if !el.step.Matches(ev, r) {
			return false
		}
		r.elem = ei
		r.kcount = 0
		r.bind(el.flat[0], ev)
		if el.step.Quant == pattern.OneOrMore {
			r.kcount = 1
			if ei == len(s.c.elems)-1 {
				r.elem = len(s.c.elems)
				return true
			}
			return true
		}
		r.elem = ei + 1
		return true
	case pattern.ElemSet:
		for mi := range el.set {
			if el.set[mi].Matches(ev, r) {
				r.elem = ei
				r.kcount = 0
				r.setMask = 1 << uint(mi)
				r.bind(el.flat[mi], ev)
				if bits.OnesCount64(r.setMask) == len(el.set) {
					r.elem = ei + 1
					r.setMask = 0
				}
				return true
			}
		}
		return false
	}
	return false
}

// boundStep returns the step ev was just bound to in r (the last binding).
func (s *State) boundStep(r *run, ev *event.Event) *pattern.Step {
	if r.lastFlat < 0 || len(r.events) == 0 || r.events[len(r.events)-1] != ev {
		return nil
	}
	return s.flatStep(int(r.lastFlat))
}

// flatStep maps a flat index back to its step. Guards occupy flat indices
// too, so they are searched as well.
func (s *State) flatStep(fi int) *pattern.Step {
	for ei := range s.c.elems {
		el := &s.c.elems[ei]
		for gi := range el.guards {
			if el.guards[gi].flat == fi {
				return &s.c.elems[ei].guards[gi].step
			}
		}
		for j, f := range el.flat {
			if f == fi {
				switch el.kind {
				case pattern.ElemStep:
					return &s.c.elems[ei].step
				case pattern.ElemSet:
					return &s.c.elems[ei].set[j]
				}
			}
		}
	}
	return nil
}

// buildMatch assembles the Match for a completed run.
func (s *State) buildMatch(r *run, completedAt *event.Event) *Match {
	m := &Match{CompletedAt: completedAt}
	for fi := range r.spans {
		sp := r.spans[fi]
		if sp.n == 0 {
			continue
		}
		evs := r.events[sp.start : sp.start+sp.n]
		m.Constituents = append(m.Constituents, evs...)
		st := s.flatStep(fi)
		if st != nil && st.Consume {
			m.Consumed = append(m.Consumed, evs...)
		}
	}
	sort.Slice(m.Constituents, func(i, j int) bool { return m.Constituents[i].Seq < m.Constituents[j].Seq })
	sort.Slice(m.Consumed, func(i, j int) bool { return m.Consumed[i].Seq < m.Consumed[j].Seq })
	return m
}

// leaderConsumed reports whether the run's leading-element binding was
// consumed by m (restart-after-leader cannot keep a consumed leader).
func (s *State) leaderConsumed(r *run, m *Match) bool {
	lead := r.Bound(s.c.elems[0].flat[0])
	if len(lead) == 0 {
		return true
	}
	for _, c := range m.Consumed {
		if c == lead[0] {
			return true
		}
	}
	return false
}

// resetAfterLeader resets the run to the state right after its leading
// element matched, keeping the leader binding. The backing slice is
// truncated in place — the leader is always the run's first binding
// (restart-after-leader requires a single-event leading step).
func (s *State) resetAfterLeader(r *run) {
	leadFlat := s.c.elems[0].flat[0]
	lead := r.events[r.spans[leadFlat].start]
	r.events = r.events[:0]
	clear(r.spans)
	r.events = append(r.events, lead)
	r.spans[leadFlat] = span{start: 0, n: 1}
	r.lastFlat = int32(leadFlat)
	r.elem = 1
	r.kcount = 0
	r.setMask = 0
}

// WindowEnd abandons all open runs (the window closed before completion).
func (s *State) WindowEnd(fb []Feedback) []Feedback {
	for _, r := range s.runs {
		fb = append(fb, Feedback{
			Kind: RunAbandoned, Run: r.id,
			PrevDelta: s.delta(r), Delta: s.delta(r),
		})
		s.recycle(r)
	}
	clear(s.runs)
	s.runs = s.runs[:0]
	return fb
}

// AbandonRunsUsing abandons every open run that has bound an event whose
// sequence number is in seqs (ascending). It implements same-window
// consumption: a consumed event invalidates partial matches that use it.
func (s *State) AbandonRunsUsing(seqs []uint64, fb []Feedback) []Feedback {
	if len(seqs) == 0 || len(s.runs) == 0 {
		return fb
	}
	removed := s.idxBuf[:0]
	for ri, r := range s.runs {
		if r.usesAny(seqs) {
			fb = append(fb, Feedback{
				Kind: RunAbandoned, Run: r.id,
				PrevDelta: s.delta(r), Delta: s.delta(r),
			})
			removed = append(removed, ri)
		}
	}
	if len(removed) > 0 {
		s.removeRuns(removed)
	}
	s.idxBuf = removed[:0]
	return fb
}

func (s *State) removeRun(id int) {
	for ri, r := range s.runs {
		if r.id == id {
			copy(s.runs[ri:], s.runs[ri+1:])
			s.runs[len(s.runs)-1] = nil // no duplicate reference in the tail
			s.runs = s.runs[:len(s.runs)-1]
			s.recycle(r)
			return
		}
	}
}

// removeRuns removes the runs at the given ascending indices, recycling
// them through the freelist.
func (s *State) removeRuns(idx []int) {
	out := s.runs[:0]
	j := 0
	for i, r := range s.runs {
		if j < len(idx) && idx[j] == i {
			j++
			s.recycle(r)
			continue
		}
		out = append(out, r)
	}
	// Clear the tail so the slice holds no duplicate references.
	for i := len(out); i < len(s.runs); i++ {
		s.runs[i] = nil
	}
	s.runs = out
}
