package matcher

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/event"
)

// Snapshot is a self-contained, serializable image of a matcher State.
// Unlike Clone — which shares *event.Event pointers with the arena — a
// Snapshot copies every bound event by value, so it survives process
// death: restoring it needs no arena and no pointer fix-up. The durable
// checkpoint WAL (internal/durable) persists these.
type Snapshot struct {
	NextID  int
	Stopped bool
	Runs    []RunSnapshot
}

// RunSnapshot images one open partial match. Events are the run's bound
// events in bind order, by value; Spans mirror the run's per-flat-index
// binding spans into Events.
type RunSnapshot struct {
	ID       int
	Elem     int
	KCount   int
	SetMask  uint64
	LastFlat int32
	Events   []event.Event
	Spans    []Span
}

// Span locates one flat step's bindings inside RunSnapshot.Events.
type Span struct {
	Start, N int32
}

// Snapshot captures the state's open runs by value. The state is not
// mutated; the caller must have exclusive access (the same ownership
// Clone requires).
func (s *State) Snapshot() *Snapshot {
	sn := &Snapshot{NextID: s.nextID, Stopped: s.stopped}
	if len(s.runs) > 0 {
		sn.Runs = make([]RunSnapshot, len(s.runs))
	}
	for i, r := range s.runs {
		rs := RunSnapshot{
			ID: r.id, Elem: r.elem, KCount: r.kcount,
			SetMask: r.setMask, LastFlat: r.lastFlat,
		}
		if len(r.events) > 0 {
			rs.Events = make([]event.Event, len(r.events))
			for j, ev := range r.events {
				rs.Events[j] = *ev
				rs.Events[j].Fields = append([]float64(nil), ev.Fields...)
			}
		}
		rs.Spans = make([]Span, len(r.spans))
		for j, sp := range r.spans {
			rs.Spans[j] = Span{Start: sp.start, N: sp.n}
		}
		sn.Runs[i] = rs
	}
	return sn
}

// StateFromSnapshot rebuilds a State from a snapshot taken against the
// same compiled pattern. The snapshot's event copies become the run's
// backing storage — pointer identity within a run (leader retention,
// consumed-leader checks) is preserved because every binding points into
// one freshly allocated slice, exactly like a live run's layout.
func (c *Compiled) StateFromSnapshot(sn *Snapshot) (*State, error) {
	s := &State{c: c, nextID: sn.NextID, stopped: sn.Stopped}
	if len(sn.Runs) > 0 {
		s.runs = make([]*run, len(sn.Runs))
	}
	for i := range sn.Runs {
		rs := &sn.Runs[i]
		if len(rs.Spans) != c.numFlat {
			return nil, fmt.Errorf("matcher: snapshot run %d has %d spans, pattern %q has %d flat steps",
				rs.ID, len(rs.Spans), c.name, c.numFlat)
		}
		evs := make([]event.Event, len(rs.Events))
		copy(evs, rs.Events)
		r := &run{
			id: rs.ID, elem: rs.Elem, kcount: rs.KCount,
			setMask: rs.SetMask, lastFlat: rs.LastFlat,
			spans: make([]span, len(rs.Spans)),
		}
		if len(evs) > 0 {
			r.events = make([]*event.Event, len(evs))
			for j := range evs {
				r.events[j] = &evs[j]
			}
		}
		for j, sp := range rs.Spans {
			if int(sp.Start)+int(sp.N) > len(evs) || sp.Start < 0 || sp.N < 0 {
				return nil, fmt.Errorf("matcher: snapshot run %d span %d [%d,+%d) exceeds %d bound events",
					rs.ID, j, sp.Start, sp.N, len(evs))
			}
			r.spans[j] = span{start: sp.Start, n: sp.N}
		}
		s.runs[i] = r
	}
	return s, nil
}
