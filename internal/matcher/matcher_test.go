package matcher

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// mk builds a typed event with a sequence number.
func mk(seq uint64, t event.Type) *event.Event {
	return &event.Event{Seq: seq, Type: t}
}

func kinds(fb []Feedback) []FeedbackKind {
	out := make([]FeedbackKind, len(fb))
	for i := range fb {
		out[i] = fb[i].Kind
	}
	return out
}

func compileSeq(t *testing.T, sel pattern.SelectionPolicy, steps ...pattern.Step) *Compiled {
	t.Helper()
	p := pattern.Seq("t", steps...)
	p.Selection = sel
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSequenceLifecycle(t *testing.T) {
	ta, tb, tc := event.Type(1), event.Type(2), event.Type(3)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch},
		pattern.Step{Name: "A", Types: []event.Type{ta}, Consume: true},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Consume: true},
		pattern.Step{Name: "C", Types: []event.Type{tc}, Consume: true},
	)
	if c.MinLength() != 3 {
		t.Fatalf("min length = %d, want 3", c.MinLength())
	}
	s := c.NewState()

	fb := s.Process(mk(0, ta), nil)
	if len(fb) != 1 || fb[0].Kind != RunStarted || !fb[0].Consumable {
		t.Fatalf("A feedback = %v", kinds(fb))
	}
	if fb[0].PrevDelta != 3 || fb[0].Delta != 2 {
		t.Fatalf("A deltas = %d→%d, want 3→2", fb[0].PrevDelta, fb[0].Delta)
	}

	// A non-matching event is skipped silently (skip-till-next-match).
	fb = s.Process(mk(1, event.Type(9)), nil)
	if len(fb) != 0 {
		t.Fatalf("non-matching event produced feedback %v", kinds(fb))
	}

	fb = s.Process(mk(2, tb), nil)
	if len(fb) != 1 || fb[0].Kind != EventBound || fb[0].Delta != 1 {
		t.Fatalf("B feedback = %+v", fb)
	}

	fb = s.Process(mk(3, tc), nil)
	if len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatalf("C feedback = %v", kinds(fb))
	}
	m := fb[0].Match
	if len(m.Constituents) != 3 || len(m.Consumed) != 3 {
		t.Fatalf("match = %d constituents / %d consumed, want 3/3", len(m.Constituents), len(m.Consumed))
	}
	if m.CompletedAt.Seq != 3 {
		t.Fatalf("completed at %d, want 3", m.CompletedAt.Seq)
	}
	if !s.Stopped() {
		t.Fatal("stop-after-match must stop the window")
	}
	// Further events do nothing.
	if fb = s.Process(mk(4, ta), nil); len(fb) != 0 {
		t.Fatalf("stopped state still reacts: %v", kinds(fb))
	}
}

func TestWindowEndAbandons(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	fb := s.WindowEnd(nil)
	if len(fb) != 1 || fb[0].Kind != RunAbandoned {
		t.Fatalf("window end feedback = %v", kinds(fb))
	}
	if s.OpenRuns() != 0 {
		t.Fatal("window end must clear all runs")
	}
}

func TestCloneIndependence(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	cl := s.Clone()

	fb := s.Process(mk(1, tb), nil)
	if len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatal("original must complete")
	}
	// The clone still waits for B.
	if cl.OpenRuns() != 1 {
		t.Fatal("clone must keep its own open run")
	}
	fb = cl.Process(mk(2, tb), nil)
	if len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatal("clone must complete independently")
	}
}

func TestKleeneAdvanceFirst(t *testing.T) {
	ta, tb, tc := event.Type(1), event.Type(2), event.Type(3)
	// B's filter also matches C-typed events (overlapping predicates):
	// with at least one B bound, advance-first must prefer moving to C.
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb, tc}, Quant: pattern.OneOrMore},
		pattern.Step{Name: "C", Types: []event.Type{tc}},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	s.Process(mk(1, tb), nil) // first B
	fb := s.Process(mk(2, tc), nil)
	if len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatalf("advance-first should complete on the ambiguous event, got %v", kinds(fb))
	}
	if got := len(fb[0].Match.Constituents); got != 3 {
		t.Fatalf("constituents = %d, want 3 (A, one B, C)", got)
	}
}

func TestKleeneDeltaStable(t *testing.T) {
	ta, tb, tc := event.Type(1), event.Type(2), event.Type(3)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Quant: pattern.OneOrMore},
		pattern.Step{Name: "C", Types: []event.Type{tc}},
	)
	s := c.NewState()
	fb := s.Process(mk(0, ta), nil)
	if fb[0].Delta != 2 {
		t.Fatalf("δ after A = %d, want 2 (B+ needs ≥1, C needs 1)", fb[0].Delta)
	}
	fb = s.Process(mk(1, tb), nil)
	if fb[0].Delta != 1 {
		t.Fatalf("δ after first B = %d, want 1", fb[0].Delta)
	}
	// Additional B's must not advance completion (paper: "the Kleene+
	// implies that many events can match while the pattern completion
	// does not progress").
	fb = s.Process(mk(2, tb), nil)
	if fb[0].Delta != 1 || fb[0].PrevDelta != 1 {
		t.Fatalf("δ after second B = %d→%d, want 1→1", fb[0].PrevDelta, fb[0].Delta)
	}
}

func TestRestartAfterLeaderCarry(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.RestartAfterLeader},
		pattern.Step{Name: "A", Types: []event.Type{ta}, Consume: true},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	fb := s.Process(mk(1, tb), nil)
	// The match consumes the leader itself, so the run cannot restart:
	// only the completion is reported and the run dies.
	if len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatalf("feedback = %v, want only [completed] (leader consumed)", kinds(fb))
	}
	if s.OpenRuns() != 0 {
		t.Fatal("leader was consumed by the match; the run must not survive")
	}
}

func TestRestartAfterLeaderKeepsUnconsumedLeader(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.RestartAfterLeader},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Consume: true},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)

	fb := s.Process(mk(1, tb), nil)
	if len(fb) != 2 || fb[0].Kind != RunCompleted || fb[1].Kind != RunStarted {
		t.Fatalf("feedback = %v", kinds(fb))
	}
	if len(fb[1].Carry) != 0 {
		t.Fatal("unconsumed leader is not consumable; carry must be empty")
	}
	if s.OpenRuns() != 1 {
		t.Fatal("run must survive with the retained leader")
	}
	fb = s.Process(mk(2, tb), nil)
	if len(fb) != 2 || fb[0].Kind != RunCompleted {
		t.Fatalf("second B must complete again, got %v", kinds(fb))
	}
	m := fb[0].Match
	if len(m.Constituents) != 2 || m.Constituents[0].Seq != 0 || m.Constituents[1].Seq != 2 {
		t.Fatalf("second match = %v, want A(0) B(2)", m.Constituents)
	}
}

func TestMaxConcurrentRuns(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 2, OnCompletion: pattern.RestartFresh},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	s.Process(mk(1, ta), nil)
	fb := s.Process(mk(2, ta), nil)
	if len(fb) != 0 || s.OpenRuns() != 2 {
		t.Fatalf("third A must not start a run (cap 2): fb=%v runs=%d", kinds(fb), s.OpenRuns())
	}
	// One B completes both runs (the same event extends every open run).
	fb = s.Process(mk(3, tb), nil)
	completed := 0
	for _, f := range fb {
		if f.Kind == RunCompleted {
			completed++
		}
	}
	if completed != 2 {
		t.Fatalf("B completed %d runs, want 2", completed)
	}
}

func TestAbandonRunsUsing(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 0, OnCompletion: pattern.RestartFresh},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	s := c.NewState()
	s.Process(mk(5, ta), nil)
	s.Process(mk(7, ta), nil)
	fb := s.AbandonRunsUsing([]uint64{5}, nil)
	if len(fb) != 1 || fb[0].Kind != RunAbandoned {
		t.Fatalf("feedback = %v, want one abandon", kinds(fb))
	}
	if s.OpenRuns() != 1 {
		t.Fatalf("open runs = %d, want 1", s.OpenRuns())
	}
}

func TestSetOutOfOrderAndDuplicates(t *testing.T) {
	ta := event.Type(1)
	x1, x2, x3 := event.Type(11), event.Type(12), event.Type(13)
	p := &pattern.Pattern{
		Name: "set",
		Elements: []pattern.Element{
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "A", Types: []event.Type{ta}}},
			{Kind: pattern.ElemSet, Set: []pattern.Step{
				{Name: "X1", Types: []event.Type{x1}},
				{Name: "X2", Types: []event.Type{x2}},
				{Name: "X3", Types: []event.Type{x3}},
			}},
		},
		Selection: pattern.SelectionPolicy{MaxConcurrentRuns: 1},
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinLength() != 4 {
		t.Fatalf("min length = %d, want 4", c.MinLength())
	}
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	fb := s.Process(mk(1, x3), nil)
	if fb[0].Delta != 2 {
		t.Fatalf("δ after one member = %d, want 2", fb[0].Delta)
	}
	// A duplicate member does not bind again.
	fb = s.Process(mk(2, x3), nil)
	if len(fb) != 0 {
		t.Fatalf("duplicate member bound: %v", kinds(fb))
	}
	s.Process(mk(3, x1), nil)
	fb = s.Process(mk(4, x2), nil)
	if len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatalf("set completion feedback = %v", kinds(fb))
	}
	if got := len(fb[0].Match.Constituents); got != 4 {
		t.Fatalf("constituents = %d, want 4", got)
	}
}

func TestNegationGuardBinderAccess(t *testing.T) {
	ta, tb, tx := event.Type(1), event.Type(2), event.Type(3)
	// The negation only fires when the X event's seq is greater than the
	// bound A's seq + 1 (a predicate over the binder).
	fieldless := func(ev *event.Event, b pattern.Binder) bool {
		bound := b.Bound(0)
		return len(bound) > 0 && ev.Seq > bound[0].Seq+1
	}
	p := &pattern.Pattern{
		Name: "guard",
		Elements: []pattern.Element{
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "A", Types: []event.Type{ta}}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "X", Types: []event.Type{tx}, Negated: true, Pred: fieldless}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "B", Types: []event.Type{tb}}},
		},
		Selection: pattern.SelectionPolicy{MaxConcurrentRuns: 1},
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// X at seq 1 does not satisfy the guard predicate → run survives.
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	if fb := s.Process(mk(1, tx), nil); len(fb) != 0 {
		t.Fatalf("guard fired too early: %v", kinds(fb))
	}
	if fb := s.Process(mk(2, tb), nil); len(fb) != 1 || fb[0].Kind != RunCompleted {
		t.Fatal("run must complete")
	}
	// X at seq 2 satisfies the guard → abandon.
	s = c.NewState()
	s.Process(mk(0, ta), nil)
	if fb := s.Process(mk(2, tx), nil); len(fb) != 1 || fb[0].Kind != RunAbandoned {
		t.Fatalf("guard must abandon, got %v", kinds(fb))
	}
}

func TestTrailingNegationRejected(t *testing.T) {
	ta, tx := event.Type(1), event.Type(2)
	p := &pattern.Pattern{
		Name: "bad",
		Elements: []pattern.Element{
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "A", Types: []event.Type{ta}}},
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "X", Types: []event.Type{tx}, Negated: true}},
		},
	}
	if _, err := Compile(p); err == nil {
		t.Fatal("trailing negation must be rejected")
	}
}

func TestFinalKleeneMinimumMatch(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 1},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Quant: pattern.OneOrMore},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	fb := s.Process(mk(1, tb), nil)
	if len(fb) == 0 || fb[len(fb)-1].Kind != RunCompleted {
		t.Fatalf("final Kleene must complete on its first binding, got %v", kinds(fb))
	}
}

func TestRunsSnapshot(t *testing.T) {
	ta, tb := event.Type(1), event.Type(2)
	c := compileSeq(t,
		pattern.SelectionPolicy{MaxConcurrentRuns: 0, OnCompletion: pattern.RestartFresh},
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	s := c.NewState()
	s.Process(mk(0, ta), nil)
	s.Process(mk(1, ta), nil)
	infos := s.Runs(nil)
	if len(infos) != 2 {
		t.Fatalf("runs = %d, want 2", len(infos))
	}
	for _, ri := range infos {
		if ri.Delta != 1 {
			t.Fatalf("run %d δ = %d, want 1", ri.ID, ri.Delta)
		}
		if got := s.RunDelta(ri.ID); got != 1 {
			t.Fatalf("RunDelta(%d) = %d, want 1", ri.ID, got)
		}
	}
	if s.RunDelta(999) != -1 {
		t.Fatal("unknown run must report -1")
	}
}

// fbKey renders one feedback for byte-exact comparison.
func fbKey(f Feedback) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s run=%d cons=%t %d->%d", f.Kind, f.Run, f.Consumable, f.PrevDelta, f.Delta)
	if f.Event != nil {
		fmt.Fprintf(&b, " ev=%d", f.Event.Seq)
	}
	for _, c := range f.Carry {
		fmt.Fprintf(&b, " carry=%d", c.Seq)
	}
	if f.Match != nil {
		b.WriteString(" match=[")
		for _, c := range f.Match.Constituents {
			fmt.Fprintf(&b, "%d,", c.Seq)
		}
		b.WriteString("] consumed=[")
		for _, c := range f.Match.Consumed {
			fmt.Fprintf(&b, "%d,", c.Seq)
		}
		b.WriteString("]")
	}
	return b.String()
}

// TestCloneForkEquivalence is the fork-correctness property behind
// checkpointed speculation: a state cloned mid-stream and fed the
// identical suffix must produce byte-identical feedback and matches.
// Random patterns, selection policies and streams.
func TestCloneForkEquivalence(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		types := []event.Type{1, 2, 3, 4}
		nSteps := 2 + rng.Intn(3)
		steps := make([]pattern.Step, 0, nSteps)
		for i := 0; i < nSteps; i++ {
			st := pattern.Step{
				Name:    fmt.Sprintf("S%d", i),
				Types:   []event.Type{types[rng.Intn(len(types))]},
				Consume: rng.Intn(2) == 0,
			}
			if rng.Intn(2) == 0 {
				st.Quant = pattern.OneOrMore
			}
			if i > 0 && i < nSteps-1 && rng.Intn(5) == 0 {
				st.Negated = true
				st.Quant = pattern.One
				st.Consume = false
			}
			steps = append(steps, st)
		}
		positives := 0
		for i := range steps {
			if !steps[i].Negated {
				positives++
			}
		}
		if positives < 2 {
			steps[0].Negated = false
			steps[len(steps)-1].Negated = false
		}
		p := pattern.Seq("fork", steps...)
		p.Selection = pattern.SelectionPolicy{
			MaxConcurrentRuns: rng.Intn(3),
			OnCompletion:      pattern.CompletionBehavior(1 + rng.Intn(3)),
		}
		if p.Selection.OnCompletion == pattern.RestartAfterLeader {
			steps[0].Quant = pattern.One
			steps[0].Negated = false
			p = pattern.Seq("fork", steps...)
			p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.RestartAfterLeader}
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		n := 200 + rng.Intn(200)
		split := rng.Intn(n)
		s := c.NewState()
		var fork *State
		for i := 0; i < n; i++ {
			if i == split {
				fork = s.Clone()
				if fork.OpenRuns() != s.OpenRuns() {
					t.Fatalf("seed %d: clone has %d runs, original %d", seed, fork.OpenRuns(), s.OpenRuns())
				}
			}
			ev := mk(uint64(i), types[rng.Intn(len(types))])
			got := s.Process(ev, nil)
			if fork == nil {
				continue
			}
			want := fork.Process(ev, nil)
			if len(got) != len(want) {
				t.Fatalf("seed %d ev %d: original %d feedback, fork %d", seed, i, len(got), len(want))
			}
			for j := range got {
				if g, w := fbKey(got[j]), fbKey(want[j]); g != w {
					t.Fatalf("seed %d ev %d fb %d:\noriginal: %s\n    fork: %s", seed, i, j, g, w)
				}
			}
			if s.Stopped() != fork.Stopped() || s.OpenRuns() != fork.OpenRuns() {
				t.Fatalf("seed %d ev %d: state diverged (stopped %t/%t, runs %d/%d)",
					seed, i, s.Stopped(), fork.Stopped(), s.OpenRuns(), fork.OpenRuns())
			}
		}
		if fork == nil {
			continue
		}
		a := s.WindowEnd(nil)
		b := fork.WindowEnd(nil)
		if len(a) != len(b) {
			t.Fatalf("seed %d: window end diverged (%d vs %d abandons)", seed, len(a), len(b))
		}
		for j := range a {
			if fbKey(a[j]) != fbKey(b[j]) {
				t.Fatalf("seed %d window-end fb %d: %s vs %s", seed, j, fbKey(a[j]), fbKey(b[j]))
			}
		}
	}
}
