package parser

import (
	"errors"
	"testing"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/query"
)

// FuzzParseQuery asserts three invariants over arbitrary input:
//
//  1. Parse never panics (garbage in, *query.Error out);
//  2. every error is a structured *query.Error with at least one issue;
//  3. accepted input round-trips its builder lowering: the compiled query
//     passes validation and re-parsing into a fresh registry yields a
//     structurally identical query (lowering is deterministic, and
//     interned ids depend only on first-use order).
//
// CI runs it as a short -fuzztime smoke next to the bench smokes.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`PATTERN (A B) WITHIN 10 EVENTS FROM A`,
		`QUERY Q1
		 PATTERN (MLE RE1 RE2)
		 DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
		        RE1 AS RE1.close > RE1.open,
		        RE2 AS RE2.close > RE2.open
		 WITHIN 8000 EVENTS FROM MLE
		 CONSUME (MLE RE1 RE2)`,
		`PATTERN (A B+ C)
		 DEFINE A AS A.close < 10, B AS (B.close > 10 AND B.close < 20), C AS C.close > 20
		 WITHIN 500 EVENTS FROM EVERY 100 EVENTS
		 CONSUME ALL`,
		`PATTERN (A SET(X1 X2 X3))
		 DEFINE A AS A.symbol = 'S0000'
		 WITHIN 1 min FROM A
		 CONSUME (A X1)`,
		`PATTERN (A !C B)
		 DEFINE A AS A.symbol = 'A', B AS NOT (B.x + 1 <= A.x * -2) OR B.x IN (1, 2), C AS C.symbol = 'C'
		 WITHIN 100 EVENTS FROM A
		 CONSUME (B)
		 ON MATCH RESTART LEADER
		 RUNS 2
		 PARTITION BY account SHARDS 4`,
		`-- comment
		 PATTERN (A) WITHIN 2.5 sec FROM A PARTITION BY TYPE`,
		`PATTERN () WITHIN 10 EVENTS`,
		`PATTERN (A B WITHIN`,
		"PATTERN (A)\nDEFINE A AS A.symbol = 'x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, event.NewRegistry())
		if err != nil {
			var qe *query.Error
			if !errors.As(err, &qe) {
				t.Fatalf("parse error is not *query.Error: %T %v", err, err)
			}
			if len(qe.Issues) == 0 {
				t.Fatalf("structured error with no issues: %v", err)
			}
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v", err)
		}
		q2, err := Parse(src, event.NewRegistry())
		if err != nil {
			t.Fatalf("accepted input fails to re-parse: %v", err)
		}
		if d := query.Diff(q, q2); d != "" {
			t.Fatalf("re-parse differs structurally: %s", d)
		}
	})
}
