// Package parser implements the textual query language of the paper's
// Figure 9: the MATCH-RECOGNIZE notation [33] extended with the two Tesla
// constructs the paper adds — `WITHIN ... FROM` window specifications and
// `CONSUME` consumption policies — plus small selection-policy extensions.
//
// Example (the paper's Q1 for q = 2):
//
//	QUERY Q1
//	PATTERN (MLE RE1 RE2)
//	DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
//	       RE1 AS RE1.close > RE1.open,
//	       RE2 AS RE2.close > RE2.open
//	WITHIN 8000 EVENTS FROM MLE
//	CONSUME (MLE RE1 RE2)
//
// Grammar summary (keywords are case-insensitive):
//
//	query    := [QUERY ident]
//	            PATTERN '(' elem+ ')'
//	            [DEFINE def (',' def)*]
//	            WITHIN (int EVENTS | duration) [FROM (ident | EVERY int EVENTS)]
//	            [CONSUME ('(' ident+ ')' | ALL | NONE)]
//	            [ON MATCH (STOP | RESTART | RESTART LEADER)]
//	            [RUNS int]
//	            [PARTITION BY (TYPE | ident) [SHARDS int]]
//	elem     := ident ['+'] | '!' ident | SET '(' ident+ ')'
//	def      := ident AS expr
//	expr     := disjunction of conjunctions of comparisons over
//	            arithmetic on field refs (X.field), X.symbol, numbers,
//	            strings, with NOT, parentheses and IN ('A','B',...)
//	duration := int (MS | S | SEC | MIN | H)
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokPlus
	tokBang
	tokStar
	tokSlash
	tokMinus
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokPlus:
		return "'+'"
	case tokBang:
		return "'!'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokMinus:
		return "'-'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'!='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// Error is a parse error with position information.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("parser: line %d: %s", e.Line, e.Msg) }

func errorf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL-style line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line}, nil

scan:
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start, line: line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
			l.src[l.pos] == 'E' || ((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
			(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start, line: line}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			if l.src[l.pos] == '\n' {
				return token{}, errorf(line, "unterminated string literal")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, errorf(line, "unterminated string literal")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, pos: start, line: line}, nil
	}
	l.pos++
	two := byte(0)
	if l.pos < len(l.src) {
		two = l.src[l.pos]
	}
	mk := func(k tokenKind, text string) (token, error) {
		return token{kind: k, text: text, pos: start, line: line}, nil
	}
	switch c {
	case '(':
		return mk(tokLParen, "(")
	case ')':
		return mk(tokRParen, ")")
	case ',':
		return mk(tokComma, ",")
	case '.':
		return mk(tokDot, ".")
	case '+':
		return mk(tokPlus, "+")
	case '*':
		return mk(tokStar, "*")
	case '/':
		return mk(tokSlash, "/")
	case '-':
		return mk(tokMinus, "-")
	case '<':
		if two == '=' {
			l.pos++
			return mk(tokLE, "<=")
		}
		if two == '>' {
			l.pos++
			return mk(tokNE, "<>")
		}
		return mk(tokLT, "<")
	case '>':
		if two == '=' {
			l.pos++
			return mk(tokGE, ">=")
		}
		return mk(tokGT, ">")
	case '=':
		if two == '=' {
			l.pos++
		}
		return mk(tokEQ, "=")
	case '!':
		if two == '=' {
			l.pos++
			return mk(tokNE, "!=")
		}
		return mk(tokBang, "!")
	}
	return token{}, errorf(line, "unexpected character %q", string(rune(c)))
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// keyword matching is case-insensitive.
func isKeyword(tok token, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
