// Package parser implements the textual query language of the paper's
// Figure 9: the MATCH-RECOGNIZE notation [33] extended with the two Tesla
// constructs the paper adds — `WITHIN ... FROM` window specifications and
// `CONSUME` consumption policies — plus small selection-policy extensions.
//
// The authoritative grammar lives in the public query package docs
// (github.com/spectrecep/spectre/query), together with the fluent builder
// every parsed query lowers through: the parser desugars clauses into
// query.Builder calls, so the DSL and programmatic construction share one
// compilation and validation path.
//
// Errors are *query.Error values carrying line:column positions and a
// caret excerpt of the offending source line.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/spectrecep/spectre/query"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokPlus
	tokBang
	tokStar
	tokSlash
	tokMinus
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokPlus:
		return "'+'"
	case tokBang:
		return "'!'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokMinus:
		return "'-'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'!='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset into the source
	line int // 1-based source line
	col  int // 1-based byte column within the line
}

// errAt builds a positioned single-issue *query.Error with a caret
// excerpt of the offending source line.
func errAt(src string, line, col int, format string, args ...any) error {
	return &query.Error{Issues: []query.Issue{{
		Line:    line,
		Col:     col,
		Msg:     fmt.Sprintf(format, args...),
		Excerpt: excerpt(src, line, col),
	}}}
}

// excerpt returns the line'th source line followed by a caret under col.
// Tabs in the prefix are preserved so the caret lines up in terminals.
func excerpt(src string, line, col int) string {
	for l := 1; l < line; l++ {
		i := strings.IndexByte(src, '\n')
		if i < 0 {
			return ""
		}
		src = src[i+1:]
	}
	if i := strings.IndexByte(src, '\n'); i >= 0 {
		src = src[:i]
	}
	src = strings.TrimRight(src, "\r")
	if col < 1 || col > len(src)+1 {
		return src
	}
	pad := make([]byte, 0, col-1)
	for _, c := range []byte(src[:col-1]) {
		if c == '\t' {
			pad = append(pad, '\t')
		} else {
			pad = append(pad, ' ')
		}
	}
	return src + "\n" + string(pad) + "^"
}

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first byte
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// errAt reports a lexical error at the given byte offset.
func (l *lexer) errAt(pos, line int, format string, args ...any) error {
	return errAt(l.src, line, pos-l.lineStart+1, format, args...)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL-style line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line, col: l.pos - l.lineStart + 1}, nil

scan:
	start, line, col := l.pos, l.line, l.pos-l.lineStart+1
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start, line: line, col: col}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
			l.src[l.pos] == 'E' || ((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
			(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start, line: line, col: col}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			if l.src[l.pos] == '\n' {
				return token{}, l.errAt(start, line, "unterminated string literal")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errAt(start, line, "unterminated string literal")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, pos: start, line: line, col: col}, nil
	}
	l.pos++
	two := byte(0)
	if l.pos < len(l.src) {
		two = l.src[l.pos]
	}
	mk := func(k tokenKind, text string) (token, error) {
		return token{kind: k, text: text, pos: start, line: line, col: col}, nil
	}
	switch c {
	case '(':
		return mk(tokLParen, "(")
	case ')':
		return mk(tokRParen, ")")
	case ',':
		return mk(tokComma, ",")
	case '.':
		return mk(tokDot, ".")
	case '+':
		return mk(tokPlus, "+")
	case '*':
		return mk(tokStar, "*")
	case '/':
		return mk(tokSlash, "/")
	case '-':
		return mk(tokMinus, "-")
	case '<':
		if two == '=' {
			l.pos++
			return mk(tokLE, "<=")
		}
		if two == '>' {
			l.pos++
			return mk(tokNE, "<>")
		}
		return mk(tokLT, "<")
	case '>':
		if two == '=' {
			l.pos++
			return mk(tokGE, ">=")
		}
		return mk(tokGT, ">")
	case '=':
		if two == '=' {
			l.pos++
		}
		return mk(tokEQ, "=")
	case '!':
		if two == '=' {
			l.pos++
			return mk(tokNE, "!=")
		}
		return mk(tokBang, "!")
	}
	return token{}, l.errAt(start, line, "unexpected character %q", string(rune(c)))
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// keyword matching is case-insensitive.
func isKeyword(tok token, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
