package parser

import (
	"strconv"
	"strings"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// Expression values are numbers, booleans or symbols (event types).
// String literals are interned as event types at parse time, so symbol
// comparisons are integer comparisons at match time.
type valKind int

const (
	vNum valKind = iota + 1
	vBool
	vSym
)

func (k valKind) String() string {
	switch k {
	case vNum:
		return "number"
	case vBool:
		return "boolean"
	case vSym:
		return "symbol"
	default:
		return "invalid"
	}
}

type value struct {
	kind valKind
	num  float64
	b    bool
	sym  event.Type
}

// evalCtx carries the candidate event and the partial-match bindings.
type evalCtx struct {
	ev *event.Event
	b  pattern.Binder
}

// expr is a type-checked expression node.
type expr interface {
	kind() valKind
	// eval returns the node's value; ok is false when a referenced step
	// has no binding yet (the enclosing comparison then fails).
	eval(ctx *evalCtx) (value, bool)
}

type numLit float64

func (numLit) kind() valKind { return vNum }
func (n numLit) eval(*evalCtx) (value, bool) {
	return value{kind: vNum, num: float64(n)}, true
}

type symLit event.Type

func (symLit) kind() valKind { return vSym }
func (s symLit) eval(*evalCtx) (value, bool) {
	return value{kind: vSym, sym: event.Type(s)}, true
}

// fieldRef reads a numeric payload field from the candidate (self) or a
// bound step (the first bound event of that step).
type fieldRef struct {
	self  bool
	flat  int
	field int
}

func (fieldRef) kind() valKind { return vNum }
func (r fieldRef) eval(ctx *evalCtx) (value, bool) {
	ev := ctx.ev
	if !r.self {
		if ctx.b == nil {
			return value{}, false
		}
		bound := ctx.b.Bound(r.flat)
		if len(bound) == 0 {
			return value{}, false
		}
		ev = bound[0]
	}
	return value{kind: vNum, num: ev.Field(r.field)}, true
}

// symRef reads the event type (symbol) of the candidate or a bound step.
type symRef struct {
	self bool
	flat int
}

func (symRef) kind() valKind { return vSym }
func (r symRef) eval(ctx *evalCtx) (value, bool) {
	ev := ctx.ev
	if !r.self {
		if ctx.b == nil {
			return value{}, false
		}
		bound := ctx.b.Bound(r.flat)
		if len(bound) == 0 {
			return value{}, false
		}
		ev = bound[0]
	}
	return value{kind: vSym, sym: ev.Type}, true
}

type arith struct {
	op   tokenKind // tokPlus tokMinus tokStar tokSlash
	l, r expr
}

func (arith) kind() valKind { return vNum }
func (a arith) eval(ctx *evalCtx) (value, bool) {
	lv, ok := a.l.eval(ctx)
	if !ok {
		return value{}, false
	}
	rv, ok := a.r.eval(ctx)
	if !ok {
		return value{}, false
	}
	var out float64
	switch a.op {
	case tokPlus:
		out = lv.num + rv.num
	case tokMinus:
		out = lv.num - rv.num
	case tokStar:
		out = lv.num * rv.num
	case tokSlash:
		if rv.num == 0 {
			return value{}, false
		}
		out = lv.num / rv.num
	}
	return value{kind: vNum, num: out}, true
}

type neg struct{ e expr }

func (neg) kind() valKind { return vNum }
func (n neg) eval(ctx *evalCtx) (value, bool) {
	v, ok := n.e.eval(ctx)
	if !ok {
		return value{}, false
	}
	return value{kind: vNum, num: -v.num}, true
}

type cmp struct {
	op   tokenKind
	l, r expr
}

func (cmp) kind() valKind { return vBool }
func (c cmp) eval(ctx *evalCtx) (value, bool) {
	lv, ok := c.l.eval(ctx)
	if !ok {
		return value{kind: vBool, b: false}, true
	}
	rv, ok := c.r.eval(ctx)
	if !ok {
		return value{kind: vBool, b: false}, true
	}
	var out bool
	if lv.kind == vSym {
		switch c.op {
		case tokEQ:
			out = lv.sym == rv.sym
		case tokNE:
			out = lv.sym != rv.sym
		}
	} else {
		switch c.op {
		case tokLT:
			out = lv.num < rv.num
		case tokLE:
			out = lv.num <= rv.num
		case tokGT:
			out = lv.num > rv.num
		case tokGE:
			out = lv.num >= rv.num
		case tokEQ:
			out = lv.num == rv.num
		case tokNE:
			out = lv.num != rv.num
		}
	}
	return value{kind: vBool, b: out}, true
}

// inList implements `X.symbol IN ('A','B')` and `X.f IN (1, 2)`.
type inList struct {
	e    expr
	syms []event.Type
	nums []float64
}

func (inList) kind() valKind { return vBool }
func (in inList) eval(ctx *evalCtx) (value, bool) {
	v, ok := in.e.eval(ctx)
	if !ok {
		return value{kind: vBool, b: false}, true
	}
	if v.kind == vSym {
		for _, s := range in.syms {
			if v.sym == s {
				return value{kind: vBool, b: true}, true
			}
		}
		return value{kind: vBool, b: false}, true
	}
	for _, n := range in.nums {
		if v.num == n {
			return value{kind: vBool, b: true}, true
		}
	}
	return value{kind: vBool, b: false}, true
}

type logical struct {
	and  bool
	l, r expr
}

func (logical) kind() valKind { return vBool }
func (lg logical) eval(ctx *evalCtx) (value, bool) {
	lv, ok := lg.l.eval(ctx)
	if !ok {
		lv = value{kind: vBool}
	}
	if lg.and && !lv.b {
		return value{kind: vBool, b: false}, true
	}
	if !lg.and && lv.b {
		return value{kind: vBool, b: true}, true
	}
	rv, ok := lg.r.eval(ctx)
	if !ok {
		rv = value{kind: vBool}
	}
	return value{kind: vBool, b: rv.b}, true
}

type notExpr struct{ e expr }

func (notExpr) kind() valKind { return vBool }
func (n notExpr) eval(ctx *evalCtx) (value, bool) {
	v, ok := n.e.eval(ctx)
	if !ok {
		v = value{kind: vBool}
	}
	return value{kind: vBool, b: !v.b}, true
}

// parseExpr parses an expression in the context of DEFINE-ing selfVar.
func (p *parser) parseExpr(selfVar string) (expr, error) {
	return p.parseOr(selfVar)
}

func (p *parser) parseOr(self string) (expr, error) {
	l, err := p.parseAnd(self)
	if err != nil {
		return nil, err
	}
	for isKeyword(p.tok, "OR") {
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd(self)
		if err != nil {
			return nil, err
		}
		if l.kind() != vBool || r.kind() != vBool {
			return nil, p.errf(opTok, "OR requires boolean operands")
		}
		l = logical{and: false, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd(self string) (expr, error) {
	l, err := p.parseNot(self)
	if err != nil {
		return nil, err
	}
	for isKeyword(p.tok, "AND") {
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot(self)
		if err != nil {
			return nil, err
		}
		if l.kind() != vBool || r.kind() != vBool {
			return nil, p.errf(opTok, "AND requires boolean operands")
		}
		l = logical{and: true, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot(self string) (expr, error) {
	if isKeyword(p.tok, "NOT") {
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot(self)
		if err != nil {
			return nil, err
		}
		if e.kind() != vBool {
			return nil, p.errf(opTok, "NOT requires a boolean operand")
		}
		return notExpr{e: e}, nil
	}
	return p.parseComparison(self)
}

func (p *parser) parseComparison(self string) (expr, error) {
	l, err := p.parseAdd(self)
	if err != nil {
		return nil, err
	}
	if isKeyword(p.tok, "IN") {
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		in := inList{e: l}
		for p.tok.kind != tokRParen {
			switch p.tok.kind {
			case tokString:
				in.syms = append(in.syms, p.reg.TypeID(p.tok.text))
			case tokNumber:
				n, err := strconv.ParseFloat(p.tok.text, 64)
				if err != nil {
					return nil, p.errf(p.tok, "bad number %q", p.tok.text)
				}
				in.nums = append(in.nums, n)
			default:
				return nil, p.errf(p.tok, "IN list accepts strings and numbers, got %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if l.kind() == vSym && len(in.nums) > 0 || l.kind() == vNum && len(in.syms) > 0 {
			return nil, p.errf(opTok, "IN list element type does not match the tested expression")
		}
		if l.kind() == vBool {
			return nil, p.errf(opTok, "IN requires a number or symbol expression")
		}
		return in, nil
	}

	switch p.tok.kind {
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		op := p.tok.kind
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd(self)
		if err != nil {
			return nil, err
		}
		if l.kind() != r.kind() {
			return nil, p.errf(opTok, "cannot compare %s with %s", l.kind(), r.kind())
		}
		if l.kind() == vSym && op != tokEQ && op != tokNE {
			return nil, p.errf(opTok, "symbols support only = and != comparisons")
		}
		if l.kind() == vBool {
			return nil, p.errf(opTok, "comparison operands must be numbers or symbols")
		}
		return cmp{op: op, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd(self string) (expr, error) {
	l, err := p.parseMul(self)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := p.tok.kind
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul(self)
		if err != nil {
			return nil, err
		}
		if l.kind() != vNum || r.kind() != vNum {
			return nil, p.errf(opTok, "arithmetic requires numeric operands")
		}
		l = arith{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMul(self string) (expr, error) {
	l, err := p.parseUnary(self)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := p.tok.kind
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary(self)
		if err != nil {
			return nil, err
		}
		if l.kind() != vNum || r.kind() != vNum {
			return nil, p.errf(opTok, "arithmetic requires numeric operands")
		}
		l = arith{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary(self string) (expr, error) {
	if p.tok.kind == tokMinus {
		opTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary(self)
		if err != nil {
			return nil, err
		}
		if e.kind() != vNum {
			return nil, p.errf(opTok, "unary minus requires a numeric operand")
		}
		return neg{e: e}, nil
	}
	return p.parsePrimary(self)
}

func (p *parser) parsePrimary(self string) (expr, error) {
	switch p.tok.kind {
	case tokNumber:
		n, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf(p.tok, "bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return numLit(n), nil
	case tokString:
		s := symLit(p.reg.TypeID(p.tok.text))
		if err := p.advance(); err != nil {
			return nil, err
		}
		return s, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(self)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		if isKeyword(p.tok, "NOT") || isKeyword(p.tok, "AND") || isKeyword(p.tok, "OR") {
			return nil, p.errf(p.tok, "unexpected keyword %q", p.tok.text)
		}
		nameTok := p.tok
		name := nameTok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, p.errf(nameTok, "pattern-variable reference %q needs a field (e.g. %s.close)", name, name)
		}
		fieldTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		flat, known := p.names[name]
		if !known {
			return nil, p.errf(nameTok, "reference to unknown pattern variable %q", name)
		}
		isSelf := name == self
		if !isSelf {
			selfFlat, ok := p.names[self]
			if ok && flat > selfFlat {
				return nil, p.errf(nameTok, "variable %q cannot reference the later step %q", self, name)
			}
		}
		field := fieldTok.text
		if strings.EqualFold(field, "symbol") || strings.EqualFold(field, "type") {
			return symRef{self: isSelf, flat: flat}, nil
		}
		return fieldRef{self: isSelf, flat: flat, field: p.reg.FieldIndex(field)}, nil
	}
	return nil, p.errf(p.tok, "unexpected %q in expression", p.tok.text)
}

// selfOnly reports whether e reads only the candidate event — no
// references to earlier bindings — so it can be evaluated with a nil
// binder. Such conjuncts are binding-free for the planner: they may be
// evaluated before binding-dependent conjuncts and hoisted into the
// intake prefilter.
func selfOnly(e expr) bool {
	switch n := e.(type) {
	case numLit, symLit:
		return true
	case fieldRef:
		return n.self
	case symRef:
		return n.self
	case arith:
		return selfOnly(n.l) && selfOnly(n.r)
	case neg:
		return selfOnly(n.e)
	case cmp:
		return selfOnly(n.l) && selfOnly(n.r)
	case inList:
		return selfOnly(n.e)
	case logical:
		return selfOnly(n.l) && selfOnly(n.r)
	case notExpr:
		return selfOnly(n.e)
	default:
		return false
	}
}

// fieldsOf collects every payload field index e reads — through the
// candidate event or any bound step — deduplicated, in first-read order.
// symRef reads the interned type id, not a payload field, so it
// contributes nothing. The list is exhaustive by construction (the AST
// has no other field access), which lets the distributed transport
// project shipped events down to exactly these fields.
func fieldsOf(e expr, out []int) []int {
	add := func(f int) []int {
		for _, have := range out {
			if have == f {
				return out
			}
		}
		return append(out, f)
	}
	switch n := e.(type) {
	case numLit, symLit, symRef:
		return out
	case fieldRef:
		return add(n.field)
	case arith:
		return fieldsOf(n.r, fieldsOf(n.l, out))
	case neg:
		return fieldsOf(n.e, out)
	case cmp:
		return fieldsOf(n.r, fieldsOf(n.l, out))
	case inList:
		return fieldsOf(n.e, out)
	case logical:
		return fieldsOf(n.r, fieldsOf(n.l, out))
	case notExpr:
		return fieldsOf(n.e, out)
	default:
		return out
	}
}

// flattenAnd splits a top-level AND chain into its operands in source
// order. OR and NOT subtrees are kept whole — only conjunction is safe
// to decompose and reorder.
func flattenAnd(e expr, out []expr) []expr {
	if lg, ok := e.(logical); ok && lg.and {
		out = flattenAnd(lg.l, out)
		return flattenAnd(lg.r, out)
	}
	return append(out, e)
}

// compileConjunct converts one boolean AST node into a
// pattern.Predicate. Every boolean node converts unresolved-binding
// operands to false internally, so eval's ok is always true here; the
// check is kept for defense.
func compileConjunct(e expr) pattern.Predicate {
	return func(ev *event.Event, b pattern.Binder) bool {
		ctx := evalCtx{ev: ev, b: b}
		v, ok := e.eval(&ctx)
		return ok && v.b
	}
}
