package parser

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/query"
)

func mustParse(t *testing.T, src string) (*pattern.Query, *event.Registry) {
	t.Helper()
	reg := event.NewRegistry()
	q, err := Parse(src, reg)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return q, reg
}

func TestParseQ1Shape(t *testing.T) {
	src := `
		QUERY Q1
		PATTERN (MLE RE1 RE2)
		DEFINE MLE AS (MLE.symbol IN ('BLUE00','BLUE01') AND MLE.close > MLE.open),
		       RE1 AS RE1.close > RE1.open,
		       RE2 AS RE2.close > RE2.open
		WITHIN 8000 EVENTS FROM MLE
		CONSUME (MLE RE1 RE2)
	`
	q, reg := mustParse(t, src)
	if q.Name != "Q1" {
		t.Errorf("name = %q, want Q1", q.Name)
	}
	if got := len(q.Pattern.Elements); got != 3 {
		t.Fatalf("elements = %d, want 3", got)
	}
	if q.Window.StartKind != pattern.StartOnMatch || q.Window.EndKind != pattern.EndCount || q.Window.Count != 8000 {
		t.Errorf("window spec = %+v, want on-match / count 8000", q.Window)
	}
	if q.Window.StartPred == nil {
		t.Fatal("window start predicate missing")
	}
	if !q.Pattern.HasConsumption() {
		t.Error("CONSUME clause not applied")
	}
	// The MLE predicate must hold only for rising blue chips.
	openIdx, _ := reg.LookupField("open")
	closeIdx, _ := reg.LookupField("close")
	blue, _ := reg.LookupType("BLUE00")
	other := reg.TypeID("XYZ")
	mk := func(ty event.Type, open, close float64) *event.Event {
		f := make([]float64, 2)
		f[openIdx] = open
		f[closeIdx] = close
		return &event.Event{Type: ty, Fields: f}
	}
	if !q.Window.StartPred(mk(blue, 10, 11)) {
		t.Error("rising blue chip should open a window")
	}
	if q.Window.StartPred(mk(blue, 11, 10)) {
		t.Error("falling blue chip must not open a window")
	}
	if q.Window.StartPred(mk(other, 10, 11)) {
		t.Error("non-leader must not open a window")
	}
}

func TestParseKleeneAndSlide(t *testing.T) {
	src := `
		PATTERN (A B+ C)
		DEFINE A AS A.close < 10,
		       B AS (B.close > 10 AND B.close < 20),
		       C AS C.close > 20
		WITHIN 500 EVENTS FROM EVERY 100 EVENTS
		CONSUME ALL
	`
	q, _ := mustParse(t, src)
	if q.Pattern.Elements[1].Step.Quant != pattern.OneOrMore {
		t.Error("B+ should be Kleene-plus")
	}
	if q.Window.StartKind != pattern.StartEvery || q.Window.Every != 100 {
		t.Errorf("window = %+v, want StartEvery 100", q.Window)
	}
	if q.Pattern.MinLength() != 3 {
		t.Errorf("min length = %d, want 3", q.Pattern.MinLength())
	}
}

func TestParseSetAndDuration(t *testing.T) {
	src := `
		PATTERN (A SET(X1 X2 X3))
		DEFINE A AS A.symbol = 'S0000',
		       X1 AS X1.symbol = 'S0001',
		       X2 AS X2.symbol = 'S0002',
		       X3 AS X3.symbol = 'S0003'
		WITHIN 1 min FROM A
		CONSUME (A X1 X2 X3)
	`
	q, _ := mustParse(t, src)
	if q.Window.EndKind != pattern.EndDuration || q.Window.Duration != time.Minute {
		t.Errorf("window = %+v, want 1-minute duration", q.Window)
	}
	if q.Pattern.Elements[1].Kind != pattern.ElemSet || len(q.Pattern.Elements[1].Set) != 3 {
		t.Fatalf("second element should be a 3-member set, got %+v", q.Pattern.Elements[1])
	}
	if q.Pattern.MinLength() != 4 {
		t.Errorf("min length = %d, want 4", q.Pattern.MinLength())
	}
}

func TestParseNegationAndPolicies(t *testing.T) {
	src := `
		PATTERN (A !C B)
		DEFINE A AS A.symbol = 'A', B AS B.symbol = 'B', C AS C.symbol = 'C'
		WITHIN 100 EVENTS FROM A
		CONSUME (B)
		ON MATCH RESTART LEADER
		RUNS 2
	`
	q, _ := mustParse(t, src)
	if !q.Pattern.Elements[1].Step.Negated {
		t.Error("!C should be negated")
	}
	if q.Pattern.Selection.OnCompletion != pattern.RestartAfterLeader {
		t.Errorf("OnCompletion = %v, want restart-after-leader", q.Pattern.Selection.OnCompletion)
	}
	if q.Pattern.Selection.MaxConcurrentRuns != 2 {
		t.Errorf("MaxConcurrentRuns = %d, want 2", q.Pattern.Selection.MaxConcurrentRuns)
	}
	if q.Pattern.Elements[2].Step.Consume != true || q.Pattern.Elements[0].Step.Consume {
		t.Error("CONSUME (B) should flag only B")
	}
}

func TestParseCrossVariablePredicate(t *testing.T) {
	// The paper's QE computes Factor = B.change / A.change; here we gate B
	// on a relation to the bound A.
	src := `
		PATTERN (A B)
		DEFINE A AS A.symbol = 'A',
		       B AS (B.symbol = 'B' AND B.x > A.x)
		WITHIN 100 EVENTS FROM A
	`
	q, reg := mustParse(t, src)
	eng, err := seqengine.New(q)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	xIdx, _ := reg.LookupField("x")
	mk := func(ty event.Type, x float64) event.Event {
		f := make([]float64, xIdx+1)
		f[xIdx] = x
		return event.Event{Type: ty, Fields: f}
	}
	out, _, err := eng.Run([]event.Event{
		mk(ta, 5), mk(tb, 3), mk(tb, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	// B with x=3 fails (3 < 5); B with x=7 matches.
	if len(out) != 1 || out[0].Key() != "query@0:0,2" {
		t.Fatalf("got %v, want [query@0:0,2]", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty pattern", `PATTERN () WITHIN 10 EVENTS`, "empty PATTERN"},
		{"unknown define", `PATTERN (A) DEFINE B AS B.x > 1 WITHIN 10 EVENTS FROM A`, "unknown pattern variable"},
		{"dup variable", `PATTERN (A A) WITHIN 10 EVENTS FROM A`, "duplicate pattern variable"},
		{"later reference", `PATTERN (A B) DEFINE A AS A.x > B.x WITHIN 10 EVENTS FROM A`, "later step"},
		{"bad consume", `PATTERN (A B) WITHIN 10 EVENTS FROM A CONSUME (Z)`, "unknown pattern variable"},
		{"type mismatch", `PATTERN (A) DEFINE A AS A.symbol > 3 WITHIN 10 EVENTS FROM A`, "cannot compare"},
		{"sym order", `PATTERN (A) DEFINE A AS A.symbol < 'X' WITHIN 10 EVENTS FROM A`, "only = and !="},
		{"bool arith", `PATTERN (A) DEFINE A AS (A.x > 1) + 2 WITHIN 10 EVENTS FROM A`, "arithmetic"},
		{"trailing", `PATTERN (A) WITHIN 10 EVENTS FROM A garbage`, "trailing"},
		{"missing within", `PATTERN (A)`, "expected WITHIN"},
		{"unterminated string", `PATTERN (A) DEFINE A AS A.symbol = 'x`, "unterminated"},
		{"leading negation", `PATTERN (!A B) WITHIN 10 EVENTS FROM B`, "negated"},
	}
	reg := event.NewRegistry()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src, reg)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.wantSub)) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseErrorPositions checks that parse errors are structured
// *query.Error values carrying line AND column plus a caret excerpt of
// the offending source line.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantCol  int
		wantStub string // substring of the issue message
		caretAt  string // the excerpt's caret must sit under this text
	}{
		{
			name:     "unknown consume variable",
			src:      "PATTERN (A B)\nWITHIN 10 EVENTS FROM A\nCONSUME (Z)",
			wantLine: 3, wantCol: 10,
			wantStub: "unknown pattern variable",
			caretAt:  "Z",
		},
		{
			name:     "type mismatch in define",
			src:      "PATTERN (A)\nDEFINE A AS A.symbol > 3\nWITHIN 10 EVENTS FROM A",
			wantLine: 2, wantCol: 22,
			wantStub: "cannot compare",
			caretAt:  ">",
		},
		{
			name:     "duplicate variable",
			src:      "PATTERN (Alpha,\n         Alpha)\nWITHIN 10 EVENTS",
			wantLine: 2, wantCol: 10,
			wantStub: "duplicate pattern variable",
			caretAt:  "Alpha",
		},
		{
			name:     "unterminated string",
			src:      "PATTERN (A)\nDEFINE A AS A.symbol = 'x",
			wantLine: 2, wantCol: 24,
			wantStub: "unterminated string",
			caretAt:  "'x",
		},
		{
			name:     "trailing input",
			src:      "PATTERN (A) WITHIN 10 EVENTS FROM A garbage",
			wantLine: 1, wantCol: 37,
			wantStub: "trailing",
			caretAt:  "garbage",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src, event.NewRegistry())
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tc.src)
			}
			var qe *query.Error
			if !errors.As(err, &qe) {
				t.Fatalf("error %T is not *query.Error: %v", err, err)
			}
			if len(qe.Issues) != 1 {
				t.Fatalf("want 1 issue, got %d: %v", len(qe.Issues), err)
			}
			is := qe.Issues[0]
			if is.Line != tc.wantLine || is.Col != tc.wantCol {
				t.Errorf("position = %d:%d, want %d:%d (err: %v)", is.Line, is.Col, tc.wantLine, tc.wantCol, err)
			}
			if !strings.Contains(is.Msg, tc.wantStub) {
				t.Errorf("message %q does not contain %q", is.Msg, tc.wantStub)
			}
			lines := strings.Split(is.Excerpt, "\n")
			if len(lines) != 2 {
				t.Fatalf("excerpt %q is not line+caret", is.Excerpt)
			}
			caret := strings.IndexByte(lines[1], '^')
			if caret < 0 || caret+len(tc.caretAt) > len(lines[0]) ||
				!strings.HasPrefix(lines[0][caret:], tc.caretAt) {
				t.Errorf("caret not under %q:\n%s", tc.caretAt, is.Excerpt)
			}
		})
	}
}

// TestParsedQueryRuns runs a parsed query end to end through the
// sequential engine.
func TestParsedQueryRuns(t *testing.T) {
	src := `
		QUERY rising
		PATTERN (MLE RE1 RE2)
		DEFINE MLE AS (MLE.symbol = 'LEAD' AND MLE.close > MLE.open),
		       RE1 AS RE1.close > RE1.open,
		       RE2 AS RE2.close > RE2.open
		WITHIN 10 EVENTS FROM MLE
		CONSUME ALL
	`
	q, reg := mustParse(t, src)
	eng, err := seqengine.New(q)
	if err != nil {
		t.Fatal(err)
	}
	lead, _ := reg.LookupType("LEAD")
	other := reg.TypeID("OTHER")
	openIdx, _ := reg.LookupField("open")
	closeIdx, _ := reg.LookupField("close")
	nf := max(openIdx, closeIdx) + 1
	mk := func(ty event.Type, open, close float64) event.Event {
		f := make([]float64, nf)
		f[openIdx] = open
		f[closeIdx] = close
		return event.Event{Type: ty, Fields: f}
	}
	out, stats, err := eng.Run([]event.Event{
		mk(lead, 10, 11),  // MLE rising: opens window, starts run
		mk(other, 5, 4),   // falling: ignored
		mk(other, 7, 8),   // rising: RE1
		mk(other, 3, 3.5), // rising: RE2 → match
		mk(other, 1, 2),   // rising, but detection stopped
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key() != "rising@0:0,2,3" {
		t.Fatalf("got %v, want [rising@0:0,2,3]", out)
	}
	if stats.EventsConsumed != 3 {
		t.Errorf("consumed %d events, want 3", stats.EventsConsumed)
	}
}

func TestParsePartitionBy(t *testing.T) {
	t.Run("by type with shards", func(t *testing.T) {
		q, _ := mustParse(t, `
			PATTERN (A B)
			WITHIN 100 EVENTS FROM A
			CONSUME ALL
			PARTITION BY TYPE SHARDS 16
		`)
		if q.Partition == nil {
			t.Fatal("PARTITION BY clause not applied")
		}
		if !q.Partition.ByType || q.Partition.Shards != 16 {
			t.Fatalf("partition spec = %+v, want by-type, 16 shards", q.Partition)
		}
	})
	t.Run("by field", func(t *testing.T) {
		q, reg := mustParse(t, `
			PATTERN (A B)
			WITHIN 100 EVENTS FROM A
			PARTITION BY account
		`)
		if q.Partition == nil || q.Partition.ByType {
			t.Fatalf("partition spec = %+v, want by-field", q.Partition)
		}
		idx, ok := reg.LookupField("account")
		if !ok || q.Partition.Field != idx {
			t.Fatalf("field %q not resolved: spec=%+v idx=%d", "account", q.Partition, idx)
		}
		if q.Partition.FieldName != "account" || q.Partition.Shards != 0 {
			t.Fatalf("partition spec = %+v", q.Partition)
		}
	})
	t.Run("absent", func(t *testing.T) {
		q, _ := mustParse(t, `PATTERN (A B) WITHIN 10 EVENTS FROM A`)
		if q.Partition != nil {
			t.Fatalf("unexpected partition spec %+v", q.Partition)
		}
	})
	t.Run("after selection clauses", func(t *testing.T) {
		q, _ := mustParse(t, `
			PATTERN (A B)
			WITHIN 10 EVENTS FROM A
			ON MATCH RESTART RUNS 2
			PARTITION BY TYPE
		`)
		if q.Partition == nil || !q.Partition.ByType {
			t.Fatalf("partition spec = %+v", q.Partition)
		}
	})
	t.Run("errors", func(t *testing.T) {
		for _, src := range []string{
			`PATTERN (A B) WITHIN 10 EVENTS FROM A PARTITION TYPE`,
			`PATTERN (A B) WITHIN 10 EVENTS FROM A PARTITION BY`,
			`PATTERN (A B) WITHIN 10 EVENTS FROM A PARTITION BY TYPE SHARDS 0`,
			`PATTERN (A B) WITHIN 10 EVENTS FROM A PARTITION BY TYPE SHARDS x`,
		} {
			if _, err := Parse(src, event.NewRegistry()); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		}
	})
}
