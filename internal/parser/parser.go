package parser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/query"
)

// Parse compiles a textual query (see the query package docs for the
// grammar) into a pattern.Query, interning event types and field names in
// reg. Every clause is desugared into query.Builder calls, so parsed and
// programmatically built queries share one compilation and validation
// path. Errors are *query.Error values with line:column positions and a
// caret excerpt.
func Parse(src string, reg *event.Registry) (*pattern.Query, error) {
	p := &parser{lex: newLexer(src), reg: reg}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseQuery()
}

// rawElem is a pattern element before predicate attachment.
type rawElem struct {
	name    string
	kleene  bool
	negated bool
	set     []string // non-nil for SET elements
}

// defEntry is a DEFINE body together with the defining token, kept for
// error positions.
type defEntry struct {
	e   expr
	tok token
}

type parser struct {
	lex *lexer
	reg *event.Registry
	tok token

	elems []rawElem
	names map[string]int // variable name → flat step index
	defs  map[string]defEntry
}

// errf reports a parse error positioned at tok.
func (p *parser) errf(tok token, format string, args ...any) error {
	return errAt(p.lex.src, tok.line, tok.col, format, args...)
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf(p.tok, "expected %s, got %q", kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) acceptKeyword(kw string) (bool, error) {
	if isKeyword(p.tok, kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectKeyword(kw string) error {
	ok, err := p.acceptKeyword(kw)
	if err != nil {
		return err
	}
	if !ok {
		return p.errf(p.tok, "expected %s, got %q", strings.ToUpper(kw), p.tok.text)
	}
	return nil
}

// winClause is the parsed WITHIN ... FROM clause before lowering.
type winClause struct {
	isDur   bool
	count   int
	dur     time.Duration
	every   int    // > 0 for FROM EVERY n EVENTS
	fromVar string // set when every == 0
}

// selClause is the parsed ON MATCH / RUNS clauses before lowering.
type selClause struct {
	onMatch    query.Completion
	onMatchSet bool
	runs       int
	runsSet    bool
}

// partClause is the parsed PARTITION BY clause before lowering.
type partClause struct {
	byType bool
	field  string
	shards int
}

func (p *parser) parseQuery() (*pattern.Query, error) {
	name := "query"
	if ok, err := p.acceptKeyword("QUERY"); err != nil {
		return nil, err
	} else if ok {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		name = t.text
	}

	if err := p.parsePattern(); err != nil {
		return nil, err
	}
	if err := p.parseDefine(); err != nil {
		return nil, err
	}
	win, err := p.parseWithin()
	if err != nil {
		return nil, err
	}
	consume, consumeAll, err := p.parseConsume()
	if err != nil {
		return nil, err
	}
	sel, err := p.parseSelection()
	if err != nil {
		return nil, err
	}
	part, err := p.parsePartition()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf(p.tok, "unexpected trailing input %q", p.tok.text)
	}
	return p.lower(name, win, consume, consumeAll, sel, part)
}

// lower desugars the parsed clauses into builder calls and compiles the
// query. The builder re-validates everything the parser established, so
// DSL and programmatic construction cannot diverge.
func (p *parser) lower(name string, win *winClause, consume []string, consumeAll bool, sel selClause, part *partClause) (*pattern.Query, error) {
	b := query.New(p.reg).Name(name)
	elems := make([]query.Elem, 0, len(p.elems))
	for _, el := range p.elems {
		if el.set != nil {
			members := make([]*query.StepBuilder, 0, len(el.set))
			for _, m := range el.set {
				sb := query.Step(m)
				if err := p.attachPred(sb, m); err != nil {
					return nil, err
				}
				members = append(members, sb)
			}
			elems = append(elems, query.Set(members...))
			continue
		}
		var sb *query.StepBuilder
		switch {
		case el.negated:
			sb = query.Neg(el.name)
		case el.kleene:
			sb = query.Plus(el.name)
		default:
			sb = query.Step(el.name)
		}
		if err := p.attachPred(sb, el.name); err != nil {
			return nil, err
		}
		elems = append(elems, sb)
	}
	b.Pattern(elems...)

	if win.isDur {
		b.Within(query.Duration(win.dur))
	} else {
		b.Within(query.Events(win.count))
	}
	if win.every > 0 {
		b.FromEvery(win.every)
	} else {
		b.From(win.fromVar)
	}

	if consumeAll {
		b.ConsumeAll()
	} else if len(consume) > 0 {
		b.Consume(consume...)
	}
	if sel.onMatchSet {
		b.OnMatch(sel.onMatch)
	}
	if sel.runsSet {
		b.Runs(sel.runs)
	}
	if part != nil {
		if part.byType {
			b.PartitionByType()
		} else {
			b.PartitionBy(part.field)
		}
		if part.shards > 0 {
			b.Shards(part.shards)
		}
	}
	return b.Build()
}

// attachPred compiles varName's DEFINE body (when present) and attaches
// it to the step. Top-level AND operands become separate conjuncts —
// the planner reorders those by observed selectivity and hoists the
// self-only ones into the intake prefilter; unplanned execution still
// sees the single AND-folded predicate the builder maintains.
func (p *parser) attachPred(sb *query.StepBuilder, varName string) error {
	def, ok := p.defs[varName]
	if !ok {
		return nil
	}
	if def.e.kind() != vBool {
		return p.errf(def.tok, "DEFINE of %q must be a boolean expression, got %s", varName, def.e.kind())
	}
	for i, c := range flattenAnd(def.e, nil) {
		label := fmt.Sprintf("%s.define[%d]", varName, i)
		sb.WhereConjunctFields(compileConjunct(c), selfOnly(c), label, fieldsOf(c, nil))
	}
	return nil
}

// parsePartition parses the optional
// `PARTITION BY (TYPE | field) [SHARDS n]` clause. TYPE partitions on the
// event type (the stock symbol in the trading workloads); a bare
// identifier names a payload field, interned through the registry exactly
// like DEFINE field references (unknown names allocate a fresh index —
// events that never carry the field all read 0 and land on one shard).
func (p *parser) parsePartition() (*partClause, error) {
	ok, err := p.acceptKeyword("PARTITION")
	if err != nil || !ok {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	spec := &partClause{}
	if ok, err := p.acceptKeyword("TYPE"); err != nil {
		return nil, err
	} else if ok {
		spec.byType = true
	} else {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		spec.field = t.text
	}
	if ok, err := p.acceptKeyword("SHARDS"); err != nil {
		return nil, err
	} else if ok {
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errf(t, "bad shard count %q", t.text)
		}
		spec.shards = n
	}
	return spec, nil
}

// parsePattern parses `PATTERN ( elem+ )`.
func (p *parser) parsePattern() error {
	if err := p.expectKeyword("PATTERN"); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	p.names = make(map[string]int)
	flat := 0
	addName := func(t token) error {
		if _, dup := p.names[t.text]; dup {
			return p.errf(t, "duplicate pattern variable %q", t.text)
		}
		p.names[t.text] = flat
		flat++
		return nil
	}
	for p.tok.kind != tokRParen {
		switch {
		case p.tok.kind == tokBang:
			if err := p.advance(); err != nil {
				return err
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if err := addName(t); err != nil {
				return err
			}
			p.elems = append(p.elems, rawElem{name: t.text, negated: true})
		case isKeyword(p.tok, "SET"):
			setTok := p.tok
			if err := p.advance(); err != nil {
				return err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return err
			}
			var members []string
			for p.tok.kind != tokRParen {
				t, err := p.expect(tokIdent)
				if err != nil {
					return err
				}
				if err := addName(t); err != nil {
					return err
				}
				members = append(members, t.text)
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return err
					}
				}
			}
			if err := p.advance(); err != nil { // consume ')'
				return err
			}
			if len(members) == 0 {
				return p.errf(setTok, "empty SET element")
			}
			p.elems = append(p.elems, rawElem{set: members})
		case p.tok.kind == tokIdent:
			t := p.tok
			if err := p.advance(); err != nil {
				return err
			}
			el := rawElem{name: t.text}
			if p.tok.kind == tokPlus {
				el.kleene = true
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := addName(t); err != nil {
				return err
			}
			p.elems = append(p.elems, el)
		default:
			return p.errf(p.tok, "expected pattern variable, got %q", p.tok.text)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return err
	}
	if len(p.elems) == 0 {
		return p.errf(p.tok, "empty PATTERN")
	}
	return nil
}

// parseDefine parses the optional `DEFINE v AS expr (, v AS expr)*`.
func (p *parser) parseDefine() error {
	p.defs = make(map[string]defEntry)
	ok, err := p.acceptKeyword("DEFINE")
	if err != nil || !ok {
		return err
	}
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		varName := t.text
		if _, known := p.names[varName]; !known {
			return p.errf(t, "DEFINE references unknown pattern variable %q", varName)
		}
		if err := p.expectKeyword("AS"); err != nil {
			return err
		}
		e, err := p.parseExpr(varName)
		if err != nil {
			return err
		}
		if _, dup := p.defs[varName]; dup {
			return p.errf(t, "duplicate DEFINE for %q", varName)
		}
		p.defs[varName] = defEntry{e: e, tok: t}
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// parseWithin parses `WITHIN (<n> EVENTS | <n> <unit>) [FROM ...]`.
func (p *parser) parseWithin() (*winClause, error) {
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	win := &winClause{}
	if ok, err := p.acceptKeyword("EVENTS"); err != nil {
		return nil, err
	} else if ok {
		n, err := strconv.Atoi(num.text)
		if err != nil || n <= 0 {
			return nil, p.errf(num, "bad window size %q", num.text)
		}
		win.count = n
	} else {
		d, err := p.parseDuration(num, p.tok)
		if err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil { // consume the unit
			return nil, err
		}
		win.isDur = true
		win.dur = d
	}

	// FROM clause: default is a window from the first pattern variable.
	if ok, err := p.acceptKeyword("FROM"); err != nil {
		return nil, err
	} else if ok {
		if ok, err := p.acceptKeyword("EVERY"); err != nil {
			return nil, err
		} else if ok {
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("EVENTS"); err != nil {
				return nil, err
			}
			s, err := strconv.Atoi(num.text)
			if err != nil || s <= 0 {
				return nil, p.errf(num, "bad window slide %q", num.text)
			}
			win.every = s
			return win, nil
		}
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, known := p.names[t.text]; !known {
			return nil, p.errf(t, "FROM references unknown pattern variable %q", t.text)
		}
		win.fromVar = t.text
		return win, nil
	}
	win.fromVar = p.firstPositiveVar()
	if win.fromVar == "" {
		return nil, p.errf(p.tok, "window FROM clause required")
	}
	return win, nil
}

func (p *parser) firstPositiveVar() string {
	for _, el := range p.elems {
		if el.set == nil && !el.negated {
			return el.name
		}
	}
	return ""
}

func (p *parser) parseDuration(num, unit token) (time.Duration, error) {
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil || v <= 0 {
		return 0, p.errf(num, "bad duration value %q", num.text)
	}
	if unit.kind != tokIdent {
		return 0, p.errf(unit, "expected duration unit, got %q", unit.text)
	}
	var base time.Duration
	switch strings.ToLower(unit.text) {
	case "ms":
		base = time.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		base = time.Second
	case "min", "mins", "minute", "minutes":
		base = time.Minute
	case "h", "hour", "hours":
		base = time.Hour
	default:
		return 0, p.errf(unit, "unknown duration unit %q", unit.text)
	}
	return time.Duration(v * float64(base)), nil
}

// parseConsume parses the optional CONSUME clause.
func (p *parser) parseConsume() (names []string, all bool, err error) {
	ok, err := p.acceptKeyword("CONSUME")
	if err != nil || !ok {
		return nil, false, err
	}
	if ok, err := p.acceptKeyword("ALL"); err != nil {
		return nil, false, err
	} else if ok {
		return nil, true, nil
	}
	if ok, err := p.acceptKeyword("NONE"); err != nil {
		return nil, false, err
	} else if ok {
		return nil, false, nil
	}
	lparen, err := p.expect(tokLParen)
	if err != nil {
		return nil, false, err
	}
	for p.tok.kind != tokRParen {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, false, err
		}
		if _, known := p.names[t.text]; !known {
			return nil, false, p.errf(t, "CONSUME references unknown pattern variable %q", t.text)
		}
		names = append(names, t.text)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, false, err
			}
		}
	}
	if err := p.advance(); err != nil {
		return nil, false, err
	}
	if len(names) == 0 {
		return nil, false, p.errf(lparen, "empty CONSUME list")
	}
	return names, false, nil
}

// parseSelection parses the optional `ON MATCH ...` and `RUNS n` clauses.
func (p *parser) parseSelection() (selClause, error) {
	var sel selClause
	if ok, err := p.acceptKeyword("ON"); err != nil {
		return sel, err
	} else if ok {
		if err := p.expectKeyword("MATCH"); err != nil {
			return sel, err
		}
		sel.onMatchSet = true
		switch {
		case isKeyword(p.tok, "STOP"):
			sel.onMatch = query.Stop
			if err := p.advance(); err != nil {
				return sel, err
			}
		case isKeyword(p.tok, "RESTART"):
			if err := p.advance(); err != nil {
				return sel, err
			}
			sel.onMatch = query.Restart
			if ok, err := p.acceptKeyword("LEADER"); err != nil {
				return sel, err
			} else if ok {
				sel.onMatch = query.RestartLeader
			}
		default:
			return sel, p.errf(p.tok, "expected STOP or RESTART after ON MATCH, got %q", p.tok.text)
		}
	}
	if ok, err := p.acceptKeyword("RUNS"); err != nil {
		return sel, err
	} else if ok {
		t, err := p.expect(tokNumber)
		if err != nil {
			return sel, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return sel, p.errf(t, "bad RUNS count %q", t.text)
		}
		sel.runs = n
		sel.runsSet = true
	}
	return sel, nil
}
