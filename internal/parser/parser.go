package parser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// Parse compiles a textual query (see the package comment for the
// grammar) into a pattern.Query, interning event types and field names in
// reg.
func Parse(src string, reg *event.Registry) (*pattern.Query, error) {
	p := &parser{lex: newLexer(src), reg: reg}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("parser: %w", err)
	}
	return q, nil
}

// rawElem is a pattern element before predicate attachment.
type rawElem struct {
	name    string
	kleene  bool
	negated bool
	set     []string // non-nil for SET elements
	line    int
}

type parser struct {
	lex *lexer
	reg *event.Registry
	tok token

	elems []rawElem
	names map[string]int // variable name → flat step index
	defs  map[string]expr
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, errorf(p.tok.line, "expected %s, got %q", kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) acceptKeyword(kw string) (bool, error) {
	if isKeyword(p.tok, kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectKeyword(kw string) error {
	ok, err := p.acceptKeyword(kw)
	if err != nil {
		return err
	}
	if !ok {
		return errorf(p.tok.line, "expected %s, got %q", strings.ToUpper(kw), p.tok.text)
	}
	return nil
}

func (p *parser) parseQuery() (*pattern.Query, error) {
	name := "query"
	if ok, err := p.acceptKeyword("QUERY"); err != nil {
		return nil, err
	} else if ok {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		name = t.text
	}

	if err := p.parsePattern(); err != nil {
		return nil, err
	}
	if err := p.parseDefine(); err != nil {
		return nil, err
	}
	win, err := p.parseWithin()
	if err != nil {
		return nil, err
	}
	consume, consumeAll, err := p.parseConsume()
	if err != nil {
		return nil, err
	}
	sel, err := p.parseSelection()
	if err != nil {
		return nil, err
	}
	part, err := p.parsePartition()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errorf(p.tok.line, "unexpected trailing input %q", p.tok.text)
	}

	pat, err := p.buildPattern(name, sel)
	if err != nil {
		return nil, err
	}
	if consumeAll {
		pat.ConsumeAll()
	} else if len(consume) > 0 {
		if err := pat.ConsumeSteps(consume...); err != nil {
			return nil, err
		}
	}
	q := &pattern.Query{Name: name, Pattern: *pat, Window: *win, Partition: part}
	return q, nil
}

// parsePartition parses the optional
// `PARTITION BY (TYPE | field) [SHARDS n]` clause. TYPE partitions on the
// event type (the stock symbol in the trading workloads); a bare
// identifier names a payload field, interned through the registry exactly
// like DEFINE field references (unknown names allocate a fresh index —
// events that never carry the field all read 0 and land on one shard).
func (p *parser) parsePartition() (*pattern.PartitionSpec, error) {
	ok, err := p.acceptKeyword("PARTITION")
	if err != nil || !ok {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	spec := &pattern.PartitionSpec{Field: -1}
	if ok, err := p.acceptKeyword("TYPE"); err != nil {
		return nil, err
	} else if ok {
		spec.ByType = true
	} else {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		spec.FieldName = t.text
		spec.Field = p.reg.FieldIndex(t.text)
	}
	if ok, err := p.acceptKeyword("SHARDS"); err != nil {
		return nil, err
	} else if ok {
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, errorf(t.line, "bad shard count %q", t.text)
		}
		spec.Shards = n
	}
	return spec, nil
}

// parsePattern parses `PATTERN ( elem+ )`.
func (p *parser) parsePattern() error {
	if err := p.expectKeyword("PATTERN"); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	p.names = make(map[string]int)
	flat := 0
	addName := func(n string, line int) error {
		if _, dup := p.names[n]; dup {
			return errorf(line, "duplicate pattern variable %q", n)
		}
		p.names[n] = flat
		flat++
		return nil
	}
	for p.tok.kind != tokRParen {
		switch {
		case p.tok.kind == tokBang:
			if err := p.advance(); err != nil {
				return err
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if err := addName(t.text, t.line); err != nil {
				return err
			}
			p.elems = append(p.elems, rawElem{name: t.text, negated: true, line: t.line})
		case isKeyword(p.tok, "SET"):
			line := p.tok.line
			if err := p.advance(); err != nil {
				return err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return err
			}
			var members []string
			for p.tok.kind != tokRParen {
				t, err := p.expect(tokIdent)
				if err != nil {
					return err
				}
				if err := addName(t.text, t.line); err != nil {
					return err
				}
				members = append(members, t.text)
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return err
					}
				}
			}
			if err := p.advance(); err != nil { // consume ')'
				return err
			}
			if len(members) == 0 {
				return errorf(line, "empty SET element")
			}
			p.elems = append(p.elems, rawElem{set: members, line: line})
		case p.tok.kind == tokIdent:
			t := p.tok
			if err := p.advance(); err != nil {
				return err
			}
			el := rawElem{name: t.text, line: t.line}
			if p.tok.kind == tokPlus {
				el.kleene = true
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := addName(t.text, t.line); err != nil {
				return err
			}
			p.elems = append(p.elems, el)
		default:
			return errorf(p.tok.line, "expected pattern variable, got %q", p.tok.text)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return err
	}
	if len(p.elems) == 0 {
		return errorf(p.tok.line, "empty PATTERN")
	}
	return nil
}

// parseDefine parses the optional `DEFINE v AS expr (, v AS expr)*`.
func (p *parser) parseDefine() error {
	p.defs = make(map[string]expr)
	ok, err := p.acceptKeyword("DEFINE")
	if err != nil || !ok {
		return err
	}
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		varName := t.text
		if _, known := p.names[varName]; !known {
			return errorf(t.line, "DEFINE references unknown pattern variable %q", varName)
		}
		if err := p.expectKeyword("AS"); err != nil {
			return err
		}
		e, err := p.parseExpr(varName)
		if err != nil {
			return err
		}
		if _, dup := p.defs[varName]; dup {
			return errorf(t.line, "duplicate DEFINE for %q", varName)
		}
		p.defs[varName] = e
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// parseWithin parses `WITHIN (<n> EVENTS | <n> <unit>) [FROM ...]`.
func (p *parser) parseWithin() (*pattern.WindowSpec, error) {
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	spec := &pattern.WindowSpec{}
	if ok, err := p.acceptKeyword("EVENTS"); err != nil {
		return nil, err
	} else if ok {
		n, err := strconv.Atoi(num.text)
		if err != nil || n <= 0 {
			return nil, errorf(num.line, "bad window size %q", num.text)
		}
		spec.EndKind = pattern.EndCount
		spec.Count = n
	} else {
		d, err := parseDuration(num, p.tok)
		if err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil { // consume the unit
			return nil, err
		}
		spec.EndKind = pattern.EndDuration
		spec.Duration = d
	}

	// FROM clause: default is a window from the first pattern variable.
	fromVar := ""
	if ok, err := p.acceptKeyword("FROM"); err != nil {
		return nil, err
	} else if ok {
		if ok, err := p.acceptKeyword("EVERY"); err != nil {
			return nil, err
		} else if ok {
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("EVENTS"); err != nil {
				return nil, err
			}
			s, err := strconv.Atoi(num.text)
			if err != nil || s <= 0 {
				return nil, errorf(num.line, "bad window slide %q", num.text)
			}
			spec.StartKind = pattern.StartEvery
			spec.Every = s
			return spec, nil
		}
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		fromVar = t.text
	} else {
		fromVar = p.firstPositiveVar()
	}
	if fromVar == "" {
		return nil, errorf(p.tok.line, "window FROM clause required")
	}
	if _, known := p.names[fromVar]; !known {
		return nil, errorf(p.tok.line, "FROM references unknown pattern variable %q", fromVar)
	}
	spec.StartKind = pattern.StartOnMatch
	// The start filter is the variable's DEFINE predicate evaluated
	// without bindings (windows open before detection).
	if def, okDef := p.defs[fromVar]; okDef {
		compiled, err := p.compilePredicate(fromVar, def)
		if err != nil {
			return nil, err
		}
		spec.StartPred = func(ev *event.Event) bool { return compiled(ev, nil) }
	}
	return spec, nil
}

func (p *parser) firstPositiveVar() string {
	for _, el := range p.elems {
		if el.set == nil && !el.negated {
			return el.name
		}
	}
	return ""
}

func parseDuration(num, unit token) (time.Duration, error) {
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil || v <= 0 {
		return 0, errorf(num.line, "bad duration value %q", num.text)
	}
	if unit.kind != tokIdent {
		return 0, errorf(unit.line, "expected duration unit, got %q", unit.text)
	}
	var base time.Duration
	switch strings.ToLower(unit.text) {
	case "ms":
		base = time.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		base = time.Second
	case "min", "mins", "minute", "minutes":
		base = time.Minute
	case "h", "hour", "hours":
		base = time.Hour
	default:
		return 0, errorf(unit.line, "unknown duration unit %q", unit.text)
	}
	return time.Duration(v * float64(base)), nil
}

// parseConsume parses the optional CONSUME clause.
func (p *parser) parseConsume() (names []string, all bool, err error) {
	ok, err := p.acceptKeyword("CONSUME")
	if err != nil || !ok {
		return nil, false, err
	}
	if ok, err := p.acceptKeyword("ALL"); err != nil {
		return nil, false, err
	} else if ok {
		return nil, true, nil
	}
	if ok, err := p.acceptKeyword("NONE"); err != nil {
		return nil, false, err
	} else if ok {
		return nil, false, nil
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, false, err
	}
	for p.tok.kind != tokRParen {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, false, err
		}
		if _, known := p.names[t.text]; !known {
			return nil, false, errorf(t.line, "CONSUME references unknown pattern variable %q", t.text)
		}
		names = append(names, t.text)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, false, err
			}
		}
	}
	if err := p.advance(); err != nil {
		return nil, false, err
	}
	if len(names) == 0 {
		return nil, false, errorf(p.tok.line, "empty CONSUME list")
	}
	return names, false, nil
}

// parseSelection parses the optional `ON MATCH ...` and `RUNS n` clauses.
func (p *parser) parseSelection() (pattern.SelectionPolicy, error) {
	sel := pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	if ok, err := p.acceptKeyword("ON"); err != nil {
		return sel, err
	} else if ok {
		if err := p.expectKeyword("MATCH"); err != nil {
			return sel, err
		}
		switch {
		case isKeyword(p.tok, "STOP"):
			sel.OnCompletion = pattern.StopAfterMatch
			if err := p.advance(); err != nil {
				return sel, err
			}
		case isKeyword(p.tok, "RESTART"):
			if err := p.advance(); err != nil {
				return sel, err
			}
			sel.OnCompletion = pattern.RestartFresh
			if ok, err := p.acceptKeyword("LEADER"); err != nil {
				return sel, err
			} else if ok {
				sel.OnCompletion = pattern.RestartAfterLeader
			}
		default:
			return sel, errorf(p.tok.line, "expected STOP or RESTART after ON MATCH, got %q", p.tok.text)
		}
	}
	if ok, err := p.acceptKeyword("RUNS"); err != nil {
		return sel, err
	} else if ok {
		t, err := p.expect(tokNumber)
		if err != nil {
			return sel, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return sel, errorf(t.line, "bad RUNS count %q", t.text)
		}
		sel.MaxConcurrentRuns = n
	}
	return sel, nil
}

// buildPattern assembles the pattern.Pattern from parsed pieces.
func (p *parser) buildPattern(name string, sel pattern.SelectionPolicy) (*pattern.Pattern, error) {
	pat := &pattern.Pattern{Name: name, Selection: sel}
	mkStep := func(varName string, quant pattern.Quantifier, negated bool) (pattern.Step, error) {
		st := pattern.Step{Name: varName, Quant: quant, Negated: negated}
		if def, ok := p.defs[varName]; ok {
			pred, err := p.compilePredicate(varName, def)
			if err != nil {
				return st, err
			}
			st.Pred = pred
		}
		return st, nil
	}
	for _, el := range p.elems {
		if el.set != nil {
			set := make([]pattern.Step, 0, len(el.set))
			for _, m := range el.set {
				st, err := mkStep(m, pattern.One, false)
				if err != nil {
					return nil, err
				}
				set = append(set, st)
			}
			pat.Elements = append(pat.Elements, pattern.Element{Kind: pattern.ElemSet, Set: set})
			continue
		}
		quant := pattern.One
		if el.kleene {
			quant = pattern.OneOrMore
		}
		st, err := mkStep(el.name, quant, el.negated)
		if err != nil {
			return nil, err
		}
		pat.Elements = append(pat.Elements, pattern.Element{Kind: pattern.ElemStep, Step: st})
	}
	return pat, nil
}
