package queries

import (
	"testing"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

func TestQEVariants(t *testing.T) {
	reg := event.NewRegistry()
	qNone, err := QE(reg, QEConsumeNone)
	if err != nil {
		t.Fatal(err)
	}
	if qNone.Pattern.HasConsumption() {
		t.Fatal("QE none must not consume")
	}
	qSel, err := QE(reg, QEConsumeSelectedB)
	if err != nil {
		t.Fatal(err)
	}
	if !qSel.Pattern.HasConsumption() {
		t.Fatal("QE selected-B must consume")
	}
	if qSel.Pattern.Elements[0].Step.Consume {
		t.Fatal("A must not be consumed under selected-B")
	}
	if _, err := QE(reg, QEConsumption(99)); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestQ1Shape(t *testing.T) {
	reg := event.NewRegistry()
	q, err := Q1(reg, Q1Config{Q: 3, WindowSize: 100, Leaders: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Pattern.Elements); got != 4 {
		t.Fatalf("elements = %d, want q+1 = 4", got)
	}
	if q.Pattern.MinLength() != 4 {
		t.Fatalf("min length = %d", q.Pattern.MinLength())
	}
	if q.Window.StartKind != pattern.StartOnMatch || q.Window.Count != 100 {
		t.Fatalf("window = %+v", q.Window)
	}
	openIdx, closeIdx := dataset.Fields(reg)
	lead, _ := reg.LookupType(dataset.LeaderSymbol(0))
	mk := func(ty event.Type, open, close float64) *event.Event {
		f := make([]float64, max(openIdx, closeIdx)+1)
		f[openIdx], f[closeIdx] = open, close
		return &event.Event{Type: ty, Fields: f}
	}
	if !q.Window.StartMatches(mk(lead, 1, 2)) {
		t.Fatal("rising leader must open a window")
	}
	if q.Window.StartMatches(mk(lead, 2, 1)) {
		t.Fatal("falling leader must not open a rising window")
	}
	// Falling variant flips the predicate.
	qf, err := Q1(reg, Q1Config{Q: 3, WindowSize: 100, Leaders: 2, Falling: true})
	if err != nil {
		t.Fatal(err)
	}
	if !qf.Window.StartMatches(mk(lead, 2, 1)) {
		t.Fatal("falling leader must open a falling window")
	}
	if _, err := Q1(reg, Q1Config{}); err == nil {
		t.Fatal("Q1 without q must error")
	}
}

func TestQ2Shape(t *testing.T) {
	reg := event.NewRegistry()
	q, err := Q2(reg, Q2Config{WindowSize: 400, Slide: 100, LowerLimit: 80, UpperLimit: 120})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Pattern.Elements); got != 13 {
		t.Fatalf("elements = %d, want 13 (A..M)", got)
	}
	kleene := 0
	for _, el := range q.Pattern.Elements {
		if el.Step.Quant == pattern.OneOrMore {
			kleene++
		}
	}
	if kleene != 6 {
		t.Fatalf("Kleene steps = %d, want 6 (B D F H J L)", kleene)
	}
	if q.Pattern.MinLength() != 13 {
		t.Fatalf("min length = %d, want 13", q.Pattern.MinLength())
	}
	if _, err := Q2(reg, Q2Config{LowerLimit: 5, UpperLimit: 5}); err == nil {
		t.Fatal("equal limits must error")
	}
}

func TestQ3Shape(t *testing.T) {
	reg := event.NewRegistry()
	q, err := Q3(reg, Q3Config{SetSize: 5, WindowSize: 100, Slide: 10})
	if err != nil {
		t.Fatal(err)
	}
	if q.Pattern.Elements[1].Kind != pattern.ElemSet || len(q.Pattern.Elements[1].Set) != 5 {
		t.Fatalf("set shape = %+v", q.Pattern.Elements[1])
	}
	if q.Pattern.MinLength() != 6 {
		t.Fatalf("min length = %d, want 6", q.Pattern.MinLength())
	}
	if _, err := Q3(reg, Q3Config{SetSize: 0}); err == nil {
		t.Fatal("zero set size must error")
	}
	if _, err := Q3(reg, Q3Config{SetSize: 65}); err == nil {
		t.Fatal("set size beyond 64 must error")
	}
}
