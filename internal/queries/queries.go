// Package queries provides programmatic builders for the paper's queries:
// the introductory example Q_E (§2.1, Figure 1) and the evaluation queries
// Q1–Q3 (§4.1, Figure 9). Each builder returns a pattern.Query ready for
// any of the engines (SPECTRE runtime, sequential reference, T-REX-style
// baseline).
package queries

import (
	"fmt"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// QEConsumption selects the consumption policy variant of Q_E.
type QEConsumption int

const (
	// QEConsumeNone reproduces Figure 1(a): no consumption, 5 complex
	// events in the example stream.
	QEConsumeNone QEConsumption = iota + 1
	// QEConsumeSelectedB reproduces Figure 1(b): selected events of type B
	// are consumed, 3 complex events in the example stream.
	QEConsumeSelectedB
)

// QE builds the introductory example query (Tesla notation in §2.1):
//
//	define Influence(Factor)
//	from   B() and A() within 1min from B
//
// A window of scope 1 minute opens on every A event; the first A in a
// window correlates with each B (selection policy "first A, each B").
func QE(reg *event.Registry, cp QEConsumption) (*pattern.Query, error) {
	typeA := reg.TypeID("A")
	typeB := reg.TypeID("B")
	p := pattern.Seq("QE",
		pattern.Step{Name: "A", Types: []event.Type{typeA}},
		pattern.Step{Name: "B", Types: []event.Type{typeB}},
	)
	p.Selection = pattern.SelectionPolicy{
		MaxConcurrentRuns: 1,
		OnCompletion:      pattern.RestartAfterLeader,
	}
	switch cp {
	case QEConsumeNone:
		p.ConsumeNone()
	case QEConsumeSelectedB:
		if err := p.ConsumeSteps("B"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("queries: unknown QE consumption variant %d", cp)
	}
	q := &pattern.Query{
		Name:    "QE",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind:  pattern.StartOnMatch,
			StartTypes: []event.Type{typeA},
			EndKind:    pattern.EndDuration,
			Duration:   time.Minute,
		},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Q1Config parameterizes Q1 (Figure 9, left).
type Q1Config struct {
	// Q is the pattern size q: the number of rising (or falling) events
	// required after the leading event.
	Q int
	// WindowSize is ws in events (paper: 8000).
	WindowSize int
	// Leaders is the number of leading blue-chip symbols (paper: 16).
	Leaders int
	// Falling selects the falling variant; default is the rising one (the
	// paper's listing).
	Falling bool
}

// Q1 builds the blue-chip correlation query: a rising quote of a leading
// symbol (MLE) followed by the first q rising quotes of any symbol within
// ws events from the MLE; all constituents consumed. The pattern has a
// fixed length of q+1: every matching event moves detection to a higher
// completion stage.
func Q1(reg *event.Registry, cfg Q1Config) (*pattern.Query, error) {
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("queries: Q1 requires positive q, got %d", cfg.Q)
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 8000
	}
	if cfg.Leaders <= 0 {
		cfg.Leaders = 16
	}
	openIdx, closeIdx := dataset.Fields(reg)
	rising := func(ev *event.Event, _ pattern.Binder) bool {
		return ev.Field(closeIdx) > ev.Field(openIdx)
	}
	falling := func(ev *event.Event, _ pattern.Binder) bool {
		return ev.Field(closeIdx) < ev.Field(openIdx)
	}
	move := rising
	if cfg.Falling {
		move = falling
	}

	leaderTypes := make([]event.Type, cfg.Leaders)
	for i := 0; i < cfg.Leaders; i++ {
		leaderTypes[i] = reg.TypeID(dataset.LeaderSymbol(i))
	}

	steps := make([]pattern.Step, 0, cfg.Q+1)
	steps = append(steps, pattern.Step{Name: "MLE", Types: leaderTypes, Pred: move})
	for i := 1; i <= cfg.Q; i++ {
		steps = append(steps, pattern.Step{Name: fmt.Sprintf("RE%d", i), Pred: move})
	}
	p := pattern.Seq("Q1", steps...)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()

	q := &pattern.Query{
		Name:    "Q1",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind:  pattern.StartOnMatch,
			StartTypes: leaderTypes,
			StartPred:  func(ev *event.Event) bool { return move(ev, nil) },
			EndKind:    pattern.EndCount,
			Count:      cfg.WindowSize,
		},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Q2Config parameterizes Q2 (Figure 9, right; query 9 of Balkesen and
// Tatbul, extended by the paper with a window and a consumption policy).
type Q2Config struct {
	// WindowSize is ws in events (paper: 8000).
	WindowSize int
	// Slide is s in events (paper: 1000).
	Slide int
	// LowerLimit and UpperLimit are the price bands; they control the
	// average pattern size (paper §4.2.1).
	LowerLimit, UpperLimit float64
}

// Q2 builds the price-band oscillation query
// `PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M)`: the close price starts
// below the lower limit, wanders through the band one or more times, above
// the upper limit, and so forth — an M/W-shaped chart pattern. Matching
// events might not advance completion (the Kleene-plus absorbs band
// events), so the pattern has variable length. All constituents consumed.
func Q2(reg *event.Registry, cfg Q2Config) (*pattern.Query, error) {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 8000
	}
	if cfg.Slide <= 0 {
		cfg.Slide = 1000
	}
	if cfg.UpperLimit <= cfg.LowerLimit {
		return nil, fmt.Errorf("queries: Q2 needs LowerLimit < UpperLimit, got %g ≥ %g", cfg.LowerLimit, cfg.UpperLimit)
	}
	_, closeIdx := dataset.Fields(reg)
	lo, hi := cfg.LowerLimit, cfg.UpperLimit
	below := func(ev *event.Event, _ pattern.Binder) bool { return ev.Field(closeIdx) < lo }
	within := func(ev *event.Event, _ pattern.Binder) bool {
		c := ev.Field(closeIdx)
		return c > lo && c < hi
	}
	above := func(ev *event.Event, _ pattern.Binder) bool { return ev.Field(closeIdx) > hi }

	names := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M"}
	steps := make([]pattern.Step, 0, len(names))
	for i, n := range names {
		st := pattern.Step{Name: n}
		switch {
		case i%2 == 1: // B D F H J L — the band steps, Kleene-plus
			st.Pred = within
			st.Quant = pattern.OneOrMore
		case i%4 == 0: // A E I M — below the lower limit
			st.Pred = below
		default: // C G K — above the upper limit
			st.Pred = above
		}
		steps = append(steps, st)
	}
	p := pattern.Seq("Q2", steps...)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch}
	p.ConsumeAll()

	q := &pattern.Query{
		Name:    "Q2",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartEvery,
			Every:     cfg.Slide,
			EndKind:   pattern.EndCount,
			Count:     cfg.WindowSize,
		},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Q3Config parameterizes Q3 (Figure 9, middle).
type Q3Config struct {
	// SetSize is n, the number of specific symbols following A (order
	// irrelevant).
	SetSize int
	// WindowSize is ws in events (paper Fig. 11: 1000).
	WindowSize int
	// Slide is s in events (paper Fig. 11: 100).
	Slide int
	// LeaderSymbol overrides the leading symbol name (default the RAND
	// dataset's first symbol).
	LeaderSymbol string
}

// Q3 builds the basket query `PATTERN (A SET(X1 ... Xn))`: symbol A
// followed by a set of n specific symbols in any order, within ws events,
// windows sliding every s events. All constituents consumed.
func Q3(reg *event.Registry, cfg Q3Config) (*pattern.Query, error) {
	if cfg.SetSize <= 0 {
		return nil, fmt.Errorf("queries: Q3 requires positive set size, got %d", cfg.SetSize)
	}
	if cfg.SetSize > 64 {
		return nil, fmt.Errorf("queries: Q3 set size %d exceeds the 64-member limit", cfg.SetSize)
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 1000
	}
	if cfg.Slide <= 0 {
		cfg.Slide = 100
	}
	leader := cfg.LeaderSymbol
	if leader == "" {
		leader = dataset.Symbol(0)
	}
	typeA := reg.TypeID(leader)
	set := make([]pattern.Step, cfg.SetSize)
	for i := 0; i < cfg.SetSize; i++ {
		sym := dataset.Symbol(i + 1)
		set[i] = pattern.Step{Name: fmt.Sprintf("X%d", i+1), Types: []event.Type{reg.TypeID(sym)}}
	}
	p := &pattern.Pattern{
		Name: "Q3",
		Elements: []pattern.Element{
			{Kind: pattern.ElemStep, Step: pattern.Step{Name: "A", Types: []event.Type{typeA}}},
			{Kind: pattern.ElemSet, Set: set},
		},
		Selection: pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.StopAfterMatch},
	}
	p.ConsumeAll()

	q := &pattern.Query{
		Name:    "Q3",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartEvery,
			Every:     cfg.Slide,
			EndKind:   pattern.EndCount,
			Count:     cfg.WindowSize,
		},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
