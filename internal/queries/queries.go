// Package queries provides programmatic builders for the paper's queries:
// the introductory example Q_E (§2.1, Figure 1) and the evaluation queries
// Q1–Q3 (§4.1, Figure 9). Each builder returns a pattern.Query ready for
// any of the engines (SPECTRE runtime, sequential reference, T-REX-style
// baseline).
//
// All four are written on the public query.Builder — the same compilation
// path the textual DSL lowers through — and double as its reference
// usage: typed field accessors, type filters, Kleene steps, sets and
// per-variable consumption.
package queries

import (
	"fmt"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/query"
)

// QEConsumption selects the consumption policy variant of Q_E.
type QEConsumption int

const (
	// QEConsumeNone reproduces Figure 1(a): no consumption, 5 complex
	// events in the example stream.
	QEConsumeNone QEConsumption = iota + 1
	// QEConsumeSelectedB reproduces Figure 1(b): selected events of type B
	// are consumed, 3 complex events in the example stream.
	QEConsumeSelectedB
)

// QE builds the introductory example query (Tesla notation in §2.1):
//
//	define Influence(Factor)
//	from   B() and A() within 1min from B
//
// A window of scope 1 minute opens on every A event; the first A in a
// window correlates with each B (selection policy "first A, each B").
func QE(reg *event.Registry, cp QEConsumption) (*pattern.Query, error) {
	b := query.New(reg).Name("QE").
		Pattern(
			query.Step("A").Types("A"),
			query.Step("B").Types("B"),
		).
		Within(query.Duration(time.Minute)).From("A").
		OnMatch(query.RestartLeader)
	switch cp {
	case QEConsumeNone:
		b.ConsumeNone()
	case QEConsumeSelectedB:
		b.Consume("B")
	default:
		return nil, fmt.Errorf("queries: unknown QE consumption variant %d", cp)
	}
	return b.Build()
}

// Q1Config parameterizes Q1 (Figure 9, left).
type Q1Config struct {
	// Q is the pattern size q: the number of rising (or falling) events
	// required after the leading event.
	Q int
	// WindowSize is ws in events (paper: 8000).
	WindowSize int
	// Leaders is the number of leading blue-chip symbols (paper: 16).
	Leaders int
	// Falling selects the falling variant; default is the rising one (the
	// paper's listing).
	Falling bool
}

// Q1 builds the blue-chip correlation query: a rising quote of a leading
// symbol (MLE) followed by the first q rising quotes of any symbol within
// ws events from the MLE; all constituents consumed. The pattern has a
// fixed length of q+1: every matching event moves detection to a higher
// completion stage.
func Q1(reg *event.Registry, cfg Q1Config) (*pattern.Query, error) {
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("queries: Q1 requires positive q, got %d", cfg.Q)
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 8000
	}
	if cfg.Leaders <= 0 {
		cfg.Leaders = 16
	}
	b := query.New(reg).Name("Q1")
	open, close := b.Float(dataset.FieldOpen), b.Float(dataset.FieldClose)
	move := func(ev *query.Event, _ query.Binder) bool {
		return close.Of(ev) > open.Of(ev)
	}
	if cfg.Falling {
		move = func(ev *query.Event, _ query.Binder) bool {
			return close.Of(ev) < open.Of(ev)
		}
	}

	leaders := make([]string, cfg.Leaders)
	for i := range leaders {
		leaders[i] = dataset.LeaderSymbol(i)
	}

	b.Pattern(query.Step("MLE").Types(leaders...).Where(move))
	for i := 1; i <= cfg.Q; i++ {
		b.Pattern(query.Step(fmt.Sprintf("RE%d", i)).Where(move))
	}
	return b.
		Within(query.Events(cfg.WindowSize)).From("MLE").
		ConsumeAll().
		Build()
}

// Q2Config parameterizes Q2 (Figure 9, right; query 9 of Balkesen and
// Tatbul, extended by the paper with a window and a consumption policy).
type Q2Config struct {
	// WindowSize is ws in events (paper: 8000).
	WindowSize int
	// Slide is s in events (paper: 1000).
	Slide int
	// LowerLimit and UpperLimit are the price bands; they control the
	// average pattern size (paper §4.2.1).
	LowerLimit, UpperLimit float64
}

// Q2 builds the price-band oscillation query
// `PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M)`: the close price starts
// below the lower limit, wanders through the band one or more times, above
// the upper limit, and so forth — an M/W-shaped chart pattern. Matching
// events might not advance completion (the Kleene-plus absorbs band
// events), so the pattern has variable length. All constituents consumed.
func Q2(reg *event.Registry, cfg Q2Config) (*pattern.Query, error) {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 8000
	}
	if cfg.Slide <= 0 {
		cfg.Slide = 1000
	}
	if cfg.UpperLimit <= cfg.LowerLimit {
		return nil, fmt.Errorf("queries: Q2 needs LowerLimit < UpperLimit, got %g ≥ %g", cfg.LowerLimit, cfg.UpperLimit)
	}
	b := query.New(reg).Name("Q2")
	close := b.Float(dataset.FieldClose)
	lo, hi := cfg.LowerLimit, cfg.UpperLimit
	below := func(ev *query.Event, _ query.Binder) bool { return close.Of(ev) < lo }
	within := func(ev *query.Event, _ query.Binder) bool {
		c := close.Of(ev)
		return c > lo && c < hi
	}
	above := func(ev *query.Event, _ query.Binder) bool { return close.Of(ev) > hi }

	names := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M"}
	for i, n := range names {
		switch {
		case i%2 == 1: // B D F H J L — the band steps, Kleene-plus
			b.Pattern(query.Plus(n).Where(within))
		case i%4 == 0: // A E I M — below the lower limit
			b.Pattern(query.Step(n).Where(below))
		default: // C G K — above the upper limit
			b.Pattern(query.Step(n).Where(above))
		}
	}
	return b.
		Within(query.Events(cfg.WindowSize)).FromEvery(cfg.Slide).
		ConsumeAll().
		Build()
}

// Q3Config parameterizes Q3 (Figure 9, middle).
type Q3Config struct {
	// SetSize is n, the number of specific symbols following A (order
	// irrelevant).
	SetSize int
	// WindowSize is ws in events (paper Fig. 11: 1000).
	WindowSize int
	// Slide is s in events (paper Fig. 11: 100).
	Slide int
	// LeaderSymbol overrides the leading symbol name (default the RAND
	// dataset's first symbol).
	LeaderSymbol string
}

// Q3 builds the basket query `PATTERN (A SET(X1 ... Xn))`: symbol A
// followed by a set of n specific symbols in any order, within ws events,
// windows sliding every s events. All constituents consumed.
func Q3(reg *event.Registry, cfg Q3Config) (*pattern.Query, error) {
	if cfg.SetSize <= 0 {
		return nil, fmt.Errorf("queries: Q3 requires positive set size, got %d", cfg.SetSize)
	}
	if cfg.SetSize > 64 {
		return nil, fmt.Errorf("queries: Q3 set size %d exceeds the 64-member limit", cfg.SetSize)
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 1000
	}
	if cfg.Slide <= 0 {
		cfg.Slide = 100
	}
	leader := cfg.LeaderSymbol
	if leader == "" {
		leader = dataset.Symbol(0)
	}
	members := make([]*query.StepBuilder, cfg.SetSize)
	for i := 0; i < cfg.SetSize; i++ {
		members[i] = query.Step(fmt.Sprintf("X%d", i+1)).Types(dataset.Symbol(i + 1))
	}
	return query.New(reg).Name("Q3").
		Pattern(
			query.Step("A").Types(leader),
			query.Set(members...),
		).
		Within(query.Events(cfg.WindowSize)).FromEvery(cfg.Slide).
		ConsumeAll().
		Build()
}
