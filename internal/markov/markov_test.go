package markov

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedPredictor(t *testing.T) {
	f := Fixed{P: 0.3}
	if got := f.CompletionProbability(5, 100); got != 0.3 {
		t.Fatalf("fixed probability = %g, want 0.3", got)
	}
	if got := f.CompletionProbability(0, 100); got != 1 {
		t.Fatalf("δ=0 must be certain, got %g", got)
	}
	f.RecordTransition(3, 2) // must be a no-op
	f.RecordTransitionN(3, 2, 100)
}

func TestModelBasics(t *testing.T) {
	m, err := New(5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.States() != 6 || m.Scale() != 1 {
		t.Fatalf("states=%d scale=%d, want 6 and 1", m.States(), m.Scale())
	}
	if !m.T1().IsStochastic(1e-9) {
		t.Fatal("initial T1 must be row-stochastic")
	}
	if got := m.CompletionProbability(0, 10); got != 1 {
		t.Fatalf("δ=0 → P=1, got %g", got)
	}
	p1 := m.CompletionProbability(1, 10)
	p5 := m.CompletionProbability(5, 10)
	if !(p1 > p5) {
		t.Fatalf("closer patterns must be likelier: P(δ=1)=%g ≤ P(δ=5)=%g", p1, p5)
	}
	pShort := m.CompletionProbability(3, 5)
	pLong := m.CompletionProbability(3, 500)
	if !(pLong > pShort) {
		t.Fatalf("more remaining events must help: P(n=500)=%g ≤ P(n=5)=%g", pLong, pShort)
	}
	if got := m.CompletionProbability(3, 0); got != m.CompletionProbability(3, 1) {
		t.Fatal("n<1 must clamp to 1 (Fig. 5 lines 3-5)")
	}
}

func TestBucketing(t *testing.T) {
	m, err := New(2560, Config{MaxStates: 33})
	if err != nil {
		t.Fatal(err)
	}
	if m.States() > 33 {
		t.Fatalf("states = %d exceeds cap 33", m.States())
	}
	if m.State(0) != 0 {
		t.Fatal("δ=0 must map to state 0")
	}
	if m.State(1) == 0 {
		t.Fatal("δ=1 must not map to the absorbing state")
	}
	if m.State(2560) >= m.States() {
		t.Fatal("δ_max must map inside the state space")
	}
	// Monotone bucketing.
	prev := 0
	for d := 0; d <= 2560; d++ {
		s := m.State(d)
		if s < prev {
			t.Fatalf("bucketing not monotone at δ=%d", d)
		}
		prev = s
	}
}

// TestLearningAdaptsToAdvanceRate feeds two different synthetic processes
// and checks that the learned completion probabilities order accordingly.
func TestLearningAdaptsToAdvanceRate(t *testing.T) {
	train := func(advanceProb float64, seed int64) *Model {
		m, err := New(4, Config{Rho: 500})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		delta := 4
		for i := 0; i < 20000; i++ {
			next := delta
			if rng.Float64() < advanceProb {
				next = delta - 1
			}
			m.RecordTransition(delta, next)
			delta = next
			if delta == 0 {
				delta = 4
			}
		}
		return m
	}
	fast := train(0.5, 1)
	slow := train(0.02, 1)
	if fast.Folds() == 0 || slow.Folds() == 0 {
		t.Fatal("training must fold statistics")
	}
	pFast := fast.CompletionProbability(4, 40)
	pSlow := slow.CompletionProbability(4, 40)
	if !(pFast > pSlow+0.2) {
		t.Fatalf("fast process must predict much higher completion: fast=%g slow=%g", pFast, pSlow)
	}
	if pFast < 0.9 {
		t.Fatalf("advance 0.5/event over 40 events with δ=4 is near-certain, got %g", pFast)
	}
	if !fast.T1().IsStochastic(1e-9) {
		t.Fatal("learned T1 must stay row-stochastic")
	}
}

// TestStochasticInvariant is the property-based check: any transition
// recording keeps T1 row-stochastic and probabilities within [0, 1].
func TestStochasticInvariant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(1+rng.Intn(50), Config{Rho: 50 + rng.Intn(200)})
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			from := rng.Intn(60)
			to := from
			if rng.Intn(2) == 0 && from > 0 {
				to = rng.Intn(from + 1)
			}
			m.RecordTransition(from, to)
		}
		if !m.T1().IsStochastic(1e-6) {
			return false
		}
		for d := 0; d <= 50; d += 7 {
			for _, n := range []int{0, 1, 5, 10, 99, 1000, 1 << 20} {
				p := m.CompletionProbability(d, n)
				if p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInterpolationBetweenRungs checks the paper's linear interpolation:
// P at n between two rungs lies between the rung values.
func TestInterpolationBetweenRungs(t *testing.T) {
	m, err := New(3, Config{StepSize: 10, Rho: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Feed a strong advance signal so probabilities are non-trivial.
	for i := 0; i < 1000; i++ {
		m.RecordTransition(3, 2)
		m.RecordTransition(2, 1)
		m.RecordTransition(1, 0)
	}
	p10 := m.CompletionProbability(3, 10)
	p14 := m.CompletionProbability(3, 14)
	p20 := m.CompletionProbability(3, 20)
	lo, hi := min(p10, p20), max(p10, p20)
	if p14 < lo-1e-12 || p14 > hi+1e-12 {
		t.Fatalf("interpolated P(n=14)=%g outside [%g, %g]", p14, lo, hi)
	}
	// Exact rung: no interpolation error.
	want := 0.4*p10 + 0.6*p20
	_ = want // the exact blend depends on direction; the bound above is the contract
}

func TestInvalidDeltaMax(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Fatal("deltaMax=0 must be rejected")
	}
}
