// Package markov implements the completion-probability model of the paper
// (§3.2.1, Fig. 5): pattern completion is a discrete-time Markov process
// over the completion state δ (minimum events still required; 0 means
// complete). A stochastic transition matrix T1 is learned online from
// statistics gathered while processing validated (independent) window
// versions, folded by exponential smoothing, and powers T^ℓ, T^2ℓ, … are
// precomputed so the completion probability after n more events is a
// two-lookup interpolation.
//
// Engineering parameterization beyond the paper: for very long patterns
// (Q1 uses q up to 2560) a dense (δ_max+1)² matrix and hundreds of powers
// are impractical, so δ is bucketed into at most MaxStates states. The
// paper's exact model is the special case MaxStates > δ_max.
package markov

import (
	"fmt"

	"github.com/spectrecep/spectre/internal/matrix"
)

// Predictor predicts the completion probability of a consumption group
// whose partial match needs δ more events while n more events are expected
// in the window.
type Predictor interface {
	// CompletionProbability returns P(pattern completes within n events |
	// current completion state δ).
	CompletionProbability(delta, n int) float64
	// RecordTransition feeds one observed per-event transition of the
	// completion state.
	RecordTransition(deltaFrom, deltaTo int)
	// RecordTransitionN feeds count identical observations at once (the
	// runtime batches per-event statistics).
	RecordTransitionN(deltaFrom, deltaTo, count int)
}

// Fixed is the constant-probability baseline of Figure 11: every
// consumption group is assigned the same completion probability.
type Fixed struct{ P float64 }

var _ Predictor = Fixed{}

// CompletionProbability implements Predictor.
func (f Fixed) CompletionProbability(delta, n int) float64 {
	if delta <= 0 {
		return 1
	}
	return f.P
}

// RecordTransition implements Predictor (statistics are ignored).
func (f Fixed) RecordTransition(deltaFrom, deltaTo int) {}

// RecordTransitionN implements Predictor (statistics are ignored).
func (f Fixed) RecordTransitionN(deltaFrom, deltaTo, count int) {}

// Config holds the model parameters. The zero value selects the paper's
// defaults (α = 0.7, ℓ = 10).
type Config struct {
	// Alpha is the exponential-smoothing weight of recent statistics
	// (paper: α = 0.7).
	Alpha float64
	// StepSize is ℓ, the spacing of precomputed matrix powers (paper:
	// ℓ = 10).
	StepSize int
	// Rho is the number of measurements folded into T1 at a time.
	Rho int
	// MaxStates caps the modeled state space; δ is bucketed when the
	// pattern's minimum length exceeds it.
	MaxStates int
	// MaxHorizon caps n (the expected remaining events); larger n clamps.
	MaxHorizon int
	// PriorAdvance is the cold-start probability of advancing one state
	// per event before any statistics are folded.
	PriorAdvance float64
}

func (c *Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.7
	}
	if c.StepSize <= 0 {
		c.StepSize = 10
	}
	if c.Rho <= 0 {
		c.Rho = 20000
	}
	if c.MaxStates <= 1 {
		c.MaxStates = 33
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = 1 << 16
	}
	if c.PriorAdvance <= 0 || c.PriorAdvance >= 1 {
		c.PriorAdvance = 0.05
	}
}

// Model is the learned Markov predictor. It is not safe for concurrent
// use; in SPECTRE only the splitter touches it.
type Model struct {
	cfg      Config
	deltaMax int
	scale    int // δ units per bucketed state
	states   int // bucketed states incl. absorbing state 0

	t1     *matrix.M
	tStep  *matrix.M   // T1^ℓ
	powers []*matrix.M // powers[i] = T1^(i·ℓ); powers[0] = identity

	counts       *matrix.M // raw transition counts since last fold
	measurements int
	folds        uint64
}

var _ Predictor = (*Model)(nil)

// New returns a model for patterns whose minimum length is deltaMax.
func New(deltaMax int, cfg Config) (*Model, error) {
	if deltaMax < 1 {
		return nil, fmt.Errorf("markov: deltaMax must be ≥ 1, got %d", deltaMax)
	}
	cfg.setDefaults()
	m := &Model{cfg: cfg, deltaMax: deltaMax}
	m.scale = 1
	for (deltaMax+m.scale-1)/m.scale+1 > cfg.MaxStates {
		m.scale++
	}
	m.states = (deltaMax+m.scale-1)/m.scale + 1
	m.t1 = priorMatrix(m.states, cfg.PriorAdvance)
	m.counts = matrix.New(m.states)
	m.invalidatePowers()
	return m, nil
}

// priorMatrix builds the cold-start transition matrix: stay with
// probability 1-p, advance one state with probability p; state 0 absorbs.
func priorMatrix(states int, p float64) *matrix.M {
	t := matrix.New(states)
	t.Set(0, 0, 1)
	for s := 1; s < states; s++ {
		t.Set(s, s, 1-p)
		t.Set(s, s-1, p)
	}
	return t
}

// State maps a δ value to its bucketed Markov state.
func (m *Model) State(delta int) int {
	if delta <= 0 {
		return 0
	}
	s := (delta + m.scale - 1) / m.scale
	if s >= m.states {
		s = m.states - 1
	}
	return s
}

// States reports the size of the bucketed state space.
func (m *Model) States() int { return m.states }

// Scale reports how many δ units one bucketed state spans.
func (m *Model) Scale() int { return m.scale }

// Folds reports how many times statistics have been folded into T1.
func (m *Model) Folds() uint64 { return m.folds }

// RecordTransition implements Predictor: one per-event observation of the
// completion state moving from deltaFrom to deltaTo.
func (m *Model) RecordTransition(deltaFrom, deltaTo int) {
	m.RecordTransitionN(deltaFrom, deltaTo, 1)
}

// RecordTransitionN implements Predictor: count identical observations.
func (m *Model) RecordTransitionN(deltaFrom, deltaTo, count int) {
	if count <= 0 {
		return
	}
	from, to := m.State(deltaFrom), m.State(deltaTo)
	m.counts.Set(from, to, m.counts.At(from, to)+float64(count))
	m.measurements += count
	if m.measurements >= m.cfg.Rho {
		m.fold()
	}
}

// fold builds T1_new from the accumulated counts and applies the paper's
// exponential smoothing T1 = (1-α)·T1_old + α·T1_new. Rows without any
// observation keep their old distribution.
func (m *Model) fold() {
	tNew := matrix.New(m.states)
	for r := 0; r < m.states; r++ {
		var sum float64
		for c := 0; c < m.states; c++ {
			sum += m.counts.At(r, c)
		}
		if sum == 0 {
			for c := 0; c < m.states; c++ {
				tNew.Set(r, c, m.t1.At(r, c))
			}
			continue
		}
		for c := 0; c < m.states; c++ {
			tNew.Set(r, c, m.counts.At(r, c)/sum)
		}
	}
	// State 0 always absorbs.
	for c := 0; c < m.states; c++ {
		tNew.Set(0, c, 0)
	}
	tNew.Set(0, 0, 1)

	blended, err := matrix.Blend(m.t1, tNew, m.cfg.Alpha)
	if err == nil {
		m.t1 = blended
	}
	m.counts = matrix.New(m.states)
	m.measurements = 0
	m.folds++
	m.invalidatePowers()
}

func (m *Model) invalidatePowers() {
	m.tStep = nil
	m.powers = m.powers[:0]
	m.powers = append(m.powers, matrix.Identity(m.states))
}

// power returns T1^(idx·ℓ), computing and caching rungs on demand.
func (m *Model) power(idx int) *matrix.M {
	if m.tStep == nil {
		p, err := matrix.Pow(m.t1, m.cfg.StepSize)
		if err != nil {
			// Cannot happen: t1 is square. Fall back to identity to stay
			// total.
			p = matrix.Identity(m.states)
		}
		m.tStep = p
	}
	for len(m.powers) <= idx {
		next, err := matrix.Mul(m.powers[len(m.powers)-1], m.tStep)
		if err != nil {
			next = m.powers[len(m.powers)-1].Clone()
		}
		m.powers = append(m.powers, next)
	}
	return m.powers[idx]
}

// CompletionProbability implements Predictor using the interpolation of
// the paper's Fig. 5: Tn = (1 - (n mod ℓ)/ℓ)·T_{⌊n/ℓ⌋·ℓ} +
// ((n mod ℓ)/ℓ)·T_{⌈n/ℓ⌉·ℓ}, and the result is (v_δ · Tn)[state 0] —
// which reduces to interpolating the (δ, 0) entries of the two rung
// matrices.
func (m *Model) CompletionProbability(delta, n int) float64 {
	if delta <= 0 {
		return 1
	}
	if n < 1 {
		n = 1 // at least one more event expected (Fig. 5 lines 3-5)
	}
	if n > m.cfg.MaxHorizon {
		n = m.cfg.MaxHorizon
	}
	s := m.State(delta)
	l := m.cfg.StepSize
	lo := n / l
	rem := n % l
	pLo := m.power(lo).At(s, 0)
	if rem == 0 {
		return clamp01(pLo)
	}
	pHi := m.power(lo+1).At(s, 0)
	f := float64(rem) / float64(l)
	return clamp01((1-f)*pLo + f*pHi)
}

// T1 returns a copy of the current transition matrix (for tests and
// diagnostics).
func (m *Model) T1() *matrix.M { return m.t1.Clone() }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
