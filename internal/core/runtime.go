package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/stream"
)

// Runtime errors.
var (
	// ErrRuntimeClosed is returned by Submit/Run after Close.
	ErrRuntimeClosed = errors.New("core: runtime is closed")
	// ErrHandleClosed is returned by Feed after the handle closed.
	ErrHandleClosed = errors.New("core: query handle is closed")
)

// RuntimeConfig parameterizes a Runtime.
type RuntimeConfig struct {
	// Workers sizes the shared worker pool; <= 0 selects GOMAXPROCS.
	Workers int
}

// Runtime is the long-lived, multi-query SPECTRE service: it hosts many
// concurrent queries, each split into one or more key-partitioned shards
// (an independent dependency tree + splitter per (query, shard)), and
// multiplexes all shards onto one shared worker pool sized to the machine
// instead of k goroutines per engine.
type Runtime struct {
	pool    *Pool
	mu      sync.Mutex
	closed  bool
	handles []*Handle
}

// NewRuntime starts a runtime with its own worker pool.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	return &Runtime{pool: NewPool(cfg.Workers)}
}

// Handle is one submitted query: the routing function, its shards and the
// per-handle emit callback. Feed routes events to shards; Close marks end
// of stream; Wait blocks until every shard drained.
type Handle struct {
	rt     *Runtime
	name   string
	route  func(*event.Event) int
	shards []*shardState
	queues []*shardQueue
	emitMu sync.Mutex
	closed atomic.Bool
}

// Submit compiles q and starts nShards independent shard states on the
// shared pool. route maps an event to a shard index (ignored — and may be
// nil — when nShards is 1); emit receives every complex event of the
// query, serialized per handle (shard order within a shard is canonical,
// interleaving across shards is arrival-order). The handle is live
// immediately: Feed before, during and after other queries' runs.
func (rt *Runtime) Submit(q *pattern.Query, cfg Config, route func(*event.Event) int, nShards int, emit func(event.Complex)) (*Handle, error) {
	if nShards <= 0 {
		nShards = 1
	}
	if nShards > 1 && route == nil {
		return nil, fmt.Errorf("core: %d shards need a routing function", nShards)
	}
	prog, err := compile(q, cfg)
	if err != nil {
		return nil, err
	}
	h := &Handle{rt: rt, name: q.Name, route: route}
	if emit == nil {
		emit = func(event.Complex) {}
	}
	for i := 0; i < nShards; i++ {
		s, err := newShard(prog)
		if err != nil {
			return nil, err
		}
		queue := newShardQueue()
		s.begin(queue, func(ce event.Complex) {
			h.emitMu.Lock()
			emit(ce)
			h.emitMu.Unlock()
		})
		h.shards = append(h.shards, s)
		h.queues = append(h.queues, queue)
	}

	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, ErrRuntimeClosed
	}
	rt.handles = append(rt.handles, h)
	rt.mu.Unlock()
	rt.pool.Attach(h.shards...)
	return h, nil
}

// Run feeds src to every currently submitted handle (each handle routes
// the events through its own partitioner), then closes the handles and
// waits until all of them drain. It is the batch convenience on top of
// Feed/Close/Wait.
func (rt *Runtime) Run(src stream.Source) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrRuntimeClosed
	}
	handles := append([]*Handle(nil), rt.handles...)
	rt.mu.Unlock()

	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		for _, h := range handles {
			if !h.closed.Load() {
				h.feed(ev)
			}
		}
	}
	for _, h := range handles {
		h.Close()
	}
	for _, h := range handles {
		h.Wait()
	}
	return nil
}

// Close drains every handle gracefully (end-of-stream, wait for all
// shards) and stops the worker pool. The runtime is unusable afterwards.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	handles := append([]*Handle(nil), rt.handles...)
	rt.mu.Unlock()

	for _, h := range handles {
		h.Close()
	}
	for _, h := range handles {
		h.Wait()
	}
	rt.pool.Close()
	return nil
}

// Name returns the submitted query's name.
func (h *Handle) Name() string { return h.name }

// Shards returns the number of shards the query runs on.
func (h *Handle) Shards() int { return len(h.shards) }

// Feed routes one event to its shard. It returns ErrHandleClosed after
// Close.
func (h *Handle) Feed(ev event.Event) error {
	if h.closed.Load() {
		return ErrHandleClosed
	}
	h.feed(ev)
	return nil
}

func (h *Handle) feed(ev event.Event) {
	i := 0
	if h.route != nil {
		if i = h.route(&ev); i < 0 || i >= len(h.queues) {
			i = 0
		}
	}
	h.queues[i].push(ev)
}

// Close marks end of stream for every shard. Pending events are still
// processed; use Wait to block until the query drains. Idempotent.
func (h *Handle) Close() {
	if !h.closed.CompareAndSwap(false, true) {
		return
	}
	for _, q := range h.queues {
		q.close()
	}
}

// Wait blocks until every shard has fully processed its stream. Callers
// must Close first (directly or via Runtime.Run/Close), otherwise Wait
// blocks forever. Once drained, the runtime forgets the handle (its
// arenas and trees become collectable as soon as the caller drops it).
func (h *Handle) Wait() {
	for _, s := range h.shards {
		<-s.done
	}
	h.rt.forget(h)
}

// forget drops a fully drained handle from the runtime's bookkeeping so
// long-lived servers do not accumulate dead queries.
func (rt *Runtime) forget(h *Handle) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, cur := range rt.handles {
		if cur == h {
			rt.handles = append(rt.handles[:i], rt.handles[i+1:]...)
			return
		}
	}
}

// Drain closes the handle and waits for completion.
func (h *Handle) Drain() {
	h.Close()
	h.Wait()
}

// Metrics aggregates the runtime counters across the handle's shards.
func (h *Handle) Metrics() Metrics {
	var total Metrics
	for _, s := range h.shards {
		m := s.metrics.snapshot()
		total.Merge(&m)
	}
	return total
}

// ShardMetrics returns the per-shard counters.
func (h *Handle) ShardMetrics() []Metrics {
	out := make([]Metrics, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.metrics.snapshot()
	}
	return out
}
