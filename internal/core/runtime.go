package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/plan"
	"github.com/spectrecep/spectre/internal/sched"
	"github.com/spectrecep/spectre/internal/shed"
	"github.com/spectrecep/spectre/internal/stream"
)

// Runtime errors.
var (
	// ErrRuntimeClosed is returned by Submit/Run after Close.
	ErrRuntimeClosed = errors.New("core: runtime is closed")
	// ErrHandleClosed is returned by Feed after the handle closed.
	ErrHandleClosed = errors.New("core: query handle is closed")
	// ErrShuttingDown is returned by a Submit that raced Shutdown/Close:
	// the runtime is tearing down and will never drive the new shards.
	// It matches ErrRuntimeClosed via errors.Is.
	ErrShuttingDown = fmt.Errorf("core: runtime is shutting down: %w", ErrRuntimeClosed)
)

// RuntimeConfig parameterizes a Runtime.
type RuntimeConfig struct {
	// Workers sizes the shared worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Durable is the runtime's default durable store: every submission
	// whose Config.Durable is nil inherits it. The runtime never closes
	// the store — ownership stays with whoever created it.
	Durable durable.Store
	// Err carries the first invalid-option error; NewRuntime callers
	// check it before starting the pool.
	Err error
}

// SetError records the first option-validation error.
func (c *RuntimeConfig) SetError(err error) {
	if c.Err == nil {
		c.Err = err
	}
}

// Runtime is the long-lived, multi-query SPECTRE service: it hosts many
// concurrent queries, each split into one or more key-partitioned shards
// (an independent dependency tree + splitter per (query, shard)), and
// multiplexes all shards onto one shared worker pool sized to the machine
// instead of k goroutines per engine.
type Runtime struct {
	pool    *Pool
	arb     *sched.Arbiter
	durable durable.Store // default store inherited by submissions
	mu      sync.Mutex
	closed  bool
	handles []*Handle
}

// NewRuntime starts a runtime with its own worker pool.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	pool := NewPool(cfg.Workers)
	return &Runtime{pool: pool, arb: sched.NewArbiter(pool.Workers()), durable: cfg.Durable}
}

// Handle is one submitted query: the routing function, its shards and the
// per-handle emit callback. Feed routes events to shards; Close marks end
// of stream; Wait blocks until every shard drained.
type Handle struct {
	rt      *Runtime
	name    string
	route   func(*event.Event) int
	shards  []*shardState
	queues  []*shardQueue
	scatter [][]event.Event // FeedBatch per-shard scratch (single producer)
	emitMu  sync.Mutex
	closed  atomic.Bool
	drained sync.Once
	onDrain func()

	// Intake prefilter state (planner). All raw events — admitted or not —
	// are routed, so every shard sees the same raw substream positions it
	// would without the filter; admitted events carry their position in
	// ev.Seq and dropped positions become arena gaps. stamp[i] is shard
	// i's next raw position; like scatter it assumes the single-producer
	// feed discipline. A counter only advances once its event is safely
	// queued (or dropped), so a rejected TryFeed re-stamps the same seq.
	plan         *plan.Plan
	intake       bool
	stamp        []uint64
	stampScratch []uint64 // FeedBatch provisional counters
	dropScratch  []uint64 // FeedBatch per-shard drop counts

	// Load shedding (Config.Shed): sheds reports whether the shards carry
	// shedders; the scratch slices serve FeedBatch's per-shard shed
	// bookkeeping under the same single-producer discipline as scatter.
	sheds       bool
	shedScratch []uint64 // FeedBatch per-shard shed counts
	depthBase   []int    // FeedBatch per-shard queue-depth snapshot

	// qc is the query's admission-arbiter registration (nil unless the
	// submitter set a weight or latency target); released on drain.
	qc *sched.QueryCtl
}

// Submit compiles q and starts nShards independent shard states on the
// shared pool. route maps an event to a shard index (ignored — and may be
// nil — when nShards is 1); emit receives every complex event of the
// query, serialized per handle (shard order within a shard is canonical,
// interleaving across shards is arrival-order); onDrain, if non-nil, fires
// exactly once when the handle has fully drained (or aborted). The handle
// is live immediately: Feed before, during and after other queries' runs.
func (rt *Runtime) Submit(q *pattern.Query, cfg Config, route func(*event.Event) int, nShards int, emit func(event.Complex), onDrain func()) (*Handle, error) {
	if cfg.Err != nil {
		return nil, cfg.Err
	}
	if nShards <= 0 {
		nShards = 1
	}
	if nShards > 1 && route == nil {
		return nil, fmt.Errorf("core: %d shards need a routing function", nShards)
	}
	if cfg.Durable == nil {
		cfg.Durable = rt.durable
	}
	prog, err := compile(q, cfg)
	if err != nil {
		return nil, err
	}
	if prog.cfg.Durable != nil {
		if q.Name == "" {
			return nil, errors.New("core: durable queries must be named (the name keys the WAL shard)")
		}
		if prog.cfg.Reg == nil {
			return nil, errors.New("core: durability requires Config.Reg (WAL records carry the registry's name tables)")
		}
	}
	h := &Handle{rt: rt, name: q.Name, route: route, onDrain: onDrain}
	h.plan = prog.plan
	if h.intake = prog.stamped && !prog.cfg.PreStamped; h.intake {
		h.stamp = make([]uint64, nShards)
		h.stampScratch = make([]uint64, nShards)
		h.dropScratch = make([]uint64, nShards)
	}
	if emit == nil {
		emit = func(event.Complex) {}
	}
	// A weight or latency target opts the query into the cross-query
	// admission arbiter; unarbitrated queries keep the historical
	// whole-machine Procs ceiling.
	if prog.cfg.Weight > 0 || prog.cfg.Sched.LatencyTarget > 0 {
		h.qc = rt.arb.Register(q.Name, prog.cfg.Weight, prog.cfg.Sched.LatencyTarget, nShards)
	}
	// release undoes a partially built handle: the arbiter registration
	// and any persisters already running (their WAL shard locks must be
	// freed for a retry).
	release := func() {
		if h.qc != nil {
			h.qc.Release()
		}
		for _, s := range h.shards {
			if s.persist != nil {
				s.persist.shutdown()
			}
		}
	}
	for i := 0; i < nShards; i++ {
		var ctl *sched.ShardCtl
		if h.qc != nil {
			ctl = h.qc.Shard(i)
		}
		s, err := newShard(prog, ctl)
		if err != nil {
			release()
			return nil, err
		}
		if prog.cfg.Shed {
			scfg := shed.Config{QueueCap: prog.cfg.QueueCap, Scorer: prog.cfg.ShedScorer}
			if prog.plan != nil {
				scfg.Prior = prog.plan.UtilityPrior
			}
			s.shed = shed.New(scfg)
			h.sheds = true
		}
		var rec *durable.ShardState
		if prog.cfg.Durable != nil {
			// Open (and recover) the shard's WAL before it runs; the
			// recovered journal suffix is preloaded ahead of live input.
			rec, err = attachDurability(s, q.Name, i)
			if err != nil {
				release()
				return nil, err
			}
			if h.intake && rec != nil {
				h.stamp[i] = rec.NextSeq
			}
		}
		queue := newShardQueue(prog.cfg.QueueCap)
		if rec != nil && len(rec.Events) > 0 {
			queue.load(rec.Events)
		}
		s.begin(queue, func(ce event.Complex) {
			h.emitMu.Lock()
			emit(ce)
			h.emitMu.Unlock()
		})
		h.shards = append(h.shards, s)
		h.queues = append(h.queues, queue)
	}
	h.scatter = make([][]event.Event, nShards)
	if h.sheds {
		h.shedScratch = make([]uint64, nShards)
		h.depthBase = make([]int, nShards)
	}

	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		release()
		return nil, ErrShuttingDown
	}
	rt.handles = append(rt.handles, h)
	// Attach under rt.mu: a concurrent Shutdown either sees the handle
	// (and drains it) or closed the runtime before this point (and the
	// submission was rejected above). Attaching after the unlock would
	// let Shutdown slip between the two — the shards would never be
	// driven and Wait would hang on an orphaned handle.
	rt.pool.Attach(h.shards...)
	rt.mu.Unlock()
	return h, nil
}

// Recover blocks until every recovering shard of every submitted handle
// has replayed its persisted journal suffix — the point where each
// query's in-memory state has caught back up with the WAL and producers
// may resume feeding live input (from the positions Handle.Recovered
// reports). Queries submitted against an empty store return immediately.
// Replay proceeds regardless of whether Recover is called; the barrier
// only exists so callers can sequence "recovered" side effects (resume
// frames, producer rewind) after the replay.
func (rt *Runtime) Recover(ctx context.Context) error {
	rt.mu.Lock()
	handles := append([]*Handle(nil), rt.handles...)
	rt.mu.Unlock()
	for _, h := range handles {
		for _, s := range h.shards {
			for s.replayTarget > 0 && s.ar.Len() < s.replayTarget &&
				!s.finished.Load() && !s.cancelled.Load() {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(200 * time.Microsecond):
				}
			}
		}
	}
	return nil
}

// Run feeds src to every currently submitted handle (each handle routes
// the events through its own partitioner), then closes the handles and
// waits until all of them drain. A done ctx stops mid-stream: the handles
// are still closed and drained of what they admitted, and ctx.Err() is
// returned. It is the batch convenience on top of Feed/Close/Wait.
func (rt *Runtime) Run(ctx context.Context, src stream.Source) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrRuntimeClosed
	}
	handles := append([]*Handle(nil), rt.handles...)
	rt.mu.Unlock()

	cs, ctxAware := src.(stream.ContextSource)
	for ctx.Err() == nil {
		var (
			ev event.Event
			ok bool
		)
		// Context-aware sources (channels, network reads) unblock on
		// cancellation instead of waiting for an event that never comes.
		if ctxAware {
			ev, ok = cs.NextCtx(ctx)
		} else {
			ev, ok = src.Next()
		}
		if !ok {
			break
		}
		for _, h := range handles {
			if !h.closed.Load() {
				h.feed(ctx, ev)
			}
		}
	}
	for _, h := range handles {
		h.Close()
	}
	for _, h := range handles {
		h.Wait()
	}
	return ctx.Err()
}

// Close drains every handle gracefully (end-of-stream, wait for all
// shards) and stops the worker pool. The runtime is unusable afterwards.
func (rt *Runtime) Close() error { return rt.Shutdown(context.Background()) }

// Shutdown closes every handle (end of stream) and waits for all shards
// to drain their admitted backlog. If ctx expires first, the remaining
// handles are aborted — pending events are discarded, splitters finish
// within one cycle — and ctx.Err() is returned. Either way the worker
// pool is stopped and the runtime is unusable afterwards.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	handles := append([]*Handle(nil), rt.handles...)
	rt.mu.Unlock()

	for _, h := range handles {
		if h.durable() {
			// A durable query is parked, not ended: shutdown is an
			// operational event, not the end of its stream. In-flight
			// windows stay in the WAL and recovery resumes them; closing
			// instead would truncate them at today's stream length. An
			// explicit Handle.Close/Drain remains genuine end of stream.
			h.park()
		} else {
			h.Close()
		}
	}
	err := ctx.Err()
	if err == nil {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, h := range handles {
				h.Wait()
			}
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	if err != nil {
		// Drain deadline missed: abort what is left. Cancelled splitters
		// finish on their next pool cycle, so the second wait is short.
		for _, h := range handles {
			h.Abort()
		}
		for _, h := range handles {
			h.Wait()
		}
	}
	rt.pool.Close()
	return err
}

// Name returns the submitted query's name.
func (h *Handle) Name() string { return h.name }

// Recovered reports, per shard, the raw-substream position a producer
// should re-feed from after crash recovery (0 for a fresh shard). It
// returns nil when the handle was not submitted against a durable store.
func (h *Handle) Recovered() []uint64 {
	if h.shards[0].persist == nil {
		return nil
	}
	out := make([]uint64, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.recoveredNextSeq
	}
	return out
}

// Shards returns the number of shards the query runs on.
func (h *Handle) Shards() int { return len(h.shards) }

// Feed routes one event to its shard, blocking while that shard's queue
// is full. It returns ErrHandleClosed after Close, or ctx.Err() when ctx
// is done first (the event is not admitted).
func (h *Handle) Feed(ctx context.Context, ev event.Event) error {
	if h.closed.Load() {
		return ErrHandleClosed
	}
	return h.feed(ctx, ev)
}

// TryFeed routes one event to its shard without ever blocking. A full
// shard queue rejects the event with an *OverloadError (errors.Is
// ErrOverloaded) — the admission signal load-shedding callers need.
func (h *Handle) TryFeed(ev event.Event) error {
	if h.closed.Load() {
		return ErrHandleClosed
	}
	i := h.shardOf(&ev)
	if h.intake {
		if !h.plan.Admit(&ev) {
			h.drop(i, 1)
			return nil
		}
	}
	if s := h.shards[i].shed; s != nil && !s.Offer(ev.Type, h.queues[i].depth()) {
		h.shedDrop(i, 1)
		return nil
	}
	if h.intake {
		ev.Seq = h.stamp[i]
	}
	pending, ok := h.queues[i].tryPush(ev)
	if ok {
		if h.intake {
			h.stamp[i]++
		}
		return nil
	}
	if pending < 0 {
		return ErrHandleClosed
	}
	return &OverloadError{Query: h.name, Shard: i, Pending: pending, Cap: h.queues[i].cap}
}

// drop records n filtered events on shard i: their raw positions are
// spent (logical admission — the arena will read them back as gaps) and
// the filter counters advance.
func (h *Handle) drop(i int, n uint64) {
	h.stamp[i] += n
	h.plan.CountFiltered(n)
	h.shards[i].filteredIn.Add(n)
}

// shedDrop records n shed events on shard i. In stamped mode their raw
// positions are spent exactly like filtered ones (arena gaps); in
// unstamped mode a shed event simply never existed as far as the shard
// is concerned.
func (h *Handle) shedDrop(i int, n uint64) {
	if h.intake {
		h.stamp[i] += n
	}
	h.shards[i].shedIn.Add(n)
}

// FeedBatch routes a batch of in-order events, enqueueing one slice per
// shard: per-event queue synchronization is paid once per (batch, shard)
// instead of once per event. Like Feed it blocks on full shard queues and
// unblocks with ctx.Err() on cancellation; a batch interrupted mid-way
// reports the error with events of earlier shards already admitted (the
// per-shard prefix property callers rely on still holds: every shard
// receives an in-order prefix of its substream).
func (h *Handle) FeedBatch(ctx context.Context, evs []event.Event) error {
	if h.closed.Load() {
		return ErrHandleClosed
	}
	if !h.intake && !h.sheds {
		if len(h.queues) == 1 {
			return h.queues[0].pushBatch(ctx, evs)
		}
		for i := range h.scatter {
			h.scatter[i] = h.scatter[i][:0]
		}
		for i := range evs {
			shard := h.shardOf(&evs[i])
			h.scatter[shard] = append(h.scatter[shard], evs[i])
		}
		for i, chunk := range h.scatter {
			if err := h.queues[i].pushBatch(ctx, chunk); err != nil {
				return err
			}
		}
		return nil
	}
	// Intake-filtered / shedding path: stamp against provisional per-shard
	// counters and commit each shard's counters (stamp, drop and shed
	// tallies) only after its chunk is safely queued, preserving the
	// per-shard prefix property on a mid-batch error. Shed decisions use
	// the shard's queue depth at batch start plus what this batch has
	// already scattered to it.
	for i := range h.scatter {
		h.scatter[i] = h.scatter[i][:0]
		if h.intake {
			h.stampScratch[i] = h.stamp[i]
			h.dropScratch[i] = 0
		}
		if h.sheds {
			h.shedScratch[i] = 0
			h.depthBase[i] = h.queues[i].depth()
		}
	}
	for i := range evs {
		shard := h.shardOf(&evs[i])
		var seq uint64
		if h.intake {
			seq = h.stampScratch[shard]
			h.stampScratch[shard]++
			if !h.plan.Admit(&evs[i]) {
				h.dropScratch[shard]++
				continue
			}
		}
		if s := h.shards[shard].shed; s != nil {
			depth := h.depthBase[shard] + len(h.scatter[shard])
			if !s.Offer(evs[i].Type, depth) {
				h.shedScratch[shard]++
				continue
			}
		}
		ev := evs[i]
		if h.intake {
			ev.Seq = seq
		}
		h.scatter[shard] = append(h.scatter[shard], ev)
	}
	for i, chunk := range h.scatter {
		if err := h.queues[i].pushBatch(ctx, chunk); err != nil {
			return err
		}
		if h.intake {
			h.stamp[i] = h.stampScratch[i]
			if n := h.dropScratch[i]; n > 0 {
				h.plan.CountFiltered(n)
				h.shards[i].filteredIn.Add(n)
			}
		}
		if h.sheds {
			if n := h.shedScratch[i]; n > 0 {
				h.shards[i].shedIn.Add(n)
			}
		}
	}
	return nil
}

// shardOf maps ev to its shard index.
func (h *Handle) shardOf(ev *event.Event) int {
	if h.route == nil {
		return 0
	}
	if i := h.route(ev); i >= 0 && i < len(h.queues) {
		return i
	}
	return 0
}

func (h *Handle) feed(ctx context.Context, ev event.Event) error {
	i := h.shardOf(&ev)
	if h.intake {
		if !h.plan.Admit(&ev) {
			h.drop(i, 1)
			return nil
		}
	}
	// Shedding keeps the queue depth strictly below the high watermark
	// (everything above it is dropped), so a shedding Feed never blocks.
	if s := h.shards[i].shed; s != nil && !s.Offer(ev.Type, h.queues[i].depth()) {
		h.shedDrop(i, 1)
		return nil
	}
	if h.intake {
		ev.Seq = h.stamp[i]
		if err := h.queues[i].push(ctx, ev); err != nil {
			return err
		}
		h.stamp[i]++
		return nil
	}
	return h.queues[i].push(ctx, ev)
}

// Close marks end of stream for every shard. Pending events are still
// processed; use Wait to block until the query drains. Idempotent.
func (h *Handle) Close() {
	if !h.closed.CompareAndSwap(false, true) {
		return
	}
	for _, q := range h.queues {
		q.close()
	}
}

// durable reports whether the handle persists through a WAL.
func (h *Handle) durable() bool { return h.shards[0].persist != nil }

// Park detaches a durable query without ending its stream: feeds are
// refused, queued-but-uningested events are discarded (the producer
// re-feeds them from Recovered after the next submit), in-flight windows
// stay in the WAL, and the shard's persister releases its WAL lock once
// drained — so the same query name can be resubmitted against the same
// store and resume exactly where it parked. Use Wait to block until the
// detach completes. On a non-durable handle Park degrades to Close:
// there is no state to resume, ending the stream is the only detach.
func (h *Handle) Park() {
	if !h.durable() {
		h.Close()
		return
	}
	h.park()
}

// park pauses every durable shard without stream-end semantics (see
// shardState.park) and refuses further feeds.
func (h *Handle) park() {
	h.closed.Store(true)
	for _, s := range h.shards {
		s.park()
	}
}

// Abort closes the handle and cancels its shards: pending events are
// discarded and the splitters finish within one pool cycle without
// emitting further output. Used when a submission context is cancelled
// and by Shutdown on drain timeout. Idempotent; safe concurrently with
// Close/Wait/Feed.
func (h *Handle) Abort() {
	h.closed.Store(true)
	for _, s := range h.shards {
		s.cancel()
	}
}

// Wait blocks until every shard has fully processed its stream. Callers
// must Close first (directly or via Runtime.Run/Close), otherwise Wait
// blocks forever. Once drained, the runtime forgets the handle (its
// arenas and trees become collectable as soon as the caller drops it) and
// the handle's drain callback fires (exactly once, on the first waiter).
func (h *Handle) Wait() {
	for _, s := range h.shards {
		<-s.done
	}
	h.rt.forget(h)
	h.drained.Do(func() {
		if h.onDrain != nil {
			h.onDrain()
		}
	})
}

// forget drops a fully drained handle from the runtime's bookkeeping so
// long-lived servers do not accumulate dead queries.
func (rt *Runtime) forget(h *Handle) {
	if h.qc != nil {
		h.qc.Release()
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, cur := range rt.handles {
		if cur == h {
			rt.handles = append(rt.handles[:i], rt.handles[i+1:]...)
			return
		}
	}
}

// Drain closes the handle and waits for completion.
func (h *Handle) Drain() {
	h.Close()
	h.Wait()
}

// Metrics aggregates the runtime counters across the handle's shards.
func (h *Handle) Metrics() Metrics {
	var total Metrics
	for _, s := range h.shards {
		m := s.metricsSnapshot()
		total.Merge(&m)
	}
	return total
}

// ShardMetrics returns the per-shard counters.
func (h *Handle) ShardMetrics() []Metrics {
	out := make([]Metrics, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.metricsSnapshot()
	}
	return out
}

// Plan returns the handle's evaluation plan, or nil when planning is
// disabled.
func (h *Handle) Plan() *plan.Plan { return h.shards[0].prog.plan }
