package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/faultinject"
	"github.com/spectrecep/spectre/internal/window"
)

// persistQueueCap bounds the persister's request backlog. Blocking
// requests (event batches, cuts, watermark commits) backpressure the
// splitter when the store is persistently slow; checkpoint persists are
// droppable and are skipped instead of queued when the persister is
// behind. The cap is sized to ride out an individual slow fsync (tens
// of milliseconds on a contended disk) without stalling ingest — at
// full splitter speed a too-small queue turns every fsync hiccup into
// a throughput cliff.
const persistQueueCap = 2048

// persistReq is one unit of WAL work, in splitter order. Exactly one of
// events/ck/cut is set — or emit, which marks a commit-and-deliver: the
// persister appends the watermark record, fsyncs everything buffered
// before it and only then hands the batch to the sink, so a match is
// never delivered before its suppression point is durable. Delivery
// rides the persister goroutine on purpose: the fsync leaves the
// splitter's hot path entirely (group commit), and the FIFO channel
// keeps sink order canonical.
type persistReq struct {
	events    []event.Event
	ck        *durable.CheckpointRecord
	cut       *durable.CutRecord
	watermark uint64
	deliver   []event.Complex
	emit      func(event.Complex)
	// advance is an ordered progress notification (Config.OnAdvance): it
	// fires on the persister goroutine strictly after every delivery
	// enqueued before it, and writes nothing to the WAL.
	advance func()
}

// persister drains one shard's durability requests onto its WAL shard
// log from a dedicated goroutine, keeping every write — including the
// pre-delivery watermark fsync — off the splitter's hot path. The
// request channel is FIFO, which yields the recovery invariant for
// free: by the time a watermark record is durable, every journal event
// it depends on is durable too (they were enqueued earlier, appended
// earlier, and the commit's fsync flushes the whole prefix) — and since
// delivery happens on this goroutine after the fsync, no match ever
// reaches the sink before its watermark is durable.
//
// The first write error breaks durability: the persister stops writing,
// counts the error, and the engine keeps delivering without durability
// (availability over durability; DESIGN.md §11 documents the degraded
// mode).
type persister struct {
	log durable.ShardLog
	reg *event.Registry

	ch   chan persistReq
	stop chan struct{}
	once sync.Once
	done chan struct{}

	broken      atomic.Bool
	appends     atomic.Uint64
	syncs       atomic.Uint64
	ckptDropped atomic.Uint64
	errs        atomic.Uint64

	// typesDone/fieldsDone track how much of the registry's name tables
	// has been written, so growth re-emits them before dependent records.
	// Persister goroutine only.
	typesDone, fieldsDone int

	// evFree recycles event-batch copies between the splitter (appendEvents)
	// and the persister (appendReq), only when the log discards records
	// after Append. Without it the durable mode's dominant measurable cost
	// on small machines is the garbage of one fresh copy per ingest batch,
	// not the WAL I/O itself.
	evFree chan []event.Event
}

// recordDiscarder is the optional ShardLog facet that permits buffer
// recycling: Append keeps no reference to the record once it returns.
// The file-backed WAL implements it; the in-memory store (which retains
// records for Load) and the fault-injection wrappers do not.
type recordDiscarder interface{ DiscardsRecords() bool }

func newPersister(log durable.ShardLog, reg *event.Registry) *persister {
	p := &persister{
		log:  log,
		reg:  reg,
		ch:   make(chan persistReq, persistQueueCap),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if d, ok := log.(recordDiscarder); ok && d.DiscardsRecords() {
		p.evFree = make(chan []event.Event, 8)
	}
	return p
}

// run is the persister goroutine: drain requests until shutdown, then
// drain what is left, final-sync and close the log.
func (p *persister) run() {
	defer close(p.done)
	for {
		select {
		case req := <-p.ch:
			p.handle(req)
		case <-p.stop:
			for {
				select {
				case req := <-p.ch:
					p.handle(req)
				default:
					p.finish()
					return
				}
			}
		}
	}
}

// shutdown stops the persister and waits for the remaining backlog to be
// written, synced and the log closed. Called by the splitter in
// finishRun — after which the splitter sends nothing more, so the final
// drain is complete. Idempotent.
func (p *persister) shutdown() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}

// maxCommitGroup bounds how many watermark commits share one fsync, so
// delivery latency stays bounded even under a deep backlog.
const maxCommitGroup = 64

func (p *persister) handle(req persistReq) {
	if req.emit != nil {
		p.commitDeliver(req)
		return
	}
	if req.advance != nil {
		req.advance()
		return
	}
	p.appendReq(req)
}

// appendReq journals one non-commit record (events, checkpoint, cut).
func (p *persister) appendReq(req persistReq) {
	if p.broken.Load() {
		return
	}
	if err := p.ensureTables(); err != nil {
		p.fail(err)
		return
	}
	var err error
	switch {
	case req.events != nil:
		faultinject.Hit("wal.ingest.append")
		err = p.log.Append(&durable.Record{Kind: durable.KindEvents, Events: req.events})
		if p.evFree != nil {
			select {
			case p.evFree <- req.events[:0]:
			default:
			}
		}
	case req.ck != nil:
		faultinject.Hit("wal.ckpt.persist")
		err = p.log.Append(&durable.Record{Kind: durable.KindCheckpoint, Checkpoint: req.ck})
	case req.cut != nil:
		faultinject.Hit("wal.cut.append")
		err = p.log.Append(&durable.Record{Kind: durable.KindCut, Cut: req.cut})
	default:
		return
	}
	if err != nil {
		p.fail(err)
		return
	}
	p.appends.Add(1)
}

// commitDeliver is the commit-before-deliver step (exactly-once,
// DESIGN.md §11), on the persister goroutine, with group commit: the
// triggering watermark plus every request already queued behind it are
// appended under a single fsync, then the covered match batches are
// delivered in order. While one fsync runs, later commits pile up in the
// channel and the next group absorbs them, so the fsync rate adapts to
// the device instead of multiplying with the delivery rate. With
// durability broken the commit is skipped and delivery continues
// unguarded (availability over durability). The kill flag is sampled
// once per group, between the shared fsync and delivery: a simulated
// crash loses whole groups, never parts of one, matching the
// watermark's all-or-nothing accounting.
func (p *persister) commitDeliver(req persistReq) {
	group := make([]persistReq, 1, 8)
	group[0] = req
	var advances []func()
	p.commitAppend(req)
absorb:
	for len(group) < maxCommitGroup {
		select {
		case more := <-p.ch:
			if more.advance != nil {
				// Progress notifications absorbed into the group are
				// deferred past its deliveries: firing one here would let
				// it overtake matches enqueued before it. But an advance is
				// also a barrier for the group itself — deliveries enqueued
				// *after* it belong to the next root window, and absorbing
				// them would make them precede the notification, breaking
				// the exact emit/advance interleaving consumers key on. So
				// the group stops growing here; the deferred advance fires
				// after this group's deliveries, merely late, which is safe
				// (the boundary claim stays true).
				advances = append(advances, more.advance)
				break absorb
			}
			if more.emit == nil {
				p.appendReq(more)
				continue
			}
			p.commitAppend(more)
			group = append(group, more)
		default:
			break absorb
		}
	}
	if !p.broken.Load() {
		faultinject.Hit("wal.sync")
		if err := p.log.Sync(); err != nil {
			p.fail(err)
		} else {
			p.syncs.Add(1)
		}
	}
	// The kill flag is sampled once per group, before any delivery: the
	// whole group's watermarks share one fsync, so a kill firing mid-group
	// (at an after-deliver point) must still let the rest of the synced
	// group drain — those watermarks are already durable and recovery will
	// suppress their matches. The kill then takes effect at the next group
	// boundary.
	if faultinject.Killed() {
		return
	}
	for _, g := range group {
		for i := range g.deliver {
			g.emit(g.deliver[i])
		}
		faultinject.Hit("emit.after-deliver")
	}
	for _, fn := range advances {
		fn()
	}
}

// commitAppend appends one watermark record (no fsync; the group's
// shared sync follows).
func (p *persister) commitAppend(req persistReq) {
	faultinject.Hit("emit.before-commit")
	if p.broken.Load() {
		return
	}
	if err := p.ensureTables(); err != nil {
		p.fail(err)
		return
	}
	if err := p.log.Append(&durable.Record{Kind: durable.KindWatermark, Watermark: req.watermark}); err != nil {
		p.fail(err)
		return
	}
	p.appends.Add(1)
}

// ensureTables (re-)emits the registry's type/field name tables when
// they grew past what the log has seen: decoded records resolve names
// through these tables, so every table entry a record may reference must
// precede it in the log.
func (p *persister) ensureTables() error {
	if n := p.reg.NumTypes(); n > p.typesDone {
		if err := p.log.Append(durable.TypesRecord(p.reg)); err != nil {
			return err
		}
		p.appends.Add(1)
		p.typesDone = n
	}
	if n := p.reg.NumFields(); n > p.fieldsDone {
		if err := p.log.Append(durable.FieldsRecord(p.reg)); err != nil {
			return err
		}
		p.appends.Add(1)
		p.fieldsDone = n
	}
	return nil
}

func (p *persister) fail(err error) {
	p.errs.Add(1)
	p.broken.Store(true)
	_ = err
}

// finish runs at the end of the drain: one last fsync so a clean
// shutdown leaves the full journal durable, then the log is closed
// (releasing the store's shard lock for a successor).
func (p *persister) finish() {
	if !p.broken.Load() {
		if err := p.log.Sync(); err != nil {
			p.fail(err)
		} else {
			p.syncs.Add(1)
		}
	}
	_ = p.log.Close()
}

// appendEvents journals one admitted-event batch (splitter, blocking:
// a slow store backpressures ingest rather than growing an unbounded
// write backlog). The batch is copied — the caller reuses its buffer —
// into a recycled copy when the log permits it (see evFree).
func (p *persister) appendEvents(batch []event.Event) {
	if len(batch) == 0 || p.broken.Load() {
		return
	}
	var evs []event.Event
	if p.evFree != nil {
		select {
		case buf := <-p.evFree:
			if cap(buf) >= len(batch) {
				evs = buf[:len(batch)]
			}
		default:
		}
	}
	if evs == nil {
		evs = make([]event.Event, len(batch))
	}
	copy(evs, batch)
	p.ch <- persistReq{events: evs}
}

// appendCut records a root-pop cut (splitter, blocking).
func (p *persister) appendCut(cut *durable.CutRecord) {
	if p.broken.Load() {
		return
	}
	p.ch <- persistReq{cut: cut}
}

// enqueueAdvance queues an ordered Config.OnAdvance notification behind
// everything already enqueued (splitter, blocking only on queue room).
func (p *persister) enqueueAdvance(fn func()) {
	p.ch <- persistReq{advance: fn}
}

// commitAndDeliver enqueues a watermark commit plus the match batch it
// covers (splitter, blocking only on queue room): the persister makes
// the cumulative delivered-match count durable and then delivers the
// batch, so exactly-once on the kept substream costs the splitter no
// fsync wait. deliver may be empty (fully suppressed replay batch) —
// the watermark still advances durably.
func (p *persister) commitAndDeliver(watermark uint64, deliver []event.Complex, emit func(event.Complex)) {
	p.ch <- persistReq{watermark: watermark, deliver: deliver, emit: emit}
}

// offerCheckpoint persists a freshly recorded matcher checkpoint if the
// persister has room (worker threads, non-blocking: checkpoints are a
// recovery accelerator, not a correctness requirement, so a busy store
// sheds them first). Only suppression-free checkpoints are offered —
// their prefix depends on no unresolved speculation, so a restart may
// seed from them against the recovered final consumed set.
func (p *persister) offerCheckpoint(ck *deptree.Checkpoint) {
	if p.broken.Load() {
		return
	}
	if len(p.ch) >= cap(p.ch)-8 {
		p.ckptDropped.Add(1)
		return
	}
	rec := &durable.CheckpointRecord{
		WindowID:      ck.Win.ID,
		WindowStart:   ck.Win.StartSeq,
		WindowStartTS: ck.Win.StartTS,
		Pos:           ck.Pos,
		Used:          ck.Used,
		Skipped:       ck.Skipped,
		LocalConsumed: ck.LocalConsumed,
		Buffered:      ck.Buffered,
		Matcher:       *ck.State.Snapshot(),
	}
	select {
	case p.ch <- persistReq{ck: rec}:
	default:
		p.ckptDropped.Add(1)
	}
}

// attachDurability opens (and recovers) the shard's WAL log, primes the
// shard from the recovered state and starts the persister goroutine.
// Runtime.Submit calls it before the shard is attached to the pool.
func attachDurability(s *shardState, name string, shard int) (*durable.ShardState, error) {
	cfg := &s.prog.cfg
	log, err := cfg.Durable.OpenShard(name, shard)
	if err != nil {
		return nil, fmt.Errorf("core: open durable shard %s/%d: %w", name, shard, err)
	}
	st, err := log.Load(cfg.Reg)
	if err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("core: recover durable shard %s/%d: %w", name, shard, err)
	}
	s.persist = newPersister(log, cfg.Reg)
	if st != nil {
		s.primeRecovered(st)
	}
	go s.persist.run()
	return st, nil
}

// primeRecovered rebuilds the shard's pre-crash state from the folded
// WAL: final consumption marks and the window-id cursor from the cut,
// the emission watermark split into the already-counted prefix
// (s.emitted) and the suppression budget for matches the replay will
// regenerate but the previous process already delivered, plus the
// persisted matcher checkpoints so the replay seeds windows instead of
// reprocessing them from scratch. Called before the shard runs; no
// synchronization needed.
func (s *shardState) primeRecovered(st *durable.ShardState) {
	faultinject.Hit("recover.prime")
	var cutW uint64
	if cut := st.Cut; cut != nil {
		// Consumed is run-length pairs (start, count, …; see
		// ConsumedSet.AppendRuns).
		for i := 0; i+1 < len(cut.Consumed); i += 2 {
			for seq, n := cut.Consumed[i], cut.Consumed[i+1]; n > 0; n-- {
				s.consumed.Mark(seq)
				seq++
			}
		}
		s.winMgr.ResumeAt(cut.NextWindowID)
		s.resumeFloor = cut.Boundary
		cutW = cut.Watermark
	}
	s.emitted = cutW
	if st.Watermark > cutW {
		s.suppressRemaining = st.Watermark - cutW
	}
	for _, cr := range st.Checkpoints {
		ck, err := s.rebuildCheckpoint(cr)
		if err != nil {
			continue // a stale or mismatched checkpoint only costs replay speed
		}
		s.ckpts.record(ck)
	}
	s.replayRemaining = len(st.Events)
	if len(st.Events) > 0 {
		s.replayTarget = st.NextSeq
	}
	s.recoveredNextSeq = st.NextSeq
	if n := uint64(len(st.Events)); n > 0 {
		s.metrics.add(func(m *Metrics) { m.ReplayedEvents += n })
	}
}

// rebuildCheckpoint turns a persisted checkpoint record back into an
// in-memory checkpoint. The window handle is a placeholder carrying only
// the persisted identity (id, start) — the checkpoint store keys by
// window id, and replay re-forms the real window identically.
func (s *shardState) rebuildCheckpoint(cr *durable.CheckpointRecord) (*deptree.Checkpoint, error) {
	state, err := s.prog.compiled.StateFromSnapshot(&cr.Matcher)
	if err != nil {
		return nil, err
	}
	return &deptree.Checkpoint{
		Pos:           cr.Pos,
		Win:           window.NewWindow(cr.WindowID, cr.WindowStart, cr.WindowStartTS),
		State:         state,
		Used:          cr.Used,
		Skipped:       cr.Skipped,
		LocalConsumed: cr.LocalConsumed,
		Buffered:      cr.Buffered,
	}, nil
}
