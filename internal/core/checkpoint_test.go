package core

import (
	"testing"

	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/window"
)

// rollShard builds a single-shard state over one 64-event count window
// of A events (every A starts a run, so every position is Used) with a
// checkpoint every 4 positions, plus a version of that window that
// suppresses a synthetic consumption group.
func rollShard(t *testing.T) (*shardState, *deptree.WindowVersion, *deptree.CG) {
	t.Helper()
	reg := event.NewRegistry()
	ta, tb := reg.TypeID("A"), reg.TypeID("B")
	p := pattern.Seq("roll",
		pattern.Step{Name: "A", Types: []event.Type{ta}, Consume: true},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Consume: true},
	)
	q := &pattern.Query{
		Name:    "roll",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartEvery, Every: 64,
			EndKind: pattern.EndCount, Count: 64,
		},
	}
	prog, err := compile(q, Config{
		Instances:             1,
		CheckpointEvery:       4,
		ConsistencyCheckEvery: 1 << 20, // only explicit checks
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newShard(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	var win *window.Window
	for i := 0; i < 64; i++ {
		seq := s.ar.Append(event.Event{TS: int64(i), Type: ta})
		opened, _ := s.winMgr.Observe(s.ar.Get(seq))
		if len(opened) > 0 {
			win = opened[0]
		}
	}
	if win == nil {
		t.Fatal("window manager opened no window")
	}
	owner := deptree.NewWindowVersion(999, win, nil)
	cg := deptree.NewCG(1, owner, 0, 1)
	wv := s.newVersion(win, []*deptree.CG{cg})
	return s, wv, cg
}

// TestPartialRollback forces the consistency-violation path
// deterministically: the version processes (and Uses) a prefix spanning
// several checkpoints, then the suppressed group claims an already-used
// event. The rollback must restart from the latest checkpoint before the
// claimed event — not the window start — and the replay must skip the
// now-suppressed position.
func TestPartialRollback(t *testing.T) {
	s, wv, cg := rollShard(t)
	w := s.split

	// Process 32 of 64 positions; checkpoints land at 4, 8, ..., 32.
	wv.Mu.Lock()
	defer wv.Mu.Unlock()
	if !w.processSpan(wv, 32) {
		t.Fatal("no progress")
	}
	if got := wv.Pos(); got != 32 {
		t.Fatalf("pos = %d, want 32", got)
	}
	if len(wv.Used) != 32 {
		t.Fatalf("used %d positions, want 32 (every A starts a run)", len(wv.Used))
	}

	// The suppressed group now claims position 10 — which this version
	// already used. The periodic check must fail and the rollback must
	// restore the checkpoint at position 8 (the deepest prefix that does
	// not use 10), not the window start.
	cg.Add(10)
	if w.consistencyCheck(wv) {
		t.Fatal("consistency check must fail once the group claims a used event")
	}
	w.rollback(wv)
	if got := wv.Pos(); got != 8 {
		t.Fatalf("rolled back to %d, want checkpoint at 8", got)
	}
	if len(wv.Used) != 8 {
		t.Fatalf("restored Used has %d entries, want 8", len(wv.Used))
	}
	m := s.metrics.snapshot()
	if m.Rollbacks != 1 || m.PartialRolls != 1 {
		t.Fatalf("rollbacks=%d partial=%d, want 1/1", m.Rollbacks, m.PartialRolls)
	}

	// Replay: the claimed position must now be skipped speculatively,
	// everything else re-used, and the version must finish the window.
	for w.processSpan(wv, 1<<20) && !wv.Finished() {
	}
	if !wv.Finished() {
		t.Fatal("version did not finish after partial rollback")
	}
	if !containsSorted(wv.Skipped, 10) {
		t.Fatalf("position 10 must be speculatively skipped after the group claimed it (skipped=%v)", wv.Skipped)
	}
	for _, u := range wv.Used {
		if u == 10 {
			t.Fatal("position 10 must not be re-used after rollback")
		}
	}
}

// TestRollbackWithoutUsableCheckpoint verifies the fallback: when every
// checkpoint's prefix used the claimed event, the rollback resets to the
// window start.
func TestRollbackWithoutUsableCheckpoint(t *testing.T) {
	s, wv, cg := rollShard(t)
	w := s.split

	wv.Mu.Lock()
	defer wv.Mu.Unlock()
	if !w.processSpan(wv, 32) {
		t.Fatal("no progress")
	}
	cg.Add(1) // before the first checkpoint: every prefix used it
	if w.consistencyCheck(wv) {
		t.Fatal("consistency check must fail")
	}
	w.rollback(wv)
	if got := wv.Pos(); got != wv.Win.StartSeq {
		t.Fatalf("rolled back to %d, want window start %d", got, wv.Win.StartSeq)
	}
	m := s.metrics.snapshot()
	if m.Rollbacks != 1 || m.PartialRolls != 0 {
		t.Fatalf("rollbacks=%d partial=%d, want 1/0", m.Rollbacks, m.PartialRolls)
	}
}

// TestSeededForkSkipsDivergenceSuffix verifies fork seeding end to end at
// the unit level: a second version of the same window that additionally
// suppresses a group whose first event lies late in the window must seed
// from the deepest checkpoint before that divergence point.
func TestSeededForkSkipsDivergenceSuffix(t *testing.T) {
	s, wv, _ := rollShard(t)
	w := s.split

	wv.Mu.Lock()
	if !w.processSpan(wv, 32) {
		t.Fatal("no progress")
	}
	wv.Mu.Unlock()

	// A new group, owned elsewhere, claims position 20: a fork that
	// suppresses it diverges there and must seed from the checkpoint at
	// 20 (checkpoints land at 4, 8, ..., 32).
	owner := deptree.NewWindowVersion(998, wv.Win, nil)
	late := deptree.NewCG(2, owner, 0, 1)
	late.Add(20)
	fork := s.newVersion(wv.Win, append(append([]*deptree.CG(nil), wv.Suppressed...), late))
	if got := fork.Pos(); got != 20 {
		t.Fatalf("fork seeded at %d, want 20 (deepest checkpoint at or before the divergence point)", got)
	}
	if len(fork.Used) != 20 {
		t.Fatalf("fork inherited %d used positions, want 20", len(fork.Used))
	}
	m := s.metrics.snapshot()
	if m.VersionsSeeded != 1 || m.SeededEvents != 20 {
		t.Fatalf("seeded=%d seededEvents=%d, want 1/20", m.VersionsSeeded, m.SeededEvents)
	}
}

// TestCheckpointStoreEviction verifies the per-window bound and the
// keep-earliest eviction policy.
func TestCheckpointStoreEviction(t *testing.T) {
	cs := newCkptStore()
	win := &window.Window{ID: 7}
	for i := 0; i < maxCheckpointsPerWindow+10; i++ {
		cs.record(&deptree.Checkpoint{Pos: uint64(i + 1), Win: win})
	}
	list := cs.byWin[7]
	if len(list) != maxCheckpointsPerWindow {
		t.Fatalf("store holds %d checkpoints, want %d", len(list), maxCheckpointsPerWindow)
	}
	if list[0].Pos != 1 {
		t.Fatalf("earliest checkpoint evicted (first pos = %d, want 1)", list[0].Pos)
	}
	if last := list[len(list)-1].Pos; last != uint64(maxCheckpointsPerWindow+10) {
		t.Fatalf("latest checkpoint missing (last pos = %d)", last)
	}
	cs.drop(7)
	if len(cs.byWin) != 0 {
		t.Fatal("drop must forget the window")
	}
}
