package core

import (
	"math"
	"sort"
	"sync"

	"github.com/spectrecep/spectre/internal/arena"
	"github.com/spectrecep/spectre/internal/deptree"
)

// maxCheckpointsPerWindow bounds the checkpoint store per window. When a
// window accumulates more, the second-oldest entry is evicted, keeping
// the earliest checkpoint (useful for early divergence points) and a
// recency-biased tail.
const maxCheckpointsPerWindow = 32

// ckptStore holds the recent matcher-state checkpoints of one shard,
// keyed by window id. Workers record checkpoints while processing (under
// the version's mutex); the splitter consults the store when it creates
// fresh speculative versions (forks), and workers consult it again on
// rollback to restart from the latest still-consistent prefix. Entries
// are immutable; the store only guards the per-window lists.
type ckptStore struct {
	mu    sync.Mutex
	byWin map[uint64][]*deptree.Checkpoint
}

func newCkptStore() *ckptStore {
	return &ckptStore{byWin: make(map[uint64][]*deptree.Checkpoint)}
}

// record adds a checkpoint to its window's list.
func (cs *ckptStore) record(ck *deptree.Checkpoint) {
	cs.mu.Lock()
	list := cs.byWin[ck.Win.ID]
	if len(list) >= maxCheckpointsPerWindow {
		copy(list[1:], list[2:])
		list = list[:len(list)-1]
	}
	cs.byWin[ck.Win.ID] = append(list, ck)
	cs.mu.Unlock()
}

// drop forgets a window's checkpoints (the window is fully resolved; no
// further versions of it can be created).
func (cs *ckptStore) drop(winID uint64) {
	cs.mu.Lock()
	delete(cs.byWin, winID)
	cs.mu.Unlock()
}

// clear empties the store.
func (cs *ckptStore) clear() {
	cs.mu.Lock()
	cs.byWin = make(map[uint64][]*deptree.Checkpoint)
	cs.mu.Unlock()
}

// bestFor returns the latest checkpoint that can seed wv — the deepest
// consistent prefix at or before wv's divergence point — together with
// the suppressed-group snapshot versions it was verified against
// (parallel to wv.Suppressed), or nil when no checkpoint applies.
func (cs *ckptStore) bestFor(wv *deptree.WindowVersion, consumed *arena.ConsumedSet) (*deptree.Checkpoint, []uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	list := cs.byWin[wv.Win.ID]
	end := wv.Win.EndSeq()
	var best *deptree.Checkpoint
	var bestVers, scratch []uint64
	for _, ck := range list {
		if ck.Pos <= wv.Win.StartSeq {
			continue // replays nothing
		}
		if ck.Pos >= end {
			// Recorded before a duration window's end was known: a
			// version seeded at or past the end would never be eligible
			// for scheduling and could not run its window-end logic.
			continue
		}
		if best != nil && ck.Pos <= best.Pos {
			continue
		}
		var ok bool
		scratch, ok = seedable(ck, wv, consumed, scratch[:0])
		if ok {
			best = ck
			bestVers = append(bestVers[:0], scratch...)
		}
	}
	return best, bestVers
}

// seedable implements the checkpoint validity conditions (see
// deptree.Checkpoint): the checkpoint's suppression set must be a subset
// of wv's; every divergence group (suppressed by wv but not by the
// prefix) must currently hold no event before the checkpoint position;
// and the prefix's used events must be claimed by no suppressed group
// and no finally consumed event. The snapshot versions the check
// observed are appended to vers, parallel to wv.Suppressed, so the
// caller can seed LastChecked and skip a redundant first consistency
// check; vers is returned (possibly partially filled) either way so its
// capacity can be reused across candidates.
func seedable(ck *deptree.Checkpoint, wv *deptree.WindowVersion, consumed *arena.ConsumedSet, vers []uint64) ([]uint64, bool) {
	i := 0
	for _, g := range wv.Suppressed {
		snap := g.Snapshot()
		vers = append(vers, snap.Version)
		common := i < len(ck.Sup) && ck.Sup[i] == g
		if common {
			i++
		} else if firstInRange(snap.Seqs, wv.Win.StartSeq) < ck.Pos {
			// Divergence group already claims a prefix event the prefix
			// processed normally. Members below the window start are
			// irrelevant — no version of this window ever processes them.
			return vers, false
		}
		if intersectsSorted(ck.Used, snap.Seqs) {
			return vers, false
		}
	}
	if i != len(ck.Sup) {
		// The prefix suppressed a group wv does not: it may have
		// speculatively skipped events wv must process.
		return vers, false
	}
	for _, u := range ck.Used {
		if consumed.Contains(u) {
			// Stale prefix: a now-final consumption invalidates it (the
			// gate would reprocess such a version unconditionally).
			return vers, false
		}
	}
	return vers, true
}

// firstInRange returns the first element of ascending seqs that is >= lo,
// or MaxUint64 when none is.
func firstInRange(seqs []uint64, lo uint64) uint64 {
	i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= lo })
	if i == len(seqs) {
		return math.MaxUint64
	}
	return seqs[i]
}
